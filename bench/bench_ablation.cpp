//===- bench_ablation.cpp - Strategy ablations (Sections 5.2.1/5.2.3/6) ---===//
//
// Part of mcsafe, a reproduction of "Safety Checking of Machine Code"
// (Xu, Miller, Reps; PLDI 2000).
//
// Toggles the induction-iteration enhancements the paper calls out and
// reports, for a loop-heavy subset of the corpus, whether verification
// still succeeds and how long it takes:
//
//   - generalization ("strengthen L(j) ... using generalization"),
//   - the DNF disjunct trial,
//   - simplification at junction points ("effectively controls the size
//     of the formulas"),
//   - invariant grouping/reuse ("invoke the induction-iteration algorithm
//     only for the strongest formulas in each group"),
//   - the prover result cache (the Section 5.2.3 caching suggestion),
//   - the MAX_NUMBER_OF_ITERATIONS bound (the paper uses 3),
//   - the interprocedural-vs-inlined HeapSort comparison (Section 6).
//
//===----------------------------------------------------------------------===//

#include "checker/SafetyChecker.h"
#include "corpus/Corpus.h"

#include <chrono>
#include <cstdio>
#include <functional>
#include <vector>

using namespace mcsafe;
using namespace mcsafe::checker;
using namespace mcsafe::corpus;

namespace {

struct RunResult {
  bool Safe;
  double Seconds;
  uint64_t Failed;
  uint64_t Iterations;
  uint64_t SatQueries;
};

RunResult runWith(const CorpusProgram &P, const SafetyChecker::Options &O) {
  SafetyChecker Checker(O);
  auto Start = std::chrono::steady_clock::now();
  CheckReport R = Checker.checkSource(P.Asm, P.Policy);
  double Seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    Start)
          .count();
  return {R.Safe, Seconds, R.Global.ObligationsFailed,
          R.Global.IterationsRun, R.ProverStats.SatQueries};
}

void ablation(const char *Title,
              const std::function<void(SafetyChecker::Options &)> &Tweak) {
  static const char *Programs[] = {"Sum", "BubbleSort", "Btree",
                                   "HeapSort2", "HeapSort", "MD5"};
  SafetyChecker::Options Base;
  SafetyChecker::Options Tweaked;
  Tweak(Tweaked);
  std::printf("\n--- %s ---\n", Title);
  std::printf("%-12s %14s %14s %10s %10s\n", "program", "base(s)/ok",
              "ablated(s)/ok", "iters b/a", "unproved");
  for (const char *Name : Programs) {
    const CorpusProgram &P = corpusProgram(Name);
    RunResult B = runWith(P, Base);
    RunResult A = runWith(P, Tweaked);
    std::printf("%-12s %8.4f/%-3s %10.4f/%-3s %4llu/%-4llu %6llu\n", Name,
                B.Seconds, B.Safe ? "yes" : "NO", A.Seconds,
                A.Safe ? "yes" : "NO",
                static_cast<unsigned long long>(B.Iterations),
                static_cast<unsigned long long>(A.Iterations),
                static_cast<unsigned long long>(A.Failed));
  }
}

} // namespace

int main() {
  std::printf("Induction-iteration strategy ablations\n");
  std::printf("(base = all enhancements on; 'NO' under ok means bound "
              "conditions became unprovable)\n");

  ablation("generalization OFF", [](SafetyChecker::Options &O) {
    O.Global.UseGeneralization = false;
  });
  ablation("DNF disjunct trial OFF", [](SafetyChecker::Options &O) {
    O.Global.UseDisjunctTrial = false;
  });
  ablation("junction simplification OFF", [](SafetyChecker::Options &O) {
    O.Global.SimplifyAtJunctions = false;
  });
  ablation("invariant reuse (grouping) OFF", [](SafetyChecker::Options &O) {
    O.Global.ReuseInvariants = false;
  });
  ablation("prover cache OFF", [](SafetyChecker::Options &O) {
    O.ProverOpts.EnableCache = false;
  });
  ablation("MAX_ITERATIONS = 1", [](SafetyChecker::Options &O) {
    O.Global.MaxIterations = 1;
  });
  ablation("MAX_ITERATIONS = 2", [](SafetyChecker::Options &O) {
    O.Global.MaxIterations = 2;
  });
  ablation("MAX_ITERATIONS = 4", [](SafetyChecker::Options &O) {
    O.Global.MaxIterations = 4;
  });

  // Section 6: "Verifying an interprocedural version of an untrusted
  // program can take less time than verifying a manually inlined version
  // because the manually inlined version replicates the callee functions
  // and the global conditions in the callee functions."
  std::printf("\n--- interprocedural (HeapSort2) vs manually inlined "
              "(HeapSort) ---\n");
  SafetyChecker::Options Base;
  for (const char *Name : {"HeapSort2", "HeapSort"}) {
    const CorpusProgram &P = corpusProgram(Name);
    SafetyChecker Checker(Base);
    auto Start = std::chrono::steady_clock::now();
    CheckReport R = Checker.checkSource(P.Asm, P.Policy);
    double Total = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - Start)
                       .count();
    std::printf("%-10s insts=%-4u conds=%-4llu total=%.4fs "
                "(paper: %.2fs)\n",
                Name, R.Chars.Instructions,
                static_cast<unsigned long long>(R.Chars.GlobalConditions),
                Total, P.Paper.TimeTotal);
  }
  return 0;
}
