//===- bench_figure9.cpp - Regenerates the paper's Figure 9 table ---------===//
//
// Part of mcsafe, a reproduction of "Safety Checking of Machine Code"
// (Xu, Miller, Reps; PLDI 2000).
//
// Runs the safety checker over all thirteen corpus programs and prints
// the Figure 9 table: per-program characteristics (instructions,
// branches, loops, calls, global safety conditions) and the per-phase
// checking times, side by side with the paper's numbers (measured on a
// 440 MHz Sun Ultra 10). Absolute times differ with the hardware; the
// shape — which programs are cheap, where global verification dominates,
// the relative ordering — is the reproduction target.
//
//===----------------------------------------------------------------------===//

#include "checker/SafetyChecker.h"
#include "corpus/Corpus.h"
#include "support/Metrics.h"

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

using namespace mcsafe;
using namespace mcsafe::checker;
using namespace mcsafe::corpus;

namespace {

/// One timed check: the report plus the phase times read back from the
/// metrics registry (reports no longer carry wall-clock data).
struct Measured {
  CheckReport Report;
  double Typestate = 0, Annotation = 0, Global = 0, Total = 0;
};

/// Median-of-N timing for one program.
Measured measure(const CorpusProgram &P, int Repeats) {
  std::vector<Measured> Runs;
  for (int I = 0; I < Repeats; ++I) {
    support::MetricsRegistry Reg;
    SafetyChecker::Options Opts;
    Opts.Metrics = &Reg;
    SafetyChecker Checker(Opts);
    Measured M;
    M.Report = Checker.checkSource(P.Asm, P.Policy);
    auto Sec = [&](const char *Phase) {
      return support::usToSeconds(
          Reg.value(std::string("check/phase/") + Phase + "_us")
              .value_or(0));
    };
    M.Typestate = Sec("typestate");
    M.Annotation = Sec("annotation");
    M.Global = Sec("global");
    M.Total = Sec("total");
    Runs.push_back(std::move(M));
  }
  std::sort(Runs.begin(), Runs.end(),
            [](const Measured &A, const Measured &B) {
              return A.Total < B.Total;
            });
  return Runs[Runs.size() / 2];
}

} // namespace

int main() {
  std::printf("Figure 9: Characteristics of the Examples and Performance "
              "Results\n");
  std::printf("(per cell: measured / paper)\n\n");
  std::printf("%-14s %11s %9s %10s %9s %7s %9s %9s %9s %9s %-8s\n",
              "Example", "Insts", "Branches", "Loops(in)", "Calls",
              "GlobCond", "T.typest", "T.annot", "T.global", "T.total",
              "Verdict");

  for (const CorpusProgram &P : mcsafe::corpus::corpus()) {
    Measured M = measure(P, 5);
    const CheckReport &R = M.Report;
    if (!R.InputsOk) {
      std::printf("%-14s INPUT ERROR:\n%s\n", P.Name.c_str(),
                  R.Diags.str().c_str());
      continue;
    }
    char Loops[32], PLoops[32];
    std::snprintf(Loops, sizeof(Loops), "%u(%u)", R.Chars.Loops,
                  R.Chars.InnerLoops);
    std::snprintf(PLoops, sizeof(PLoops), "%d(%d)", P.Paper.Loops,
                  P.Paper.InnerLoops);
    std::printf("%-14s %5u/%-5d %4u/%-4d %5s/%-5s %4u/%-4d %3llu/%-3d "
                "%.3f/%-5.2f %.3f/%-5.3f %.3f/%-5.2f %.3f/%-5.2f %s\n",
                P.Name.c_str(), R.Chars.Instructions, P.Paper.Instructions,
                R.Chars.Branches, P.Paper.Branches, Loops, PLoops,
                R.Chars.Calls, P.Paper.Calls,
                static_cast<unsigned long long>(R.Chars.GlobalConditions),
                P.Paper.GlobalConditions, M.Typestate,
                P.Paper.TimeTypestate, M.Annotation,
                P.Paper.TimeAnnotation, M.Global, P.Paper.TimeGlobal,
                M.Total, P.Paper.TimeTotal,
                R.Safe ? "safe" : "VIOLATIONS");
  }

  std::printf("\nExpected verdicts: PagingPolicy reports the null "
              "dereference the paper found; StackSmashing reports all "
              "out-of-bounds frame writes; jPVM reports the documented "
              "summarization false positive; everything else is safe.\n");
  return 0;
}
