//===- bench_figure9.cpp - Regenerates the paper's Figure 9 table ---------===//
//
// Part of mcsafe, a reproduction of "Safety Checking of Machine Code"
// (Xu, Miller, Reps; PLDI 2000).
//
// Runs the safety checker over all thirteen corpus programs and prints
// the Figure 9 table: per-program characteristics (instructions,
// branches, loops, calls, global safety conditions) and the per-phase
// checking times, side by side with the paper's numbers (measured on a
// 440 MHz Sun Ultra 10). Absolute times differ with the hardware; the
// shape — which programs are cheap, where global verification dominates,
// the relative ordering — is the reproduction target.
//
//===----------------------------------------------------------------------===//

#include "checker/SafetyChecker.h"
#include "corpus/Corpus.h"

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

using namespace mcsafe;
using namespace mcsafe::checker;
using namespace mcsafe::corpus;

namespace {

/// Median-of-N timing for one program.
CheckReport measure(const CorpusProgram &P, int Repeats) {
  std::vector<CheckReport> Reports;
  for (int I = 0; I < Repeats; ++I) {
    SafetyChecker Checker;
    Reports.push_back(Checker.checkSource(P.Asm, P.Policy));
  }
  std::sort(Reports.begin(), Reports.end(),
            [](const CheckReport &A, const CheckReport &B) {
              return A.total() < B.total();
            });
  return Reports[Reports.size() / 2];
}

} // namespace

int main() {
  std::printf("Figure 9: Characteristics of the Examples and Performance "
              "Results\n");
  std::printf("(per cell: measured / paper)\n\n");
  std::printf("%-14s %11s %9s %10s %9s %7s %9s %9s %9s %9s %-8s\n",
              "Example", "Insts", "Branches", "Loops(in)", "Calls",
              "GlobCond", "T.typest", "T.annot", "T.global", "T.total",
              "Verdict");

  for (const CorpusProgram &P : mcsafe::corpus::corpus()) {
    CheckReport R = measure(P, 5);
    if (!R.InputsOk) {
      std::printf("%-14s INPUT ERROR:\n%s\n", P.Name.c_str(),
                  R.Diags.str().c_str());
      continue;
    }
    char Loops[32], PLoops[32];
    std::snprintf(Loops, sizeof(Loops), "%u(%u)", R.Chars.Loops,
                  R.Chars.InnerLoops);
    std::snprintf(PLoops, sizeof(PLoops), "%d(%d)", P.Paper.Loops,
                  P.Paper.InnerLoops);
    std::printf("%-14s %5u/%-5d %4u/%-4d %5s/%-5s %4u/%-4d %3llu/%-3d "
                "%.3f/%-5.2f %.3f/%-5.3f %.3f/%-5.2f %.3f/%-5.2f %s\n",
                P.Name.c_str(), R.Chars.Instructions, P.Paper.Instructions,
                R.Chars.Branches, P.Paper.Branches, Loops, PLoops,
                R.Chars.Calls, P.Paper.Calls,
                static_cast<unsigned long long>(R.Chars.GlobalConditions),
                P.Paper.GlobalConditions, R.TimeTypestate,
                P.Paper.TimeTypestate, R.TimeAnnotation,
                P.Paper.TimeAnnotation, R.TimeGlobal, P.Paper.TimeGlobal,
                R.total(), P.Paper.TimeTotal,
                R.Safe ? "safe" : "VIOLATIONS");
  }

  std::printf("\nExpected verdicts: PagingPolicy reports the null "
              "dereference the paper found; StackSmashing reports all "
              "out-of-bounds frame writes; jPVM reports the documented "
              "summarization false positive; everything else is safe.\n");
  return 0;
}
