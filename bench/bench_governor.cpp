//===- bench_governor.cpp - Resource-governor poll overhead ---------------===//
//
// Part of mcsafe, a reproduction of "Safety Checking of Machine Code"
// (Xu, Miller, Reps; PLDI 2000).
//
// The governor's contract is that a check which never exhausts its
// budget pays almost nothing for the poll points threaded through the
// pipeline. Two measurements back that up:
//
//   1. Micro: ns/op for poll() and chargeProverStep() on an untripped
//      governor, with and without a deadline (the deadline adds an
//      amortized steady-clock read).
//
//   2. End-to-end A/B on the Figure 9 corpus: total checking time with
//      no governor (the limits-free fast path keeps the pointer null)
//      versus a governor with effectively unreachable limits (every
//      poll point live). The target overhead is < 2%; the bench prints
//      the ratio and exits 1 above 5% to keep CI noise-tolerant while
//      still catching a regression that makes polling hot.
//
//===----------------------------------------------------------------------===//

#include "checker/SafetyChecker.h"
#include "corpus/Corpus.h"
#include "support/Governor.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>

using namespace mcsafe;
using namespace mcsafe::checker;
using namespace mcsafe::support;

namespace {

using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point Start) {
  return std::chrono::duration<double>(Clock::now() - Start).count();
}

/// ns/op over \p N calls of \p Fn.
template <typename FnT> double nsPerOp(uint64_t N, FnT Fn) {
  Clock::time_point Start = Clock::now();
  for (uint64_t I = 0; I < N; ++I)
    Fn(I);
  return secondsSince(Start) * 1e9 / static_cast<double>(N);
}

void microBench() {
  constexpr uint64_t N = 50'000'000;

  GovernorLimits StepsOnly;
  StepsOnly.ProverSteps = N + 1;
  ResourceGovernor StepGov(StepsOnly);

  GovernorLimits WithDeadline = StepsOnly;
  WithDeadline.DeadlineMs = 3'600'000; // one hour: never trips here
  ResourceGovernor DeadlineGov(WithDeadline);

  volatile bool Sink = false;
  std::printf("--- micro (untripped governor, %llu calls each) ---\n",
              static_cast<unsigned long long>(N));
  std::printf("poll, no deadline:         %6.2f ns/op\n",
              nsPerOp(N, [&](uint64_t) { Sink = StepGov.poll("bench"); }));
  std::printf("poll, amortized deadline:  %6.2f ns/op\n",
              nsPerOp(N, [&](uint64_t) { Sink = DeadlineGov.poll("bench"); }));
  ResourceGovernor ChargeGov(StepsOnly);
  std::printf("chargeProverStep:          %6.2f ns/op\n",
              nsPerOp(N, [&](uint64_t) {
                Sink = ChargeGov.chargeProverStep("bench");
              }));
  (void)Sink;
}

/// Checks the whole corpus once; Limits all-zero means the governed
/// paths stay on the null-pointer fast path.
double corpusSeconds(const GovernorLimits &Limits, uint64_t *Steps) {
  Clock::time_point Start = Clock::now();
  for (const corpus::CorpusProgram &P : corpus::corpus()) {
    SafetyChecker::Options Opts;
    Opts.Limits = Limits;
    SafetyChecker Checker(Opts);
    CheckReport R = Checker.checkSource(P.Asm, P.Policy);
    if (R.Verdict == CheckVerdict::InternalError) {
      std::fprintf(stderr, "internal error checking %s\n", P.Name.c_str());
      std::exit(1);
    }
    if (Steps)
      *Steps += R.ProverStats.SatQueries;
  }
  return secondsSince(Start);
}

int corpusAb() {
  // Warm-up pass so one-time lazy initialization (type singletons,
  // formula factory pools) lands on neither side of the A/B.
  corpusSeconds(GovernorLimits{}, nullptr);

  GovernorLimits Huge;
  Huge.DeadlineMs = 3'600'000;
  Huge.ProverSteps = 1ull << 60;
  Huge.MemoryBytes = 1ull << 60;

  constexpr int Reps = 5;
  double Off = 1e9, On = 1e9;
  uint64_t Steps = 0;
  for (int I = 0; I < Reps; ++I) {
    Off = std::min(Off, corpusSeconds(GovernorLimits{}, nullptr));
    On = std::min(On, corpusSeconds(Huge, I ? nullptr : &Steps));
  }

  double Overhead = (On - Off) / Off * 100.0;
  std::printf("--- corpus A/B (best of %d) ---\n", Reps);
  std::printf("no governor:   %8.4f s\n", Off);
  std::printf("all budgets:   %8.4f s  (every poll point live)\n", On);
  std::printf("overhead:      %+7.2f %%  (target < 2%%)\n", Overhead);

  if (Overhead > 5.0) {
    std::fprintf(stderr,
                 "FAIL: governor poll overhead %.2f%% exceeds the 5%% "
                 "regression gate\n",
                 Overhead);
    return 1;
  }
  return 0;
}

} // namespace

int main() {
  microBench();
  return corpusAb();
}
