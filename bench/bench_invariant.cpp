//===- bench_invariant.cpp - Section 5.2.2 / prover microbenchmarks -------===//
//
// Part of mcsafe, a reproduction of "Safety Checking of Machine Code"
// (Xu, Miller, Reps; PLDI 2000).
//
// google-benchmark microbenches for the pieces of the verification
// pipeline the paper discusses: the Omega-test satisfiability core,
// validity queries of the Figure 1 bounds condition, the Section 5.2.2
// induction-iteration walkthrough (via the full checker on Sum), and the
// five-phase split on representative corpus programs.
//
//===----------------------------------------------------------------------===//

#include "checker/SafetyChecker.h"
#include "constraints/Prover.h"
#include "corpus/Corpus.h"

#include <benchmark/benchmark.h>

using namespace mcsafe;
using namespace mcsafe::checker;
using namespace mcsafe::corpus;

namespace {

LinearExpr var(const char *Name) {
  return LinearExpr::variable(varId(Name));
}

/// Omega test on Pugh's classic integer-infeasible system.
void BM_OmegaPughExample(benchmark::State &State) {
  LinearExpr X = var("b.x"), Y = var("b.y");
  std::vector<Constraint> System = {
      Constraint::ge(X.scaled(11) + Y.scaled(13) - LinearExpr::constant(27)),
      Constraint::le(X.scaled(11) + Y.scaled(13), LinearExpr::constant(45)),
      Constraint::ge(X.scaled(7) - Y.scaled(9) + LinearExpr::constant(10)),
      Constraint::le(X.scaled(7) - Y.scaled(9), LinearExpr::constant(4))};
  for (auto _ : State) {
    OmegaTest Omega;
    benchmark::DoNotOptimize(Omega.isSatisfiable(System));
  }
}
BENCHMARK(BM_OmegaPughExample);

/// The Figure 3 bounds verification condition as one validity query.
void BM_ProveFigure3Bounds(benchmark::State &State) {
  FormulaRef Context = Formula::conj(
      {Formula::atom(Constraint::ge(var("b.%g3"))),
       Formula::atom(Constraint::lt(var("b.%g3"), var("b.n"))),
       Formula::atom(Constraint::eq(var("b.n") - var("b.%o1"))),
       Formula::atom(
           Constraint::eq(var("b.%g2") - var("b.%g3").scaled(4)))});
  FormulaRef Goal = Formula::conj(
      {Formula::atom(Constraint::ge(var("b.%g2"))),
       Formula::atom(Constraint::lt(var("b.%g2"), var("b.n").scaled(4))),
       Formula::atom(Constraint::divides(4, var("b.%g2")))});
  for (auto _ : State) {
    Prover::Options Opts;
    Opts.EnableCache = false; // Measure the raw query.
    Prover P(Opts);
    benchmark::DoNotOptimize(P.checkImplies(Context, Goal));
  }
}
BENCHMARK(BM_ProveFigure3Bounds);

/// End-to-end checking of one corpus program (all five phases).
void BM_CheckCorpus(benchmark::State &State, const char *Name) {
  const CorpusProgram &P = corpusProgram(Name);
  for (auto _ : State) {
    SafetyChecker Checker;
    CheckReport R = Checker.checkSource(P.Asm, P.Policy);
    benchmark::DoNotOptimize(R.Safe);
  }
}
BENCHMARK_CAPTURE(BM_CheckCorpus, Sum, "Sum");
BENCHMARK_CAPTURE(BM_CheckCorpus, BubbleSort, "BubbleSort");
BENCHMARK_CAPTURE(BM_CheckCorpus, Btree, "Btree");
BENCHMARK_CAPTURE(BM_CheckCorpus, HeapSort, "HeapSort");
BENCHMARK_CAPTURE(BM_CheckCorpus, MD5, "MD5");

/// The Section 5.2.2 walkthrough in isolation: the Sum bounds proof,
/// which exercises W(0), wlp around the loop, generalization, and the
/// certification query.
void BM_SumGlobalVerification(benchmark::State &State) {
  const CorpusProgram &P = corpusProgram("Sum");
  for (auto _ : State) {
    SafetyChecker Checker;
    CheckReport R = Checker.checkSource(P.Asm, P.Policy);
    benchmark::DoNotOptimize(R.Global.InvariantsSynthesized);
  }
}
BENCHMARK(BM_SumGlobalVerification);

} // namespace

BENCHMARK_MAIN();
