//===- bench_lint.cpp - Phase-0 lint reject latency and speedup -----------===//
//
// Part of mcsafe, a reproduction of "Safety Checking of Machine Code"
// (Xu, Miller, Reps; PLDI 2000).
//
// Measures what the phase-0 dataflow lint buys:
//
//   1. Reject latency: for a program with a definite uninitialized use,
//      the lint's time-to-UNSAFE versus the full five-phase pipeline's
//      (with lint disabled) — the fast-reject path never runs typestate
//      propagation, annotation, or the prover.
//
//   2. End-to-end parity: for every corpus program, total checking time
//      with the lint + dead-register pruning on (the default) versus
//      off. Pruning shrinks the abstract stores propagation pushes
//      around; the lint itself is bit-vector cheap. The acceptance bar
//      is "no slower", with the verdict unchanged.
//
//===----------------------------------------------------------------------===//

#include "checker/SafetyChecker.h"
#include "corpus/Corpus.h"
#include "support/Metrics.h"

#include <chrono>
#include <cstdio>
#include <string>

using namespace mcsafe;
using namespace mcsafe::checker;
using namespace mcsafe::corpus;

namespace {

/// A program whose only path reads a register nothing ever wrote: the
/// lint proves the violation without any typestate propagation.
const char *UninitAsm = R"(
  add %o1,1,%o2
  sll %o2,2,%o3
  retl
  nop
)";
const char *UninitPolicy = R"(
invoke %o0 = n
constraint n >= 0
)";

struct Timing {
  double Seconds = 0;
  double TypestateSeconds = 0;
  bool Safe = false;
  bool LintRejected = false;
  uint64_t TypestateVisits = 0;
};

Timing timeCheck(const std::string &Asm, const std::string &Policy,
                 const SafetyChecker::Options &O, int Reps) {
  Timing T;
  double Best = 1e9;
  for (int I = 0; I < Reps; ++I) {
    // Phase times come from the metrics registry now that reports carry
    // only deterministic data.
    support::MetricsRegistry Reg;
    SafetyChecker::Options WithMetrics = O;
    WithMetrics.Metrics = &Reg;
    SafetyChecker Checker(WithMetrics);
    auto Start = std::chrono::steady_clock::now();
    CheckReport R = Checker.checkSource(Asm, Policy);
    double S = std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - Start)
                   .count();
    if (S < Best) {
      Best = S;
      T.TypestateSeconds = support::usToSeconds(
          Reg.value("check/phase/typestate_us").value_or(0));
    }
    T.Safe = R.Safe;
    T.LintRejected = R.LintRejected;
    T.TypestateVisits = R.TypestateNodeVisits;
  }
  T.Seconds = Best;
  return T;
}

} // namespace

int main() {
  constexpr int Reps = 5;
  SafetyChecker::Options On;   // Defaults: lint + reject + pruning.
  SafetyChecker::Options Off;
  Off.Lint = Off.LintReject = Off.PruneDeadRegs = false;

  // --- 1. Reject latency on the definite-uninit program. ----------------
  Timing Fast = timeCheck(UninitAsm, UninitPolicy, On, Reps);
  Timing Full = timeCheck(UninitAsm, UninitPolicy, Off, Reps);
  std::printf("uninit reject: lint %.6fs (rejected=%d, typestate visits "
              "%llu), full pipeline %.6fs  (%.1fx)\n",
              Fast.Seconds, Fast.LintRejected ? 1 : 0,
              static_cast<unsigned long long>(Fast.TypestateVisits),
              Full.Seconds,
              Fast.Seconds > 0 ? Full.Seconds / Fast.Seconds : 0.0);

  // --- 2. Corpus parity: lint+pruning on vs off. -------------------------
  std::printf("\n%-14s %10s %10s %8s %10s %10s  %s\n", "program", "lint on",
              "lint off", "ratio", "prop on", "prop off", "verdict");
  double TotalOn = 0, TotalOff = 0, PropOn = 0, PropOff = 0;
  bool VerdictsMatch = true;
  for (const CorpusProgram &P : mcsafe::corpus::corpus()) {
    Timing TOn = timeCheck(P.Asm, P.Policy, On, Reps);
    Timing TOff = timeCheck(P.Asm, P.Policy, Off, Reps);
    TotalOn += TOn.Seconds;
    TotalOff += TOff.Seconds;
    PropOn += TOn.TypestateSeconds;
    PropOff += TOff.TypestateSeconds;
    if (TOn.Safe != TOff.Safe)
      VerdictsMatch = false;
    std::printf("%-14s %9.4fs %9.4fs %7.2fx %9.4fs %9.4fs  %s%s\n",
                P.Name.c_str(), TOn.Seconds, TOff.Seconds,
                TOn.Seconds > 0 ? TOff.Seconds / TOn.Seconds : 0.0,
                TOn.TypestateSeconds, TOff.TypestateSeconds,
                TOn.Safe ? "SAFE" : "UNSAFE",
                TOn.Safe == TOff.Safe ? "" : "  VERDICT MISMATCH");
  }
  std::printf("%-14s %9.4fs %9.4fs %7.2fx %9.4fs %9.4fs\n", "total",
              TotalOn, TotalOff, TotalOn > 0 ? TotalOff / TotalOn : 0.0,
              PropOn, PropOff);
  if (!VerdictsMatch) {
    std::printf("FAIL: lint changed a corpus verdict\n");
    return 1;
  }
  return 0;
}
