//===- bench_parallel.cpp - Parallel verification throughput --------------===//
//
// Part of mcsafe, a reproduction of "Safety Checking of Machine Code"
// (Xu, Miller, Reps; PLDI 2000).
//
// Measures the parallel verification engine: the full corpus is checked
// end-to-end at 1, 2, 4, and 8 workers (corpus-level parallelism plus
// speculative VC discharge through the shared prover cache), reporting
// wall time, throughput, speedup over the 1-job baseline, and shared-
// cache hit rates.
//
// The engine's contract is that verdicts and diagnostics are
// byte-identical for every job count; this bench enforces it (exit 1 on
// any divergence), so it doubles as a stress test of the determinism
// machinery under real scheduling noise.
//
// Speedup is bounded by the machine: on a single-core host the extra
// workers only interleave, so the bench prints the available hardware
// concurrency next to the table.
//
//===----------------------------------------------------------------------===//

#include "checker/ParallelCheck.h"
#include "corpus/Corpus.h"
#include "support/Metrics.h"
#include "support/ThreadPool.h"

#include <cstdio>
#include <string>
#include <vector>

using namespace mcsafe;
using namespace mcsafe::checker;

namespace {

struct Row {
  unsigned Jobs = 0;
  double Wall = 0;
  double ProgsPerSec = 0;
  double HitRate = 0;
  std::string Report;
};

Row runConfig(const std::vector<CheckJob> &Jobs, unsigned N, int Reps) {
  Row R;
  R.Jobs = N;
  R.Wall = 1e9;
  for (int I = 0; I < Reps; ++I) {
    // A fresh registry and shared cache per run: no warm-cache bleed
    // between configs. Wall time and hit rates come from the registry —
    // the result struct itself is deterministic data only.
    support::MetricsRegistry Reg;
    ParallelCheckOptions Opts;
    Opts.Jobs = N;
    Opts.Metrics = &Reg;
    ParallelCheckResult Result = checkJobs(Jobs, Opts);
    double Wall =
        support::usToSeconds(Reg.value("parallel/wall_us").value_or(0));
    if (Wall < R.Wall) {
      R.Wall = Wall;
      uint64_t Hits =
          static_cast<uint64_t>(Reg.value("cache/shared/hits").value_or(0));
      uint64_t Lookups =
          Hits + static_cast<uint64_t>(
                     Reg.value("cache/shared/misses").value_or(0));
      R.HitRate = Lookups ? double(Hits) / double(Lookups) : 0.0;
    }
    R.Report = renderParallelReport(Result);
  }
  R.ProgsPerSec = R.Wall > 0 ? double(Jobs.size()) / R.Wall : 0.0;
  return R;
}

} // namespace

int main() {
  constexpr int Reps = 3;
  const unsigned Configs[] = {1, 2, 4, 8};

  std::vector<CheckJob> Jobs;
  for (const corpus::CorpusProgram &P : corpus::corpus())
    Jobs.push_back({P.Name, P.Asm, P.Policy});

  unsigned Cores = support::ThreadPool::hardwareConcurrency();
  std::printf("parallel verification, %zu corpus programs, best of %d "
              "(hardware concurrency: %u)\n\n",
              Jobs.size(), Reps, Cores);
  std::printf("%6s %10s %10s %9s %9s\n", "jobs", "wall", "progs/s",
              "speedup", "hit rate");

  std::vector<Row> Rows;
  for (unsigned N : Configs)
    Rows.push_back(runConfig(Jobs, N, Reps));

  double Base = Rows.front().Wall;
  for (const Row &R : Rows)
    std::printf("%6u %9.4fs %10.1f %8.2fx %8.1f%%\n", R.Jobs, R.Wall,
                R.ProgsPerSec, R.Wall > 0 ? Base / R.Wall : 0.0,
                R.HitRate * 100.0);

  if (Cores <= 1)
    std::printf("\nnote: single hardware thread — workers can only "
                "interleave, so speedup ~1x is expected here; the table "
                "above measures scheduling overhead, not scaling.\n");

  // Determinism gate: every config must render the identical report.
  for (const Row &R : Rows) {
    if (R.Report != Rows.front().Report) {
      std::printf("\nFAIL: report at --jobs %u differs from --jobs %u\n",
                  R.Jobs, Rows.front().Jobs);
      return 1;
    }
  }
  std::printf("\nreports byte-identical across all job counts\n");
  return 0;
}
