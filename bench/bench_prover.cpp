//===- bench_prover.cpp - Constraint-kernel benchmark + BENCH_5.json ------===//
//
// Part of mcsafe, a reproduction of "Safety Checking of Machine Code"
// (Xu, Miller, Reps; PLDI 2000).
//
// Benchmarks the hash-consed constraint kernel and the tiered solver:
//
//   - the eight macro workloads of bench_invariant (Omega core, Figure 3
//     validity, five end-to-end corpus checks, the Section 5.2.2
//     walkthrough), timed with a plain wall-clock loop so the numbers are
//     comparable with the pre-change google-benchmark baseline embedded
//     below;
//   - VC-discharge micro-benchmarks, one per solver tier shape
//     (single-variable interval systems, unit-coefficient difference
//     systems, dense Omega-only systems), reporting ns/VC and the tier
//     hit rates actually observed;
//   - a parallel discharge workload where worker provers share one
//     ProverCache, measuring ns per query under contention.
//
// `--json [FILE]` writes the whole report (baseline, current, per-bench
// and geomean speedups, tier hit rates) as JSON — the PR's BENCH_5.json.
//
// `--slicing-json [FILE]` instead measures query slicing (connected-
// component decomposition + per-component memoization, constraints/Slice)
// against `--no-slicing` on the prover-dominated corpus checks and a
// synthetic VC stream, reporting per-bench and geomean speedups, the
// Omega tier hits under each configuration, and the component cache hit
// rates — the PR's BENCH_8.json.
//
//===----------------------------------------------------------------------===//

#include "checker/SafetyChecker.h"
#include "constraints/PreSolve.h"
#include "constraints/Prover.h"
#include "corpus/Corpus.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

using namespace mcsafe;
using namespace mcsafe::checker;
using namespace mcsafe::corpus;

namespace {

// Pre-change baseline, ns/iteration, recorded with bench_invariant
// (google-benchmark, --benchmark_min_time=0.2, wall time) at commit
// 75ea081 — the last commit before the hash-consed kernel — on the same
// machine this benchmark targets. Keeping it in this file makes
// BENCH_5.json self-contained: the JSON carries both sides of the
// comparison.
struct BaselineEntry {
  const char *Name;
  double Ns;
};
constexpr BaselineEntry Baseline[] = {
    {"OmegaPughExample", 160569.9},
    {"ProveFigure3Bounds", 37011.7},
    {"CheckCorpus/Sum", 1345074.2},
    {"CheckCorpus/BubbleSort", 3875706.2},
    {"CheckCorpus/Btree", 12892701.3},
    {"CheckCorpus/HeapSort", 17729468.7},
    {"CheckCorpus/MD5", 150903758.5},
    {"SumGlobalVerification", 1353545.1},
};

using Clock = std::chrono::steady_clock;

// Defeats dead-code elimination of results; atomic because the parallel
// workload's workers all write it.
std::atomic<uint64_t> SinkWord{0};
void sink(uint64_t V) { SinkWord.fetch_add(V, std::memory_order_relaxed); }

/// Times one workload the way google-benchmark does for the baseline
/// numbers above: grow the iteration count until a batch runs for at
/// least MinSeconds of wall time, then report mean ns/iteration of that
/// final batch.
template <typename Fn> double timeBench(Fn &&Body, double MinSeconds = 0.25) {
  Body(); // Warm-up: first-touch allocations, interner population.
  for (uint64_t Iters = 1;; Iters *= 4) {
    Clock::time_point Start = Clock::now();
    for (uint64_t I = 0; I < Iters; ++I)
      Body();
    double Secs = std::chrono::duration<double>(Clock::now() - Start).count();
    if (Secs >= MinSeconds || Iters > (uint64_t(1) << 30))
      return Secs * 1e9 / double(Iters);
  }
}

LinearExpr var(const char *Name) { return LinearExpr::variable(varId(Name)); }

std::vector<Constraint> pughSystem() {
  LinearExpr X = var("b.x"), Y = var("b.y");
  return {
      Constraint::ge(X.scaled(11) + Y.scaled(13) - LinearExpr::constant(27)),
      Constraint::le(X.scaled(11) + Y.scaled(13), LinearExpr::constant(45)),
      Constraint::ge(X.scaled(7) - Y.scaled(9) + LinearExpr::constant(10)),
      Constraint::le(X.scaled(7) - Y.scaled(9), LinearExpr::constant(4))};
}

double benchOmegaPugh() {
  std::vector<Constraint> System = pughSystem();
  return timeBench([&] {
    OmegaTest Omega;
    sink(uint64_t(Omega.isSatisfiable(System)));
  });
}

FormulaRef figure3Context() {
  return Formula::conj(
      {Formula::atom(Constraint::ge(var("b.%g3"))),
       Formula::atom(Constraint::lt(var("b.%g3"), var("b.n"))),
       Formula::atom(Constraint::eq(var("b.n") - var("b.%o1"))),
       Formula::atom(Constraint::eq(var("b.%g2") - var("b.%g3").scaled(4)))});
}

FormulaRef figure3Goal() {
  return Formula::conj(
      {Formula::atom(Constraint::ge(var("b.%g2"))),
       Formula::atom(Constraint::lt(var("b.%g2"), var("b.n").scaled(4))),
       Formula::atom(Constraint::divides(4, var("b.%g2")))});
}

double benchProveFigure3() {
  FormulaRef Context = figure3Context();
  FormulaRef Goal = figure3Goal();
  return timeBench([&] {
    Prover::Options Opts;
    Opts.EnableCache = false; // Measure the raw query.
    Prover P(Opts);
    sink(uint64_t(P.checkImplies(Context, Goal)));
  });
}

double benchCheckCorpus(const char *Name) {
  const CorpusProgram &P = corpusProgram(Name);
  return timeBench([&] {
    SafetyChecker Checker;
    CheckReport R = Checker.checkSource(P.Asm, P.Policy);
    sink(uint64_t(R.Safe));
  });
}

double benchSumGlobal() {
  const CorpusProgram &P = corpusProgram("Sum");
  return timeBench([&] {
    SafetyChecker Checker;
    CheckReport R = Checker.checkSource(P.Asm, P.Policy);
    sink(R.Global.InvariantsSynthesized);
  });
}

/// One tier-shaped VC family: the systems a micro-bench discharges, plus
/// what the tiered solver reported afterwards.
struct MicroResult {
  std::string Name;
  double NsPerVc = 0;       // Tiered solver.
  double OmegaNsPerVc = 0;  // Same systems through the raw Omega test.
  TieredSolver::TierStats Tiers;
};

MicroResult benchMicro(const std::string &Name,
                       const std::vector<std::vector<Constraint>> &Systems) {
  MicroResult R;
  R.Name = Name;
  TieredSolver Tiered;
  R.NsPerVc = timeBench([&] {
                for (const std::vector<Constraint> &S : Systems)
                  sink(uint64_t(Tiered.isSatisfiable(S)));
              }) /
              double(Systems.size());
  R.Tiers = Tiered.tierStats();
  R.OmegaNsPerVc = timeBench([&] {
                     OmegaTest Omega;
                     for (const std::vector<Constraint> &S : Systems)
                       sink(uint64_t(Omega.isSatisfiable(S)));
                   }) /
                   double(Systems.size());
  return R;
}

/// Single-variable bound + congruence systems — the interval tier's home
/// turf (array-index VCs after substitution).
std::vector<std::vector<Constraint>> intervalSystems() {
  std::vector<std::vector<Constraint>> Out;
  for (int K = 0; K < 16; ++K) {
    LinearExpr X = var("m.i");
    Out.push_back({Constraint::ge(X.plusConstant(-K)),
                   Constraint::le(X, LinearExpr::constant(4 * K + 64)),
                   Constraint::divides(4, X)});
  }
  return Out;
}

/// Unit-coefficient difference systems — the DBM tier (loop-counter
/// orderings; half are infeasible cycles).
std::vector<std::vector<Constraint>> dbmSystems() {
  std::vector<std::vector<Constraint>> Out;
  for (int K = 0; K < 16; ++K) {
    LinearExpr X = var("m.x"), Y = var("m.y"), Z = var("m.z");
    std::vector<Constraint> S = {
        Constraint::ge(X - Y + LinearExpr::constant(K)),
        Constraint::ge(Y - Z + LinearExpr::constant(1)),
    };
    // Even K: close a negative cycle (unsat); odd K: leave it open.
    if (K % 2 == 0)
      S.push_back(Constraint::ge(Z - X - LinearExpr::constant(K + 2)));
    else
      S.push_back(Constraint::ge(Z.plusConstant(-1)));
    Out.push_back(std::move(S));
  }
  return Out;
}

/// Dense multi-variable systems neither pre-solver can represent — every
/// query falls through to Omega (the tiers' worst case: pure overhead).
std::vector<std::vector<Constraint>> omegaSystems() {
  std::vector<std::vector<Constraint>> Out;
  for (int K = 1; K <= 8; ++K) {
    std::vector<Constraint> S = pughSystem();
    S.push_back(Constraint::ge(var("b.x").scaled(K) + var("b.y")));
    Out.push_back(std::move(S));
  }
  return Out;
}

/// N worker provers share one cache and discharge the same obligation
/// stream — the parallel engine's steady state. Reported as mean ns per
/// checkImplies across all workers (cache hits dominate after warm-up).
double benchParallelSharedCache(unsigned Workers, unsigned QueriesPerWorker) {
  FormulaRef Context = figure3Context();
  FormulaRef Goal = figure3Goal();
  auto SharedCache = std::make_shared<ProverCache>();
  Clock::time_point Start = Clock::now();
  std::vector<std::thread> Threads;
  for (unsigned W = 0; W < Workers; ++W)
    Threads.emplace_back([&] {
      Prover P(Prover::Options(), SharedCache);
      for (unsigned Q = 0; Q < QueriesPerWorker; ++Q)
        sink(uint64_t(P.checkImplies(Context, Goal)));
    });
  for (std::thread &T : Threads)
    T.join();
  double Secs = std::chrono::duration<double>(Clock::now() - Start).count();
  return Secs * 1e9 / double(Workers * QueriesPerWorker);
}

double tierRate(uint64_t Hits, uint64_t Misses) {
  uint64_t Total = Hits + Misses;
  return Total ? double(Hits) / double(Total) : 0.0;
}

//===----------------------------------------------------------------------===//
// Query slicing (--slicing-json, BENCH_8.json)
//===----------------------------------------------------------------------===//

/// One corpus check timed under a slicing configuration, plus the prover
/// stats of a single instrumented run (for the Omega hit comparison).
double benchCheckCorpusSliced(const char *Name, bool Slicing,
                              Prover::Stats *StatsOut) {
  const CorpusProgram &P = corpusProgram(Name);
  SafetyChecker::Options Opts;
  Opts.ProverOpts.EnableSlicing = Slicing;
  if (StatsOut) {
    SafetyChecker Checker(Opts);
    *StatsOut = Checker.checkSource(P.Asm, P.Policy).ProverStats;
  }
  return timeBench([&] {
    SafetyChecker Checker(Opts);
    CheckReport R = Checker.checkSource(P.Asm, P.Policy);
    sink(uint64_t(R.Safe));
  });
}

/// The synthetic VC stream: conjunctions shaped like real machine-code
/// verification conditions — several independent single-variable bound
/// groups (array-index checks), a couple of alignment DIV atoms, a unit
/// equality tying a derived pointer to its base, and one dense
/// multi-variable atom pair that alone needs Omega. Unsliced, that pair
/// drags the whole conjunction into Omega on every VC; sliced, it is one
/// small recurring component and everything else stays in the cheap
/// tiers. The generator is deterministic (fixed parameters, no RNG) so
/// both configurations discharge the identical stream.
std::vector<FormulaRef> vcStream() {
  std::vector<FormulaRef> Out;
  for (int V = 0; V < 64; ++V) {
    std::vector<FormulaRef> Atoms;
    // Three independent bound-check groups over distinct variables. The
    // constants cycle with small periods so components recur across VCs
    // (the memoization target), rather than being 64 one-offs.
    for (int G = 0; G < 3; ++G) {
      LinearExpr X = var(("s.idx" + std::to_string(G)).c_str());
      int Lo = (V + G) % 4, Hi = 64 + 8 * ((V + G) % 5);
      Atoms.push_back(Formula::atom(Constraint::ge(X.plusConstant(-Lo))));
      Atoms.push_back(
          Formula::atom(Constraint::le(X, LinearExpr::constant(Hi))));
    }
    // Word-alignment of a derived address, plus the unit equality that
    // the elimination pre-pass folds away (addr = base + 4*idx form).
    LinearExpr Addr = var("s.addr"), Base = var("s.base");
    Atoms.push_back(Formula::atom(Constraint::divides(4, Addr)));
    Atoms.push_back(Formula::atom(
        Constraint::eq(Addr - Base - LinearExpr::constant(8 * (V % 3)))));
    // The dense pair: two-variable non-unit atoms only Omega can decide.
    LinearExpr X = var("s.px"), Y = var("s.py");
    int K = V % 4;
    Atoms.push_back(Formula::atom(Constraint::ge(
        X.scaled(11) + Y.scaled(13) - LinearExpr::constant(27 + K))));
    Atoms.push_back(Formula::atom(
        Constraint::le(X.scaled(7) - Y.scaled(9), LinearExpr::constant(4))));
    Out.push_back(Formula::conj(std::move(Atoms)));
  }
  return Out;
}

struct VcStreamResult {
  double NsPerVc = 0;
  Prover::Stats Stats;
};

VcStreamResult benchVcStream(bool Slicing) {
  std::vector<FormulaRef> Stream = vcStream();
  Prover::Options Opts;
  Opts.EnableSlicing = Slicing;
  VcStreamResult R;
  // A fresh prover (cold cache) per iteration: the measurement includes
  // the warm-up, exactly like a fresh `mcsafe-check` process would see.
  R.NsPerVc = timeBench([&] {
                Prover P(Opts);
                for (const FormulaRef &F : Stream)
                  sink(uint64_t(P.checkSat(F)));
              }) /
              double(Stream.size());
  Prover P(Opts);
  for (const FormulaRef &F : Stream)
    sink(uint64_t(P.checkSat(F)));
  R.Stats = P.stats();
  return R;
}

void writeSliceCountersJson(std::ostream &OS, const SliceStats &S,
                            const char *Indent) {
  OS << Indent << "\"queries\": " << S.DisjunctQueries << ",\n"
     << Indent << "\"disjuncts_deduped\": " << S.DisjunctsDeduped << ",\n"
     << Indent << "\"eq_eliminated\": " << S.EqEliminated << ",\n"
     << Indent << "\"components\": " << S.Components << ",\n"
     << Indent << "\"multi_component\": " << S.MultiComponent << ",\n"
     << Indent << "\"cache_hits\": " << S.CacheHits << ",\n"
     << Indent << "\"cache_misses\": " << S.CacheMisses << ",\n"
     << Indent << "\"omega_avoided\": " << S.OmegaAvoided << "\n";
}

/// The whole `--slicing-json` mode: corpus checks and the VC stream,
/// each discharged with slicing on and off, plus the component cache hit
/// split measured over a shared-cache corpus-style run.
int runSlicingBench(bool Json, const std::string &JsonPath) {
  // The prover-dominated corpus checks: every program where global
  // verification carries at least half the total check time (measured
  // with --phase-table; the shares range from 50% for BubbleSort and
  // StopTimer up to 88% for StackSmashing). Lint-rejected and
  // typestate-dominated programs (MD5 spends 13% proving, jPVM 8%) tell
  // nothing about query slicing and are excluded.
  static const char *const Corpus[] = {
      "Sum",      "Hash",      "PagingPolicy",  "StartTimer", "StopTimer",
      "BubbleSort", "HeapSort", "HeapSort2",    "StackSmashing"};
  struct Line {
    std::string Name;
    double OffNs, OnNs, Speedup;
    uint64_t OmegaOff, OmegaOn;
    SliceStats Slice;
  };
  std::vector<Line> Lines;
  std::fprintf(stderr, "running corpus checks, slicing off vs on...\n");
  for (const char *Name : Corpus) {
    std::fprintf(stderr, "  CheckCorpus/%s\n", Name);
    Prover::Stats Off, On;
    // Alternating repetitions with best-of per configuration: a single
    // A-then-B measurement is biased by the process's cold interner and
    // allocator (whichever config runs first pays them) and by ambient
    // machine noise, either of which can exceed slicing's actual effect
    // on the fast checks. The min over interleaved reps is the standard
    // robust estimator for both.
    double OffNs = 1e300, OnNs = 1e300;
    for (int Rep = 0; Rep < 4; ++Rep) {
      OffNs = std::min(
          OffNs, benchCheckCorpusSliced(Name, false, Rep ? nullptr : &Off));
      OnNs = std::min(
          OnNs, benchCheckCorpusSliced(Name, true, Rep ? nullptr : &On));
    }
    Lines.push_back({std::string("CheckCorpus/") + Name, OffNs, OnNs,
                     OffNs / OnNs, Off.Tiers.OmegaHits + Off.Tiers.OmegaMisses,
                     On.Tiers.OmegaHits + On.Tiers.OmegaMisses, On.Slice});
  }

  double LogSum = 0;
  for (const Line &L : Lines)
    LogSum += std::log(L.Speedup);
  double Geomean = std::exp(LogSum / double(Lines.size()));
  uint64_t OmegaOff = 0, OmegaOn = 0;
  for (const Line &L : Lines) {
    OmegaOff += L.OmegaOff;
    OmegaOn += L.OmegaOn;
  }

  std::fprintf(stderr, "running synthetic VC stream...\n");
  VcStreamResult StreamOff = benchVcStream(false);
  VcStreamResult StreamOn = benchVcStream(true);

  // Component cache hit split: one shared cache across every corpus
  // check, the serve/parallel steady state where recurring components
  // from different procedures hit each other's entries.
  std::fprintf(stderr, "running shared-cache component hit-rate run...\n");
  auto Shared = std::make_shared<ProverCache>();
  {
    for (const char *Name : Corpus) {
      // One prover per procedure, as in the parallel engine.
      const CorpusProgram &P = corpusProgram(Name);
      SafetyChecker::Options CheckOpts;
      CheckOpts.SharedProverCache = Shared;
      SafetyChecker Checker(CheckOpts);
      sink(uint64_t(Checker.checkSource(P.Asm, P.Policy).Safe));
    }
  }
  ProverCache::Stats CacheStats = Shared->stats();

  std::printf("%-24s %14s %14s %8s %10s %10s\n", "benchmark", "no-slice ns",
              "sliced ns", "speedup", "omega-off", "omega-on");
  for (const Line &L : Lines)
    std::printf("%-24s %14.1f %14.1f %7.2fx %10llu %10llu\n", L.Name.c_str(),
                L.OffNs, L.OnNs, L.Speedup,
                static_cast<unsigned long long>(L.OmegaOff),
                static_cast<unsigned long long>(L.OmegaOn));
  std::printf("%-24s %14s %14s %7.2fx %10llu %10llu\n", "geomean/total", "",
              "", Geomean, static_cast<unsigned long long>(OmegaOff),
              static_cast<unsigned long long>(OmegaOn));
  std::printf("vc_stream: %.1f -> %.1f ns/VC (%.2fx), omega %llu -> %llu\n",
              StreamOff.NsPerVc, StreamOn.NsPerVc,
              StreamOff.NsPerVc / StreamOn.NsPerVc,
              static_cast<unsigned long long>(StreamOff.Stats.Tiers.OmegaHits +
                                              StreamOff.Stats.Tiers.OmegaMisses),
              static_cast<unsigned long long>(StreamOn.Stats.Tiers.OmegaHits +
                                              StreamOn.Stats.Tiers.OmegaMisses));
  std::printf("shared cache: query %.0f%% hit (%llu/%llu), component %.0f%% "
              "hit (%llu/%llu)\n",
              100 * tierRate(CacheStats.QueryHits, CacheStats.QueryMisses),
              static_cast<unsigned long long>(CacheStats.QueryHits),
              static_cast<unsigned long long>(CacheStats.QueryHits +
                                              CacheStats.QueryMisses),
              100 * tierRate(CacheStats.ComponentHits,
                             CacheStats.ComponentMisses),
              static_cast<unsigned long long>(CacheStats.ComponentHits),
              static_cast<unsigned long long>(CacheStats.ComponentHits +
                                              CacheStats.ComponentMisses));

  if (!Json)
    return 0;
  std::ofstream OS(JsonPath);
  if (!OS) {
    std::fprintf(stderr, "cannot write '%s'\n", JsonPath.c_str());
    return 2;
  }
  OS << "{\n"
     << "  \"bench\": \"bench_prover --slicing\",\n"
     << "  \"baseline\": \"same binary with slicing disabled "
        "(--no-slicing)\",\n"
     << "  \"unit\": \"ns_per_iteration\",\n"
     << "  \"benchmarks\": [\n";
  for (size_t I = 0; I < Lines.size(); ++I) {
    const Line &L = Lines[I];
    OS << "    {\"name\": \"" << L.Name << "\", \"no_slicing_ns\": " << L.OffNs
       << ", \"slicing_ns\": " << L.OnNs << ", \"speedup\": " << L.Speedup
       << ", \"omega_queries_off\": " << L.OmegaOff
       << ", \"omega_queries_on\": " << L.OmegaOn << "}"
       << (I + 1 < Lines.size() ? "," : "") << "\n";
  }
  OS << "  ],\n"
     << "  \"geomean_speedup\": " << Geomean << ",\n"
     << "  \"omega\": {\"without_slicing\": " << OmegaOff
     << ", \"with_slicing\": " << OmegaOn << ", \"strictly_reduced\": "
     << (OmegaOn < OmegaOff ? "true" : "false") << "},\n"
     << "  \"vc_stream\": {\n"
     << "    \"no_slicing_ns_per_vc\": " << StreamOff.NsPerVc << ",\n"
     << "    \"slicing_ns_per_vc\": " << StreamOn.NsPerVc << ",\n"
     << "    \"speedup\": " << StreamOff.NsPerVc / StreamOn.NsPerVc << ",\n"
     << "    \"omega_queries_off\": "
     << StreamOff.Stats.Tiers.OmegaHits + StreamOff.Stats.Tiers.OmegaMisses
     << ",\n"
     << "    \"omega_queries_on\": "
     << StreamOn.Stats.Tiers.OmegaHits + StreamOn.Stats.Tiers.OmegaMisses
     << ",\n"
     << "    \"slice_counters\": {\n";
  writeSliceCountersJson(OS, StreamOn.Stats.Slice, "      ");
  OS << "    }\n"
     << "  },\n"
     << "  \"micro\": {\n"
     << "    \"shared_cache\": {\n"
     << "      \"query_hits\": " << CacheStats.QueryHits << ",\n"
     << "      \"query_misses\": " << CacheStats.QueryMisses << ",\n"
     << "      \"query_hit_rate\": "
     << tierRate(CacheStats.QueryHits, CacheStats.QueryMisses) << ",\n"
     << "      \"component_hits\": " << CacheStats.ComponentHits << ",\n"
     << "      \"component_misses\": " << CacheStats.ComponentMisses << ",\n"
     << "      \"component_hit_rate\": "
     << tierRate(CacheStats.ComponentHits, CacheStats.ComponentMisses) << "\n"
     << "    }\n"
     << "  }\n"
     << "}\n";
  std::fprintf(stderr, "wrote %s\n", JsonPath.c_str());
  return 0;
}

void writeTierJson(std::ostream &OS, const TieredSolver::TierStats &T,
                   const char *Indent) {
  OS << Indent << "\"interval\": {\"hits\": " << T.IntervalHits
     << ", \"misses\": " << T.IntervalMisses << ", \"hit_rate\": "
     << tierRate(T.IntervalHits, T.IntervalMisses) << "},\n"
     << Indent << "\"dbm\": {\"hits\": " << T.DbmHits
     << ", \"misses\": " << T.DbmMisses << ", \"hit_rate\": "
     << tierRate(T.DbmHits, T.DbmMisses) << "},\n"
     << Indent << "\"omega\": {\"hits\": " << T.OmegaHits
     << ", \"misses\": " << T.OmegaMisses << ", \"hit_rate\": "
     << tierRate(T.OmegaHits, T.OmegaMisses) << "}\n";
}

} // namespace

int main(int argc, char **argv) {
  bool Json = false, SlicingBench = false;
  std::string JsonPath = "BENCH_5.json";
  std::string SlicingJsonPath = "BENCH_8.json";
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--json") == 0) {
      Json = true;
      if (I + 1 < argc && argv[I + 1][0] != '-')
        JsonPath = argv[++I];
    } else if (std::strcmp(argv[I], "--slicing-json") == 0) {
      SlicingBench = true;
      if (I + 1 < argc && argv[I + 1][0] != '-')
        SlicingJsonPath = argv[++I];
    } else if (std::strcmp(argv[I], "--slicing") == 0) {
      // Human-readable slicing comparison, no JSON file.
      SlicingBench = true;
      SlicingJsonPath.clear();
    } else {
      std::fprintf(stderr, "usage: bench_prover [--json [FILE]] "
                           "[--slicing | --slicing-json [FILE]]\n");
      return 2;
    }
  }
  if (SlicingBench)
    return runSlicingBench(!SlicingJsonPath.empty(), SlicingJsonPath);

  // Macro workloads (same set and methodology as the baseline).
  struct Macro {
    const char *Name;
    double Ns;
  };
  std::vector<Macro> Macros;
  std::fprintf(stderr, "running macro workloads...\n");
  Macros.push_back({"OmegaPughExample", benchOmegaPugh()});
  Macros.push_back({"ProveFigure3Bounds", benchProveFigure3()});
  for (const char *P : {"Sum", "BubbleSort", "Btree", "HeapSort", "MD5"}) {
    std::fprintf(stderr, "  CheckCorpus/%s\n", P);
    Macros.push_back({P, benchCheckCorpus(P)});
  }
  Macros.push_back({"SumGlobalVerification", benchSumGlobal()});

  // Pair with the baseline and compute speedups.
  double LogSum = 0;
  struct Line {
    std::string Name;
    double BaselineNs, CurrentNs, Speedup;
  };
  std::vector<Line> Lines;
  for (size_t I = 0; I < Macros.size(); ++I) {
    const BaselineEntry &B = Baseline[I];
    double Ns = Macros[I].Ns;
    double Speedup = B.Ns / Ns;
    LogSum += std::log(Speedup);
    Lines.push_back({B.Name, B.Ns, Ns, Speedup});
  }
  double Geomean = std::exp(LogSum / double(Lines.size()));

  std::fprintf(stderr, "running tier micro-benchmarks...\n");
  std::vector<MicroResult> Micros;
  Micros.push_back(benchMicro("interval", intervalSystems()));
  Micros.push_back(benchMicro("dbm", dbmSystems()));
  Micros.push_back(benchMicro("omega_fallback", omegaSystems()));

  std::fprintf(stderr, "running parallel shared-cache workload...\n");
  double ParallelNs = benchParallelSharedCache(4, 2000);

  // Human-readable report.
  std::printf("%-26s %14s %14s %8s\n", "benchmark", "baseline ns", "now ns",
              "speedup");
  for (const Line &L : Lines)
    std::printf("%-26s %14.1f %14.1f %7.2fx\n", L.Name.c_str(), L.BaselineNs,
                L.CurrentNs, L.Speedup);
  std::printf("%-26s %14s %14s %7.2fx\n", "geomean", "", "", Geomean);
  for (const MicroResult &M : Micros)
    std::printf("micro/%-20s %10.1f ns/VC (omega-only %.1f, interval "
                "%.0f%%, dbm %.0f%%, omega %.0f%%)\n",
                M.Name.c_str(), M.NsPerVc, M.OmegaNsPerVc,
                100 * tierRate(M.Tiers.IntervalHits, M.Tiers.IntervalMisses),
                100 * tierRate(M.Tiers.DbmHits, M.Tiers.DbmMisses),
                100 * tierRate(M.Tiers.OmegaHits, M.Tiers.OmegaMisses));
  std::printf("parallel shared cache: %.1f ns/query (4 workers)\n",
              ParallelNs);
  Formula::InternStats Intern = Formula::internStats();
  std::printf("interner: %llu formulas, %llu dedup hits, %llu bytes\n",
              static_cast<unsigned long long>(Intern.Nodes),
              static_cast<unsigned long long>(Intern.DedupHits),
              static_cast<unsigned long long>(Intern.Bytes));

  if (!Json)
    return 0;

  std::ofstream OS(JsonPath);
  if (!OS) {
    std::fprintf(stderr, "cannot write '%s'\n", JsonPath.c_str());
    return 2;
  }
  OS << "{\n"
     << "  \"bench\": \"bench_prover\",\n"
     << "  \"baseline_commit\": \"75ea081\",\n"
     << "  \"unit\": \"ns_per_iteration\",\n"
     << "  \"benchmarks\": [\n";
  for (size_t I = 0; I < Lines.size(); ++I) {
    const Line &L = Lines[I];
    OS << "    {\"name\": \"" << L.Name << "\", \"baseline_ns\": "
       << L.BaselineNs << ", \"current_ns\": " << L.CurrentNs
       << ", \"speedup\": " << L.Speedup << "}"
       << (I + 1 < Lines.size() ? "," : "") << "\n";
  }
  OS << "  ],\n"
     << "  \"geomean_speedup\": " << Geomean << ",\n"
     << "  \"micro\": {\n";
  for (size_t I = 0; I < Micros.size(); ++I) {
    const MicroResult &M = Micros[I];
    OS << "    \"" << M.Name << "\": {\n"
       << "      \"ns_per_vc\": " << M.NsPerVc << ",\n"
       << "      \"omega_only_ns_per_vc\": " << M.OmegaNsPerVc << ",\n"
       << "      \"tiers\": {\n";
    writeTierJson(OS, M.Tiers, "        ");
    OS << "      }\n    }" << (I + 1 < Micros.size() ? "," : "") << "\n";
  }
  OS << "  },\n"
     << "  \"parallel_shared_cache\": {\"workers\": 4, \"ns_per_query\": "
     << ParallelNs << "},\n"
     << "  \"interner\": {\"formulas\": " << Intern.Nodes
     << ", \"dedup_hits\": " << Intern.DedupHits
     << ", \"bytes\": " << Intern.Bytes << "}\n"
     << "}\n";
  std::fprintf(stderr, "wrote %s\n", JsonPath.c_str());
  return 0;
}
