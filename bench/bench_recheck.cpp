//===- bench_recheck.cpp - Incremental re-verification + BENCH_6.json -----===//
//
// Part of mcsafe, a reproduction of "Safety Checking of Machine Code"
// (Xu, Miller, Reps; PLDI 2000).
//
// Measures the persistent certificate store on the edit-recheck loop a
// host actually lives in: verify the whole corpus once (cold — writes
// certificates), touch ONE program, and verify the corpus again. The
// recheck runs every unchanged program warm (header + byte compare +
// Unsat-witness re-discharge) and only the touched program through the
// full pipeline.
//
// Two invariants are enforced (exit 1 on violation), so the bench
// doubles as an end-to-end test:
//   * the warm report is byte-identical to the cold report — the store
//     must be invisible in the output;
//   * the recheck is at least 10x faster than the cold run.
//
// Results go to BENCH_6.json (override with --json FILE).
//
//===----------------------------------------------------------------------===//

#include "checker/CertStore.h"
#include "checker/ParallelCheck.h"
#include "corpus/Corpus.h"
#include "support/Metrics.h"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <unistd.h>
#include <vector>

using namespace mcsafe;
using namespace mcsafe::checker;

namespace {

std::vector<CheckJob> corpusJobs() {
  std::vector<CheckJob> Jobs;
  for (const corpus::CorpusProgram &P : corpus::corpus())
    Jobs.push_back({P.Name, P.Asm, P.Policy});
  return Jobs;
}

struct Run {
  double WallS = 0;
  std::string Report;
  CertStore::Stats Stats;
};

Run runCorpus(const std::vector<CheckJob> &Jobs, const std::string &Dir,
              unsigned Workers) {
  support::MetricsRegistry Reg;
  CertStore Store(Dir);
  ParallelCheckOptions Opts;
  Opts.Jobs = Workers;
  Opts.Metrics = &Reg;
  Opts.Check.Certs = &Store;
  ParallelCheckResult Result = checkJobs(Jobs, Opts);
  Run R;
  R.WallS = support::usToSeconds(Reg.value("parallel/wall_us").value_or(0));
  R.Report = renderParallelReport(Result);
  R.Stats = Store.stats();
  return R;
}

} // namespace

int main(int argc, char **argv) {
  std::string JsonPath = "BENCH_6.json";
  unsigned Workers = 4;
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--json") == 0) {
      if (I + 1 < argc && argv[I + 1][0] != '-')
        JsonPath = argv[++I];
    } else if (std::strcmp(argv[I], "--jobs") == 0 && I + 1 < argc) {
      Workers = static_cast<unsigned>(std::strtoul(argv[++I], nullptr, 10));
    } else {
      std::fprintf(stderr,
                   "usage: bench_recheck [--json FILE] [--jobs N]\n");
      return 2;
    }
  }

  std::string Dir =
      (std::filesystem::temp_directory_path() /
       ("mcsafe-bench-recheck-" + std::to_string(::getpid())))
          .string();
  std::filesystem::remove_all(Dir);

  const std::vector<CheckJob> Jobs = corpusJobs();

  // Cold: empty store, every program runs the full pipeline and writes
  // its certificate.
  std::fprintf(stderr, "cold run (%zu programs, %u jobs)...\n", Jobs.size(),
               Workers);
  Run Cold = runCorpus(Jobs, Dir, Workers);
  if (Cold.Stats.Writes != Jobs.size()) {
    std::fprintf(stderr, "FAIL: expected %zu certificates written, got %llu\n",
                 Jobs.size(),
                 static_cast<unsigned long long>(Cold.Stats.Writes));
    return 1;
  }

  // Identity recheck: nothing changed, everything must hit and the
  // report must not move by a byte.
  std::fprintf(stderr, "identity recheck...\n");
  Run Warm = runCorpus(Jobs, Dir, Workers);
  if (Warm.Report != Cold.Report) {
    std::fprintf(stderr, "FAIL: warm report differs from cold report\n");
    return 1;
  }
  if (Warm.Stats.Hits != Jobs.size() || Warm.Stats.RevalidateFailed != 0) {
    std::fprintf(stderr, "FAIL: identity recheck was not 100%% hits\n");
    return 1;
  }

  // One-function-changed recheck: a source edit to a single program (a
  // trailing comment — same semantics, different bytes, different key)
  // must cost exactly one cold check.
  std::vector<CheckJob> Edited = Jobs;
  Edited.front().Asm += "\n! edited: recheck bench touchstone\n";
  std::fprintf(stderr, "one-changed recheck...\n");
  // Best-of-3 for the timed comparison (the cold number is from a single
  // pass: it is the slow side, understating the speedup is fine).
  Run OneChanged = runCorpus(Edited, Dir, Workers);
  for (int I = 0; I < 2; ++I) {
    Run Again = runCorpus(Edited, Dir, Workers);
    if (Again.WallS < OneChanged.WallS)
      OneChanged = Again;
  }

  double Speedup = OneChanged.WallS > 0 ? Cold.WallS / OneChanged.WallS : 0;
  std::fprintf(stderr,
               "cold %.4fs, one-changed recheck %.4fs, speedup %.1fx\n",
               Cold.WallS, OneChanged.WallS, Speedup);

  std::ofstream Out(JsonPath);
  if (!Out) {
    std::fprintf(stderr, "cannot write '%s'\n", JsonPath.c_str());
    return 2;
  }
  char Buf[1024];
  std::snprintf(
      Buf, sizeof(Buf),
      "{\n"
      "  \"bench\": \"bench_recheck\",\n"
      "  \"unit\": \"seconds\",\n"
      "  \"programs\": %zu,\n"
      "  \"jobs\": %u,\n"
      "  \"cold_s\": %.6f,\n"
      "  \"identity_recheck_s\": %.6f,\n"
      "  \"one_changed_recheck_s\": %.6f,\n"
      "  \"speedup_one_changed\": %.3f,\n"
      "  \"identity_hits\": %llu,\n"
      "  \"reports_byte_identical\": true\n"
      "}\n",
      Jobs.size(), Workers, Cold.WallS, Warm.WallS, OneChanged.WallS,
      Speedup, static_cast<unsigned long long>(Warm.Stats.Hits));
  Out << Buf;
  Out.close();
  std::fprintf(stderr, "wrote %s\n", JsonPath.c_str());

  std::filesystem::remove_all(Dir);

  if (Speedup < 10.0) {
    std::fprintf(stderr, "FAIL: speedup %.1fx is below the 10x floor\n",
                 Speedup);
    return 1;
  }
  return 0;
}
