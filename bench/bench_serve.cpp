//===- bench_serve.cpp - Resident daemon vs cold process + BENCH_7.json ---===//
//
// Part of mcsafe, a reproduction of "Safety Checking of Machine Code"
// (Xu, Miller, Reps; PLDI 2000).
//
// Measures what mcsafe-serve exists for: the per-request latency of a
// warm resident daemon (interner, type factory, prover cache, and
// certificate store all hot in one process) against the cost a host
// pays today — fork/exec'ing a fresh mcsafe-check process per request,
// which re-parses, re-analyzes, and re-proves from nothing.
//
//   cold: one `mcsafe-check --corpus <name>` process per corpus
//         program, timed end to end (spawn + link + check + exit);
//   warm: the same programs through a live Server over a Unix socket,
//         after a first pass has populated the caches and cert store.
//
// Two invariants are enforced (exit 1 on violation):
//   * warm daemon responses carry the same verdict the cold process
//     reported via its exit code — the speed must cost nothing;
//   * warm per-request latency beats cold by at least 5x.
//
// Results go to BENCH_7.json (override with --json FILE).
//
//===----------------------------------------------------------------------===//

#include "serve/Client.h"
#include "serve/Server.h"

#include "corpus/Corpus.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

using namespace mcsafe;
using namespace mcsafe::checker;
using namespace mcsafe::serve;

namespace {

double secondsSince(std::chrono::steady_clock::time_point T0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
      .count();
}

/// Locates the mcsafe-check binary relative to our own executable
/// (build/bench/bench_serve -> build/tools/mcsafe-check/mcsafe-check).
std::string defaultCheckBin() {
  std::error_code Ec;
  std::filesystem::path Self =
      std::filesystem::read_symlink("/proc/self/exe", Ec);
  if (Ec)
    return {};
  return (Self.parent_path().parent_path() / "tools" / "mcsafe-check" /
          "mcsafe-check")
      .string();
}

/// Runs `mcsafe-check --corpus <name>` as a fresh process; returns the
/// exit code (0 safe, 1 unsafe, 2 unknown, ...), or -1 on spawn failure.
int runColdProcess(const std::string &Bin, const std::string &Name) {
  pid_t Pid = ::fork();
  if (Pid < 0)
    return -1;
  if (Pid == 0) {
    // Child: silence the report; we only time and collect the verdict.
    ::freopen("/dev/null", "w", stdout);
    ::freopen("/dev/null", "w", stderr);
    ::execl(Bin.c_str(), Bin.c_str(), "--corpus", Name.c_str(),
            "--jobs", "1", static_cast<char *>(nullptr));
    _exit(127);
  }
  int Status = 0;
  if (::waitpid(Pid, &Status, 0) < 0)
    return -1;
  return WIFEXITED(Status) ? WEXITSTATUS(Status) : -1;
}

int verdictExitCode(CheckVerdict V) {
  switch (V) {
  case CheckVerdict::Safe:
    return 0;
  case CheckVerdict::Unsafe:
    return 1;
  case CheckVerdict::Unknown:
    return 2;
  case CheckVerdict::MalformedInput:
    return 3;
  case CheckVerdict::InternalError:
    return 4;
  }
  return 4;
}

} // namespace

int main(int argc, char **argv) {
  std::string JsonPath = "BENCH_7.json";
  std::string CheckBin = defaultCheckBin();
  unsigned Jobs = 4;
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--json") == 0 && I + 1 < argc) {
      JsonPath = argv[++I];
    } else if (std::strcmp(argv[I], "--check-bin") == 0 && I + 1 < argc) {
      CheckBin = argv[++I];
    } else if (std::strcmp(argv[I], "--jobs") == 0 && I + 1 < argc) {
      Jobs = static_cast<unsigned>(std::strtoul(argv[++I], nullptr, 10));
    } else {
      std::fprintf(stderr,
                   "usage: bench_serve [--json FILE] [--check-bin PATH] "
                   "[--jobs N]\n");
      return 2;
    }
  }
  if (CheckBin.empty() || !std::filesystem::exists(CheckBin)) {
    std::fprintf(stderr, "cannot find mcsafe-check at '%s' "
                         "(pass --check-bin)\n",
                 CheckBin.c_str());
    return 2;
  }

  const std::vector<corpus::CorpusProgram> &Programs = corpus::corpus();

  // --- Cold side: one process per program -------------------------------
  std::fprintf(stderr, "cold: %zu mcsafe-check process starts...\n",
               Programs.size());
  std::vector<int> ColdExit(Programs.size(), -1);
  auto ColdT0 = std::chrono::steady_clock::now();
  for (size_t I = 0; I < Programs.size(); ++I) {
    ColdExit[I] = runColdProcess(CheckBin, Programs[I].Name);
    if (ColdExit[I] < 0 || ColdExit[I] == 127) {
      std::fprintf(stderr, "FAIL: could not run %s --corpus %s\n",
                   CheckBin.c_str(), Programs[I].Name.c_str());
      return 1;
    }
  }
  double ColdS = secondsSince(ColdT0);

  // --- Warm side: resident daemon, second pass --------------------------
  std::string CertDir =
      (std::filesystem::temp_directory_path() /
       ("mcsafe-bench-serve-" + std::to_string(::getpid())))
          .string();
  std::filesystem::remove_all(CertDir);
  std::string Sock = "/tmp/mcsafe-bench-" + std::to_string(::getpid()) +
                     ".sock";

  ServerOptions SOpts;
  SOpts.SocketPath = Sock;
  SOpts.Jobs = Jobs;
  SOpts.CertDir = CertDir;
  Server Srv(SOpts);
  std::string Error;
  if (!Srv.start(Error)) {
    std::fprintf(stderr, "FAIL: server start: %s\n", Error.c_str());
    return 1;
  }

  Client Conn;
  if (!Conn.connect(Sock, Error)) {
    std::fprintf(stderr, "FAIL: connect: %s\n", Error.c_str());
    return 1;
  }

  auto passOnce = [&](std::vector<int> *ExitCodes) -> bool {
    for (size_t I = 0; I < Programs.size(); ++I) {
      CheckRequestMsg Req;
      Req.ReqId = I;
      Req.Name = Programs[I].Name;
      Req.Asm = Programs[I].Asm;
      Req.Policy = Programs[I].Policy;
      CheckResponseMsg Resp;
      if (!Conn.check(Req, Resp, Error)) {
        std::fprintf(stderr, "FAIL: daemon check '%s': %s\n",
                     Programs[I].Name.c_str(), Error.c_str());
        return false;
      }
      if (Resp.Shed) {
        std::fprintf(stderr, "FAIL: request '%s' was shed at idle\n",
                     Programs[I].Name.c_str());
        return false;
      }
      if (ExitCodes)
        (*ExitCodes)[I] = verdictExitCode(Resp.Report.Verdict);
    }
    return true;
  };

  // First pass populates the prover cache and certificate store.
  std::fprintf(stderr, "warm-up pass through the daemon...\n");
  if (!passOnce(nullptr))
    return 1;

  // Timed warm pass, best of 3.
  std::fprintf(stderr, "warm: %zu requests against the hot daemon...\n",
               Programs.size());
  std::vector<int> WarmExit(Programs.size(), -1);
  double WarmS = 1e30;
  for (int Rep = 0; Rep < 3; ++Rep) {
    auto T0 = std::chrono::steady_clock::now();
    if (!passOnce(&WarmExit))
      return 1;
    WarmS = std::min(WarmS, secondsSince(T0));
  }

  Srv.requestStop();
  Srv.wait();
  std::filesystem::remove_all(CertDir);

  // Verdict parity: the daemon's answers equal the cold processes'.
  for (size_t I = 0; I < Programs.size(); ++I) {
    if (WarmExit[I] != ColdExit[I]) {
      std::fprintf(stderr,
                   "FAIL: verdict mismatch on '%s': cold exit %d, "
                   "daemon %d\n",
                   Programs[I].Name.c_str(), ColdExit[I], WarmExit[I]);
      return 1;
    }
  }

  double ColdPerReq = ColdS / static_cast<double>(Programs.size());
  double WarmPerReq = WarmS / static_cast<double>(Programs.size());
  double Speedup = WarmPerReq > 0 ? ColdPerReq / WarmPerReq : 0;
  std::fprintf(stderr,
               "cold %.4fs (%.2fms/req), warm %.4fs (%.2fms/req), "
               "speedup %.1fx\n",
               ColdS, ColdPerReq * 1e3, WarmS, WarmPerReq * 1e3, Speedup);

  std::ofstream Out(JsonPath);
  if (!Out) {
    std::fprintf(stderr, "cannot write '%s'\n", JsonPath.c_str());
    return 2;
  }
  char Buf[1024];
  std::snprintf(Buf, sizeof(Buf),
                "{\n"
                "  \"bench\": \"bench_serve\",\n"
                "  \"unit\": \"seconds\",\n"
                "  \"programs\": %zu,\n"
                "  \"server_jobs\": %u,\n"
                "  \"cold_process_total_s\": %.6f,\n"
                "  \"cold_process_per_request_s\": %.6f,\n"
                "  \"warm_daemon_total_s\": %.6f,\n"
                "  \"warm_daemon_per_request_s\": %.6f,\n"
                "  \"speedup_warm_vs_cold\": %.3f,\n"
                "  \"verdicts_match_cold_exit_codes\": true\n"
                "}\n",
                Programs.size(), Jobs, ColdS, ColdPerReq, WarmS, WarmPerReq,
                Speedup);
  Out << Buf;
  Out.close();
  std::fprintf(stderr, "wrote %s\n", JsonPath.c_str());

  if (Speedup < 5.0) {
    std::fprintf(stderr, "FAIL: speedup %.1fx is below the 5x floor\n",
                 Speedup);
    return 1;
  }
  return 0;
}
