
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_figure9.cpp" "bench/CMakeFiles/bench_figure9.dir/bench_figure9.cpp.o" "gcc" "bench/CMakeFiles/bench_figure9.dir/bench_figure9.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/checker/CMakeFiles/mcsafe_checker.dir/DependInfo.cmake"
  "/root/repo/build/src/corpus/CMakeFiles/mcsafe_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/policy/CMakeFiles/mcsafe_policy.dir/DependInfo.cmake"
  "/root/repo/build/src/typestate/CMakeFiles/mcsafe_typestate.dir/DependInfo.cmake"
  "/root/repo/build/src/cfg/CMakeFiles/mcsafe_cfg.dir/DependInfo.cmake"
  "/root/repo/build/src/constraints/CMakeFiles/mcsafe_constraints.dir/DependInfo.cmake"
  "/root/repo/build/src/sparc/CMakeFiles/mcsafe_sparc.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mcsafe_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
