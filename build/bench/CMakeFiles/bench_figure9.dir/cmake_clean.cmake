file(REMOVE_RECURSE
  "CMakeFiles/bench_figure9.dir/bench_figure9.cpp.o"
  "CMakeFiles/bench_figure9.dir/bench_figure9.cpp.o.d"
  "bench_figure9"
  "bench_figure9.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure9.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
