# Empty dependencies file for bench_figure9.
# This may be replaced when dependencies are built.
