file(REMOVE_RECURSE
  "CMakeFiles/bench_invariant.dir/bench_invariant.cpp.o"
  "CMakeFiles/bench_invariant.dir/bench_invariant.cpp.o.d"
  "bench_invariant"
  "bench_invariant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_invariant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
