# Empty compiler generated dependencies file for bench_invariant.
# This may be replaced when dependencies are built.
