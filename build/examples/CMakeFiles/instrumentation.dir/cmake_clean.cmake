file(REMOVE_RECURSE
  "CMakeFiles/instrumentation.dir/instrumentation.cpp.o"
  "CMakeFiles/instrumentation.dir/instrumentation.cpp.o.d"
  "instrumentation"
  "instrumentation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/instrumentation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
