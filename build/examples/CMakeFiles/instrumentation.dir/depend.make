# Empty dependencies file for instrumentation.
# This may be replaced when dependencies are built.
