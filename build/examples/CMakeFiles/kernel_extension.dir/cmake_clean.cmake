file(REMOVE_RECURSE
  "CMakeFiles/kernel_extension.dir/kernel_extension.cpp.o"
  "CMakeFiles/kernel_extension.dir/kernel_extension.cpp.o.d"
  "kernel_extension"
  "kernel_extension.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernel_extension.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
