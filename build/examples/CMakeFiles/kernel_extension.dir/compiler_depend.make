# Empty compiler generated dependencies file for kernel_extension.
# This may be replaced when dependencies are built.
