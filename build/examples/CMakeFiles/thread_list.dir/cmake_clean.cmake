file(REMOVE_RECURSE
  "CMakeFiles/thread_list.dir/thread_list.cpp.o"
  "CMakeFiles/thread_list.dir/thread_list.cpp.o.d"
  "thread_list"
  "thread_list.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thread_list.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
