# Empty dependencies file for thread_list.
# This may be replaced when dependencies are built.
