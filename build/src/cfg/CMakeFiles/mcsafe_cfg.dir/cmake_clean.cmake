file(REMOVE_RECURSE
  "CMakeFiles/mcsafe_cfg.dir/Cfg.cpp.o"
  "CMakeFiles/mcsafe_cfg.dir/Cfg.cpp.o.d"
  "CMakeFiles/mcsafe_cfg.dir/Dominators.cpp.o"
  "CMakeFiles/mcsafe_cfg.dir/Dominators.cpp.o.d"
  "CMakeFiles/mcsafe_cfg.dir/LoopInfo.cpp.o"
  "CMakeFiles/mcsafe_cfg.dir/LoopInfo.cpp.o.d"
  "libmcsafe_cfg.a"
  "libmcsafe_cfg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcsafe_cfg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
