file(REMOVE_RECURSE
  "libmcsafe_cfg.a"
)
