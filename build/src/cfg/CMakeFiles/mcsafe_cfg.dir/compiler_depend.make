# Empty compiler generated dependencies file for mcsafe_cfg.
# This may be replaced when dependencies are built.
