
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/checker/Annotation.cpp" "src/checker/CMakeFiles/mcsafe_checker.dir/Annotation.cpp.o" "gcc" "src/checker/CMakeFiles/mcsafe_checker.dir/Annotation.cpp.o.d"
  "/root/repo/src/checker/Automata.cpp" "src/checker/CMakeFiles/mcsafe_checker.dir/Automata.cpp.o" "gcc" "src/checker/CMakeFiles/mcsafe_checker.dir/Automata.cpp.o.d"
  "/root/repo/src/checker/GlobalVerify.cpp" "src/checker/CMakeFiles/mcsafe_checker.dir/GlobalVerify.cpp.o" "gcc" "src/checker/CMakeFiles/mcsafe_checker.dir/GlobalVerify.cpp.o.d"
  "/root/repo/src/checker/Preparation.cpp" "src/checker/CMakeFiles/mcsafe_checker.dir/Preparation.cpp.o" "gcc" "src/checker/CMakeFiles/mcsafe_checker.dir/Preparation.cpp.o.d"
  "/root/repo/src/checker/Propagation.cpp" "src/checker/CMakeFiles/mcsafe_checker.dir/Propagation.cpp.o" "gcc" "src/checker/CMakeFiles/mcsafe_checker.dir/Propagation.cpp.o.d"
  "/root/repo/src/checker/Report.cpp" "src/checker/CMakeFiles/mcsafe_checker.dir/Report.cpp.o" "gcc" "src/checker/CMakeFiles/mcsafe_checker.dir/Report.cpp.o.d"
  "/root/repo/src/checker/SafetyChecker.cpp" "src/checker/CMakeFiles/mcsafe_checker.dir/SafetyChecker.cpp.o" "gcc" "src/checker/CMakeFiles/mcsafe_checker.dir/SafetyChecker.cpp.o.d"
  "/root/repo/src/checker/Wlp.cpp" "src/checker/CMakeFiles/mcsafe_checker.dir/Wlp.cpp.o" "gcc" "src/checker/CMakeFiles/mcsafe_checker.dir/Wlp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/policy/CMakeFiles/mcsafe_policy.dir/DependInfo.cmake"
  "/root/repo/build/src/typestate/CMakeFiles/mcsafe_typestate.dir/DependInfo.cmake"
  "/root/repo/build/src/cfg/CMakeFiles/mcsafe_cfg.dir/DependInfo.cmake"
  "/root/repo/build/src/constraints/CMakeFiles/mcsafe_constraints.dir/DependInfo.cmake"
  "/root/repo/build/src/sparc/CMakeFiles/mcsafe_sparc.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mcsafe_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
