file(REMOVE_RECURSE
  "CMakeFiles/mcsafe_checker.dir/Annotation.cpp.o"
  "CMakeFiles/mcsafe_checker.dir/Annotation.cpp.o.d"
  "CMakeFiles/mcsafe_checker.dir/Automata.cpp.o"
  "CMakeFiles/mcsafe_checker.dir/Automata.cpp.o.d"
  "CMakeFiles/mcsafe_checker.dir/GlobalVerify.cpp.o"
  "CMakeFiles/mcsafe_checker.dir/GlobalVerify.cpp.o.d"
  "CMakeFiles/mcsafe_checker.dir/Preparation.cpp.o"
  "CMakeFiles/mcsafe_checker.dir/Preparation.cpp.o.d"
  "CMakeFiles/mcsafe_checker.dir/Propagation.cpp.o"
  "CMakeFiles/mcsafe_checker.dir/Propagation.cpp.o.d"
  "CMakeFiles/mcsafe_checker.dir/Report.cpp.o"
  "CMakeFiles/mcsafe_checker.dir/Report.cpp.o.d"
  "CMakeFiles/mcsafe_checker.dir/SafetyChecker.cpp.o"
  "CMakeFiles/mcsafe_checker.dir/SafetyChecker.cpp.o.d"
  "CMakeFiles/mcsafe_checker.dir/Wlp.cpp.o"
  "CMakeFiles/mcsafe_checker.dir/Wlp.cpp.o.d"
  "libmcsafe_checker.a"
  "libmcsafe_checker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcsafe_checker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
