file(REMOVE_RECURSE
  "libmcsafe_checker.a"
)
