# Empty dependencies file for mcsafe_checker.
# This may be replaced when dependencies are built.
