
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/constraints/Constraint.cpp" "src/constraints/CMakeFiles/mcsafe_constraints.dir/Constraint.cpp.o" "gcc" "src/constraints/CMakeFiles/mcsafe_constraints.dir/Constraint.cpp.o.d"
  "/root/repo/src/constraints/Eliminate.cpp" "src/constraints/CMakeFiles/mcsafe_constraints.dir/Eliminate.cpp.o" "gcc" "src/constraints/CMakeFiles/mcsafe_constraints.dir/Eliminate.cpp.o.d"
  "/root/repo/src/constraints/Formula.cpp" "src/constraints/CMakeFiles/mcsafe_constraints.dir/Formula.cpp.o" "gcc" "src/constraints/CMakeFiles/mcsafe_constraints.dir/Formula.cpp.o.d"
  "/root/repo/src/constraints/LinearExpr.cpp" "src/constraints/CMakeFiles/mcsafe_constraints.dir/LinearExpr.cpp.o" "gcc" "src/constraints/CMakeFiles/mcsafe_constraints.dir/LinearExpr.cpp.o.d"
  "/root/repo/src/constraints/Normalize.cpp" "src/constraints/CMakeFiles/mcsafe_constraints.dir/Normalize.cpp.o" "gcc" "src/constraints/CMakeFiles/mcsafe_constraints.dir/Normalize.cpp.o.d"
  "/root/repo/src/constraints/OmegaTest.cpp" "src/constraints/CMakeFiles/mcsafe_constraints.dir/OmegaTest.cpp.o" "gcc" "src/constraints/CMakeFiles/mcsafe_constraints.dir/OmegaTest.cpp.o.d"
  "/root/repo/src/constraints/Prover.cpp" "src/constraints/CMakeFiles/mcsafe_constraints.dir/Prover.cpp.o" "gcc" "src/constraints/CMakeFiles/mcsafe_constraints.dir/Prover.cpp.o.d"
  "/root/repo/src/constraints/Var.cpp" "src/constraints/CMakeFiles/mcsafe_constraints.dir/Var.cpp.o" "gcc" "src/constraints/CMakeFiles/mcsafe_constraints.dir/Var.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/mcsafe_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
