file(REMOVE_RECURSE
  "CMakeFiles/mcsafe_constraints.dir/Constraint.cpp.o"
  "CMakeFiles/mcsafe_constraints.dir/Constraint.cpp.o.d"
  "CMakeFiles/mcsafe_constraints.dir/Eliminate.cpp.o"
  "CMakeFiles/mcsafe_constraints.dir/Eliminate.cpp.o.d"
  "CMakeFiles/mcsafe_constraints.dir/Formula.cpp.o"
  "CMakeFiles/mcsafe_constraints.dir/Formula.cpp.o.d"
  "CMakeFiles/mcsafe_constraints.dir/LinearExpr.cpp.o"
  "CMakeFiles/mcsafe_constraints.dir/LinearExpr.cpp.o.d"
  "CMakeFiles/mcsafe_constraints.dir/Normalize.cpp.o"
  "CMakeFiles/mcsafe_constraints.dir/Normalize.cpp.o.d"
  "CMakeFiles/mcsafe_constraints.dir/OmegaTest.cpp.o"
  "CMakeFiles/mcsafe_constraints.dir/OmegaTest.cpp.o.d"
  "CMakeFiles/mcsafe_constraints.dir/Prover.cpp.o"
  "CMakeFiles/mcsafe_constraints.dir/Prover.cpp.o.d"
  "CMakeFiles/mcsafe_constraints.dir/Var.cpp.o"
  "CMakeFiles/mcsafe_constraints.dir/Var.cpp.o.d"
  "libmcsafe_constraints.a"
  "libmcsafe_constraints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcsafe_constraints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
