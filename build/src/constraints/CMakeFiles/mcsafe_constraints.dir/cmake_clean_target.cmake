file(REMOVE_RECURSE
  "libmcsafe_constraints.a"
)
