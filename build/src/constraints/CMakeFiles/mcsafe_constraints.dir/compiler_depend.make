# Empty compiler generated dependencies file for mcsafe_constraints.
# This may be replaced when dependencies are built.
