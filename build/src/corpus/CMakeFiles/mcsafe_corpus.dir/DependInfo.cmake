
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/corpus/Btree.cpp" "src/corpus/CMakeFiles/mcsafe_corpus.dir/Btree.cpp.o" "gcc" "src/corpus/CMakeFiles/mcsafe_corpus.dir/Btree.cpp.o.d"
  "/root/repo/src/corpus/Corpus.cpp" "src/corpus/CMakeFiles/mcsafe_corpus.dir/Corpus.cpp.o" "gcc" "src/corpus/CMakeFiles/mcsafe_corpus.dir/Corpus.cpp.o.d"
  "/root/repo/src/corpus/Generated.cpp" "src/corpus/CMakeFiles/mcsafe_corpus.dir/Generated.cpp.o" "gcc" "src/corpus/CMakeFiles/mcsafe_corpus.dir/Generated.cpp.o.d"
  "/root/repo/src/corpus/HeapSort.cpp" "src/corpus/CMakeFiles/mcsafe_corpus.dir/HeapSort.cpp.o" "gcc" "src/corpus/CMakeFiles/mcsafe_corpus.dir/HeapSort.cpp.o.d"
  "/root/repo/src/corpus/Jpvm.cpp" "src/corpus/CMakeFiles/mcsafe_corpus.dir/Jpvm.cpp.o" "gcc" "src/corpus/CMakeFiles/mcsafe_corpus.dir/Jpvm.cpp.o.d"
  "/root/repo/src/corpus/SmallPrograms.cpp" "src/corpus/CMakeFiles/mcsafe_corpus.dir/SmallPrograms.cpp.o" "gcc" "src/corpus/CMakeFiles/mcsafe_corpus.dir/SmallPrograms.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/mcsafe_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
