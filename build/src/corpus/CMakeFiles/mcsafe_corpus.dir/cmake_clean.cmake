file(REMOVE_RECURSE
  "CMakeFiles/mcsafe_corpus.dir/Btree.cpp.o"
  "CMakeFiles/mcsafe_corpus.dir/Btree.cpp.o.d"
  "CMakeFiles/mcsafe_corpus.dir/Corpus.cpp.o"
  "CMakeFiles/mcsafe_corpus.dir/Corpus.cpp.o.d"
  "CMakeFiles/mcsafe_corpus.dir/Generated.cpp.o"
  "CMakeFiles/mcsafe_corpus.dir/Generated.cpp.o.d"
  "CMakeFiles/mcsafe_corpus.dir/HeapSort.cpp.o"
  "CMakeFiles/mcsafe_corpus.dir/HeapSort.cpp.o.d"
  "CMakeFiles/mcsafe_corpus.dir/Jpvm.cpp.o"
  "CMakeFiles/mcsafe_corpus.dir/Jpvm.cpp.o.d"
  "CMakeFiles/mcsafe_corpus.dir/SmallPrograms.cpp.o"
  "CMakeFiles/mcsafe_corpus.dir/SmallPrograms.cpp.o.d"
  "libmcsafe_corpus.a"
  "libmcsafe_corpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcsafe_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
