file(REMOVE_RECURSE
  "libmcsafe_corpus.a"
)
