# Empty dependencies file for mcsafe_corpus.
# This may be replaced when dependencies are built.
