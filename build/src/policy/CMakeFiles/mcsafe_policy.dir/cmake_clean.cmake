file(REMOVE_RECURSE
  "CMakeFiles/mcsafe_policy.dir/Policy.cpp.o"
  "CMakeFiles/mcsafe_policy.dir/Policy.cpp.o.d"
  "CMakeFiles/mcsafe_policy.dir/PolicyParser.cpp.o"
  "CMakeFiles/mcsafe_policy.dir/PolicyParser.cpp.o.d"
  "libmcsafe_policy.a"
  "libmcsafe_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcsafe_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
