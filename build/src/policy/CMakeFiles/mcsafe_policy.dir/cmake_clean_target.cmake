file(REMOVE_RECURSE
  "libmcsafe_policy.a"
)
