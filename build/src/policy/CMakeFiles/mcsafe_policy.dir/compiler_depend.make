# Empty compiler generated dependencies file for mcsafe_policy.
# This may be replaced when dependencies are built.
