
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sparc/AsmParser.cpp" "src/sparc/CMakeFiles/mcsafe_sparc.dir/AsmParser.cpp.o" "gcc" "src/sparc/CMakeFiles/mcsafe_sparc.dir/AsmParser.cpp.o.d"
  "/root/repo/src/sparc/Encoding.cpp" "src/sparc/CMakeFiles/mcsafe_sparc.dir/Encoding.cpp.o" "gcc" "src/sparc/CMakeFiles/mcsafe_sparc.dir/Encoding.cpp.o.d"
  "/root/repo/src/sparc/Instruction.cpp" "src/sparc/CMakeFiles/mcsafe_sparc.dir/Instruction.cpp.o" "gcc" "src/sparc/CMakeFiles/mcsafe_sparc.dir/Instruction.cpp.o.d"
  "/root/repo/src/sparc/Interpreter.cpp" "src/sparc/CMakeFiles/mcsafe_sparc.dir/Interpreter.cpp.o" "gcc" "src/sparc/CMakeFiles/mcsafe_sparc.dir/Interpreter.cpp.o.d"
  "/root/repo/src/sparc/Module.cpp" "src/sparc/CMakeFiles/mcsafe_sparc.dir/Module.cpp.o" "gcc" "src/sparc/CMakeFiles/mcsafe_sparc.dir/Module.cpp.o.d"
  "/root/repo/src/sparc/Registers.cpp" "src/sparc/CMakeFiles/mcsafe_sparc.dir/Registers.cpp.o" "gcc" "src/sparc/CMakeFiles/mcsafe_sparc.dir/Registers.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/mcsafe_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
