file(REMOVE_RECURSE
  "CMakeFiles/mcsafe_sparc.dir/AsmParser.cpp.o"
  "CMakeFiles/mcsafe_sparc.dir/AsmParser.cpp.o.d"
  "CMakeFiles/mcsafe_sparc.dir/Encoding.cpp.o"
  "CMakeFiles/mcsafe_sparc.dir/Encoding.cpp.o.d"
  "CMakeFiles/mcsafe_sparc.dir/Instruction.cpp.o"
  "CMakeFiles/mcsafe_sparc.dir/Instruction.cpp.o.d"
  "CMakeFiles/mcsafe_sparc.dir/Interpreter.cpp.o"
  "CMakeFiles/mcsafe_sparc.dir/Interpreter.cpp.o.d"
  "CMakeFiles/mcsafe_sparc.dir/Module.cpp.o"
  "CMakeFiles/mcsafe_sparc.dir/Module.cpp.o.d"
  "CMakeFiles/mcsafe_sparc.dir/Registers.cpp.o"
  "CMakeFiles/mcsafe_sparc.dir/Registers.cpp.o.d"
  "libmcsafe_sparc.a"
  "libmcsafe_sparc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcsafe_sparc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
