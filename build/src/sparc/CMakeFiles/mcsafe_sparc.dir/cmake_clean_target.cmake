file(REMOVE_RECURSE
  "libmcsafe_sparc.a"
)
