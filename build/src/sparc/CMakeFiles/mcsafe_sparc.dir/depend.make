# Empty dependencies file for mcsafe_sparc.
# This may be replaced when dependencies are built.
