file(REMOVE_RECURSE
  "CMakeFiles/mcsafe_support.dir/CheckedInt.cpp.o"
  "CMakeFiles/mcsafe_support.dir/CheckedInt.cpp.o.d"
  "CMakeFiles/mcsafe_support.dir/Diagnostics.cpp.o"
  "CMakeFiles/mcsafe_support.dir/Diagnostics.cpp.o.d"
  "CMakeFiles/mcsafe_support.dir/StringUtils.cpp.o"
  "CMakeFiles/mcsafe_support.dir/StringUtils.cpp.o.d"
  "libmcsafe_support.a"
  "libmcsafe_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcsafe_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
