file(REMOVE_RECURSE
  "libmcsafe_support.a"
)
