# Empty compiler generated dependencies file for mcsafe_support.
# This may be replaced when dependencies are built.
