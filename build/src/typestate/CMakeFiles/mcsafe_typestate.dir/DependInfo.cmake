
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/typestate/AbsLoc.cpp" "src/typestate/CMakeFiles/mcsafe_typestate.dir/AbsLoc.cpp.o" "gcc" "src/typestate/CMakeFiles/mcsafe_typestate.dir/AbsLoc.cpp.o.d"
  "/root/repo/src/typestate/AbstractStore.cpp" "src/typestate/CMakeFiles/mcsafe_typestate.dir/AbstractStore.cpp.o" "gcc" "src/typestate/CMakeFiles/mcsafe_typestate.dir/AbstractStore.cpp.o.d"
  "/root/repo/src/typestate/Type.cpp" "src/typestate/CMakeFiles/mcsafe_typestate.dir/Type.cpp.o" "gcc" "src/typestate/CMakeFiles/mcsafe_typestate.dir/Type.cpp.o.d"
  "/root/repo/src/typestate/Typestate.cpp" "src/typestate/CMakeFiles/mcsafe_typestate.dir/Typestate.cpp.o" "gcc" "src/typestate/CMakeFiles/mcsafe_typestate.dir/Typestate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/constraints/CMakeFiles/mcsafe_constraints.dir/DependInfo.cmake"
  "/root/repo/build/src/sparc/CMakeFiles/mcsafe_sparc.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mcsafe_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
