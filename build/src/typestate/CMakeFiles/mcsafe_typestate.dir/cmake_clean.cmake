file(REMOVE_RECURSE
  "CMakeFiles/mcsafe_typestate.dir/AbsLoc.cpp.o"
  "CMakeFiles/mcsafe_typestate.dir/AbsLoc.cpp.o.d"
  "CMakeFiles/mcsafe_typestate.dir/AbstractStore.cpp.o"
  "CMakeFiles/mcsafe_typestate.dir/AbstractStore.cpp.o.d"
  "CMakeFiles/mcsafe_typestate.dir/Type.cpp.o"
  "CMakeFiles/mcsafe_typestate.dir/Type.cpp.o.d"
  "CMakeFiles/mcsafe_typestate.dir/Typestate.cpp.o"
  "CMakeFiles/mcsafe_typestate.dir/Typestate.cpp.o.d"
  "libmcsafe_typestate.a"
  "libmcsafe_typestate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcsafe_typestate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
