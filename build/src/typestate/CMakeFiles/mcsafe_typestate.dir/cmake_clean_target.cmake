file(REMOVE_RECURSE
  "libmcsafe_typestate.a"
)
