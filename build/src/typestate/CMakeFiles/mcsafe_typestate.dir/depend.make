# Empty dependencies file for mcsafe_typestate.
# This may be replaced when dependencies are built.
