# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("sparc")
subdirs("constraints")
subdirs("policy")
subdirs("checker")
subdirs("corpus")
subdirs("cfg")
subdirs("typestate")
