
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/cfg/CfgTest.cpp" "tests/cfg/CMakeFiles/cfg_test.dir/CfgTest.cpp.o" "gcc" "tests/cfg/CMakeFiles/cfg_test.dir/CfgTest.cpp.o.d"
  "/root/repo/tests/cfg/DominatorsTest.cpp" "tests/cfg/CMakeFiles/cfg_test.dir/DominatorsTest.cpp.o" "gcc" "tests/cfg/CMakeFiles/cfg_test.dir/DominatorsTest.cpp.o.d"
  "/root/repo/tests/cfg/LoopInfoTest.cpp" "tests/cfg/CMakeFiles/cfg_test.dir/LoopInfoTest.cpp.o" "gcc" "tests/cfg/CMakeFiles/cfg_test.dir/LoopInfoTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cfg/CMakeFiles/mcsafe_cfg.dir/DependInfo.cmake"
  "/root/repo/build/src/sparc/CMakeFiles/mcsafe_sparc.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mcsafe_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
