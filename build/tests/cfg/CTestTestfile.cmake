# CMake generated Testfile for 
# Source directory: /root/repo/tests/cfg
# Build directory: /root/repo/build/tests/cfg
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/cfg/cfg_test[1]_include.cmake")
