file(REMOVE_RECURSE
  "CMakeFiles/checker_test.dir/AutomataTest.cpp.o"
  "CMakeFiles/checker_test.dir/AutomataTest.cpp.o.d"
  "CMakeFiles/checker_test.dir/PostconditionTest.cpp.o"
  "CMakeFiles/checker_test.dir/PostconditionTest.cpp.o.d"
  "CMakeFiles/checker_test.dir/PropagationTest.cpp.o"
  "CMakeFiles/checker_test.dir/PropagationTest.cpp.o.d"
  "CMakeFiles/checker_test.dir/RunningExampleTest.cpp.o"
  "CMakeFiles/checker_test.dir/RunningExampleTest.cpp.o.d"
  "CMakeFiles/checker_test.dir/SafetyFeaturesTest.cpp.o"
  "CMakeFiles/checker_test.dir/SafetyFeaturesTest.cpp.o.d"
  "CMakeFiles/checker_test.dir/TrustedCallTest.cpp.o"
  "CMakeFiles/checker_test.dir/TrustedCallTest.cpp.o.d"
  "CMakeFiles/checker_test.dir/VerifierOptionsTest.cpp.o"
  "CMakeFiles/checker_test.dir/VerifierOptionsTest.cpp.o.d"
  "CMakeFiles/checker_test.dir/WlpTest.cpp.o"
  "CMakeFiles/checker_test.dir/WlpTest.cpp.o.d"
  "checker_test"
  "checker_test.pdb"
  "checker_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/checker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
