
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/constraints/ConstraintTest.cpp" "tests/constraints/CMakeFiles/constraints_test.dir/ConstraintTest.cpp.o" "gcc" "tests/constraints/CMakeFiles/constraints_test.dir/ConstraintTest.cpp.o.d"
  "/root/repo/tests/constraints/EliminateTest.cpp" "tests/constraints/CMakeFiles/constraints_test.dir/EliminateTest.cpp.o" "gcc" "tests/constraints/CMakeFiles/constraints_test.dir/EliminateTest.cpp.o.d"
  "/root/repo/tests/constraints/FormulaTest.cpp" "tests/constraints/CMakeFiles/constraints_test.dir/FormulaTest.cpp.o" "gcc" "tests/constraints/CMakeFiles/constraints_test.dir/FormulaTest.cpp.o.d"
  "/root/repo/tests/constraints/LinearExprTest.cpp" "tests/constraints/CMakeFiles/constraints_test.dir/LinearExprTest.cpp.o" "gcc" "tests/constraints/CMakeFiles/constraints_test.dir/LinearExprTest.cpp.o.d"
  "/root/repo/tests/constraints/OmegaPropertyTest.cpp" "tests/constraints/CMakeFiles/constraints_test.dir/OmegaPropertyTest.cpp.o" "gcc" "tests/constraints/CMakeFiles/constraints_test.dir/OmegaPropertyTest.cpp.o.d"
  "/root/repo/tests/constraints/OmegaTestTest.cpp" "tests/constraints/CMakeFiles/constraints_test.dir/OmegaTestTest.cpp.o" "gcc" "tests/constraints/CMakeFiles/constraints_test.dir/OmegaTestTest.cpp.o.d"
  "/root/repo/tests/constraints/ProverTest.cpp" "tests/constraints/CMakeFiles/constraints_test.dir/ProverTest.cpp.o" "gcc" "tests/constraints/CMakeFiles/constraints_test.dir/ProverTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/constraints/CMakeFiles/mcsafe_constraints.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mcsafe_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
