file(REMOVE_RECURSE
  "CMakeFiles/constraints_test.dir/ConstraintTest.cpp.o"
  "CMakeFiles/constraints_test.dir/ConstraintTest.cpp.o.d"
  "CMakeFiles/constraints_test.dir/EliminateTest.cpp.o"
  "CMakeFiles/constraints_test.dir/EliminateTest.cpp.o.d"
  "CMakeFiles/constraints_test.dir/FormulaTest.cpp.o"
  "CMakeFiles/constraints_test.dir/FormulaTest.cpp.o.d"
  "CMakeFiles/constraints_test.dir/LinearExprTest.cpp.o"
  "CMakeFiles/constraints_test.dir/LinearExprTest.cpp.o.d"
  "CMakeFiles/constraints_test.dir/OmegaPropertyTest.cpp.o"
  "CMakeFiles/constraints_test.dir/OmegaPropertyTest.cpp.o.d"
  "CMakeFiles/constraints_test.dir/OmegaTestTest.cpp.o"
  "CMakeFiles/constraints_test.dir/OmegaTestTest.cpp.o.d"
  "CMakeFiles/constraints_test.dir/ProverTest.cpp.o"
  "CMakeFiles/constraints_test.dir/ProverTest.cpp.o.d"
  "constraints_test"
  "constraints_test.pdb"
  "constraints_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/constraints_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
