
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sparc/AsmParserTest.cpp" "tests/sparc/CMakeFiles/sparc_test.dir/AsmParserTest.cpp.o" "gcc" "tests/sparc/CMakeFiles/sparc_test.dir/AsmParserTest.cpp.o.d"
  "/root/repo/tests/sparc/EncodingPropertyTest.cpp" "tests/sparc/CMakeFiles/sparc_test.dir/EncodingPropertyTest.cpp.o" "gcc" "tests/sparc/CMakeFiles/sparc_test.dir/EncodingPropertyTest.cpp.o.d"
  "/root/repo/tests/sparc/EncodingTest.cpp" "tests/sparc/CMakeFiles/sparc_test.dir/EncodingTest.cpp.o" "gcc" "tests/sparc/CMakeFiles/sparc_test.dir/EncodingTest.cpp.o.d"
  "/root/repo/tests/sparc/InstructionTest.cpp" "tests/sparc/CMakeFiles/sparc_test.dir/InstructionTest.cpp.o" "gcc" "tests/sparc/CMakeFiles/sparc_test.dir/InstructionTest.cpp.o.d"
  "/root/repo/tests/sparc/InterpreterTest.cpp" "tests/sparc/CMakeFiles/sparc_test.dir/InterpreterTest.cpp.o" "gcc" "tests/sparc/CMakeFiles/sparc_test.dir/InterpreterTest.cpp.o.d"
  "/root/repo/tests/sparc/RegistersTest.cpp" "tests/sparc/CMakeFiles/sparc_test.dir/RegistersTest.cpp.o" "gcc" "tests/sparc/CMakeFiles/sparc_test.dir/RegistersTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sparc/CMakeFiles/mcsafe_sparc.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mcsafe_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
