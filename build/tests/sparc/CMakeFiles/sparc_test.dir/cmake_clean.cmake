file(REMOVE_RECURSE
  "CMakeFiles/sparc_test.dir/AsmParserTest.cpp.o"
  "CMakeFiles/sparc_test.dir/AsmParserTest.cpp.o.d"
  "CMakeFiles/sparc_test.dir/EncodingPropertyTest.cpp.o"
  "CMakeFiles/sparc_test.dir/EncodingPropertyTest.cpp.o.d"
  "CMakeFiles/sparc_test.dir/EncodingTest.cpp.o"
  "CMakeFiles/sparc_test.dir/EncodingTest.cpp.o.d"
  "CMakeFiles/sparc_test.dir/InstructionTest.cpp.o"
  "CMakeFiles/sparc_test.dir/InstructionTest.cpp.o.d"
  "CMakeFiles/sparc_test.dir/InterpreterTest.cpp.o"
  "CMakeFiles/sparc_test.dir/InterpreterTest.cpp.o.d"
  "CMakeFiles/sparc_test.dir/RegistersTest.cpp.o"
  "CMakeFiles/sparc_test.dir/RegistersTest.cpp.o.d"
  "sparc_test"
  "sparc_test.pdb"
  "sparc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
