# Empty compiler generated dependencies file for sparc_test.
# This may be replaced when dependencies are built.
