
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/typestate/AbsLocTest.cpp" "tests/typestate/CMakeFiles/typestate_test.dir/AbsLocTest.cpp.o" "gcc" "tests/typestate/CMakeFiles/typestate_test.dir/AbsLocTest.cpp.o.d"
  "/root/repo/tests/typestate/AbstractStoreTest.cpp" "tests/typestate/CMakeFiles/typestate_test.dir/AbstractStoreTest.cpp.o" "gcc" "tests/typestate/CMakeFiles/typestate_test.dir/AbstractStoreTest.cpp.o.d"
  "/root/repo/tests/typestate/StateTest.cpp" "tests/typestate/CMakeFiles/typestate_test.dir/StateTest.cpp.o" "gcc" "tests/typestate/CMakeFiles/typestate_test.dir/StateTest.cpp.o.d"
  "/root/repo/tests/typestate/TypeTest.cpp" "tests/typestate/CMakeFiles/typestate_test.dir/TypeTest.cpp.o" "gcc" "tests/typestate/CMakeFiles/typestate_test.dir/TypeTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/typestate/CMakeFiles/mcsafe_typestate.dir/DependInfo.cmake"
  "/root/repo/build/src/constraints/CMakeFiles/mcsafe_constraints.dir/DependInfo.cmake"
  "/root/repo/build/src/sparc/CMakeFiles/mcsafe_sparc.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mcsafe_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
