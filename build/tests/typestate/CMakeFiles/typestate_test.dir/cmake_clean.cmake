file(REMOVE_RECURSE
  "CMakeFiles/typestate_test.dir/AbsLocTest.cpp.o"
  "CMakeFiles/typestate_test.dir/AbsLocTest.cpp.o.d"
  "CMakeFiles/typestate_test.dir/AbstractStoreTest.cpp.o"
  "CMakeFiles/typestate_test.dir/AbstractStoreTest.cpp.o.d"
  "CMakeFiles/typestate_test.dir/StateTest.cpp.o"
  "CMakeFiles/typestate_test.dir/StateTest.cpp.o.d"
  "CMakeFiles/typestate_test.dir/TypeTest.cpp.o"
  "CMakeFiles/typestate_test.dir/TypeTest.cpp.o.d"
  "typestate_test"
  "typestate_test.pdb"
  "typestate_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/typestate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
