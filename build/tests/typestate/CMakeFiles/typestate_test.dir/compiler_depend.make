# Empty compiler generated dependencies file for typestate_test.
# This may be replaced when dependencies are built.
