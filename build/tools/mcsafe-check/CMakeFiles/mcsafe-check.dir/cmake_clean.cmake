file(REMOVE_RECURSE
  "CMakeFiles/mcsafe-check.dir/main.cpp.o"
  "CMakeFiles/mcsafe-check.dir/main.cpp.o.d"
  "mcsafe-check"
  "mcsafe-check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcsafe-check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
