# Empty dependencies file for mcsafe-check.
# This may be replaced when dependencies are built.
