//===- instrumentation.cpp - Paradyn-style performance instrumentation ----===//
//
// Part of mcsafe, a reproduction of "Safety Checking of Machine Code"
// (Xu, Miller, Reps; PLDI 2000).
//
// The paper's motivating application from the Paradyn tool suite:
// instrumentation snippets are spliced into a running program and must
// (a) manipulate the host's counters correctly and (b) only call the
// sanctioned instrumentation entry points with valid arguments. The
// trusted-function summaries in the policy are the "control aspect" of
// the host-typestate specification: safety pre- and post-conditions for
// calling host functions.
//
//===----------------------------------------------------------------------===//

#include "checker/SafetyChecker.h"
#include "corpus/Corpus.h"

#include <cstdio>

using namespace mcsafe;
using namespace mcsafe::checker;

namespace {

// An instrumentation snippet that calls a host function the policy does
// not declare.
const char *RogueCall = R"(
  save %sp,-96,%sp
  mov %i1,%o0
  call DYNINSTdestroyEverything
  nop
  ret
  restore
)";

// One that passes the counter where the timer is expected: the parameter
// typestate check rejects it.
const char *WrongArgument = R"(
  save %sp,-96,%sp
  mov %i0,%o0      ! passes &ctr, but the summary wants the timer
  call DYNINSTstartWallTimer
  nop
  ret
  restore
)";

void run(const char *Title, const char *Asm, const char *Policy) {
  SafetyChecker Checker;
  CheckReport R = Checker.checkSource(Asm, Policy);
  std::printf("== %s ==\nverdict: %s\n", Title,
              R.Safe ? "SAFE" : "REJECTED");
  if (!R.Safe)
    std::printf("%s", R.Diags.str().c_str());
  std::printf("\n");
}

} // namespace

int main() {
  const corpus::CorpusProgram &Start =
      corpus::corpusProgram("StartTimer");
  const corpus::CorpusProgram &Stop = corpus::corpusProgram("StopTimer");

  run("start-timer instrumentation (counter 0 -> 1 starts the timer)",
      Start.Asm.c_str(), Start.Policy.c_str());
  run("stop-timer instrumentation (underflow-guarded, reports a sample)",
      Stop.Asm.c_str(), Stop.Policy.c_str());
  run("rogue snippet calling an undeclared host function", RogueCall,
      Start.Policy.c_str());
  run("snippet passing the wrong object to the timer entry point",
      WrongArgument, Start.Policy.c_str());

  // The security-automaton extension (paper Section 1): the host demands
  // a start/stop protocol on top of the per-call checks.
  const char *ProtocolPolicy = R"(
abstract timer size 40 align 8
loc tmr : timer
region H { tmr }
invoke %o0 = &tmr
trusted DYNINSTstartWallTimer {
}
trusted DYNINSTstopWallTimer {
}
automaton timer_protocol {
  state idle
  state running
  start idle
  transition idle -> running on DYNINSTstartWallTimer
  transition running -> idle on DYNINSTstopWallTimer
  final idle
}
)";
  run("protocol: start, then stop (automaton accepts)", R"(
  call DYNINSTstartWallTimer
  nop
  call DYNINSTstopWallTimer
  nop
  retl
  nop
)", ProtocolPolicy);
  run("protocol: returns with the timer still running (rejected)", R"(
  call DYNINSTstartWallTimer
  nop
  retl
  nop
)", ProtocolPolicy);
  return 0;
}
