//===- kernel_extension.cpp - Finding the paging-policy bug ---------------===//
//
// Part of mcsafe, a reproduction of "Safety Checking of Machine Code"
// (Xu, Miller, Reps; PLDI 2000).
//
// The scenario behind the paper's PagingPolicy example: an OS lets users
// load a custom page-replacement policy into the kernel (SPIN/VINO
// style). The extension walks the kernel's list of page frames looking
// for an unreferenced victim. The buggy version dereferences the list
// head without a null check — "we were able to find a safety violation
// in the example that implements a page-replacement policy: it attempts
// to dereference a pointer that could be null" — and the fixed version
// verifies.
//
//===----------------------------------------------------------------------===//

#include "checker/SafetyChecker.h"
#include "corpus/Corpus.h"

#include <cstdio>

using namespace mcsafe;
using namespace mcsafe::checker;

namespace {

// Fixed version: test the head before entering the scan.
const char *FixedAsm = R"(
  clr %o4          ! victim pfn = 0
  cmp %o1,0
  ble done
  nop
  cmp %o0,0        ! the fix: reject a null head up front
  be done
  nop
pass:
  mov %o0,%o2
scan:
  ld [%o2+4],%g1   ! p->refbit (p is provably non-null here)
  cmp %g1,0
  bne next
  nop
  ld [%o2+0],%o4
next:
  ld [%o2+8],%o2
  cmp %o2,0
  bne scan
  nop
  dec %o1
  cmp %o1,0
  bg pass
  nop
done:
  mov %o4,%o0
  retl
  nop
)";

} // namespace

int main() {
  const corpus::CorpusProgram &Buggy =
      corpus::corpusProgram("PagingPolicy");
  SafetyChecker Checker;

  std::printf("== loading the buggy page-replacement policy ==\n");
  CheckReport R1 = Checker.checkSource(Buggy.Asm, Buggy.Policy);
  std::printf("verdict: %s\n%s\n", R1.Safe ? "SAFE" : "REJECTED",
              R1.Diags.str().c_str());

  std::printf("== loading the fixed policy ==\n");
  CheckReport R2 = Checker.checkSource(FixedAsm, Buggy.Policy);
  std::printf("verdict: %s\n", R2.Safe ? "SAFE" : "REJECTED");
  if (!R2.Safe)
    std::printf("%s", R2.Diags.str().c_str());
  std::printf("(the branch-refined typestate proves every dereference "
              "non-null)\n");
  return 0;
}
