//===- quickstart.cpp - Checking your first piece of untrusted code -------===//
//
// Part of mcsafe, a reproduction of "Safety Checking of Machine Code"
// (Xu, Miller, Reps; PLDI 2000).
//
// The paper's Figure 1 end to end: a host wants to let an untrusted
// extension sum the elements of one of its integer arrays. The host
// writes down (1) what its data looks like (the host-typestate
// specification), (2) what the extension may touch (the access policy),
// and (3) how the extension is invoked (the invocation specification).
// The checker then either proves the machine code safe or points at the
// instructions that violate the safety conditions.
//
// Build and run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "checker/SafetyChecker.h"
#include "support/Metrics.h"

#include <cstdio>
#include <string>

using namespace mcsafe;
using namespace mcsafe::checker;

namespace {

// The untrusted machine code (Figure 1), exactly as a compiler would emit
// it: delayed branches, condition codes, and all.
const char *SumAsm = R"(
  mov %o0,%o2    ! %o2 = base of arr
  clr %o0        ! sum = 0
  cmp %o0,%o1
  bge 12         ! empty array: return
  clr %g3        ! i = 0 (delay slot)
  sll %g3,2,%g2  ! byte offset = 4*i
  ld [%o2+%g2],%g2
  inc %g3
  cmp %g3,%o1
  bl 6           ! loop while i < n
  add %o0,%g2,%o0
  retl
  nop
)";

// The host-side inputs: "e" is one abstract location summarizing all
// elements of the array; arr holds a pointer of type int32[n] to it; the
// V region is readable but not writable; the invocation passes arr in
// %o0 and the (symbolic) size n >= 1 in %o1.
const char *SumPolicy = R"(
loc e : int32 state=init summary
loc arr : int32[n] state={e}
region V { arr, e }
allow V : int32 : r,o
allow V : int32[n] : r,f,o
invoke %o0 = arr
invoke %o1 = n
constraint n >= 1
)";

/// Runs one check with its own metric scope, so each example's phase
/// times can be read back out of the shared registry independently.
CheckReport check(support::MetricsRegistry &Reg, const char *Scope,
                  const char *Asm, const char *Policy) {
  SafetyChecker::Options Opts;
  Opts.Metrics = &Reg;
  Opts.MetricScope = Scope;
  SafetyChecker Checker(Opts);
  return Checker.checkSource(Asm, Policy);
}

void report(support::MetricsRegistry &Reg, const char *Scope,
            const char *Title, const CheckReport &R) {
  std::printf("== %s ==\n", Title);
  if (!R.InputsOk) {
    std::printf("input error:\n%s\n", R.Diags.str().c_str());
    return;
  }
  std::printf("verdict: %s\n", R.Safe ? "SAFE" : "UNSAFE");
  std::printf("  %u instructions, %llu global safety conditions, "
              "%llu invariants synthesized\n",
              R.Chars.Instructions,
              static_cast<unsigned long long>(R.Chars.GlobalConditions),
              static_cast<unsigned long long>(
                  R.Global.InvariantsSynthesized));
  // Wall-clock values live in the metrics registry, not the report.
  auto Sec = [&](const char *Phase) {
    return support::usToSeconds(
        Reg.value(std::string(Scope) + "/phase/" + Phase + "_us")
            .value_or(0));
  };
  std::printf("  phases: typestate %.4fs, annotation+local %.4fs, "
              "global %.4fs\n",
              Sec("typestate"), Sec("annotation"), Sec("global"));
  if (!R.Safe)
    std::printf("%s", R.Diags.str().c_str());
  std::printf("\n");
}

} // namespace

int main() {
  support::MetricsRegistry Reg;

  // 1. The well-behaved extension verifies: the checker synthesizes the
  //    loop invariant (n > %g3 and n = %o1) automatically.
  report(Reg, "sum", "summing extension vs. read-only array policy",
         check(Reg, "sum", SumAsm, SumPolicy));

  // 2. The same code against a host that passes the *wrong* length in
  //    %o1: the array bound can no longer be established.
  const char *WrongLength = R"(
loc e : int32 state=init summary
loc arr : int32[n] state={e}
region V { arr, e }
allow V : int32 : r,o
allow V : int32[n] : r,f,o
invoke %o0 = arr
invoke %o1 = m     # unrelated to the real size n!
constraint n >= 1
constraint m >= 1
)";
  report(Reg, "wrong-length",
         "same code, but %o1 is not the array's real size",
         check(Reg, "wrong-length", SumAsm, WrongLength));

  // 3. A malicious variant that writes to the array: rejected by the
  //    access policy (e is readable but not writable).
  const char *Scribbler = R"(
  mov %o0,%o2
  clr %g3
  cmp %g3,%o1
  bge 10
  nop
  sll %g3,2,%g2
  st %g0,[%o2+%g2]  ! write -- not allowed by the policy
  inc %g3
  ba 3
  nop
  retl
  nop
)";
  report(Reg, "scribbler",
         "scribbling extension vs. the same read-only policy",
         check(Reg, "scribbler", Scribbler, SumPolicy));
  return 0;
}
