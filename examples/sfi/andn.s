  and %o1,2047,%o1   ! bound the offset to [0,2047]
  andn %o1,7,%o1     ! clear the low three bits: 8-aligned
  ld [%o0+%o1],%o2
  retl
  nop
