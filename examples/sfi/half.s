  and %o1,510,%o1    ! [0,510], 2-aligned
  lduh [%o0+%o1],%o2
  sth %o2,[%o0+%o1]
  retl
  nop
