  clr %o1            ! i = 0
loop:
  sll %o1,2,%o2      ! byte offset = 4*i
  and %o2,1020,%o2   ! re-establish the sandbox mask
  ld [%o0+%o2],%g1
  st %g1,[%o0+%o2]
  inc %o1
  cmp %o1,%o3
  bl loop
  nop
  retl
  nop
