  and %o1,1020,%o1   ! mask the byte offset into [0,1020], 4-aligned
  ld [%o0+%o1],%o2   ! sandboxed word load
  st %o2,[%o0+%o1]   ! sandboxed word store
  retl
  nop
