  sethi %hi(8188),%g1
  or %g1,1020,%g1    ! %g1 = 0x1ffc: the sandbox mask
  and %o1,%g1,%o1
  ld [%o0+%o1],%o2
  retl
  nop
