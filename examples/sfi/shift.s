  and %o1,255,%o1    ! word index in [0,255]
  sll %o1,2,%o1      ! scale to a 4-aligned byte offset
  ld [%o0+%o1],%o2
  retl
  nop
