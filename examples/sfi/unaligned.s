  and %o1,1020,%o1   ! 4-aligned so far
  add %o1,2,%o1      ! skews the offset: = 2 mod 4
  ld [%o0+%o1],%o2
  retl
  nop
