//===- thread_list.cpp - The Section 2 thread-list policy -----------------===//
//
// Part of mcsafe, a reproduction of "Safety Checking of Machine Code"
// (Xu, Miller, Reps; PLDI 2000).
//
// The paper's Section 2 scenario, verbatim: "suppose that a user is
// asked to write an extension that finds out the lightweight process on
// which a thread is running", where the host keeps threads in a linked
// list of
//
//   struct thread { int tid; int lwpid; struct thread *next; };
//
// and the policy is
//
//   [H : thread.tid, thread.lwpid : ro]
//   [H : thread.next : rfo]
//
// i.e. tid/lwpid may be read and examined, and only the next field may
// be followed. This example runs three extensions against that policy: a
// well-behaved lookup, one that tries to *write* a tid, and one that
// tries to modify the list structure — the latter two are rejected.
//
//===----------------------------------------------------------------------===//

#include "checker/SafetyChecker.h"

#include <cstdio>

using namespace mcsafe;
using namespace mcsafe::checker;

namespace {

const char *ThreadPolicy = R"(
struct thread { tid: int32 @0; lwpid: int32 @4; next: thread* @8 } size 12 align 4
loc th : thread state={th,null} summary
loc threads : thread* state={th,null}
region H { th, threads }
allow H : thread.tid : r,o
allow H : thread.lwpid : r,o
allow H : thread.next : r,f,o
allow H : thread* : r,f,o
invoke %o0 = threads
invoke %o1 = tid
)";

// find_lwp(list, tid): walk the list; return the lwpid of the matching
// thread, or -1.
const char *FindLwp = R"(
walk:
  cmp %o0,0
  be miss
  nop
  ld [%o0+0],%g1   ! t->tid
  cmp %g1,%o1
  be hit
  nop
  ld [%o0+8],%o0   ! t = t->next (followable by the policy)
  ba walk
  nop
hit:
  ld [%o0+4],%o0   ! return t->lwpid
  retl
  nop
miss:
  mov -1,%o0
  retl
  nop
)";

// A "renumbering" extension: writes the tid field, which is r/o.
const char *RenumberTids = R"(
  clr %g2
loop:
  cmp %o0,0
  be out
  nop
  st %g2,[%o0+0]   ! thread.tid is not writable!
  inc %g2
  ld [%o0+8],%o0
  ba loop
  nop
out:
  retl
  nop
)";

// A list surgeon: tries to redirect a next pointer (changing the shape
// of the host structure), which this policy forbids (no w on next).
const char *UnlinkNodes = R"(
  cmp %o0,0
  be out
  nop
  ld [%o0+8],%g1   ! t->next
  st %g1,[%o0+8]   ! rewrite the link: rejected (next is r,f,o only)
out:
  retl
  nop
)";

void run(const char *Title, const char *Asm) {
  SafetyChecker Checker;
  CheckReport R = Checker.checkSource(Asm, ThreadPolicy);
  std::printf("== %s ==\nverdict: %s\n", Title,
              R.Safe ? "SAFE" : "REJECTED");
  if (!R.Safe)
    std::printf("%s", R.Diags.str().c_str());
  std::printf("\n");
}

} // namespace

int main() {
  run("find_lwp: read tid/lwpid, follow next", FindLwp);
  run("renumber_tids: writes a read-only field", RenumberTids);
  run("unlink_nodes: rewrites the list structure", UnlinkNodes);
  std::printf("The same model can express sandboxing (no host access at "
              "all) up to shape-changing policies (granting w on next); "
              "see Section 2 of the paper.\n");
  return 0;
}
