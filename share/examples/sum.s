! Figure 1 of the paper: sum the elements of an integer array.
  mov %o0,%o2
  clr %o0
  cmp %o0,%o1
  bge 12
  clr %g3
  sll %g3,2,%g2
  ld [%o2+%g2],%g2
  inc %g3
  cmp %g3,%o1
  bl 6
  add %o0,%g2,%o0
  retl
  nop
