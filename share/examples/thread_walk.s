! find_lwp(list, tid): return the lwpid of the matching thread, or -1.
! The Section 2 example of the paper.
walk:
  cmp %o0,0
  be miss
  nop
  ld [%o0+0],%g1   ! t->tid
  cmp %g1,%o1
  be hit
  nop
  ld [%o0+8],%o0   ! t = t->next
  ba walk
  nop
hit:
  ld [%o0+4],%o0   ! return t->lwpid
  retl
  nop
miss:
  mov -1,%o0
  retl
  nop
