//===- Dataflow.h - Generic worklist dataflow framework ---------*- C++ -*-===//
//
// Part of mcsafe, a reproduction of "Safety Checking of Machine Code"
// (Xu, Miller, Reps; PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A generic forward/backward worklist dataflow solver over the
/// normalized mcsafe CFG. Because the CFG replicates delay-slot
/// instructions onto the edges on which they execute (and annulled
/// slots onto the taken edge only), clients get correct delayed-branch
/// semantics for free: a dataflow problem only ever reasons about plain
/// nodes and edges.
///
/// A problem type P supplies:
///
///   using Value = ...;                     // the lattice element
///   static constexpr Direction Dir;        // Forward or Backward
///   Value top() const;                     // unreached / identity of meet
///   Value boundary() const;                // value at entry (forward)
///                                          // or exit (backward)
///   void meet(Value &Into, const Value &From) const;
///   void transfer(cfg::NodeId, Value &V) const;  // in-place flow function
///
/// and optionally refines values along edges by overriding
///   void edge(cfg::NodeId From, const cfg::CfgEdge &E, Value &V) const;
/// (the default, inherited from DataflowProblem, is the identity).
///
/// The solver returns per-node In/Out values in *program order*: In is
/// the value before the node executes and Out the value after it, for
/// both directions. Values require operator== for the fixpoint test.
///
//===----------------------------------------------------------------------===//

#ifndef MCSAFE_ANALYSIS_DATAFLOW_H
#define MCSAFE_ANALYSIS_DATAFLOW_H

#include "cfg/Cfg.h"

#include <cstdint>
#include <set>
#include <vector>

namespace mcsafe {
namespace analysis {

enum class Direction { Forward, Backward };

/// Base class providing the default (identity) edge transfer.
struct DataflowProblem {
  template <typename Value>
  void edge(cfg::NodeId, const cfg::CfgEdge &, Value &) const {}
};

template <typename Value> struct DataflowResult {
  std::vector<Value> In;  ///< Value before each node (program order).
  std::vector<Value> Out; ///< Value after each node (program order).
  std::vector<bool> Visited; ///< Node was reached by the iteration.
  uint64_t NodeVisits = 0;
  bool Converged = true;
};

/// Runs the worklist fixpoint for \p P over \p G. The worklist is a
/// priority queue ordered by reverse postorder (forward) or its reverse
/// (backward), which visits nodes in near-topological order and keeps
/// the iteration deterministic.
template <typename Problem>
DataflowResult<typename Problem::Value> solveDataflow(const cfg::Cfg &G,
                                                      const Problem &P) {
  using Value = typename Problem::Value;
  constexpr bool Forward = Problem::Dir == Direction::Forward;

  uint32_t N = G.size();
  DataflowResult<Value> R;
  R.In.assign(N, P.top());
  R.Out.assign(N, P.top());
  R.Visited.assign(N, false);

  // Priority = position in (reverse of) reverse postorder. Unreachable
  // nodes keep UINT32_MAX and are never enqueued.
  std::vector<uint32_t> Priority(N, UINT32_MAX);
  std::vector<cfg::NodeId> Rpo = G.reversePostOrder();
  for (uint32_t I = 0; I < Rpo.size(); ++I)
    Priority[Rpo[I]] =
        Forward ? I : static_cast<uint32_t>(Rpo.size() - 1 - I);

  auto Less = [&Priority](cfg::NodeId A, cfg::NodeId B) {
    if (Priority[A] != Priority[B])
      return Priority[A] < Priority[B];
    return A < B;
  };
  // Seed every reachable node, not just the boundary: a node's transfer
  // can generate facts (e.g. liveness uses) even before any neighbor
  // value changes, so each node must be processed at least once.
  std::set<cfg::NodeId, decltype(Less)> Worklist(Less);
  for (cfg::NodeId Id : Rpo)
    Worklist.insert(Id);
  cfg::NodeId Boundary = Forward ? G.entry() : G.exit();

  uint64_t Budget = static_cast<uint64_t>(N) * 256 + 10000;
  while (!Worklist.empty()) {
    if (R.NodeVisits++ > Budget) {
      R.Converged = false;
      break;
    }
    cfg::NodeId Id = *Worklist.begin();
    Worklist.erase(Worklist.begin());
    R.Visited[Id] = true;

    // Gather the incoming value: from predecessors' Out (forward) or
    // successors' In (backward); the boundary node also meets the
    // boundary value.
    Value Incoming = P.top();
    if (Id == Boundary)
      P.meet(Incoming, P.boundary());
    if (Forward) {
      for (cfg::NodeId Pred : G.node(Id).Preds) {
        for (const cfg::CfgEdge &E : G.node(Pred).Succs) {
          if (E.To != Id)
            continue;
          Value V = R.Out[Pred];
          P.edge(Pred, E, V);
          P.meet(Incoming, V);
        }
      }
    } else {
      for (const cfg::CfgEdge &E : G.node(Id).Succs) {
        Value V = R.In[E.To];
        P.edge(Id, E, V);
        P.meet(Incoming, V);
      }
    }

    Value &Before = Forward ? R.In[Id] : R.Out[Id];
    Value &After = Forward ? R.Out[Id] : R.In[Id];
    Before = std::move(Incoming);
    Value NewAfter = Before;
    P.transfer(Id, NewAfter);
    if (!(NewAfter == After)) {
      After = std::move(NewAfter);
      if (Forward) {
        for (const cfg::CfgEdge &E : G.node(Id).Succs)
          Worklist.insert(E.To);
      } else {
        for (cfg::NodeId Pred : G.node(Id).Preds)
          Worklist.insert(Pred);
      }
    }
  }
  return R;
}

} // namespace analysis
} // namespace mcsafe

#endif // MCSAFE_ANALYSIS_DATAFLOW_H
