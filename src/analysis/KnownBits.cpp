//===- KnownBits.cpp ------------------------------------------------------===//

#include "analysis/KnownBits.h"

#include <algorithm>

using namespace mcsafe;
using namespace mcsafe::analysis;

KnownBits KnownBits::bitAnd(KnownBits A, KnownBits B) {
  return {A.Zeros | B.Zeros, A.Ones & B.Ones};
}

KnownBits KnownBits::bitOr(KnownBits A, KnownBits B) {
  return {A.Zeros & B.Zeros, A.Ones | B.Ones};
}

KnownBits KnownBits::bitXor(KnownBits A, KnownBits B) {
  return {(A.Zeros & B.Zeros) | (A.Ones & B.Ones),
          (A.Zeros & B.Ones) | (A.Ones & B.Zeros)};
}

KnownBits KnownBits::bitNot(KnownBits A) { return {A.Ones, A.Zeros}; }

KnownBits KnownBits::bitAndNot(KnownBits A, KnownBits B) {
  return bitAnd(A, bitNot(B));
}

KnownBits KnownBits::bitOrNot(KnownBits A, KnownBits B) {
  return bitOr(A, bitNot(B));
}

KnownBits KnownBits::bitXnor(KnownBits A, KnownBits B) {
  return bitNot(bitXor(A, B));
}

namespace {

KnownBits shlByConst(KnownBits A, unsigned K) {
  if (K == 0)
    return A;
  return {(A.Zeros << K) | ((1u << K) - 1u), A.Ones << K};
}

KnownBits lshrByConst(KnownBits A, unsigned K) {
  if (K == 0)
    return A;
  // The vacated high bits are zero; ">> K" on Zeros would claim them
  // unknown, so add them back explicitly.
  uint32_t HighMask = ~(0xFFFFFFFFu >> K);
  return {(A.Zeros >> K) | HighMask, A.Ones >> K};
}

KnownBits ashrByConst(KnownBits A, unsigned K) {
  if (K == 0)
    return A;
  uint32_t HighMask = ~(0xFFFFFFFFu >> K);
  KnownBits R{A.Zeros >> K, A.Ones >> K};
  if ((A.Zeros >> 31) & 1u)
    R.Zeros |= HighMask; // Sign bit known zero: behaves like lshr.
  else if ((A.Ones >> 31) & 1u)
    R.Ones |= HighMask; // Sign bit known one: ones shift in.
  return R;
}

/// Applies \p Op for every shift distance compatible with \p Count's low
/// five bits (the only ones SPARC consumes) and meets the results. At
/// most 32 iterations; a fully-known count visits exactly one.
template <typename Fn> KnownBits forEachCount(KnownBits Count, Fn Op) {
  bool Any = false;
  KnownBits Result;
  for (unsigned K = 0; K < 32; ++K) {
    if ((K & (Count.Zeros & 31u)) != 0 || (~K & (Count.Ones & 31u)) != 0)
      continue; // Distance K contradicts a known bit of the count.
    KnownBits R = Op(K);
    Result = Any ? KnownBits::meet(Result, R) : R;
    Any = true;
  }
  return Any ? Result : KnownBits::top();
}

} // namespace

KnownBits KnownBits::shl(KnownBits A, KnownBits Count) {
  return forEachCount(Count, [&](unsigned K) { return shlByConst(A, K); });
}

KnownBits KnownBits::lshr(KnownBits A, KnownBits Count) {
  return forEachCount(Count, [&](unsigned K) { return lshrByConst(A, K); });
}

KnownBits KnownBits::ashr(KnownBits A, KnownBits Count) {
  return forEachCount(Count, [&](unsigned K) { return ashrByConst(A, K); });
}

namespace {

/// Carry-aware addition of two known-bits facts with a known or unknown
/// carry-in: computes, per bit, whether the carry into it is determined,
/// and keeps exactly the output bits whose operands and carry are all
/// known. Wrapping uint32 arithmetic throughout.
KnownBits addCarry(KnownBits A, KnownBits B, bool CarryZero,
                   bool CarryOne) {
  uint32_t PossibleSumZero = ~A.Zeros + ~B.Zeros + (CarryZero ? 0u : 1u);
  uint32_t PossibleSumOne = A.Ones + B.Ones + (CarryOne ? 1u : 0u);
  uint32_t CarryKnownZero = ~(PossibleSumZero ^ A.Zeros ^ B.Zeros);
  uint32_t CarryKnownOne = PossibleSumOne ^ A.Ones ^ B.Ones;
  uint32_t Known = (A.Zeros | A.Ones) & (B.Zeros | B.Ones) &
                   (CarryKnownZero | CarryKnownOne);
  return {~PossibleSumZero & Known, PossibleSumOne & Known};
}

} // namespace

KnownBits KnownBits::add(KnownBits A, KnownBits B) {
  return addCarry(A, B, /*CarryZero=*/true, /*CarryOne=*/false);
}

KnownBits KnownBits::sub(KnownBits A, KnownBits B) {
  // a - b = a + ~b + 1.
  return addCarry(A, bitNot(B), /*CarryZero=*/false, /*CarryOne=*/true);
}

BitsRange analysis::crossRefine(KnownBits Bits, std::optional<int64_t> Lo,
                                std::optional<int64_t> Hi, bool Exact32) {
  BitsRange R{Bits, Lo, Hi, false};
  auto Contradict = [&R] {
    // Encode the empty value set as an empty interval; the propagation
    // keeps such intervals as unreachability witnesses.
    R.Lo = 0;
    R.Hi = -1;
    R.Contradiction = true;
    return R;
  };
  if ((Bits.Zeros & Bits.Ones) != 0)
    return Contradict();
  if (R.Lo && R.Hi && *R.Lo > *R.Hi)
    return R; // Already empty: nothing further to learn.
  // An interval lying entirely outside [INT32_MIN, INT32_MAX] cannot
  // describe the signed reading of any 32-bit pattern: the interval and
  // the Exact32 claim disagree about what the value is (typically an
  // unwrapped producer bound that escaped int32). Distrust the claim
  // and leave the facts unrefined rather than manufacture an
  // unreachability witness from the mismatch.
  if (Exact32 &&
      ((R.Lo && *R.Lo > INT32_MAX) || (R.Hi && *R.Hi < INT32_MIN)))
    Exact32 = false;

  // Iterate to a fixpoint: newly-learned bits can shrink the interval
  // and vice versa. Each round either learns a bit (at most 32 rounds)
  // or changes nothing, so this terminates quickly.
  for (bool Changed = true; Changed;) {
    BitsRange Prev = R;

    // Pattern == value only when the value provably lies in
    // [0, 2^31 - 1] — either the interval says so, or the producer
    // guaranteed the value is the signed reading of its pattern and the
    // sign bit is known zero.
    bool NonNegPattern =
        (R.Lo && R.Hi && *R.Lo >= 0 && *R.Hi <= INT32_MAX) ||
        (Exact32 && ((R.Bits.Zeros >> 31) & 1u));
    if (Exact32 && !NonNegPattern && ((R.Bits.Ones >> 31) & 1u)) {
      // Known-negative signed-32 value: min / max from the pattern bits.
      int64_t PatLo = static_cast<int32_t>(R.Bits.Ones);
      int64_t PatHi = static_cast<int32_t>(~R.Bits.Zeros);
      R.Lo = R.Lo ? std::max(*R.Lo, PatLo) : PatLo;
      R.Hi = R.Hi ? std::min(*R.Hi, PatHi) : PatHi;
      if (*R.Lo > *R.Hi)
        return Contradict();
      return R;
    }
    if (!NonNegPattern)
      return R;

    // --- Bits tighten bounds: unsigned min / max of compatible patterns.
    int64_t PatLo = static_cast<int64_t>(R.Bits.Ones);
    int64_t PatHi = static_cast<int64_t>(~R.Bits.Zeros & 0x7FFFFFFFu);
    R.Lo = R.Lo ? std::max(*R.Lo, PatLo) : PatLo;
    R.Hi = R.Hi ? std::min(*R.Hi, PatHi) : PatHi;
    // Round the bounds onto the known congruence class mod 2^k.
    unsigned K = R.Bits.lowKnown();
    if (K >= 1 && K < 31) {
      int64_t Mod = int64_t(1) << K;
      int64_t Res = R.Bits.residue();
      int64_t LoOff = (Res - *R.Lo) % Mod;
      *R.Lo += LoOff < 0 ? LoOff + Mod : LoOff;
      int64_t HiOff = (*R.Hi - Res) % Mod;
      *R.Hi -= HiOff < 0 ? HiOff + Mod : HiOff;
    }
    if (*R.Lo > *R.Hi)
      return Contradict();

    // --- Bounds tighten bits: the leading bits Lo and Hi share are
    // known.
    uint32_t L = static_cast<uint32_t>(*R.Lo);
    uint32_t H = static_cast<uint32_t>(*R.Hi);
    uint32_t Diff = L ^ H;
    uint32_t KnownMask;
    if (Diff == 0) {
      KnownMask = 0xFFFFFFFFu;
    } else {
      unsigned Width = 32;
      while (!((Diff >> (Width - 1)) & 1u))
        --Width; // Width of the differing suffix.
      KnownMask = 0xFFFFFFFFu << Width;
    }
    KnownBits FromBounds{KnownMask & ~L, KnownMask & L};
    std::optional<KnownBits> Unified =
        KnownBits::unify(R.Bits, FromBounds);
    if (!Unified)
      return Contradict();
    R.Bits = *Unified;

    Changed = R.Bits != Prev.Bits || R.Lo != Prev.Lo || R.Hi != Prev.Hi;
  }
  return R;
}
