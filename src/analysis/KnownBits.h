//===- KnownBits.h - Bitwise known-bits abstract domain ---------*- C++ -*-===//
//
// Part of mcsafe, a reproduction of "Safety Checking of Machine Code"
// (Xu, Miller, Reps; PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The known-bits abstract domain over 32-bit values: for every bit
/// position, "known zero", "known one", or unknown. An element abstracts
/// the value's 32-bit machine pattern, i.e. the mathematical value the
/// typestate phase tracks, taken modulo 2^32 — so the transfer functions
/// use wrapping arithmetic and match the SPARC interpreter exactly, and
/// the trailing-known-bits fact translates into a sound divisibility
/// atom 2^k | (x - r) over the checker's mathematical integers (2^k
/// divides 2^32 for every k we emit).
///
/// The lattice core (meet, constants, containment) is header-only so the
/// typestate layer can embed a KnownBits in its State without linking
/// the analysis library; the transfer functions and the bits<->bounds
/// cross-refinement live in KnownBits.cpp, used by the checker and lint
/// passes (see DESIGN.md section 10).
///
//===----------------------------------------------------------------------===//

#ifndef MCSAFE_ANALYSIS_KNOWNBITS_H
#define MCSAFE_ANALYSIS_KNOWNBITS_H

#include <cstdint>
#include <optional>
#include <string>

namespace mcsafe {
namespace analysis {

/// A known-bits fact: bit i of the abstracted pattern is 0 whenever
/// Zeros has bit i set, 1 whenever Ones has bit i set. Zeros & Ones == 0
/// is an invariant; top (nothing known) is {0, 0}.
struct KnownBits {
  uint32_t Zeros = 0;
  uint32_t Ones = 0;

  static KnownBits top() { return {}; }
  static KnownBits fromConstant(uint32_t V) { return {~V, V}; }

  bool isTop() const { return Zeros == 0 && Ones == 0; }
  /// Every bit known: the abstracted pattern is a single constant.
  bool isConstant() const { return (Zeros | Ones) == 0xFFFFFFFFu; }
  std::optional<uint32_t> constant() const {
    if (isConstant())
      return Ones;
    return std::nullopt;
  }

  /// Concretization membership: pattern \p V is compatible with the fact.
  bool contains(uint32_t V) const {
    return (V & Zeros) == 0 && (~V & Ones) == 0;
  }

  /// True when this fact is at least as precise as \p Other (knows every
  /// bit Other knows, with the same value): gamma(this) subset of
  /// gamma(other).
  bool refines(const KnownBits &Other) const {
    return (Zeros & Other.Zeros) == Other.Zeros &&
           (Ones & Other.Ones) == Other.Ones;
  }

  /// Lattice meet (abstraction of value-set union): keep only the bits
  /// both sides agree on.
  static KnownBits meet(KnownBits A, KnownBits B) {
    return {A.Zeros & B.Zeros, A.Ones & B.Ones};
  }

  /// Combines two sound facts about the *same* value (value-set
  /// intersection). Returns nullopt when they contradict each other
  /// (some bit known 0 by one and 1 by the other): the value set is
  /// empty, i.e. the program point is unreachable under the current
  /// facts.
  static std::optional<KnownBits> unify(KnownBits A, KnownBits B) {
    KnownBits R{A.Zeros | B.Zeros, A.Ones | B.Ones};
    if ((R.Zeros & R.Ones) != 0)
      return std::nullopt;
    return R;
  }

  /// Number of contiguous known low bits (zero or one), i.e. the largest
  /// k such that the pattern's residue modulo 2^k is known exactly.
  unsigned lowKnown() const {
    uint32_t Known = Zeros | Ones;
    unsigned K = 0;
    while (K < 32 && (Known >> K) & 1u)
      ++K;
    return K;
  }
  /// The known residue modulo 2^lowKnown().
  uint32_t residue() const {
    unsigned K = lowKnown();
    return K >= 32 ? Ones : (Ones & ((1u << K) - 1u));
  }
  /// log2 of the value's known alignment: number of trailing known-zero
  /// bits (0 when bit 0 is unknown or known one).
  unsigned alignLog2() const {
    unsigned K = 0;
    while (K < 32 && (Zeros >> K) & 1u)
      ++K;
    return K;
  }

  friend bool operator==(const KnownBits &A, const KnownBits &B) {
    return A.Zeros == B.Zeros && A.Ones == B.Ones;
  }
  friend bool operator!=(const KnownBits &A, const KnownBits &B) {
    return !(A == B);
  }

  /// Debug rendering: the pattern msb-to-lsb with '?' for unknown bits,
  /// leading known zeros trimmed ("0b??100"); "top" when nothing is
  /// known.
  std::string str() const {
    if (isTop())
      return "top";
    int Hi = 31;
    while (Hi > 0 && (Zeros >> Hi) & 1u)
      --Hi;
    std::string S = "0b";
    for (int I = Hi; I >= 0; --I) {
      if ((Ones >> I) & 1u)
        S += '1';
      else if ((Zeros >> I) & 1u)
        S += '0';
      else
        S += '?';
    }
    return S;
  }

  // --- Transfer functions (KnownBits.cpp). -------------------------------
  //
  // Each returns a sound fact for the SPARC operation applied to any
  // concrete patterns compatible with the inputs; shift counts follow
  // sparc::shiftCount (only the low five bits matter), and add/sub use
  // carry-aware wrapping propagation.

  static KnownBits bitAnd(KnownBits A, KnownBits B);
  static KnownBits bitOr(KnownBits A, KnownBits B);
  static KnownBits bitXor(KnownBits A, KnownBits B);
  static KnownBits bitNot(KnownBits A);
  static KnownBits bitAndNot(KnownBits A, KnownBits B); ///< a & ~b (andn).
  static KnownBits bitOrNot(KnownBits A, KnownBits B);  ///< a | ~b (orn).
  static KnownBits bitXnor(KnownBits A, KnownBits B);   ///< ~(a ^ b).
  /// Shifts; \p Count abstracts the count operand (of which only the low
  /// five bits are consumed — partially-known counts enumerate the
  /// compatible distances and meet the results).
  static KnownBits shl(KnownBits A, KnownBits Count);
  static KnownBits lshr(KnownBits A, KnownBits Count);
  static KnownBits ashr(KnownBits A, KnownBits Count);
  static KnownBits add(KnownBits A, KnownBits B);
  static KnownBits sub(KnownBits A, KnownBits B);
};

/// Result of cross-refining a known-bits fact against interval bounds
/// describing the same value.
struct BitsRange {
  KnownBits Bits;
  std::optional<int64_t> Lo, Hi;
  /// The two facts contradict each other: the value set is empty. The
  /// caller encodes this as an empty interval so downstream phases treat
  /// the point as unreachable.
  bool Contradiction = false;
};

/// Cross-refinement in both directions (DESIGN.md section 10):
///  - bounds tighten bits: when [Lo, Hi] lies within [0, 2^31 - 1] the
///    pattern equals the value, so the shared leading bits of Lo and Hi
///    are known;
///  - bits tighten bounds: the pattern's known bits give unsigned min /
///    max, and the known low residue rounds Lo up / Hi down onto the
///    congruence class.
/// \p Exact32 asserts the value is the signed-32-bit reading of its
/// pattern (true for results of bitwise ops and shifts, whose outputs
/// can never leave int32 range) — then bounds may also be derived from a
/// known sign bit alone. Without it, refinement only fires when the
/// existing interval already confines the value to [0, 2^31 - 1];
/// arithmetic results tracked as mathematical integers may lie outside
/// 32-bit range, where pattern and value disagree.
BitsRange crossRefine(KnownBits Bits, std::optional<int64_t> Lo,
                      std::optional<int64_t> Hi, bool Exact32 = false);

} // namespace analysis
} // namespace mcsafe

#endif // MCSAFE_ANALYSIS_KNOWNBITS_H
