//===- Lint.cpp -----------------------------------------------------------===//

#include "analysis/Lint.h"

#include "analysis/KnownBits.h"
#include "analysis/StackDelta.h"
#include "sparc/Instruction.h"

#include <map>

using namespace mcsafe;
using namespace mcsafe::analysis;
using namespace mcsafe::sparc;
using mcsafe::cfg::CfgNode;
using mcsafe::cfg::NodeId;
using mcsafe::cfg::NodeKind;

namespace {

/// True for the instruction classes whose rd write the dead-write
/// metric counts: ordinary value-producing instructions. Window moves,
/// calls, and branches write registers as a side effect of control flow
/// and are not interesting as "dead code" signals.
bool isValueWrite(Opcode Op) {
  switch (Op) {
  case Opcode::ADD:
  case Opcode::ADDCC:
  case Opcode::SUB:
  case Opcode::SUBCC:
  case Opcode::AND:
  case Opcode::ANDCC:
  case Opcode::ANDN:
  case Opcode::OR:
  case Opcode::ORCC:
  case Opcode::ORN:
  case Opcode::XOR:
  case Opcode::XORCC:
  case Opcode::XNOR:
  case Opcode::SLL:
  case Opcode::SRL:
  case Opcode::SRA:
  case Opcode::UMUL:
  case Opcode::SMUL:
  case Opcode::UDIV:
  case Opcode::SDIV:
  case Opcode::SETHI:
    return true;
  default:
    return isLoad(Op);
  }
}

//===----------------------------------------------------------------------===//
// Misaligned-access rule: known-bits over single-predecessor chains
//===----------------------------------------------------------------------===//

/// Register -> known bits, keyed like AbstractStore's register keys:
/// (window depth << 8) | register number, globals shared at depth 0.
using BitsMap = std::map<int64_t, KnownBits>;

int64_t bitsKey(int32_t Depth, Reg R) {
  if (R.isGlobal())
    Depth = 0;
  return (static_cast<int64_t>(Depth) << 8) | R.number();
}

KnownBits lookupBits(const BitsMap &M, int32_t Depth, Reg R) {
  if (R.isZero())
    return KnownBits::fromConstant(0);
  auto It = M.find(bitsKey(Depth, R));
  return It == M.end() ? KnownBits::top() : It->second;
}

/// Known bits of the addresses a pointer state may hold: each target's
/// location alignment pins the low bits (address = base + offset with
/// base == 0 mod Align), met across targets and null.
KnownBits pointerBits(const typestate::State &S,
                      const typestate::LocationTable &Locs) {
  KnownBits KB;
  bool First = true;
  auto Accumulate = [&](KnownBits B) {
    KB = First ? B : KnownBits::meet(KB, B);
    First = false;
  };
  if (S.mayBeNull())
    Accumulate(KnownBits::fromConstant(0));
  for (const typestate::PtrTarget &T : S.targets()) {
    uint32_t Align = Locs.loc(T.Loc).Align;
    KnownBits B = KnownBits::top();
    if (Align > 1 && (Align & (Align - 1)) == 0) {
      uint32_t LowMask = Align - 1;
      uint32_t Off = static_cast<uint32_t>(T.Offset);
      B.Zeros = ~Off & LowMask;
      B.Ones = Off & LowMask;
    }
    Accumulate(B);
  }
  return First ? KnownBits::top() : KB;
}

/// Seeds the entry node's register bits from the initial abstract store:
/// known constants directly, pointer registers from location alignment.
BitsMap seedFromEntryStore(const typestate::AbstractStore &EntryStore,
                           const typestate::LocationTable *Locs) {
  BitsMap Seed;
  EntryStore.forEachReg([&](int32_t Depth, Reg R,
                            const typestate::Typestate &Ts) {
    KnownBits B = KnownBits::top();
    if (Ts.S.isInit())
      B = Ts.S.bits();
    else if (Ts.S.isPointsTo() && Locs)
      B = pointerBits(Ts.S, *Locs);
    if (!B.isTop())
      Seed[bitsKey(Depth, R)] = B;
  });
  return Seed;
}

/// One instruction's known-bits transfer, plus the misaligned-access
/// check. Returns the diagnostic message for a provably misaligned
/// access, if any.
std::optional<std::string> stepBits(BitsMap &M, const Instruction &Inst,
                                    int32_t Depth) {
  auto Operand2 = [&] {
    return Inst.UsesImm
               ? KnownBits::fromConstant(static_cast<uint32_t>(Inst.Imm))
               : lookupBits(M, Depth, Inst.Rs2);
  };
  auto SetRd = [&](KnownBits B) {
    if (Inst.Rd.isZero())
      return;
    if (B.isTop())
      M.erase(bitsKey(Depth, Inst.Rd));
    else
      M[bitsKey(Depth, Inst.Rd)] = B;
  };

  if (isLoad(Inst.Op) || isStore(Inst.Op)) {
    KnownBits Addr =
        KnownBits::add(lookupBits(M, Depth, Inst.Rs1), Operand2());
    unsigned Size = memAccessSize(Inst.Op);
    unsigned SizeLog2 = Size == 4 ? 2 : Size == 2 ? 1 : 0;
    std::optional<std::string> Finding;
    if (SizeLog2 > 0 && Addr.lowKnown() >= SizeLog2 &&
        (Addr.residue() & (Size - 1)) != 0)
      Finding = "lint: '" + Inst.str() +
                "' accesses a provably misaligned address (address = " +
                std::to_string(Addr.residue() & (Size - 1)) + " mod " +
                std::to_string(Size) + ")";
    if (isLoad(Inst.Op))
      SetRd(KnownBits::top());
    return Finding;
  }

  switch (Inst.Op) {
  case Opcode::ADD:
  case Opcode::ADDCC:
    SetRd(KnownBits::add(lookupBits(M, Depth, Inst.Rs1), Operand2()));
    break;
  case Opcode::SUB:
  case Opcode::SUBCC:
    SetRd(KnownBits::sub(lookupBits(M, Depth, Inst.Rs1), Operand2()));
    break;
  case Opcode::AND:
  case Opcode::ANDCC:
    SetRd(KnownBits::bitAnd(lookupBits(M, Depth, Inst.Rs1), Operand2()));
    break;
  case Opcode::ANDN:
    SetRd(KnownBits::bitAndNot(lookupBits(M, Depth, Inst.Rs1), Operand2()));
    break;
  case Opcode::OR:
  case Opcode::ORCC:
    SetRd(KnownBits::bitOr(lookupBits(M, Depth, Inst.Rs1), Operand2()));
    break;
  case Opcode::ORN:
    SetRd(KnownBits::bitOrNot(lookupBits(M, Depth, Inst.Rs1), Operand2()));
    break;
  case Opcode::XOR:
  case Opcode::XORCC:
    SetRd(KnownBits::bitXor(lookupBits(M, Depth, Inst.Rs1), Operand2()));
    break;
  case Opcode::XNOR:
    SetRd(KnownBits::bitXnor(lookupBits(M, Depth, Inst.Rs1), Operand2()));
    break;
  case Opcode::SLL:
    SetRd(KnownBits::shl(lookupBits(M, Depth, Inst.Rs1), Operand2()));
    break;
  case Opcode::SRL:
    SetRd(KnownBits::lshr(lookupBits(M, Depth, Inst.Rs1), Operand2()));
    break;
  case Opcode::SRA:
    SetRd(KnownBits::ashr(lookupBits(M, Depth, Inst.Rs1), Operand2()));
    break;
  case Opcode::SETHI:
    SetRd(KnownBits::fromConstant(static_cast<uint32_t>(Inst.Imm) << 10));
    break;
  case Opcode::UMUL:
  case Opcode::SMUL:
  case Opcode::UDIV:
  case Opcode::SDIV:
    SetRd(KnownBits::top());
    break;
  case Opcode::CALL:
  case Opcode::JMPL:
  case Opcode::SAVE:
  case Opcode::RESTORE:
    // Window shifts and transfers invalidate the whole chain state (the
    // depth-keyed map does not model the save/restore renaming).
    M.clear();
    break;
  default:
    break; // Branches write no register.
  }
  return std::nullopt;
}

std::string describeUse(const cfg::Cfg &G, const UninitUseFinding &F) {
  const CfgNode &Node = G.node(F.Node);
  std::string What;
  if (F.IsIcc)
    What = "the condition codes are";
  else if (F.IsTrustedParam)
    What = "trusted-call argument " + F.R.name() + " is";
  else
    What = F.R.name() + " is";
  std::string Where;
  if (Node.Kind == NodeKind::TrustedCall)
    Where = "call to " + Node.TrustedCallee;
  else if (Node.InstIndex != UINT32_MAX)
    Where = "'" + G.module().Insts[Node.InstIndex].str() + "'";
  return What + " never initialized on any path to " + Where;
}

} // namespace

LintResult analysis::runLint(const cfg::Cfg &G, const policy::Policy &Pol,
                             const typestate::AbstractStore &EntryStore,
                             DiagnosticEngine &Diags,
                             const typestate::LocationTable *Locs,
                             bool CheckAlignment) {
  LintResult R(G);

  R.Live = computeLiveness(G, Pol);
  R.Stats.NodeVisits += R.Live.NodeVisits;

  UninitUseResult Uninit = findUninitUses(G, Pol, EntryStore);
  R.Stats.NodeVisits += Uninit.NodeVisits;
  for (const UninitUseFinding &F : Uninit.Findings) {
    const CfgNode &Node = G.node(F.Node);
    std::optional<uint32_t> InstIndex, SourceLine;
    if (Node.InstIndex != UINT32_MAX) {
      InstIndex = Node.InstIndex;
      SourceLine = G.module().Insts[Node.InstIndex].SourceLine;
    }
    Diags.report(DiagSeverity::Violation,
                 F.IsTrustedParam ? SafetyKind::TrustedCall
                                  : SafetyKind::UninitializedUse,
                 "lint: " + describeUse(G, F), InstIndex, SourceLine);
  }
  R.Stats.UninitUses = static_cast<uint32_t>(Uninit.Findings.size());
  // Only a converged must-analysis justifies skipping the full pipeline.
  R.Rejected = Uninit.Converged && !Uninit.Findings.empty();

  // Misaligned-access rule: propagate known bits along single-predecessor
  // chains (a must-analysis: every fact holds on all executions reaching
  // the node, because merge points and back edges reset to top). An
  // access whose low address bits are fully known and nonzero modulo the
  // access size faults on every execution that reaches it.
  if (CheckAlignment) {
    const BitsMap Seed = seedFromEntryStore(EntryStore, Locs);
    std::vector<std::optional<BitsMap>> Out(G.size());
    for (NodeId Id : G.reversePostOrder()) {
      const CfgNode &Node = G.node(Id);
      ++R.Stats.NodeVisits;
      BitsMap M;
      if (Id == G.entry())
        M = Seed;
      else if (Node.Preds.size() == 1 && Out[Node.Preds.front()])
        M = *Out[Node.Preds.front()];
      if (Node.Kind == NodeKind::Normal && Node.InstIndex != UINT32_MAX) {
        if (std::optional<std::string> Finding =
                stepBits(M, G.module().Insts[Node.InstIndex],
                         Node.WindowDepth)) {
          Diags.report(DiagSeverity::Violation, SafetyKind::Alignment,
                       *Finding, Node.InstIndex,
                       G.module().Insts[Node.InstIndex].SourceLine);
          ++R.Stats.MisalignedAccesses;
        }
      } else {
        M.clear(); // Synthetic node: unknown effects.
      }
      Out[Id] = std::move(M);
    }
    R.Rejected = R.Rejected || R.Stats.MisalignedAccesses > 0;
  }

  StackDeltaResult Stack = computeStackDeltas(G, Pol);
  R.Stats.NodeVisits += Stack.NodeVisits;
  R.Stats.MaxStackDelta = Stack.MaxDown;
  R.Stats.StackDeltaBounded = Stack.Bounded;

  // Dead value-producing writes: rd is not live after the instruction.
  if (R.Live.Converged) {
    for (NodeId Id : G.reversePostOrder()) {
      const CfgNode &Node = G.node(Id);
      if (Node.Kind != NodeKind::Normal || Node.InstIndex == UINT32_MAX)
        continue;
      const Instruction &Inst = G.module().Insts[Node.InstIndex];
      if (!isValueWrite(Inst.Op) || Inst.Rd.isZero())
        continue;
      if (!R.Live.liveOut(Id, Node.WindowDepth, Inst.Rd))
        ++R.Stats.DeadRegWrites;
    }
  }
  return R;
}
