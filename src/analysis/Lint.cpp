//===- Lint.cpp -----------------------------------------------------------===//

#include "analysis/Lint.h"

#include "analysis/StackDelta.h"
#include "sparc/Instruction.h"

using namespace mcsafe;
using namespace mcsafe::analysis;
using namespace mcsafe::sparc;
using mcsafe::cfg::CfgNode;
using mcsafe::cfg::NodeId;
using mcsafe::cfg::NodeKind;

namespace {

/// True for the instruction classes whose rd write the dead-write
/// metric counts: ordinary value-producing instructions. Window moves,
/// calls, and branches write registers as a side effect of control flow
/// and are not interesting as "dead code" signals.
bool isValueWrite(Opcode Op) {
  switch (Op) {
  case Opcode::ADD:
  case Opcode::ADDCC:
  case Opcode::SUB:
  case Opcode::SUBCC:
  case Opcode::AND:
  case Opcode::ANDCC:
  case Opcode::ANDN:
  case Opcode::OR:
  case Opcode::ORCC:
  case Opcode::ORN:
  case Opcode::XOR:
  case Opcode::XORCC:
  case Opcode::XNOR:
  case Opcode::SLL:
  case Opcode::SRL:
  case Opcode::SRA:
  case Opcode::UMUL:
  case Opcode::SMUL:
  case Opcode::UDIV:
  case Opcode::SDIV:
  case Opcode::SETHI:
    return true;
  default:
    return isLoad(Op);
  }
}

std::string describeUse(const cfg::Cfg &G, const UninitUseFinding &F) {
  const CfgNode &Node = G.node(F.Node);
  std::string What;
  if (F.IsIcc)
    What = "the condition codes are";
  else if (F.IsTrustedParam)
    What = "trusted-call argument " + F.R.name() + " is";
  else
    What = F.R.name() + " is";
  std::string Where;
  if (Node.Kind == NodeKind::TrustedCall)
    Where = "call to " + Node.TrustedCallee;
  else if (Node.InstIndex != UINT32_MAX)
    Where = "'" + G.module().Insts[Node.InstIndex].str() + "'";
  return What + " never initialized on any path to " + Where;
}

} // namespace

LintResult analysis::runLint(const cfg::Cfg &G, const policy::Policy &Pol,
                             const typestate::AbstractStore &EntryStore,
                             DiagnosticEngine &Diags) {
  LintResult R(G);

  R.Live = computeLiveness(G, Pol);
  R.Stats.NodeVisits += R.Live.NodeVisits;

  UninitUseResult Uninit = findUninitUses(G, Pol, EntryStore);
  R.Stats.NodeVisits += Uninit.NodeVisits;
  for (const UninitUseFinding &F : Uninit.Findings) {
    const CfgNode &Node = G.node(F.Node);
    std::optional<uint32_t> InstIndex, SourceLine;
    if (Node.InstIndex != UINT32_MAX) {
      InstIndex = Node.InstIndex;
      SourceLine = G.module().Insts[Node.InstIndex].SourceLine;
    }
    Diags.report(DiagSeverity::Violation,
                 F.IsTrustedParam ? SafetyKind::TrustedCall
                                  : SafetyKind::UninitializedUse,
                 "lint: " + describeUse(G, F), InstIndex, SourceLine);
  }
  R.Stats.UninitUses = static_cast<uint32_t>(Uninit.Findings.size());
  // Only a converged must-analysis justifies skipping the full pipeline.
  R.Rejected = Uninit.Converged && !Uninit.Findings.empty();

  StackDeltaResult Stack = computeStackDeltas(G, Pol);
  R.Stats.NodeVisits += Stack.NodeVisits;
  R.Stats.MaxStackDelta = Stack.MaxDown;
  R.Stats.StackDeltaBounded = Stack.Bounded;

  // Dead value-producing writes: rd is not live after the instruction.
  if (R.Live.Converged) {
    for (NodeId Id : G.reversePostOrder()) {
      const CfgNode &Node = G.node(Id);
      if (Node.Kind != NodeKind::Normal || Node.InstIndex == UINT32_MAX)
        continue;
      const Instruction &Inst = G.module().Insts[Node.InstIndex];
      if (!isValueWrite(Inst.Op) || Inst.Rd.isZero())
        continue;
      if (!R.Live.liveOut(Id, Node.WindowDepth, Inst.Rd))
        ++R.Stats.DeadRegWrites;
    }
  }
  return R;
}
