//===- Lint.h - Phase-0 pre-verification lint pass --------------*- C++ -*-===//
//
// Part of mcsafe, a reproduction of "Safety Checking of Machine Code"
// (Xu, Miller, Reps; PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The lint pass runs the cheap bit-vector dataflow analyses before
/// typestate propagation:
///
///  - uninitialized-use detection fast-rejects programs that read a
///    never-written register on every path (a must-violation the full
///    pipeline would also reject, reported with the same safety kinds);
///  - liveness is handed to propagation so it can drop abstract-store
///    entries for dead registers;
///  - the stack-delta tracker and dead-write counts feed the report's
///    program characteristics;
///  - a known-bits scan over single-predecessor chains fast-rejects
///    memory accesses whose address is provably misaligned (the low
///    bits of the address are fully known and nonzero modulo the access
///    size) — the cheap must-analysis face of the known-bits domain the
///    typestate phase tracks in full.
///
//===----------------------------------------------------------------------===//

#ifndef MCSAFE_ANALYSIS_LINT_H
#define MCSAFE_ANALYSIS_LINT_H

#include "analysis/Liveness.h"
#include "analysis/UninitUse.h"
#include "support/Diagnostics.h"

namespace mcsafe {
namespace analysis {

struct LintStats {
  /// Checked uses of definitely-uninitialized registers (each one also
  /// produced a violation diagnostic).
  uint32_t UninitUses = 0;
  /// Register writes whose value no path can read again.
  uint32_t DeadRegWrites = 0;
  /// Memory accesses whose address is provably misaligned (each one
  /// also produced a violation diagnostic).
  uint32_t MisalignedAccesses = 0;
  /// Deepest constant downward %sp excursion, in bytes.
  int64_t MaxStackDelta = 0;
  /// Every reachable %sp delta is a compile-time constant.
  bool StackDeltaBounded = true;
  /// Dataflow node visits summed over all lint analyses.
  uint64_t NodeVisits = 0;
};

struct LintResult {
  /// The program provably violates a safety condition; typestate
  /// propagation can be skipped.
  bool Rejected = false;
  LintStats Stats;
  /// Liveness, kept for dead-register pruning during propagation.
  LivenessResult Live;

  explicit LintResult(const cfg::Cfg &G) : Live(G) {}
};

/// Runs all lint analyses over \p G, emitting a Violation diagnostic
/// per definite uninitialized use and per provably misaligned access.
/// \p Locs (when given) seeds pointer-register alignment from location
/// declarations; \p CheckAlignment gates the misaligned-access rule
/// (off under --no-knownbits so lint and pipeline verdicts agree).
LintResult runLint(const cfg::Cfg &G, const policy::Policy &Pol,
                   const typestate::AbstractStore &EntryStore,
                   DiagnosticEngine &Diags,
                   const typestate::LocationTable *Locs = nullptr,
                   bool CheckAlignment = true);

} // namespace analysis
} // namespace mcsafe

#endif // MCSAFE_ANALYSIS_LINT_H
