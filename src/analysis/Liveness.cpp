//===- Liveness.cpp -------------------------------------------------------===//

#include "analysis/Liveness.h"

#include "analysis/Dataflow.h"
#include "sparc/Instruction.h"

using namespace mcsafe;
using namespace mcsafe::analysis;
using namespace mcsafe::sparc;
using mcsafe::cfg::CfgNode;
using mcsafe::cfg::NodeId;
using mcsafe::cfg::NodeKind;

namespace {

struct LivenessProblem : DataflowProblem {
  using Value = BitSet;
  static constexpr Direction Dir = Direction::Backward;

  const cfg::Cfg &G;
  const RegKeyMap &Keys;
  const std::vector<NodeUseDef> &UseDefs;
  BitSet ExitLive;

  LivenessProblem(const cfg::Cfg &G, const RegKeyMap &Keys,
                  const std::vector<NodeUseDef> &UseDefs, BitSet ExitLive)
      : G(G), Keys(Keys), UseDefs(UseDefs), ExitLive(std::move(ExitLive)) {}

  Value top() const { return BitSet(Keys.size()); }
  Value boundary() const { return ExitLive; }
  void meet(Value &Into, const Value &From) const { Into |= From; }

  bool liveBit(const Value &V, int32_t Depth, Reg R) const {
    uint32_t K = Keys.key(Depth, R);
    return K != RegKeyMap::NoKey && V.test(K);
  }
  void setBit(Value &V, int32_t Depth, Reg R) const {
    uint32_t K = Keys.key(Depth, R);
    if (K != RegKeyMap::NoKey)
      V.set(K);
  }

  void transfer(NodeId Id, Value &V) const {
    const CfgNode &Node = G.node(Id);
    const NodeUseDef &UD = UseDefs[Id];

    // save/restore are exact renamings, so their liveness transfer is
    // copy-aware: a window register is demanded from before the move
    // only when its renamed counterpart is live after it. The generic
    // use list (which conservatively keeps the whole source window
    // alive) is not used here.
    const Instruction *Inst =
        Node.Kind == NodeKind::Normal && Node.InstIndex != UINT32_MAX
            ? &G.module().Insts[Node.InstIndex]
            : nullptr;
    if (Inst &&
        (Inst->Op == Opcode::SAVE || Inst->Op == Opcode::RESTORE)) {
      int32_t D = Node.WindowDepth;
      bool IsSave = Inst->Op == Opcode::SAVE;
      // Copy targets: new %i_k (save) / caller %o_k (restore); a target
      // the destination register overwrites carries no copy.
      bool CopyLive[8];
      for (uint8_t K = 0; K < 8; ++K) {
        Reg Target = IsSave ? Reg(24 + K) : Reg(8 + K);
        CopyLive[K] = !(Target == Inst->Rd) &&
                      liveBit(V, IsSave ? D + 1 : D - 1, Target);
      }
      for (uint32_t Key : UD.Defs)
        V.reset(Key);
      for (uint8_t K = 0; K < 8; ++K)
        if (CopyLive[K])
          setBit(V, D, IsSave ? Reg(8 + K) : Reg(24 + K));
      // The operands feed rd in the shifted window.
      setBit(V, D, Inst->Rs1);
      if (!Inst->UsesImm)
        setBit(V, D, Inst->Rs2);
      return;
    }

    for (uint32_t K : UD.Defs)
      V.reset(K);
    for (uint32_t K : UD.Uses)
      V.set(K);
  }
};

} // namespace

LivenessResult analysis::computeLiveness(const cfg::Cfg &G,
                                         const policy::Policy &Pol) {
  LivenessResult R(G);
  std::vector<NodeUseDef> UseDefs = computeUseDefs(G, Pol, R.Keys);

  // Registers the safety postcondition constrains stay live to the exit
  // (their exit values are what phase 5 proves facts about).
  BitSet ExitLive(R.Keys.size());
  for (const FormulaRef &F : Pol.PostConstraints)
    for (VarId V : F->freeVars())
      if (auto RV = parseRegVar(varName(V))) {
        uint32_t K = R.Keys.key(RV->first, RV->second);
        if (K != RegKeyMap::NoKey)
          ExitLive.set(K);
      }

  LivenessProblem P(G, R.Keys, UseDefs, std::move(ExitLive));
  DataflowResult<BitSet> D = solveDataflow(G, P);
  R.LiveIn = std::move(D.In);
  R.LiveOut = std::move(D.Out);
  R.NodeVisits = D.NodeVisits;
  R.Converged = D.Converged;
  return R;
}
