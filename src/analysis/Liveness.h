//===- Liveness.h - Live-register analysis ----------------------*- C++ -*-===//
//
// Part of mcsafe, a reproduction of "Safety Checking of Machine Code"
// (Xu, Miller, Reps; PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Backward may-analysis computing, for every CFG node, the set of
/// (window depth, register) keys whose value may still be read on some
/// path from that node. The boundary at the exit node is the set of
/// registers the policy's safety postcondition constrains.
///
/// The result is what lets typestate propagation skip dead registers:
/// an abstract-store entry for a register that is not live-in at a node
/// can be dropped without changing any downstream check, because every
/// fact the later phases consume about a register value corresponds to
/// a (possibly indirect) use of that register.
///
//===----------------------------------------------------------------------===//

#ifndef MCSAFE_ANALYSIS_LIVENESS_H
#define MCSAFE_ANALYSIS_LIVENESS_H

#include "analysis/RegUseDef.h"

namespace mcsafe {
namespace analysis {

struct LivenessResult {
  RegKeyMap Keys;
  std::vector<BitSet> LiveIn;  ///< Per node: live before the node.
  std::vector<BitSet> LiveOut; ///< Per node: live after the node.
  uint64_t NodeVisits = 0;
  bool Converged = true;

  explicit LivenessResult(const cfg::Cfg &G) : Keys(G) {}

  bool liveIn(cfg::NodeId Id, int32_t Depth, sparc::Reg R) const {
    uint32_t K = Keys.key(Depth, R);
    return K != RegKeyMap::NoKey && LiveIn[Id].test(K);
  }
  bool liveOut(cfg::NodeId Id, int32_t Depth, sparc::Reg R) const {
    uint32_t K = Keys.key(Depth, R);
    return K != RegKeyMap::NoKey && LiveOut[Id].test(K);
  }
};

/// Runs the analysis. \p Pol supplies trusted-call parameter uses and
/// the postcondition registers live at exit.
LivenessResult computeLiveness(const cfg::Cfg &G,
                               const policy::Policy &Pol);

} // namespace analysis
} // namespace mcsafe

#endif // MCSAFE_ANALYSIS_LIVENESS_H
