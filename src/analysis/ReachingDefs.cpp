//===- ReachingDefs.cpp ---------------------------------------------------===//

#include "analysis/ReachingDefs.h"

#include "analysis/Dataflow.h"

using namespace mcsafe;
using namespace mcsafe::analysis;

namespace {

struct ReachingProblem : DataflowProblem {
  using Value = BitSet;
  static constexpr Direction Dir = Direction::Forward;

  uint32_t NumSites;
  const std::vector<std::vector<uint32_t>> &GenByNode;
  const std::vector<BitSet> &KillByNode;
  BitSet EntryDefs;

  ReachingProblem(uint32_t NumSites,
                  const std::vector<std::vector<uint32_t>> &GenByNode,
                  const std::vector<BitSet> &KillByNode, BitSet EntryDefs)
      : NumSites(NumSites), GenByNode(GenByNode), KillByNode(KillByNode),
        EntryDefs(std::move(EntryDefs)) {}

  Value top() const { return BitSet(NumSites); }
  Value boundary() const { return EntryDefs; }
  void meet(Value &Into, const Value &From) const { Into |= From; }

  void transfer(cfg::NodeId Id, Value &V) const {
    V.subtract(KillByNode[Id]);
    for (uint32_t Site : GenByNode[Id])
      V.set(Site);
  }
};

} // namespace

ReachingDefsResult analysis::computeReachingDefs(const cfg::Cfg &G,
                                                 const policy::Policy &Pol) {
  ReachingDefsResult R(G);
  std::vector<NodeUseDef> UseDefs = computeUseDefs(G, Pol, R.Keys);

  // Number the definition sites: one synthetic entry site per key, plus
  // one per (node, defined key).
  R.SitesOfKey.assign(R.Keys.size(), {});
  for (uint32_t K = 0; K < R.Keys.size(); ++K) {
    R.SitesOfKey[K].push_back(static_cast<uint32_t>(R.Sites.size()));
    R.Sites.push_back(DefSite{cfg::InvalidNode, K});
  }
  std::vector<std::vector<uint32_t>> GenByNode(G.size());
  for (cfg::NodeId Id = 0; Id < G.size(); ++Id)
    for (uint32_t K : UseDefs[Id].Defs) {
      uint32_t Site = static_cast<uint32_t>(R.Sites.size());
      R.Sites.push_back(DefSite{Id, K});
      R.SitesOfKey[K].push_back(Site);
      GenByNode[Id].push_back(Site);
    }

  uint32_t NumSites = static_cast<uint32_t>(R.Sites.size());
  std::vector<BitSet> KillByNode(G.size(), BitSet(NumSites));
  for (cfg::NodeId Id = 0; Id < G.size(); ++Id)
    for (uint32_t K : UseDefs[Id].Defs)
      for (uint32_t Site : R.SitesOfKey[K])
        KillByNode[Id].set(Site);

  BitSet EntryDefs(NumSites);
  for (uint32_t K = 0; K < R.Keys.size(); ++K)
    EntryDefs.set(R.SitesOfKey[K].front());

  ReachingProblem P(NumSites, GenByNode, KillByNode,
                    std::move(EntryDefs));
  DataflowResult<BitSet> D = solveDataflow(G, P);
  R.In = std::move(D.In);
  R.Out = std::move(D.Out);
  R.NodeVisits = D.NodeVisits;
  R.Converged = D.Converged;
  return R;
}
