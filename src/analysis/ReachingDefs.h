//===- ReachingDefs.h - Reaching register definitions -----------*- C++ -*-===//
//
// Part of mcsafe, a reproduction of "Safety Checking of Machine Code"
// (Xu, Miller, Reps; PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Forward may-analysis computing which register definitions (node,
/// key) can reach each program point. Definition sites are numbered
/// densely; the lattice is a bit set over sites. The entry node gets a
/// synthetic "entry" definition for every register so that a use
/// reached only by the entry definition can be distinguished from one
/// reached by a real write.
///
//===----------------------------------------------------------------------===//

#ifndef MCSAFE_ANALYSIS_REACHINGDEFS_H
#define MCSAFE_ANALYSIS_REACHINGDEFS_H

#include "analysis/RegUseDef.h"

namespace mcsafe {
namespace analysis {

/// One definition site. Node == InvalidNode marks the synthetic
/// entry definition of the key.
struct DefSite {
  cfg::NodeId Node = cfg::InvalidNode;
  uint32_t Key = 0;

  bool isEntry() const { return Node == cfg::InvalidNode; }
};

struct ReachingDefsResult {
  RegKeyMap Keys;
  std::vector<DefSite> Sites;          ///< Dense def-site table.
  std::vector<std::vector<uint32_t>> SitesOfKey; ///< Key -> site ids.
  std::vector<BitSet> In;              ///< Per node: sites reaching entry.
  std::vector<BitSet> Out;             ///< Per node: sites reaching exit.
  uint64_t NodeVisits = 0;
  bool Converged = true;

  explicit ReachingDefsResult(const cfg::Cfg &G) : Keys(G) {}

  /// The definition sites of (depth, reg) that reach the entry of
  /// \p Id.
  std::vector<DefSite> defsReaching(cfg::NodeId Id, int32_t Depth,
                                    sparc::Reg R) const {
    std::vector<DefSite> Result;
    uint32_t K = Keys.key(Depth, R);
    if (K == RegKeyMap::NoKey)
      return Result;
    for (uint32_t Site : SitesOfKey[K])
      if (In[Id].test(Site))
        Result.push_back(Sites[Site]);
    return Result;
  }
};

ReachingDefsResult computeReachingDefs(const cfg::Cfg &G,
                                       const policy::Policy &Pol);

} // namespace analysis
} // namespace mcsafe

#endif // MCSAFE_ANALYSIS_REACHINGDEFS_H
