//===- RegUseDef.cpp ------------------------------------------------------===//

#include "analysis/RegUseDef.h"

#include "sparc/Instruction.h"

#include <algorithm>

using namespace mcsafe;
using namespace mcsafe::analysis;
using namespace mcsafe::sparc;
using mcsafe::cfg::CfgNode;
using mcsafe::cfg::NodeId;
using mcsafe::cfg::NodeKind;

std::optional<std::pair<int32_t, sparc::Reg>>
analysis::parseRegVar(std::string_view Name) {
  if (Name.size() < 4 || Name[0] != 'w')
    return std::nullopt;
  size_t Dot = Name.find('.');
  if (Dot == std::string_view::npos || Dot + 1 >= Name.size())
    return std::nullopt;
  int32_t Depth = 0;
  bool Negative = false;
  size_t I = 1;
  if (Name[I] == '-') {
    Negative = true;
    ++I;
  }
  if (I == Dot)
    return std::nullopt;
  for (; I < Dot; ++I) {
    if (Name[I] < '0' || Name[I] > '9')
      return std::nullopt;
    Depth = Depth * 10 + (Name[I] - '0');
  }
  std::optional<Reg> R = parseReg(Name.substr(Dot + 1));
  if (!R)
    return std::nullopt;
  return std::make_pair(Negative ? -Depth : Depth, *R);
}

namespace {

class Collector {
public:
  Collector(const RegKeyMap &Keys, NodeUseDef &UD)
      : Keys(Keys), UD(UD) {}

  void use(int32_t Depth, Reg R, bool Checked) {
    uint32_t K = Keys.key(Depth, R);
    if (K == RegKeyMap::NoKey)
      return;
    UD.Uses.push_back(K);
    if (Checked)
      UD.CheckedUses.push_back(K);
  }
  void useKey(uint32_t K, bool Checked) {
    UD.Uses.push_back(K);
    if (Checked)
      UD.CheckedUses.push_back(K);
  }
  void def(int32_t Depth, Reg R) {
    uint32_t K = Keys.key(Depth, R);
    if (K != RegKeyMap::NoKey)
      UD.Defs.push_back(K);
  }
  void defKey(uint32_t K) { UD.Defs.push_back(K); }

  void finish() {
    auto Dedup = [](std::vector<uint32_t> &V) {
      std::sort(V.begin(), V.end());
      V.erase(std::unique(V.begin(), V.end()), V.end());
    };
    Dedup(UD.Uses);
    Dedup(UD.CheckedUses);
    Dedup(UD.Defs);
  }

private:
  const RegKeyMap &Keys;
  NodeUseDef &UD;
};

void collectTrustedCall(const CfgNode &Node, const policy::Policy &Pol,
                        const RegKeyMap &Keys, Collector &C) {
  int32_t Depth = Node.WindowDepth;
  if (const policy::TrustedSummary *Summary =
          Pol.findTrusted(Node.TrustedCallee)) {
    for (const policy::TrustedParam &Param : Summary->Params)
      C.use(Depth, Param.Reg, /*Checked=*/true);
    // The precondition is written over depth-0 out registers and
    // instantiated at the caller's depth.
    for (VarId V : Summary->Pre->freeVars()) {
      if (auto RV = parseRegVar(varName(V)))
        C.use(RV->second.isOut() ? Depth : RV->first, RV->second,
              /*Checked=*/false);
    }
  }
  // SPARC convention: the out registers and %g1 are caller-saved (same
  // clobber set as the typestate transfer); the summary's return value
  // lands in %o0 and the condition codes are scrambled.
  static const uint8_t Clobbered[] = {8, 9, 10, 11, 12, 13, 15, 1};
  for (uint8_t R : Clobbered)
    C.def(Depth, Reg(R));
  C.defKey(Keys.iccKey());
}

void collectInstruction(const Instruction &Inst, int32_t Depth,
                        const RegKeyMap &Keys, Collector &C) {
  auto UseOperands = [&](bool Checked) {
    C.use(Depth, Inst.Rs1, Checked);
    if (!Inst.UsesImm)
      C.use(Depth, Inst.Rs2, Checked);
  };

  switch (Inst.Op) {
  case Opcode::ADD:
  case Opcode::ADDCC:
  case Opcode::SUB:
  case Opcode::SUBCC:
  case Opcode::AND:
  case Opcode::ANDCC:
  case Opcode::ANDN:
  case Opcode::OR:
  case Opcode::ORCC:
  case Opcode::ORN:
  case Opcode::XOR:
  case Opcode::XORCC:
  case Opcode::XNOR:
  case Opcode::SLL:
  case Opcode::SRL:
  case Opcode::SRA:
  case Opcode::UMUL:
  case Opcode::SMUL:
  case Opcode::UDIV:
  case Opcode::SDIV:
    UseOperands(/*Checked=*/true);
    C.def(Depth, Inst.Rd);
    break;
  case Opcode::SETHI:
    C.def(Depth, Inst.Rd);
    break;

  case Opcode::LD:
  case Opcode::LDSB:
  case Opcode::LDSH:
  case Opcode::LDUB:
  case Opcode::LDUH:
    UseOperands(/*Checked=*/true);
    C.def(Depth, Inst.Rd);
    break;
  case Opcode::ST:
  case Opcode::STB:
  case Opcode::STH:
    UseOperands(/*Checked=*/true);
    C.use(Depth, Inst.Rd, /*Checked=*/true); // The stored value.
    break;

  case Opcode::SAVE:
    // The operands feed the new window's rd but are not themselves
    // checked (the result merely becomes uninitialized when they are);
    // the outgoing window renames into the new in registers.
    UseOperands(/*Checked=*/false);
    for (uint8_t K = 0; K < 8; ++K)
      C.use(Depth, Reg(8 + K), /*Checked=*/false);
    for (uint8_t K = 0; K < 24; ++K)
      C.def(Depth + 1, Reg(8 + K));
    C.def(Depth + 1, Inst.Rd);
    break;
  case Opcode::RESTORE:
    UseOperands(/*Checked=*/false);
    for (uint8_t K = 0; K < 8; ++K)
      C.use(Depth, Reg(24 + K), /*Checked=*/false);
    for (uint8_t K = 0; K < 24; ++K)
      C.def(Depth, Reg(8 + K)); // The abandoned window.
    for (uint8_t K = 0; K < 8; ++K)
      C.def(Depth - 1, Reg(8 + K));
    C.def(Depth - 1, Inst.Rd);
    break;

  case Opcode::CALL:
    C.def(Depth, O7);
    break;
  case Opcode::JMPL:
    UseOperands(/*Checked=*/false);
    C.def(Depth, Inst.Rd);
    break;

  default:
    if (isConditionalBranch(Inst.Op))
      C.useKey(Keys.iccKey(), /*Checked=*/true);
    break;
  }

  if (setsIcc(Inst.Op))
    C.defKey(Keys.iccKey());
}

} // namespace

std::vector<NodeUseDef> analysis::computeUseDefs(const cfg::Cfg &G,
                                                 const policy::Policy &Pol,
                                                 const RegKeyMap &Keys) {
  std::vector<NodeUseDef> Result(G.size());
  for (NodeId Id = 0; Id < G.size(); ++Id) {
    const CfgNode &Node = G.node(Id);
    Collector C(Keys, Result[Id]);
    if (Node.Kind == NodeKind::TrustedCall)
      collectTrustedCall(Node, Pol, Keys, C);
    else if (Node.Kind == NodeKind::Normal && Node.InstIndex != UINT32_MAX)
      collectInstruction(G.module().Insts[Node.InstIndex],
                         Node.WindowDepth, Keys, C);
    C.finish();
  }
  return Result;
}
