//===- RegUseDef.h - Per-node register uses and definitions -----*- C++ -*-===//
//
// Part of mcsafe, a reproduction of "Safety Checking of Machine Code"
// (Xu, Miller, Reps; PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The syntactic register use/def sets every register-level dataflow
/// problem shares. Uses distinguishes two strengths:
///
///  - Uses: every key whose value the node's semantics read, including
///    the window-renaming copies of save/restore and the operands of
///    control transfers. This is what liveness must treat as a use for
///    store pruning to be sound.
///
///  - CheckedUses: the subset whose initialization the checker's local
///    verification actually demands (operands of checked arithmetic,
///    resolved memory operands, stored values, branch condition codes,
///    trusted-call parameters). Only these may be reported as
///    uninitialized-use violations by the lint, mirroring phases 3-4.
///
/// Trusted-call summary nodes take their parameter registers and
/// precondition variables from the policy.
///
//===----------------------------------------------------------------------===//

#ifndef MCSAFE_ANALYSIS_REGUSEDEF_H
#define MCSAFE_ANALYSIS_REGUSEDEF_H

#include "analysis/RegisterSet.h"
#include "policy/Policy.h"

#include <vector>

namespace mcsafe {
namespace analysis {

struct NodeUseDef {
  std::vector<uint32_t> Uses;        ///< All keys read.
  std::vector<uint32_t> CheckedUses; ///< Reads that must be initialized.
  std::vector<uint32_t> Defs;        ///< Keys unconditionally written.
};

/// Computes use/def sets for every node of \p G under \p Keys.
std::vector<NodeUseDef> computeUseDefs(const cfg::Cfg &G,
                                       const policy::Policy &Pol,
                                       const RegKeyMap &Keys);

/// Parses a register-value variable name of the regValueVar form
/// ("w<depth>.%<reg>"); nullopt for any other variable.
std::optional<std::pair<int32_t, sparc::Reg>>
parseRegVar(std::string_view Name);

} // namespace analysis
} // namespace mcsafe

#endif // MCSAFE_ANALYSIS_REGUSEDEF_H
