//===- RegisterSet.cpp ----------------------------------------------------===//

#include "analysis/RegisterSet.h"

#include "sparc/Instruction.h"

using namespace mcsafe;
using namespace mcsafe::analysis;

RegKeyMap::RegKeyMap(const cfg::Cfg &G) {
  for (cfg::NodeId Id = 0; Id < G.size(); ++Id) {
    const cfg::CfgNode &Node = G.node(Id);
    int32_t Depth = Node.WindowDepth;
    MinDepth = std::min(MinDepth, Depth);
    // A save writes the next-deeper window even if (degenerately) it has
    // no successor node at that depth.
    if (Node.Kind == cfg::NodeKind::Normal &&
        Node.InstIndex != UINT32_MAX &&
        G.module().Insts[Node.InstIndex].Op == sparc::Opcode::SAVE)
      ++Depth;
    MaxDepth = std::max(MaxDepth, Depth);
  }
  uint32_t Depths = static_cast<uint32_t>(MaxDepth - MinDepth + 1);
  // 7 shared globals + 24 windowed registers per depth + icc.
  NumKeys = 7 + Depths * 24 + 1;
}

std::pair<int32_t, sparc::Reg> RegKeyMap::decode(uint32_t Key) const {
  if (Key < 7)
    return {0, sparc::Reg(static_cast<uint8_t>(Key + 1))};
  if (Key >= iccKey())
    return {0, sparc::Reg(0)};
  Key -= 7;
  return {MinDepth + static_cast<int32_t>(Key / 24),
          sparc::Reg(static_cast<uint8_t>(8 + Key % 24))};
}
