//===- RegisterSet.h - Dense register-key sets for dataflow -----*- C++ -*-===//
//
// Part of mcsafe, a reproduction of "Safety Checking of Machine Code"
// (Xu, Miller, Reps; PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Register-level dataflow problems (liveness, reaching definitions,
/// uninitialized-use detection) operate on (window depth, register)
/// pairs, because after CFG normalization every node has a static window
/// depth and save/restore are exact renamings. RegKeyMap assigns each
/// such pair a dense bit index — globals are shared across depths, %g0
/// is excluded (it is a constant), and the integer condition codes get
/// one extra slot — so set-valued lattices become small bit vectors.
///
//===----------------------------------------------------------------------===//

#ifndef MCSAFE_ANALYSIS_REGISTERSET_H
#define MCSAFE_ANALYSIS_REGISTERSET_H

#include "cfg/Cfg.h"
#include "sparc/Registers.h"

#include <cstdint>
#include <vector>

namespace mcsafe {
namespace analysis {

/// A fixed-universe bit set with the operations dataflow needs.
class BitSet {
public:
  BitSet() = default;
  explicit BitSet(uint32_t Size) : Bits(Size), Words((Size + 63) / 64, 0) {}

  uint32_t universe() const { return Bits; }

  bool test(uint32_t I) const {
    return (Words[I >> 6] >> (I & 63)) & 1;
  }
  void set(uint32_t I) { Words[I >> 6] |= uint64_t(1) << (I & 63); }
  void reset(uint32_t I) { Words[I >> 6] &= ~(uint64_t(1) << (I & 63)); }

  void setAll() {
    for (uint64_t &W : Words)
      W = ~uint64_t(0);
    trim();
  }

  BitSet &operator|=(const BitSet &O) {
    for (size_t I = 0; I < Words.size(); ++I)
      Words[I] |= O.Words[I];
    return *this;
  }
  BitSet &operator&=(const BitSet &O) {
    for (size_t I = 0; I < Words.size(); ++I)
      Words[I] &= O.Words[I];
    return *this;
  }
  /// Removes every bit of \p O from this set.
  BitSet &subtract(const BitSet &O) {
    for (size_t I = 0; I < Words.size(); ++I)
      Words[I] &= ~O.Words[I];
    return *this;
  }

  uint32_t count() const {
    uint32_t N = 0;
    for (uint64_t W : Words)
      N += static_cast<uint32_t>(__builtin_popcountll(W));
    return N;
  }
  bool empty() const {
    for (uint64_t W : Words)
      if (W)
        return false;
    return true;
  }

  friend bool operator==(const BitSet &A, const BitSet &B) {
    return A.Words == B.Words;
  }
  friend bool operator!=(const BitSet &A, const BitSet &B) {
    return !(A == B);
  }

private:
  void trim() {
    if (Bits & 63)
      Words.back() &= (uint64_t(1) << (Bits & 63)) - 1;
  }

  uint32_t Bits = 0;
  std::vector<uint64_t> Words;
};

/// Dense numbering of the (depth, register) pairs a CFG can touch, plus
/// the condition codes.
class RegKeyMap {
public:
  static constexpr uint32_t NoKey = UINT32_MAX;

  explicit RegKeyMap(const cfg::Cfg &G);

  /// Bit universe size (all keys + icc).
  uint32_t size() const { return NumKeys; }

  /// The bit index of (depth, reg); NoKey for %g0. Globals are shared
  /// across depths. Depths outside the CFG's static range (which cannot
  /// occur on any executed path) clamp into it.
  uint32_t key(int32_t Depth, sparc::Reg R) const {
    if (R.isZero())
      return NoKey;
    if (R.isGlobal())
      return R.number() - 1; // 7 global slots, %g1-%g7.
    if (Depth < MinDepth)
      Depth = MinDepth;
    if (Depth > MaxDepth)
      Depth = MaxDepth;
    return 7 + static_cast<uint32_t>(Depth - MinDepth) * 24 +
           (R.number() - 8);
  }

  uint32_t iccKey() const { return NumKeys - 1; }

  int32_t minDepth() const { return MinDepth; }
  int32_t maxDepth() const { return MaxDepth; }

  /// Decodes a bit index back to (depth, reg) for diagnostics; icc and
  /// out-of-range indices decode to (0, %g0).
  std::pair<int32_t, sparc::Reg> decode(uint32_t Key) const;

private:
  int32_t MinDepth = 0;
  int32_t MaxDepth = 0;
  uint32_t NumKeys = 0;
};

} // namespace analysis
} // namespace mcsafe

#endif // MCSAFE_ANALYSIS_REGISTERSET_H
