//===- StackDelta.cpp -----------------------------------------------------===//

#include "analysis/StackDelta.h"

#include "analysis/Dataflow.h"
#include "analysis/RegisterSet.h"
#include "sparc/Instruction.h"

#include <algorithm>

using namespace mcsafe;
using namespace mcsafe::analysis;
using namespace mcsafe::sparc;
using mcsafe::cfg::CfgNode;
using mcsafe::cfg::NodeId;
using mcsafe::cfg::NodeKind;

namespace {

using Slots = std::vector<SpDelta>;

void meetSlot(SpDelta &Into, const SpDelta &From) {
  if (From.K == SpDelta::Top)
    return;
  if (Into.K == SpDelta::Top) {
    Into = From;
    return;
  }
  if (Into.K == SpDelta::Bottom || From.K == SpDelta::Bottom ||
      Into.Delta != From.Delta)
    Into = SpDelta::bottom();
}

struct StackDeltaProblem : DataflowProblem {
  using Value = Slots;
  static constexpr Direction Dir = Direction::Forward;

  const cfg::Cfg &G;
  int32_t MinDepth;
  uint32_t NumDepths;

  StackDeltaProblem(const cfg::Cfg &G, int32_t MinDepth, uint32_t NumDepths)
      : G(G), MinDepth(MinDepth), NumDepths(NumDepths) {}

  Value top() const { return Slots(NumDepths); }
  Value boundary() const {
    Slots V(NumDepths);
    if (!V.empty()) // The range always covers depth 0 (the entry node).
      V[slot(0)] = SpDelta::constant(0); // Entry %sp is the reference.
    return V;
  }
  void meet(Value &Into, const Value &From) const {
    for (uint32_t I = 0; I < NumDepths; ++I)
      meetSlot(Into[I], From[I]);
  }

  size_t slot(int32_t Depth) const {
    int32_t I = Depth - MinDepth;
    if (I < 0)
      I = 0;
    if (I >= static_cast<int32_t>(NumDepths))
      I = static_cast<int32_t>(NumDepths) - 1;
    return static_cast<size_t>(I);
  }

  void transfer(NodeId Id, Value &V) const {
    const CfgNode &Node = G.node(Id);
    if (Node.Kind != NodeKind::Normal || Node.InstIndex == UINT32_MAX)
      return; // Trusted calls preserve %sp (only caller-saves scramble).
    const Instruction &Inst = G.module().Insts[Node.InstIndex];
    int32_t D = Node.WindowDepth;

    switch (Inst.Op) {
    case Opcode::SAVE: {
      // rd (normally the new %sp) = caller rs1 + operand2, in the new
      // window.
      SpDelta New = SpDelta::bottom();
      if (Inst.Rs1 == SP && Inst.UsesImm) {
        SpDelta Cur = V[slot(D)];
        if (Cur.isConst())
          New = SpDelta::constant(Cur.Delta + Inst.Imm);
      }
      V[slot(D + 1)] = Inst.Rd == SP ? New : SpDelta::bottom();
      return;
    }
    case Opcode::RESTORE:
      // The window vanishes; the caller's %sp is untouched unless it is
      // the restore destination.
      V[slot(D)] = SpDelta::top();
      if (Inst.Rd == SP)
        V[slot(D - 1)] = SpDelta::bottom();
      return;
    case Opcode::ADD:
    case Opcode::SUB:
      if (Inst.Rd == SP) {
        SpDelta New = SpDelta::bottom();
        if (Inst.Rs1 == SP && Inst.UsesImm) {
          SpDelta Cur = V[slot(D)];
          if (Cur.isConst())
            New = SpDelta::constant(Cur.Delta + (Inst.Op == Opcode::ADD
                                                     ? Inst.Imm
                                                     : -Inst.Imm));
        }
        V[slot(D)] = New;
      }
      return;
    default:
      // Every other write to %sp makes the delta unknown. (Stores,
      // branches, and %g0-destination instructions never hit this.)
      if (!isStore(Inst.Op) && !isBranch(Inst.Op) && Inst.Rd == SP)
        V[slot(D)] = SpDelta::bottom();
      return;
    }
  }
};

} // namespace

StackDeltaResult analysis::computeStackDeltas(const cfg::Cfg &G,
                                              const policy::Policy &) {
  RegKeyMap Keys(G); // Reuse its static window-depth range computation.
  uint32_t NumDepths =
      static_cast<uint32_t>(Keys.maxDepth() - Keys.minDepth() + 1);

  StackDeltaProblem P(G, Keys.minDepth(), NumDepths);
  DataflowResult<Slots> D = solveDataflow(G, P);

  StackDeltaResult R;
  R.MinDepth = Keys.minDepth();
  R.In = std::move(D.In);
  R.Visited = std::move(D.Visited);
  R.NodeVisits = D.NodeVisits;
  R.Converged = D.Converged;

  // Summarize the executing window's delta at every reachable node.
  for (NodeId Id : G.reversePostOrder()) {
    if (!R.Visited[Id])
      continue;
    const SpDelta &Cur = R.In[Id][P.slot(G.node(Id).WindowDepth)];
    if (Cur.isConst())
      R.MaxDown = std::max(R.MaxDown, -Cur.Delta);
    else if (Cur.K == SpDelta::Bottom)
      R.Bounded = false;
  }
  if (!R.Converged)
    R.Bounded = false;
  return R;
}
