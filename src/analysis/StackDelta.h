//===- StackDelta.h - Constant stack-pointer-delta tracking -----*- C++ -*-===//
//
// Part of mcsafe, a reproduction of "Safety Checking of Machine Code"
// (Xu, Miller, Reps; PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Forward analysis tracking, per window depth, the offset of that
/// window's %sp from the %sp the program was entered with, as an
/// element of the flat constant lattice (Top / Const c / Bottom).
/// save and restore move between depths; add/sub with an immediate
/// adjust the current depth; any other write to %sp drops to Bottom.
///
/// The results are informational — they feed the report's stack
/// characteristics (deepest downward excursion, whether every frame
/// size is a compile-time constant) — and never cause a lint reject:
/// a non-constant %sp is not by itself a safety violation (the
/// typestate phases handle access checks).
///
//===----------------------------------------------------------------------===//

#ifndef MCSAFE_ANALYSIS_STACKDELTA_H
#define MCSAFE_ANALYSIS_STACKDELTA_H

#include "cfg/Cfg.h"
#include "policy/Policy.h"

#include <cstdint>
#include <vector>

namespace mcsafe {
namespace analysis {

/// One flat-lattice element: the delta of a window's %sp from the entry
/// %sp, in bytes (negative = grown downward).
struct SpDelta {
  enum Kind : uint8_t { Top, Const, Bottom };
  Kind K = Top;
  int64_t Delta = 0;

  static SpDelta top() { return {}; }
  static SpDelta constant(int64_t D) { return {Const, D}; }
  static SpDelta bottom() { return {Bottom, 0}; }

  bool isConst() const { return K == Const; }

  friend bool operator==(const SpDelta &A, const SpDelta &B) {
    return A.K == B.K && (A.K != Const || A.Delta == B.Delta);
  }
};

struct StackDeltaResult {
  int32_t MinDepth = 0;
  /// Per node, per depth slot (index = depth - MinDepth): the delta at
  /// node entry.
  std::vector<std::vector<SpDelta>> In;
  std::vector<bool> Visited;

  /// Deepest downward %sp excursion observed at any reachable point, in
  /// bytes (>= 0); only counts points where the delta is constant.
  int64_t MaxDown = 0;
  /// True when the %sp of the executing window has a constant delta at
  /// every reachable node — i.e. every frame size is statically known.
  bool Bounded = true;

  uint64_t NodeVisits = 0;
  bool Converged = true;

  /// The delta of \p Depth's %sp at entry to \p Id.
  SpDelta deltaIn(cfg::NodeId Id, int32_t Depth) const {
    size_t Slot = static_cast<size_t>(Depth - MinDepth);
    if (Id >= In.size() || Slot >= In[Id].size())
      return SpDelta::bottom();
    return In[Id][Slot];
  }
};

StackDeltaResult computeStackDeltas(const cfg::Cfg &G,
                                    const policy::Policy &Pol);

} // namespace analysis
} // namespace mcsafe

#endif // MCSAFE_ANALYSIS_STACKDELTA_H
