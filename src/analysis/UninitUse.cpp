//===- UninitUse.cpp ------------------------------------------------------===//

#include "analysis/UninitUse.h"

#include "analysis/Dataflow.h"
#include "sparc/Instruction.h"

using namespace mcsafe;
using namespace mcsafe::analysis;
using namespace mcsafe::sparc;
using mcsafe::cfg::CfgNode;
using mcsafe::cfg::NodeId;
using mcsafe::cfg::NodeKind;

namespace {

/// The "definitely uninitialized on every path" problem. The transfer
/// under-approximates: a key is marked uninitialized only when the
/// typestate transfer is guaranteed to produce a non-initialized state
/// for it, so a finding can never contradict the full pipeline.
struct UninitProblem : DataflowProblem {
  using Value = BitSet;
  static constexpr Direction Dir = Direction::Forward;

  const cfg::Cfg &G;
  const policy::Policy &Pol;
  const RegKeyMap &Keys;
  BitSet EntryUninit;

  UninitProblem(const cfg::Cfg &G, const policy::Policy &Pol,
                const RegKeyMap &Keys, BitSet EntryUninit)
      : G(G), Pol(Pol), Keys(Keys), EntryUninit(std::move(EntryUninit)) {}

  Value top() const {
    BitSet Full(Keys.size());
    Full.setAll(); // Identity of intersection: unreached points.
    return Full;
  }
  Value boundary() const { return EntryUninit; }
  void meet(Value &Into, const Value &From) const { Into &= From; }

  bool bit(const Value &V, int32_t Depth, Reg R) const {
    uint32_t K = Keys.key(Depth, R);
    return K != RegKeyMap::NoKey && V.test(K);
  }
  void assign(Value &V, int32_t Depth, Reg R, bool Uninit) const {
    uint32_t K = Keys.key(Depth, R);
    if (K == RegKeyMap::NoKey)
      return;
    if (Uninit)
      V.set(K);
    else
      V.reset(K);
  }

  void transfer(NodeId Id, Value &V) const {
    const CfgNode &Node = G.node(Id);
    int32_t D = Node.WindowDepth;

    if (Node.Kind == NodeKind::TrustedCall) {
      // Caller-saved registers come back scrambled; the return value
      // (when the summary declares one) is initialized in %o0.
      static const uint8_t Clobbered[] = {8, 9, 10, 11, 12, 13, 15, 1};
      for (uint8_t R : Clobbered)
        assign(V, D, Reg(R), true);
      V.set(Keys.iccKey());
      const policy::TrustedSummary *Summary =
          Pol.findTrusted(Node.TrustedCallee);
      if (Summary && Summary->ReturnType)
        assign(V, D, O0, false);
      return;
    }
    if (Node.Kind != NodeKind::Normal || Node.InstIndex == UINT32_MAX)
      return;

    const Instruction &Inst = G.module().Insts[Node.InstIndex];
    // Is any read operand definitely uninitialized? (Immediates and %g0
    // are constants.)
    bool OperandUninit =
        bit(V, D, Inst.Rs1) || (!Inst.UsesImm && bit(V, D, Inst.Rs2));

    switch (Inst.Op) {
    case Opcode::ADD:
    case Opcode::ADDCC:
    case Opcode::SUB:
    case Opcode::SUBCC:
    case Opcode::AND:
    case Opcode::ANDCC:
    case Opcode::ANDN:
    case Opcode::OR:
    case Opcode::ORCC:
    case Opcode::ORN:
    case Opcode::XOR:
    case Opcode::XORCC:
    case Opcode::XNOR:
    case Opcode::SLL:
    case Opcode::SRL:
    case Opcode::SRA:
    case Opcode::UMUL:
    case Opcode::SMUL:
    case Opcode::UDIV:
    case Opcode::SDIV:
      // The typestate transfer yields an uninitialized result exactly
      // when an operand is uninitialized.
      assign(V, D, Inst.Rd, OperandUninit);
      break;
    case Opcode::SETHI:
      assign(V, D, Inst.Rd, false);
      break;

    case Opcode::LD:
    case Opcode::LDSB:
    case Opcode::LDSH:
    case Opcode::LDUB:
    case Opcode::LDUH:
      // The loaded value may or may not be initialized; assume it is.
      assign(V, D, Inst.Rd, false);
      break;
    case Opcode::STB:
    case Opcode::STH:
    case Opcode::ST:
      break; // No register definition.

    case Opcode::SAVE: {
      // New window: %i inherits the caller's %o; %l and %o are fresh
      // and definitely uninitialized.
      bool OutBits[8];
      for (uint8_t K = 0; K < 8; ++K)
        OutBits[K] = bit(V, D, Reg(8 + K));
      for (uint8_t K = 0; K < 8; ++K) {
        assign(V, D + 1, Reg(24 + K), OutBits[K]);
        assign(V, D + 1, Reg(16 + K), true);
        assign(V, D + 1, Reg(8 + K), true);
      }
      // The destination (normally the new %sp) gets the computed sum.
      assign(V, D + 1, Inst.Rd, OperandUninit);
      break;
    }
    case Opcode::RESTORE: {
      bool InBits[8];
      for (uint8_t K = 0; K < 8; ++K)
        InBits[K] = bit(V, D, Reg(24 + K));
      // The abandoned window's contents are gone.
      for (uint8_t K = 8; K < 32; ++K)
        assign(V, D, Reg(K), true);
      for (uint8_t K = 0; K < 8; ++K)
        assign(V, D - 1, Reg(8 + K), InBits[K]);
      if (!Inst.Rd.isZero())
        assign(V, D - 1, Inst.Rd, OperandUninit);
      break;
    }

    case Opcode::CALL:
      assign(V, D, O7, false);
      break;
    case Opcode::JMPL:
      assign(V, D, Inst.Rd, false);
      break;
    default:
      break;
    }

    if (setsIcc(Inst.Op))
      V.reset(Keys.iccKey()); // icc becomes a (possibly garbage) value.
  }
};

} // namespace

UninitUseResult
analysis::findUninitUses(const cfg::Cfg &G, const policy::Policy &Pol,
                         const typestate::AbstractStore &EntryStore) {
  UninitUseResult Result;
  RegKeyMap Keys(G);
  std::vector<NodeUseDef> UseDefs = computeUseDefs(G, Pol, Keys);

  // At entry, everything the invocation specification does not
  // initialize is definitely uninitialized (deeper windows do not exist
  // yet; save marks them when they are created).
  BitSet EntryUninit(Keys.size());
  EntryUninit.setAll();
  for (uint8_t R = 1; R < 32; ++R)
    if (EntryStore.reg(0, Reg(R)).S.isInitialized()) {
      uint32_t K = Keys.key(0, Reg(R));
      if (K != RegKeyMap::NoKey)
        EntryUninit.reset(K);
    }
  if (EntryStore.icc().S.isInitialized())
    EntryUninit.reset(Keys.iccKey());

  UninitProblem P(G, Pol, Keys, std::move(EntryUninit));
  DataflowResult<BitSet> D = solveDataflow(G, P);
  Result.NodeVisits = D.NodeVisits;
  Result.Converged = D.Converged;
  if (!D.Converged)
    return Result; // Without a fixpoint the sets are not trustworthy.

  // Scan the checked uses of reachable nodes.
  for (NodeId Id : G.reversePostOrder()) {
    if (!D.Visited[Id])
      continue;
    const CfgNode &Node = G.node(Id);
    for (uint32_t K : UseDefs[Id].CheckedUses) {
      if (!D.In[Id].test(K))
        continue;
      UninitUseFinding F;
      F.Node = Id;
      F.IsIcc = K == Keys.iccKey();
      F.IsTrustedParam = Node.Kind == NodeKind::TrustedCall;
      if (!F.IsIcc) {
        auto [Depth, R] = Keys.decode(K);
        F.Depth = Depth;
        F.R = R;
      }
      Result.Findings.push_back(F);
    }
  }
  return Result;
}
