//===- UninitUse.h - Definite uninitialized-register-use check --*- C++ -*-===//
//
// Part of mcsafe, a reproduction of "Safety Checking of Machine Code"
// (Xu, Miller, Reps; PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Forward must-analysis over the "definitely uninitialized" register
/// sets: a key is in the set at a program point when *every* path to
/// that point leaves it unwritten (including values that are merely
/// copies or arithmetic combinations of uninitialized inputs, matching
/// the typestate transfer). A checked use of such a key is a safety
/// violation on every execution, so the lint can reject the program
/// without running typestate propagation — the full pipeline, whose
/// may-uninitialized reasoning subsumes this must-reasoning, would
/// reject it too.
///
/// The merge is set intersection (uninit on all paths), save introduces
/// a definitely-uninitialized fresh window, and restore both abandons
/// the callee window and renames %i back to the caller's %o.
///
//===----------------------------------------------------------------------===//

#ifndef MCSAFE_ANALYSIS_UNINITUSE_H
#define MCSAFE_ANALYSIS_UNINITUSE_H

#include "analysis/RegUseDef.h"
#include "typestate/AbstractStore.h"

namespace mcsafe {
namespace analysis {

/// One definite use of a never-initialized register.
struct UninitUseFinding {
  cfg::NodeId Node = cfg::InvalidNode;
  int32_t Depth = 0;
  sparc::Reg R;      ///< %g0 when the use is of the condition codes.
  bool IsIcc = false;
  bool IsTrustedParam = false; ///< Use is a trusted-call parameter.
};

struct UninitUseResult {
  std::vector<UninitUseFinding> Findings;
  uint64_t NodeVisits = 0;
  bool Converged = true;
};

/// Runs the analysis. \p EntryStore tells which registers the
/// invocation specification initializes at the program entry.
UninitUseResult findUninitUses(const cfg::Cfg &G,
                               const policy::Policy &Pol,
                               const typestate::AbstractStore &EntryStore);

} // namespace analysis
} // namespace mcsafe

#endif // MCSAFE_ANALYSIS_UNINITUSE_H
