//===- Cfg.cpp ------------------------------------------------------------===//

#include "cfg/Cfg.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <map>
#include <sstream>

using namespace mcsafe;
using namespace mcsafe::cfg;
using namespace mcsafe::sparc;

namespace mcsafe {
namespace cfg {

/// Performs inline expansion and delay-slot normalization.
class CfgBuilder {
public:
  CfgBuilder(const Module &M, DiagnosticEngine &Diags) : M(M), Diags(Diags) {
    G.M = &M;
  }

  std::optional<Cfg> run();

private:
  struct FunctionInstance {
    NodeId Entry = InvalidNode;
    /// Nodes whose successor is the caller's continuation (the delay-slot
    /// clones of the function's return jmpls).
    std::vector<NodeId> Returns;
  };

  static constexpr size_t MaxNodes = 200000;

  NodeId newNode(NodeKind Kind, uint32_t InstIndex, uint32_t Context) {
    CfgNode N;
    N.Kind = Kind;
    N.InstIndex = InstIndex;
    N.InlineContext = Context;
    N.FuncEntry = CurFuncEntry;
    G.Nodes.push_back(std::move(N));
    return static_cast<NodeId>(G.Nodes.size() - 1);
  }

  void addEdge(NodeId From, NodeId To, EdgeKind Kind,
               Opcode BranchOp = Opcode::BA) {
    G.Nodes[From].Succs.push_back({To, Kind, BranchOp});
  }

  bool fatal(const std::string &Message, uint32_t InstIndex) {
    Diags.report(DiagSeverity::Fatal, SafetyKind::Unsupported, Message,
                 InstIndex,
                 InstIndex < M.size() ? M.Insts[InstIndex].SourceLine : 0);
    return false;
  }

  /// Expands one instantiation of the function entered at \p EntryIdx.
  std::optional<FunctionInstance>
  expandFunction(uint32_t EntryIdx, std::vector<uint32_t> &CallStack);

  bool assignWindowDepths();

  const Module &M;
  DiagnosticEngine &Diags;
  Cfg G;
  uint32_t NextContext = 0;
  uint32_t CurFuncEntry = 0;
};

} // namespace cfg
} // namespace mcsafe

std::optional<CfgBuilder::FunctionInstance>
CfgBuilder::expandFunction(uint32_t EntryIdx,
                           std::vector<uint32_t> &CallStack) {
  for (uint32_t Caller : CallStack) {
    if (Caller == EntryIdx) {
      fatal("recursive call detected; the analysis rejects recursion",
            EntryIdx);
      return std::nullopt;
    }
  }
  CallStack.push_back(EntryIdx);
  uint32_t Context = NextContext++;
  uint32_t SavedFuncEntry = CurFuncEntry;
  CurFuncEntry = EntryIdx;

  FunctionInstance Instance;
  // Primary node for each instruction index within this instantiation.
  std::map<uint32_t, NodeId> Primary;
  std::deque<uint32_t> Worklist;

  auto GetOrCreate = [&](uint32_t Index) -> std::optional<NodeId> {
    if (Index >= M.size()) {
      fatal("control flow runs past the end of the code", Index);
      return std::nullopt;
    }
    auto It = Primary.find(Index);
    if (It != Primary.end())
      return It->second;
    NodeId Id = newNode(NodeKind::Normal, Index, Context);
    Primary.emplace(Index, Id);
    Worklist.push_back(Index);
    return Id;
  };

  std::optional<NodeId> EntryNode = GetOrCreate(EntryIdx);
  if (!EntryNode)
    return std::nullopt;
  Instance.Entry = *EntryNode;

  while (!Worklist.empty()) {
    if (G.Nodes.size() > MaxNodes) {
      fatal("inline expansion exceeds the node budget", EntryIdx);
      return std::nullopt;
    }
    uint32_t Index = Worklist.front();
    Worklist.pop_front();
    NodeId Node = Primary.at(Index);
    const Instruction &Inst = M.Insts[Index];

    if (!Inst.isControlTransfer()) {
      std::optional<NodeId> Next = GetOrCreate(Index + 1);
      if (!Next)
        return std::nullopt;
      addEdge(Node, *Next, EdgeKind::Flow);
      continue;
    }

    // Every control transfer has a delay slot.
    uint32_t DelayIdx = Index + 1;
    if (DelayIdx >= M.size()) {
      fatal("control transfer has no delay-slot instruction", Index);
      return std::nullopt;
    }
    if (M.Insts[DelayIdx].isControlTransfer()) {
      fatal("control transfer in a delay slot is not supported", DelayIdx);
      return std::nullopt;
    }
    auto CloneDelay = [&]() {
      return newNode(NodeKind::Normal, DelayIdx, Context);
    };

    if (isConditionalBranch(Inst.Op)) {
      // The decoder rejects branches with negative targets, but the CFG
      // builder sits on the untrusted-input path too: fail with a
      // diagnostic, never an assert, if one slips through another
      // frontend.
      if (Inst.Target < 0) {
        fatal("conditional branch has an unresolved target", Index);
        return std::nullopt;
      }
      std::optional<NodeId> TakenDst =
          GetOrCreate(static_cast<uint32_t>(Inst.Target));
      std::optional<NodeId> FallDst = GetOrCreate(Index + 2);
      if (!TakenDst || !FallDst)
        return std::nullopt;
      NodeId TakenDelay = CloneDelay();
      addEdge(Node, TakenDelay, EdgeKind::Taken, Inst.Op);
      addEdge(TakenDelay, *TakenDst, EdgeKind::Flow);
      if (Inst.Annul) {
        // Annulled: the delay instruction executes on the taken path only.
        addEdge(Node, *FallDst, EdgeKind::NotTaken, Inst.Op);
      } else {
        NodeId FallDelay = CloneDelay();
        addEdge(Node, FallDelay, EdgeKind::NotTaken, Inst.Op);
        addEdge(FallDelay, *FallDst, EdgeKind::Flow);
      }
      continue;
    }

    if (Inst.Op == Opcode::BA || Inst.Op == Opcode::BN) {
      if (Inst.Op == Opcode::BA && Inst.Target < 0) {
        fatal("branch-always has an unresolved target", Index);
        return std::nullopt;
      }
      uint32_t Dest = Inst.Op == Opcode::BA
                          ? static_cast<uint32_t>(Inst.Target)
                          : Index + 2;
      std::optional<NodeId> DestNode = GetOrCreate(Dest);
      if (!DestNode)
        return std::nullopt;
      if (Inst.Annul) {
        addEdge(Node, *DestNode, EdgeKind::Flow);
      } else {
        NodeId Delay = CloneDelay();
        addEdge(Node, Delay, EdgeKind::Flow);
        addEdge(Delay, *DestNode, EdgeKind::Flow);
      }
      continue;
    }

    if (Inst.Op == Opcode::CALL) {
      NodeId Delay = CloneDelay();
      addEdge(Node, Delay, EdgeKind::Flow);
      std::optional<NodeId> Continuation = GetOrCreate(Index + 2);
      if (!Continuation)
        return std::nullopt;
      if (Inst.Target >= 0) {
        std::optional<FunctionInstance> Callee =
            expandFunction(static_cast<uint32_t>(Inst.Target), CallStack);
        if (!Callee)
          return std::nullopt;
        addEdge(Delay, Callee->Entry, EdgeKind::Flow);
        for (NodeId Ret : Callee->Returns)
          addEdge(Ret, *Continuation, EdgeKind::Flow);
        if (Callee->Returns.empty())
          Diags.report(DiagSeverity::Warning, SafetyKind::None,
                       "callee never returns", Index, Inst.SourceLine);
      } else {
        NodeId Summary = newNode(NodeKind::TrustedCall, Index, Context);
        G.Nodes[Summary].TrustedCallee = Inst.CalleeName;
        addEdge(Delay, Summary, EdgeKind::Flow);
        addEdge(Summary, *Continuation, EdgeKind::Flow);
      }
      continue;
    }

    assert(Inst.Op == Opcode::JMPL);
    if (!Inst.isReturn()) {
      fatal("indirect jump (jmpl) is not supported; only the conventional "
            "returns jmpl %o7+8 / %i7+8 are analyzable",
            Index);
      return std::nullopt;
    }
    NodeId Delay = CloneDelay();
    addEdge(Node, Delay, EdgeKind::Flow);
    Instance.Returns.push_back(Delay);
  }

  CallStack.pop_back();
  CurFuncEntry = SavedFuncEntry;
  return Instance;
}

bool CfgBuilder::assignWindowDepths() {
  // BFS from the entry; the depth on entry to each node must be unique.
  std::vector<int32_t> Depth(G.Nodes.size(), INT32_MIN);
  std::deque<NodeId> Worklist;
  Depth[G.Entry] = 0;
  Worklist.push_back(G.Entry);
  constexpr int32_t MaxDepth = 32;
  while (!Worklist.empty()) {
    NodeId Id = Worklist.front();
    Worklist.pop_front();
    const CfgNode &N = G.Nodes[Id];
    int32_t Out = Depth[Id];
    if (N.Kind == NodeKind::Normal && N.InstIndex != UINT32_MAX) {
      const Instruction &Inst = M.Insts[N.InstIndex];
      if (Inst.Op == Opcode::SAVE)
        ++Out;
      else if (Inst.Op == Opcode::RESTORE)
        --Out;
      if (Out < 0) {
        Diags.report(DiagSeverity::Fatal, SafetyKind::StackDiscipline,
                     "restore without a matching save", N.InstIndex,
                     Inst.SourceLine);
        return false;
      }
      if (Out > MaxDepth) {
        Diags.report(DiagSeverity::Fatal, SafetyKind::StackDiscipline,
                     "register-window depth exceeds the supported maximum",
                     N.InstIndex, Inst.SourceLine);
        return false;
      }
    }
    for (const CfgEdge &E : N.Succs) {
      if (Depth[E.To] == INT32_MIN) {
        Depth[E.To] = Out;
        Worklist.push_back(E.To);
      } else if (Depth[E.To] != Out) {
        Diags.report(DiagSeverity::Fatal, SafetyKind::StackDiscipline,
                     "inconsistent register-window depth at join",
                     G.Nodes[E.To].InstIndex,
                     G.sourceLine(E.To));
        return false;
      }
    }
  }
  for (NodeId Id = 0; Id < G.size(); ++Id)
    G.Nodes[Id].WindowDepth = Depth[Id] == INT32_MIN ? 0 : Depth[Id];
  // The program must exit at depth 0 (all windows restored).
  if (Depth[G.Exit] > 0) {
    Diags.report(DiagSeverity::Fatal, SafetyKind::StackDiscipline,
                 "control returns to the host with unrestored register "
                 "windows");
    return false;
  }
  return true;
}

std::optional<Cfg> CfgBuilder::run() {
  std::vector<uint32_t> CallStack;
  std::optional<FunctionInstance> Top = expandFunction(0, CallStack);
  if (!Top)
    return std::nullopt;
  G.Entry = Top->Entry;
  G.Exit = newNode(NodeKind::Exit, UINT32_MAX, 0);
  if (Top->Returns.empty())
    Diags.report(DiagSeverity::Warning, SafetyKind::None,
                 "the untrusted code never returns to the host");
  for (NodeId Ret : Top->Returns)
    addEdge(Ret, G.Exit, EdgeKind::Flow);

  // Populate predecessor lists.
  for (NodeId Id = 0; Id < G.size(); ++Id)
    for (const CfgEdge &E : G.Nodes[Id].Succs)
      G.Nodes[E.To].Preds.push_back(Id);

  if (!assignWindowDepths())
    return std::nullopt;
  return std::move(G);
}

std::optional<Cfg> Cfg::build(const Module &M, DiagnosticEngine &Diags) {
  if (M.Insts.empty()) {
    Diags.fatal("empty module");
    return std::nullopt;
  }
  CfgBuilder Builder(M, Diags);
  return Builder.run();
}

const Instruction &Cfg::inst(NodeId Id) const {
  const CfgNode &N = Nodes[Id];
  assert(N.InstIndex != UINT32_MAX && "synthetic node has no instruction");
  return M->Insts[N.InstIndex];
}

uint32_t Cfg::sourceLine(NodeId Id) const {
  const CfgNode &N = Nodes[Id];
  if (N.InstIndex == UINT32_MAX || N.InstIndex >= M->size())
    return 0;
  return M->Insts[N.InstIndex].SourceLine;
}

std::vector<NodeId> Cfg::reversePostOrder() const {
  std::vector<NodeId> Order;
  std::vector<uint8_t> State(Nodes.size(), 0); // 0 new, 1 open, 2 done.
  // Iterative DFS with an explicit stack.
  std::vector<std::pair<NodeId, size_t>> Stack;
  Stack.emplace_back(Entry, 0);
  State[Entry] = 1;
  while (!Stack.empty()) {
    auto &[Id, NextSucc] = Stack.back();
    if (NextSucc < Nodes[Id].Succs.size()) {
      NodeId To = Nodes[Id].Succs[NextSucc++].To;
      if (State[To] == 0) {
        State[To] = 1;
        Stack.emplace_back(To, 0);
      }
      continue;
    }
    State[Id] = 2;
    Order.push_back(Id);
    Stack.pop_back();
  }
  std::reverse(Order.begin(), Order.end());
  return Order;
}

std::string Cfg::str() const {
  std::ostringstream OS;
  for (NodeId Id = 0; Id < size(); ++Id) {
    const CfgNode &N = Nodes[Id];
    OS << 'n' << Id << " [d" << N.WindowDepth << "] ";
    switch (N.Kind) {
    case NodeKind::Normal:
      OS << "line " << sourceLine(Id) << ": " << inst(Id).str();
      break;
    case NodeKind::TrustedCall:
      OS << "trusted-call " << N.TrustedCallee;
      break;
    case NodeKind::Exit:
      OS << "exit";
      break;
    }
    OS << " ->";
    for (const CfgEdge &E : N.Succs) {
      OS << " n" << E.To;
      if (E.Kind == EdgeKind::Taken)
        OS << "(T:" << sparc::opcodeName(E.BranchOp) << ')';
      else if (E.Kind == EdgeKind::NotTaken)
        OS << "(F:" << sparc::opcodeName(E.BranchOp) << ')';
    }
    OS << '\n';
  }
  return OS.str();
}
