//===- Cfg.h - Control-flow graph with delay-slot normalization -*- C++ -*-===//
//
// Part of mcsafe, a reproduction of "Safety Checking of Machine Code"
// (Xu, Miller, Reps; PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The interprocedural control-flow graph the five analysis phases run on.
/// Construction performs three normalizations:
///
///  1. *Delayed branches.* The delay-slot instruction of every delayed
///     control transfer is replicated onto each outgoing edge on which it
///     executes — exactly the paper's device for Figure 8 ("the
///     instructions at lines 5 and 11 are replicated to model the
///     semantics of delayed branches"). Annulled branches replicate onto
///     the taken edge only.
///
///  2. *Interprocedural inline expansion.* Since the analysis rejects
///     recursion (Section 5.2.1), the call graph is acyclic and each local
///     call site receives its own clone of the callee's CFG; this is the
///     "walk through the body of the callee as though it is inlined"
///     device, realized structurally. Calls to external functions become
///     TrustedCall summary nodes checked against the policy's
///     trusted-function pre/post-conditions.
///
///  3. *Register-window depths.* Every node gets a static window depth
///     (save increments, restore decrements); inconsistent depths are
///     stack-manipulation violations. Depths let later phases treat
///     save/restore as exact register renamings.
///
//===----------------------------------------------------------------------===//

#ifndef MCSAFE_CFG_CFG_H
#define MCSAFE_CFG_CFG_H

#include "sparc/Module.h"
#include "support/Diagnostics.h"

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace mcsafe {
namespace cfg {

/// Index of a node within a Cfg.
using NodeId = uint32_t;
inline constexpr NodeId InvalidNode = UINT32_MAX;

/// What a node does beyond its instruction.
enum class NodeKind : uint8_t {
  Normal,      ///< Executes its instruction.
  TrustedCall, ///< Synthetic: applies an external function's summary.
  Exit,        ///< Synthetic: the unique program exit.
};

/// Why an edge is taken. Conditional-branch edges carry the branch opcode
/// and polarity so the checker can attach a linear condition on icc.
enum class EdgeKind : uint8_t {
  Flow,     ///< Unconditional control flow.
  Taken,    ///< Conditional branch taken.
  NotTaken, ///< Conditional branch not taken.
};

struct CfgEdge {
  NodeId To = InvalidNode;
  EdgeKind Kind = EdgeKind::Flow;
  /// For Taken/NotTaken edges: the branch opcode of the source branch.
  sparc::Opcode BranchOp = sparc::Opcode::BA;
};

struct CfgNode {
  NodeKind Kind = NodeKind::Normal;
  /// Index of the executed instruction in the module; UINT32_MAX for
  /// synthetic nodes. Delay-slot clones and inlined callee bodies share
  /// the InstIndex of their original instruction.
  uint32_t InstIndex = UINT32_MAX;
  /// Name of the external callee for TrustedCall nodes.
  std::string TrustedCallee;
  /// Register-window depth on entry to this node (0 = caller window).
  int32_t WindowDepth = 0;
  /// Inline-expansion context: which call-site chain this node belongs
  /// to, used only for diagnostics. 0 is the outermost instantiation.
  uint32_t InlineContext = 0;
  /// Module instruction index of the enclosing function's entry (0 for
  /// the top-level function). Lets the checker find per-function frame
  /// annotations.
  uint32_t FuncEntry = 0;
  std::vector<CfgEdge> Succs;
  std::vector<NodeId> Preds;
};

/// The normalized interprocedural CFG.
class Cfg {
public:
  /// Builds the CFG for \p M starting at instruction 0. On unsupported
  /// input (recursion, indirect jumps, missing delay slots, window-depth
  /// inconsistencies) emits diagnostics and returns nullopt.
  static std::optional<Cfg> build(const sparc::Module &M,
                                  DiagnosticEngine &Diags);

  const sparc::Module &module() const { return *M; }

  NodeId entry() const { return Entry; }
  NodeId exit() const { return Exit; }
  uint32_t size() const { return static_cast<uint32_t>(Nodes.size()); }
  const CfgNode &node(NodeId Id) const { return Nodes[Id]; }
  const std::vector<CfgNode> &nodes() const { return Nodes; }

  /// The instruction a node executes; asserts the node is not synthetic.
  const sparc::Instruction &inst(NodeId Id) const;

  /// 1-based source line of the node's instruction (0 for synthetic).
  uint32_t sourceLine(NodeId Id) const;

  /// Reverse postorder from the entry node.
  std::vector<NodeId> reversePostOrder() const;

  /// Renders the graph for debugging.
  std::string str() const;

private:
  const sparc::Module *M = nullptr;
  std::vector<CfgNode> Nodes;
  NodeId Entry = InvalidNode;
  NodeId Exit = InvalidNode;

  friend class CfgBuilder;
};

} // namespace cfg
} // namespace mcsafe

#endif // MCSAFE_CFG_CFG_H
