//===- Dominators.cpp -----------------------------------------------------===//

#include "cfg/Dominators.h"

#include <cassert>

using namespace mcsafe;
using namespace mcsafe::cfg;

DominatorTree::DominatorTree(const Cfg &G) {
  Rpo = G.reversePostOrder();
  RpoIndex.assign(G.size(), UINT32_MAX);
  for (uint32_t I = 0; I < Rpo.size(); ++I)
    RpoIndex[Rpo[I]] = I;

  Idom.assign(G.size(), InvalidNode);
  Idom[G.entry()] = G.entry();

  auto Intersect = [&](NodeId A, NodeId B) {
    while (A != B) {
      while (RpoIndex[A] > RpoIndex[B])
        A = Idom[A];
      while (RpoIndex[B] > RpoIndex[A])
        B = Idom[B];
    }
    return A;
  };

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (NodeId Id : Rpo) {
      if (Id == G.entry())
        continue;
      NodeId NewIdom = InvalidNode;
      for (NodeId Pred : G.node(Id).Preds) {
        if (Idom[Pred] == InvalidNode)
          continue; // Not processed / unreachable.
        NewIdom = NewIdom == InvalidNode ? Pred : Intersect(Pred, NewIdom);
      }
      if (NewIdom != InvalidNode && Idom[Id] != NewIdom) {
        Idom[Id] = NewIdom;
        Changed = true;
      }
    }
  }
}

bool DominatorTree::dominates(NodeId A, NodeId B) const {
  if (RpoIndex[B] == UINT32_MAX)
    return false;
  NodeId Cur = B;
  while (true) {
    if (Cur == A)
      return true;
    NodeId Up = Idom[Cur];
    if (Up == Cur || Up == InvalidNode)
      return false;
    Cur = Up;
  }
}
