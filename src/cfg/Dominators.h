//===- Dominators.h - Dominator tree ----------------------------*- C++ -*-===//
//
// Part of mcsafe, a reproduction of "Safety Checking of Machine Code"
// (Xu, Miller, Reps; PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dominator tree over the CFG (Cooper-Harvey-Kennedy iterative
/// algorithm), used to detect back edges / natural loops and to test
/// reducibility — the induction-iteration method is defined over
/// reducible control-flow graphs (Section 5.2).
///
//===----------------------------------------------------------------------===//

#ifndef MCSAFE_CFG_DOMINATORS_H
#define MCSAFE_CFG_DOMINATORS_H

#include "cfg/Cfg.h"

#include <vector>

namespace mcsafe {
namespace cfg {

/// Immediate-dominator table for a Cfg.
class DominatorTree {
public:
  explicit DominatorTree(const Cfg &G);

  /// Immediate dominator; the entry's idom is itself. Unreachable nodes
  /// report InvalidNode.
  NodeId idom(NodeId Id) const { return Idom[Id]; }

  /// Does \p A dominate \p B? (Reflexive.)
  bool dominates(NodeId A, NodeId B) const;

  /// The reverse postorder the computation used.
  const std::vector<NodeId> &order() const { return Rpo; }

  /// Position of a node in reverse postorder (UINT32_MAX if unreachable).
  uint32_t rpoIndex(NodeId Id) const { return RpoIndex[Id]; }

private:
  std::vector<NodeId> Idom;
  std::vector<NodeId> Rpo;
  std::vector<uint32_t> RpoIndex;
};

} // namespace cfg
} // namespace mcsafe

#endif // MCSAFE_CFG_DOMINATORS_H
