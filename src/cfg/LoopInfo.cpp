//===- LoopInfo.cpp -------------------------------------------------------===//

#include "cfg/LoopInfo.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <map>
#include <set>

using namespace mcsafe;
using namespace mcsafe::cfg;

LoopInfo::LoopInfo(const Cfg &G, const DominatorTree &Dom) {
  NodeLoop.assign(G.size(), -1);

  // Find back edges: From -> To with To dominating From. A retreating
  // edge (target earlier in RPO) that is not a back edge makes the graph
  // irreducible.
  std::map<NodeId, std::set<NodeId>> HeaderToLatches;
  for (NodeId From = 0; From < G.size(); ++From) {
    if (Dom.rpoIndex(From) == UINT32_MAX)
      continue; // Unreachable.
    for (const CfgEdge &E : G.node(From).Succs) {
      bool Retreating = Dom.rpoIndex(E.To) <= Dom.rpoIndex(From);
      if (!Retreating)
        continue;
      if (Dom.dominates(E.To, From))
        HeaderToLatches[E.To].insert(From);
      else
        Reducible = false;
    }
  }

  // Build the natural loop of each header: the set of nodes that can reach
  // a latch without passing through the header.
  for (const auto &[Header, Latches] : HeaderToLatches) {
    Loop L;
    L.Header = Header;
    std::set<NodeId> Body = {Header};
    std::deque<NodeId> Worklist;
    for (NodeId Latch : Latches) {
      L.Latches.push_back(Latch);
      if (Body.insert(Latch).second)
        Worklist.push_back(Latch);
    }
    while (!Worklist.empty()) {
      NodeId Id = Worklist.front();
      Worklist.pop_front();
      for (NodeId Pred : G.node(Id).Preds)
        if (Body.insert(Pred).second)
          Worklist.push_back(Pred);
    }
    L.Body.assign(Body.begin(), Body.end());
    Loops.push_back(std::move(L));
  }

  // Sort loops by size ascending so that the innermost loop of a node is
  // the first one that contains it; establish parent links by smallest
  // strict superset.
  std::sort(Loops.begin(), Loops.end(), [](const Loop &A, const Loop &B) {
    if (A.Body.size() != B.Body.size())
      return A.Body.size() < B.Body.size();
    return A.Header < B.Header;
  });
  for (size_t I = 0; I < Loops.size(); ++I) {
    for (NodeId Id : Loops[I].Body)
      if (NodeLoop[Id] < 0)
        NodeLoop[Id] = static_cast<int32_t>(I);
    for (size_t J = I + 1; J < Loops.size(); ++J) {
      if (Loops[J].contains(Loops[I].Header) &&
          Loops[J].Body.size() > Loops[I].Body.size()) {
        Loops[I].Parent = static_cast<int32_t>(J);
        break;
      }
    }
  }
  for (Loop &L : Loops) {
    uint32_t Depth = 1;
    for (int32_t P = L.Parent; P >= 0; P = Loops[P].Parent)
      ++Depth;
    L.Depth = Depth;
  }
}

bool LoopInfo::isBackEdge(NodeId From, NodeId To) const {
  for (const Loop &L : Loops) {
    if (L.Header != To)
      continue;
    for (NodeId Latch : L.Latches)
      if (Latch == From)
        return true;
  }
  return false;
}

uint32_t LoopInfo::innerLoopCount() const {
  uint32_t N = 0;
  for (const Loop &L : Loops)
    if (L.Parent >= 0)
      ++N;
  return N;
}
