//===- LoopInfo.h - Natural loops and reducibility --------------*- C++ -*-===//
//
// Part of mcsafe, a reproduction of "Safety Checking of Machine Code"
// (Xu, Miller, Reps; PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Natural-loop detection over the dominator tree. The paper partitions
/// the control-flow graph into "code regions that are either cyclic
/// (natural loops) or acyclic" (Section 5.2); LoopInfo supplies the cyclic
/// regions, their nesting, and the reducibility test (every retreating
/// edge must be a back edge).
///
//===----------------------------------------------------------------------===//

#ifndef MCSAFE_CFG_LOOPINFO_H
#define MCSAFE_CFG_LOOPINFO_H

#include "cfg/Cfg.h"
#include "cfg/Dominators.h"

#include <cstdint>
#include <vector>

namespace mcsafe {
namespace cfg {

/// One natural loop. Loops sharing a header are merged.
struct Loop {
  NodeId Header = InvalidNode;
  /// All nodes in the loop, header included.
  std::vector<NodeId> Body;
  /// Sources of the back edges (latches).
  std::vector<NodeId> Latches;
  /// Index of the enclosing loop in LoopInfo::loops(), or -1.
  int32_t Parent = -1;
  /// Nesting depth: 1 for outermost loops.
  uint32_t Depth = 1;

  bool contains(NodeId Id) const {
    for (NodeId N : Body)
      if (N == Id)
        return true;
    return false;
  }
};

/// All natural loops of a CFG.
class LoopInfo {
public:
  LoopInfo(const Cfg &G, const DominatorTree &Dom);

  /// True when every retreating edge is a back edge. The checker refuses
  /// irreducible graphs (the induction-iteration method needs natural
  /// loops).
  bool isReducible() const { return Reducible; }

  const std::vector<Loop> &loops() const { return Loops; }

  /// Index of the innermost loop containing a node, or -1.
  int32_t innermostLoop(NodeId Id) const { return NodeLoop[Id]; }

  /// Is (From -> To) a back edge (To is a loop header dominating From)?
  bool isBackEdge(NodeId From, NodeId To) const;

  /// Number of loops nested strictly inside another loop.
  uint32_t innerLoopCount() const;

private:
  std::vector<Loop> Loops;
  std::vector<int32_t> NodeLoop;
  bool Reducible = true;
};

} // namespace cfg
} // namespace mcsafe

#endif // MCSAFE_CFG_LOOPINFO_H
