//===- Annotation.cpp -----------------------------------------------------===//

#include "checker/Annotation.h"

#include "policy/Policy.h"
#include "support/CheckedInt.h"
#include "support/Governor.h"

#include <cassert>
#include <sstream>

using namespace mcsafe;
using namespace mcsafe::checker;
using namespace mcsafe::typestate;
using namespace mcsafe::sparc;
using mcsafe::cfg::CfgNode;
using mcsafe::cfg::NodeId;
using mcsafe::cfg::NodeKind;
using mcsafe::policy::regValueVar;

namespace {

/// Builds the checks for one analysis run.
class Annotator {
public:
  Annotator(const CheckContext &Ctx, const PropagationResult &Prop)
      : Ctx(Ctx), Prop(Prop) {}

  AnnotationResult run();

private:
  void visitNode(NodeId Id);
  void checkArithmetic(NodeId Id, const Instruction &Inst);
  void checkMemory(NodeId Id, const Instruction &Inst);
  void checkBranch(NodeId Id, const Instruction &Inst);
  void checkTrustedCall(NodeId Id);
  void checkPostcondition(NodeId Id);

  /// Emits the array bounds / alignment / null obligations shared by
  /// array-index adds and array-typed memory accesses.
  void emitArrayObligations(NodeId Id, const MemFacts &F);

  FormulaRef buildAssertions(NodeId Id, const AbstractStore &In) const;

  // --- Local predicate helpers (paper Section 4.3). -----------------------

  /// operable(v): o in A(v) and v is initialized.
  bool checkOperable(NodeId Id, const Typestate &Ts,
                     const std::string &What);
  /// followable(v): f in A(v) and v is a pointer.
  bool checkFollowable(NodeId Id, const Typestate &Ts,
                       const std::string &What);

  void localViolation(NodeId Id, SafetyKind Kind,
                      const std::string &Message) {
    ++Result.LocalViolations;
    Ctx.Diags->report(DiagSeverity::Violation, Kind, Message, Id,
                      Ctx.Graph.sourceLine(Id));
  }

  void addObligation(NodeId Id, SafetyKind Kind, FormulaRef Q,
                     std::string Description) {
    if (Q->isTrue())
      return; // Trivially satisfied (constant index): not a condition.
    Result.Obligations.push_back(
        {Id, Kind, std::move(Q), std::move(Description)});
  }

  LinearExpr regExpr(int32_t Depth, Reg R) const {
    if (R.isZero())
      return LinearExpr();
    return LinearExpr::variable(regValueVar(Depth, R));
  }

  const AbstractStore &in(NodeId Id) const { return Prop.In[Id]; }

  const CheckContext &Ctx;
  const PropagationResult &Prop;
  AnnotationResult Result;
};

bool Annotator::checkOperable(NodeId Id, const Typestate &Ts,
                              const std::string &What) {
  ++Result.LocalChecks;
  if (!Ts.S.isInitialized()) {
    localViolation(Id, SafetyKind::UninitializedUse,
                   What + " may be uninitialized");
    return false;
  }
  if (!Ts.A.O) {
    localViolation(Id, SafetyKind::AccessPolicy,
                   What + " is not operable under the policy");
    return false;
  }
  return true;
}

bool Annotator::checkFollowable(NodeId Id, const Typestate &Ts,
                                const std::string &What) {
  ++Result.LocalChecks;
  if (!Ts.S.isPointsTo() || !Ts.Type->isPointerLike()) {
    localViolation(Id,
                   Ts.S.isInitialized() ? SafetyKind::TypeError
                                        : SafetyKind::UninitializedUse,
                   What + " is not a valid pointer");
    return false;
  }
  if (!Ts.A.F) {
    localViolation(Id, SafetyKind::AccessPolicy,
                   What + " is not followable under the policy");
    return false;
  }
  return true;
}

FormulaRef Annotator::buildAssertions(NodeId Id,
                                      const AbstractStore &In) const {
  std::vector<FormulaRef> Facts;
  const CfgNode &Node = Ctx.Graph.node(Id);
  In.forEachReg([&](int32_t Depth, Reg R, const Typestate &Ts) {
    // Only the visible windows matter; facts about deeper windows are
    // stale clutter.
    if (Depth > Node.WindowDepth)
      return;
    LinearExpr Var = LinearExpr::variable(regValueVar(Depth, R));
    if (Ts.S.constant()) {
      Facts.push_back(Formula::atom(
          Constraint::eq(Var.plusConstant(-*Ts.S.constant()))));
      return;
    }
    if (Ts.S.isInit()) {
      // Interval facts from the forward value analysis.
      if (Ts.S.lower())
        Facts.push_back(Formula::atom(
            Constraint::ge(Var.plusConstant(-*Ts.S.lower()))));
      if (Ts.S.upper())
        Facts.push_back(Formula::atom(
            Constraint::ge((-Var).plusConstant(*Ts.S.upper()))));
      // Known trailing bits become a congruence: x == r (mod 2^k). Sound
      // for the mathematical value because the tracked pattern is the
      // value mod 2^32 and 2^k | 2^32 (see analysis/KnownBits.h).
      if (Ctx.KnownBits) {
        unsigned K = Ts.S.bits().lowKnown();
        if (K >= 1 && K <= 30)
          Facts.push_back(Formula::atom(Constraint::divides(
              int64_t(1) << K,
              Var.plusConstant(
                  -static_cast<int64_t>(Ts.S.bits().residue())))));
      }
      return;
    }
    if (!Ts.S.isPointsTo())
      return;
    if (Ts.S.isDefinitelyNull()) {
      Facts.push_back(Formula::atom(Constraint::eq(Var)));
      return;
    }
    if (!Ts.S.mayBeNull())
      Facts.push_back(
          Formula::atom(Constraint::ge(Var.plusConstant(-1))));
    // Alignment fact: all targets agree on alignment a and residue r.
    int64_t Align = 0;
    int64_t Residue = 0;
    bool Consistent = !Ts.S.targets().empty();
    bool First = true;
    for (const PtrTarget &Target : Ts.S.targets()) {
      int64_t A = Ctx.Locs.loc(Target.Loc).Align;
      if (A <= 1) {
        Consistent = false;
        break;
      }
      int64_t R2 = floorMod(Target.Offset, A);
      if (First) {
        Align = A;
        Residue = R2;
        First = false;
      } else if (A != Align || R2 != Residue) {
        Consistent = false;
        break;
      }
    }
    if (Consistent && Align > 1)
      Facts.push_back(Formula::atom(
          Constraint::divides(Align, Var.plusConstant(-Residue))));
  });
  // The condition codes: icc == R - imm after cmp R, imm.
  if (const auto &Origin = In.iccOrigin()) {
    LinearExpr Icc = LinearExpr::variable(policy::iccVar());
    Facts.push_back(Formula::atom(Constraint::eq(
        Icc - regExpr(Origin->Depth, Origin->R).plusConstant(-Origin->Imm))));
  }
  return Formula::conj(std::move(Facts));
}

void Annotator::emitArrayObligations(NodeId Id, const MemFacts &F) {
  int32_t Depth = F.BaseDepth;
  LinearExpr Idx = F.IndexIsImm ? LinearExpr::constant(F.IndexImm)
                                : regExpr(Depth, F.IndexReg);
  LinearExpr Base = regExpr(Depth, F.BaseReg);
  uint32_t Size = F.ElemSize;

  if (!F.Interior) {
    // inbounds(size, 0, n, i):  0 <= i < n*size  and  size | i.
    addObligation(Id, SafetyKind::ArrayBounds,
                  Formula::atom(Constraint::ge(Idx)),
                  "array index lower bound");
    LinearExpr Limit =
        F.Bound.Symbolic
            ? LinearExpr::variable(F.Bound.Sym).scaled(Size)
            : LinearExpr::constant(F.Bound.Literal * Size);
    addObligation(Id, SafetyKind::ArrayBounds,
                  Formula::atom(Constraint::lt(Idx, Limit)),
                  "array index upper bound");
    if (Size > 1)
      addObligation(Id, SafetyKind::Alignment,
                    Formula::atom(Constraint::divides(Size, Base + Idx)),
                    "array access alignment");
  } else if (Size > 1) {
    // Interior pointers were bounds-checked when they were formed; only
    // alignment and nullness remain.
    addObligation(Id, SafetyKind::Alignment,
                  Formula::atom(Constraint::divides(Size, Base + Idx)),
                  "array access alignment");
  }
  addObligation(Id, SafetyKind::NullDereference,
                Formula::atom(Constraint::ge(Base.plusConstant(-1))),
                "base pointer must be non-null");
}

void Annotator::checkArithmetic(NodeId Id, const Instruction &Inst) {
  const AbstractStore &In = in(Id);
  int32_t Depth = Ctx.Graph.node(Id).WindowDepth;
  Typestate A = In.reg(Depth, Inst.Rs1);
  Typestate B = Inst.UsesImm
                    ? Typestate{TypeFactory::int32(),
                                State::initConst(Inst.Imm), Access::o()}
                    : In.reg(Depth, Inst.Rs2);

  InstFacts Facts = resolveInst(Ctx, Id, In);
  if (Facts.Add == AddUsage::ArrayIndex) {
    // Table 2 row 2: operable(rs), operable(Opnd), null not in S(rs),
    // and the bounds check.
    checkOperable(Id, A, "the base operand");
    checkOperable(Id, B, "the index operand");
    if (!Facts.Mem.Interior) {
      emitArrayObligations(Id, Facts.Mem);
    } else if (!Facts.Mem.IndexIsImm || Facts.Mem.IndexImm != 0) {
      localViolation(Id, SafetyKind::ArrayBounds,
                     "cannot bound an index added to an interior array "
                     "pointer");
    }
    return;
  }
  if (Facts.Add == AddUsage::PtrDisp) {
    checkOperable(Id, A.S.isPointsTo() ? A : B, "the pointer operand");
    checkOperable(Id, A.S.isPointsTo() ? B : A, "the displacement");
    return;
  }
  // Scalar use (Table 2 row 1): both operands operable.
  checkOperable(Id, A, "the first operand");
  checkOperable(Id, B, "the second operand");
}

void Annotator::checkMemory(NodeId Id, const Instruction &Inst) {
  const AbstractStore &In = in(Id);
  int32_t Depth = Ctx.Graph.node(Id).WindowDepth;
  InstFacts Facts = resolveInst(Ctx, Id, In);
  const MemFacts &F = Facts.Mem;
  bool Load = isLoad(Inst.Op);

  Typestate Base = In.reg(Depth, F.BaseReg);
  if (!checkFollowable(Id, Base, "the base address"))
    return;
  if (F.Unresolved) {
    localViolation(Id,
                   F.ArrayAccess ? SafetyKind::TypeError
                                 : SafetyKind::AccessPolicy,
                   "the memory access does not resolve to a field of the "
                   "right size in any pointed-to location");
    return;
  }
  if (F.ArrayAccess && !F.IndexIsImm)
    checkOperable(Id, In.reg(Depth, F.IndexReg), "the index register");

  // Location r/w permissions.
  for (AbsLocId Leaf : F.Leaves) {
    ++Result.LocalChecks;
    const AbstractLocation &Loc = Ctx.Locs.loc(Leaf);
    if (Load && !Loc.Readable) {
      localViolation(Id, SafetyKind::AccessPolicy,
                     "location '" + Loc.Name + "' is not readable");
    } else if (!Load && !Loc.Writable) {
      localViolation(Id, SafetyKind::AccessPolicy,
                     "location '" + Loc.Name + "' is not writable");
    }
  }

  if (!Load) {
    // assignable(rs, l): the stored value must be initialized and type-
    // compatible with every destination.
    Typestate Value = In.reg(Depth, Inst.Rd);
    ++Result.LocalChecks;
    if (!Value.S.isInitialized()) {
      localViolation(Id, SafetyKind::UninitializedUse,
                     "storing an uninitialized value");
    } else {
      for (AbsLocId Leaf : F.Leaves) {
        const AbstractLocation &Loc = Ctx.Locs.loc(Leaf);
        bool NullIntoPointer = Loc.Type->isPointerLike() &&
                               Value.S.constant() &&
                               *Value.S.constant() == 0;
        if (!typeEquals(Loc.Type, Value.Type) && !NullIntoPointer &&
            !Loc.Type->isTop()) {
          // Scalar-for-scalar of equal width is tolerated; anything that
          // could forge a pointer is not.
          bool BothScalar = Loc.Type->isGround() && Value.Type->isGround() &&
                            Loc.Type->sizeInBytes() ==
                                Value.Type->sizeInBytes();
          if (!BothScalar) {
            localViolation(Id, SafetyKind::TypeError,
                           "storing a value of type " + Value.Type->str() +
                               " into '" + Loc.Name + "' of type " +
                               Loc.Type->str());
            break;
          }
        }
      }
    }
  }

  // Global obligations.
  if (F.ArrayAccess) {
    emitArrayObligations(Id, F);
  } else {
    LinearExpr Base2 = regExpr(Depth, F.BaseReg);
    uint32_t Size = memAccessSize(Inst.Op);
    if (Size > 1)
      addObligation(
          Id, SafetyKind::Alignment,
          Formula::atom(Constraint::divides(
              Size, Base2.plusConstant(F.IndexIsImm ? F.IndexImm : 0))),
          "address alignment");
    addObligation(Id, SafetyKind::NullDereference,
                  Formula::atom(Constraint::ge(Base2.plusConstant(-1))),
                  F.BaseMayBeNull ? "pointer may be null"
                                  : "pointer must be non-null");
  }
}

void Annotator::checkBranch(NodeId Id, const Instruction &Inst) {
  if (!isConditionalBranch(Inst.Op))
    return;
  ++Result.LocalChecks;
  if (!in(Id).icc().S.isInitialized())
    localViolation(Id, SafetyKind::UninitializedUse,
                   "conditional branch on uninitialized condition codes");
}

void Annotator::checkTrustedCall(NodeId Id) {
  const CfgNode &Node = Ctx.Graph.node(Id);
  const policy::TrustedSummary *Summary =
      Ctx.Pol->findTrusted(Node.TrustedCallee);
  ++Result.LocalChecks;
  if (!Summary) {
    localViolation(Id, SafetyKind::TrustedCall,
                   "call to '" + Node.TrustedCallee +
                       "', which the policy does not allow");
    return;
  }
  const AbstractStore &In = in(Id);
  int32_t Depth = Node.WindowDepth;
  for (const policy::TrustedParam &Param : Summary->Params) {
    Typestate Actual = In.reg(Depth, Param.Reg);
    ++Result.LocalChecks;
    std::string What = "parameter " + Param.Reg.name() + " of '" +
                       Summary->Name + "'";
    if (!Actual.S.isInitialized()) {
      localViolation(Id, SafetyKind::TrustedCall,
                     What + " may be uninitialized");
      continue;
    }
    if (Param.Type && !typeEquals(Actual.Type, Param.Type)) {
      bool NullOk = Param.State.MayBeNull && Actual.S.constant() &&
                    *Actual.S.constant() == 0;
      if (!NullOk) {
        localViolation(Id, SafetyKind::TrustedCall,
                       What + " has type " + Actual.Type->str() +
                           ", expected " + Param.Type->str());
        continue;
      }
    }
    if (Param.State.K == policy::StateSpec::Kind::PointsTo &&
        Actual.S.isPointsTo()) {
      if (Actual.S.mayBeNull() && !Param.State.MayBeNull) {
        localViolation(Id, SafetyKind::TrustedCall,
                       What + " may be null");
        continue;
      }
      for (const PtrTarget &Target : Actual.S.targets()) {
        bool Allowed = false;
        for (const auto &[Name, Offset] : Param.State.Targets) {
          AbsLocId Want = Ctx.Locs.lookup(Name);
          if (Want != InvalidLoc && Want == Target.Loc &&
              Offset == Target.Offset)
            Allowed = true;
        }
        if (!Allowed) {
          localViolation(Id, SafetyKind::TrustedCall,
                         What + " may point outside the allowed locations");
          break;
        }
      }
    }
    if ((Param.Access.F && !Actual.A.F) ||
        (Param.Access.X && !Actual.A.X) ||
        (Param.Access.O && !Actual.A.O))
      localViolation(Id, SafetyKind::TrustedCall,
                     What + " lacks a required access permission");
  }
  if (!Summary->Pre->isTrue()) {
    // Instantiate the precondition at the caller's window depth.
    FormulaRef Pre = Summary->Pre;
    if (Depth != 0) {
      for (uint8_t K = 8; K < 16; ++K) {
        Reg R = Reg(K);
        Pre = Formula::substitute(
            Pre, regValueVar(0, R),
            LinearExpr::variable(regValueVar(Depth, R)));
      }
    }
    addObligation(Id, SafetyKind::TrustedCall, Pre,
                  "precondition of '" + Summary->Name + "'");
  }
}

void Annotator::checkPostcondition(NodeId Id) {
  const AbstractStore &In = in(Id);
  // Linear postconditions become global obligations at the exit node.
  for (const FormulaRef &F : Ctx.Pol->PostConstraints)
    addObligation(Id, SafetyKind::Postcondition, F,
                  "safety postcondition");
  // State postconditions are checked against the exit typestates.
  for (const auto &[Name, Spec] : Ctx.Pol->PostStates) {
    AbsLocId Target = Ctx.Locs.lookup(Name);
    if (Target == InvalidLoc)
      continue;
    std::vector<AbsLocId> Leaves;
    Ctx.Locs.collectLeaves(Target, Leaves);
    for (AbsLocId Leaf : Leaves) {
      ++Result.LocalChecks;
      const State &S = In.loc(Leaf).S;
      bool Ok = true;
      switch (Spec.K) {
      case policy::StateSpec::Kind::Init:
        Ok = S.isInitialized();
        break;
      case policy::StateSpec::Kind::Uninit:
        Ok = true; // Anything satisfies "may be uninitialized".
        break;
      case policy::StateSpec::Kind::Null:
        Ok = S.isDefinitelyNull() ||
             (S.constant() && *S.constant() == 0);
        break;
      case policy::StateSpec::Kind::PointsTo: {
        // Scalar leaves of an aggregate under a points-to spec only need
        // to be initialized (mirrors the entry-store construction).
        if (!Ctx.Locs.loc(Leaf).Type->isPointerLike()) {
          Ok = S.isInitialized();
          break;
        }
        Ok = S.isPointsTo() && (!S.mayBeNull() || Spec.MayBeNull);
        if (Ok) {
          for (const PtrTarget &T : S.targets()) {
            bool Allowed = false;
            for (const auto &[WantName, WantOff] : Spec.Targets) {
              AbsLocId Want = Ctx.Locs.lookup(WantName);
              if (Want == T.Loc && WantOff == T.Offset)
                Allowed = true;
            }
            Ok &= Allowed;
          }
        }
        break;
      }
      }
      if (!Ok)
        localViolation(Id, SafetyKind::Postcondition,
                       "location '" + Ctx.Locs.loc(Leaf).Name +
                           "' does not satisfy the policy's " +
                           "postcondition state on return (is " +
                           S.str(&Ctx.Locs) + ")");
    }
  }
}

void Annotator::visitNode(NodeId Id) {
  const AbstractStore &In = in(Id);
  if (In.isTop())
    return; // Unreachable.
  Result.Assertions[Id] = buildAssertions(Id, In);

  const CfgNode &Node = Ctx.Graph.node(Id);
  if (Node.Kind == NodeKind::Exit) {
    checkPostcondition(Id);
    return;
  }
  if (Node.Kind == NodeKind::TrustedCall) {
    checkTrustedCall(Id);
    return;
  }
  if (Node.Kind != NodeKind::Normal)
    return;
  const Instruction &Inst = Ctx.Graph.inst(Id);
  switch (Inst.Op) {
  case Opcode::ADD:
  case Opcode::SUB:
  case Opcode::ADDCC:
  case Opcode::SUBCC:
    checkArithmetic(Id, Inst);
    break;
  case Opcode::AND:
  case Opcode::ANDN:
  case Opcode::ANDCC:
  case Opcode::OR:
  case Opcode::ORN:
  case Opcode::ORCC:
  case Opcode::XOR:
  case Opcode::XNOR:
  case Opcode::XORCC:
  case Opcode::SLL:
  case Opcode::SRL:
  case Opcode::SRA:
  case Opcode::UMUL:
  case Opcode::SMUL:
  case Opcode::UDIV:
  case Opcode::SDIV: {
    int32_t Depth = Node.WindowDepth;
    // mov (or %g0, X, rd) only uses its real operand.
    if (!Inst.Rs1.isZero())
      checkOperable(Id, In.reg(Depth, Inst.Rs1), "the first operand");
    if (!Inst.UsesImm && !Inst.Rs2.isZero())
      checkOperable(Id, In.reg(Depth, Inst.Rs2), "the second operand");
    if (Inst.Op == Opcode::UDIV || Inst.Op == Opcode::SDIV) {
      // Division by zero is a machine trap: require a nonzero divisor.
      LinearExpr Divisor = Inst.UsesImm
                               ? LinearExpr::constant(Inst.Imm)
                               : regExpr(Depth, Inst.Rs2);
      addObligation(Id, SafetyKind::ArrayBounds,
                    Formula::negate(
                        Formula::atom(Constraint::eq(Divisor))),
                    "divisor must be nonzero");
    }
    break;
  }
  case Opcode::LD:
  case Opcode::LDSB:
  case Opcode::LDSH:
  case Opcode::LDUB:
  case Opcode::LDUH:
  case Opcode::ST:
  case Opcode::STB:
  case Opcode::STH:
    checkMemory(Id, Inst);
    break;
  default:
    if (isBranch(Inst.Op))
      checkBranch(Id, Inst);
    break;
  }
}

AnnotationResult Annotator::run() {
  Result.Assertions.assign(Ctx.Graph.size(), Formula::mkTrue());
  for (NodeId Id = 0; Id < Ctx.Graph.size(); ++Id) {
    // On a governor trip the annotation (and its obligation list) is
    // incomplete; SafetyChecker sees the exhausted governor and skips
    // global verification rather than certifying a partial set.
    if (Ctx.Governor && !Ctx.Governor->poll("annotation/node"))
      break;
    visitNode(Id);
  }
  return std::move(Result);
}

} // namespace

AnnotationResult
checker::annotateAndVerifyLocal(const CheckContext &Ctx,
                                const PropagationResult &Prop) {
  Annotator A(Ctx, Prop);
  return A.run();
}
