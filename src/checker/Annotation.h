//===- Annotation.h - Phases 3 & 4: safety predicates -----------*- C++ -*-===//
//
// Part of mcsafe, a reproduction of "Safety Checking of Machine Code"
// (Xu, Miller, Reps; PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Phase 3 traverses the untrusted code and attaches to each instruction
/// (i) assertions — facts derivable from the typestate results, (ii)
/// local safety preconditions — checkable from typestates alone, and
/// (iii) global safety preconditions — linear formulas handed to the
/// global-verification phase (paper Figure 3 / Table 2).
///
/// Phase 4 (local verification) evaluates the local preconditions and
/// reports violations. The paper reports a single combined time for
/// phases 3+4 (Figure 9's "Annotation + Local Verification"), and they
/// are one pass here as well.
///
//===----------------------------------------------------------------------===//

#ifndef MCSAFE_CHECKER_ANNOTATION_H
#define MCSAFE_CHECKER_ANNOTATION_H

#include "checker/CheckContext.h"
#include "checker/Propagation.h"

#include <string>
#include <vector>

namespace mcsafe {
namespace checker {

/// One global safety precondition: \p Q must hold whenever control
/// reaches \p Node.
struct GlobalObligation {
  cfg::NodeId Node = cfg::InvalidNode;
  SafetyKind Kind = SafetyKind::None;
  FormulaRef Q;
  std::string Description;
};

/// Output of phases 3 and 4.
struct AnnotationResult {
  /// Global safety preconditions, for phase 5.
  std::vector<GlobalObligation> Obligations;
  /// Per-node assertion formula (facts from typestates): indexed by
  /// NodeId. Used both to discharge obligations quickly and as
  /// hypotheses during global verification.
  std::vector<FormulaRef> Assertions;
  /// Number of local precondition checks evaluated.
  uint64_t LocalChecks = 0;
  /// Number of local checks that failed (also reported as diagnostics).
  uint64_t LocalViolations = 0;
};

/// Runs phases 3 and 4. Local violations are reported into
/// Ctx.Diags; global obligations are returned for phase 5.
AnnotationResult annotateAndVerifyLocal(const CheckContext &Ctx,
                                        const PropagationResult &Prop);

} // namespace checker
} // namespace mcsafe

#endif // MCSAFE_CHECKER_ANNOTATION_H
