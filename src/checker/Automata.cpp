//===- Automata.cpp -------------------------------------------------------===//

#include "checker/Automata.h"

#include <deque>
#include <set>
#include <vector>

using namespace mcsafe;
using namespace mcsafe::checker;
using mcsafe::cfg::CfgEdge;
using mcsafe::cfg::CfgNode;
using mcsafe::cfg::NodeId;
using mcsafe::cfg::NodeKind;
using mcsafe::policy::Policy;

namespace {

/// Checks one automaton. State sets are bitmasks (automata are small).
unsigned checkOne(const CheckContext &Ctx, const Policy::Automaton &A) {
  if (A.States.size() > 64) {
    Ctx.Diags->report(DiagSeverity::Warning, SafetyKind::Protocol,
                      "automaton '" + A.Name +
                          "' has too many states; not checked");
    return 0;
  }
  unsigned Violations = 0;
  const uint64_t NoStates = 0;
  std::vector<uint64_t> In(Ctx.Graph.size(), NoStates);
  std::vector<bool> Reported(Ctx.Graph.size(), false);

  auto Transfer = [&](NodeId Id, uint64_t States) -> uint64_t {
    const CfgNode &N = Ctx.Graph.node(Id);
    if (N.Kind != NodeKind::TrustedCall || !A.observes(N.TrustedCallee))
      return States;
    uint64_t Out = 0;
    uint64_t Stuck = 0;
    for (uint32_t S = 0; S < A.States.size(); ++S) {
      if (!(States & (uint64_t(1) << S)))
        continue;
      bool Moved = false;
      for (const Policy::Automaton::Transition &T : A.Transitions) {
        if (T.From == S && T.Event == N.TrustedCallee) {
          Out |= uint64_t(1) << T.To;
          Moved = true;
        }
      }
      if (!Moved)
        Stuck |= uint64_t(1) << S;
    }
    if (Stuck && !Reported[Id]) {
      Reported[Id] = true;
      ++Violations;
      std::string StuckNames;
      for (uint32_t S = 0; S < A.States.size(); ++S)
        if (Stuck & (uint64_t(1) << S))
          StuckNames += (StuckNames.empty() ? "" : ", ") + A.States[S];
      Ctx.Diags->report(
          DiagSeverity::Violation, SafetyKind::Protocol,
          "automaton '" + A.Name + "': no transition on '" +
              N.TrustedCallee + "' from state(s) " + StuckNames,
          Id, Ctx.Graph.sourceLine(Id));
    }
    return Out;
  };

  // Worklist union-dataflow from the entry in the start state. In[] only
  // grows, so this terminates; nodes are re-pushed when a successor's
  // input grows.
  std::deque<NodeId> Worklist;
  In[Ctx.Graph.entry()] = uint64_t(1) << A.Start;
  Worklist.push_back(Ctx.Graph.entry());
  while (!Worklist.empty()) {
    NodeId Id = Worklist.front();
    Worklist.pop_front();
    uint64_t Out = Transfer(Id, In[Id]);
    for (const CfgEdge &E : Ctx.Graph.node(Id).Succs) {
      uint64_t Merged = In[E.To] | Out;
      if (Merged != In[E.To]) {
        In[E.To] = Merged;
        Worklist.push_back(E.To);
      }
    }
  }

  // Final-state check at the program exit.
  if (!A.Final.empty()) {
    uint64_t Allowed = 0;
    for (uint32_t S : A.Final)
      Allowed |= uint64_t(1) << S;
    uint64_t AtExit = In[Ctx.Graph.exit()];
    uint64_t Bad = AtExit & ~Allowed;
    if (Bad) {
      ++Violations;
      std::string BadNames;
      for (uint32_t S = 0; S < A.States.size(); ++S)
        if (Bad & (uint64_t(1) << S))
          BadNames += (BadNames.empty() ? "" : ", ") + A.States[S];
      Ctx.Diags->report(DiagSeverity::Violation, SafetyKind::Protocol,
                        "automaton '" + A.Name +
                            "': control may return to the host in "
                            "non-final state(s) " +
                            BadNames);
    }
  }
  return Violations;
}

} // namespace

unsigned checker::checkAutomata(const CheckContext &Ctx) {
  unsigned Violations = 0;
  for (const Policy::Automaton &A : Ctx.Pol->Automata)
    Violations += checkOne(Ctx, A);
  return Violations;
}
