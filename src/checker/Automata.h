//===- Automata.h - Security-automaton checking -----------------*- C++ -*-===//
//
// Part of mcsafe, a reproduction of "Safety Checking of Machine Code"
// (Xu, Miller, Reps; PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The security-automaton extension the paper sketches in Section 1:
/// "Typestates can be related to security automata... It is possible to
/// design a typestate system that captures the possible states of a
/// security automaton... Typestate checking provides a method,
/// therefore, for statically assessing whether a security violation
/// might be possible."
///
/// Each policy automaton observes the trusted-call events of its
/// alphabet. A forward dataflow over the normalized CFG tracks the set
/// of automaton states possible at each point (meet = union); a trusted
/// call for which some possible state has no transition is a protocol
/// violation, as is returning to the host outside the automaton's final
/// states.
///
//===----------------------------------------------------------------------===//

#ifndef MCSAFE_CHECKER_AUTOMATA_H
#define MCSAFE_CHECKER_AUTOMATA_H

#include "checker/CheckContext.h"

#include <cstdint>

namespace mcsafe {
namespace checker {

/// Checks every automaton of the policy; reports Protocol violations
/// into Ctx.Diags. Returns the number of violations found.
unsigned checkAutomata(const CheckContext &Ctx);

} // namespace checker
} // namespace mcsafe

#endif // MCSAFE_CHECKER_AUTOMATA_H
