//===- CertStore.cpp ------------------------------------------------------===//

#include "checker/CertStore.h"

#include "checker/ReportCodec.h"
#include "constraints/Serialize.h"
#include "support/Digest.h"
#include "support/FaultInjection.h"
#include "support/Io.h"
#include "support/Metrics.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fcntl.h>
#include <filesystem>
#include <sstream>
#include <unistd.h>

using namespace mcsafe;
using namespace mcsafe::checker;

//===----------------------------------------------------------------------===//
// Canonical configuration
//===----------------------------------------------------------------------===//

std::string checker::canonicalCheckConfig(const SafetyChecker::Options &O) {
  // Every option that can change a verdict or a report byte, rendered
  // key=value in a fixed order. The string is byte-compared on load, so
  // formatting here IS the compatibility contract: changing it (or what
  // feeds it) requires bumping CertStore::FormatVersion.
  std::ostringstream OS;
  OS << "lint=" << O.Lint << ";lint_reject=" << O.LintReject
     << ";known_bits=" << O.KnownBits
     << ";prune_dead_regs=" << O.PruneDeadRegs
     << ";fail_soft=" << O.FailSoft;
  const GlobalVerifyOptions &G = O.Global;
  OS << ";g.max_iterations=" << G.MaxIterations
     << ";g.generalization=" << G.UseGeneralization
     << ";g.disjunct_trial=" << G.UseDisjunctTrial
     << ";g.simplify_junctions=" << G.SimplifyAtJunctions
     << ";g.reuse_invariants=" << G.ReuseInvariants
     << ";g.certify_invariants=" << G.CertifyInvariants
     << ";g.max_formula_size=" << G.MaxFormulaSize
     << ";g.fail_soft=" << G.FailSoft;
  const Prover::Options &P = O.ProverOpts;
  OS << ";p.dnf_max_disjuncts=" << P.DnfMaxDisjuncts
     << ";p.dnf_max_atoms=" << P.DnfMaxAtoms
     << ";p.omega_max_steps=" << P.Omega.MaxSteps
     << ";p.omega_max_ndiv_modulus=" << P.Omega.MaxNdivModulus
     << ";p.enable_cache=" << P.EnableCache
     << ";p.enable_tiers=" << P.EnableTiers
     << ";p.enable_congruence=" << P.EnableCongruence;
  // P.EnableSlicing is deliberately NOT part of the key: slicing is an
  // exact decomposition (agreeing with the unsliced solver on every
  // definite answer), so certificates written with either configuration
  // revalidate under the other — the Unsat witnesses are re-discharged
  // through the reading prover's own entry point either way (see
  // revalidateCertificate).
  const support::GovernorLimits &L = O.Limits;
  // Wall-clock deadlines make outcomes timing-dependent; such runs are
  // never certified (they carry ResourceExhausted failures when the
  // deadline fires, and DeadlineMs is still part of the key so limited
  // and unlimited runs never share certificates).
  OS << ";l.deadline_ms=" << L.DeadlineMs
     << ";l.prover_steps=" << L.ProverSteps
     << ";l.memory_bytes=" << L.MemoryBytes
     << ";l.external_governor=" << (O.Governor != nullptr);
  return OS.str();
}

//===----------------------------------------------------------------------===//
// Certificate payload serialization
//===----------------------------------------------------------------------===//

namespace {

constexpr char Magic[4] = {'M', 'C', 'R', 'T'};

std::string serializePayload(const Certificate &Cert) {
  ByteWriter W;
  W.str(Cert.Asm);
  W.str(Cert.Policy);
  W.str(Cert.Config);
  serializeCheckReport(W, Cert.Report);

  // One shared pool for every formula the certificate mentions; pool
  // indices are assigned before the pool is emitted.
  FormulaPoolWriter Pool;
  struct InvIx {
    uint32_t Qh, Linv;
  };
  std::vector<InvIx> InvIxs;
  InvIxs.reserve(Cert.Invariants.size());
  for (const SynthesizedInvariant &Inv : Cert.Invariants)
    InvIxs.push_back({Pool.add(Inv.Qh), Pool.add(Inv.Linv)});
  std::vector<uint32_t> WitIxs;
  WitIxs.reserve(Cert.Witnesses.size());
  for (const QueryRecord &Q : Cert.Witnesses)
    WitIxs.push_back(Pool.add(Q.F));
  Pool.writeTo(W);

  W.u32(static_cast<uint32_t>(Cert.Invariants.size()));
  for (size_t I = 0; I < Cert.Invariants.size(); ++I) {
    const SynthesizedInvariant &Inv = Cert.Invariants[I];
    W.i64(Inv.LoopIdx);
    W.u32(InvIxs[I].Qh);
    W.u32(InvIxs[I].Linv);
    W.u8(Inv.EntryEstablished ? 1 : 0);
  }

  W.u32(static_cast<uint32_t>(Cert.Witnesses.size()));
  for (size_t I = 0; I < Cert.Witnesses.size(); ++I) {
    const QueryRecord &Q = Cert.Witnesses[I];
    W.u32(WitIxs[I]);
    W.u64(Q.Budget.DnfMaxDisjuncts);
    W.u64(Q.Budget.DnfMaxAtoms);
    W.u64(Q.Budget.OmegaMaxSteps);
    W.i64(Q.Budget.OmegaMaxNdivModulus);
    W.u64(Q.Budget.SolverTiers);
    W.u64(Q.Budget.SolverSlicing);
    W.u8(static_cast<uint8_t>(Q.Outcome.Result));
    W.u8(Q.Outcome.ApproximatedForall ? 1 : 0);
  }
  return W.take();
}

bool parsePayload(std::string_view Payload, Certificate &Out) {
  ByteReader R(Payload);
  Out.Asm = std::string(R.str());
  Out.Policy = std::string(R.str());
  Out.Config = std::string(R.str());
  if (!R.ok() || !deserializeCheckReport(R, Out.Report))
    return false;

  // Formula re-interning touches the variable pool; suspending any
  // active VarNamespace keeps a check's deterministic fresh-name
  // sequence independent of whether its certificate loaded.
  VarScopeSuspend NoScope;
  std::optional<std::vector<FormulaRef>> Pool = loadFormulaPool(R);
  if (!Pool)
    return false;

  uint32_t NInvariants = R.u32();
  if (!R.ok() || NInvariants > R.remaining() / 17)
    return false;
  Out.Invariants.reserve(NInvariants);
  for (uint32_t I = 0; I < NInvariants; ++I) {
    int64_t LoopIdx = R.i64();
    uint32_t QhIx = R.u32();
    uint32_t LinvIx = R.u32();
    uint8_t Entry = R.u8();
    if (!R.ok() || LoopIdx < INT32_MIN || LoopIdx > INT32_MAX ||
        QhIx >= Pool->size() || LinvIx >= Pool->size() || Entry > 1)
      return false;
    Out.Invariants.push_back({static_cast<int32_t>(LoopIdx), (*Pool)[QhIx],
                              (*Pool)[LinvIx], Entry != 0});
  }

  uint32_t NWitnesses = R.u32();
  if (!R.ok() || NWitnesses > R.remaining() / 54)
    return false;
  Out.Witnesses.reserve(NWitnesses);
  for (uint32_t I = 0; I < NWitnesses; ++I) {
    QueryRecord Q;
    uint32_t FIx = R.u32();
    Q.Budget.DnfMaxDisjuncts = R.u64();
    Q.Budget.DnfMaxAtoms = R.u64();
    Q.Budget.OmegaMaxSteps = R.u64();
    Q.Budget.OmegaMaxNdivModulus = R.i64();
    Q.Budget.SolverTiers = R.u64();
    Q.Budget.SolverSlicing = R.u64();
    uint8_t Result = R.u8();
    uint8_t Approx = R.u8();
    if (!R.ok() || FIx >= Pool->size() ||
        Result > static_cast<uint8_t>(SatResult::Unknown) || Approx > 1 ||
        Q.Budget.SolverSlicing > QueryBudget::SlicingComponent)
      return false;
    Q.F = (*Pool)[FIx];
    Q.Outcome.Result = static_cast<SatResult>(Result);
    Q.Outcome.ApproximatedForall = Approx != 0;
    Out.Witnesses.push_back(Q);
  }
  // Trailing garbage is as suspect as truncation.
  return R.atEnd();
}

} // namespace

//===----------------------------------------------------------------------===//
// Revalidation
//===----------------------------------------------------------------------===//

bool checker::revalidateCertificate(const Certificate &Cert,
                                    const SafetyChecker::Options &Opts) {
  // The revalidation prover mirrors the cold phase-5 prover exactly
  // (including the congruence/known-bits coupling) but never charges a
  // governor: warm validation must not perturb shared step budgets.
  Prover::Options PO = Opts.ProverOpts;
  PO.EnableCongruence = PO.EnableCongruence && Opts.KnownBits;
  PO.Governor = nullptr;
  PO.Omega.Governor = nullptr;
  Prover P(PO, Opts.SharedProverCache);
  const QueryBudget Current = P.budget();
  for (const QueryRecord &W : Cert.Witnesses) {
    // A budget drift that somehow escaped the config byte-compare makes
    // the witnesses incomparable with what this prover would compute.
    // The slicing field alone is normalized out of the comparison:
    // slicing is a decomposition strategy, not a resource budget, and it
    // is deliberately absent from the canonical config so certificates
    // revalidate across slicing configurations. That stays sound because
    // the Unsat witnesses — the only ones a verdict rests on — are
    // re-discharged below through this prover's own entry point, never
    // trusted from the writing configuration; a sliced (or unsliced)
    // prover that cannot confirm an Unsat fails revalidation and the
    // caller re-checks cold.
    QueryBudget Written = W.Budget;
    Written.SolverSlicing = Current.SolverSlicing;
    if (!(Written == Current))
      return false;
    // Only the Unsat witnesses support the verdict: an Unsat answer is
    // what proves a verification condition (checkValid proves F by
    // refuting not(F)). Sat/Unknown outcomes only ever weakened the cold
    // run's claims, so accepting them unchecked stays fail-sound.
    if (W.Outcome.Result != SatResult::Unsat)
      continue;
    if (P.checkSat(W.F) != SatResult::Unsat)
      return false;
  }
  return true;
}

//===----------------------------------------------------------------------===//
// The store
//===----------------------------------------------------------------------===//

CertStore::CertStore(std::string Dir) : Dir(std::move(Dir)) {
  std::error_code Ec;
  std::filesystem::create_directories(this->Dir, Ec);
  // Failure is deferred: loads miss, saves count WriteFailures.
}

uint64_t CertStore::procedureKey(std::string_view Asm,
                                 std::string_view Policy,
                                 std::string_view Config) {
  support::Digest D;
  D.add(FormatVersion);
  D.add(support::digestBytes(Asm));
  D.add(support::digestBytes(Policy));
  D.add(support::digestBytes(Config));
  return D.value();
}

std::string CertStore::pathFor(uint64_t Key) const {
  char Name[32];
  std::snprintf(Name, sizeof(Name), "%016llx.mcert",
                static_cast<unsigned long long>(Key));
  return Dir + "/" + Name;
}

CertStore::LoadOutcome CertStore::load(uint64_t Key, std::string_view Asm,
                                       std::string_view Policy,
                                       std::string_view Config,
                                       Certificate &Out) {
  const std::string Path = pathFor(Key);
  std::string Bytes;
  {
    // EINTR-retrying reads: a signal landing mid-read in a daemon must
    // not masquerade as a missing or corrupt certificate.
    std::string ReadError;
    support::ReadFileError Kind = support::ReadFileError::None;
    std::optional<std::string> Data =
        support::readWholeFile(Path, ReadError, &Kind);
    if ((!Data && Kind == support::ReadFileError::CannotOpen) ||
        support::faultPoint("cert/open")) {
      Misses.fetch_add(1, std::memory_order_relaxed);
      return LoadOutcome::Miss;
    }
    // A read error or an empty file is a damaged entry, not a miss.
    if (!Data || support::faultPoint("cert/read")) {
      CorruptCount.fetch_add(1, std::memory_order_relaxed);
      return LoadOutcome::Corrupt;
    }
    Bytes = std::move(*Data);
  }

  auto Corrupt = [&] {
    CorruptCount.fetch_add(1, std::memory_order_relaxed);
    return LoadOutcome::Corrupt;
  };

  ByteReader R(Bytes);
  char FileMagic[4] = {};
  for (char &B : FileMagic)
    B = static_cast<char>(R.u8());
  if (!R.ok() || !std::equal(FileMagic, FileMagic + 4, Magic))
    return Corrupt();
  if (R.u32() != FormatVersion || !R.ok())
    return Corrupt();
  uint64_t FileKey = R.u64();
  uint64_t PayloadDigest = R.u64();
  uint32_t PayloadSize = R.u32();
  if (!R.ok() || FileKey != Key || PayloadSize != R.remaining())
    return Corrupt();
  std::string_view Payload(Bytes.data() + R.position(), PayloadSize);
  if (support::digestBytes(Payload) != PayloadDigest)
    return Corrupt();
  if (!parsePayload(Payload, Out))
    return Corrupt();

  // The key is a digest; byte-comparing the stored inputs against what
  // the caller is actually checking removes the collision risk entirely.
  if (Out.Asm != Asm || Out.Policy != Policy || Out.Config != Config) {
    StaleCount.fetch_add(1, std::memory_order_relaxed);
    return LoadOutcome::Stale;
  }
  Hits.fetch_add(1, std::memory_order_relaxed);
  return LoadOutcome::Hit;
}

bool CertStore::save(uint64_t Key, const Certificate &Cert) {
  const std::string Payload = serializePayload(Cert);
  ByteWriter W;
  for (char B : Magic)
    W.u8(static_cast<uint8_t>(B));
  W.u32(FormatVersion);
  W.u64(Key);
  W.u64(support::digestBytes(Payload));
  W.u32(static_cast<uint32_t>(Payload.size()));
  W.raw(Payload);

  auto Failed = [&] {
    WriteFailures.fetch_add(1, std::memory_order_relaxed);
    return false;
  };

  // Atomic publish: fully write a temporary, then rename over the final
  // path. The temp name must be unique per writer: two daemon requests
  // certifying the same procedure race on the same key, and a shared
  // key-derived temp name would interleave their writes (corrupting the
  // bytes) and let one rename fail on the other's ENOENT. A process-wide
  // counter plus the pid keeps every writer — threads in one daemon,
  // concurrent batch processes — on its own file.
  static std::atomic<uint64_t> TmpSerial{0};
  const std::string Path = pathFor(Key);
  char Suffix[64];
  std::snprintf(Suffix, sizeof(Suffix), ".tmp.%ld.%llu",
                static_cast<long>(::getpid()),
                static_cast<unsigned long long>(
                    TmpSerial.fetch_add(1, std::memory_order_relaxed)));
  const std::string Tmp = Path + Suffix;
  if (support::faultPoint("cert/write"))
    return Failed();
  {
    int Fd = static_cast<int>(support::retryEintr([&] {
      return ::open(Tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    }));
    if (Fd < 0)
      return Failed();
    // writeAllFd retries EINTR and short writes; anything else is a real
    // I/O failure and the temp file is discarded.
    bool Ok = support::writeAllFd(Fd, W.bytes());
    support::closeFd(Fd);
    if (!Ok) {
      std::remove(Tmp.c_str());
      return Failed();
    }
  }
  if (std::rename(Tmp.c_str(), Path.c_str()) != 0) {
    std::remove(Tmp.c_str());
    return Failed();
  }
  Writes.fetch_add(1, std::memory_order_relaxed);
  return true;
}

CertStore::Stats CertStore::stats() const {
  Stats S;
  S.Hits = Hits.load(std::memory_order_relaxed);
  S.Misses = Misses.load(std::memory_order_relaxed);
  S.Stale = StaleCount.load(std::memory_order_relaxed);
  S.Corrupt = CorruptCount.load(std::memory_order_relaxed);
  S.RevalidateFailed = RevalidateFailed.load(std::memory_order_relaxed);
  S.Writes = Writes.load(std::memory_order_relaxed);
  S.WriteFailures = WriteFailures.load(std::memory_order_relaxed);
  return S;
}

void CertStore::publish(support::MetricsRegistry &Reg) const {
  Stats S = stats();
  Reg.counter("cert/store/hits").inc(S.Hits);
  Reg.counter("cert/store/misses").inc(S.Misses);
  Reg.counter("cert/store/stale").inc(S.Stale);
  Reg.counter("cert/store/corrupt").inc(S.Corrupt);
  Reg.counter("cert/store/revalidate_failed").inc(S.RevalidateFailed);
  Reg.counter("cert/store/writes").inc(S.Writes);
  Reg.counter("cert/store/write_failures").inc(S.WriteFailures);
}
