//===- CertStore.cpp ------------------------------------------------------===//

#include "checker/CertStore.h"

#include "constraints/Serialize.h"
#include "support/Digest.h"
#include "support/FaultInjection.h"
#include "support/Metrics.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

using namespace mcsafe;
using namespace mcsafe::checker;

//===----------------------------------------------------------------------===//
// Canonical configuration
//===----------------------------------------------------------------------===//

std::string checker::canonicalCheckConfig(const SafetyChecker::Options &O) {
  // Every option that can change a verdict or a report byte, rendered
  // key=value in a fixed order. The string is byte-compared on load, so
  // formatting here IS the compatibility contract: changing it (or what
  // feeds it) requires bumping CertStore::FormatVersion.
  std::ostringstream OS;
  OS << "lint=" << O.Lint << ";lint_reject=" << O.LintReject
     << ";known_bits=" << O.KnownBits
     << ";prune_dead_regs=" << O.PruneDeadRegs
     << ";fail_soft=" << O.FailSoft;
  const GlobalVerifyOptions &G = O.Global;
  OS << ";g.max_iterations=" << G.MaxIterations
     << ";g.generalization=" << G.UseGeneralization
     << ";g.disjunct_trial=" << G.UseDisjunctTrial
     << ";g.simplify_junctions=" << G.SimplifyAtJunctions
     << ";g.reuse_invariants=" << G.ReuseInvariants
     << ";g.certify_invariants=" << G.CertifyInvariants
     << ";g.max_formula_size=" << G.MaxFormulaSize
     << ";g.fail_soft=" << G.FailSoft;
  const Prover::Options &P = O.ProverOpts;
  OS << ";p.dnf_max_disjuncts=" << P.DnfMaxDisjuncts
     << ";p.dnf_max_atoms=" << P.DnfMaxAtoms
     << ";p.omega_max_steps=" << P.Omega.MaxSteps
     << ";p.omega_max_ndiv_modulus=" << P.Omega.MaxNdivModulus
     << ";p.enable_cache=" << P.EnableCache
     << ";p.enable_tiers=" << P.EnableTiers
     << ";p.enable_congruence=" << P.EnableCongruence;
  const support::GovernorLimits &L = O.Limits;
  // Wall-clock deadlines make outcomes timing-dependent; such runs are
  // never certified (they carry ResourceExhausted failures when the
  // deadline fires, and DeadlineMs is still part of the key so limited
  // and unlimited runs never share certificates).
  OS << ";l.deadline_ms=" << L.DeadlineMs
     << ";l.prover_steps=" << L.ProverSteps
     << ";l.memory_bytes=" << L.MemoryBytes
     << ";l.external_governor=" << (O.Governor != nullptr);
  return OS.str();
}

//===----------------------------------------------------------------------===//
// Certificate payload serialization
//===----------------------------------------------------------------------===//

namespace {

constexpr char Magic[4] = {'M', 'C', 'R', 'T'};

void writeOpt32(ByteWriter &W, const std::optional<uint32_t> &V) {
  W.u8(V ? 1 : 0);
  W.u32(V ? *V : 0);
}

std::optional<uint32_t> readOpt32(ByteReader &R) {
  uint8_t Has = R.u8();
  uint32_t V = R.u32();
  if (Has > 1)
    R.fail();
  return Has == 1 ? std::optional<uint32_t>(V) : std::nullopt;
}

void writeReport(ByteWriter &W, const CheckReport &Rep) {
  W.u8(Rep.InputsOk ? 1 : 0);
  W.u8(Rep.Safe ? 1 : 0);
  W.u8(static_cast<uint8_t>(Rep.Verdict));
  W.u8(Rep.LintRejected ? 1 : 0);

  W.u32(static_cast<uint32_t>(Rep.Failures.size()));
  for (const CheckFailure &F : Rep.Failures) {
    W.u8(static_cast<uint8_t>(F.Phase));
    W.u8(static_cast<uint8_t>(F.Kind));
    writeOpt32(W, F.Pc);
    W.str(F.Detail);
  }

  const std::vector<Diagnostic> &Diags = Rep.Diags.diagnostics();
  W.u32(static_cast<uint32_t>(Diags.size()));
  for (const Diagnostic &D : Diags) {
    W.u8(static_cast<uint8_t>(D.Severity));
    W.u8(static_cast<uint8_t>(D.Kind));
    writeOpt32(W, D.InstIndex);
    writeOpt32(W, D.SourceLine);
    W.str(D.Message);
  }

  const ProgramCharacteristics &C = Rep.Chars;
  W.u32(C.Instructions);
  W.u32(C.Branches);
  W.u32(C.Loops);
  W.u32(C.InnerLoops);
  W.u32(C.Calls);
  W.u32(C.TrustedCalls);
  W.u64(C.GlobalConditions);
  W.u32(C.LintUninitUses);
  W.u32(C.DeadRegWrites);
  W.u32(C.MisalignedAccesses);
  W.i64(C.MaxStackDelta);
  W.u8(C.StackDeltaBounded ? 1 : 0);

  W.u64(Rep.TypestateNodeVisits);
  W.u64(Rep.LocalChecks);
  W.u64(Rep.LocalViolations);

  const GlobalVerifyStats &G = Rep.Global;
  W.u64(G.ObligationsProved);
  W.u64(G.ObligationsFailed);
  W.u64(G.ObligationsUnknown);
  W.u64(G.QuickDischarges);
  W.u64(G.InvariantsSynthesized);
  W.u64(G.InvariantReuses);
  W.u64(G.IterationsRun);
  W.u64(G.GeneralizationsTried);
  W.u64(G.SpeculativeQueries);

  const Prover::Stats &P = Rep.ProverStats;
  W.u64(P.ValidityQueries);
  W.u64(P.SatQueries);
  W.u64(P.CacheHits);
  W.u64(P.CacheEvictions);
  W.u64(P.BudgetExhaustions);
  W.u64(P.Tiers.CongruenceHits);
  W.u64(P.Tiers.CongruenceMisses);
  W.u64(P.Tiers.IntervalHits);
  W.u64(P.Tiers.IntervalMisses);
  W.u64(P.Tiers.DbmHits);
  W.u64(P.Tiers.DbmMisses);
  W.u64(P.Tiers.OmegaHits);
  W.u64(P.Tiers.OmegaMisses);

  const OmegaTest::Stats &Om = Rep.OmegaStats;
  W.u64(Om.Calls);
  W.u64(Om.EqEliminations);
  W.u64(Om.IneqEliminations);
  W.u64(Om.DarkShadowHits);
  W.u64(Om.Splinters);
}

bool readReport(ByteReader &R, CheckReport &Rep) {
  Rep.InputsOk = R.u8() != 0;
  Rep.Safe = R.u8() != 0;
  uint8_t RawVerdict = R.u8();
  if (RawVerdict > static_cast<uint8_t>(CheckVerdict::InternalError))
    return false;
  Rep.Verdict = static_cast<CheckVerdict>(RawVerdict);
  Rep.LintRejected = R.u8() != 0;

  uint32_t NFailures = R.u32();
  if (!R.ok() || NFailures > R.remaining() / 10)
    return false;
  Rep.Failures.reserve(NFailures);
  for (uint32_t I = 0; I < NFailures; ++I) {
    uint8_t Phase = R.u8();
    uint8_t Kind = R.u8();
    std::optional<uint32_t> Pc = readOpt32(R);
    std::string_view Detail = R.str();
    if (!R.ok() || Phase > static_cast<uint8_t>(CheckPhase::Driver) ||
        Kind > static_cast<uint8_t>(FailureKind::InternalError))
      return false;
    Rep.Failures.push_back({static_cast<CheckPhase>(Phase),
                            static_cast<FailureKind>(Kind), Pc,
                            std::string(Detail)});
  }

  uint32_t NDiags = R.u32();
  if (!R.ok() || NDiags > R.remaining() / 16)
    return false;
  for (uint32_t I = 0; I < NDiags; ++I) {
    uint8_t Severity = R.u8();
    uint8_t Kind = R.u8();
    std::optional<uint32_t> InstIndex = readOpt32(R);
    std::optional<uint32_t> SourceLine = readOpt32(R);
    std::string_view Message = R.str();
    if (!R.ok() || Severity > static_cast<uint8_t>(DiagSeverity::Fatal) ||
        Kind > static_cast<uint8_t>(SafetyKind::Protocol))
      return false;
    Rep.Diags.report(static_cast<DiagSeverity>(Severity),
                     static_cast<SafetyKind>(Kind), std::string(Message),
                     InstIndex, SourceLine);
  }

  ProgramCharacteristics &C = Rep.Chars;
  C.Instructions = R.u32();
  C.Branches = R.u32();
  C.Loops = R.u32();
  C.InnerLoops = R.u32();
  C.Calls = R.u32();
  C.TrustedCalls = R.u32();
  C.GlobalConditions = R.u64();
  C.LintUninitUses = R.u32();
  C.DeadRegWrites = R.u32();
  C.MisalignedAccesses = R.u32();
  C.MaxStackDelta = R.i64();
  C.StackDeltaBounded = R.u8() != 0;

  Rep.TypestateNodeVisits = R.u64();
  Rep.LocalChecks = R.u64();
  Rep.LocalViolations = R.u64();

  GlobalVerifyStats &G = Rep.Global;
  G.ObligationsProved = R.u64();
  G.ObligationsFailed = R.u64();
  G.ObligationsUnknown = R.u64();
  G.QuickDischarges = R.u64();
  G.InvariantsSynthesized = R.u64();
  G.InvariantReuses = R.u64();
  G.IterationsRun = R.u64();
  G.GeneralizationsTried = R.u64();
  G.SpeculativeQueries = R.u64();

  Prover::Stats &P = Rep.ProverStats;
  P.ValidityQueries = R.u64();
  P.SatQueries = R.u64();
  P.CacheHits = R.u64();
  P.CacheEvictions = R.u64();
  P.BudgetExhaustions = R.u64();
  P.Tiers.CongruenceHits = R.u64();
  P.Tiers.CongruenceMisses = R.u64();
  P.Tiers.IntervalHits = R.u64();
  P.Tiers.IntervalMisses = R.u64();
  P.Tiers.DbmHits = R.u64();
  P.Tiers.DbmMisses = R.u64();
  P.Tiers.OmegaHits = R.u64();
  P.Tiers.OmegaMisses = R.u64();

  OmegaTest::Stats &Om = Rep.OmegaStats;
  Om.Calls = R.u64();
  Om.EqEliminations = R.u64();
  Om.IneqEliminations = R.u64();
  Om.DarkShadowHits = R.u64();
  Om.Splinters = R.u64();
  return R.ok();
}

std::string serializePayload(const Certificate &Cert) {
  ByteWriter W;
  W.str(Cert.Asm);
  W.str(Cert.Policy);
  W.str(Cert.Config);
  writeReport(W, Cert.Report);

  // One shared pool for every formula the certificate mentions; pool
  // indices are assigned before the pool is emitted.
  FormulaPoolWriter Pool;
  struct InvIx {
    uint32_t Qh, Linv;
  };
  std::vector<InvIx> InvIxs;
  InvIxs.reserve(Cert.Invariants.size());
  for (const SynthesizedInvariant &Inv : Cert.Invariants)
    InvIxs.push_back({Pool.add(Inv.Qh), Pool.add(Inv.Linv)});
  std::vector<uint32_t> WitIxs;
  WitIxs.reserve(Cert.Witnesses.size());
  for (const QueryRecord &Q : Cert.Witnesses)
    WitIxs.push_back(Pool.add(Q.F));
  Pool.writeTo(W);

  W.u32(static_cast<uint32_t>(Cert.Invariants.size()));
  for (size_t I = 0; I < Cert.Invariants.size(); ++I) {
    const SynthesizedInvariant &Inv = Cert.Invariants[I];
    W.i64(Inv.LoopIdx);
    W.u32(InvIxs[I].Qh);
    W.u32(InvIxs[I].Linv);
    W.u8(Inv.EntryEstablished ? 1 : 0);
  }

  W.u32(static_cast<uint32_t>(Cert.Witnesses.size()));
  for (size_t I = 0; I < Cert.Witnesses.size(); ++I) {
    const QueryRecord &Q = Cert.Witnesses[I];
    W.u32(WitIxs[I]);
    W.u64(Q.Budget.DnfMaxDisjuncts);
    W.u64(Q.Budget.DnfMaxAtoms);
    W.u64(Q.Budget.OmegaMaxSteps);
    W.i64(Q.Budget.OmegaMaxNdivModulus);
    W.u64(Q.Budget.SolverTiers);
    W.u8(static_cast<uint8_t>(Q.Outcome.Result));
    W.u8(Q.Outcome.ApproximatedForall ? 1 : 0);
  }
  return W.take();
}

bool parsePayload(std::string_view Payload, Certificate &Out) {
  ByteReader R(Payload);
  Out.Asm = std::string(R.str());
  Out.Policy = std::string(R.str());
  Out.Config = std::string(R.str());
  if (!R.ok() || !readReport(R, Out.Report))
    return false;

  // Formula re-interning touches the variable pool; suspending any
  // active VarNamespace keeps a check's deterministic fresh-name
  // sequence independent of whether its certificate loaded.
  VarScopeSuspend NoScope;
  std::optional<std::vector<FormulaRef>> Pool = loadFormulaPool(R);
  if (!Pool)
    return false;

  uint32_t NInvariants = R.u32();
  if (!R.ok() || NInvariants > R.remaining() / 17)
    return false;
  Out.Invariants.reserve(NInvariants);
  for (uint32_t I = 0; I < NInvariants; ++I) {
    int64_t LoopIdx = R.i64();
    uint32_t QhIx = R.u32();
    uint32_t LinvIx = R.u32();
    uint8_t Entry = R.u8();
    if (!R.ok() || LoopIdx < INT32_MIN || LoopIdx > INT32_MAX ||
        QhIx >= Pool->size() || LinvIx >= Pool->size() || Entry > 1)
      return false;
    Out.Invariants.push_back({static_cast<int32_t>(LoopIdx), (*Pool)[QhIx],
                              (*Pool)[LinvIx], Entry != 0});
  }

  uint32_t NWitnesses = R.u32();
  if (!R.ok() || NWitnesses > R.remaining() / 46)
    return false;
  Out.Witnesses.reserve(NWitnesses);
  for (uint32_t I = 0; I < NWitnesses; ++I) {
    QueryRecord Q;
    uint32_t FIx = R.u32();
    Q.Budget.DnfMaxDisjuncts = R.u64();
    Q.Budget.DnfMaxAtoms = R.u64();
    Q.Budget.OmegaMaxSteps = R.u64();
    Q.Budget.OmegaMaxNdivModulus = R.i64();
    Q.Budget.SolverTiers = R.u64();
    uint8_t Result = R.u8();
    uint8_t Approx = R.u8();
    if (!R.ok() || FIx >= Pool->size() ||
        Result > static_cast<uint8_t>(SatResult::Unknown) || Approx > 1)
      return false;
    Q.F = (*Pool)[FIx];
    Q.Outcome.Result = static_cast<SatResult>(Result);
    Q.Outcome.ApproximatedForall = Approx != 0;
    Out.Witnesses.push_back(Q);
  }
  // Trailing garbage is as suspect as truncation.
  return R.atEnd();
}

} // namespace

//===----------------------------------------------------------------------===//
// Revalidation
//===----------------------------------------------------------------------===//

bool checker::revalidateCertificate(const Certificate &Cert,
                                    const SafetyChecker::Options &Opts) {
  // The revalidation prover mirrors the cold phase-5 prover exactly
  // (including the congruence/known-bits coupling) but never charges a
  // governor: warm validation must not perturb shared step budgets.
  Prover::Options PO = Opts.ProverOpts;
  PO.EnableCongruence = PO.EnableCongruence && Opts.KnownBits;
  PO.Governor = nullptr;
  PO.Omega.Governor = nullptr;
  Prover P(PO, Opts.SharedProverCache);
  const QueryBudget Current = P.budget();
  for (const QueryRecord &W : Cert.Witnesses) {
    // A budget drift that somehow escaped the config byte-compare makes
    // the witnesses incomparable with what this prover would compute.
    if (!(W.Budget == Current))
      return false;
    // Only the Unsat witnesses support the verdict: an Unsat answer is
    // what proves a verification condition (checkValid proves F by
    // refuting not(F)). Sat/Unknown outcomes only ever weakened the cold
    // run's claims, so accepting them unchecked stays fail-sound.
    if (W.Outcome.Result != SatResult::Unsat)
      continue;
    if (P.checkSat(W.F) != SatResult::Unsat)
      return false;
  }
  return true;
}

//===----------------------------------------------------------------------===//
// The store
//===----------------------------------------------------------------------===//

CertStore::CertStore(std::string Dir) : Dir(std::move(Dir)) {
  std::error_code Ec;
  std::filesystem::create_directories(this->Dir, Ec);
  // Failure is deferred: loads miss, saves count WriteFailures.
}

uint64_t CertStore::procedureKey(std::string_view Asm,
                                 std::string_view Policy,
                                 std::string_view Config) {
  support::Digest D;
  D.add(FormatVersion);
  D.add(support::digestBytes(Asm));
  D.add(support::digestBytes(Policy));
  D.add(support::digestBytes(Config));
  return D.value();
}

std::string CertStore::pathFor(uint64_t Key) const {
  char Name[32];
  std::snprintf(Name, sizeof(Name), "%016llx.mcert",
                static_cast<unsigned long long>(Key));
  return Dir + "/" + Name;
}

CertStore::LoadOutcome CertStore::load(uint64_t Key, std::string_view Asm,
                                       std::string_view Policy,
                                       std::string_view Config,
                                       Certificate &Out) {
  const std::string Path = pathFor(Key);
  std::string Bytes;
  {
    std::ifstream In(Path, std::ios::binary);
    if (!In.is_open() || support::faultPoint("cert/open")) {
      Misses.fetch_add(1, std::memory_order_relaxed);
      return LoadOutcome::Miss;
    }
    std::ostringstream SS;
    SS << In.rdbuf();
    if (In.bad() || SS.fail() || support::faultPoint("cert/read")) {
      CorruptCount.fetch_add(1, std::memory_order_relaxed);
      return LoadOutcome::Corrupt;
    }
    Bytes = SS.str();
  }

  auto Corrupt = [&] {
    CorruptCount.fetch_add(1, std::memory_order_relaxed);
    return LoadOutcome::Corrupt;
  };

  ByteReader R(Bytes);
  char FileMagic[4] = {};
  for (char &B : FileMagic)
    B = static_cast<char>(R.u8());
  if (!R.ok() || !std::equal(FileMagic, FileMagic + 4, Magic))
    return Corrupt();
  if (R.u32() != FormatVersion || !R.ok())
    return Corrupt();
  uint64_t FileKey = R.u64();
  uint64_t PayloadDigest = R.u64();
  uint32_t PayloadSize = R.u32();
  if (!R.ok() || FileKey != Key || PayloadSize != R.remaining())
    return Corrupt();
  std::string_view Payload(Bytes.data() + R.position(), PayloadSize);
  if (support::digestBytes(Payload) != PayloadDigest)
    return Corrupt();
  if (!parsePayload(Payload, Out))
    return Corrupt();

  // The key is a digest; byte-comparing the stored inputs against what
  // the caller is actually checking removes the collision risk entirely.
  if (Out.Asm != Asm || Out.Policy != Policy || Out.Config != Config) {
    StaleCount.fetch_add(1, std::memory_order_relaxed);
    return LoadOutcome::Stale;
  }
  Hits.fetch_add(1, std::memory_order_relaxed);
  return LoadOutcome::Hit;
}

bool CertStore::save(uint64_t Key, const Certificate &Cert) {
  const std::string Payload = serializePayload(Cert);
  ByteWriter W;
  for (char B : Magic)
    W.u8(static_cast<uint8_t>(B));
  W.u32(FormatVersion);
  W.u64(Key);
  W.u64(support::digestBytes(Payload));
  W.u32(static_cast<uint32_t>(Payload.size()));
  W.raw(Payload);

  auto Failed = [&] {
    WriteFailures.fetch_add(1, std::memory_order_relaxed);
    return false;
  };

  // Atomic publish: fully write a temporary, then rename over the final
  // path. The temp name is key-derived, so two workers racing to store
  // the same certificate write identical bytes to the same temp file and
  // both renames succeed benignly.
  const std::string Path = pathFor(Key);
  const std::string Tmp = Path + ".tmp";
  if (support::faultPoint("cert/write"))
    return Failed();
  {
    std::ofstream OutF(Tmp, std::ios::binary | std::ios::trunc);
    if (!OutF.is_open())
      return Failed();
    OutF.write(W.bytes().data(),
               static_cast<std::streamsize>(W.bytes().size()));
    OutF.flush();
    if (!OutF.good()) {
      OutF.close();
      std::remove(Tmp.c_str());
      return Failed();
    }
  }
  if (std::rename(Tmp.c_str(), Path.c_str()) != 0) {
    std::remove(Tmp.c_str());
    return Failed();
  }
  Writes.fetch_add(1, std::memory_order_relaxed);
  return true;
}

CertStore::Stats CertStore::stats() const {
  Stats S;
  S.Hits = Hits.load(std::memory_order_relaxed);
  S.Misses = Misses.load(std::memory_order_relaxed);
  S.Stale = StaleCount.load(std::memory_order_relaxed);
  S.Corrupt = CorruptCount.load(std::memory_order_relaxed);
  S.RevalidateFailed = RevalidateFailed.load(std::memory_order_relaxed);
  S.Writes = Writes.load(std::memory_order_relaxed);
  S.WriteFailures = WriteFailures.load(std::memory_order_relaxed);
  return S;
}

void CertStore::publish(support::MetricsRegistry &Reg) const {
  Stats S = stats();
  Reg.counter("cert/store/hits").inc(S.Hits);
  Reg.counter("cert/store/misses").inc(S.Misses);
  Reg.counter("cert/store/stale").inc(S.Stale);
  Reg.counter("cert/store/corrupt").inc(S.Corrupt);
  Reg.counter("cert/store/revalidate_failed").inc(S.RevalidateFailed);
  Reg.counter("cert/store/writes").inc(S.Writes);
  Reg.counter("cert/store/write_failures").inc(S.WriteFailures);
}
