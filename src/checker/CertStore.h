//===- CertStore.h - Persistent certificate store ---------------*- C++ -*-===//
//
// Part of mcsafe, a reproduction of "Safety Checking of Machine Code"
// (Xu, Miller, Reps; PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A persistent, on-disk store of verification certificates, enabling
/// incremental re-verification: when a procedure's inputs have not
/// changed, a recheck only revalidates the stored certificate instead of
/// re-running typestate propagation, annotation, and invariant synthesis.
///
/// One certificate records everything one check produced: the inputs
/// (assembly, policy, canonical checker configuration), the complete
/// deterministic CheckReport, the loop invariants the induction-iteration
/// engine synthesized, and the prover's query transcript (formula, budget,
/// outcome per distinct sat query). Certificates are keyed by a stable
/// content digest of the inputs; files live at `<dir>/<16-hex-key>.mcert`.
///
/// Trust argument (DESIGN.md has the long form): a warm hit is accepted
/// only after (1) the header key, format version, and payload digest
/// check out, (2) the stored assembly/policy/config bytes compare equal
/// to the inputs being checked — so a digest collision can never replay
/// the wrong certificate — and (3) every Unsat witness (the queries a
/// Safe verdict rests on) is re-discharged through the trusted prover
/// under the identical budget. Since every CheckReport field is a
/// deterministic function of the inputs, the replayed report is
/// byte-identical to what a cold run would produce. Corrupt, truncated,
/// or version-mismatched files are never trusted: they count as
/// cert/store/corrupt and the caller falls back to a cold run.
///
//===----------------------------------------------------------------------===//

#ifndef MCSAFE_CHECKER_CERTSTORE_H
#define MCSAFE_CHECKER_CERTSTORE_H

#include "checker/SafetyChecker.h"

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace mcsafe {
namespace support {
class MetricsRegistry;
} // namespace support

namespace checker {

/// A verification certificate for one (assembly, policy, config) triple.
struct Certificate {
  std::string Asm;
  std::string Policy;
  std::string Config;
  /// The full deterministic report of the cold run, replayed verbatim on
  /// a validated hit.
  CheckReport Report;
  /// Loop invariants synthesized (and certified) by the cold run.
  std::vector<SynthesizedInvariant> Invariants;
  /// The prover transcript: one record per distinct sat query. The Unsat
  /// ones are the proof witnesses revalidation re-discharges.
  std::vector<QueryRecord> Witnesses;
};

/// The canonical, human-readable rendering of every checker option that
/// can change a verdict or a report byte. Part of the certificate key:
/// two runs with different configs never share certificates.
std::string canonicalCheckConfig(const SafetyChecker::Options &Opts);

/// Re-discharges a loaded certificate's Unsat witnesses through a fresh
/// prover configured from \p Opts. Returns false when any witness budget
/// differs from the current prover budget (the SolverSlicing field
/// excepted — slicing is a decomposition strategy, not a resource budget,
/// and every Unsat witness is re-discharged live through the current
/// prover's own configuration rather than trusted across them) or any
/// Unsat witness fails to re-prove — the caller must then fall back to a
/// cold run.
bool revalidateCertificate(const Certificate &Cert,
                           const SafetyChecker::Options &Opts);

/// The on-disk store. Thread-safe: ParallelCheck workers share one
/// instance; counters are atomic and writes are atomic rename()s of
/// fully-written temporaries.
class CertStore {
public:
  /// Bumped whenever the certificate byte format (or anything feeding
  /// the digests) changes; readers reject every other version.
  /// Version 2: witness budgets carry the SolverSlicing field.
  static constexpr uint32_t FormatVersion = 2;

  enum class LoadOutcome : uint8_t {
    Hit,     ///< Validated certificate loaded.
    Miss,    ///< No file for this key.
    Stale,   ///< File was for different inputs (digest collision).
    Corrupt, ///< File unreadable, truncated, tampered, or wrong version.
  };

  struct Stats {
    uint64_t Hits = 0;
    uint64_t Misses = 0;
    uint64_t Stale = 0;
    uint64_t Corrupt = 0;
    uint64_t RevalidateFailed = 0;
    uint64_t Writes = 0;
    uint64_t WriteFailures = 0;
  };

  /// Opens (creating, if needed) the store directory. Creation failures
  /// are deferred: loads simply miss and saves count WriteFailures.
  explicit CertStore(std::string Dir);

  /// The procedure key: a stable digest of the format version and the
  /// exact input bytes (assembly text, policy text — which carries the
  /// host typestate — and canonical config).
  static uint64_t procedureKey(std::string_view Asm, std::string_view Policy,
                               std::string_view Config);

  /// Loads and validates the certificate for \p Key. On Hit, \p Out
  /// holds the parsed certificate (formulas re-interned; callers see
  /// canonical FormulaRefs). Bumps the matching counter itself.
  LoadOutcome load(uint64_t Key, std::string_view Asm,
                   std::string_view Policy, std::string_view Config,
                   Certificate &Out);

  /// Serializes and atomically writes the certificate for \p Key.
  /// Returns false (and counts a WriteFailure) on any I/O error; the
  /// store never throws for I/O.
  bool save(uint64_t Key, const Certificate &Cert);

  /// Records that a loaded certificate failed revalidation (counted by
  /// the checker, which owns the revalidation step).
  void noteRevalidationFailure() {
    RevalidateFailed.fetch_add(1, std::memory_order_relaxed);
  }

  Stats stats() const;
  /// Publishes the counters as cert/store/* metrics.
  void publish(support::MetricsRegistry &Reg) const;

  const std::string &dir() const { return Dir; }
  /// The store file path for \p Key.
  std::string pathFor(uint64_t Key) const;

private:
  std::string Dir;
  std::atomic<uint64_t> Hits{0};
  std::atomic<uint64_t> Misses{0};
  std::atomic<uint64_t> StaleCount{0};
  std::atomic<uint64_t> CorruptCount{0};
  std::atomic<uint64_t> RevalidateFailed{0};
  std::atomic<uint64_t> Writes{0};
  std::atomic<uint64_t> WriteFailures{0};
};

} // namespace checker
} // namespace mcsafe

#endif // MCSAFE_CHECKER_CERTSTORE_H
