//===- CheckContext.h - Shared state of the five phases ---------*- C++ -*-===//
//
// Part of mcsafe, a reproduction of "Safety Checking of Machine Code"
// (Xu, Miller, Reps; PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Everything Phase 1 (preparation) derives from the untrusted code and
/// the host-provided specifications, shared by the later phases: the
/// normalized CFG, the abstract-location table (host locations, their
/// policy-derived permissions, and per-save-node stack frames), the
/// initial abstract store, and the entry-context formula.
///
//===----------------------------------------------------------------------===//

#ifndef MCSAFE_CHECKER_CHECKCONTEXT_H
#define MCSAFE_CHECKER_CHECKCONTEXT_H

#include "cfg/Cfg.h"
#include "cfg/Dominators.h"
#include "cfg/LoopInfo.h"
#include "checker/Failure.h"
#include "constraints/Formula.h"
#include "policy/Policy.h"
#include "typestate/AbstractStore.h"

#include <map>
#include <memory>
#include <optional>
#include <vector>

namespace mcsafe {

namespace support {
class ResourceGovernor;
} // namespace support

namespace checker {

/// The prepared checking problem.
struct CheckContext {
  const sparc::Module *M = nullptr;
  const policy::Policy *Pol = nullptr;
  DiagnosticEngine *Diags = nullptr;

  cfg::Cfg Graph;
  std::unique_ptr<cfg::DominatorTree> Dom;
  std::unique_ptr<cfg::LoopInfo> Loops;

  /// All abstract locations: declared host locations (with children for
  /// aggregates) plus one stack-frame location per annotated save node.
  typestate::LocationTable Locs;

  /// Per-save-node stack frame location (InvalidLoc when the function has
  /// no frame annotation).
  std::map<cfg::NodeId, typestate::AbsLocId> FrameLocs;

  /// The initial abstract store at the program entry (Figure 2's initial
  /// annotations).
  typestate::AbstractStore EntryStore = typestate::AbstractStore::empty();

  /// The entry-context formula: invocation equalities, the policy's
  /// linear constraints, and facts about location addresses and initial
  /// values (non-nullness, alignment, known constants).
  FormulaRef EntryContext;

  /// Value access (f/x/o) granted by the access policy to values of the
  /// typestate found in each declared location, precomputed per location.
  std::map<typestate::AbsLocId, typestate::Access> GrantedAccess;

  /// The per-check resource governor (null = unlimited). Phases poll it
  /// at loop heads and degrade to partial results when a budget trips.
  support::ResourceGovernor *Governor = nullptr;

  /// Track the known-bits domain through propagation and emit its
  /// divisibility atoms during annotation (SafetyChecker::Options's
  /// KnownBits toggle, --no-knownbits in the driver).
  bool KnownBits = true;

  /// Structured failures accumulated by the phases (owned by the
  /// CheckReport; null only in unit tests driving a phase directly).
  std::vector<CheckFailure> *Failures = nullptr;

  const typestate::AbstractLocation &loc(typestate::AbsLocId Id) const {
    return Locs.loc(Id);
  }
};

/// Phase 1: builds the CheckContext. Returns nullopt (with diagnostics)
/// on malformed inputs, irreducible control flow, recursion, or window
/// trouble.
std::optional<CheckContext> prepare(const sparc::Module &M,
                                    const policy::Policy &Pol,
                                    DiagnosticEngine &Diags);

} // namespace checker
} // namespace mcsafe

#endif // MCSAFE_CHECKER_CHECKCONTEXT_H
