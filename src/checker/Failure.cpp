//===- Failure.cpp - Structured failure taxonomy --------------------------===//

#include "checker/Failure.h"

namespace mcsafe {
namespace checker {

const char *verdictName(CheckVerdict V) {
  switch (V) {
  case CheckVerdict::Safe:
    return "SAFE";
  case CheckVerdict::Unsafe:
    return "UNSAFE";
  case CheckVerdict::Unknown:
    return "UNKNOWN";
  case CheckVerdict::MalformedInput:
    return "MALFORMED-INPUT";
  case CheckVerdict::InternalError:
    return "INTERNAL-ERROR";
  }
  return "INTERNAL-ERROR";
}

const char *checkPhaseName(CheckPhase P) {
  switch (P) {
  case CheckPhase::Input:
    return "input";
  case CheckPhase::Prepare:
    return "prepare";
  case CheckPhase::Lint:
    return "lint";
  case CheckPhase::Typestate:
    return "typestate";
  case CheckPhase::Annotation:
    return "annotation";
  case CheckPhase::Global:
    return "global";
  case CheckPhase::Driver:
    return "driver";
  }
  return "driver";
}

const char *failureKindName(FailureKind K) {
  switch (K) {
  case FailureKind::MalformedAssembly:
    return "malformed-assembly";
  case FailureKind::MalformedPolicy:
    return "malformed-policy";
  case FailureKind::UnsupportedConstruct:
    return "unsupported-construct";
  case FailureKind::ResourceExhausted:
    return "resource-exhausted";
  case FailureKind::Cancelled:
    return "cancelled";
  case FailureKind::InternalError:
    return "internal-error";
  case FailureKind::WorkerCrashed:
    return "worker-crashed";
  case FailureKind::Quarantined:
    return "quarantined";
  }
  return "internal-error";
}

int exitCode(CheckVerdict V) {
  switch (V) {
  case CheckVerdict::Safe:
    return 0;
  case CheckVerdict::Unsafe:
    return 1;
  case CheckVerdict::MalformedInput:
    return 2;
  case CheckVerdict::Unknown:
    return 3;
  case CheckVerdict::InternalError:
    return 4;
  }
  return 4;
}

std::string CheckFailure::str() const {
  std::string S = checkPhaseName(Phase);
  S += "/";
  S += failureKindName(Kind);
  if (Pc)
    S += " at #" + std::to_string(*Pc);
  S += ": ";
  S += Detail;
  return S;
}

} // namespace checker
} // namespace mcsafe
