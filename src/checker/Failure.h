//===- Failure.h - Structured failure taxonomy ------------------*- C++ -*-===//
//
// Part of mcsafe, a reproduction of "Safety Checking of Machine Code"
// (Xu, Miller, Reps; PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The structured failure taxonomy for the checking pipeline. Every way
/// a check can end short of a definitive Safe/Unsafe answer is a
/// CheckFailure recorded in the CheckReport — never an assert, an abort,
/// or an exception escaping the process boundary. The five-way
/// CheckVerdict maps one-to-one onto mcsafe-check exit codes, so a
/// trusted host embedding the checker can distinguish "proved safe"
/// from "gave up" from "your input is garbage" without parsing text.
///
//===----------------------------------------------------------------------===//

#ifndef MCSAFE_CHECKER_FAILURE_H
#define MCSAFE_CHECKER_FAILURE_H

#include <cstdint>
#include <optional>
#include <string>

namespace mcsafe {
namespace checker {

/// The overall outcome of one safety check. Ordered by "how bad":
/// anything past Unsafe means the checker could not finish the job.
enum class CheckVerdict : uint8_t {
  Safe,           ///< All conditions proved; the code honors the policy.
  Unsafe,         ///< At least one safety condition provably violated.
  Unknown,        ///< Gave up (resource budget, cancellation); fail sound.
  MalformedInput, ///< The assembly or policy failed to parse/prepare.
  InternalError,  ///< A checker bug surfaced; the result is meaningless.
};

/// Where in the pipeline a failure happened.
enum class CheckPhase : uint8_t {
  Input,      ///< Assembling / decoding / policy parsing.
  Prepare,    ///< CFG construction, location tree, entry store.
  Lint,       ///< Phase-0 dataflow lint.
  Typestate,  ///< Typestate propagation fixpoint.
  Annotation, ///< Annotation + local verification.
  Global,     ///< Global verification (induction iteration).
  Driver,     ///< Outside any phase: scheduling, report assembly.
};

/// What went wrong.
enum class FailureKind : uint8_t {
  MalformedAssembly,    ///< The untrusted binary/assembly is ill-formed.
  MalformedPolicy,      ///< The host's policy/annotation file is ill-formed.
  UnsupportedConstruct, ///< Well-formed input the checker cannot handle.
  ResourceExhausted,    ///< A governor budget tripped; partial results kept.
  Cancelled,            ///< Cooperative cancellation tripped.
  InternalError,        ///< An exception or invariant breach in the checker.
  WorkerCrashed,        ///< An isolated worker process died or hung mid-check.
  Quarantined,          ///< Input poisoned after repeatedly crashing workers.
};

/// One structured failure. Pc is the instruction index (when the failure
/// is attributable to one), not a byte address.
struct CheckFailure {
  CheckPhase Phase = CheckPhase::Driver;
  FailureKind Kind = FailureKind::InternalError;
  std::optional<uint32_t> Pc;
  std::string Detail;

  /// "phase/kind[ at #pc]: detail" — deterministic, no wall-clock.
  std::string str() const;
};

const char *verdictName(CheckVerdict V);
const char *checkPhaseName(CheckPhase P);
const char *failureKindName(FailureKind K);

/// The documented mcsafe-check exit code for a verdict:
/// Safe=0, Unsafe=1, MalformedInput=2, Unknown=3, InternalError=4.
int exitCode(CheckVerdict V);

} // namespace checker
} // namespace mcsafe

#endif // MCSAFE_CHECKER_FAILURE_H
