//===- GlobalVerify.cpp ---------------------------------------------------===//

#include "checker/GlobalVerify.h"

#include "constraints/Eliminate.h"
#include "policy/Policy.h"
#include "support/Governor.h"
#include "support/StringUtils.h"
#include "support/ThreadPool.h"
#include "support/Trace.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <unordered_set>

using namespace mcsafe;
using namespace mcsafe::checker;
using mcsafe::cfg::CfgEdge;
using mcsafe::cfg::InvalidNode;
using mcsafe::cfg::Loop;
using mcsafe::cfg::NodeId;

namespace {

/// Debug tracing, per check via GlobalVerifyOptions::DebugTrace (the
/// macro expands inside Verifier methods, where Opts is in scope). The
/// old function-local-static std::getenv latch is gone: it froze the
/// setting at first use for the process lifetime, which a resident
/// daemon could never override per request.
#define MCSAFE_TRACE_LOG(...)                                              \
  do {                                                                     \
    if (Opts.DebugTrace)                                                   \
      std::fprintf(stderr, __VA_ARGS__);                                   \
  } while (0)

/// Is a formula variable flow-varying (register value, icc, or a memory
/// location's value), as opposed to a pure symbol (policy constants,
/// location addresses)?
bool isFlowVarying(VarId V) {
  const std::string &Name = varName(V);
  if (Name == "icc")
    return true;
  if (startsWith(Name, "val:"))
    return true;
  if (startsWith(Name, "h.")) // Havoc instances.
    return true;
  if (Name.size() > 2 && Name[0] == 'w' && Name.find(".%") != std::string::npos)
    return true;
  return false;
}

/// The global-verification engine for one program.
class Verifier {
public:
  Verifier(const CheckContext &Ctx, const PropagationResult &Prop,
           const AnnotationResult &Annot, Prover &TheProver,
           const GlobalVerifyOptions &Opts)
      : Ctx(Ctx), Prop(Prop), Annot(Annot), TheProver(TheProver),
        Opts(Opts), Gov(Ctx.Governor), Wlp(Ctx, Prop) {
    Rpo = Ctx.Graph.reversePostOrder();
    RpoIndex.assign(Ctx.Graph.size(), UINT32_MAX);
    for (uint32_t I = 0; I < Rpo.size(); ++I)
      RpoIndex[Rpo[I]] = I;
    computePureFacts();
  }

  GlobalVerifyStats run();

private:
  struct SynthesisResult {
    bool Success = false;
    FormulaRef Linv; ///< Conjunction of the trial invariants.
  };

  /// Does Q hold whenever control reaches node N?
  ProverResult proveAt(NodeId N, const FormulaRef &Q);
  /// Does Qh hold at L's header on every arrival?
  ProverResult proveAtHeaderAlways(int32_t LoopIdx, const FormulaRef &Qh);
  /// Does W hold at L's header when first entered from outside?
  ProverResult proveAtFirstArrival(int32_t LoopIdx, const FormulaRef &W);

  /// Induction-iteration for loop \p LoopIdx with per-iteration goal
  /// \p Qh. With \p CheckEntry, each admitted trial invariant is verified
  /// true on entry (the classic algorithm); without, entry obligations
  /// are deferred to the caller, which propagates Linv further backward.
  SynthesisResult synthesize(int32_t LoopIdx, const FormulaRef &Qh,
                             bool CheckEntry);

  /// Backward substitution over one region (LoopIdx = -1 for the whole
  /// graph). \p Need seeds per-node requirements that must hold on
  /// *every* visit (inside inner-loop units they feed invariant
  /// synthesis); \p FirstNeed seeds requirements that must hold only on
  /// the *first arrival* at an inner-loop unit's header (used by the
  /// inv.0 "true on entry" checks). \p BackEdgeF is plugged in at the
  /// region's own back edges. Returns the formula required at the region
  /// entry (header or program entry).
  FormulaRef backSubstRegion(int32_t LoopIdx,
                             const std::map<NodeId, FormulaRef> &Need,
                             const std::map<NodeId, FormulaRef> &FirstNeed,
                             const FormulaRef &BackEdgeF, bool &Failed);

  /// wlp of the loop body as a transformer: the formula required at the
  /// header so that \p X holds at the next arrival at the header.
  FormulaRef wlpAroundLoop(int32_t LoopIdx, const FormulaRef &X,
                           bool &Failed) {
    return backSubstRegion(LoopIdx, {}, {}, X, Failed);
  }

  /// Trial-invariant replacement candidates for W (generalizations and
  /// DNF disjuncts), ranked.
  std::vector<FormulaRef> candidates(int32_t LoopIdx, const FormulaRef &W);

  ProverResult implies(const FormulaRef &P, const FormulaRef &Q) {
    return TheProver.checkImplies(P, Q);
  }

  /// True when speculative VC-level parallelism is available: a pool
  /// with real workers and a prover cache to carry results back.
  bool canPrefetch() const {
    return Opts.Pool && Opts.Pool->workerCount() > 1 &&
           TheProver.cacheHandle() != nullptr;
  }

  /// Discharges the validity queries \p Queries concurrently on the
  /// pool, each on a per-worker prover over the shared cache. Purely a
  /// cache warmer: the sequential pass re-asks each query and hits. The
  /// queries are deduplicated by structural hash (dropping one by a
  /// hash collision only loses the prefetch, never correctness).
  void prefetchValidity(const std::vector<FormulaRef> &Queries);

  void computePureFacts();

  /// The innermost loop of a node, or -1.
  int32_t innermost(NodeId N) const { return Ctx.Loops->innermostLoop(N); }
  const Loop &loop(int32_t Idx) const { return Ctx.Loops->loops()[Idx]; }
  /// The unit of node N within region R: -1 when N is direct in R,
  /// otherwise the index of the outermost loop containing N whose parent
  /// is R.
  int32_t unitOf(int32_t Region, NodeId N) const {
    int32_t L = innermost(N);
    if (L == Region)
      return -1;
    while (L >= 0 && loop(L).Parent != Region)
      L = loop(L).Parent;
    return L;
  }

  /// Variables modified by the loop's body (cached), havoc instances
  /// aside — formulas free of these are invariant across the loop.
  const std::set<VarId> &modifiedIn(int32_t LoopIdx) {
    auto It = ModifiedCache.find(LoopIdx);
    if (It == ModifiedCache.end())
      It = ModifiedCache
               .emplace(LoopIdx, Wlp.modifiedVars(loop(LoopIdx).Body))
               .first;
    return It->second;
  }

  /// True when no free variable of \p F is modified by loop \p LoopIdx
  /// (havoc instances "h.*" count as unmodified: they are fixed unknowns).
  bool independentOfLoop(int32_t LoopIdx, const FormulaRef &F) {
    const std::set<VarId> &Modified = modifiedIn(LoopIdx);
    for (VarId V : F->freeVars())
      if (Modified.count(V))
        return false;
    return true;
  }

  const CheckContext &Ctx;
  const PropagationResult &Prop;
  const AnnotationResult &Annot;
  Prover &TheProver;
  GlobalVerifyOptions Opts;
  support::ResourceGovernor *Gov;
  WlpEngine Wlp;
  GlobalVerifyStats Stats;
  std::map<int32_t, std::set<VarId>> ModifiedCache;

  std::vector<NodeId> Rpo;
  std::vector<uint32_t> RpoIndex;

  /// Entry-context facts that only involve pure symbols, usable as
  /// hypotheses anywhere in the program.
  FormulaRef PureFacts;

  /// Synthesized invariants per loop (the grouping enhancement).
  struct CachedInvariant {
    FormulaRef Qh;
    FormulaRef Linv;
    bool EntryEstablished;
  };
  std::map<int32_t, std::vector<CachedInvariant>> InvariantCache;

  unsigned RecursionDepth = 0;
  static constexpr unsigned MaxRecursionDepth = 24;
};

void Verifier::prefetchValidity(const std::vector<FormulaRef> &Queries) {
  if (!canPrefetch() || (Gov && Gov->exhausted()))
    return;
  support::TraceSpan Span("global/prefetch");
  std::shared_ptr<ProverCache> SharedCache = TheProver.cacheHandle();
  Prover::Options ProverOpts = TheProver.options();
  // Speculative workers poll the governor but never charge prover
  // steps: the deterministic step sequence belongs to the sequential
  // pass alone (see Prover::Options::ChargeGovernorSteps).
  ProverOpts.ChargeGovernorSteps = false;
  std::unordered_set<size_t> Seen;
  support::TaskGroup Group(Opts.Pool);
  for (const FormulaRef &Q : Queries) {
    if (Q->isTrue() || !Seen.insert(Q->hash()).second)
      continue;
    ++Stats.SpeculativeQueries;
    Group.spawn([Q, SharedCache, ProverOpts] {
      // Pool tasks run outside the check's VarNamespace: names minted
      // while answering the query must not consume the check's
      // deterministic fresh-name counters.
      // A throwing pool task would std::terminate the process, so the
      // speculative path absorbs everything (it is only a cache warmer;
      // the sequential pass recomputes whatever is missing).
      try {
        VarScopeSuspend NoScope;
        Prover Local(ProverOpts, SharedCache);
        Local.checkValid(Q);
      } catch (...) {
      }
    });
  }
  Group.wait();
}

void Verifier::computePureFacts() {
  std::vector<FormulaRef> Pure;
  const FormulaRef &Entry = Ctx.EntryContext;
  auto Consider = [&Pure](const FormulaRef &F) {
    for (VarId V : F->freeVars())
      if (isFlowVarying(V))
        return;
    Pure.push_back(F);
  };
  if (Entry->kind() == FormulaKind::And) {
    for (const FormulaRef &Child : Entry->children())
      Consider(Child);
  } else {
    Consider(Entry);
  }
  PureFacts = Formula::conj(std::move(Pure));
}

FormulaRef
Verifier::backSubstRegion(int32_t LoopIdx,
                          const std::map<NodeId, FormulaRef> &Need,
                          const std::map<NodeId, FormulaRef> &FirstNeed,
                          const FormulaRef &BackEdgeF, bool &Failed) {
  NodeId EntryNode =
      LoopIdx < 0 ? Ctx.Graph.entry() : loop(LoopIdx).Header;
  auto InRegion = [&](NodeId N) {
    if (RpoIndex[N] == UINT32_MAX)
      return false;
    return LoopIdx < 0 || loop(LoopIdx).contains(N);
  };

  // phi[N]: the formula required when control reaches N (for unit
  // headers: at first arrival from outside the unit).
  std::map<NodeId, FormulaRef> Phi;
  auto NeedAt = [&Need](NodeId N) {
    auto It = Need.find(N);
    return It == Need.end() ? Formula::mkTrue() : It->second;
  };
  auto FirstNeedAt = [&FirstNeed](NodeId N) {
    auto It = FirstNeed.find(N);
    return It == FirstNeed.end() ? Formula::mkTrue() : It->second;
  };

  // Formula bytes charged against the governor while this region's phi
  // map is alive; released wholesale on every exit path.
  uint64_t ChargedBytes = 0;
  struct MemRelease {
    support::ResourceGovernor *Gov;
    uint64_t &Bytes;
    ~MemRelease() {
      if (Gov)
        Gov->releaseMemory(Bytes);
    }
  } Release{Gov, ChargedBytes};
  auto ChargePhi = [&](const FormulaRef &F) {
    if (!Gov)
      return true;
    uint64_t B = static_cast<uint64_t>(F->size()) * 48; // ~node footprint
    ChargedBytes += B;
    return Gov->noteMemory("global/phi", B);
  };

  // Process region nodes in reverse RPO (a reverse topological order of
  // the region DAG, since the graph is reducible).
  for (auto It = Rpo.rbegin(); It != Rpo.rend(); ++It) {
    NodeId N = *It;
    // Back-substitution is the checker's hottest unbounded loop (its
    // formulas can grow with every node): poll here so deadlines and
    // memory trips land promptly, failing the region rather than the
    // process.
    if (Gov && !Gov->poll("global/backsubst")) {
      Failed = true;
      return Formula::mkFalse();
    }
    if (!InRegion(N))
      continue;
    int32_t Unit = unitOf(LoopIdx, N);

    if (Unit >= 0) {
      // Node inside an inner-loop unit: only its header produces a phi.
      if (N != loop(Unit).Header)
        continue;
      // Exit obligations of the unit: for each edge leaving the unit,
      // the successor's phi guarded by the edge condition, attached at
      // the edge source. Successor formulas that mention no variable the
      // unit modifies are invariant across it by construction and hoist
      // directly to the unit entry (the paper's observation that "the
      // tests in the inner loops will not contribute to the proof of a
      // condition of an outer loop").
      std::map<NodeId, FormulaRef> InnerNeed;
      std::vector<FormulaRef> Hoisted;
      for (NodeId X : loop(Unit).Body) {
        std::vector<FormulaRef> Terms;
        for (const CfgEdge &E : Ctx.Graph.node(X).Succs) {
          if (loop(Unit).contains(E.To))
            continue;
          FormulaRef Target = Formula::mkTrue();
          if (InRegion(E.To)) {
            auto PhiIt = Phi.find(E.To);
            // Reverse RPO guarantees forward targets are done.
            Target = PhiIt == Phi.end() ? Formula::mkTrue() : PhiIt->second;
          }
          if (Target->isTrue())
            continue;
          if (independentOfLoop(Unit, Target)) {
            Hoisted.push_back(Target);
            continue;
          }
          Terms.push_back(
              Formula::implies(Wlp.edgeCondition(E), Target));
        }
        // Obligations seeded inside the unit body join here as well.
        FormulaRef Seeded = NeedAt(X);
        if (!Seeded->isTrue())
          Terms.push_back(Seeded);
        if (!Terms.empty())
          InnerNeed[X] = Formula::conj(std::move(Terms));
      }
      FormulaRef UnitEntry = Formula::conj(std::move(Hoisted));
      if (!InnerNeed.empty()) {
        bool InnerFailed = false;
        FormulaRef Qh = backSubstRegion(Unit, InnerNeed, {},
                                        Formula::mkTrue(), InnerFailed);
        if (InnerFailed) {
          Failed = true;
          UnitEntry = Formula::mkFalse();
        } else {
          SynthesisResult R =
              synthesize(Unit, Qh, /*CheckEntry=*/false);
          if (R.Success) {
            UnitEntry = Formula::conj2(std::move(UnitEntry), R.Linv);
          } else {
            Failed = true;
            UnitEntry = Formula::mkFalse();
          }
        }
      }
      // First-arrival seeds (inv.0 checks) attach here, outside the
      // per-iteration synthesis.
      Phi[N] = Formula::conj2(FirstNeedAt(N), UnitEntry);
      continue;
    }

    // Direct node of the region.
    std::vector<FormulaRef> Terms;
    const FormulaRef Seeded = NeedAt(N);
    for (const CfgEdge &E : Ctx.Graph.node(N).Succs) {
      FormulaRef Target;
      if (LoopIdx >= 0 && E.To == loop(LoopIdx).Header &&
          Ctx.Loops->isBackEdge(N, E.To)) {
        Target = BackEdgeF; // Around the loop.
      } else if (LoopIdx >= 0 && !loop(LoopIdx).contains(E.To)) {
        Target = Formula::mkTrue(); // Region exit.
      } else {
        NodeId SuccKey = E.To;
        int32_t SuccUnit = unitOf(LoopIdx, E.To);
        if (SuccUnit >= 0)
          SuccKey = loop(SuccUnit).Header;
        auto PhiIt = Phi.find(SuccKey);
        Target = PhiIt == Phi.end() ? Formula::mkTrue() : PhiIt->second;
      }
      if (Target->isTrue())
        continue;
      Terms.push_back(Formula::implies(Wlp.edgeCondition(E), Target));
    }
    FormulaRef Post = Formula::conj(std::move(Terms));
    FormulaRef Before = Formula::conj2(
        Formula::conj2(Seeded, FirstNeedAt(N)),
        Wlp.transformNode(N, Post));
    if (Opts.SimplifyAtJunctions && Ctx.Graph.node(N).Preds.size() != 1)
      Before = simplify(Before);
    if (Before->size() > Opts.MaxFormulaSize) {
      Failed = true;
      Before = Formula::mkFalse();
    }
    if (!ChargePhi(Before)) {
      Failed = true;
      return Formula::mkFalse();
    }
    Phi[N] = std::move(Before);
  }

  auto It = Phi.find(EntryNode);
  return It == Phi.end() ? Formula::mkTrue() : It->second;
}

std::vector<FormulaRef> Verifier::candidates(int32_t LoopIdx,
                                             const FormulaRef &W) {
  std::vector<FormulaRef> Result;
  std::set<VarId> Modified;
  {
    std::set<VarId> AllModified = Wlp.modifiedVars(loop(LoopIdx).Body);
    for (VarId V : W->freeVars()) {
      // Havoc instances ("h.*") denote arbitrary values chosen during one
      // symbolic traversal of the body; a useful invariant cannot mention
      // them, so they are always eliminated.
      if (AllModified.count(V) || startsWith(varName(V), "h."))
        Modified.insert(V);
    }
  }
  if (Opts.UseGeneralization && !Modified.empty()) {
    Stats.GeneralizationsTried++;
    for (FormulaRef &G : generalize(W, Modified))
      Result.push_back(std::move(G));
  }
  if (Opts.UseDisjunctTrial && W->kind() == FormulaKind::Or) {
    // Each disjunct is a stronger candidate ("try each of its disjuncts
    // as W(i) in turn").
    for (const FormulaRef &D : W->children())
      Result.push_back(D);
  }
  // Rank: fewer free modified variables first, then smaller formulas —
  // loop-invariant-shaped candidates come first.
  auto Score = [this, LoopIdx](const FormulaRef &F) {
    std::set<VarId> AllModified = Wlp.modifiedVars(loop(LoopIdx).Body);
    size_t ModCount = 0;
    for (VarId V : F->freeVars())
      if (AllModified.count(V))
        ++ModCount;
    return std::make_pair(ModCount, F->size());
  };
  std::stable_sort(Result.begin(), Result.end(),
                   [&Score](const FormulaRef &A, const FormulaRef &B) {
                     return Score(A) < Score(B);
                   });
  // Deduplicate against W itself.
  std::vector<FormulaRef> Unique;
  for (FormulaRef &C : Result) {
    if (Formula::equal(C, W))
      continue;
    bool Dup = false;
    for (const FormulaRef &U : Unique)
      if (Formula::equal(U, C))
        Dup = true;
    if (!Dup)
      Unique.push_back(std::move(C));
  }
  return Unique;
}

Verifier::SynthesisResult Verifier::synthesize(int32_t LoopIdx,
                                               const FormulaRef &QhIn,
                                               bool CheckEntry) {
  support::TraceSpan Span("global/synthesize");
  SynthesisResult Result;
  FormulaRef Qh = simplify(QhIn);
  if (Qh->isTrue()) {
    Result.Success = true;
    Result.Linv = Formula::mkTrue();
    return Result;
  }

  // Independence shortcut: a goal that mentions nothing the loop
  // modifies is trivially invariant; only its truth on entry remains.
  if (independentOfLoop(LoopIdx, Qh)) {
    if (!CheckEntry ||
        proveAtFirstArrival(LoopIdx, Qh) == ProverResult::Proved) {
      Result.Success = true;
      Result.Linv = Qh;
      return Result;
    }
    return Result; // Not true on entry: cannot hold always.
  }

  // Forward-propagation shortcut (Section 6: "forward propagation of
  // information about array bounds ... eliminates the need to use
  // generalization"): the header's typestate assertions hold on every
  // arrival; if they already imply the goal, nothing needs synthesis and
  // nothing is required of the loop's entry.
  {
    NodeId Header = loop(LoopIdx).Header;
    FormulaRef HeaderFacts =
        Formula::conj2(Annot.Assertions[Header], PureFacts);
    if (implies(HeaderFacts, Qh) == ProverResult::Proved) {
      ++Stats.QuickDischarges;
      Result.Success = true;
      Result.Linv = Formula::mkTrue();
      return Result;
    }
  }

  // Grouping enhancement: reuse an invariant that subsumes this goal.
  if (Opts.ReuseInvariants) {
    for (const CachedInvariant &C : InvariantCache[LoopIdx]) {
      if (CheckEntry && !C.EntryEstablished)
        continue;
      if (implies(Formula::conj2(C.Linv, PureFacts), Qh) ==
          ProverResult::Proved) {
        ++Stats.InvariantReuses;
        Result.Success = true;
        Result.Linv = C.Linv;
        return Result;
      }
    }
  }

  if (++RecursionDepth > MaxRecursionDepth) {
    --RecursionDepth;
    return Result;
  }

  std::vector<FormulaRef> W = {Qh};
  std::vector<FormulaRef> Wlps; // Wlps[k] = wlpAround(W[k]).
  bool Failed = false;
  MCSAFE_TRACE_LOG("[synth L%d entry=%d] W0 = %s\n", LoopIdx,
                   int(CheckEntry), Qh->str().c_str());

  for (unsigned I = 0;; ++I) {
    // Induction iteration is the paper's potentially-unbounded search;
    // a governor trip abandons synthesis (FAILED → obligation Unknown).
    if (Gov && !Gov->poll("global/synthesize"))
      break;
    ++Stats.IterationsRun;
    // inv.1(I-1): (W(0) and ... and W(I-1)) => W(I).
    std::vector<FormulaRef> Prefix(W.begin(), W.begin() + I);
    FormulaRef LPrev = Formula::conj(std::move(Prefix));
    if (implies(Formula::conj2(LPrev, PureFacts), W[I]) ==
        ProverResult::Proved) {
      MCSAFE_TRACE_LOG("[synth L%d] inv1 proved at i=%u\n", LoopIdx, I);
      // SUCCESS: certify L = W(0..I-1) (or "true" if I == 0).
      FormulaRef Linv = LPrev;
      bool Certified = true;
      if (Opts.CertifyInvariants && I > 0) {
        std::vector<FormulaRef> Body(Wlps.begin(), Wlps.begin() + I);
        FormulaRef Around = Formula::conj(std::move(Body));
        Certified = implies(Formula::conj2(Linv, PureFacts), Around) ==
                    ProverResult::Proved;
      }
      if (Certified) {
        --RecursionDepth;
        Result.Success = true;
        Result.Linv = Linv;
        ++Stats.InvariantsSynthesized;
        InvariantCache[LoopIdx].push_back({Qh, Linv, CheckEntry});
        return Result;
      }
      // Certification failed (a replacement broke the chain): give up.
      break;
    }

    if (I >= Opts.MaxIterations || Failed)
      break;

    // inv.1 failed. For I >= 1, try replacing W(I) with a stronger /
    // simpler candidate (generalization, DNF disjunct), breadth-first.
    // A candidate is acceptable only if it keeps the wlp chain intact
    // (L(I-1) and the candidate must still imply the original W(I), so
    // the final certification can succeed) and, when the loop entry is
    // known, holds on entry.
    if (I > 0) {
      std::vector<FormulaRef> Cands = candidates(LoopIdx, W[I]);
      if (Cands.size() > 1 && canPrefetch()) {
        // Discharge every candidate's chain implication concurrently;
        // the selection loop below re-asks them in ranked order and
        // reads the answers from the shared cache.
        std::vector<FormulaRef> Queries;
        Queries.reserve(Cands.size());
        for (const FormulaRef &C : Cands)
          Queries.push_back(Formula::implies(
              Formula::conj({LPrev, C, PureFacts}), W[I]));
        prefetchValidity(Queries);
      }
      for (const FormulaRef &C : Cands) {
        MCSAFE_TRACE_LOG("[synth L%d] candidate for W%u: %s\n", LoopIdx,
                         I, C->str().c_str());
        if (implies(Formula::conj({LPrev, C, PureFacts}), W[I]) !=
            ProverResult::Proved) {
          MCSAFE_TRACE_LOG("[synth L%d]   rejected (chain)\n", LoopIdx);
          continue;
        }
        if (CheckEntry) {
          if (proveAtFirstArrival(LoopIdx, C) != ProverResult::Proved) {
            MCSAFE_TRACE_LOG("[synth L%d]   rejected (entry)\n", LoopIdx);
            continue;
          }
        }
        MCSAFE_TRACE_LOG("[synth L%d]   accepted\n", LoopIdx);
        W[I] = C;
        break;
      }
    }
    // inv.0(I): W(I) must hold on entry to the loop.
    if (CheckEntry &&
        proveAtFirstArrival(LoopIdx, W[I]) != ProverResult::Proved) {
      MCSAFE_TRACE_LOG("[synth L%d] inv0 failed for W%u = %s\n", LoopIdx,
                       I, W[I]->str().c_str());
      break;
    }

    FormulaRef Next = simplify(wlpAroundLoop(LoopIdx, W[I], Failed));
    if (Failed)
      break;
    MCSAFE_TRACE_LOG("[synth L%d] W%u = %s\n", LoopIdx, I + 1,
                     Next->str().c_str());
    Wlps.push_back(Next);
    W.push_back(std::move(Next));
  }
  MCSAFE_TRACE_LOG("[synth L%d] FAILED\n", LoopIdx);
  --RecursionDepth;
  return Result;
}

ProverResult Verifier::proveAtFirstArrival(int32_t LoopIdx,
                                           const FormulaRef &W) {
  if (W->isTrue())
    return ProverResult::Proved;
  NodeId Header = loop(LoopIdx).Header;
  int32_t Parent = loop(LoopIdx).Parent;
  bool Failed = false;
  if (Parent < 0) {
    FormulaRef AtEntry = backSubstRegion(-1, {}, {{Header, W}},
                                         Formula::mkTrue(), Failed);
    if (Failed)
      return ProverResult::Unknown;
    return implies(Ctx.EntryContext, AtEntry);
  }
  FormulaRef Qh2 = backSubstRegion(Parent, {}, {{Header, W}},
                                   Formula::mkTrue(), Failed);
  if (Failed)
    return ProverResult::Unknown;
  return proveAtHeaderAlways(Parent, Qh2);
}

ProverResult Verifier::proveAtHeaderAlways(int32_t LoopIdx,
                                           const FormulaRef &Qh) {
  SynthesisResult R = synthesize(LoopIdx, Qh, /*CheckEntry=*/true);
  return R.Success ? ProverResult::Proved : ProverResult::Unknown;
}

ProverResult Verifier::proveAt(NodeId N, const FormulaRef &Q) {
  if (Q->isTrue())
    return ProverResult::Proved;
  // Quick discharge from the node's typestate assertions plus pure
  // facts — this is how null and alignment checks usually go through.
  FormulaRef Hypo = Formula::conj2(Annot.Assertions[N], PureFacts);
  if (implies(Hypo, Q) == ProverResult::Proved) {
    ++Stats.QuickDischarges;
    return ProverResult::Proved;
  }

  int32_t L = innermost(N);
  bool Failed = false;
  if (L < 0) {
    FormulaRef AtEntry = backSubstRegion(-1, {{N, Q}}, {},
                                         Formula::mkTrue(), Failed);
    if (Failed)
      return ProverResult::Unknown;
    return implies(Ctx.EntryContext, AtEntry);
  }
  FormulaRef Qh =
      backSubstRegion(L, {{N, Q}}, {}, Formula::mkTrue(), Failed);
  if (Failed)
    return ProverResult::Unknown;
  return proveAtHeaderAlways(L, Qh);
}

GlobalVerifyStats Verifier::run() {
  if (canPrefetch()) {
    // Corpus-level obligations mostly fall to the quick discharge from
    // node assertions; those queries are pairwise independent, so fire
    // them all concurrently before the sequential pass.
    std::vector<FormulaRef> Queries;
    for (const GlobalObligation &Ob : Annot.Obligations) {
      if (Prop.In[Ob.Node].isTop() || Ob.Q->isTrue())
        continue;
      Queries.push_back(Formula::implies(
          Formula::conj2(Annot.Assertions[Ob.Node], PureFacts), Ob.Q));
    }
    prefetchValidity(Queries);
  }
  // Records an obligation left undecided because the governor tripped:
  // a Global-phase CheckFailure (the program was never shown wrong), not
  // a violation diagnostic.
  auto RecordUnknown = [&](const GlobalObligation &Ob) {
    ++Stats.ObligationsUnknown;
    if (Ctx.Failures)
      Ctx.Failures->push_back(
          {CheckPhase::Global,
           Gov->exhaustedKind() == support::BudgetKind::Cancelled
               ? FailureKind::Cancelled
               : FailureKind::ResourceExhausted,
           Ob.Node, Ob.Description + ": undecided (" + Gov->reason() + ")"});
  };

  const std::vector<GlobalObligation> &Obs = Annot.Obligations;
  for (size_t I = 0; I < Obs.size(); ++I) {
    const GlobalObligation &Ob = Obs[I];
    if (Prop.In[Ob.Node].isTop())
      continue; // Unreachable node: vacuous.
    ProverResult R = ProverResult::Unknown;
    bool Decided = false;
    if (!Gov || Gov->poll("global/obligation")) {
      R = proveAt(Ob.Node, Ob.Q);
      // An Unknown produced while the governor is exhausted reflects the
      // interrupted search, not the obligation; only a completed query
      // (or a proof that landed before the trip) counts as an answer.
      Decided = R == ProverResult::Proved || !Gov || !Gov->exhausted();
    }
    if (R == ProverResult::Proved) {
      ++Stats.ObligationsProved;
      continue;
    }
    if (Decided) {
      ++Stats.ObligationsFailed;
      std::string Why = R == ProverResult::NotProved
                            ? "a counterexample exists"
                            : "the condition could not be proved";
      Ctx.Diags->report(DiagSeverity::Violation, Ob.Kind,
                        Ob.Description + ": " + Why + " [" + Ob.Q->str() +
                            "]",
                        Ob.Node, Ctx.Graph.sourceLine(Ob.Node));
      continue;
    }
    RecordUnknown(Ob);
    if (!Opts.FailSoft) {
      // Summarize the rest instead of enumerating every obligation the
      // budget will no longer reach.
      uint64_t Remaining = 0;
      for (size_t J = I + 1; J < Obs.size(); ++J)
        if (!Prop.In[Obs[J].Node].isTop())
          ++Remaining;
      Stats.ObligationsUnknown += Remaining;
      if (Remaining && Ctx.Failures)
        Ctx.Failures->push_back(
            {CheckPhase::Global, FailureKind::ResourceExhausted,
             std::nullopt,
             std::to_string(Remaining) +
                 " further obligation(s) undecided: " + Gov->reason()});
      break;
    }
  }
  if (Opts.InvariantSink)
    for (const auto &[LoopIdx, Cached] : InvariantCache)
      for (const CachedInvariant &CI : Cached)
        Opts.InvariantSink->push_back(
            {LoopIdx, CI.Qh, CI.Linv, CI.EntryEstablished});
  return Stats;
}

} // namespace

GlobalVerifyStats checker::verifyGlobal(const CheckContext &Ctx,
                                        const PropagationResult &Prop,
                                        const AnnotationResult &Annot,
                                        Prover &TheProver,
                                        const GlobalVerifyOptions &Opts) {
  Verifier V(Ctx, Prop, Annot, TheProver, Opts);
  return V.run();
}
