//===- GlobalVerify.h - Phase 5: global verification ------------*- C++ -*-===//
//
// Part of mcsafe, a reproduction of "Safety Checking of Machine Code"
// (Xu, Miller, Reps; PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Phase 5 verifies the global safety preconditions by program-
/// verification techniques (paper Section 5.2): demand-driven VC
/// generation one condition at a time, backward substitution over regions
/// in reverse topological order with simplification at junction points,
/// and the induction-iteration method (Suzuki-Ishihata) for loop-
/// invariant synthesis, with the paper's enhancements:
///
///   - nested loops: obligations crossing an inner loop trigger invariant
///     synthesis for the exit obligation, whose entry condition then
///     continues outward;
///   - DNF disjunct trial and generalization (not(eliminate(not f))) as
///     trial-invariant candidates, ranked and explored breadth-first;
///   - formula grouping: invariants already synthesized for a loop are
///     reused when they subsume a new obligation;
///   - a bound of three iterations (Section 5.2.3).
///
/// One deliberate strengthening over the 1977 algorithm: on success the
/// final trial invariant is *certified* — L(j) => wlp(body, L(j)) is
/// re-checked as a whole — so candidate replacement by generalization can
/// never produce an unsound "SUCCESS".
///
//===----------------------------------------------------------------------===//

#ifndef MCSAFE_CHECKER_GLOBALVERIFY_H
#define MCSAFE_CHECKER_GLOBALVERIFY_H

#include "checker/Annotation.h"
#include "checker/CheckContext.h"
#include "checker/Propagation.h"
#include "checker/Wlp.h"
#include "constraints/Prover.h"

#include <map>
#include <string>
#include <vector>

namespace mcsafe {
namespace support {
class ThreadPool;
} // namespace support

namespace checker {

/// A loop invariant the induction-iteration engine synthesized (and, when
/// CertifyInvariants is on, certified), exported for certificate storage:
/// which loop, the header obligation it discharges, the invariant itself,
/// and whether its establishment at loop entry was proved.
struct SynthesizedInvariant {
  int32_t LoopIdx;
  FormulaRef Qh;
  FormulaRef Linv;
  bool EntryEstablished;
};

/// Strategy switches (all on by default; the ablation benches toggle
/// them).
struct GlobalVerifyOptions {
  unsigned MaxIterations = 3;   ///< Induction-iteration bound (paper: 3).
  bool UseGeneralization = true;
  bool UseDisjunctTrial = true;
  bool SimplifyAtJunctions = true;
  bool ReuseInvariants = true;  ///< The grouping enhancement.
  bool CertifyInvariants = true;
  size_t MaxFormulaSize = 20000;
  /// When set (and the prover has a cache), independent verification
  /// conditions — per-obligation quick-discharge queries and
  /// induction-iteration candidate-invariant implications — are
  /// discharged concurrently on the pool by per-worker provers sharing
  /// the main prover's cache. The sequential decision logic then reads
  /// every result back from the cache, so verdicts and reports are
  /// byte-identical with or without a pool (results are pure functions
  /// of formula structure and budget). Non-owning.
  support::ThreadPool *Pool = nullptr;
  /// When the governor trips mid-run, keep walking the remaining
  /// obligations and record each as its own Unknown failure (instead of
  /// one summary failure for the rest). Costs one pass over the
  /// obligation list; proves nothing further.
  bool FailSoft = false;
  /// When set, every invariant synthesized during the run is appended
  /// here at the end (certificate capture). Non-owning.
  std::vector<SynthesizedInvariant> *InvariantSink = nullptr;
  /// Debug-trace the induction-iteration search to stderr. Drivers set
  /// this from MCSAFE_TRACE (the CLI, once per invocation) or from the
  /// request header (mcsafe-serve, per request) — it is a per-check
  /// option, never a process-latched environment read, so a resident
  /// daemon can honor different settings on every request. Diagnostic
  /// output only: it never changes a verdict or a report byte, so it is
  /// deliberately NOT part of canonicalCheckConfig().
  bool DebugTrace = false;
};

/// Per-run statistics.
struct GlobalVerifyStats {
  uint64_t ObligationsProved = 0;
  uint64_t ObligationsFailed = 0;
  /// Obligations left undecided because a resource budget tripped (they
  /// are CheckFailures, not violations: the program was never shown
  /// wrong, the checker just ran out).
  uint64_t ObligationsUnknown = 0;
  uint64_t QuickDischarges = 0; ///< Proved from node assertions alone.
  uint64_t InvariantsSynthesized = 0;
  uint64_t InvariantReuses = 0;
  uint64_t IterationsRun = 0;
  uint64_t GeneralizationsTried = 0;
  /// Verification conditions discharged speculatively on the thread pool
  /// (their results are consumed through the shared prover cache).
  uint64_t SpeculativeQueries = 0;
};

/// Runs phase 5 over the annotation result. Unproved obligations are
/// reported as violations into Ctx.Diags ("identify the places where the
/// safety conditions were violated").
GlobalVerifyStats verifyGlobal(const CheckContext &Ctx,
                               const PropagationResult &Prop,
                               const AnnotationResult &Annot,
                               Prover &TheProver,
                               const GlobalVerifyOptions &Opts = {});

} // namespace checker
} // namespace mcsafe

#endif // MCSAFE_CHECKER_GLOBALVERIFY_H
