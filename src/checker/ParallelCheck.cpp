//===- ParallelCheck.cpp --------------------------------------------------===//

#include "checker/ParallelCheck.h"

#include "constraints/Var.h"
#include "support/ThreadPool.h"
#include "support/Trace.h"

#include <chrono>
#include <sstream>

using namespace mcsafe;
using namespace mcsafe::checker;

ParallelCheckResult checker::checkJobs(const std::vector<CheckJob> &Jobs,
                                       const ParallelCheckOptions &Opts) {
  ParallelCheckResult Result;
  Result.Programs.resize(Jobs.size());
  for (size_t I = 0; I < Jobs.size(); ++I)
    Result.Programs[I].Name = Jobs[I].Name;

  unsigned NJobs = Opts.Jobs ? Opts.Jobs : support::ThreadPool::hardwareConcurrency();
  if (NJobs == 0)
    NJobs = 1;
  Result.JobsUsed = NJobs;

  std::shared_ptr<ProverCache> Shared;
  if (Opts.ShareProverCache) {
    ProverCache::Config C;
    C.MaxEntries = Opts.SharedCacheMaxEntries;
    Shared = std::make_shared<ProverCache>(C);
  }

  support::TraceSpan BatchSpan("parallel/batch");
  auto Start = std::chrono::steady_clock::now();

  std::unique_ptr<support::ThreadPool> Pool;
  if (NJobs > 1)
    Pool = std::make_unique<support::ThreadPool>(NJobs);

  auto RunOne = [&](size_t I) {
    CheckReport &Rep = Result.Programs[I].Report;
    // Pool tasks that throw would std::terminate the process, and one
    // job's failure must never take down its batch-mates: everything a
    // job can raise lands in its own report.
    try {
      // A batch-level governor that already tripped (shared deadline,
      // cooperative cancel) skips the remaining jobs outright, each with
      // a structured failure instead of silence.
      if (support::ResourceGovernor *BGov = Opts.Check.Governor;
          BGov && BGov->exhausted()) {
        Rep.Safe = false;
        Rep.Verdict = CheckVerdict::Unknown;
        Rep.Failures.push_back(
            {CheckPhase::Driver,
             BGov->exhaustedKind() == support::BudgetKind::Cancelled
                 ? FailureKind::Cancelled
                 : FailureKind::ResourceExhausted,
             std::nullopt, "check skipped: " + BGov->reason()});
        return;
      }
      support::TraceSpan JobSpan("parallel/job", Jobs[I].Name);
      // A private namespace makes this check's variable-id and fresh-name
      // sequences a pure function of its own inputs — the determinism
      // anchor for byte-identical reports under any scheduling.
      VarNamespace NS;
      SafetyChecker::Options O = Opts.Check;
      O.SharedProverCache = Shared;
      O.Global.Pool = (Opts.VcParallelism && Pool) ? Pool.get() : nullptr;
      O.Metrics = Opts.Metrics;
      O.MetricScope = "program/" + Jobs[I].Name;
      SafetyChecker Checker(O);
      Rep = Checker.checkSource(Jobs[I].Asm, Jobs[I].Policy);
    } catch (const std::exception &E) {
      Rep.Safe = false;
      Rep.Verdict = CheckVerdict::InternalError;
      Rep.Failures.push_back({CheckPhase::Driver, FailureKind::InternalError,
                              std::nullopt,
                              std::string("unhandled exception: ") +
                                  E.what()});
    } catch (...) {
      Rep.Safe = false;
      Rep.Verdict = CheckVerdict::InternalError;
      Rep.Failures.push_back({CheckPhase::Driver, FailureKind::InternalError,
                              std::nullopt,
                              "unhandled non-standard exception"});
    }
  };

  if (Pool) {
    support::TaskGroup Group(Pool.get());
    for (size_t I = 0; I < Jobs.size(); ++I)
      Group.spawn([&RunOne, I] { RunOne(I); });
    Group.wait();
  } else {
    for (size_t I = 0; I < Jobs.size(); ++I)
      RunOne(I);
  }

  if (support::MetricsRegistry *Reg = Opts.Metrics) {
    Reg->counter("parallel/wall_us")
        .inc(static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - Start)
                .count()));
    Reg->gauge("parallel/jobs").set(NJobs);
    if (Shared) {
      // Shared-cache counters are published exactly once, from the cache
      // itself. Per-worker Prover::stats() intentionally report 0
      // evictions for a shared cache, so nothing here is double-counted.
      ProverCache::Stats CS = Shared->stats();
      Reg->counter("cache/shared/hits").inc(CS.Hits);
      Reg->counter("cache/shared/misses").inc(CS.Misses);
      // The whole-query/component split of the aggregates above: warm
      // slice components are where the sharing pays off across workers,
      // so the rates are reported separately (Hits == QueryHits +
      // ComponentHits, same for misses).
      Reg->counter("cache/shared/query_hits").inc(CS.QueryHits);
      Reg->counter("cache/shared/query_misses").inc(CS.QueryMisses);
      Reg->counter("cache/shared/component_hits").inc(CS.ComponentHits);
      Reg->counter("cache/shared/component_misses").inc(CS.ComponentMisses);
      Reg->counter("cache/shared/insertions").inc(CS.Insertions);
      Reg->counter("cache/shared/evictions").inc(CS.Evictions);
      Reg->gauge("cache/shared/entries").set(
          static_cast<int64_t>(CS.Entries));
    }
    if (Pool) {
      support::ThreadPool::Stats PS = Pool->stats();
      Reg->counter("pool/submitted").inc(PS.Submitted);
      Reg->counter("pool/executed").inc(PS.Executed);
      Reg->counter("pool/steals").inc(PS.Steals);
      Reg->counter("pool/idle_us").inc(PS.IdleUs);
      Reg->gauge("pool/workers").set(Pool->workerCount());
    }
  }
  return Result;
}

std::string checker::renderParallelReport(const ParallelCheckResult &R) {
  std::ostringstream OS;
  for (const ParallelCheckResult::Program &P : R.Programs) {
    const CheckReport &Rep = P.Report;
    OS << "== " << P.Name << " ==\n";
    OS << "verdict: " << verdictName(Rep.Verdict) << "\n";
    std::string Diags = Rep.Diags.str();
    if (!Diags.empty()) {
      OS << Diags;
      if (Diags.back() != '\n')
        OS << "\n";
    }
    // Structured failures, in the order encountered. For step-budget and
    // malformed-input failures these are deterministic; wall-clock
    // deadline runs are inherently not, and are never byte-compared.
    for (const CheckFailure &F : Rep.Failures)
      OS << "failure: " << F.str() << "\n";
    if (!Rep.InputsOk)
      continue;
    // Deterministic work counters only — no wall-clock values, and none
    // of the series that vary with cache warmth or scheduling (cache
    // hits, budget exhaustions, speculative queries, Omega internals).
    const ProgramCharacteristics &C = Rep.Chars;
    OS << "insts: " << C.Instructions << "  branches: " << C.Branches
       << "  loops: " << C.Loops << " (inner " << C.InnerLoops << ")"
       << "  calls: " << C.Calls << " (trusted " << C.TrustedCalls
       << ")\n";
    if (Rep.LintRejected) {
      OS << "lint: rejected\n";
      continue;
    }
    OS << "typestate visits: " << Rep.TypestateNodeVisits
       << "  local checks: " << Rep.LocalChecks << " (violations "
       << Rep.LocalViolations << ")\n";
    OS << "global: conditions " << C.GlobalConditions << "  proved "
       << Rep.Global.ObligationsProved << "  failed "
       << Rep.Global.ObligationsFailed << "  quick "
       << Rep.Global.QuickDischarges << "\n";
    OS << "loops: invariants " << Rep.Global.InvariantsSynthesized
       << " (reused " << Rep.Global.InvariantReuses << ")  iterations "
       << Rep.Global.IterationsRun << "  generalizations "
       << Rep.Global.GeneralizationsTried << "\n";
    OS << "prover: validity " << Rep.ProverStats.ValidityQueries
       << "  sat " << Rep.ProverStats.SatQueries << "\n";
  }
  return OS.str();
}
