//===- ParallelCheck.cpp --------------------------------------------------===//

#include "checker/ParallelCheck.h"

#include "constraints/Var.h"
#include "support/ThreadPool.h"

#include <chrono>
#include <sstream>

using namespace mcsafe;
using namespace mcsafe::checker;

ParallelCheckResult checker::checkJobs(const std::vector<CheckJob> &Jobs,
                                       const ParallelCheckOptions &Opts) {
  ParallelCheckResult Result;
  Result.Programs.resize(Jobs.size());
  for (size_t I = 0; I < Jobs.size(); ++I)
    Result.Programs[I].Name = Jobs[I].Name;

  unsigned NJobs = Opts.Jobs ? Opts.Jobs : support::ThreadPool::hardwareConcurrency();
  if (NJobs == 0)
    NJobs = 1;
  Result.JobsUsed = NJobs;

  std::shared_ptr<ProverCache> Shared;
  if (Opts.ShareProverCache) {
    ProverCache::Config C;
    C.MaxEntries = Opts.SharedCacheMaxEntries;
    Shared = std::make_shared<ProverCache>(C);
  }

  auto Start = std::chrono::steady_clock::now();

  std::unique_ptr<support::ThreadPool> Pool;
  if (NJobs > 1)
    Pool = std::make_unique<support::ThreadPool>(NJobs);

  auto RunOne = [&](size_t I) {
    // A private namespace makes this check's variable-id and fresh-name
    // sequences a pure function of its own inputs — the determinism
    // anchor for byte-identical reports under any scheduling.
    VarNamespace NS;
    SafetyChecker::Options O = Opts.Check;
    O.SharedProverCache = Shared;
    O.Global.Pool = (Opts.VcParallelism && Pool) ? Pool.get() : nullptr;
    SafetyChecker Checker(O);
    Result.Programs[I].Report =
        Checker.checkSource(Jobs[I].Asm, Jobs[I].Policy);
  };

  if (Pool) {
    support::TaskGroup Group(Pool.get());
    for (size_t I = 0; I < Jobs.size(); ++I)
      Group.spawn([&RunOne, I] { RunOne(I); });
    Group.wait();
  } else {
    for (size_t I = 0; I < Jobs.size(); ++I)
      RunOne(I);
  }

  Result.WallSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - Start)
          .count();
  if (Shared)
    Result.Cache = Shared->stats();
  return Result;
}

std::string checker::renderParallelReport(const ParallelCheckResult &R) {
  std::ostringstream OS;
  for (const ParallelCheckResult::Program &P : R.Programs) {
    OS << "== " << P.Name << " ==\n";
    if (!P.Report.InputsOk)
      OS << "verdict: ERROR\n";
    else
      OS << "verdict: " << (P.Report.Safe ? "SAFE" : "UNSAFE") << "\n";
    std::string Diags = P.Report.Diags.str();
    if (!Diags.empty()) {
      OS << Diags;
      if (Diags.back() != '\n')
        OS << "\n";
    }
  }
  return OS.str();
}
