//===- ParallelCheck.h - Corpus-level parallel verification -----*- C++ -*-===//
//
// Part of mcsafe, a reproduction of "Safety Checking of Machine Code"
// (Xu, Miller, Reps; PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Drives the five-phase checker over a batch of independent programs on
/// a work-stealing thread pool. Two levels of parallelism compose:
///
///   - corpus-level: each program is checked on its own worker, inside
///     its own VarNamespace (so its variable-id and fresh-name sequences
///     depend only on its own inputs, not on scheduling);
///   - VC-level: each check hands the pool to phase 5, which discharges
///     independent verification conditions speculatively through the
///     shared prover cache.
///
/// Determinism contract: verdicts and diagnostics are byte-identical for
/// any job count, including 1. Timing and cache counters naturally vary.
///
//===----------------------------------------------------------------------===//

#ifndef MCSAFE_CHECKER_PARALLELCHECK_H
#define MCSAFE_CHECKER_PARALLELCHECK_H

#include "checker/SafetyChecker.h"
#include "constraints/ProverCache.h"

#include <string>
#include <vector>

namespace mcsafe {
namespace checker {

/// One unit of work: a program and the policy to check it against.
struct CheckJob {
  std::string Name;
  std::string Asm;
  std::string Policy;
};

struct ParallelCheckOptions {
  /// Worker count; 0 means hardware concurrency. 1 runs inline with no
  /// pool at all (the baseline the determinism tests diff against).
  unsigned Jobs = 0;
  /// Per-check options. Global.Pool and SharedProverCache are overwritten
  /// by the driver.
  SafetyChecker::Options Check;
  /// Bound on the shared formula-result cache.
  size_t SharedCacheMaxEntries = size_t(1) << 20;
  /// Share one prover cache across all jobs (and their speculative VC
  /// workers). Off gives each check a private cache.
  bool ShareProverCache = true;
  /// Also discharge independent VCs inside each check on the pool.
  bool VcParallelism = true;
  /// Observability sink for the whole batch. Each program publishes
  /// under "program/<name>/..."; the driver adds batch-level series:
  /// "parallel/wall_us", "parallel/jobs", "cache/shared/*" (published
  /// once — eviction counts are cache-global, not per-worker), and
  /// "pool/*" (tasks submitted/executed, steals, idle time).
  support::MetricsRegistry *Metrics = nullptr;
};

struct ParallelCheckResult {
  struct Program {
    std::string Name;
    CheckReport Report;
  };
  /// One entry per job, in input order regardless of completion order.
  std::vector<Program> Programs;
  unsigned JobsUsed = 0;
  // Wall time and cache counters live in ParallelCheckOptions::Metrics,
  // not here: everything in this struct is deterministic for a given
  // job list, independent of job count and scheduling.
};

/// Checks every job, possibly concurrently. Verdicts and diagnostics are
/// byte-identical for any Jobs value.
ParallelCheckResult checkJobs(const std::vector<CheckJob> &Jobs,
                              const ParallelCheckOptions &Opts = {});

/// Renders the full deterministic batch report — program names,
/// verdicts, diagnostics, program characteristics, and the work counters
/// that are pure functions of the inputs (typestate visits, local
/// checks, proof obligations, prover query counts), in input order.
/// Byte-identical across job counts; scheduling-dependent series (cache
/// hits, speculative queries, timings) are deliberately absent — those
/// live in the metrics registry.
std::string renderParallelReport(const ParallelCheckResult &R);

} // namespace checker
} // namespace mcsafe

#endif // MCSAFE_CHECKER_PARALLELCHECK_H
