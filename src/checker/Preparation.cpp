//===- Preparation.cpp - Phase 1: translate specs into annotations --------===//
//
// Part of mcsafe, a reproduction of "Safety Checking of Machine Code"
// (Xu, Miller, Reps; PLDI 2000).
//
// Phase 1 takes the host-typestate specification, the safety policy, and
// the invocation specification, and translates them into the initial
// annotations: the abstract-location table with policy-derived
// permissions, the initial abstract store (paper Figure 2), and the
// entry-context formula of linear constraints.
//
//===----------------------------------------------------------------------===//

#include "checker/CheckContext.h"

#include <cassert>
#include <set>

using namespace mcsafe;
using namespace mcsafe::checker;
using namespace mcsafe::typestate;
using namespace mcsafe::policy;

namespace {

/// Parses a decimal statement-number label ("12"); nullopt otherwise.
std::optional<int64_t> parseLabelNumber(const std::string &S) {
  if (S.empty())
    return std::nullopt;
  int64_t V = 0;
  for (char C : S) {
    if (C < '0' || C > '9')
      return std::nullopt;
    V = V * 10 + (C - '0');
  }
  return V;
}

class Preparer {
public:
  Preparer(const sparc::Module &M, const Policy &Pol,
           DiagnosticEngine &Diags)
      : M(M), Pol(Pol), Diags(Diags) {}

  std::optional<CheckContext> run();

private:
  /// Recursively creates the abstract location(s) for \p Name of \p Type.
  AbsLocId createLocationTree(const std::string &Name, const TypeRef &Type,
                              bool Summary, uint32_t Align,
                              AbsLocId Parent = InvalidLoc);

  /// Is \p Id (or an ancestor) a member of \p Region?
  bool inRegion(const std::string &Region, AbsLocId Id) const;

  /// Computes location r/w and value f/x/o from the access rules.
  void applyRules();

  /// Declared-state -> State, resolving points-to target names.
  std::optional<State> resolveStateSpec(const StateSpec &Spec,
                                        const std::string &Context);

  void buildEntryStore();
  void buildEntryContext();
  void createFrameLocations();

  bool fatal(const std::string &Message) {
    Diags.fatal(Message);
    return false;
  }

  const sparc::Module &M;
  const Policy &Pol;
  DiagnosticEngine &Diags;
  CheckContext Ctx;
  /// Declared top-level location name -> id.
  std::map<std::string, AbsLocId> DeclaredLocs;
  std::vector<FormulaRef> EntryFacts;
  bool Failed = false;
};

AbsLocId Preparer::createLocationTree(const std::string &Name,
                                      const TypeRef &Type, bool Summary,
                                      uint32_t Align, AbsLocId Parent) {
  AbstractLocation Loc;
  Loc.Name = Name;
  Loc.Type = Type;
  Loc.Size = Type->sizeInBytes();
  Loc.Align = Align ? Align : Type->alignment();
  Loc.Summary = Summary;
  Loc.Parent = Parent;
  AbsLocId Id = Ctx.Locs.create(std::move(Loc));

  if (Type->isAggregate()) {
    for (const Member &Field : Type->members()) {
      AbsLocId Child = createLocationTree(
          Name + "." + Field.Label, Field.Type,
          /*Summary=*/Summary || Field.Count > 1,
          /*Align=*/0, Id);
      if (Field.Count > 1)
        Ctx.Locs.loc(Child).Extent =
            Field.Count * Field.Type->sizeInBytes();
      // Child alignment is bounded by the parent's placement.
      uint32_t ParentAlign = Ctx.Locs.loc(Id).Align;
      AbstractLocation &ChildLoc = Ctx.Locs.loc(Child);
      if (ParentAlign && Field.Offset % std::max(1u, ChildLoc.Align) != 0)
        ChildLoc.Align = 1;
      Ctx.Locs.loc(Id).Fields.emplace_back(Field.Offset, Child);
    }
  }
  return Id;
}

bool Preparer::inRegion(const std::string &Region, AbsLocId Id) const {
  auto It = Pol.Regions.find(Region);
  if (It == Pol.Regions.end())
    return false;
  for (AbsLocId Cur = Id; Cur != InvalidLoc;
       Cur = Ctx.Locs.loc(Cur).Parent) {
    const std::string &Name = Ctx.Locs.loc(Cur).Name;
    for (const std::string &Member : It->second)
      if (Member == Name)
        return true;
  }
  return false;
}

void Preparer::applyRules() {
  for (uint32_t Id = 0; Id < Ctx.Locs.size(); ++Id) {
    AbstractLocation &Loc = Ctx.Locs.loc(Id);
    Access Granted = Access::none();
    bool AnyRule = false;
    for (const AccessRule &Rule : Pol.Rules) {
      if (!inRegion(Rule.Region, Id))
        continue;
      bool Matches = false;
      if (Rule.MatchAll) {
        Matches = true;
      } else if (Rule.Type) {
        Matches = typeEquals(Rule.Type, Loc.Type);
      } else {
        // struct.field category: the location is the named field of a
        // struct of the named type.
        if (Loc.Parent != InvalidLoc) {
          const AbstractLocation &ParentLoc = Ctx.Locs.loc(Loc.Parent);
          if (ParentLoc.Type->isAggregate() &&
              ParentLoc.Type->name() == Rule.StructName &&
              Loc.Name.size() > Rule.FieldName.size() &&
              Loc.Name.compare(Loc.Name.size() - Rule.FieldName.size(),
                               Rule.FieldName.size(),
                               Rule.FieldName) == 0)
            Matches = true;
        }
      }
      if (!Matches)
        continue;
      AnyRule = true;
      Loc.Readable |= Rule.R;
      Loc.Writable |= Rule.W;
      Granted.F |= Rule.F;
      Granted.X |= Rule.X;
      Granted.O |= Rule.O;
    }
    (void)AnyRule;
    Ctx.GrantedAccess[Id] = Granted;
  }
}

std::optional<State> Preparer::resolveStateSpec(const StateSpec &Spec,
                                                const std::string &Context) {
  switch (Spec.K) {
  case StateSpec::Kind::Uninit:
    return State::uninit();
  case StateSpec::Kind::Init:
    return Spec.Const ? State::initConst(*Spec.Const) : State::init();
  case StateSpec::Kind::Null:
    return State::nullPtr();
  case StateSpec::Kind::PointsTo: {
    std::set<PtrTarget> Targets;
    for (const auto &[Name, Offset] : Spec.Targets) {
      AbsLocId Target = Ctx.Locs.lookup(Name);
      if (Target == InvalidLoc) {
        fatal("points-to target '" + Name + "' of " + Context +
              " is not a declared location");
        return std::nullopt;
      }
      Targets.insert(PtrTarget{Target, Offset});
    }
    return State::pointsTo(std::move(Targets), Spec.MayBeNull);
  }
  }
  return State::uninit();
}

void Preparer::createFrameLocations() {
  for (cfg::NodeId Id = 0; Id < Ctx.Graph.size(); ++Id) {
    const cfg::CfgNode &Node = Ctx.Graph.node(Id);
    if (Node.Kind != cfg::NodeKind::Normal ||
        Node.InstIndex == UINT32_MAX)
      continue;
    const sparc::Instruction &Inst = M.Insts[Node.InstIndex];
    if (Inst.Op != sparc::Opcode::SAVE)
      continue;

    // Find a frame annotation for the enclosing function: by entry label
    // or by 1-based entry statement number.
    std::string FrameType;
    for (const auto &[Func, TypeName] : Pol.FrameTypes) {
      int32_t Entry = M.lookupLabel(Func);
      if (Entry < 0) {
        if (std::optional<int64_t> N = parseLabelNumber(Func))
          Entry = static_cast<int32_t>(*N) - 1;
      }
      if (Entry == static_cast<int32_t>(Node.FuncEntry))
        FrameType = TypeName;
    }

    std::string Name = "frame@n" + std::to_string(Id);
    AbsLocId Frame;
    if (!FrameType.empty()) {
      TypeRef T = Pol.NamedTypes.at(FrameType);
      Frame = createLocationTree(Name, T, /*Summary=*/false, /*Align=*/8);
    } else {
      // Unannotated frame: an opaque region; any access to it is a
      // violation (the paper requires frame annotations for functions
      // with local variables).
      uint32_t Size =
          Inst.UsesImm && Inst.Imm < 0 ? static_cast<uint32_t>(-Inst.Imm)
                                       : 96;
      TypeRef T = TypeFactory::abstract("opaque-frame", Size, 8);
      Frame = createLocationTree(Name, T, /*Summary=*/false, /*Align=*/8);
    }
    // The frame is the untrusted code's own memory: fully accessible.
    std::vector<AbsLocId> Leaves;
    Ctx.Locs.collectLeaves(Frame, Leaves);
    Leaves.push_back(Frame);
    for (AbsLocId Leaf : Leaves) {
      Ctx.Locs.loc(Leaf).Readable = true;
      Ctx.Locs.loc(Leaf).Writable = true;
      Ctx.GrantedAccess[Leaf] = Access::full();
    }
    Ctx.FrameLocs[Id] = Frame;
  }
}

void Preparer::buildEntryStore() {
  AbstractStore Store = AbstractStore::empty();

  // Calling convention: the host supplies a return address in %o7 and a
  // valid stack/frame pointer. They are initialized but not followable
  // (a frame annotation is needed to dereference the stack).
  Typestate HostScalar;
  HostScalar.Type = TypeFactory::int32();
  HostScalar.S = State::init();
  HostScalar.A = Access::o();
  Store.setReg(0, sparc::O7, HostScalar);
  Store.setReg(0, sparc::SP, HostScalar);
  Store.setReg(0, sparc::FP, HostScalar);

  // Declared locations.
  for (const LocationDecl &Decl : Pol.Locations) {
    AbsLocId Id = DeclaredLocs.at(Decl.Name);
    std::vector<AbsLocId> Leaves;
    Ctx.Locs.collectLeaves(Id, Leaves);
    std::optional<State> S =
        resolveStateSpec(Decl.State, "location '" + Decl.Name + "'");
    if (!S) {
      Failed = true;
      return;
    }
    for (AbsLocId Leaf : Leaves) {
      Typestate Ts;
      Ts.Type = Ctx.Locs.loc(Leaf).Type;
      // Pointer states apply to pointer-typed leaves; scalar leaves of an
      // aggregate take the scalar reading of the spec.
      if (S->isPointsTo() && !Ts.Type->isPointerLike())
        Ts.S = S->isDefinitelyNull() ? State::initConst(0) : State::init();
      else
        Ts.S = *S;
      Ts.A = Ctx.GrantedAccess[Leaf];
      Store.setLoc(Leaf, Ts);
    }
  }

  // Invocation bindings.
  for (const InvocationBinding &B : Pol.Invocation) {
    Typestate Ts;
    switch (B.K) {
    case InvocationBinding::Kind::ValueOfLoc: {
      // The parser validates dotted paths against the declared types,
      // but this is the untrusted boundary: re-check rather than assert,
      // so a parser gap degrades to a diagnostic instead of an abort.
      AbsLocId Id = Ctx.Locs.lookup(B.LocName);
      if (Id == InvalidLoc) {
        fatal("invocation binds value of undeclared location '" +
              B.LocName + "'");
        Failed = true;
        return;
      }
      Ts = Store.loc(Id);
      break;
    }
    case InvocationBinding::Kind::AddressOfLoc: {
      AbsLocId Id = Ctx.Locs.lookup(B.LocName);
      if (Id == InvalidLoc) {
        fatal("invocation binds address of undeclared location '" +
              B.LocName + "'");
        Failed = true;
        return;
      }
      Ts.Type = TypeFactory::ptr(Ctx.Locs.loc(Id).Type);
      Ts.S = State::pointsToLoc(Id, B.Offset);
      Ts.A = Access::fo();
      break;
    }
    case InvocationBinding::Kind::Symbol:
      Ts.Type = TypeFactory::int32();
      Ts.S = State::init();
      Ts.A = Access::o();
      break;
    case InvocationBinding::Kind::Literal:
      Ts.Type = TypeFactory::int32();
      Ts.S = State::initConst(B.Literal);
      Ts.A = Access::o();
      break;
    }
    Store.setReg(0, B.Reg, Ts);
  }

  // icc is uninitialized until a cc-setting instruction runs.
  Typestate IccTs;
  IccTs.Type = TypeFactory::int32();
  IccTs.S = State::uninit();
  IccTs.A = Access::o();
  Store.setIcc(IccTs);

  Ctx.EntryStore = std::move(Store);
}

void Preparer::buildEntryContext() {
  // Policy constraints.
  for (const FormulaRef &F : Pol.Constraints)
    EntryFacts.push_back(F);

  // Invocation equalities.
  for (const InvocationBinding &B : Pol.Invocation) {
    LinearExpr RegVar = LinearExpr::variable(regValueVar(0, B.Reg));
    switch (B.K) {
    case InvocationBinding::Kind::ValueOfLoc:
      EntryFacts.push_back(Formula::atom(Constraint::eq(
          RegVar - LinearExpr::variable(locValueVar(B.LocName)))));
      break;
    case InvocationBinding::Kind::AddressOfLoc:
      EntryFacts.push_back(Formula::atom(Constraint::eq(
          RegVar - LinearExpr::variable(locAddrVar(B.LocName))
                       .plusConstant(B.Offset))));
      break;
    case InvocationBinding::Kind::Symbol:
      EntryFacts.push_back(Formula::atom(
          Constraint::eq(RegVar - LinearExpr::variable(B.Sym))));
      break;
    case InvocationBinding::Kind::Literal:
      EntryFacts.push_back(
          Formula::atom(Constraint::eq(RegVar.plusConstant(-B.Literal))));
      break;
    }
  }

  // Location address facts: addresses are non-null, aligned, and child
  // addresses are parent + offset.
  for (uint32_t Id = 0; Id < Ctx.Locs.size(); ++Id) {
    const AbstractLocation &Loc = Ctx.Locs.loc(Id);
    if (Loc.Name.empty())
      continue;
    LinearExpr Addr = LinearExpr::variable(locAddrVar(Loc.Name));
    EntryFacts.push_back(
        Formula::atom(Constraint::ge(Addr.plusConstant(-1))));
    if (Loc.Align > 1)
      EntryFacts.push_back(
          Formula::atom(Constraint::divides(Loc.Align, Addr)));
    for (const auto &[Offset, Child] : Loc.Fields) {
      LinearExpr ChildAddr =
          LinearExpr::variable(locAddrVar(Ctx.Locs.loc(Child).Name));
      EntryFacts.push_back(Formula::atom(
          Constraint::eq(ChildAddr - Addr.plusConstant(Offset))));
    }
  }

  // Initial-value facts for declared locations.
  for (const LocationDecl &Decl : Pol.Locations) {
    AbsLocId Id = DeclaredLocs.at(Decl.Name);
    std::vector<AbsLocId> Leaves;
    Ctx.Locs.collectLeaves(Id, Leaves);
    for (AbsLocId Leaf : Leaves) {
      const AbstractLocation &Loc = Ctx.Locs.loc(Leaf);
      LinearExpr Val = LinearExpr::variable(locValueVar(Loc.Name));
      if (Decl.State.K == StateSpec::Kind::Init && Decl.State.Const) {
        EntryFacts.push_back(Formula::atom(
            Constraint::eq(Val.plusConstant(-*Decl.State.Const))));
        continue;
      }
      if (Decl.State.K == StateSpec::Kind::Null) {
        EntryFacts.push_back(Formula::atom(Constraint::eq(Val)));
        continue;
      }
      if (Decl.State.K == StateSpec::Kind::PointsTo &&
          Decl.State.Targets.size() <= 4 &&
          Loc.Type->isPointerLike() && !Loc.Type->isAggregate()) {
        // val = 0 (if may-null) or addr:target + offset.
        std::vector<FormulaRef> Cases;
        if (Decl.State.MayBeNull)
          Cases.push_back(Formula::atom(Constraint::eq(Val)));
        for (const auto &[Target, Offset] : Decl.State.Targets) {
          LinearExpr TargetAddr =
              LinearExpr::variable(locAddrVar(Target));
          Cases.push_back(Formula::atom(Constraint::eq(
              Val - TargetAddr.plusConstant(Offset))));
        }
        if (!Cases.empty())
          EntryFacts.push_back(Formula::disj(std::move(Cases)));
      }
    }
  }

  Ctx.EntryContext = simplify(Formula::conj(std::move(EntryFacts)));
}

std::optional<CheckContext> Preparer::run() {
  Ctx.M = &M;
  Ctx.Pol = &Pol;
  Ctx.Diags = &Diags;

  std::optional<cfg::Cfg> Graph = cfg::Cfg::build(M, Diags);
  if (!Graph)
    return std::nullopt;
  Ctx.Graph = std::move(*Graph);
  Ctx.Dom = std::make_unique<cfg::DominatorTree>(Ctx.Graph);
  Ctx.Loops = std::make_unique<cfg::LoopInfo>(Ctx.Graph, *Ctx.Dom);
  if (!Ctx.Loops->isReducible()) {
    Diags.report(DiagSeverity::Fatal, SafetyKind::Unsupported,
                 "the control-flow graph is irreducible; the "
                 "induction-iteration method requires natural loops");
    return std::nullopt;
  }

  // Declared host locations.
  for (const LocationDecl &Decl : Pol.Locations)
    DeclaredLocs[Decl.Name] = createLocationTree(
        Decl.Name, Decl.Type, Decl.Summary, /*Align=*/0);

  createFrameLocations();
  applyRules();
  buildEntryStore();
  if (Failed)
    return std::nullopt;
  buildEntryContext();
  return std::move(Ctx);
}

} // namespace

std::optional<CheckContext> checker::prepare(const sparc::Module &M,
                                             const Policy &Pol,
                                             DiagnosticEngine &Diags) {
  Preparer P(M, Pol, Diags);
  return P.run();
}
