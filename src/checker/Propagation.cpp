//===- Propagation.cpp ----------------------------------------------------===//

#include "checker/Propagation.h"

#include "analysis/KnownBits.h"
#include "support/CheckedInt.h"
#include "support/Governor.h"

#include <algorithm>
#include <cassert>
#include <set>

using namespace mcsafe;
using namespace mcsafe::checker;
using namespace mcsafe::typestate;
using namespace mcsafe::sparc;
using mcsafe::analysis::KnownBits;
using mcsafe::cfg::CfgEdge;
using mcsafe::cfg::CfgNode;
using mcsafe::cfg::EdgeKind;
using mcsafe::cfg::NodeId;
using mcsafe::cfg::NodeKind;

namespace {

Typestate immTypestate(int64_t Value) {
  Typestate Ts;
  Ts.Type = TypeFactory::int32();
  Ts.S = State::initConst(Value);
  Ts.A = Access::o();
  return Ts;
}

Typestate uninitTypestate() {
  Typestate Ts;
  Ts.Type = TypeFactory::top();
  Ts.S = State::uninit();
  Ts.A = Access::full();
  return Ts;
}

/// A value that cannot be used for anything (failed resolution).
Typestate poisonTypestate() {
  Typestate Ts;
  Ts.Type = TypeFactory::bottom();
  Ts.S = State::uninit();
  Ts.A = Access::none();
  return Ts;
}

Typestate initScalar(std::optional<int64_t> Const = std::nullopt) {
  Typestate Ts;
  Ts.Type = TypeFactory::int32();
  Ts.S = Const ? State::initConst(*Const) : State::init();
  Ts.A = Access::o();
  return Ts;
}

Typestate initScalarRange(std::optional<int64_t> Lo,
                          std::optional<int64_t> Hi) {
  Typestate Ts;
  Ts.Type = TypeFactory::int32();
  Ts.S = State::initRange(Lo, Hi);
  Ts.A = Access::o();
  return Ts;
}

/// Known bits of an operand's state (top unless an Init scalar).
KnownBits stateBits(const State &S) {
  return S.isInit() ? S.bits() : KnownBits::top();
}

/// An initialized int32 scalar carrying \p KB cross-refined against the
/// interval; falls back to the plain interval when the known-bits domain
/// is toggled off. \p Exact32 marks producers whose result is the signed
/// reading of its 32-bit pattern (bitwise ops, shifts).
Typestate initScalarBits(const CheckContext &Ctx, KnownBits KB,
                         std::optional<int64_t> Lo = std::nullopt,
                         std::optional<int64_t> Hi = std::nullopt,
                         bool Exact32 = false) {
  if (!Ctx.KnownBits)
    return initScalarRange(Lo, Hi);
  analysis::BitsRange R = analysis::crossRefine(KB, Lo, Hi, Exact32);
  Typestate Ts;
  Ts.Type = TypeFactory::int32();
  Ts.S = State::initBits(R.Bits, R.Lo, R.Hi, Exact32);
  Ts.A = Access::o();
  return Ts;
}

/// Interval addition/subtraction: (x + y) and (x - y) bounds, dropping a
/// bound on missing input or overflow.
std::optional<int64_t> boundAdd(std::optional<int64_t> A,
                                std::optional<int64_t> B) {
  if (!A || !B)
    return std::nullopt;
  return checkedAdd(*A, *B);
}
std::optional<int64_t> boundSub(std::optional<int64_t> A,
                                std::optional<int64_t> B) {
  if (!A || !B)
    return std::nullopt;
  return checkedSub(*A, *B);
}
/// Scales a bound by a positive factor.
std::optional<int64_t> boundScale(std::optional<int64_t> A,
                                  int64_t Factor) {
  if (!A)
    return std::nullopt;
  return checkedMul(*A, Factor);
}

/// The second operand's typestate (imm or rs2).
Typestate operandTs(const AbstractStore &In, int32_t Depth,
                    const Instruction &Inst) {
  if (Inst.UsesImm)
    return immTypestate(Inst.Imm);
  return In.reg(Depth, Inst.Rs2);
}

/// Looks for an embedded-array child of \p Loc starting exactly at
/// \p Offset; returns InvalidLoc otherwise.
AbsLocId embeddedArrayAt(const LocationTable &Locs, AbsLocId Loc,
                         int64_t Offset) {
  for (const auto &[FieldOffset, Child] : Locs.loc(Loc).Fields) {
    if (FieldOffset != Offset)
      continue;
    const AbstractLocation &ChildLoc = Locs.loc(Child);
    if (ChildLoc.Summary && ChildLoc.extent() > ChildLoc.Size)
      return Child;
  }
  return InvalidLoc;
}

/// Result of evalAdd: the value typestate plus the resolved usage.
struct AddResult {
  Typestate Ts;
  AddUsage Usage = AddUsage::None;
  /// For ArrayIndex: which operand was the base (true = A/rs1).
  bool BaseIsFirst = true;
};

AddResult evalAdd(const CheckContext &Ctx, const Typestate &A,
                  const Typestate &B, bool IsSub) {
  AddResult R;

  auto ScalarResult = [&](const Typestate &X, const Typestate &Y) {
    R.Usage = AddUsage::Scalar;
    if (!X.S.isInitialized() || !Y.S.isInitialized()) {
      R.Ts = uninitTypestate();
      return;
    }
    // Interval arithmetic: (x+y) or (x-y), with carry-aware known-bits
    // propagation alongside.
    std::optional<int64_t> Lo, Hi;
    if (IsSub) {
      Lo = boundSub(X.S.lower(), Y.S.upper());
      Hi = boundSub(X.S.upper(), Y.S.lower());
    } else {
      Lo = boundAdd(X.S.lower(), Y.S.lower());
      Hi = boundAdd(X.S.upper(), Y.S.upper());
    }
    KnownBits KB = IsSub ? KnownBits::sub(stateBits(X.S), stateBits(Y.S))
                         : KnownBits::add(stateBits(X.S), stateBits(Y.S));
    R.Ts = initScalarBits(Ctx, KB, Lo, Hi);
  };

  auto PointerPlus = [&](const Typestate &Ptr, const Typestate &Idx) {
    const TypeRef &T = Ptr.Type;
    if (T->kind() == TypeKind::ArrayBase ||
        T->kind() == TypeKind::ArrayInterior) {
      // Array-index calculation (paper Table 1, row 2): the result may
      // point to any element; type becomes t(n].
      R.Usage = AddUsage::ArrayIndex;
      R.Ts.Type = T->kind() == TypeKind::ArrayBase
                      ? TypeFactory::arrayInterior(T->pointee(),
                                                   T->arraySize())
                      : T;
      R.Ts.S = Ptr.S;
      R.Ts.A = Ptr.A;
      return;
    }
    // Ptr(T) displaced by a constant: field-address computation.
    if (T->kind() == TypeKind::Ptr && Idx.S.constant()) {
      int64_t Disp = (IsSub ? -1 : 1) * *Idx.S.constant();
      R.Usage = AddUsage::PtrDisp;
      std::set<PtrTarget> NewTargets;
      for (const PtrTarget &Target : Ptr.S.targets())
        NewTargets.insert(PtrTarget{Target.Loc, Target.Offset + Disp});
      // If the (single) displaced target lands on the start of an
      // embedded array, the value becomes a base pointer to it.
      if (NewTargets.size() == 1 && !Ptr.S.mayBeNull()) {
        const PtrTarget &Target = *NewTargets.begin();
        AbsLocId Arr =
            embeddedArrayAt(Ctx.Locs, Target.Loc, Target.Offset);
        if (Arr != InvalidLoc) {
          const AbstractLocation &ArrLoc = Ctx.Locs.loc(Arr);
          R.Ts.Type = TypeFactory::arrayBase(
              ArrLoc.Type,
              ArraySize::literal(ArrLoc.extent() / ArrLoc.Size));
          R.Ts.S = State::pointsToLoc(Arr, 0);
          R.Ts.A = Ptr.A;
          return;
        }
      }
      R.Ts.Type = T;
      R.Ts.S = State::pointsTo(std::move(NewTargets), Ptr.S.mayBeNull());
      R.Ts.A = Ptr.A;
      return;
    }
    // Pointer plus an unknown non-index value: unusable.
    R.Usage = AddUsage::None;
    R.Ts = poisonTypestate();
  };

  bool APtr = A.Type->isPointerLike() && A.S.isPointsTo();
  bool BPtr = B.Type->isPointerLike() && B.S.isPointsTo();
  if (APtr && !BPtr) {
    PointerPlus(A, B);
    R.BaseIsFirst = true;
    return R;
  }
  if (BPtr && !APtr && !IsSub) {
    PointerPlus(B, A);
    R.BaseIsFirst = false;
    return R;
  }
  if (APtr && BPtr) {
    // Pointer difference yields an integer; pointer sum is meaningless.
    if (IsSub) {
      R.Usage = AddUsage::Scalar;
      R.Ts = initScalar();
    } else {
      R.Usage = AddUsage::None;
      R.Ts = poisonTypestate();
    }
    return R;
  }
  ScalarResult(A, B);
  return R;
}

/// Shared address resolution for loads/stores. \p AccessSize is the
/// load/store width.
MemFacts resolveMem(const CheckContext &Ctx, const AbstractStore &In,
                    int32_t Depth, const Instruction &Inst,
                    uint32_t AccessSize) {
  MemFacts F;
  Typestate Base = In.reg(Depth, Inst.Rs1);
  Reg BaseReg = Inst.Rs1;
  bool IndexIsImm = Inst.UsesImm;
  int64_t IndexImm = Inst.Imm;
  Reg IndexReg = Inst.Rs2;

  // When the architectural rs1 is not the pointer, the roles may be
  // swapped in the reg+reg form.
  if (!Base.S.isPointsTo() && !Inst.UsesImm) {
    Typestate Alt = In.reg(Depth, Inst.Rs2);
    if (Alt.S.isPointsTo()) {
      Base = Alt;
      BaseReg = Inst.Rs2;
      IndexReg = Inst.Rs1;
    }
  }
  // A register index whose value is a known constant acts as an
  // immediate (common for %g0: [reg + %g0]).
  if (!IndexIsImm) {
    Typestate IdxTs = In.reg(Depth, IndexReg);
    if (IdxTs.S.constant()) {
      IndexIsImm = true;
      IndexImm = *IdxTs.S.constant();
    }
  }

  F.BaseReg = BaseReg;
  F.BaseDepth = Depth;
  F.IndexIsImm = IndexIsImm;
  F.IndexImm = IndexImm;
  F.IndexReg = IndexReg;

  if (!Base.S.isPointsTo())
    return F; // Unresolved: base is not a valid pointer.
  F.BaseMayBeNull = Base.S.mayBeNull();

  const TypeRef &T = Base.Type;
  if (T->kind() == TypeKind::ArrayBase ||
      T->kind() == TypeKind::ArrayInterior) {
    F.ArrayAccess = true;
    F.Interior = T->kind() == TypeKind::ArrayInterior;
    F.Bound = T->arraySize();
    F.ElemSize = T->pointee()->sizeInBytes();
    if (F.ElemSize != AccessSize)
      return F; // Element/access width mismatch: unresolved.
    // Each points-to target must resolve to its element summary. The
    // index (even a constant one) is deliberately ignored here: whether
    // it is in bounds and aligned is the global-verification phase's
    // question, not an addressing question.
    for (const PtrTarget &Target : Base.S.targets()) {
      AbsLocId Leaf =
          Ctx.Locs.resolveField(Target.Loc, Target.Offset, AccessSize);
      if (Leaf == InvalidLoc)
        return F;
      F.Leaves.push_back(Leaf);
    }
    if (F.Leaves.empty())
      return F;
    F.Unresolved = false;
    F.Strong = false; // Array summaries only admit weak updates.
    return F;
  }

  if (T->kind() == TypeKind::Ptr) {
    if (!IndexIsImm)
      return F; // Register offsets into non-array memory: unresolved.
    for (const PtrTarget &Target : Base.S.targets()) {
      AbsLocId Leaf = Ctx.Locs.resolveField(
          Target.Loc, Target.Offset + IndexImm, AccessSize);
      if (Leaf == InvalidLoc)
        return F;
      F.Leaves.push_back(Leaf);
    }
    if (F.Leaves.empty())
      return F;
    std::sort(F.Leaves.begin(), F.Leaves.end());
    F.Leaves.erase(std::unique(F.Leaves.begin(), F.Leaves.end()),
                   F.Leaves.end());
    F.Unresolved = false;
    F.Strong =
        F.Leaves.size() == 1 && !Ctx.Locs.loc(F.Leaves[0]).Summary;
    return F;
  }
  return F;
}

/// Resolves the points-to state described by a policy StateSpec (used for
/// trusted-call return values).
State resolveSummaryState(const CheckContext &Ctx,
                          const policy::StateSpec &Spec) {
  switch (Spec.K) {
  case policy::StateSpec::Kind::Uninit:
    return State::uninit();
  case policy::StateSpec::Kind::Init:
    return Spec.Const ? State::initConst(*Spec.Const) : State::init();
  case policy::StateSpec::Kind::Null:
    return State::nullPtr();
  case policy::StateSpec::Kind::PointsTo: {
    std::set<PtrTarget> Targets;
    for (const auto &[Name, Offset] : Spec.Targets) {
      AbsLocId Id = Ctx.Locs.lookup(Name);
      if (Id != InvalidLoc)
        Targets.insert(PtrTarget{Id, Offset});
    }
    return State::pointsTo(std::move(Targets), Spec.MayBeNull);
  }
  }
  return State::uninit();
}

} // namespace

InstFacts checker::resolveInst(const CheckContext &Ctx, NodeId Id,
                               const AbstractStore &In) {
  InstFacts Facts;
  const CfgNode &Node = Ctx.Graph.node(Id);
  if (Node.Kind != NodeKind::Normal || In.isTop())
    return Facts;
  const Instruction &Inst = Ctx.Graph.inst(Id);
  int32_t Depth = Node.WindowDepth;

  if (isLoad(Inst.Op) || isStore(Inst.Op)) {
    Facts.Mem = resolveMem(Ctx, In, Depth, Inst, memAccessSize(Inst.Op));
    return Facts;
  }
  if (Inst.Op == Opcode::ADD || Inst.Op == Opcode::SUB ||
      Inst.Op == Opcode::ADDCC || Inst.Op == Opcode::SUBCC) {
    Typestate A = In.reg(Depth, Inst.Rs1);
    Typestate B = operandTs(In, Depth, Inst);
    bool IsSub = Inst.Op == Opcode::SUB || Inst.Op == Opcode::SUBCC;
    AddResult R = evalAdd(Ctx, A, B, IsSub);
    Facts.Add = R.Usage;
    if (R.Usage == AddUsage::ArrayIndex) {
      const Typestate &Base = R.BaseIsFirst ? A : B;
      Facts.Mem.ArrayAccess = true;
      Facts.Mem.Interior = Base.Type->kind() == TypeKind::ArrayInterior;
      Facts.Mem.Bound = Base.Type->arraySize();
      Facts.Mem.ElemSize = Base.Type->pointee()->sizeInBytes();
      Facts.Mem.BaseReg = R.BaseIsFirst ? Inst.Rs1 : Inst.Rs2;
      Facts.Mem.BaseDepth = Depth;
      Facts.Mem.BaseMayBeNull = Base.S.mayBeNull();
      Facts.Mem.Unresolved = false;
      if (R.BaseIsFirst) {
        Facts.Mem.IndexIsImm = Inst.UsesImm;
        Facts.Mem.IndexImm = Inst.Imm;
        Facts.Mem.IndexReg = Inst.Rs2;
      } else {
        Facts.Mem.IndexIsImm = false;
        Facts.Mem.IndexReg = Inst.Rs1;
      }
    }
    return Facts;
  }
  return Facts;
}

AbstractStore checker::transfer(const CheckContext &Ctx, NodeId Id,
                                const AbstractStore &In) {
  if (In.isTop())
    return In; // Strict in Top: unvisited stays unvisited.
  AbstractStore Out = In;
  const CfgNode &Node = Ctx.Graph.node(Id);
  int32_t Depth = Node.WindowDepth;

  // --- Trusted-call summary nodes. -----------------------------------------
  if (Node.Kind == NodeKind::TrustedCall) {
    const policy::TrustedSummary *Summary =
        Ctx.Pol->findTrusted(Node.TrustedCallee);
    // Caller-saved registers are clobbered.
    // SPARC calling convention: the out registers and %g1 are
    // caller-saved; %g2-%g4 are application registers the host's
    // functions preserve.
    static const uint8_t Clobbered[] = {8, 9, 10, 11, 12, 13, 15, 1};
    for (uint8_t R : Clobbered)
      Out.setReg(Depth, Reg(R), uninitTypestate());
    Typestate Icc;
    Icc.Type = TypeFactory::int32();
    Icc.S = State::uninit();
    Icc.A = Access::o();
    Out.setIcc(Icc);
    Out.setIccOrigin(std::nullopt);
    if (Summary) {
      if (Summary->ReturnType) {
        Typestate Ret;
        Ret.Type = Summary->ReturnType;
        Ret.S = resolveSummaryState(Ctx, Summary->ReturnState);
        Ret.A = Summary->ReturnAccess;
        Out.setReg(Depth, O0, Ret);
      }
      for (const std::string &Written : Summary->Writes) {
        AbsLocId Target = Ctx.Locs.lookup(Written);
        if (Target == InvalidLoc)
          continue;
        std::vector<AbsLocId> Leaves;
        Ctx.Locs.collectLeaves(Target, Leaves);
        for (AbsLocId Leaf : Leaves) {
          Typestate New;
          New.Type = Ctx.Locs.loc(Leaf).Type;
          New.S = State::init();
          auto It = Ctx.GrantedAccess.find(Leaf);
          New.A = It == Ctx.GrantedAccess.end() ? Access::o() : It->second;
          // Same strength rules as stores: non-summary locations receive
          // the written state exactly; summaries only weaken.
          if (Ctx.Locs.loc(Leaf).Summary)
            Out.setLoc(Leaf, Typestate::meet(Out.loc(Leaf), New));
          else
            Out.setLoc(Leaf, New);
        }
      }
    }
    return Out;
  }
  if (Node.Kind != NodeKind::Normal)
    return Out;

  const Instruction &Inst = Ctx.Graph.inst(Id);
  switch (Inst.Op) {
  // --- Moves, logic, shifts. -----------------------------------------------
  case Opcode::OR:
  case Opcode::ORCC: {
    Typestate A = In.reg(Depth, Inst.Rs1);
    Typestate B = operandTs(In, Depth, Inst);
    Typestate Result;
    if (Inst.Rs1.isZero()) {
      Result = B; // mov.
    } else if (!Inst.UsesImm && Inst.Rs2.isZero()) {
      Result = A;
    } else if (Inst.UsesImm && Inst.Imm == 0) {
      Result = A;
    } else if (A.S.constant() && B.S.constant()) {
      Result = initScalar(*A.S.constant() | *B.S.constant());
    } else if (A.S.isInitialized() && B.S.isInitialized()) {
      Result = initScalarBits(
          Ctx, KnownBits::bitOr(stateBits(A.S), stateBits(B.S)),
          std::nullopt, std::nullopt, /*Exact32=*/true);
    } else {
      Result = uninitTypestate();
    }
    Out.setReg(Depth, Inst.Rd, Result);
    if (Inst.Op == Opcode::ORCC) {
      Out.setIcc(initScalar());
      // tst R (orcc R,%g0,%g0) allows null-test refinement.
      if (Inst.Rd.isZero() && !Inst.UsesImm && Inst.Rs2.isZero())
        Out.setIccOrigin(AbstractStore::IccOrigin{Depth, Inst.Rs1, 0});
      else
        Out.setIccOrigin(std::nullopt);
    }
    break;
  }
  case Opcode::AND:
  case Opcode::ANDN:
  case Opcode::XOR:
  case Opcode::XNOR:
  case Opcode::ORN:
  case Opcode::ANDCC:
  case Opcode::XORCC: {
    Typestate A = In.reg(Depth, Inst.Rs1);
    Typestate B = operandTs(In, Depth, Inst);
    std::optional<int64_t> Folded;
    if (A.S.constant() && B.S.constant()) {
      int64_t X = *A.S.constant(), Y = *B.S.constant();
      switch (Inst.Op) {
      case Opcode::AND:
      case Opcode::ANDCC:
        Folded = X & Y;
        break;
      case Opcode::ANDN:
        Folded = X & ~Y;
        break;
      case Opcode::XOR:
      case Opcode::XORCC:
        Folded = X ^ Y;
        break;
      case Opcode::XNOR:
        Folded = ~(X ^ Y);
        break;
      case Opcode::ORN:
        Folded = X | ~Y;
        break;
      default:
        break;
      }
    }
    if (!A.S.isInitialized() || !B.S.isInitialized()) {
      Out.setReg(Depth, Inst.Rd, uninitTypestate());
    } else if (Folded) {
      Out.setReg(Depth, Inst.Rd, initScalar(Folded));
    } else {
      KnownBits KA = stateBits(A.S), KB = stateBits(B.S);
      KnownBits Result;
      switch (Inst.Op) {
      case Opcode::AND:
      case Opcode::ANDCC:
        Result = KnownBits::bitAnd(KA, KB);
        break;
      case Opcode::ANDN:
        Result = KnownBits::bitAndNot(KA, KB);
        break;
      case Opcode::XOR:
      case Opcode::XORCC:
        Result = KnownBits::bitXor(KA, KB);
        break;
      case Opcode::XNOR:
        Result = KnownBits::bitXnor(KA, KB);
        break;
      case Opcode::ORN:
        Result = KnownBits::bitOrNot(KA, KB);
        break;
      default:
        break;
      }
      // x & m with m >= 0 lies in [0, m].
      std::optional<int64_t> Lo, Hi;
      if ((Inst.Op == Opcode::AND || Inst.Op == Opcode::ANDCC) &&
          ((B.S.constant() && *B.S.constant() >= 0) ||
           (A.S.constant() && *A.S.constant() >= 0))) {
        Lo = 0;
        Hi = B.S.constant() && *B.S.constant() >= 0 ? *B.S.constant()
                                                    : *A.S.constant();
      }
      // A mask constant tracked as an int64 beyond INT32_MAX (sethi
      // material) makes [0, m] an unwrapped bound that can disagree
      // with the signed reading of the pattern; drop the exactness
      // claim rather than let crossRefine contradict the two.
      Out.setReg(Depth, Inst.Rd,
                 initScalarBits(Ctx, Result, Lo, Hi,
                                /*Exact32=*/!Hi || *Hi <= INT32_MAX));
    }
    if (setsIcc(Inst.Op)) {
      Out.setIcc(initScalar());
      Out.setIccOrigin(std::nullopt);
    }
    break;
  }
  case Opcode::SLL:
  case Opcode::SRL:
  case Opcode::SRA:
  case Opcode::UMUL:
  case Opcode::SMUL:
  case Opcode::UDIV:
  case Opcode::SDIV: {
    Typestate A = In.reg(Depth, Inst.Rs1);
    Typestate B = operandTs(In, Depth, Inst);
    std::optional<int64_t> Folded;
    if (A.S.constant() && B.S.constant()) {
      int64_t X = *A.S.constant(), Y = *B.S.constant();
      switch (Inst.Op) {
      // Shift folds mask the count through sparc::shiftCount, exactly
      // like the interpreter (a shift by 33 shifts by 1).
      case Opcode::SLL:
        Folded = static_cast<int64_t>(static_cast<int32_t>(
            static_cast<uint32_t>(X) << shiftCount(Y)));
        break;
      case Opcode::SRL:
        Folded = static_cast<int64_t>(static_cast<uint32_t>(X) >>
                                      shiftCount(Y));
        break;
      case Opcode::SRA:
        Folded = static_cast<int64_t>(static_cast<int32_t>(X) >>
                                      shiftCount(Y));
        break;
      case Opcode::UMUL:
      case Opcode::SMUL:
        Folded = X * Y;
        break;
      case Opcode::UDIV:
      case Opcode::SDIV:
        if (Y != 0)
          Folded = X / Y;
        break;
      default:
        break;
      }
    }
    if (!A.S.isInitialized() || !B.S.isInitialized()) {
      Out.setReg(Depth, Inst.Rd, uninitTypestate());
      break;
    }
    if (Folded) {
      Out.setReg(Depth, Inst.Rd, initScalar(Folded));
      break;
    }
    // Interval propagation for shifts/multiplies by a known positive
    // constant (monotone scalings). Shift distances go through
    // sparc::shiftCount so a count of 33 scales by 2, like the machine.
    std::optional<int64_t> Lo, Hi;
    std::optional<int64_t> Factor;
    if (Inst.Op == Opcode::SLL && B.S.constant() &&
        shiftCount(*B.S.constant()) < 31)
      Factor = int64_t(1) << shiftCount(*B.S.constant());
    else if ((Inst.Op == Opcode::SMUL || Inst.Op == Opcode::UMUL) &&
             B.S.constant() && *B.S.constant() > 0)
      Factor = *B.S.constant();
    if (Factor) {
      Lo = boundScale(A.S.lower(), *Factor);
      Hi = boundScale(A.S.upper(), *Factor);
    } else if (Inst.Op == Opcode::SRA && B.S.constant()) {
      // Arithmetic right shift is floorDiv by 2^k: monotone.
      int64_t K = shiftCount(*B.S.constant());
      if (A.S.lower())
        Lo = floorDiv(*A.S.lower(), int64_t(1) << K);
      if (A.S.upper())
        Hi = floorDiv(*A.S.upper(), int64_t(1) << K);
    }
    KnownBits KB;
    switch (Inst.Op) {
    case Opcode::SLL:
      KB = KnownBits::shl(stateBits(A.S), stateBits(B.S));
      break;
    case Opcode::SRL:
      KB = KnownBits::lshr(stateBits(A.S), stateBits(B.S));
      break;
    case Opcode::SRA:
      KB = KnownBits::ashr(stateBits(A.S), stateBits(B.S));
      break;
    default:
      break; // Multiplies and divides keep top bits.
    }
    // Exact32 (value == signed-int32 reading of the result pattern)
    // needs two guards for shifts. An effective count of 0 (imm 32/64
    // mask to 0; an abstract count may be compatible with 0) passes the
    // operand through unchanged, so the claim only holds if the operand
    // already made it. And the SLL/SRA bounds above are unwrapped
    // mathematical scalings: pairing them with the pattern claim is
    // only sound when they provably stay inside int32 — e.g. sll of
    // [2^29, 2^29+3] by 2 wraps negative on the machine while the
    // scaled bounds escape past INT32_MAX, and the claim would let
    // crossRefine turn the pattern's known sign bit plus the escaped
    // bounds into a false unreachability witness.
    bool CountNonzero = (stateBits(B.S).Ones & 31u) != 0;
    auto InInt32 = [](std::optional<int64_t> L, std::optional<int64_t> H) {
      return L && H && *L >= INT32_MIN && *H <= INT32_MAX;
    };
    bool Exact32 = false;
    switch (Inst.Op) {
    case Opcode::SRL:
      // No scaled bounds are attached: a nonzero count clears the sign
      // bit, otherwise the result is the operand and must itself be
      // exact (flagged, or provably inside int32).
      Exact32 = CountNonzero || A.S.pattern32() ||
                InInt32(A.S.lower(), A.S.upper());
      break;
    case Opcode::SLL:
    case Opcode::SRA:
      // With bounds attached, both must stay inside int32 (this also
      // covers the count-0 pass-through, whose bounds are the
      // operand's). Without bounds there is no unwrapped claim to
      // conflict with, so only the pass-through case needs the operand
      // to be exact.
      Exact32 = Lo || Hi ? InInt32(Lo, Hi)
                         : CountNonzero || A.S.pattern32();
      break;
    default:
      break; // Multiplies and divides never claim exactness.
    }
    Out.setReg(Depth, Inst.Rd, initScalarBits(Ctx, KB, Lo, Hi, Exact32));
    break;
  }
  case Opcode::SETHI:
    Out.setReg(Depth, Inst.Rd,
               initScalar(static_cast<int64_t>(Inst.Imm) << 10));
    break;

  // --- Add / subtract (overloaded). ---------------------------------------
  case Opcode::ADD:
  case Opcode::SUB:
  case Opcode::ADDCC:
  case Opcode::SUBCC: {
    Typestate A = In.reg(Depth, Inst.Rs1);
    Typestate B = operandTs(In, Depth, Inst);
    bool IsSub = Inst.Op == Opcode::SUB || Inst.Op == Opcode::SUBCC;
    AddResult R = evalAdd(Ctx, A, B, IsSub);
    Out.setReg(Depth, Inst.Rd, R.Ts);
    if (setsIcc(Inst.Op)) {
      Out.setIcc(initScalar());
      // cmp R, imm / cmp R, %g0: record the origin for edge refinement.
      if (Inst.Op == Opcode::SUBCC && Inst.Rd.isZero()) {
        std::optional<int64_t> CmpImm;
        if (Inst.UsesImm)
          CmpImm = Inst.Imm;
        else if (Inst.Rs2.isZero())
          CmpImm = 0;
        else if (Typestate Rhs = In.reg(Depth, Inst.Rs2);
                 Rhs.S.constant())
          CmpImm = Rhs.S.constant();
        if (CmpImm)
          Out.setIccOrigin(
              AbstractStore::IccOrigin{Depth, Inst.Rs1, *CmpImm});
        else
          Out.setIccOrigin(std::nullopt);
      } else {
        Out.setIccOrigin(std::nullopt);
      }
    }
    break;
  }

  // --- Memory. --------------------------------------------------------------
  case Opcode::LD:
  case Opcode::LDSB:
  case Opcode::LDSH:
  case Opcode::LDUB:
  case Opcode::LDUH: {
    MemFacts F = resolveMem(Ctx, In, Depth, Inst, memAccessSize(Inst.Op));
    if (F.Unresolved) {
      Out.setReg(Depth, Inst.Rd, poisonTypestate());
      break;
    }
    Typestate Loaded = Typestate::top();
    for (AbsLocId Leaf : F.Leaves)
      Loaded = Typestate::meet(Loaded, In.loc(Leaf));
    Out.setReg(Depth, Inst.Rd, Loaded);
    break;
  }
  case Opcode::ST:
  case Opcode::STB:
  case Opcode::STH: {
    MemFacts F = resolveMem(Ctx, In, Depth, Inst, memAccessSize(Inst.Op));
    if (F.Unresolved)
      break; // The violation is reported by annotation/local checks.
    Typestate Value = In.reg(Depth, Inst.Rd);
    for (AbsLocId Leaf : F.Leaves) {
      Typestate New;
      New.Type = Ctx.Locs.loc(Leaf).Type; // Locations keep their type.
      New.S = Value.S;
      New.A = Value.A;
      // Storing the integer constant 0 into a pointer-typed location is
      // a null-pointer store.
      if (New.Type->isPointerLike() && Value.S.constant() &&
          *Value.S.constant() == 0)
        New.S = State::nullPtr();
      if (F.Strong)
        Out.setLoc(Leaf, New);
      else
        Out.setLoc(Leaf, Typestate::meet(Out.loc(Leaf), New));
    }
    break;
  }

  // --- Register windows. ----------------------------------------------------
  case Opcode::SAVE: {
    // Window shift: new %i = old %o; new %l and %o are uninitialized.
    for (uint8_t K = 0; K < 8; ++K)
      Out.setReg(Depth + 1, Reg(24 + K), In.reg(Depth, Reg(8 + K)));
    for (uint8_t K = 0; K < 8; ++K)
      Out.setReg(Depth + 1, Reg(16 + K), uninitTypestate());
    for (uint8_t K = 0; K < 8; ++K)
      Out.setReg(Depth + 1, Reg(8 + K), uninitTypestate());
    // The destination (normally the new %sp) is rs1 + operand computed in
    // the old window; with a frame annotation it points at the frame.
    auto FrameIt = Ctx.FrameLocs.find(Id);
    if (FrameIt != Ctx.FrameLocs.end() && Inst.Rd == SP) {
      Typestate Sp;
      const AbstractLocation &Frame = Ctx.Locs.loc(FrameIt->second);
      Sp.Type = TypeFactory::ptr(Frame.Type);
      Sp.S = State::pointsToLoc(FrameIt->second, 0);
      Sp.A = Access::fo();
      Out.setReg(Depth + 1, SP, Sp);
      // The new %fp (= the caller's %sp) addresses the frame from one
      // past its end: [%fp - k] resolves at offset Size - k.
      Typestate Fp;
      Fp.Type = TypeFactory::ptr(Frame.Type);
      Fp.S = State::pointsToLoc(FrameIt->second, Frame.Size);
      Fp.A = Access::fo();
      Out.setReg(Depth + 1, FP, Fp);
    } else if (!Inst.Rd.isZero()) {
      Typestate A = In.reg(Depth, Inst.Rs1);
      Typestate B = operandTs(In, Depth, Inst);
      Out.setReg(Depth + 1, Inst.Rd, evalAdd(Ctx, A, B, false).Ts);
    }
    break;
  }
  case Opcode::RESTORE: {
    Typestate Result;
    bool WriteResult = !Inst.Rd.isZero();
    if (WriteResult) {
      Typestate A = In.reg(Depth, Inst.Rs1);
      Typestate B = operandTs(In, Depth, Inst);
      Result = evalAdd(Ctx, A, B, false).Ts;
    }
    // Window shift back: caller's %o = callee's %i.
    for (uint8_t K = 0; K < 8; ++K)
      Out.setReg(Depth - 1, Reg(8 + K), In.reg(Depth, Reg(24 + K)));
    // The callee window's contents are gone.
    for (uint8_t K = 8; K < 32; ++K)
      Out.setReg(Depth, Reg(K), AbstractStore::defaultTypestate());
    if (WriteResult)
      Out.setReg(Depth - 1, Inst.Rd, Result);
    break;
  }

  // --- Control transfer. -----------------------------------------------------
  case Opcode::CALL:
    Out.setReg(Depth, O7, initScalar());
    break;
  case Opcode::JMPL:
    if (!Inst.Rd.isZero())
      Out.setReg(Depth, Inst.Rd, initScalar());
    break;
  default:
    break; // Branches and nops do not change the store.
  }
  return Out;
}

AbstractStore checker::refineEdge(const CheckContext &Ctx,
                                  const AbstractStore &Out,
                                  const CfgEdge &Edge) {
  if (Out.isTop())
    return Out;
  if (Edge.Kind == EdgeKind::Flow)
    return Out;
  const std::optional<AbstractStore::IccOrigin> &Origin = Out.iccOrigin();
  if (!Origin)
    return Out;

  // Which relation does this edge assert about (R - Imm)?
  enum class Rel { None, Eq, Ne, Lt, Le, Gt, Ge };
  Rel Relation = Rel::None;
  bool Taken = Edge.Kind == EdgeKind::Taken;
  auto Pick = [Taken](Rel T, Rel N) { return Taken ? T : N; };
  switch (Edge.BranchOp) {
  case Opcode::BE:
    Relation = Pick(Rel::Eq, Rel::Ne);
    break;
  case Opcode::BNE:
    Relation = Pick(Rel::Ne, Rel::Eq);
    break;
  case Opcode::BL:
  case Opcode::BNEG:
    Relation = Pick(Rel::Lt, Rel::Ge);
    break;
  case Opcode::BGE:
  case Opcode::BPOS:
    Relation = Pick(Rel::Ge, Rel::Lt);
    break;
  case Opcode::BG:
    Relation = Pick(Rel::Gt, Rel::Le);
    break;
  case Opcode::BLE:
    Relation = Pick(Rel::Le, Rel::Gt);
    break;
  default:
    return Out; // Unsigned/overflow branches carry no refinement.
  }

  AbstractStore Refined = Out;
  Typestate Ts = Out.reg(Origin->Depth, Origin->R);
  if (Ts.S.isPointsTo() && Origin->Imm == 0) {
    if (Relation == Rel::Eq) {
      // The pointer compared equal to 0: definitely null here.
      Ts.S = State::nullPtr();
      Refined.setReg(Origin->Depth, Origin->R, Ts);
    } else if (Relation == Rel::Ne && Ts.S.mayBeNull() &&
               !Ts.S.targets().empty()) {
      // Compared unequal to 0: drop null.
      Ts.S = State::pointsTo(Ts.S.targets(), /*MayBeNull=*/false);
      Refined.setReg(Origin->Depth, Origin->R, Ts);
    }
    return Refined;
  }
  if (!Ts.S.isInit())
    return Refined;
  // Interval refinement of R against Imm.
  std::optional<int64_t> Lo = Ts.S.lower(), Hi = Ts.S.upper();
  int64_t C = Origin->Imm;
  auto TightenHi = [&Hi](int64_t V) {
    Hi = Hi ? std::min(*Hi, V) : V;
  };
  auto TightenLo = [&Lo](int64_t V) {
    Lo = Lo ? std::max(*Lo, V) : V;
  };
  switch (Relation) {
  case Rel::Eq:
    TightenLo(C);
    TightenHi(C);
    break;
  case Rel::Lt:
    TightenHi(C - 1);
    break;
  case Rel::Le:
    TightenHi(C);
    break;
  case Rel::Gt:
    TightenLo(C + 1);
    break;
  case Rel::Ge:
    TightenLo(C);
    break;
  case Rel::Ne:
  case Rel::None:
    break;
  }
  // Cross-refine the tightened interval against the register's known
  // bits (branch bounds can fix leading bits; a known congruence class
  // rounds the new bounds inward).
  analysis::BitsRange BR =
      Ctx.KnownBits
          ? analysis::crossRefine(Ts.S.bits(), Lo, Hi, Ts.S.pattern32())
          : analysis::BitsRange{Ts.S.bits(), Lo, Hi, false};
  if (BR.Lo != Ts.S.lower() || BR.Hi != Ts.S.upper() ||
      BR.Bits != Ts.S.bits()) {
    Ts.S = State::initBits(BR.Bits, BR.Lo, BR.Hi, Ts.S.pattern32());
    Refined.setReg(Origin->Depth, Origin->R, Ts);
  }
  return Refined;
}

PropagationResult
checker::propagate(const CheckContext &Ctx,
                   const analysis::LivenessResult *Live) {
  if (Live && !Live->Converged)
    Live = nullptr; // Only a converged liveness result is trustworthy.
  PropagationResult Result;
  uint32_t N = Ctx.Graph.size();
  Result.In.assign(N, AbstractStore::top());
  Result.Out.assign(N, AbstractStore::top());

  // Deterministic worklist ordered by reverse postorder.
  std::vector<uint32_t> RpoIndex(N, UINT32_MAX);
  {
    std::vector<NodeId> Rpo = Ctx.Graph.reversePostOrder();
    for (uint32_t I = 0; I < Rpo.size(); ++I)
      RpoIndex[Rpo[I]] = I;
  }
  auto Less = [&RpoIndex](NodeId A, NodeId B) {
    if (RpoIndex[A] != RpoIndex[B])
      return RpoIndex[A] < RpoIndex[B];
    return A < B;
  };
  std::set<NodeId, decltype(Less)> Worklist(Less);
  Worklist.insert(Ctx.Graph.entry());

  // Interval widening after a few visits keeps counting loops finite.
  std::vector<uint32_t> Visits(N, 0);
  constexpr uint32_t WidenAfter = 8;

  uint64_t Budget = static_cast<uint64_t>(N) * 256 + 10000;
  while (!Worklist.empty()) {
    if (Result.NodeVisits++ > Budget) {
      Ctx.Diags->report(DiagSeverity::Warning, SafetyKind::None,
                        "typestate propagation exceeded its budget");
      break;
    }
    // A governor trip abandons the fixpoint mid-flight. The partial
    // result may be smaller than the true fixpoint, so the caller must
    // not run any later phase over it (SafetyChecker degrades to
    // Unknown when it sees the governor exhausted here).
    if (Ctx.Governor && !Ctx.Governor->poll("typestate/worklist"))
      break;
    NodeId Id = *Worklist.begin();
    Worklist.erase(Worklist.begin());

    AbstractStore NewIn = Id == Ctx.Graph.entry() ? Ctx.EntryStore
                                                  : AbstractStore::top();
    for (NodeId Pred : Ctx.Graph.node(Id).Preds) {
      const AbstractStore &PredOut = Result.Out[Pred];
      if (PredOut.isTop())
        continue;
      for (const CfgEdge &Edge : Ctx.Graph.node(Pred).Succs) {
        if (Edge.To != Id)
          continue;
        NewIn = AbstractStore::meet(NewIn,
                                    refineEdge(Ctx, PredOut, Edge));
      }
    }
    if (NewIn.isTop())
      continue; // Not yet reachable.
    if (Live)
      NewIn.pruneRegs([&](int32_t Depth, Reg R, const Typestate &Ts) {
        if (Live->liveIn(Id, Depth, R))
          return true;
        // A contradictory interval proves the paths meeting here cannot
        // both execute; that fact matters even for a dead register.
        auto Lo = Ts.S.lower(), Hi = Ts.S.upper();
        return Lo && Hi && *Lo > *Hi;
      });
    if (++Visits[Id] > WidenAfter) {
      NewIn = AbstractStore::widen(Result.In[Id], NewIn);
      // Widening drops any interval bound still in motion, but known
      // bits are never widened (the domain is finite), so rederive the
      // bounds the surviving bits imply — e.g. an in-loop and-mask keeps
      // its upper bound even after the counter feeding it widened to
      // +inf. Terminates: the rederived bounds are a monotone function
      // of the bits, which only ever lose precision across iterations.
      if (Ctx.KnownBits)
        NewIn.forEachReg([&](int32_t Depth, Reg R, const Typestate &Ts) {
          if (!Ts.S.isInit() || Ts.S.constant())
            return;
          analysis::BitsRange BR = analysis::crossRefine(
              Ts.S.bits(), Ts.S.lower(), Ts.S.upper(), Ts.S.pattern32());
          if (BR.Lo == Ts.S.lower() && BR.Hi == Ts.S.upper() &&
              BR.Bits == Ts.S.bits())
            return;
          Typestate Refined = Ts;
          Refined.S =
              State::initBits(BR.Bits, BR.Lo, BR.Hi, Ts.S.pattern32());
          NewIn.setReg(Depth, R, std::move(Refined));
        });
    }
    Result.In[Id] = NewIn;
    AbstractStore NewOut = transfer(Ctx, Id, NewIn);
    if (NewOut != Result.Out[Id]) {
      Result.Out[Id] = std::move(NewOut);
      for (const CfgEdge &Edge : Ctx.Graph.node(Id).Succs)
        Worklist.insert(Edge.To);
    }
  }
  return Result;
}
