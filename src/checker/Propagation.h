//===- Propagation.h - Phase 2: typestate propagation -----------*- C++ -*-===//
//
// Part of mcsafe, a reproduction of "Safety Checking of Machine Code"
// (Xu, Miller, Reps; PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Phase 2 annotates each instruction with an abstract store describing
/// the memory contents before its execution, via a worklist greatest-
/// fixpoint over the typestate lattice (paper Sections 4.2 and 5.1).
/// Overload resolution — deciding whether an add is a scalar addition, an
/// array-index calculation, or a pointer displacement, and which abstract
/// locations a load/store touches — falls out of the propagated types;
/// resolveInst() exposes that resolution to the annotation phase.
///
/// Branch edges refine points-to states using the recorded cmp origin
/// (e.g. a taken "bne" after "cmp %o0, 0" removes null from %o0's
/// points-to set), which is what lets correctly-guarded pointer walks
/// (Btree, PagingPolicy-style code) verify.
///
//===----------------------------------------------------------------------===//

#ifndef MCSAFE_CHECKER_PROPAGATION_H
#define MCSAFE_CHECKER_PROPAGATION_H

#include "analysis/Liveness.h"
#include "checker/CheckContext.h"
#include "typestate/AbstractStore.h"

#include <vector>

namespace mcsafe {
namespace checker {

/// How an add/sub was resolved.
enum class AddUsage : uint8_t {
  None,       ///< Not an add/sub, or operands untyped.
  Scalar,     ///< Integer arithmetic.
  ArrayIndex, ///< Array-index calculation: base t[n] + integer.
  PtrDisp,    ///< Pointer displacement by a constant (field address).
};

/// Resolution facts for a memory access (or array-index add).
struct MemFacts {
  /// Accessed leaf locations (one per points-to target that resolved).
  std::vector<typestate::AbsLocId> Leaves;
  /// All targets resolved to exactly one non-summary leaf.
  bool Strong = false;
  /// The base pointer's points-to set includes null.
  bool BaseMayBeNull = false;
  /// The address did not resolve (bad base type, unresolved field, ...).
  bool Unresolved = true;
  /// The base register actually used (rs1, or rs2 when roles swap).
  sparc::Reg BaseReg;
  int32_t BaseDepth = 0;

  // Array-access facts (base of type t[n] or t(n]).
  bool ArrayAccess = false;
  bool Interior = false;
  typestate::ArraySize Bound;
  uint32_t ElemSize = 0;
  bool IndexIsImm = true;
  int64_t IndexImm = 0;
  sparc::Reg IndexReg;
};

/// Everything the annotation phase needs to know about one node under
/// its in-store.
struct InstFacts {
  AddUsage Add = AddUsage::None;
  MemFacts Mem; ///< For loads, stores, and array-index adds.
};

/// Result of the propagation fixpoint.
struct PropagationResult {
  std::vector<typestate::AbstractStore> In;  ///< Per CFG node.
  std::vector<typestate::AbstractStore> Out; ///< Per CFG node.
  uint64_t NodeVisits = 0;
};

/// Runs the worklist fixpoint. When \p Live is given (and converged),
/// abstract-store entries of registers that are not live-in at a node
/// are pruned from that node's in-store: no later phase can consume a
/// fact about a dead register, so dropping the entry only shrinks the
/// stores the fixpoint pushes around. The one exception — entries whose
/// scalar interval is contradictory (lower > upper), which witness that
/// the paths meeting here are mutually exclusive — are always kept.
PropagationResult propagate(const CheckContext &Ctx,
                            const analysis::LivenessResult *Live = nullptr);

/// The abstract transformer for one node (exposed for tests).
typestate::AbstractStore transfer(const CheckContext &Ctx, cfg::NodeId Id,
                                  const typestate::AbstractStore &In);

/// Refines \p Out along an outgoing edge (condition-code-based points-to
/// refinement).
typestate::AbstractStore refineEdge(const CheckContext &Ctx,
                                    const typestate::AbstractStore &Out,
                                    const cfg::CfgEdge &Edge);

/// Overload resolution for node \p Id under \p In.
InstFacts resolveInst(const CheckContext &Ctx, cfg::NodeId Id,
                      const typestate::AbstractStore &In);

} // namespace checker
} // namespace mcsafe

#endif // MCSAFE_CHECKER_PROPAGATION_H
