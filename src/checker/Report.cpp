//===- Report.cpp ---------------------------------------------------------===//

#include "checker/Report.h"

#include <map>
#include <sstream>

using namespace mcsafe;
using namespace mcsafe::checker;
using namespace mcsafe::typestate;
using mcsafe::cfg::CfgNode;
using mcsafe::cfg::NodeId;
using mcsafe::cfg::NodeKind;

std::string checker::renderTypestateListing(const CheckContext &Ctx,
                                            const PropagationResult &Prop) {
  // Pick the first (primary) node per module instruction.
  std::map<uint32_t, NodeId> Primary;
  for (NodeId Id = 0; Id < Ctx.Graph.size(); ++Id) {
    const CfgNode &N = Ctx.Graph.node(Id);
    if (N.Kind != NodeKind::Normal || N.InstIndex == UINT32_MAX)
      continue;
    if (!Primary.count(N.InstIndex))
      Primary[N.InstIndex] = Id;
  }

  std::ostringstream OS;
  for (const auto &[Index, Id] : Primary) {
    const AbstractStore &In = Prop.In[Id];
    OS << (Index + 1) << ":\t" << Ctx.Graph.inst(Id).str() << '\n';
    if (In.isTop()) {
      OS << "\t(unreachable)\n";
      continue;
    }
    int32_t Depth = Ctx.Graph.node(Id).WindowDepth;
    In.forEachReg([&](int32_t D, sparc::Reg R, const Typestate &Ts) {
      if (D > Depth)
        return; // Stale deeper windows.
      OS << "\t";
      if (D != 0)
        OS << 'w' << D << '.';
      OS << R.name() << ": " << Ts.str(&Ctx.Locs) << '\n';
    });
    In.forEachLoc([&](AbsLocId Loc, const Typestate &Ts) {
      OS << "\t" << Ctx.Locs.loc(Loc).Name << ": " << Ts.str(&Ctx.Locs)
         << '\n';
    });
  }
  return OS.str();
}

std::string checker::renderObligations(const CheckContext &Ctx,
                                       const AnnotationResult &Annot) {
  std::ostringstream OS;
  for (const GlobalObligation &Ob : Annot.Obligations) {
    OS << "line " << Ctx.Graph.sourceLine(Ob.Node) << ": ["
       << safetyKindName(Ob.Kind) << "] " << Ob.Description << ": "
       << Ob.Q->str() << '\n';
  }
  return OS.str();
}
