//===- Report.h - Human-readable analysis reports ---------------*- C++ -*-===//
//
// Part of mcsafe, a reproduction of "Safety Checking of Machine Code"
// (Xu, Miller, Reps; PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renderers for the intermediate results of the analysis, in the shape
/// of the paper's figures: the per-instruction typestate listing of
/// Figure 6 and the per-instruction safety-precondition listing of
/// Figure 3. Used by the command-line tool's verbose mode and by tests.
///
//===----------------------------------------------------------------------===//

#ifndef MCSAFE_CHECKER_REPORT_H
#define MCSAFE_CHECKER_REPORT_H

#include "checker/Annotation.h"
#include "checker/CheckContext.h"
#include "checker/Propagation.h"

#include <string>

namespace mcsafe {
namespace checker {

/// Renders the Figure 6 view: each instruction with the abstract store
/// holding before it (registers of the visible windows, condition codes,
/// and tracked memory locations).
std::string renderTypestateListing(const CheckContext &Ctx,
                                   const PropagationResult &Prop);

/// Renders the Figure 3 view: the global safety preconditions attached
/// to each instruction, with their verification formulas.
std::string renderObligations(const CheckContext &Ctx,
                              const AnnotationResult &Annot);

} // namespace checker
} // namespace mcsafe

#endif // MCSAFE_CHECKER_REPORT_H
