//===- ReportCodec.cpp ----------------------------------------------------===//

#include "checker/ReportCodec.h"

using namespace mcsafe;
using namespace mcsafe::checker;

namespace {

void writeOpt32(ByteWriter &W, const std::optional<uint32_t> &V) {
  W.u8(V ? 1 : 0);
  W.u32(V ? *V : 0);
}

std::optional<uint32_t> readOpt32(ByteReader &R) {
  uint8_t Has = R.u8();
  uint32_t V = R.u32();
  if (Has > 1)
    R.fail();
  return Has == 1 ? std::optional<uint32_t>(V) : std::nullopt;
}

} // namespace

void checker::serializeCheckReport(ByteWriter &W, const CheckReport &Rep) {
  W.u8(Rep.InputsOk ? 1 : 0);
  W.u8(Rep.Safe ? 1 : 0);
  W.u8(static_cast<uint8_t>(Rep.Verdict));
  W.u8(Rep.LintRejected ? 1 : 0);

  W.u32(static_cast<uint32_t>(Rep.Failures.size()));
  for (const CheckFailure &F : Rep.Failures) {
    W.u8(static_cast<uint8_t>(F.Phase));
    W.u8(static_cast<uint8_t>(F.Kind));
    writeOpt32(W, F.Pc);
    W.str(F.Detail);
  }

  const std::vector<Diagnostic> &Diags = Rep.Diags.diagnostics();
  W.u32(static_cast<uint32_t>(Diags.size()));
  for (const Diagnostic &D : Diags) {
    W.u8(static_cast<uint8_t>(D.Severity));
    W.u8(static_cast<uint8_t>(D.Kind));
    writeOpt32(W, D.InstIndex);
    writeOpt32(W, D.SourceLine);
    W.str(D.Message);
  }

  const ProgramCharacteristics &C = Rep.Chars;
  W.u32(C.Instructions);
  W.u32(C.Branches);
  W.u32(C.Loops);
  W.u32(C.InnerLoops);
  W.u32(C.Calls);
  W.u32(C.TrustedCalls);
  W.u64(C.GlobalConditions);
  W.u32(C.LintUninitUses);
  W.u32(C.DeadRegWrites);
  W.u32(C.MisalignedAccesses);
  W.i64(C.MaxStackDelta);
  W.u8(C.StackDeltaBounded ? 1 : 0);

  W.u64(Rep.TypestateNodeVisits);
  W.u64(Rep.LocalChecks);
  W.u64(Rep.LocalViolations);

  const GlobalVerifyStats &G = Rep.Global;
  W.u64(G.ObligationsProved);
  W.u64(G.ObligationsFailed);
  W.u64(G.ObligationsUnknown);
  W.u64(G.QuickDischarges);
  W.u64(G.InvariantsSynthesized);
  W.u64(G.InvariantReuses);
  W.u64(G.IterationsRun);
  W.u64(G.GeneralizationsTried);
  W.u64(G.SpeculativeQueries);

  const Prover::Stats &P = Rep.ProverStats;
  W.u64(P.ValidityQueries);
  W.u64(P.SatQueries);
  W.u64(P.CacheHits);
  W.u64(P.CacheEvictions);
  W.u64(P.BudgetExhaustions);
  W.u64(P.Tiers.CongruenceHits);
  W.u64(P.Tiers.CongruenceMisses);
  W.u64(P.Tiers.IntervalHits);
  W.u64(P.Tiers.IntervalMisses);
  W.u64(P.Tiers.DbmHits);
  W.u64(P.Tiers.DbmMisses);
  W.u64(P.Tiers.OmegaHits);
  W.u64(P.Tiers.OmegaMisses);
  W.u64(P.Slice.DisjunctQueries);
  W.u64(P.Slice.DisjunctsDeduped);
  W.u64(P.Slice.EqEliminated);
  W.u64(P.Slice.Components);
  W.u64(P.Slice.MultiComponent);
  W.u64(P.Slice.CacheHits);
  W.u64(P.Slice.CacheMisses);
  W.u64(P.Slice.OmegaAvoided);

  const OmegaTest::Stats &Om = Rep.OmegaStats;
  W.u64(Om.Calls);
  W.u64(Om.EqEliminations);
  W.u64(Om.IneqEliminations);
  W.u64(Om.DarkShadowHits);
  W.u64(Om.Splinters);
}

bool checker::deserializeCheckReport(ByteReader &R, CheckReport &Rep) {
  // A decode fully overwrites \p Rep: Failures and Diags below are
  // appended field by field, and a caller reusing one report across
  // responses must not accumulate stale entries.
  Rep = CheckReport();
  Rep.InputsOk = R.u8() != 0;
  Rep.Safe = R.u8() != 0;
  uint8_t RawVerdict = R.u8();
  if (RawVerdict > static_cast<uint8_t>(CheckVerdict::InternalError))
    return false;
  Rep.Verdict = static_cast<CheckVerdict>(RawVerdict);
  Rep.LintRejected = R.u8() != 0;

  uint32_t NFailures = R.u32();
  if (!R.ok() || NFailures > R.remaining() / 10)
    return false;
  Rep.Failures.reserve(NFailures);
  for (uint32_t I = 0; I < NFailures; ++I) {
    uint8_t Phase = R.u8();
    uint8_t Kind = R.u8();
    std::optional<uint32_t> Pc = readOpt32(R);
    std::string_view Detail = R.str();
    if (!R.ok() || Phase > static_cast<uint8_t>(CheckPhase::Driver) ||
        Kind > static_cast<uint8_t>(FailureKind::Quarantined))
      return false;
    Rep.Failures.push_back({static_cast<CheckPhase>(Phase),
                            static_cast<FailureKind>(Kind), Pc,
                            std::string(Detail)});
  }

  uint32_t NDiags = R.u32();
  if (!R.ok() || NDiags > R.remaining() / 16)
    return false;
  for (uint32_t I = 0; I < NDiags; ++I) {
    uint8_t Severity = R.u8();
    uint8_t Kind = R.u8();
    std::optional<uint32_t> InstIndex = readOpt32(R);
    std::optional<uint32_t> SourceLine = readOpt32(R);
    std::string_view Message = R.str();
    if (!R.ok() || Severity > static_cast<uint8_t>(DiagSeverity::Fatal) ||
        Kind > static_cast<uint8_t>(SafetyKind::Protocol))
      return false;
    Rep.Diags.report(static_cast<DiagSeverity>(Severity),
                     static_cast<SafetyKind>(Kind), std::string(Message),
                     InstIndex, SourceLine);
  }

  ProgramCharacteristics &C = Rep.Chars;
  C.Instructions = R.u32();
  C.Branches = R.u32();
  C.Loops = R.u32();
  C.InnerLoops = R.u32();
  C.Calls = R.u32();
  C.TrustedCalls = R.u32();
  C.GlobalConditions = R.u64();
  C.LintUninitUses = R.u32();
  C.DeadRegWrites = R.u32();
  C.MisalignedAccesses = R.u32();
  C.MaxStackDelta = R.i64();
  C.StackDeltaBounded = R.u8() != 0;

  Rep.TypestateNodeVisits = R.u64();
  Rep.LocalChecks = R.u64();
  Rep.LocalViolations = R.u64();

  GlobalVerifyStats &G = Rep.Global;
  G.ObligationsProved = R.u64();
  G.ObligationsFailed = R.u64();
  G.ObligationsUnknown = R.u64();
  G.QuickDischarges = R.u64();
  G.InvariantsSynthesized = R.u64();
  G.InvariantReuses = R.u64();
  G.IterationsRun = R.u64();
  G.GeneralizationsTried = R.u64();
  G.SpeculativeQueries = R.u64();

  Prover::Stats &P = Rep.ProverStats;
  P.ValidityQueries = R.u64();
  P.SatQueries = R.u64();
  P.CacheHits = R.u64();
  P.CacheEvictions = R.u64();
  P.BudgetExhaustions = R.u64();
  P.Tiers.CongruenceHits = R.u64();
  P.Tiers.CongruenceMisses = R.u64();
  P.Tiers.IntervalHits = R.u64();
  P.Tiers.IntervalMisses = R.u64();
  P.Tiers.DbmHits = R.u64();
  P.Tiers.DbmMisses = R.u64();
  P.Tiers.OmegaHits = R.u64();
  P.Tiers.OmegaMisses = R.u64();
  P.Slice.DisjunctQueries = R.u64();
  P.Slice.DisjunctsDeduped = R.u64();
  P.Slice.EqEliminated = R.u64();
  P.Slice.Components = R.u64();
  P.Slice.MultiComponent = R.u64();
  P.Slice.CacheHits = R.u64();
  P.Slice.CacheMisses = R.u64();
  P.Slice.OmegaAvoided = R.u64();

  OmegaTest::Stats &Om = Rep.OmegaStats;
  Om.Calls = R.u64();
  Om.EqEliminations = R.u64();
  Om.IneqEliminations = R.u64();
  Om.DarkShadowHits = R.u64();
  Om.Splinters = R.u64();
  return R.ok();
}
