//===- ReportCodec.h - CheckReport binary serialization ---------*- C++ -*-===//
//
// Part of mcsafe, a reproduction of "Safety Checking of Machine Code"
// (Xu, Miller, Reps; PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The binary codec for CheckReport: every deterministic field of a
/// report, in a fixed little-endian layout on top of constraints/
/// Serialize's ByteWriter/ByteReader. Two consumers share it — the
/// certificate store (a certificate replays the stored report verbatim)
/// and the mcsafe-serve wire protocol (a daemon response carries the
/// exact report bytes, so a client renders byte-identical output to a
/// local run). Because a CheckReport holds only deterministic data (no
/// wall-clock fields), round-tripping through this codec is lossless and
/// the bytes themselves are a pure function of the check's inputs.
///
/// The reader never trusts its input: truncation, out-of-range enum
/// values, or implausible element counts fail the decode (false / the
/// latching ByteReader) rather than fabricating a report.
///
//===----------------------------------------------------------------------===//

#ifndef MCSAFE_CHECKER_REPORTCODEC_H
#define MCSAFE_CHECKER_REPORTCODEC_H

#include "checker/SafetyChecker.h"
#include "constraints/Serialize.h"

namespace mcsafe {
namespace checker {

/// Appends \p Rep to \p W in the fixed binary layout. Changing the layout
/// requires bumping CertStore::FormatVersion and serve::ProtocolVersion.
void serializeCheckReport(ByteWriter &W, const CheckReport &Rep);

/// Decodes a report written by serializeCheckReport. Returns false (with
/// \p Rep partially filled) on truncated or malformed input.
bool deserializeCheckReport(ByteReader &R, CheckReport &Rep);

} // namespace checker
} // namespace mcsafe

#endif // MCSAFE_CHECKER_REPORTCODEC_H
