//===- SafetyChecker.cpp --------------------------------------------------===//

#include "checker/SafetyChecker.h"

#include "analysis/Lint.h"
#include "checker/Annotation.h"
#include "checker/Automata.h"
#include "checker/CertStore.h"
#include "checker/CheckContext.h"
#include "checker/Propagation.h"
#include "policy/PolicyParser.h"
#include "sparc/AsmParser.h"
#include "support/Trace.h"

#include <chrono>

using namespace mcsafe;
using namespace mcsafe::checker;

namespace {

using Clock = std::chrono::steady_clock;

uint64_t usSince(Clock::time_point Start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                            Start)
          .count());
}

/// Measures one checker phase: an RAII pair of a trace span and a
/// microsecond counter under "<scope>/phase/<name>_us", plus the
/// cross-program latency histogram "phase/<name>_us".
class PhaseTimer {
public:
  PhaseTimer(support::MetricsRegistry *Metrics, const std::string &Scope,
             const char *SpanName, const char *Phase)
      : Span(SpanName, Scope), Metrics(Metrics), Scope(Scope),
        Phase(Phase), Start(Clock::now()) {}
  ~PhaseTimer() {
    if (!Metrics)
      return;
    uint64_t Us = usSince(Start);
    Metrics->counter(Scope + "/phase/" + Phase + "_us").inc(Us);
    Metrics->histogram(std::string("phase/") + Phase + "_us").observe(Us);
  }

private:
  support::TraceSpan Span;
  support::MetricsRegistry *Metrics;
  const std::string &Scope;
  const char *Phase;
  Clock::time_point Start;
};

void publishCounters(support::MetricsRegistry &Reg, const std::string &Scope,
                     const CheckReport &Report) {
  auto Put = [&](const char *Name, uint64_t V) {
    Reg.counter(Scope + "/" + Name).inc(V);
  };
  Put("typestate/node_visits", Report.TypestateNodeVisits);
  Put("local/checks", Report.LocalChecks);
  Put("local/violations", Report.LocalViolations);
  Put("global/obligations_proved", Report.Global.ObligationsProved);
  Put("global/obligations_failed", Report.Global.ObligationsFailed);
  Put("global/quick_discharges", Report.Global.QuickDischarges);
  Put("global/invariants_synthesized", Report.Global.InvariantsSynthesized);
  Put("global/invariant_reuses", Report.Global.InvariantReuses);
  Put("global/iterations_run", Report.Global.IterationsRun);
  Put("global/generalizations_tried", Report.Global.GeneralizationsTried);
  Put("global/speculative_queries", Report.Global.SpeculativeQueries);
  Put("prover/validity_queries", Report.ProverStats.ValidityQueries);
  Put("prover/sat_queries", Report.ProverStats.SatQueries);
  Put("prover/cache_hits", Report.ProverStats.CacheHits);
  Put("prover/cache_evictions", Report.ProverStats.CacheEvictions);
  Put("prover/budget_exhaustions", Report.ProverStats.BudgetExhaustions);
  Put("prover/tier/congruence/hits",
      Report.ProverStats.Tiers.CongruenceHits);
  Put("prover/tier/congruence/misses",
      Report.ProverStats.Tiers.CongruenceMisses);
  Put("prover/tier/interval/hits", Report.ProverStats.Tiers.IntervalHits);
  Put("prover/tier/interval/misses", Report.ProverStats.Tiers.IntervalMisses);
  Put("prover/tier/dbm/hits", Report.ProverStats.Tiers.DbmHits);
  Put("prover/tier/dbm/misses", Report.ProverStats.Tiers.DbmMisses);
  Put("prover/tier/omega/hits", Report.ProverStats.Tiers.OmegaHits);
  Put("prover/tier/omega/misses", Report.ProverStats.Tiers.OmegaMisses);
  Put("prover/slice/queries", Report.ProverStats.Slice.DisjunctQueries);
  Put("prover/slice/disjuncts_deduped",
      Report.ProverStats.Slice.DisjunctsDeduped);
  Put("prover/slice/eq_eliminated", Report.ProverStats.Slice.EqEliminated);
  Put("prover/slice/components", Report.ProverStats.Slice.Components);
  Put("prover/slice/multi_component", Report.ProverStats.Slice.MultiComponent);
  Put("prover/slice/cache_hits", Report.ProverStats.Slice.CacheHits);
  Put("prover/slice/cache_misses", Report.ProverStats.Slice.CacheMisses);
  Put("prover/slice/omega_avoided", Report.ProverStats.Slice.OmegaAvoided);
  Formula::InternStats Intern = Formula::internStats();
  Reg.gauge("intern/formulas").set(int64_t(Intern.Nodes));
  Reg.gauge("intern/dedup_hits").set(int64_t(Intern.DedupHits));
  Reg.gauge("intern/bytes").set(int64_t(Intern.Bytes));
  Put("omega/calls", Report.OmegaStats.Calls);
  Put("omega/eq_eliminations", Report.OmegaStats.EqEliminations);
  Put("omega/ineq_eliminations", Report.OmegaStats.IneqEliminations);
  Put("omega/dark_shadow_hits", Report.OmegaStats.DarkShadowHits);
  Put("omega/splinters", Report.OmegaStats.Splinters);
}

/// Converts Fatal diagnostics added at or after \p From into structured
/// CheckFailures attributed to \p Phase.
void captureFatals(CheckReport &Report, size_t From, CheckPhase Phase,
                   FailureKind Kind) {
  const std::vector<Diagnostic> &Diags = Report.Diags.diagnostics();
  for (size_t I = From; I < Diags.size(); ++I) {
    if (Diags[I].Severity != DiagSeverity::Fatal)
      continue;
    Report.Failures.push_back(
        {Phase, Kind, Diags[I].InstIndex, Diags[I].Message});
  }
}

} // namespace

CheckReport SafetyChecker::check(const sparc::Module &M,
                                 const policy::Policy &Pol) {
  CheckReport Report;
  // The process-boundary guarantee: no exception (allocator failure, a
  // checker bug, an injected fault) escapes a check. Anything thrown
  // becomes an InternalError verdict — meaningless as an answer, but
  // structured and crash-free.
  try {
    checkImpl(M, Pol, Report);
  } catch (const std::exception &E) {
    Report.Safe = false;
    Report.Verdict = CheckVerdict::InternalError;
    Report.Failures.push_back({CheckPhase::Driver, FailureKind::InternalError,
                               std::nullopt,
                               std::string("unhandled exception: ") +
                                   E.what()});
  } catch (...) {
    Report.Safe = false;
    Report.Verdict = CheckVerdict::InternalError;
    Report.Failures.push_back({CheckPhase::Driver, FailureKind::InternalError,
                               std::nullopt,
                               "unhandled non-standard exception"});
  }
  return Report;
}

void SafetyChecker::checkImpl(const sparc::Module &M,
                              const policy::Policy &Pol,
                              CheckReport &Report) {
  support::TraceSpan CheckSpan("checker/check", Opts.MetricScope);
  Clock::time_point CheckStart = Clock::now();

  // The governor: external if the caller supplied one, local if limits
  // were configured, absent (null — zero overhead) otherwise.
  support::ResourceGovernor LocalGov(Opts.Limits);
  support::ResourceGovernor *Gov = Opts.Governor;
  if (!Gov && Opts.Limits.any())
    Gov = &LocalGov;

  // Static characteristics of the untrusted code.
  Report.Chars.Instructions = M.size();
  for (const sparc::Instruction &Inst : M.Insts) {
    if (sparc::isConditionalBranch(Inst.Op))
      ++Report.Chars.Branches;
    if (Inst.Op == sparc::Opcode::CALL) {
      ++Report.Chars.Calls;
      if (!Inst.CalleeName.empty())
        ++Report.Chars.TrustedCalls;
    }
  }

  // Phase 1: preparation.
  size_t DiagsBefore = Report.Diags.diagnostics().size();
  std::optional<CheckContext> Ctx;
  {
    PhaseTimer T(Opts.Metrics, Opts.MetricScope, "checker/prepare",
                 "prepare");
    Ctx = prepare(M, Pol, Report.Diags);
  }
  if (!Ctx) {
    Report.InputsOk = false;
    Report.Verdict = CheckVerdict::MalformedInput;
    captureFatals(Report, DiagsBefore, CheckPhase::Prepare,
                  FailureKind::MalformedAssembly);
    return;
  }
  Report.InputsOk = true;
  Ctx->Governor = Gov;
  Ctx->Failures = &Report.Failures;
  Ctx->KnownBits = Opts.KnownBits;
  Report.Chars.Loops = static_cast<uint32_t>(Ctx->Loops->loops().size());
  Report.Chars.InnerLoops = Ctx->Loops->innerLoopCount();

  auto Finish = [&] {
    if (Opts.Metrics) {
      Opts.Metrics->counter(Opts.MetricScope + "/phase/total_us")
          .inc(usSince(CheckStart));
      publishCounters(*Opts.Metrics, Opts.MetricScope, Report);
      if (Gov) {
        auto &Reg = *Opts.Metrics;
        Reg.counter(Opts.MetricScope + "/governor/prover_steps")
            .inc(Gov->stepsUsed());
        Reg.counter(Opts.MetricScope + "/governor/mem_high_water")
            .inc(Gov->memoryHighWater());
        if (Gov->exhausted()) {
          Reg.counter(Opts.MetricScope + "/governor/exhausted/" +
                      support::budgetKindName(Gov->exhaustedKind()))
              .inc();
          Reg.counter(Opts.MetricScope + "/governor/died_at/" +
                      Gov->exhaustedSite())
              .inc();
        }
      }
    }
  };

  // A phase ran out of budget: record where, mark the check Unknown
  // (unless a violation was already proved — that verdict is sound and
  // stands), and skip the remaining phases. Partial results collected so
  // far stay in the report.
  auto Degrade = [&](CheckPhase Phase) {
    support::TraceSpan Died("governor/exhausted", Opts.MetricScope);
    Report.Failures.push_back(
        {Phase,
         Gov->exhaustedKind() == support::BudgetKind::Cancelled
             ? FailureKind::Cancelled
             : FailureKind::ResourceExhausted,
         std::nullopt, Gov->reason()});
    Report.Safe = false;
    Report.Verdict = Report.Diags.hasViolations() ? CheckVerdict::Unsafe
                                                  : CheckVerdict::Unknown;
    Finish();
  };

  // Phase 0: bit-vector dataflow lint. Fast-rejects definite
  // violations and computes the liveness the propagation phase uses to
  // prune dead registers.
  std::optional<analysis::LintResult> Lint;
  if (Opts.Lint) {
    PhaseTimer T(Opts.Metrics, Opts.MetricScope, "checker/lint", "lint");
    Lint.emplace(analysis::runLint(Ctx->Graph, Pol, Ctx->EntryStore,
                                   Report.Diags, &Ctx->Locs,
                                   Opts.KnownBits));
    Report.Chars.LintUninitUses = Lint->Stats.UninitUses;
    Report.Chars.DeadRegWrites = Lint->Stats.DeadRegWrites;
    Report.Chars.MisalignedAccesses = Lint->Stats.MisalignedAccesses;
    Report.Chars.MaxStackDelta = Lint->Stats.MaxStackDelta;
    Report.Chars.StackDeltaBounded = Lint->Stats.StackDeltaBounded;
    if (Opts.LintReject && Lint->Rejected) {
      // Every finding is a violation on all executions; the expensive
      // phases cannot prove the program safe.
      Report.LintRejected = true;
      Report.Safe = false;
      Report.Verdict = CheckVerdict::Unsafe;
      Finish();
      return;
    }
  }
  if (Gov && !Gov->poll("checker/after-lint"))
    return Degrade(CheckPhase::Lint);

  // Phase 2: typestate propagation.
  PropagationResult Prop;
  {
    PhaseTimer T(Opts.Metrics, Opts.MetricScope, "checker/typestate",
                 "typestate");
    Prop =
        propagate(*Ctx, Lint && Opts.PruneDeadRegs ? &Lint->Live : nullptr);
  }
  Report.TypestateNodeVisits = Prop.NodeVisits;
  // A partial typestate fixpoint may be *smaller* than the true one, and
  // the later phases could then "prove" safety from facts that do not
  // hold on all paths. Fail sound: when the fixpoint did not converge,
  // nothing downstream may run.
  if (Gov && Gov->exhausted())
    return Degrade(CheckPhase::Typestate);

  // Phases 3 + 4: annotation and local verification (including the
  // security-automaton extension, which is typestate-level checking).
  AnnotationResult Annot;
  {
    PhaseTimer T(Opts.Metrics, Opts.MetricScope, "checker/annotation",
                 "annotation");
    Annot = annotateAndVerifyLocal(*Ctx, Prop);
    Annot.LocalViolations += checkAutomata(*Ctx);
  }
  Report.LocalChecks = Annot.LocalChecks;
  Report.LocalViolations = Annot.LocalViolations;
  Report.Chars.GlobalConditions = Annot.Obligations.size();
  // An interrupted annotation pass has an incomplete obligation set;
  // running global verification over it could certify a program whose
  // unvisited nodes hide violations.
  if (Gov && Gov->exhausted())
    return Degrade(CheckPhase::Annotation);

  // Phase 5: global verification.
  {
    PhaseTimer T(Opts.Metrics, Opts.MetricScope, "checker/global",
                 "global");
    Prover::Options ProverOpts = Opts.ProverOpts;
    if (!ProverOpts.Governor)
      ProverOpts.Governor = Gov;
    // The congruence tier exists to discharge the atoms the known-bits
    // domain emits; without the domain it only burns cycles.
    ProverOpts.EnableCongruence = ProverOpts.EnableCongruence && Opts.KnownBits;
    GlobalVerifyOptions GlobalOpts = Opts.Global;
    GlobalOpts.FailSoft = GlobalOpts.FailSoft || Opts.FailSoft;
    Prover TheProver(ProverOpts, Opts.SharedProverCache);
    if (Opts.TranscriptSink)
      TheProver.setTranscript(Opts.TranscriptSink);
    Report.Global = verifyGlobal(*Ctx, Prop, Annot, TheProver, GlobalOpts);
    Report.ProverStats = TheProver.stats();
    Report.OmegaStats = TheProver.omegaStats();
  }

  Report.Safe = !Report.Diags.hasViolations() && !Report.Diags.hasFatal();
  if (Report.Diags.hasViolations()) {
    Report.Verdict = CheckVerdict::Unsafe;
  } else if (Report.Diags.hasFatal()) {
    Report.Verdict = CheckVerdict::MalformedInput;
  } else if (Gov && Gov->exhausted()) {
    // The global phase ran out mid-way: obligations it never reached are
    // recorded as failures, and "no violations found" must not read as
    // Safe when the search was cut short.
    Report.Safe = false;
    Report.Verdict = CheckVerdict::Unknown;
    if (Report.Failures.empty())
      Report.Failures.push_back(
          {CheckPhase::Global,
           Gov->exhaustedKind() == support::BudgetKind::Cancelled
               ? FailureKind::Cancelled
               : FailureKind::ResourceExhausted,
           std::nullopt, Gov->reason()});
  } else {
    Report.Verdict = CheckVerdict::Safe;
  }
  Finish();
}

CheckReport SafetyChecker::checkSource(std::string_view Asm,
                                       std::string_view PolicyText) {
  if (Opts.Certs)
    return checkWithCerts(Asm, PolicyText);
  CheckReport Report;
  try {
    std::string Error;
    std::optional<sparc::Module> M = sparc::assemble(Asm, &Error);
    if (!M) {
      Report.Diags.fatal("assembly error: " + Error);
      Report.Verdict = CheckVerdict::MalformedInput;
      Report.Failures.push_back({CheckPhase::Input,
                                 FailureKind::MalformedAssembly, std::nullopt,
                                 "assembly error: " + Error});
      return Report;
    }
    std::optional<policy::Policy> Pol =
        policy::parsePolicy(PolicyText, &Error);
    if (!Pol) {
      Report.Diags.fatal("policy error: " + Error);
      Report.Verdict = CheckVerdict::MalformedInput;
      Report.Failures.push_back({CheckPhase::Input,
                                 FailureKind::MalformedPolicy, std::nullopt,
                                 "policy error: " + Error});
      return Report;
    }
    return check(*M, *Pol);
  } catch (const std::exception &E) {
    Report.Safe = false;
    Report.Verdict = CheckVerdict::InternalError;
    Report.Failures.push_back({CheckPhase::Input, FailureKind::InternalError,
                               std::nullopt,
                               std::string("unhandled exception: ") +
                                   E.what()});
    return Report;
  } catch (...) {
    Report.Safe = false;
    Report.Verdict = CheckVerdict::InternalError;
    Report.Failures.push_back({CheckPhase::Input, FailureKind::InternalError,
                               std::nullopt,
                               "unhandled non-standard exception"});
    return Report;
  }
}

CheckReport SafetyChecker::checkWithCerts(std::string_view Asm,
                                          std::string_view PolicyText) {
  const std::string Config = canonicalCheckConfig(Opts);
  const uint64_t Key = CertStore::procedureKey(Asm, PolicyText, Config);

  Certificate Cert;
  if (Opts.Certs->load(Key, Asm, PolicyText, Config, Cert) ==
      CertStore::LoadOutcome::Hit) {
    if (revalidateCertificate(Cert, Opts))
      return std::move(Cert.Report);
    Opts.Certs->noteRevalidationFailure();
  }

  // Cold path, with certificate capture. The inner checker has no store
  // attached, so this cannot recurse.
  Certificate Fresh;
  Fresh.Asm = Asm;
  Fresh.Policy = PolicyText;
  Fresh.Config = Config;
  std::vector<SynthesizedInvariant> Invariants;
  Options ColdOpts = Opts;
  ColdOpts.Certs = nullptr;
  ColdOpts.TranscriptSink = &Fresh.Witnesses;
  ColdOpts.Global.InvariantSink = &Invariants;
  CheckReport Report = SafetyChecker(ColdOpts).checkSource(Asm, PolicyText);

  // Only definitive, fully-resourced runs are worth certifying: an
  // Unknown/Malformed/InternalError verdict (or any recorded failure —
  // budget exhaustion, cancellation) is not a pure function of the
  // inputs alone, so replaying it later could misreport.
  if ((Report.Verdict == CheckVerdict::Safe ||
       Report.Verdict == CheckVerdict::Unsafe) &&
      Report.Failures.empty()) {
    Fresh.Report = Report;
    Fresh.Invariants = std::move(Invariants);
    Opts.Certs->save(Key, Fresh);
  }
  return Report;
}
