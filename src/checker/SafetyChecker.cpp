//===- SafetyChecker.cpp --------------------------------------------------===//

#include "checker/SafetyChecker.h"

#include "analysis/Lint.h"
#include "checker/Annotation.h"
#include "checker/Automata.h"
#include "checker/CheckContext.h"
#include "checker/Propagation.h"
#include "policy/PolicyParser.h"
#include "sparc/AsmParser.h"
#include "support/Trace.h"

#include <chrono>

using namespace mcsafe;
using namespace mcsafe::checker;

namespace {

using Clock = std::chrono::steady_clock;

uint64_t usSince(Clock::time_point Start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                            Start)
          .count());
}

/// Measures one checker phase: an RAII pair of a trace span and a
/// microsecond counter under "<scope>/phase/<name>_us", plus the
/// cross-program latency histogram "phase/<name>_us".
class PhaseTimer {
public:
  PhaseTimer(support::MetricsRegistry *Metrics, const std::string &Scope,
             const char *SpanName, const char *Phase)
      : Span(SpanName, Scope), Metrics(Metrics), Scope(Scope),
        Phase(Phase), Start(Clock::now()) {}
  ~PhaseTimer() {
    if (!Metrics)
      return;
    uint64_t Us = usSince(Start);
    Metrics->counter(Scope + "/phase/" + Phase + "_us").inc(Us);
    Metrics->histogram(std::string("phase/") + Phase + "_us").observe(Us);
  }

private:
  support::TraceSpan Span;
  support::MetricsRegistry *Metrics;
  const std::string &Scope;
  const char *Phase;
  Clock::time_point Start;
};

void publishCounters(support::MetricsRegistry &Reg, const std::string &Scope,
                     const CheckReport &Report) {
  auto Put = [&](const char *Name, uint64_t V) {
    Reg.counter(Scope + "/" + Name).inc(V);
  };
  Put("typestate/node_visits", Report.TypestateNodeVisits);
  Put("local/checks", Report.LocalChecks);
  Put("local/violations", Report.LocalViolations);
  Put("global/obligations_proved", Report.Global.ObligationsProved);
  Put("global/obligations_failed", Report.Global.ObligationsFailed);
  Put("global/quick_discharges", Report.Global.QuickDischarges);
  Put("global/invariants_synthesized", Report.Global.InvariantsSynthesized);
  Put("global/invariant_reuses", Report.Global.InvariantReuses);
  Put("global/iterations_run", Report.Global.IterationsRun);
  Put("global/generalizations_tried", Report.Global.GeneralizationsTried);
  Put("global/speculative_queries", Report.Global.SpeculativeQueries);
  Put("prover/validity_queries", Report.ProverStats.ValidityQueries);
  Put("prover/sat_queries", Report.ProverStats.SatQueries);
  Put("prover/cache_hits", Report.ProverStats.CacheHits);
  Put("prover/cache_evictions", Report.ProverStats.CacheEvictions);
  Put("prover/budget_exhaustions", Report.ProverStats.BudgetExhaustions);
  Put("omega/calls", Report.OmegaStats.Calls);
  Put("omega/eq_eliminations", Report.OmegaStats.EqEliminations);
  Put("omega/ineq_eliminations", Report.OmegaStats.IneqEliminations);
  Put("omega/dark_shadow_hits", Report.OmegaStats.DarkShadowHits);
  Put("omega/splinters", Report.OmegaStats.Splinters);
}

} // namespace

CheckReport SafetyChecker::check(const sparc::Module &M,
                                 const policy::Policy &Pol) {
  CheckReport Report;
  support::TraceSpan CheckSpan("checker/check", Opts.MetricScope);
  Clock::time_point CheckStart = Clock::now();

  // Static characteristics of the untrusted code.
  Report.Chars.Instructions = M.size();
  for (const sparc::Instruction &Inst : M.Insts) {
    if (sparc::isConditionalBranch(Inst.Op))
      ++Report.Chars.Branches;
    if (Inst.Op == sparc::Opcode::CALL) {
      ++Report.Chars.Calls;
      if (!Inst.CalleeName.empty())
        ++Report.Chars.TrustedCalls;
    }
  }

  // Phase 1: preparation.
  std::optional<CheckContext> Ctx;
  {
    PhaseTimer T(Opts.Metrics, Opts.MetricScope, "checker/prepare",
                 "prepare");
    Ctx = prepare(M, Pol, Report.Diags);
  }
  if (!Ctx) {
    Report.InputsOk = false;
    return Report;
  }
  Report.InputsOk = true;
  Report.Chars.Loops = static_cast<uint32_t>(Ctx->Loops->loops().size());
  Report.Chars.InnerLoops = Ctx->Loops->innerLoopCount();

  auto Finish = [&] {
    if (Opts.Metrics) {
      Opts.Metrics->counter(Opts.MetricScope + "/phase/total_us")
          .inc(usSince(CheckStart));
      publishCounters(*Opts.Metrics, Opts.MetricScope, Report);
    }
  };

  // Phase 0: bit-vector dataflow lint. Fast-rejects definite
  // violations and computes the liveness the propagation phase uses to
  // prune dead registers.
  std::optional<analysis::LintResult> Lint;
  if (Opts.Lint) {
    PhaseTimer T(Opts.Metrics, Opts.MetricScope, "checker/lint", "lint");
    Lint.emplace(
        analysis::runLint(Ctx->Graph, Pol, Ctx->EntryStore, Report.Diags));
    Report.Chars.LintUninitUses = Lint->Stats.UninitUses;
    Report.Chars.DeadRegWrites = Lint->Stats.DeadRegWrites;
    Report.Chars.MaxStackDelta = Lint->Stats.MaxStackDelta;
    Report.Chars.StackDeltaBounded = Lint->Stats.StackDeltaBounded;
    if (Opts.LintReject && Lint->Rejected) {
      // Every finding is a violation on all executions; the expensive
      // phases cannot prove the program safe.
      Report.LintRejected = true;
      Report.Safe = false;
      Finish();
      return Report;
    }
  }

  // Phase 2: typestate propagation.
  PropagationResult Prop;
  {
    PhaseTimer T(Opts.Metrics, Opts.MetricScope, "checker/typestate",
                 "typestate");
    Prop =
        propagate(*Ctx, Lint && Opts.PruneDeadRegs ? &Lint->Live : nullptr);
  }
  Report.TypestateNodeVisits = Prop.NodeVisits;

  // Phases 3 + 4: annotation and local verification (including the
  // security-automaton extension, which is typestate-level checking).
  AnnotationResult Annot;
  {
    PhaseTimer T(Opts.Metrics, Opts.MetricScope, "checker/annotation",
                 "annotation");
    Annot = annotateAndVerifyLocal(*Ctx, Prop);
    Annot.LocalViolations += checkAutomata(*Ctx);
  }
  Report.LocalChecks = Annot.LocalChecks;
  Report.LocalViolations = Annot.LocalViolations;
  Report.Chars.GlobalConditions = Annot.Obligations.size();

  // Phase 5: global verification.
  {
    PhaseTimer T(Opts.Metrics, Opts.MetricScope, "checker/global",
                 "global");
    Prover TheProver(Opts.ProverOpts, Opts.SharedProverCache);
    Report.Global = verifyGlobal(*Ctx, Prop, Annot, TheProver, Opts.Global);
    Report.ProverStats = TheProver.stats();
    Report.OmegaStats = TheProver.omegaStats();
  }

  Report.Safe = !Report.Diags.hasViolations() && !Report.Diags.hasFatal();
  Finish();
  return Report;
}

CheckReport SafetyChecker::checkSource(std::string_view Asm,
                                       std::string_view PolicyText) {
  CheckReport Report;
  std::string Error;
  std::optional<sparc::Module> M = sparc::assemble(Asm, &Error);
  if (!M) {
    Report.Diags.fatal("assembly error: " + Error);
    return Report;
  }
  std::optional<policy::Policy> Pol =
      policy::parsePolicy(PolicyText, &Error);
  if (!Pol) {
    Report.Diags.fatal("policy error: " + Error);
    return Report;
  }
  return check(*M, *Pol);
}
