//===- SafetyChecker.cpp --------------------------------------------------===//

#include "checker/SafetyChecker.h"

#include "analysis/Lint.h"
#include "checker/Annotation.h"
#include "checker/Automata.h"
#include "checker/CheckContext.h"
#include "checker/Propagation.h"
#include "policy/PolicyParser.h"
#include "sparc/AsmParser.h"

#include <chrono>

using namespace mcsafe;
using namespace mcsafe::checker;

namespace {

double secondsSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

} // namespace

CheckReport SafetyChecker::check(const sparc::Module &M,
                                 const policy::Policy &Pol) {
  CheckReport Report;

  // Static characteristics of the untrusted code.
  Report.Chars.Instructions = M.size();
  for (const sparc::Instruction &Inst : M.Insts) {
    if (sparc::isConditionalBranch(Inst.Op))
      ++Report.Chars.Branches;
    if (Inst.Op == sparc::Opcode::CALL) {
      ++Report.Chars.Calls;
      if (!Inst.CalleeName.empty())
        ++Report.Chars.TrustedCalls;
    }
  }

  // Phase 1: preparation.
  std::optional<CheckContext> Ctx = prepare(M, Pol, Report.Diags);
  if (!Ctx) {
    Report.InputsOk = false;
    return Report;
  }
  Report.InputsOk = true;
  Report.Chars.Loops = static_cast<uint32_t>(Ctx->Loops->loops().size());
  Report.Chars.InnerLoops = Ctx->Loops->innerLoopCount();

  // Phase 0: bit-vector dataflow lint. Fast-rejects definite
  // violations and computes the liveness the propagation phase uses to
  // prune dead registers.
  std::optional<analysis::LintResult> Lint;
  if (Opts.Lint) {
    auto TL = std::chrono::steady_clock::now();
    Lint.emplace(
        analysis::runLint(Ctx->Graph, Pol, Ctx->EntryStore, Report.Diags));
    Report.TimeLint = secondsSince(TL);
    Report.Chars.LintUninitUses = Lint->Stats.UninitUses;
    Report.Chars.DeadRegWrites = Lint->Stats.DeadRegWrites;
    Report.Chars.MaxStackDelta = Lint->Stats.MaxStackDelta;
    Report.Chars.StackDeltaBounded = Lint->Stats.StackDeltaBounded;
    if (Opts.LintReject && Lint->Rejected) {
      // Every finding is a violation on all executions; the expensive
      // phases cannot prove the program safe.
      Report.LintRejected = true;
      Report.Safe = false;
      return Report;
    }
  }

  // Phase 2: typestate propagation.
  auto T0 = std::chrono::steady_clock::now();
  PropagationResult Prop =
      propagate(*Ctx, Lint && Opts.PruneDeadRegs ? &Lint->Live : nullptr);
  Report.TimeTypestate = secondsSince(T0);
  Report.TypestateNodeVisits = Prop.NodeVisits;

  // Phases 3 + 4: annotation and local verification (including the
  // security-automaton extension, which is typestate-level checking).
  auto T1 = std::chrono::steady_clock::now();
  AnnotationResult Annot = annotateAndVerifyLocal(*Ctx, Prop);
  Annot.LocalViolations += checkAutomata(*Ctx);
  Report.TimeAnnotation = secondsSince(T1);
  Report.LocalChecks = Annot.LocalChecks;
  Report.LocalViolations = Annot.LocalViolations;
  Report.Chars.GlobalConditions = Annot.Obligations.size();

  // Phase 5: global verification.
  auto T2 = std::chrono::steady_clock::now();
  Prover TheProver(Opts.ProverOpts, Opts.SharedProverCache);
  Report.Global = verifyGlobal(*Ctx, Prop, Annot, TheProver, Opts.Global);
  Report.TimeGlobal = secondsSince(T2);
  Report.ProverStats = TheProver.stats();
  Report.OmegaStats = TheProver.omegaStats();

  Report.Safe = !Report.Diags.hasViolations() && !Report.Diags.hasFatal();
  return Report;
}

CheckReport SafetyChecker::checkSource(std::string_view Asm,
                                       std::string_view PolicyText) {
  CheckReport Report;
  std::string Error;
  std::optional<sparc::Module> M = sparc::assemble(Asm, &Error);
  if (!M) {
    Report.Diags.fatal("assembly error: " + Error);
    return Report;
  }
  std::optional<policy::Policy> Pol =
      policy::parsePolicy(PolicyText, &Error);
  if (!Pol) {
    Report.Diags.fatal("policy error: " + Error);
    return Report;
  }
  return check(*M, *Pol);
}
