//===- SafetyChecker.h - The five-phase safety checker ----------*- C++ -*-===//
//
// Part of mcsafe, a reproduction of "Safety Checking of Machine Code"
// (Xu, Miller, Reps; PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The public entry point of the library: runs preparation, typestate
/// propagation, annotation, local verification, and global verification
/// over a piece of untrusted SPARC code and a host-provided safety
/// policy, and reports either "safe" or the places where safety
/// conditions are violated. Program characteristics are collected in
/// the same shape as the paper's Figure 9; per-phase wall-clock times go
/// to the metrics registry attached via Options::Metrics (reports hold
/// only deterministic data, so byte-comparing them is meaningful).
///
/// Typical use:
/// \code
///   mcsafe::checker::SafetyChecker Checker;
///   mcsafe::checker::CheckReport Report =
///       Checker.checkSource(AsmText, PolicyText);
///   if (!Report.Safe)
///     std::cout << Report.Diags.str();
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef MCSAFE_CHECKER_SAFETYCHECKER_H
#define MCSAFE_CHECKER_SAFETYCHECKER_H

#include "checker/Failure.h"
#include "checker/GlobalVerify.h"
#include "constraints/Prover.h"
#include "policy/Policy.h"
#include "sparc/Module.h"
#include "support/Diagnostics.h"
#include "support/Governor.h"
#include "support/Metrics.h"

#include <string>
#include <string_view>
#include <vector>

namespace mcsafe {
namespace checker {

class CertStore;

/// Program characteristics, as in the upper half of Figure 9.
struct ProgramCharacteristics {
  uint32_t Instructions = 0;
  uint32_t Branches = 0;      ///< Conditional branches.
  uint32_t Loops = 0;         ///< Natural loops (on the inlined CFG).
  uint32_t InnerLoops = 0;    ///< Loops nested inside another loop.
  uint32_t Calls = 0;         ///< Call instructions.
  uint32_t TrustedCalls = 0;  ///< Calls to host (external) functions.
  uint64_t GlobalConditions = 0;

  // Phase-0 lint characteristics.
  uint32_t LintUninitUses = 0;  ///< Definite uninitialized-register uses.
  uint32_t DeadRegWrites = 0;   ///< Register writes no path reads again.
  uint32_t MisalignedAccesses = 0; ///< Provably misaligned accesses.
  int64_t MaxStackDelta = 0;    ///< Deepest constant %sp excursion, bytes.
  bool StackDeltaBounded = true; ///< All %sp deltas statically constant.
};

/// The result of checking one program against one policy.
struct CheckReport {
  /// False when the inputs were malformed or unsupported (assembly or
  /// policy errors, recursion, irreducible control flow).
  bool InputsOk = false;
  /// True when every safety condition was verified.
  bool Safe = false;

  /// The five-way outcome. Refines (InputsOk, Safe): Unknown means the
  /// checker gave up soundly (budget/cancellation) rather than proving
  /// anything; see Failure.h for the exit-code mapping.
  CheckVerdict Verdict = CheckVerdict::InternalError;

  /// Structured failures: every way this check fell short of a
  /// definitive verdict (malformed input, budget exhaustion,
  /// cancellation, internal errors), in the order encountered.
  std::vector<CheckFailure> Failures;

  /// The phase-0 lint proved a safety violation and the expensive
  /// phases were skipped (TypestateNodeVisits stays 0).
  bool LintRejected = false;

  DiagnosticEngine Diags;
  ProgramCharacteristics Chars;

  // Wall-clock values deliberately do NOT live here: every field of a
  // CheckReport is a deterministic function of the inputs, so reports
  // can be compared byte-for-byte across job counts and runs. Phase
  // times (Figure 9's time rows) are published to Options::Metrics as
  // "<scope>/phase/{prepare,lint,typestate,annotation,global,total}_us".

  /// Worklist visits of the typestate-propagation fixpoint (0 when the
  /// lint rejected first).
  uint64_t TypestateNodeVisits = 0;
  uint64_t LocalChecks = 0;
  uint64_t LocalViolations = 0;
  GlobalVerifyStats Global;
  Prover::Stats ProverStats;
  OmegaTest::Stats OmegaStats;
};

/// The safety checker.
class SafetyChecker {
public:
  struct Options {
    GlobalVerifyOptions Global;
    Prover::Options ProverOpts;
    /// When set, the phase-5 prover attaches to this cache instead of a
    /// private one. Shared across concurrent checks (the cache is
    /// thread-safe); sharing is sound because entries are keyed on
    /// formula structure plus query budget.
    std::shared_ptr<ProverCache> SharedProverCache;
    /// Run the phase-0 dataflow lint before typestate propagation.
    bool Lint = true;
    /// Track the known-bits (alignment) domain: propagate bit patterns
    /// through phase 2, emit divisibility atoms during annotation, run
    /// the lint's misaligned-access rule, and enable the prover's
    /// congruence tier. --no-knownbits in the driver.
    bool KnownBits = true;
    /// Let a definite lint violation skip the expensive phases.
    bool LintReject = true;
    /// Prune dead registers from propagated stores using lint liveness.
    bool PruneDeadRegs = true;
    /// Observability sink: when set, per-phase timings and all phase /
    /// prover / omega counters are published under
    /// "<MetricScope>/...". Null disables publication entirely.
    support::MetricsRegistry *Metrics = nullptr;
    /// Name prefix for this check's metrics, e.g. "program/Sum".
    std::string MetricScope = "check";
    /// Per-check resource limits. All-zero (the default) means
    /// unlimited, and the check runs with no governor at all — the
    /// poll points reduce to a null-pointer test.
    support::GovernorLimits Limits;
    /// External governor (overrides Limits). Lets a batch driver share
    /// one budget across many checks or cancel them cooperatively; the
    /// governor must outlive the check.
    support::ResourceGovernor *Governor = nullptr;
    /// On budget exhaustion in the global phase, keep enumerating the
    /// remaining obligations as individual Unknown failures instead of
    /// stopping at the first.
    bool FailSoft = false;
    /// Persistent certificate store (non-owning; see CertStore.h).
    /// checkSource() consults it: a validated hit replays the stored
    /// report without re-running the pipeline; a miss, stale entry, or
    /// failed revalidation falls back to a cold run that writes a fresh
    /// certificate. check() ignores it (keys are input-text digests).
    CertStore *Certs = nullptr;
    /// When set, the phase-5 prover appends its sat-query transcript
    /// here (certificate capture; set internally by the warm/cold
    /// wrapper, also usable by tests). Non-owning.
    std::vector<QueryRecord> *TranscriptSink = nullptr;
  };

  SafetyChecker() = default;
  explicit SafetyChecker(Options Opts) : Opts(Opts) {}

  /// Checks an assembled module against a parsed policy. Never throws:
  /// any exception escaping the pipeline becomes an InternalError
  /// verdict with a Driver-phase CheckFailure.
  CheckReport check(const sparc::Module &M, const policy::Policy &Pol);

  /// Convenience: assembles \p Asm, parses \p PolicyText, checks.
  /// Never throws; parse failures yield a MalformedInput verdict.
  CheckReport checkSource(std::string_view Asm,
                          std::string_view PolicyText);

private:
  void checkImpl(const sparc::Module &M, const policy::Policy &Pol,
                 CheckReport &Report);
  /// The certificate-store path of checkSource: warm hit -> revalidate
  /// and replay; otherwise run cold with capture and store the result.
  CheckReport checkWithCerts(std::string_view Asm,
                             std::string_view PolicyText);

  Options Opts;
};

} // namespace checker
} // namespace mcsafe

#endif // MCSAFE_CHECKER_SAFETYCHECKER_H
