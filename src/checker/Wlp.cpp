//===- Wlp.cpp ------------------------------------------------------------===//

#include "checker/Wlp.h"

#include "policy/Policy.h"

#include <cassert>

using namespace mcsafe;
using namespace mcsafe::checker;
using namespace mcsafe::typestate;
using namespace mcsafe::sparc;
using mcsafe::cfg::CfgEdge;
using mcsafe::cfg::CfgNode;
using mcsafe::cfg::EdgeKind;
using mcsafe::cfg::NodeId;
using mcsafe::cfg::NodeKind;
using mcsafe::policy::locValueVar;
using mcsafe::policy::regValueVar;

namespace {

LinearExpr iccExpr() { return LinearExpr::variable(policy::iccVar()); }

} // namespace

WlpEngine::WlpEngine(const CheckContext &Ctx,
                     const PropagationResult &Prop)
    : Ctx(Ctx), Prop(Prop) {
  Rules.reserve(Ctx.Graph.size());
  for (NodeId Id = 0; Id < Ctx.Graph.size(); ++Id)
    Rules.push_back(buildRule(Id));
}

BackwardRule WlpEngine::buildRule(NodeId Id) const {
  BackwardRule Rule;
  const CfgNode &Node = Ctx.Graph.node(Id);
  int32_t Depth = Node.WindowDepth;
  const AbstractStore &In = Prop.In[Id];

  auto RegVar = [&](Reg R) { return regValueVar(Depth, R); };
  auto RegExprAt = [&](int32_t D, Reg R) {
    if (R.isZero())
      return LinearExpr();
    return LinearExpr::variable(regValueVar(D, R));
  };
  auto RegExpr = [&](Reg R) { return RegExprAt(Depth, R); };
  auto Assign = [&Rule](VarId V, LinearExpr E) {
    Rule.Assigns.emplace_back(V, std::move(E));
  };
  auto Havoc = [&Rule](VarId V) {
    Rule.Assigns.emplace_back(V, std::nullopt);
  };
  auto AssignRd = [&](Reg Rd, std::optional<LinearExpr> E) {
    if (Rd.isZero())
      return;
    if (E)
      Assign(RegVar(Rd), std::move(*E));
    else
      Havoc(RegVar(Rd));
  };

  if (Node.Kind == NodeKind::TrustedCall) {
    // Caller-saved registers, icc, and the summary's written locations
    // lose their values.
    // Must match the forward transformer's clobber set.
    static const uint8_t Clobbered[] = {8, 9, 10, 11, 12, 13, 15, 1};
    for (uint8_t R : Clobbered)
      Havoc(regValueVar(Depth, Reg(R)));
    Havoc(policy::iccVar());
    if (const policy::TrustedSummary *Summary =
            Ctx.Pol->findTrusted(Node.TrustedCallee)) {
      for (const std::string &Written : Summary->Writes) {
        AbsLocId Target = Ctx.Locs.lookup(Written);
        if (Target == InvalidLoc)
          continue;
        std::vector<AbsLocId> Leaves;
        Ctx.Locs.collectLeaves(Target, Leaves);
        for (AbsLocId Leaf : Leaves)
          Havoc(locValueVar(Ctx.Locs.loc(Leaf).Name));
      }
    }
    return Rule;
  }
  if (Node.Kind != NodeKind::Normal)
    return Rule;
  const Instruction &Inst = Ctx.Graph.inst(Id);

  // The second operand as a linear expression, when linear.
  auto Operand = [&]() -> LinearExpr {
    if (Inst.UsesImm)
      return LinearExpr::constant(Inst.Imm);
    return RegExpr(Inst.Rs2);
  };
  // A known-constant operand value from the typestate, if any.
  auto OperandConst = [&]() -> std::optional<int64_t> {
    if (Inst.UsesImm)
      return Inst.Imm;
    if (In.isTop())
      return std::nullopt;
    return In.reg(Depth, Inst.Rs2).S.constant();
  };
  auto Rs1Const = [&]() -> std::optional<int64_t> {
    if (Inst.Rs1.isZero())
      return 0;
    if (In.isTop())
      return std::nullopt;
    return In.reg(Depth, Inst.Rs1).S.constant();
  };

  switch (Inst.Op) {
  case Opcode::ADD:
  case Opcode::SUB:
    AssignRd(Inst.Rd, Inst.Op == Opcode::ADD
                          ? RegExpr(Inst.Rs1) + Operand()
                          : RegExpr(Inst.Rs1) - Operand());
    break;
  case Opcode::ADDCC:
  case Opcode::SUBCC: {
    LinearExpr Value = Inst.Op == Opcode::ADDCC
                           ? RegExpr(Inst.Rs1) + Operand()
                           : RegExpr(Inst.Rs1) - Operand();
    AssignRd(Inst.Rd, Value);
    Assign(policy::iccVar(), Value);
    break;
  }
  case Opcode::OR:
  case Opcode::ORCC: {
    std::optional<LinearExpr> Value;
    if (Inst.Rs1.isZero())
      Value = Operand(); // mov.
    else if (Inst.UsesImm && Inst.Imm == 0)
      Value = RegExpr(Inst.Rs1);
    else if (!Inst.UsesImm && Inst.Rs2.isZero())
      Value = RegExpr(Inst.Rs1);
    else if (Rs1Const() && OperandConst())
      Value = LinearExpr::constant(*Rs1Const() | *OperandConst());
    AssignRd(Inst.Rd, Value);
    if (Inst.Op == Opcode::ORCC) {
      if (Value)
        Assign(policy::iccVar(), *Value);
      else
        Havoc(policy::iccVar());
    }
    break;
  }
  case Opcode::SETHI:
    AssignRd(Inst.Rd,
             LinearExpr::constant(static_cast<int64_t>(Inst.Imm) << 10));
    break;
  case Opcode::SLL:
    // The machine consumes only the low five bits of the count
    // (sparc::shiftCount), so "sll by 33" scales by 2.
    if (Inst.UsesImm && shiftCount(Inst.Imm) < 31)
      AssignRd(Inst.Rd,
               RegExpr(Inst.Rs1).scaled(int64_t(1)
                                        << shiftCount(Inst.Imm)));
    else
      AssignRd(Inst.Rd, std::nullopt);
    break;
  case Opcode::SMUL:
  case Opcode::UMUL:
    if (std::optional<int64_t> C = OperandConst())
      AssignRd(Inst.Rd, RegExpr(Inst.Rs1).scaled(*C));
    else if (std::optional<int64_t> C1 = Rs1Const())
      AssignRd(Inst.Rd, Operand().scaled(*C1));
    else
      AssignRd(Inst.Rd, std::nullopt);
    break;
  case Opcode::AND:
  case Opcode::ANDN:
  case Opcode::ORN:
  case Opcode::XOR:
  case Opcode::XNOR:
  case Opcode::SRL:
  case Opcode::SRA:
  case Opcode::UDIV:
  case Opcode::SDIV: {
    // Non-linear: fall back to the constant-folded typestate when the
    // propagation proved the result constant, else havoc.
    std::optional<LinearExpr> Value;
    if (!In.isTop() && !Inst.Rd.isZero()) {
      AbstractStore Out = transfer(Ctx, Id, In);
      if (std::optional<int64_t> C =
              Out.reg(Depth, Inst.Rd).S.constant())
        Value = LinearExpr::constant(*C);
    }
    AssignRd(Inst.Rd, Value);
    break;
  }
  case Opcode::ANDCC:
  case Opcode::XORCC: {
    std::optional<LinearExpr> Value;
    if (!In.isTop()) {
      AbstractStore Out = transfer(Ctx, Id, In);
      if (!Inst.Rd.isZero())
        if (std::optional<int64_t> C =
                Out.reg(Depth, Inst.Rd).S.constant())
          Value = LinearExpr::constant(*C);
    }
    AssignRd(Inst.Rd, Value);
    Havoc(policy::iccVar());
    break;
  }

  case Opcode::LD:
  case Opcode::LDSB:
  case Opcode::LDSH:
  case Opcode::LDUB:
  case Opcode::LDUH: {
    std::optional<LinearExpr> Value;
    if (!In.isTop()) {
      InstFacts Facts = resolveInst(Ctx, Id, In);
      if (!Facts.Mem.Unresolved && Facts.Mem.Strong)
        Value = LinearExpr::variable(
            locValueVar(Ctx.Locs.loc(Facts.Mem.Leaves[0]).Name));
    }
    AssignRd(Inst.Rd, Value);
    break;
  }
  case Opcode::ST:
  case Opcode::STB:
  case Opcode::STH: {
    if (In.isTop())
      break;
    InstFacts Facts = resolveInst(Ctx, Id, In);
    if (Facts.Mem.Unresolved)
      break; // Reported elsewhere; no sound transformer.
    if (Facts.Mem.Strong) {
      Assign(locValueVar(Ctx.Locs.loc(Facts.Mem.Leaves[0]).Name),
             RegExpr(Inst.Rd));
    } else {
      for (AbsLocId Leaf : Facts.Mem.Leaves)
        Havoc(locValueVar(Ctx.Locs.loc(Leaf).Name));
    }
    break;
  }

  case Opcode::SAVE: {
    // rd (in the NEW window) := rs1 + operand (read in the OLD window).
    if (!Inst.Rd.isZero())
      Assign(regValueVar(Depth + 1, Inst.Rd),
             RegExpr(Inst.Rs1) + Operand());
    // New %i = old %o.
    for (uint8_t K = 0; K < 8; ++K) {
      Reg NewIn = Reg(24 + K);
      Assign(regValueVar(Depth + 1, NewIn), RegExprAt(Depth, Reg(8 + K)));
    }
    // New %l and remaining new %o are undefined.
    for (uint8_t K = 16; K < 24; ++K)
      Havoc(regValueVar(Depth + 1, Reg(K)));
    for (uint8_t K = 8; K < 16; ++K) {
      if (!Inst.Rd.isZero() && Reg(K) == Inst.Rd)
        continue;
      Havoc(regValueVar(Depth + 1, Reg(K)));
    }
    break;
  }
  case Opcode::RESTORE: {
    if (!Inst.Rd.isZero())
      Assign(regValueVar(Depth - 1, Inst.Rd),
             RegExpr(Inst.Rs1) + Operand());
    for (uint8_t K = 0; K < 8; ++K) {
      if (!Inst.Rd.isZero() && Reg(8 + K) == Inst.Rd)
        continue;
      Assign(regValueVar(Depth - 1, Reg(8 + K)),
             RegExprAt(Depth, Reg(24 + K)));
    }
    break;
  }

  case Opcode::CALL:
    Havoc(regValueVar(Depth, O7));
    break;
  case Opcode::JMPL:
    if (!Inst.Rd.isZero())
      Havoc(regValueVar(Depth, Inst.Rd));
    break;
  default:
    break; // Branches: identity.
  }
  return Rule;
}

FormulaRef WlpEngine::transformNode(NodeId Id,
                                    const FormulaRef &Post) const {
  FormulaRef F = Post;
  const BackwardRule &Rule = Rules[Id];
  for (const auto &[Var, Expr] : Rule.Assigns) {
    if (F->isTrue() || F->isFalse())
      break;
    if (!F->freeVars().count(Var))
      continue;
    if (Expr) {
      F = Formula::substitute(F, Var, *Expr);
    } else {
      VarId Fresh = freshVar("h." + varName(Var));
      F = Formula::substitute(F, Var, LinearExpr::variable(Fresh));
    }
  }
  return F;
}

FormulaRef WlpEngine::edgeCondition(const CfgEdge &E) const {
  if (E.Kind == EdgeKind::Flow)
    return Formula::mkTrue();
  bool Taken = E.Kind == EdgeKind::Taken;
  LinearExpr Icc = iccExpr();
  auto Ge = [&](LinearExpr X) { return Formula::atom(Constraint::ge(X)); };
  switch (E.BranchOp) {
  case Opcode::BE:
    return Taken ? Formula::atom(Constraint::eq(Icc))
                 : Formula::negate(Formula::atom(Constraint::eq(Icc)));
  case Opcode::BNE:
    return Taken ? Formula::negate(Formula::atom(Constraint::eq(Icc)))
                 : Formula::atom(Constraint::eq(Icc));
  case Opcode::BL:
    return Taken ? Ge((-Icc).plusConstant(-1)) : Ge(Icc);
  case Opcode::BGE:
    return Taken ? Ge(Icc) : Ge((-Icc).plusConstant(-1));
  case Opcode::BG:
    return Taken ? Ge(Icc.plusConstant(-1)) : Ge(-Icc);
  case Opcode::BLE:
    return Taken ? Ge(-Icc) : Ge(Icc.plusConstant(-1));
  case Opcode::BPOS:
    return Taken ? Ge(Icc) : Ge((-Icc).plusConstant(-1));
  case Opcode::BNEG:
    return Taken ? Ge((-Icc).plusConstant(-1)) : Ge(Icc);
  default:
    // Unsigned and overflow branches: no linear information.
    return Formula::mkTrue();
  }
}

std::set<VarId>
WlpEngine::modifiedVars(const std::vector<NodeId> &Body) const {
  std::set<VarId> Vars;
  for (NodeId Id : Body)
    for (const auto &[Var, Expr] : Rules[Id].Assigns) {
      (void)Expr;
      Vars.insert(Var);
    }
  return Vars;
}
