//===- Wlp.h - Weakest-liberal-precondition transformers --------*- C++ -*-===//
//
// Part of mcsafe, a reproduction of "Safety Checking of Machine Code"
// (Xu, Miller, Reps; PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Backward (wlp) transformers for the normalized CFG, used by the
/// global-verification phase. Each node gets a precomputed backward rule:
/// a sequence of assignments "variable := linear expression" (register
/// writes with linear semantics, strong loads/stores through abstract-
/// location value variables per Morris's general axiom of assignment) and
/// havocs (non-linear results, weak updates, clobbers).
///
/// A havocked variable is replaced by a globally fresh free variable;
/// since free variables of a verification condition are implicitly
/// universally quantified, this is exactly wlp for a nondeterministic
/// assignment.
///
/// Conditional-branch edges carry linear conditions over the variable
/// "icc" (set by cmp/subcc to rs1 - operand); unsigned branches carry no
/// linear information and conservatively contribute "true" (requiring the
/// postcondition on both sides).
///
//===----------------------------------------------------------------------===//

#ifndef MCSAFE_CHECKER_WLP_H
#define MCSAFE_CHECKER_WLP_H

#include "checker/Annotation.h"
#include "checker/CheckContext.h"
#include "checker/Propagation.h"

#include <optional>
#include <vector>

namespace mcsafe {
namespace checker {

/// Backward semantics of one node.
struct BackwardRule {
  /// Applied in order; nullopt expression = havoc (fresh variable).
  std::vector<std::pair<VarId, std::optional<LinearExpr>>> Assigns;
};

/// Precomputes and applies backward rules.
class WlpEngine {
public:
  WlpEngine(const CheckContext &Ctx, const PropagationResult &Prop);

  /// wlp across node \p Id: given \p Post (holds after the node), the
  /// formula that must hold before it.
  FormulaRef transformNode(cfg::NodeId Id, const FormulaRef &Post) const;

  /// Linear condition under which edge \p E is taken (over "icc").
  FormulaRef edgeCondition(const cfg::CfgEdge &E) const;

  /// Variables (registers, icc, location values) the nodes of \p Body may
  /// modify — the candidate set for the generalization heuristic.
  std::set<VarId> modifiedVars(const std::vector<cfg::NodeId> &Body) const;

  const BackwardRule &rule(cfg::NodeId Id) const { return Rules[Id]; }

private:
  BackwardRule buildRule(cfg::NodeId Id) const;

  const CheckContext &Ctx;
  const PropagationResult &Prop;
  std::vector<BackwardRule> Rules;
};

} // namespace checker
} // namespace mcsafe

#endif // MCSAFE_CHECKER_WLP_H
