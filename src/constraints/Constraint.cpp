//===- Constraint.cpp -----------------------------------------------------===//

#include "constraints/Constraint.h"

#include "support/CheckedInt.h"
#include "support/Digest.h"

#include <cassert>
#include <sstream>

using namespace mcsafe;

namespace {

/// Divides every coefficient of \p E by \p G, flooring the constant
/// (sound tightening for GE over integers).
LinearExpr divideTightened(const LinearExpr &E, int64_t G) {
  assert(G >= 1);
  LinearExpr Result = LinearExpr::constant(floorDiv(E.constantValue(), G));
  for (const auto &[V, Coeff] : E.terms())
    Result = Result + LinearExpr::variable(V).scaled(Coeff / G);
  return Result;
}

/// Divides exactly (used for EQ where G | constant is pre-checked).
LinearExpr divideExact(const LinearExpr &E, int64_t G) {
  assert(G >= 1 && E.constantValue() % G == 0);
  LinearExpr Result = LinearExpr::constant(E.constantValue() / G);
  for (const auto &[V, Coeff] : E.terms())
    Result = Result + LinearExpr::variable(V).scaled(Coeff / G);
  return Result;
}

} // namespace

Constraint Constraint::ge(LinearExpr E) {
  if (!E.isPoisoned()) {
    int64_t G = E.coeffGcd();
    if (G > 1)
      E = divideTightened(E, G);
  }
  return Constraint(ConstraintKind::GE, std::move(E), 0);
}

Constraint Constraint::eq(LinearExpr E) {
  if (!E.isPoisoned()) {
    int64_t G = E.coeffGcd();
    if (G > 1 && E.constantValue() % G == 0)
      E = divideExact(E, G);
    // When G does not divide the constant, constantTruth() reports false;
    // keep the raw expression. Canonicalize the sign (leading coefficient,
    // or the constant for variable-free expressions, is positive) so
    // structural equality identifies e == 0 with -e == 0.
    if (!E.terms().empty()) {
      if (E.terms().front().second < 0)
        E = -E;
    } else if (E.constantValue() < 0) {
      E = -E;
    }
  }
  return Constraint(ConstraintKind::EQ, std::move(E), 0);
}

Constraint Constraint::divides(int64_t D, LinearExpr E) {
  assert(D >= 1 && "modulus must be positive");
  if (!E.isPoisoned() && D > 1) {
    LinearExpr Reduced = LinearExpr::constant(floorMod(E.constantValue(), D));
    for (const auto &[V, Coeff] : E.terms()) {
      int64_t C = floorMod(Coeff, D);
      if (C != 0)
        Reduced = Reduced + LinearExpr::variable(V).scaled(C);
    }
    E = std::move(Reduced);
  }
  return Constraint(ConstraintKind::DIV, std::move(E), D);
}

Constraint Constraint::notDivides(int64_t D, LinearExpr E) {
  Constraint C = divides(D, std::move(E));
  return Constraint(ConstraintKind::NDIV, C.Expr, D);
}

std::optional<Constraint> Constraint::fromSerialized(ConstraintKind Kind,
                                                     LinearExpr E,
                                                     int64_t Modulus) {
  switch (Kind) {
  case ConstraintKind::GE:
  case ConstraintKind::EQ:
    if (Modulus != 0)
      return std::nullopt;
    break;
  case ConstraintKind::DIV:
  case ConstraintKind::NDIV:
    if (Modulus < 1)
      return std::nullopt;
    break;
  default:
    return std::nullopt;
  }
  return Constraint(Kind, std::move(E), Modulus);
}

std::optional<bool> Constraint::constantTruth() const {
  if (Expr.isPoisoned())
    return std::nullopt;
  switch (Kind) {
  case ConstraintKind::GE:
    if (Expr.isConstant())
      return Expr.constantValue() >= 0;
    return std::nullopt;
  case ConstraintKind::EQ: {
    if (Expr.isConstant())
      return Expr.constantValue() == 0;
    int64_t G = Expr.coeffGcd();
    if (G > 1 && Expr.constantValue() % G != 0)
      return false;
    return std::nullopt;
  }
  case ConstraintKind::DIV:
    if (Modulus == 1)
      return true;
    if (Expr.isConstant())
      return floorMod(Expr.constantValue(), Modulus) == 0;
    return std::nullopt;
  case ConstraintKind::NDIV:
    if (Modulus == 1)
      return false;
    if (Expr.isConstant())
      return floorMod(Expr.constantValue(), Modulus) != 0;
    return std::nullopt;
  }
  return std::nullopt;
}

Constraint Constraint::substitute(VarId V,
                                  const LinearExpr &Replacement) const {
  if (!Expr.references(V))
    return *this;
  LinearExpr NewExpr = Expr.substitute(V, Replacement);
  switch (Kind) {
  case ConstraintKind::GE:
    return ge(std::move(NewExpr));
  case ConstraintKind::EQ:
    return eq(std::move(NewExpr));
  case ConstraintKind::DIV:
    return divides(Modulus, std::move(NewExpr));
  case ConstraintKind::NDIV:
    return notDivides(Modulus, std::move(NewExpr));
  }
  assert(false && "unknown constraint kind");
  return *this;
}

std::string Constraint::str() const {
  std::ostringstream OS;
  switch (Kind) {
  case ConstraintKind::GE:
    OS << Expr.str() << " >= 0";
    break;
  case ConstraintKind::EQ:
    OS << Expr.str() << " = 0";
    break;
  case ConstraintKind::DIV:
    OS << Modulus << " | " << Expr.str();
    break;
  case ConstraintKind::NDIV:
    OS << Modulus << " !| " << Expr.str();
    break;
  }
  return OS.str();
}

uint64_t Constraint::hash() const {
  uint64_t H = Expr.hash();
  H = support::combine64(H, static_cast<uint64_t>(Kind));
  H = support::combine64(H, support::signedBits(Modulus));
  return H;
}
