//===- Constraint.h - Atomic linear constraints -----------------*- C++ -*-===//
//
// Part of mcsafe, a reproduction of "Safety Checking of Machine Code"
// (Xu, Miller, Reps; PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Atomic constraints of the Presburger fragment the checker uses:
///   GE:    e >= 0
///   EQ:    e == 0
///   DIV:   d | e        (divisibility; encodes the paper's align(A, n)
///                        predicate, "exists a such that A = n*a")
///   NDIV:  not (d | e)
/// Over affine expressions e and constant moduli d >= 1. GE/EQ atoms are
/// kept gcd-normalized (with sound tightening for GE), so syntactic
/// equality catches most semantic duplicates.
///
//===----------------------------------------------------------------------===//

#ifndef MCSAFE_CONSTRAINTS_CONSTRAINT_H
#define MCSAFE_CONSTRAINTS_CONSTRAINT_H

#include "constraints/LinearExpr.h"

#include <optional>
#include <string>

namespace mcsafe {

/// Kind of an atomic constraint.
enum class ConstraintKind : uint8_t {
  GE,   ///< Expr >= 0.
  EQ,   ///< Expr == 0.
  DIV,  ///< Modulus divides Expr.
  NDIV, ///< Modulus does not divide Expr.
};

/// An atomic linear constraint.
class Constraint {
public:
  /// e >= 0, gcd-tightened: (g*e' + c >= 0)  ->  (e' + floor(c/g) >= 0).
  static Constraint ge(LinearExpr E);
  /// a >= b.
  static Constraint ge(const LinearExpr &A, const LinearExpr &B) {
    return ge(A - B);
  }
  /// a > b  (integers: a >= b + 1).
  static Constraint gt(const LinearExpr &A, const LinearExpr &B) {
    return ge((A - B).plusConstant(-1));
  }
  /// a <= b.
  static Constraint le(const LinearExpr &A, const LinearExpr &B) {
    return ge(B - A);
  }
  /// a < b.
  static Constraint lt(const LinearExpr &A, const LinearExpr &B) {
    return gt(B, A);
  }
  /// e == 0, gcd-normalized; an indivisible constant makes it trivially
  /// false (see constantTruth()).
  static Constraint eq(LinearExpr E);
  static Constraint eq(const LinearExpr &A, const LinearExpr &B) {
    return eq(A - B);
  }
  /// d | e, with coefficients reduced modulo d. Requires d >= 1.
  static Constraint divides(int64_t D, LinearExpr E);
  /// not (d | e). Requires d >= 1.
  static Constraint notDivides(int64_t D, LinearExpr E);

  /// Rebuilds a constraint from its serialized fields WITHOUT
  /// renormalizing — the deserialization path (constraints/Serialize.h),
  /// where the expression is already in the canonical form the factories
  /// above produced before it was stored. Bypassing normalization
  /// guarantees the reconstruction is structurally identical to the
  /// original (and hence re-interns to the same formula node); shape
  /// violations (a modulus where the kind takes none, a modulus < 1
  /// where it does) return nullopt.
  static std::optional<Constraint> fromSerialized(ConstraintKind Kind,
                                                  LinearExpr E,
                                                  int64_t Modulus);

  ConstraintKind kind() const { return Kind; }
  const LinearExpr &expr() const { return Expr; }
  int64_t modulus() const { return Modulus; }
  bool isPoisoned() const { return Expr.isPoisoned(); }

  /// When the constraint is trivially decidable (constant expression, or
  /// an EQ whose gcd does not divide the constant) returns its truth
  /// value; nullopt otherwise. Poisoned constraints return nullopt.
  std::optional<bool> constantTruth() const;

  Constraint substitute(VarId V, const LinearExpr &Replacement) const;

  void collectVars(std::vector<VarId> &Out) const {
    Expr.collectVars(Out);
  }

  friend bool operator==(const Constraint &A, const Constraint &B) {
    return A.Kind == B.Kind && A.Modulus == B.Modulus && A.Expr == B.Expr;
  }

  std::string str() const;
  /// Stable 64-bit content hash (support/Digest.h mixer).
  uint64_t hash() const;

private:
  Constraint(ConstraintKind Kind, LinearExpr Expr, int64_t Modulus)
      : Kind(Kind), Expr(std::move(Expr)), Modulus(Modulus) {}

  ConstraintKind Kind;
  LinearExpr Expr;
  int64_t Modulus = 0; ///< Only meaningful for DIV / NDIV.
};

} // namespace mcsafe

#endif // MCSAFE_CONSTRAINTS_CONSTRAINT_H
