//===- Eliminate.cpp ------------------------------------------------------===//

#include "constraints/Eliminate.h"

#include "constraints/Normalize.h"
#include "support/CheckedInt.h"

#include <cassert>

using namespace mcsafe;

std::optional<std::vector<Constraint>>
mcsafe::projectOut(std::vector<Constraint> Conjuncts,
                   const std::set<VarId> &Vars, size_t MaxConstraints) {
  for (VarId X : Vars) {
    // First, use an equality with a unit coefficient on X for an exact
    // substitution.
    bool Substituted = false;
    for (size_t I = 0; I < Conjuncts.size() && !Substituted; ++I) {
      const Constraint &C = Conjuncts[I];
      if (C.kind() != ConstraintKind::EQ || C.isPoisoned())
        continue;
      int64_t A = C.expr().coeff(X);
      if (A != 1 && A != -1)
        continue;
      LinearExpr Rest = C.expr().substitute(X, LinearExpr());
      LinearExpr Solution = Rest.scaled(-A);
      if (Solution.isPoisoned())
        return std::nullopt;
      std::vector<Constraint> Next;
      Next.reserve(Conjuncts.size() - 1);
      for (size_t J = 0; J < Conjuncts.size(); ++J) {
        if (J == I)
          continue;
        Constraint S = Conjuncts[J].substitute(X, Solution);
        if (S.isPoisoned())
          return std::nullopt;
        Next.push_back(std::move(S));
      }
      Conjuncts = std::move(Next);
      Substituted = true;
    }
    if (Substituted)
      continue;

    // Otherwise: split remaining equalities on X into opposing
    // inequalities, drop DIV/NDIV atoms on X, and Fourier-Motzkin the
    // inequalities (real shadow).
    std::vector<LinearExpr> Lowers, Uppers;
    std::vector<Constraint> Others;
    for (const Constraint &C : Conjuncts) {
      if (C.isPoisoned())
        return std::nullopt;
      int64_t A = C.expr().coeff(X);
      if (A == 0) {
        Others.push_back(C);
        continue;
      }
      switch (C.kind()) {
      case ConstraintKind::GE:
        (A > 0 ? Lowers : Uppers).push_back(C.expr());
        break;
      case ConstraintKind::EQ:
        Lowers.push_back(C.expr());
        Uppers.push_back(-C.expr());
        break;
      case ConstraintKind::DIV:
      case ConstraintKind::NDIV:
        break; // Dropped: over-approximation.
      }
    }
    for (const LinearExpr &Lo : Lowers) {
      int64_t A = Lo.coeff(X);
      LinearExpr R1 = Lo.substitute(X, LinearExpr());
      for (const LinearExpr &Up : Uppers) {
        int64_t B = -Up.coeff(X);
        assert(A > 0 && B > 0);
        LinearExpr R2 = Up.substitute(X, LinearExpr());
        LinearExpr Combo = R1.scaled(B) + R2.scaled(A);
        if (Combo.isPoisoned())
          return std::nullopt;
        Constraint NewC = Constraint::ge(std::move(Combo));
        if (std::optional<bool> Truth = NewC.constantTruth()) {
          if (!*Truth)
            Others.push_back(NewC); // Keep the contradiction visible.
          continue;
        }
        Others.push_back(std::move(NewC));
        if (Others.size() > MaxConstraints)
          return std::nullopt;
      }
    }
    Conjuncts = std::move(Others);
  }
  return Conjuncts;
}

std::vector<FormulaRef> mcsafe::generalize(const FormulaRef &F,
                                           const std::set<VarId> &Vars) {
  std::vector<FormulaRef> Candidates;
  DnfResult Dnf = toDNF(Formula::negate(F), /*MaxDisjuncts=*/64,
                        /*MaxAtoms=*/128);
  if (Dnf.BudgetExceeded)
    return Candidates;
  auto AddCandidate = [&Candidates](const std::vector<Constraint> &Conj) {
    if (Conj.empty())
      return; // "true": its negation is useless.
    std::vector<FormulaRef> Atoms;
    Atoms.reserve(Conj.size());
    for (const Constraint &C : Conj)
      Atoms.push_back(Formula::atom(C));
    FormulaRef Candidate = Formula::negate(Formula::conj(std::move(Atoms)));
    if (Candidate->isTrue() || Candidate->isFalse())
      return;
    for (const FormulaRef &Existing : Candidates)
      if (Formula::equal(Existing, Candidate))
        return;
    Candidates.push_back(std::move(Candidate));
  };

  for (const std::vector<Constraint> &Disjunct : Dnf.Disjuncts) {
    // The projected form (the classic generalization) ...
    if (!Vars.empty()) {
      if (std::optional<std::vector<Constraint>> Projected =
              projectOut(Disjunct, Vars))
        AddCandidate(*Projected);
    }
    // ... and the unprojected per-disjunct negation, which retains
    // relations among the modified variables (useful when the needed
    // invariant mentions them, e.g. "i <= n").
    AddCandidate(Disjunct);
  }
  return Candidates;
}
