//===- Eliminate.h - Fourier-Motzkin variable projection --------*- C++ -*-===//
//
// Part of mcsafe, a reproduction of "Safety Checking of Machine Code"
// (Xu, Miller, Reps; PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fourier-Motzkin projection of a conjunction of linear constraints onto
/// a subset of its variables. The projection is an over-approximation
/// (real shadow) of the integer solution set, which is exactly what the
/// paper's "generalization" heuristic needs:
///
///   generalization(f) = not(elimination(not f))      (Section 5.2.1)
///
/// Because elimination over-approximates, the generalization is *stronger*
/// than f — a legitimate candidate invariant, whose actual invariance is
/// re-verified by the induction-iteration method afterwards.
///
//===----------------------------------------------------------------------===//

#ifndef MCSAFE_CONSTRAINTS_ELIMINATE_H
#define MCSAFE_CONSTRAINTS_ELIMINATE_H

#include "constraints/Constraint.h"
#include "constraints/Formula.h"

#include <optional>
#include <set>
#include <vector>

namespace mcsafe {

/// Projects \p Vars out of the conjunction \p Conjuncts. Equalities with a
/// unit coefficient are substituted exactly; other equalities are split
/// into opposing inequalities; DIV/NDIV atoms mentioning an eliminated
/// variable are dropped (a further over-approximation). Returns nullopt
/// when the system exceeds \p MaxConstraints or arithmetic overflows.
std::optional<std::vector<Constraint>>
projectOut(std::vector<Constraint> Conjuncts, const std::set<VarId> &Vars,
           size_t MaxConstraints = 512);

/// The paper's generalization heuristic applied to a formula: one
/// candidate not(projectOut(Vars, D)) per disjunct D of DNF(not f).
/// The candidates are heuristic trial invariants — the induction-iteration
/// driver re-establishes soundness by certifying the final invariant
/// against the loop body, so the candidates themselves carry no semantic
/// guarantee. Returns an empty list when elimination failed or produced
/// nothing useful.
std::vector<FormulaRef> generalize(const FormulaRef &F,
                                   const std::set<VarId> &Vars);

} // namespace mcsafe

#endif // MCSAFE_CONSTRAINTS_ELIMINATE_H
