//===- Formula.cpp --------------------------------------------------------===//

#include "constraints/Formula.h"

#include "support/FaultInjection.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <new>
#include <sstream>

using namespace mcsafe;

namespace mcsafe {
/// Grants access to the private constructor and fields from the file-local
/// helper functions.
class FormulaFactory {
public:
  static std::shared_ptr<Formula> make(FormulaKind Kind) {
    // Injected allocator fault: simulate memory exhaustion at the one
    // chokepoint every formula passes through. The check boundary turns
    // the bad_alloc into an InternalError verdict, never a crash.
    if (support::faultPoint("alloc/formula"))
      throw std::bad_alloc();
    return std::shared_ptr<Formula>(new Formula(Kind));
  }
  static void setChildren(Formula &F, std::vector<FormulaRef> Children) {
    F.Children = std::move(Children);
  }
  static void setBoundVar(Formula &F, VarId V) { F.BoundVar = V; }
  static void setAtom(Formula &F, Constraint C) {
    F.Atom = std::make_shared<Constraint>(std::move(C));
  }
};
} // namespace mcsafe

FormulaRef Formula::mkTrue() {
  static FormulaRef T = FormulaFactory::make(FormulaKind::True);
  return T;
}

FormulaRef Formula::mkFalse() {
  static FormulaRef F = FormulaFactory::make(FormulaKind::False);
  return F;
}

FormulaRef Formula::atom(Constraint C) {
  if (std::optional<bool> Truth = C.constantTruth())
    return *Truth ? mkTrue() : mkFalse();
  auto Node = FormulaFactory::make(FormulaKind::Atom);
  FormulaFactory::setAtom(*Node, std::move(C));
  return Node;
}

const Constraint &Formula::constraint() const {
  assert(Kind == FormulaKind::Atom && "not an atom");
  return *Atom;
}

namespace {

/// Flattens \p Children of kind \p K into \p Out, deduplicating
/// structurally. Returns false if an absorbing child (False for And, True
/// for Or) was found.
bool flattenInto(FormulaKind K, const std::vector<FormulaRef> &Children,
                 std::vector<FormulaRef> &Out) {
  FormulaKind Absorbing =
      K == FormulaKind::And ? FormulaKind::False : FormulaKind::True;
  FormulaKind Neutral =
      K == FormulaKind::And ? FormulaKind::True : FormulaKind::False;
  for (const FormulaRef &C : Children) {
    assert(C && "null formula child");
    if (C->kind() == Absorbing)
      return false;
    if (C->kind() == Neutral)
      continue;
    if (C->kind() == K) {
      if (!flattenInto(K, C->children(), Out))
        return false;
      continue;
    }
    bool Duplicate = false;
    for (const FormulaRef &Existing : Out)
      if (Formula::equal(Existing, C)) {
        Duplicate = true;
        break;
      }
    if (!Duplicate)
      Out.push_back(C);
  }
  return true;
}

FormulaRef makeNary(FormulaKind K, std::vector<FormulaRef> Children) {
  std::vector<FormulaRef> Flat;
  if (!flattenInto(K, Children, Flat))
    return K == FormulaKind::And ? Formula::mkFalse() : Formula::mkTrue();
  if (Flat.empty())
    return K == FormulaKind::And ? Formula::mkTrue() : Formula::mkFalse();
  if (Flat.size() == 1)
    return Flat.front();
  auto Node = FormulaFactory::make(K);
  FormulaFactory::setChildren(*Node, std::move(Flat));
  return Node;
}

} // namespace

FormulaRef Formula::conj(std::vector<FormulaRef> Children) {
  return makeNary(FormulaKind::And, std::move(Children));
}

FormulaRef Formula::disj(std::vector<FormulaRef> Children) {
  return makeNary(FormulaKind::Or, std::move(Children));
}

FormulaRef Formula::exists(VarId V, FormulaRef Body) {
  assert(Body && "null body");
  if (Body->isTrue() || Body->isFalse() || !Body->freeVars().count(V))
    return Body;
  auto Node = FormulaFactory::make(FormulaKind::Exists);
  Node->Children.push_back(std::move(Body));
  Node->BoundVar = V;
  return Node;
}

FormulaRef Formula::forall(VarId V, FormulaRef Body) {
  assert(Body && "null body");
  if (Body->isTrue() || Body->isFalse() || !Body->freeVars().count(V))
    return Body;
  auto Node = FormulaFactory::make(FormulaKind::Forall);
  Node->Children.push_back(std::move(Body));
  Node->BoundVar = V;
  return Node;
}

FormulaRef Formula::implies(const FormulaRef &A, FormulaRef B) {
  return disj2(negate(A), std::move(B));
}

FormulaRef Formula::negate(const FormulaRef &F) {
  assert(F && "null formula");
  switch (F->kind()) {
  case FormulaKind::True:
    return mkFalse();
  case FormulaKind::False:
    return mkTrue();
  case FormulaKind::Atom: {
    const Constraint &C = F->constraint();
    switch (C.kind()) {
    case ConstraintKind::GE:
      // not (e >= 0)  <=>  -e - 1 >= 0.
      return atom(Constraint::ge((-C.expr()).plusConstant(-1)));
    case ConstraintKind::EQ:
      // not (e == 0)  <=>  e >= 1  or  e <= -1.
      return disj2(atom(Constraint::ge(C.expr().plusConstant(-1))),
                   atom(Constraint::ge((-C.expr()).plusConstant(-1))));
    case ConstraintKind::DIV:
      return atom(Constraint::notDivides(C.modulus(), C.expr()));
    case ConstraintKind::NDIV:
      return atom(Constraint::divides(C.modulus(), C.expr()));
    }
    assert(false && "unknown constraint kind");
    return mkTrue();
  }
  case FormulaKind::And:
  case FormulaKind::Or: {
    std::vector<FormulaRef> Negated;
    Negated.reserve(F->children().size());
    for (const FormulaRef &C : F->children())
      Negated.push_back(negate(C));
    return F->kind() == FormulaKind::And ? disj(std::move(Negated))
                                         : conj(std::move(Negated));
  }
  case FormulaKind::Exists:
    return forall(F->boundVar(), negate(F->children().front()));
  case FormulaKind::Forall:
    return exists(F->boundVar(), negate(F->children().front()));
  }
  assert(false && "unknown formula kind");
  return mkTrue();
}

size_t Formula::size() const {
  size_t N = 1;
  for (const FormulaRef &C : Children)
    N += C->size();
  return N;
}

namespace {

void collectFreeVars(const Formula &F, std::set<VarId> &Bound,
                     std::set<VarId> &Out) {
  switch (F.kind()) {
  case FormulaKind::True:
  case FormulaKind::False:
    return;
  case FormulaKind::Atom: {
    std::vector<VarId> Vars;
    F.constraint().collectVars(Vars);
    for (VarId V : Vars)
      if (!Bound.count(V))
        Out.insert(V);
    return;
  }
  case FormulaKind::And:
  case FormulaKind::Or:
    for (const FormulaRef &C : F.children())
      collectFreeVars(*C, Bound, Out);
    return;
  case FormulaKind::Exists:
  case FormulaKind::Forall: {
    bool Inserted = Bound.insert(F.boundVar()).second;
    collectFreeVars(*F.children().front(), Bound, Out);
    if (Inserted)
      Bound.erase(F.boundVar());
    return;
  }
  }
}

} // namespace

std::set<VarId> Formula::freeVars() const {
  std::set<VarId> Bound, Out;
  collectFreeVars(*this, Bound, Out);
  return Out;
}

FormulaRef Formula::substitute(const FormulaRef &F, VarId V,
                               const LinearExpr &Replacement) {
  switch (F->kind()) {
  case FormulaKind::True:
  case FormulaKind::False:
    return F;
  case FormulaKind::Atom:
    if (!F->constraint().expr().references(V))
      return F;
    return atom(F->constraint().substitute(V, Replacement));
  case FormulaKind::And:
  case FormulaKind::Or: {
    std::vector<FormulaRef> NewChildren;
    NewChildren.reserve(F->children().size());
    bool Changed = false;
    for (const FormulaRef &C : F->children()) {
      FormulaRef NewChild = substitute(C, V, Replacement);
      Changed |= NewChild != C;
      NewChildren.push_back(std::move(NewChild));
    }
    if (!Changed)
      return F;
    return F->kind() == FormulaKind::And ? conj(std::move(NewChildren))
                                         : disj(std::move(NewChildren));
  }
  case FormulaKind::Exists:
  case FormulaKind::Forall: {
    if (F->boundVar() == V)
      return F;
    FormulaRef NewBody = substitute(F->children().front(), V, Replacement);
    if (NewBody == F->children().front())
      return F;
    return F->kind() == FormulaKind::Exists
               ? exists(F->boundVar(), std::move(NewBody))
               : forall(F->boundVar(), std::move(NewBody));
  }
  }
  assert(false && "unknown formula kind");
  return F;
}

bool Formula::equal(const FormulaRef &A, const FormulaRef &B) {
  if (A == B)
    return true;
  if (!A || !B || A->Kind != B->Kind)
    return false;
  switch (A->Kind) {
  case FormulaKind::True:
  case FormulaKind::False:
    return true;
  case FormulaKind::Atom:
    return *A->Atom == *B->Atom;
  case FormulaKind::And:
  case FormulaKind::Or: {
    if (A->Children.size() != B->Children.size())
      return false;
    for (size_t I = 0; I < A->Children.size(); ++I)
      if (!equal(A->Children[I], B->Children[I]))
        return false;
    return true;
  }
  case FormulaKind::Exists:
  case FormulaKind::Forall:
    return A->BoundVar == B->BoundVar &&
           equal(A->Children.front(), B->Children.front());
  }
  return false;
}

size_t Formula::hash() const {
  size_t H = std::hash<int>()(static_cast<int>(Kind));
  auto Mix = [&H](size_t V) {
    H ^= V + 0x9e3779b97f4a7c15ull + (H << 6) + (H >> 2);
  };
  if (Kind == FormulaKind::Atom)
    Mix(Atom->hash());
  if (Kind == FormulaKind::Exists || Kind == FormulaKind::Forall)
    Mix(std::hash<uint32_t>()(BoundVar.index()));
  for (const FormulaRef &C : Children)
    Mix(C->hash());
  return H;
}

std::string Formula::str() const {
  switch (Kind) {
  case FormulaKind::True:
    return "true";
  case FormulaKind::False:
    return "false";
  case FormulaKind::Atom:
    return Atom->str();
  case FormulaKind::And:
  case FormulaKind::Or: {
    std::ostringstream OS;
    const char *Sep = Kind == FormulaKind::And ? " && " : " || ";
    OS << '(';
    for (size_t I = 0; I < Children.size(); ++I) {
      if (I)
        OS << Sep;
      OS << Children[I]->str();
    }
    OS << ')';
    return OS.str();
  }
  case FormulaKind::Exists:
  case FormulaKind::Forall: {
    std::ostringstream OS;
    OS << (Kind == FormulaKind::Exists ? "exists " : "forall ")
       << varName(BoundVar) << ". " << Children.front()->str();
    return OS.str();
  }
  }
  return "?";
}

namespace {

/// Prunes duplicate / subsumed GE atoms among the atomic conjuncts of an
/// And node. Two GE atoms with identical variable terms keep only the
/// tighter one; an exact contradictory pair collapses to false.
FormulaRef pruneConjuncts(const FormulaRef &F) {
  if (F->kind() != FormulaKind::And)
    return F;
  // Map from term-vector signature to the tightest GE atom seen.
  struct GeInfo {
    size_t ChildIndex;
    int64_t Constant;
  };
  std::map<std::string, GeInfo> TightestGe;
  std::vector<bool> Dropped(F->children().size(), false);

  auto TermSignature = [](const LinearExpr &E) {
    std::ostringstream OS;
    for (const auto &[V, C] : E.terms())
      OS << V.index() << '*' << C << ';';
    return OS.str();
  };

  for (size_t I = 0; I < F->children().size(); ++I) {
    const FormulaRef &C = F->children()[I];
    if (C->kind() != FormulaKind::Atom)
      continue;
    const Constraint &A = C->constraint();
    if (A.kind() != ConstraintKind::GE || A.isPoisoned())
      continue;
    std::string Sig = TermSignature(A.expr());
    auto It = TightestGe.find(Sig);
    if (It == TightestGe.end()) {
      TightestGe[Sig] = {I, A.expr().constantValue()};
      continue;
    }
    // e + c >= 0 means e >= -c: smaller c is tighter.
    if (A.expr().constantValue() < It->second.Constant) {
      Dropped[It->second.ChildIndex] = true;
      It->second = {I, A.expr().constantValue()};
    } else {
      Dropped[I] = true;
    }
  }

  std::vector<FormulaRef> Kept;
  bool Changed = false;
  for (size_t I = 0; I < F->children().size(); ++I) {
    if (Dropped[I]) {
      Changed = true;
      continue;
    }
    Kept.push_back(F->children()[I]);
  }
  if (!Changed)
    return F;
  return Formula::conj(std::move(Kept));
}

} // namespace

FormulaRef mcsafe::simplify(const FormulaRef &F) {
  switch (F->kind()) {
  case FormulaKind::True:
  case FormulaKind::False:
  case FormulaKind::Atom:
    return F;
  case FormulaKind::And:
  case FormulaKind::Or: {
    std::vector<FormulaRef> NewChildren;
    NewChildren.reserve(F->children().size());
    for (const FormulaRef &C : F->children())
      NewChildren.push_back(simplify(C));
    FormulaRef Rebuilt = F->kind() == FormulaKind::And
                             ? Formula::conj(std::move(NewChildren))
                             : Formula::disj(std::move(NewChildren));
    return pruneConjuncts(Rebuilt);
  }
  case FormulaKind::Exists:
    return Formula::exists(F->boundVar(),
                           simplify(F->children().front()));
  case FormulaKind::Forall:
    return Formula::forall(F->boundVar(),
                           simplify(F->children().front()));
  }
  return F;
}
