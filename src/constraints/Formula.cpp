//===- Formula.cpp --------------------------------------------------------===//

#include "constraints/Formula.h"

#include "support/Arena.h"
#include "support/Digest.h"
#include "support/FaultInjection.h"

#include <cassert>
#include <map>
#include <mutex>
#include <new>
#include <sstream>
#include <unordered_map>

using namespace mcsafe;

//===----------------------------------------------------------------------===//
// The interner
//===----------------------------------------------------------------------===//

namespace mcsafe {

/// The process-wide hash-consing table. Nodes are immortal: they are
/// placement-constructed into arena slabs and never destroyed, so a
/// FormulaRef (a bare pointer) can be copied freely across threads and
/// cached for the process lifetime, exactly like interned VarIds. The
/// singleton itself is heap-allocated and intentionally leaked so no
/// static-destruction order can invalidate live handles (it stays
/// reachable from the global pointer, which keeps LeakSanitizer quiet).
class FormulaInterner {
public:
  static FormulaInterner &get() {
    static FormulaInterner *I = new FormulaInterner();
    return *I;
  }

  /// Interns a node with the given shape, returning the canonical ref.
  /// \p Children must already be canonical refs.
  FormulaRef intern(FormulaKind Kind, VarId BoundVar,
                    std::optional<Constraint> Atom,
                    std::vector<FormulaRef> Children) {
    // Injected allocator fault: simulate memory exhaustion at the one
    // chokepoint every formula passes through. The check boundary turns
    // the bad_alloc into an InternalError verdict, never a crash.
    if (support::faultPoint("alloc/formula"))
      throw std::bad_alloc();

    uint64_t Hash = hashNode(Kind, BoundVar, Atom, Children);
    Shard &S = Shards[Hash % NumShards];
    std::lock_guard<std::mutex> L(S.M);
    auto It = S.Table.find(Hash);
    if (It != S.Table.end()) {
      for (const Formula *N : It->second)
        if (sameNode(*N, Kind, BoundVar, Atom, Children)) {
          DedupHits.fetch_add(1, std::memory_order_relaxed);
          return FormulaRef(N);
        }
    }

    Formula *N = ::new (S.NodeArena.allocate(sizeof(Formula),
                                             alignof(Formula))) Formula();
    N->Kind = Kind;
    N->BoundVar = BoundVar;
    N->Hash = Hash;
    N->Atom = std::move(Atom);
    N->Children = std::move(Children);
    N->Id = NextId.fetch_add(1, std::memory_order_relaxed);
    N->TreeSize = 1;
    for (const FormulaRef &C : N->Children) {
      uint64_t Sum = N->TreeSize + C->TreeSize;
      N->TreeSize = Sum >= N->TreeSize ? Sum : UINT64_MAX; // Saturate.
    }
    computeFreeVars(*N);
    S.Table[Hash].push_back(N);
    ++S.NodeCount;
    return FormulaRef(N);
  }

  Formula::InternStats stats() const {
    Formula::InternStats Out;
    Out.DedupHits = DedupHits.load(std::memory_order_relaxed);
    for (const Shard &S : Shards) {
      std::lock_guard<std::mutex> L(S.M);
      Out.Nodes += S.NodeCount;
      Out.Bytes += S.NodeArena.bytesReserved();
    }
    return Out;
  }

private:
  FormulaInterner() = default;

  static uint64_t hashNode(FormulaKind Kind, VarId BoundVar,
                           const std::optional<Constraint> &Atom,
                           const std::vector<FormulaRef> &Children) {
    // The stable mixer, never std::hash: node hashes must be a pure
    // function of structure, identical on every platform.
    support::Digest D;
    D.add(static_cast<uint64_t>(Kind));
    if (Atom)
      D.add(Atom->hash());
    if (Kind == FormulaKind::Exists || Kind == FormulaKind::Forall)
      D.add(BoundVar.index());
    // Children are canonical, so their memoized hashes identify them.
    for (const FormulaRef &C : Children)
      D.add(C->hash());
    return D.value();
  }

  static bool sameNode(const Formula &N, FormulaKind Kind, VarId BoundVar,
                       const std::optional<Constraint> &Atom,
                       const std::vector<FormulaRef> &Children) {
    if (N.Kind != Kind || N.Children.size() != Children.size())
      return false;
    if (Kind == FormulaKind::Exists || Kind == FormulaKind::Forall)
      if (N.BoundVar != BoundVar)
        return false;
    // Children are canonical: pointer compare is structural compare.
    for (size_t I = 0; I < Children.size(); ++I)
      if (N.Children[I] != Children[I])
        return false;
    if (Kind == FormulaKind::Atom)
      return *N.Atom == *Atom;
    return true;
  }

  static void computeFreeVars(Formula &N) {
    std::vector<VarId> &Out = N.Free.Sorted;
    switch (N.Kind) {
    case FormulaKind::True:
    case FormulaKind::False:
      return;
    case FormulaKind::Atom:
      // Terms are sorted by VarId, so the collection is already a sorted
      // set.
      N.Atom->collectVars(Out);
      return;
    case FormulaKind::And:
    case FormulaKind::Or: {
      size_t Total = 0;
      for (const FormulaRef &C : N.Children)
        Total += C->freeVars().size();
      Out.reserve(Total);
      for (const FormulaRef &C : N.Children)
        Out.insert(Out.end(), C->freeVars().begin(), C->freeVars().end());
      std::sort(Out.begin(), Out.end());
      Out.erase(std::unique(Out.begin(), Out.end()), Out.end());
      Out.shrink_to_fit();
      return;
    }
    case FormulaKind::Exists:
    case FormulaKind::Forall: {
      const FreeVarSet &Body = N.Children.front()->freeVars();
      Out.reserve(Body.size());
      for (VarId V : Body)
        if (V != N.BoundVar)
          Out.push_back(V);
      return;
    }
    }
  }

  static constexpr unsigned NumShards = 16;
  struct Shard {
    mutable std::mutex M;
    /// Hash -> collision chain of canonical nodes.
    std::unordered_map<uint64_t, std::vector<const Formula *>> Table;
    /// Immortal node storage. Nodes hold std::vector members whose heap
    /// blocks stay reachable through this slab, so nothing ever leaks in
    /// the LeakSanitizer sense even though nothing is freed.
    support::Arena NodeArena;
    uint64_t NodeCount = 0;
  };

  Shard Shards[NumShards];
  std::atomic<uint32_t> NextId{0};
  std::atomic<uint64_t> DedupHits{0};
};

} // namespace mcsafe

Formula::InternStats Formula::internStats() {
  return FormulaInterner::get().stats();
}

static FormulaRef internNode(FormulaKind Kind, VarId BoundVar,
                             std::optional<Constraint> Atom,
                             std::vector<FormulaRef> Children) {
  return FormulaInterner::get().intern(Kind, BoundVar, std::move(Atom),
                                       std::move(Children));
}

//===----------------------------------------------------------------------===//
// Smart constructors
//===----------------------------------------------------------------------===//

FormulaRef Formula::mkTrue() {
  static FormulaRef T = internNode(FormulaKind::True, VarId(), {}, {});
  return T;
}

FormulaRef Formula::mkFalse() {
  static FormulaRef F = internNode(FormulaKind::False, VarId(), {}, {});
  return F;
}

FormulaRef Formula::atom(Constraint C) {
  if (std::optional<bool> Truth = C.constantTruth())
    return *Truth ? mkTrue() : mkFalse();
  return internNode(FormulaKind::Atom, VarId(), std::move(C), {});
}

const Constraint &Formula::constraint() const {
  assert(Kind == FormulaKind::Atom && "not an atom");
  return *Atom;
}

namespace {

/// Flattens \p Children of kind \p K into \p Out, deduplicating (canonical
/// refs make that a pointer compare). Returns false if an absorbing child
/// (False for And, True for Or) was found.
bool flattenInto(FormulaKind K, const std::vector<FormulaRef> &Children,
                 std::vector<FormulaRef> &Out) {
  FormulaKind Absorbing =
      K == FormulaKind::And ? FormulaKind::False : FormulaKind::True;
  FormulaKind Neutral =
      K == FormulaKind::And ? FormulaKind::True : FormulaKind::False;
  for (const FormulaRef &C : Children) {
    assert(C && "null formula child");
    if (C->kind() == Absorbing)
      return false;
    if (C->kind() == Neutral)
      continue;
    if (C->kind() == K) {
      if (!flattenInto(K, C->children(), Out))
        return false;
      continue;
    }
    bool Duplicate = false;
    for (const FormulaRef &Existing : Out)
      if (Existing == C) {
        Duplicate = true;
        break;
      }
    if (!Duplicate)
      Out.push_back(C);
  }
  return true;
}

FormulaRef makeNary(FormulaKind K, std::vector<FormulaRef> Children) {
  std::vector<FormulaRef> Flat;
  if (!flattenInto(K, Children, Flat))
    return K == FormulaKind::And ? Formula::mkFalse() : Formula::mkTrue();
  if (Flat.empty())
    return K == FormulaKind::And ? Formula::mkTrue() : Formula::mkFalse();
  if (Flat.size() == 1)
    return Flat.front();
  return internNode(K, VarId(), {}, std::move(Flat));
}

} // namespace

FormulaRef Formula::conj(std::vector<FormulaRef> Children) {
  return makeNary(FormulaKind::And, std::move(Children));
}

FormulaRef Formula::disj(std::vector<FormulaRef> Children) {
  return makeNary(FormulaKind::Or, std::move(Children));
}

FormulaRef Formula::exists(VarId V, FormulaRef Body) {
  assert(Body && "null body");
  if (Body->isTrue() || Body->isFalse() || !Body->hasFreeVar(V))
    return Body;
  return internNode(FormulaKind::Exists, V, {}, {std::move(Body)});
}

FormulaRef Formula::forall(VarId V, FormulaRef Body) {
  assert(Body && "null body");
  if (Body->isTrue() || Body->isFalse() || !Body->hasFreeVar(V))
    return Body;
  return internNode(FormulaKind::Forall, V, {}, {std::move(Body)});
}

FormulaRef Formula::implies(const FormulaRef &A, FormulaRef B) {
  return disj2(negate(A), std::move(B));
}

namespace {

FormulaRef computeNegate(const FormulaRef &F) {
  switch (F->kind()) {
  case FormulaKind::True:
    return Formula::mkFalse();
  case FormulaKind::False:
    return Formula::mkTrue();
  case FormulaKind::Atom: {
    const Constraint &C = F->constraint();
    switch (C.kind()) {
    case ConstraintKind::GE:
      // not (e >= 0)  <=>  -e - 1 >= 0.
      return Formula::atom(Constraint::ge((-C.expr()).plusConstant(-1)));
    case ConstraintKind::EQ:
      // not (e == 0)  <=>  e >= 1  or  e <= -1.
      return Formula::disj2(
          Formula::atom(Constraint::ge(C.expr().plusConstant(-1))),
          Formula::atom(Constraint::ge((-C.expr()).plusConstant(-1))));
    case ConstraintKind::DIV:
      return Formula::atom(Constraint::notDivides(C.modulus(), C.expr()));
    case ConstraintKind::NDIV:
      return Formula::atom(Constraint::divides(C.modulus(), C.expr()));
    }
    assert(false && "unknown constraint kind");
    return Formula::mkTrue();
  }
  case FormulaKind::And:
  case FormulaKind::Or: {
    std::vector<FormulaRef> Negated;
    Negated.reserve(F->children().size());
    for (const FormulaRef &C : F->children())
      Negated.push_back(Formula::negate(C));
    return F->kind() == FormulaKind::And ? Formula::disj(std::move(Negated))
                                         : Formula::conj(std::move(Negated));
  }
  case FormulaKind::Exists:
    return Formula::forall(F->boundVar(),
                           Formula::negate(F->children().front()));
  case FormulaKind::Forall:
    return Formula::exists(F->boundVar(),
                           Formula::negate(F->children().front()));
  }
  assert(false && "unknown formula kind");
  return Formula::mkTrue();
}

} // namespace

FormulaRef Formula::negate(const FormulaRef &F) {
  assert(F && "null formula");
  if (const Formula *Memo = F->NegMemo.load(std::memory_order_acquire))
    return FormulaRef(Memo);
  FormulaRef Result = computeNegate(F);
  // Negation is a pure function onto canonical nodes, so concurrent
  // writers always store the same pointer.
  F->NegMemo.store(Result.get(), std::memory_order_release);
  return Result;
}

//===----------------------------------------------------------------------===//
// Traversals
//===----------------------------------------------------------------------===//

FormulaRef Formula::substitute(const FormulaRef &F, VarId V,
                               const LinearExpr &Replacement) {
  // The memoized free-variable set makes the no-op case — most nodes of a
  // large conjunction — a binary search instead of a traversal. A bound
  // occurrence of V is not free, so this also covers the
  // quantifier-shadowing early-out.
  if (!F->hasFreeVar(V))
    return F;
  switch (F->kind()) {
  case FormulaKind::True:
  case FormulaKind::False:
    return F;
  case FormulaKind::Atom:
    return atom(F->constraint().substitute(V, Replacement));
  case FormulaKind::And:
  case FormulaKind::Or: {
    std::vector<FormulaRef> NewChildren;
    NewChildren.reserve(F->children().size());
    bool Changed = false;
    for (const FormulaRef &C : F->children()) {
      FormulaRef NewChild = substitute(C, V, Replacement);
      Changed |= NewChild != C;
      NewChildren.push_back(std::move(NewChild));
    }
    if (!Changed)
      return F;
    return F->kind() == FormulaKind::And ? conj(std::move(NewChildren))
                                         : disj(std::move(NewChildren));
  }
  case FormulaKind::Exists:
  case FormulaKind::Forall: {
    FormulaRef NewBody = substitute(F->children().front(), V, Replacement);
    if (NewBody == F->children().front())
      return F;
    return F->kind() == FormulaKind::Exists
               ? exists(F->boundVar(), std::move(NewBody))
               : forall(F->boundVar(), std::move(NewBody));
  }
  }
  assert(false && "unknown formula kind");
  return F;
}

std::string Formula::str() const {
  switch (Kind) {
  case FormulaKind::True:
    return "true";
  case FormulaKind::False:
    return "false";
  case FormulaKind::Atom:
    return Atom->str();
  case FormulaKind::And:
  case FormulaKind::Or: {
    std::ostringstream OS;
    const char *Sep = Kind == FormulaKind::And ? " && " : " || ";
    OS << '(';
    for (size_t I = 0; I < Children.size(); ++I) {
      if (I)
        OS << Sep;
      OS << Children[I]->str();
    }
    OS << ')';
    return OS.str();
  }
  case FormulaKind::Exists:
  case FormulaKind::Forall: {
    std::ostringstream OS;
    OS << (Kind == FormulaKind::Exists ? "exists " : "forall ")
       << varName(BoundVar) << ". " << Children.front()->str();
    return OS.str();
  }
  }
  return "?";
}

//===----------------------------------------------------------------------===//
// Simplification
//===----------------------------------------------------------------------===//

namespace {

/// Prunes duplicate / subsumed GE atoms among the atomic conjuncts of an
/// And node. Two GE atoms with identical variable terms keep only the
/// tighter one; an exact contradictory pair collapses to false.
FormulaRef pruneConjuncts(const FormulaRef &F) {
  if (F->kind() != FormulaKind::And)
    return F;
  // Map from the variable-term vector to the tightest GE atom seen.
  struct GeInfo {
    size_t ChildIndex;
    int64_t Constant;
  };
  std::map<std::vector<LinearExpr::Term>, GeInfo> TightestGe;
  std::vector<bool> Dropped(F->children().size(), false);

  for (size_t I = 0; I < F->children().size(); ++I) {
    const FormulaRef &C = F->children()[I];
    if (C->kind() != FormulaKind::Atom)
      continue;
    const Constraint &A = C->constraint();
    if (A.kind() != ConstraintKind::GE || A.isPoisoned())
      continue;
    std::vector<LinearExpr::Term> Sig(A.expr().terms().begin(),
                                      A.expr().terms().end());
    auto It = TightestGe.find(Sig);
    if (It == TightestGe.end()) {
      TightestGe.emplace(std::move(Sig),
                         GeInfo{I, A.expr().constantValue()});
      continue;
    }
    // e + c >= 0 means e >= -c: smaller c is tighter.
    if (A.expr().constantValue() < It->second.Constant) {
      Dropped[It->second.ChildIndex] = true;
      It->second = {I, A.expr().constantValue()};
    } else {
      Dropped[I] = true;
    }
  }

  std::vector<FormulaRef> Kept;
  bool Changed = false;
  for (size_t I = 0; I < F->children().size(); ++I) {
    if (Dropped[I]) {
      Changed = true;
      continue;
    }
    Kept.push_back(F->children()[I]);
  }
  if (!Changed)
    return F;
  return Formula::conj(std::move(Kept));
}

FormulaRef computeSimplify(const FormulaRef &F) {
  switch (F->kind()) {
  case FormulaKind::True:
  case FormulaKind::False:
  case FormulaKind::Atom:
    return F;
  case FormulaKind::And:
  case FormulaKind::Or: {
    std::vector<FormulaRef> NewChildren;
    NewChildren.reserve(F->children().size());
    for (const FormulaRef &C : F->children())
      NewChildren.push_back(simplify(C));
    FormulaRef Rebuilt = F->kind() == FormulaKind::And
                             ? Formula::conj(std::move(NewChildren))
                             : Formula::disj(std::move(NewChildren));
    return pruneConjuncts(Rebuilt);
  }
  case FormulaKind::Exists:
    return Formula::exists(F->boundVar(), simplify(F->children().front()));
  case FormulaKind::Forall:
    return Formula::forall(F->boundVar(), simplify(F->children().front()));
  }
  return F;
}

} // namespace

FormulaRef mcsafe::simplify(const FormulaRef &F) {
  if (const Formula *Memo = F->SimpMemo.load(std::memory_order_acquire))
    return FormulaRef(Memo);
  FormulaRef Result = computeSimplify(F);
  F->SimpMemo.store(Result.get(), std::memory_order_release);
  return Result;
}
