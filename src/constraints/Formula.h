//===- Formula.h - Presburger-style formulas --------------------*- C++ -*-===//
//
// Part of mcsafe, a reproduction of "Safety Checking of Machine Code"
// (Xu, Miller, Reps; PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Immutable formula trees over atomic linear constraints, combined with
/// conjunction, disjunction, and the quantifiers exists/forall — the
/// annotation language of the paper ("linear equalities and inequalities
/// ... combined with and, or, not, and the quantifiers forall, exists").
///
/// Formulas are maintained in negation normal form by construction: there
/// is no Not node. negate() pushes negation to the atoms (GE and DIV/NDIV
/// negate to atoms; EQ negates to a disjunction of two strict
/// inequalities), and swaps And/Or and Exists/Forall.
///
//===----------------------------------------------------------------------===//

#ifndef MCSAFE_CONSTRAINTS_FORMULA_H
#define MCSAFE_CONSTRAINTS_FORMULA_H

#include "constraints/Constraint.h"

#include <memory>
#include <set>
#include <string>
#include <vector>

namespace mcsafe {

class Formula;

/// Shared immutable formula handle.
using FormulaRef = std::shared_ptr<const Formula>;

/// Node kinds. There is deliberately no Not node; see file comment.
enum class FormulaKind : uint8_t {
  True,
  False,
  Atom,
  And,
  Or,
  Exists,
  Forall,
};

/// An immutable formula node.
class Formula {
public:
  // --- Smart constructors (perform local simplification). ----------------

  static FormulaRef mkTrue();
  static FormulaRef mkFalse();
  /// Wraps an atom; trivially-true/false atoms collapse to True/False.
  static FormulaRef atom(Constraint C);
  /// N-ary conjunction: flattens nested Ands, drops True, collapses on
  /// False, deduplicates syntactically. Empty -> True.
  static FormulaRef conj(std::vector<FormulaRef> Children);
  static FormulaRef conj2(FormulaRef A, FormulaRef B) {
    return conj({std::move(A), std::move(B)});
  }
  /// N-ary disjunction (dual of conj). Empty -> False.
  static FormulaRef disj(std::vector<FormulaRef> Children);
  static FormulaRef disj2(FormulaRef A, FormulaRef B) {
    return disj({std::move(A), std::move(B)});
  }
  static FormulaRef exists(VarId V, FormulaRef Body);
  static FormulaRef forall(VarId V, FormulaRef Body);
  /// A => B, as disj(negate(A), B).
  static FormulaRef implies(const FormulaRef &A, FormulaRef B);

  /// The negation, pushed all the way to the atoms (stays NNF).
  static FormulaRef negate(const FormulaRef &F);

  // --- Accessors. ---------------------------------------------------------

  FormulaKind kind() const { return Kind; }
  bool isTrue() const { return Kind == FormulaKind::True; }
  bool isFalse() const { return Kind == FormulaKind::False; }

  /// Only valid for Atom nodes.
  const Constraint &constraint() const;
  /// Children of And/Or; the single body of Exists/Forall.
  const std::vector<FormulaRef> &children() const { return Children; }
  /// Bound variable of Exists/Forall.
  VarId boundVar() const { return BoundVar; }

  /// Total node count (used for blowup budgets).
  size_t size() const;

  /// Free variables of the formula.
  std::set<VarId> freeVars() const;

  /// Capture-avoiding only in the sense that substitution stops at a
  /// quantifier binding the same variable; bound variables are always
  /// freshly minted by this library so capture cannot occur.
  static FormulaRef substitute(const FormulaRef &F, VarId V,
                               const LinearExpr &Replacement);

  /// Structural equality.
  static bool equal(const FormulaRef &A, const FormulaRef &B);

  size_t hash() const;

  std::string str() const;

private:
  Formula(FormulaKind Kind) : Kind(Kind) {}

  FormulaKind Kind;
  std::vector<FormulaRef> Children;
  std::shared_ptr<Constraint> Atom; // Set for Atom nodes.
  VarId BoundVar;

  friend class FormulaFactory;
};

/// Bottom-up simplification: constant-folds atoms, re-runs the smart
/// constructors, and prunes redundant conjuncts inside And-of-atoms
/// (duplicate or subsumed GE atoms over the same coefficient vector).
/// Used at junction points during VC generation to keep wlp formulas
/// small (Section 5.2.1, enhancement five).
FormulaRef simplify(const FormulaRef &F);

} // namespace mcsafe

#endif // MCSAFE_CONSTRAINTS_FORMULA_H
