//===- Formula.h - Presburger-style formulas --------------------*- C++ -*-===//
//
// Part of mcsafe, a reproduction of "Safety Checking of Machine Code"
// (Xu, Miller, Reps; PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Immutable formula DAGs over atomic linear constraints, combined with
/// conjunction, disjunction, and the quantifiers exists/forall — the
/// annotation language of the paper ("linear equalities and inequalities
/// ... combined with and, or, not, and the quantifiers forall, exists").
///
/// Formulas are maintained in negation normal form by construction: there
/// is no Not node. negate() pushes negation to the atoms (GE and DIV/NDIV
/// negate to atoms; EQ negates to a disjunction of two strict
/// inequalities), and swaps And/Or and Exists/Forall.
///
/// Nodes are hash-consed: a process-wide, thread-safe interner gives every
/// structurally distinct formula exactly one immortal node, identified by
/// a canonical 32-bit id. Structural equality is therefore a pointer
/// compare, and each node carries its structural hash, its tree size, and
/// its sorted free-variable set, memoized at interning time. FormulaRef is
/// a trivially-copyable handle (one pointer) onto such a node.
///
//===----------------------------------------------------------------------===//

#ifndef MCSAFE_CONSTRAINTS_FORMULA_H
#define MCSAFE_CONSTRAINTS_FORMULA_H

#include "constraints/Constraint.h"

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace mcsafe {

class Formula;
class FormulaInterner;

/// A handle to an interned, immortal formula node. Equality of handles is
/// structural equality of formulas (hash-consing canonicalizes).
class FormulaRef {
public:
  constexpr FormulaRef() = default;
  constexpr FormulaRef(std::nullptr_t) {}

  const Formula *operator->() const { return Node; }
  const Formula &operator*() const { return *Node; }
  constexpr explicit operator bool() const { return Node != nullptr; }
  constexpr const Formula *get() const { return Node; }

  friend constexpr bool operator==(FormulaRef A, FormulaRef B) {
    return A.Node == B.Node;
  }
  friend constexpr bool operator!=(FormulaRef A, FormulaRef B) {
    return A.Node != B.Node;
  }

private:
  constexpr explicit FormulaRef(const Formula *Node) : Node(Node) {}

  const Formula *Node = nullptr;

  friend class Formula;
  friend class FormulaInterner;
  friend FormulaRef simplify(const FormulaRef &F);
};

/// Node kinds. There is deliberately no Not node; see file comment.
enum class FormulaKind : uint8_t {
  True,
  False,
  Atom,
  And,
  Or,
  Exists,
  Forall,
};

/// The sorted free-variable set of a formula, memoized on its node.
/// Iterates in increasing VarId order; membership is a binary search.
class FreeVarSet {
public:
  using const_iterator = std::vector<VarId>::const_iterator;

  const_iterator begin() const { return Sorted.begin(); }
  const_iterator end() const { return Sorted.end(); }
  size_t size() const { return Sorted.size(); }
  bool empty() const { return Sorted.empty(); }
  bool contains(VarId V) const {
    return std::binary_search(Sorted.begin(), Sorted.end(), V);
  }
  /// std::set-style membership count (0 or 1).
  size_t count(VarId V) const { return contains(V) ? 1 : 0; }

private:
  std::vector<VarId> Sorted;

  friend class FormulaInterner;
};

/// An immutable, interned formula node. Instances are created only by the
/// interner (via the smart constructors) and live for the process.
class Formula {
public:
  // --- Smart constructors (perform local simplification). ----------------

  static FormulaRef mkTrue();
  static FormulaRef mkFalse();
  /// Wraps an atom; trivially-true/false atoms collapse to True/False.
  static FormulaRef atom(Constraint C);
  /// N-ary conjunction: flattens nested Ands, drops True, collapses on
  /// False, deduplicates syntactically. Empty -> True.
  static FormulaRef conj(std::vector<FormulaRef> Children);
  static FormulaRef conj2(FormulaRef A, FormulaRef B) {
    return conj({std::move(A), std::move(B)});
  }
  /// N-ary disjunction (dual of conj). Empty -> False.
  static FormulaRef disj(std::vector<FormulaRef> Children);
  static FormulaRef disj2(FormulaRef A, FormulaRef B) {
    return disj({std::move(A), std::move(B)});
  }
  static FormulaRef exists(VarId V, FormulaRef Body);
  static FormulaRef forall(VarId V, FormulaRef Body);
  /// A => B, as disj(negate(A), B).
  static FormulaRef implies(const FormulaRef &A, FormulaRef B);

  /// The negation, pushed all the way to the atoms (stays NNF). Memoized
  /// per node: repeated negation of the same formula is O(1).
  static FormulaRef negate(const FormulaRef &F);

  // --- Accessors. ---------------------------------------------------------

  FormulaKind kind() const { return Kind; }
  bool isTrue() const { return Kind == FormulaKind::True; }
  bool isFalse() const { return Kind == FormulaKind::False; }

  /// Only valid for Atom nodes.
  const Constraint &constraint() const;
  /// Children of And/Or; the single body of Exists/Forall.
  const std::vector<FormulaRef> &children() const { return Children; }
  /// Bound variable of Exists/Forall.
  VarId boundVar() const { return BoundVar; }

  /// The canonical interner id: equal ids <=> structurally equal formulas.
  uint32_t id() const { return Id; }

  /// Total node count of the formula as a tree (used for blowup budgets;
  /// shared subterms count once per occurrence). Memoized.
  size_t size() const { return TreeSize; }

  /// The free variables, memoized on the node.
  const FreeVarSet &freeVars() const { return Free; }
  bool hasFreeVar(VarId V) const { return Free.contains(V); }

  /// Capture-avoiding only in the sense that substitution stops at a
  /// quantifier binding the same variable; bound variables are always
  /// freshly minted by this library so capture cannot occur.
  static FormulaRef substitute(const FormulaRef &F, VarId V,
                               const LinearExpr &Replacement);

  /// Structural equality — with hash-consing, a pointer compare.
  static bool equal(const FormulaRef &A, const FormulaRef &B) {
    return A == B;
  }

  /// Structural hash, memoized at interning time. Stable (support/Digest.h
  /// mixer): identical across platforms for the same id structure.
  uint64_t hash() const { return Hash; }

  std::string str() const;

  /// Interner occupancy, surfaced as a metrics gauge.
  struct InternStats {
    uint64_t Nodes = 0;      ///< Distinct formula nodes interned.
    uint64_t DedupHits = 0;  ///< Constructions answered by an existing node.
    uint64_t Bytes = 0;      ///< Node-slab bytes reserved by the interner.
  };
  static InternStats internStats();

private:
  Formula() = default;
  Formula(const Formula &) = delete;
  Formula &operator=(const Formula &) = delete;

  FormulaKind Kind = FormulaKind::True;
  VarId BoundVar;
  uint32_t Id = 0;
  uint64_t Hash = 0;
  uint64_t TreeSize = 1;
  std::vector<FormulaRef> Children;
  std::optional<Constraint> Atom; ///< Set for Atom nodes.
  FreeVarSet Free;
  /// Memoized negation / simplification results (null until computed).
  /// Benignly racy: all writers store the same canonical node.
  mutable std::atomic<const Formula *> NegMemo{nullptr};
  mutable std::atomic<const Formula *> SimpMemo{nullptr};

  friend class FormulaInterner;
  friend FormulaRef simplify(const FormulaRef &F);
};

/// Bottom-up simplification: constant-folds atoms, re-runs the smart
/// constructors, and prunes redundant conjuncts inside And-of-atoms
/// (duplicate or subsumed GE atoms over the same coefficient vector).
/// Used at junction points during VC generation to keep wlp formulas
/// small (Section 5.2.1, enhancement five). Memoized per node.
FormulaRef simplify(const FormulaRef &F);

} // namespace mcsafe

#endif // MCSAFE_CONSTRAINTS_FORMULA_H
