//===- LinearExpr.cpp -----------------------------------------------------===//

#include "constraints/LinearExpr.h"

#include "support/CheckedInt.h"

#include <algorithm>
#include <cassert>
#include <sstream>

using namespace mcsafe;

LinearExpr LinearExpr::constant(int64_t C) {
  LinearExpr E;
  E.Constant = C;
  return E;
}

LinearExpr LinearExpr::variable(VarId V) {
  LinearExpr E;
  E.Terms.emplace_back(V, 1);
  return E;
}

LinearExpr LinearExpr::poisoned() {
  LinearExpr E;
  E.Poisoned = true;
  return E;
}

int64_t LinearExpr::coeff(VarId V) const {
  auto It = std::lower_bound(
      Terms.begin(), Terms.end(), V,
      [](const std::pair<VarId, int64_t> &T, VarId Key) {
        return T.first < Key;
      });
  if (It != Terms.end() && It->first == V)
    return It->second;
  return 0;
}

void LinearExpr::addTerm(VarId V, int64_t Coefficient) {
  if (Coefficient == 0 || Poisoned)
    return;
  auto It = std::lower_bound(
      Terms.begin(), Terms.end(), V,
      [](const std::pair<VarId, int64_t> &T, VarId Key) {
        return T.first < Key;
      });
  if (It != Terms.end() && It->first == V) {
    std::optional<int64_t> Sum = checkedAdd(It->second, Coefficient);
    if (!Sum) {
      Poisoned = true;
      return;
    }
    if (*Sum == 0)
      Terms.erase(It);
    else
      It->second = *Sum;
    return;
  }
  Terms.insert(It, {V, Coefficient});
}

LinearExpr LinearExpr::operator+(const LinearExpr &RHS) const {
  if (Poisoned || RHS.Poisoned)
    return poisoned();
  LinearExpr Result = *this;
  std::optional<int64_t> C = checkedAdd(Result.Constant, RHS.Constant);
  if (!C)
    return poisoned();
  Result.Constant = *C;
  for (const auto &[V, Coeff] : RHS.Terms) {
    Result.addTerm(V, Coeff);
    if (Result.Poisoned)
      return poisoned();
  }
  return Result;
}

LinearExpr LinearExpr::operator-(const LinearExpr &RHS) const {
  return *this + (-RHS);
}

LinearExpr LinearExpr::operator-() const { return scaled(-1); }

LinearExpr LinearExpr::scaled(int64_t Factor) const {
  if (Poisoned)
    return poisoned();
  if (Factor == 0)
    return LinearExpr();
  LinearExpr Result;
  std::optional<int64_t> C = checkedMul(Constant, Factor);
  if (!C)
    return poisoned();
  Result.Constant = *C;
  Result.Terms.reserve(Terms.size());
  for (const auto &[V, Coeff] : Terms) {
    std::optional<int64_t> Scaled = checkedMul(Coeff, Factor);
    if (!Scaled)
      return poisoned();
    Result.Terms.emplace_back(V, *Scaled);
  }
  return Result;
}

LinearExpr LinearExpr::plusConstant(int64_t C) const {
  if (Poisoned)
    return poisoned();
  LinearExpr Result = *this;
  std::optional<int64_t> Sum = checkedAdd(Result.Constant, C);
  if (!Sum)
    return poisoned();
  Result.Constant = *Sum;
  return Result;
}

LinearExpr LinearExpr::substitute(VarId V,
                                  const LinearExpr &Replacement) const {
  if (Poisoned)
    return poisoned();
  int64_t C = coeff(V);
  if (C == 0)
    return *this;
  LinearExpr Without = *this;
  for (auto It = Without.Terms.begin(); It != Without.Terms.end(); ++It) {
    if (It->first == V) {
      Without.Terms.erase(It);
      break;
    }
  }
  return Without + Replacement.scaled(C);
}

void LinearExpr::collectVars(std::vector<VarId> &Out) const {
  for (const auto &[V, Coeff] : Terms) {
    (void)Coeff;
    Out.push_back(V);
  }
}

int64_t LinearExpr::coeffGcd() const {
  int64_t G = 0;
  for (const auto &[V, Coeff] : Terms) {
    (void)V;
    G = gcdInt64(G, Coeff);
  }
  return G;
}

std::string LinearExpr::str() const {
  if (Poisoned)
    return "<overflow>";
  std::ostringstream OS;
  bool First = true;
  for (const auto &[V, Coeff] : Terms) {
    if (First) {
      if (Coeff == -1)
        OS << '-';
      else if (Coeff != 1)
        OS << Coeff << '*';
      First = false;
    } else {
      OS << (Coeff < 0 ? " - " : " + ");
      int64_t Mag = Coeff < 0 ? -Coeff : Coeff;
      if (Mag != 1)
        OS << Mag << '*';
    }
    OS << varName(V);
  }
  if (First) {
    OS << Constant;
  } else if (Constant != 0) {
    OS << (Constant < 0 ? " - " : " + ")
       << (Constant < 0 ? -Constant : Constant);
  }
  return OS.str();
}

size_t LinearExpr::hash() const {
  size_t H = std::hash<int64_t>()(Constant);
  auto Mix = [&H](size_t V) {
    H ^= V + 0x9e3779b97f4a7c15ull + (H << 6) + (H >> 2);
  };
  for (const auto &[V, Coeff] : Terms) {
    Mix(std::hash<uint32_t>()(V.index()));
    Mix(std::hash<int64_t>()(Coeff));
  }
  Mix(Poisoned ? 1 : 0);
  return H;
}
