//===- LinearExpr.cpp -----------------------------------------------------===//

#include "constraints/LinearExpr.h"

#include "support/CheckedInt.h"
#include "support/Digest.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <sstream>

using namespace mcsafe;

void LinearExpr::copyFrom(const LinearExpr &O) {
  Size = O.Size;
  Constant = O.Constant;
  Poisoned = O.Poisoned;
  if (Size <= InlineCapacity) {
    // Copies re-compact: a heap-spilled expression that shrank back under
    // the inline capacity lands inline again.
    std::copy(O.data(), O.data() + Size, InlineTerms);
  } else {
    HeapTerms = new Term[Size];
    HeapCapacity = Size;
    std::copy(O.data(), O.data() + Size, HeapTerms);
  }
}

void LinearExpr::moveFrom(LinearExpr &O) noexcept {
  Size = O.Size;
  Constant = O.Constant;
  Poisoned = O.Poisoned;
  if (O.HeapTerms) {
    HeapTerms = O.HeapTerms;
    HeapCapacity = O.HeapCapacity;
    O.HeapTerms = nullptr;
    O.HeapCapacity = 0;
  } else {
    std::copy(O.InlineTerms, O.InlineTerms + Size, InlineTerms);
  }
  O.Size = 0;
  O.Constant = 0;
  O.Poisoned = false;
}

void LinearExpr::grow(uint32_t MinCapacity) {
  uint32_t Current = HeapTerms ? HeapCapacity : InlineCapacity;
  if (MinCapacity <= Current)
    return;
  uint32_t NewCapacity = std::max(MinCapacity, Current * 2);
  Term *Fresh = new Term[NewCapacity];
  std::copy(data(), data() + Size, Fresh);
  delete[] HeapTerms;
  HeapTerms = Fresh;
  HeapCapacity = NewCapacity;
}

void LinearExpr::insertAt(uint32_t Idx, Term T) {
  assert(Idx <= Size);
  grow(Size + 1);
  Term *D = data();
  std::copy_backward(D + Idx, D + Size, D + Size + 1);
  D[Idx] = T;
  ++Size;
}

void LinearExpr::eraseAt(uint32_t Idx) {
  assert(Idx < Size);
  Term *D = data();
  std::copy(D + Idx + 1, D + Size, D + Idx);
  --Size;
}

void LinearExpr::appendTerm(VarId V, int64_t Coefficient) {
  assert((Size == 0 || data()[Size - 1].first < V) && "terms out of order");
  grow(Size + 1);
  data()[Size++] = Term(V, Coefficient);
}

LinearExpr LinearExpr::constant(int64_t C) {
  LinearExpr E;
  E.Constant = C;
  return E;
}

LinearExpr LinearExpr::variable(VarId V) {
  LinearExpr E;
  E.appendTerm(V, 1);
  return E;
}

LinearExpr LinearExpr::poisoned() {
  LinearExpr E;
  E.Poisoned = true;
  return E;
}

std::optional<LinearExpr> LinearExpr::fromSorted(
    const std::vector<Term> &Terms, int64_t Constant, bool Poisoned) {
  LinearExpr E;
  for (const Term &T : Terms) {
    if (!T.first.isValid() || T.second == 0)
      return std::nullopt;
    if (E.Size != 0 && !(E.data()[E.Size - 1].first < T.first))
      return std::nullopt;
    E.appendTerm(T.first, T.second);
  }
  E.Constant = Constant;
  E.Poisoned = Poisoned;
  return E;
}

int64_t LinearExpr::coeff(VarId V) const {
  const Term *Begin = data(), *End = Begin + Size;
  const Term *It = std::lower_bound(
      Begin, End, V,
      [](const Term &T, VarId Key) { return T.first < Key; });
  if (It != End && It->first == V)
    return It->second;
  return 0;
}

void LinearExpr::addTerm(VarId V, int64_t Coefficient) {
  if (Coefficient == 0 || Poisoned)
    return;
  Term *Begin = data(), *End = Begin + Size;
  Term *It = std::lower_bound(
      Begin, End, V,
      [](const Term &T, VarId Key) { return T.first < Key; });
  if (It != End && It->first == V) {
    std::optional<int64_t> Sum = checkedAdd(It->second, Coefficient);
    if (!Sum) {
      Poisoned = true;
      return;
    }
    if (*Sum == 0)
      eraseAt(static_cast<uint32_t>(It - Begin));
    else
      It->second = *Sum;
    return;
  }
  insertAt(static_cast<uint32_t>(It - Begin), Term(V, Coefficient));
}

LinearExpr LinearExpr::operator+(const LinearExpr &RHS) const {
  if (Poisoned || RHS.Poisoned)
    return poisoned();
  std::optional<int64_t> C = checkedAdd(Constant, RHS.Constant);
  if (!C)
    return poisoned();
  // Merge the two sorted term arrays directly rather than repeated
  // binary-search inserts.
  LinearExpr Result;
  Result.Constant = *C;
  Result.grow(Size + RHS.Size);
  const Term *A = data(), *AEnd = A + Size;
  const Term *B = RHS.data(), *BEnd = B + RHS.Size;
  while (A != AEnd || B != BEnd) {
    if (B == BEnd || (A != AEnd && A->first < B->first)) {
      Result.data()[Result.Size++] = *A++;
    } else if (A == AEnd || B->first < A->first) {
      Result.data()[Result.Size++] = *B++;
    } else {
      std::optional<int64_t> Sum = checkedAdd(A->second, B->second);
      if (!Sum)
        return poisoned();
      if (*Sum != 0)
        Result.data()[Result.Size++] = Term(A->first, *Sum);
      ++A;
      ++B;
    }
  }
  return Result;
}

LinearExpr LinearExpr::operator-(const LinearExpr &RHS) const {
  return *this + (-RHS);
}

LinearExpr LinearExpr::operator-() const { return scaled(-1); }

LinearExpr LinearExpr::scaled(int64_t Factor) const {
  if (Poisoned)
    return poisoned();
  if (Factor == 0)
    return LinearExpr();
  LinearExpr Result;
  std::optional<int64_t> C = checkedMul(Constant, Factor);
  if (!C)
    return poisoned();
  Result.Constant = *C;
  Result.grow(Size);
  for (const auto &[V, Coeff] : terms()) {
    std::optional<int64_t> Scaled = checkedMul(Coeff, Factor);
    if (!Scaled)
      return poisoned();
    Result.data()[Result.Size++] = Term(V, *Scaled);
  }
  return Result;
}

LinearExpr LinearExpr::plusConstant(int64_t C) const {
  if (Poisoned)
    return poisoned();
  LinearExpr Result = *this;
  std::optional<int64_t> Sum = checkedAdd(Result.Constant, C);
  if (!Sum)
    return poisoned();
  Result.Constant = *Sum;
  return Result;
}

LinearExpr LinearExpr::substitute(VarId V,
                                  const LinearExpr &Replacement) const {
  if (Poisoned)
    return poisoned();
  int64_t C = coeff(V);
  if (C == 0)
    return *this;
  LinearExpr Without = *this;
  const Term *Begin = Without.data();
  const Term *It = std::lower_bound(
      Begin, Begin + Without.Size, V,
      [](const Term &T, VarId Key) { return T.first < Key; });
  Without.eraseAt(static_cast<uint32_t>(It - Begin));
  return Without + Replacement.scaled(C);
}

void LinearExpr::collectVars(std::vector<VarId> &Out) const {
  for (const auto &[V, Coeff] : terms()) {
    (void)Coeff;
    Out.push_back(V);
  }
}

int64_t LinearExpr::coeffGcd() const {
  int64_t G = 0;
  for (const auto &[V, Coeff] : terms()) {
    (void)V;
    G = gcdInt64(G, Coeff);
  }
  return G;
}

std::string LinearExpr::str() const {
  if (Poisoned)
    return "<overflow>";
  std::ostringstream OS;
  bool First = true;
  for (const auto &[V, Coeff] : terms()) {
    if (First) {
      if (Coeff == -1)
        OS << '-';
      else if (Coeff != 1)
        OS << Coeff << '*';
      First = false;
    } else {
      OS << (Coeff < 0 ? " - " : " + ");
      int64_t Mag = Coeff < 0 ? -Coeff : Coeff;
      if (Mag != 1)
        OS << Mag << '*';
    }
    OS << varName(V);
  }
  if (First) {
    OS << Constant;
  } else if (Constant != 0) {
    OS << (Constant < 0 ? " - " : " + ")
       << (Constant < 0 ? -Constant : Constant);
  }
  return OS.str();
}

uint64_t LinearExpr::hash() const {
  // The stable mixer, never std::hash: expression hashes feed the
  // interner's formula hashes and (via serialization digests) persisted
  // certificate keys, so they must not vary across standard libraries or
  // size_t widths.
  support::Digest D;
  D.addSigned(Constant);
  for (const auto &[V, Coeff] : terms()) {
    D.add(V.index());
    D.addSigned(Coeff);
  }
  D.add(Poisoned ? 1 : 0);
  return D.value();
}
