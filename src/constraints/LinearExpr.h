//===- LinearExpr.h - Affine integer expressions ----------------*- C++ -*-===//
//
// Part of mcsafe, a reproduction of "Safety Checking of Machine Code"
// (Xu, Miller, Reps; PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An affine expression  c0 + c1*x1 + ... + ck*xk  over interned variables
/// with int64_t coefficients. All arithmetic is overflow-checked; overflow
/// poisons the expression, and poisoned expressions make the prover answer
/// "unknown" rather than something unsound.
///
/// Storage is small-size optimized: the VCs machine code generates almost
/// always mention at most a handful of variables, so up to 4 terms live
/// inline in the expression itself and only wider expressions (deep in
/// Fourier-Motzkin elimination) touch the heap. terms() exposes the sorted
/// term array as a lightweight span either way.
///
//===----------------------------------------------------------------------===//

#ifndef MCSAFE_CONSTRAINTS_LINEAREXPR_H
#define MCSAFE_CONSTRAINTS_LINEAREXPR_H

#include "constraints/Var.h"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace mcsafe {

/// An affine integer expression. Terms are kept sorted by VarId with no
/// zero coefficients, so structural equality is semantic equality
/// (modulo poisoning).
class LinearExpr {
public:
  /// One  coefficient * variable  term.
  using Term = std::pair<VarId, int64_t>;

  /// A non-owning view of an expression's sorted term array.
  class TermSpan {
  public:
    using value_type = Term;
    using const_iterator = const Term *;

    constexpr TermSpan() = default;
    constexpr TermSpan(const Term *Begin, const Term *End)
        : Begin_(Begin), End_(End) {}

    constexpr const_iterator begin() const { return Begin_; }
    constexpr const_iterator end() const { return End_; }
    constexpr size_t size() const { return End_ - Begin_; }
    constexpr bool empty() const { return Begin_ == End_; }
    constexpr const Term &front() const { return *Begin_; }
    constexpr const Term &back() const { return End_[-1]; }
    constexpr const Term &operator[](size_t I) const { return Begin_[I]; }

  private:
    const Term *Begin_ = nullptr;
    const Term *End_ = nullptr;
  };

  /// The zero expression.
  LinearExpr() = default;

  LinearExpr(const LinearExpr &O) { copyFrom(O); }
  LinearExpr(LinearExpr &&O) noexcept { moveFrom(O); }
  LinearExpr &operator=(const LinearExpr &O) {
    if (this != &O) {
      releaseHeap();
      copyFrom(O);
    }
    return *this;
  }
  LinearExpr &operator=(LinearExpr &&O) noexcept {
    if (this != &O) {
      releaseHeap();
      moveFrom(O);
    }
    return *this;
  }
  ~LinearExpr() { releaseHeap(); }

  /// The constant expression \p C.
  static LinearExpr constant(int64_t C);

  /// The expression 1 * \p V.
  static LinearExpr variable(VarId V);

  /// A poisoned expression (records an overflow).
  static LinearExpr poisoned();

  /// Rebuilds an expression from already-sorted terms — the
  /// deserialization path (constraints/Serialize.h). Validates the
  /// representation invariants (strictly ascending valid VarIds, no zero
  /// coefficients) and returns nullopt on violation rather than
  /// constructing an ill-formed expression from untrusted bytes.
  static std::optional<LinearExpr>
  fromSorted(const std::vector<Term> &Terms, int64_t Constant, bool Poisoned);

  bool isPoisoned() const { return Poisoned; }
  bool isConstant() const { return Size == 0; }
  bool isZero() const { return !Poisoned && Size == 0 && Constant == 0; }
  int64_t constantValue() const { return Constant; }

  /// The sorted (VarId, coefficient) terms.
  TermSpan terms() const { return TermSpan(data(), data() + Size); }

  /// Number of variable terms.
  size_t termCount() const { return Size; }

  /// Coefficient of \p V (0 when absent). Binary search over the sorted
  /// terms.
  int64_t coeff(VarId V) const;

  bool references(VarId V) const { return coeff(V) != 0; }

  LinearExpr operator+(const LinearExpr &RHS) const;
  LinearExpr operator-(const LinearExpr &RHS) const;
  LinearExpr operator-() const;
  /// Scales by a constant.
  LinearExpr scaled(int64_t Factor) const;

  LinearExpr plusConstant(int64_t C) const;

  /// Replaces \p V by \p Replacement.
  LinearExpr substitute(VarId V, const LinearExpr &Replacement) const;

  /// Collects the variables referenced into \p Out (deduplicated by the
  /// sorted-terms invariant).
  void collectVars(std::vector<VarId> &Out) const;

  /// gcd of all variable coefficients (0 when constant).
  int64_t coeffGcd() const;

  /// Structural equality. Poisoned expressions compare equal only to
  /// poisoned expressions.
  friend bool operator==(const LinearExpr &A, const LinearExpr &B) {
    return A.Poisoned == B.Poisoned && A.Constant == B.Constant &&
           A.Size == B.Size &&
           std::equal(A.data(), A.data() + A.Size, B.data());
  }

  /// Renders e.g. "4*%g3 - n + 1".
  std::string str() const;

  /// Stable 64-bit content hash (support/Digest.h mixer; identical on
  /// every platform for the same term/constant structure).
  uint64_t hash() const;

private:
  /// Inline term slots; expressions wider than this spill to the heap.
  static constexpr uint32_t InlineCapacity = 4;

  const Term *data() const { return HeapTerms ? HeapTerms : InlineTerms; }
  Term *data() { return HeapTerms ? HeapTerms : InlineTerms; }

  void releaseHeap() {
    delete[] HeapTerms;
    HeapTerms = nullptr;
    HeapCapacity = 0;
  }
  void copyFrom(const LinearExpr &O);
  void moveFrom(LinearExpr &O) noexcept;
  /// Grows storage to hold at least \p MinCapacity terms.
  void grow(uint32_t MinCapacity);
  /// Inserts \p T at sorted position \p Idx.
  void insertAt(uint32_t Idx, Term T);
  void eraseAt(uint32_t Idx);
  /// Appends a term; caller maintains sorted order.
  void appendTerm(VarId V, int64_t Coefficient);
  void addTerm(VarId V, int64_t Coefficient);

  Term InlineTerms[InlineCapacity];
  Term *HeapTerms = nullptr; ///< Non-null once spilled past InlineCapacity.
  uint32_t Size = 0;
  uint32_t HeapCapacity = 0;
  int64_t Constant = 0;
  bool Poisoned = false;
};

} // namespace mcsafe

#endif // MCSAFE_CONSTRAINTS_LINEAREXPR_H
