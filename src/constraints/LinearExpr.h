//===- LinearExpr.h - Affine integer expressions ----------------*- C++ -*-===//
//
// Part of mcsafe, a reproduction of "Safety Checking of Machine Code"
// (Xu, Miller, Reps; PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An affine expression  c0 + c1*x1 + ... + ck*xk  over interned variables
/// with int64_t coefficients. All arithmetic is overflow-checked; overflow
/// poisons the expression, and poisoned expressions make the prover answer
/// "unknown" rather than something unsound.
///
//===----------------------------------------------------------------------===//

#ifndef MCSAFE_CONSTRAINTS_LINEAREXPR_H
#define MCSAFE_CONSTRAINTS_LINEAREXPR_H

#include "constraints/Var.h"

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace mcsafe {

/// An affine integer expression. Terms are kept sorted by VarId with no
/// zero coefficients, so structural equality is semantic equality
/// (modulo poisoning).
class LinearExpr {
public:
  /// The zero expression.
  LinearExpr() = default;

  /// The constant expression \p C.
  static LinearExpr constant(int64_t C);

  /// The expression 1 * \p V.
  static LinearExpr variable(VarId V);

  /// A poisoned expression (records an overflow).
  static LinearExpr poisoned();

  bool isPoisoned() const { return Poisoned; }
  bool isConstant() const { return Terms.empty(); }
  bool isZero() const { return !Poisoned && Terms.empty() && Constant == 0; }
  int64_t constantValue() const { return Constant; }

  const std::vector<std::pair<VarId, int64_t>> &terms() const {
    return Terms;
  }

  /// Coefficient of \p V (0 when absent).
  int64_t coeff(VarId V) const;

  bool references(VarId V) const { return coeff(V) != 0; }

  LinearExpr operator+(const LinearExpr &RHS) const;
  LinearExpr operator-(const LinearExpr &RHS) const;
  LinearExpr operator-() const;
  /// Scales by a constant.
  LinearExpr scaled(int64_t Factor) const;

  LinearExpr plusConstant(int64_t C) const;

  /// Replaces \p V by \p Replacement.
  LinearExpr substitute(VarId V, const LinearExpr &Replacement) const;

  /// Collects the variables referenced into \p Out (deduplicated by the
  /// sorted-terms invariant).
  void collectVars(std::vector<VarId> &Out) const;

  /// gcd of all variable coefficients (0 when constant).
  int64_t coeffGcd() const;

  /// Structural equality. Poisoned expressions compare equal only to
  /// poisoned expressions.
  friend bool operator==(const LinearExpr &A, const LinearExpr &B) {
    return A.Poisoned == B.Poisoned && A.Constant == B.Constant &&
           A.Terms == B.Terms;
  }

  /// Renders e.g. "4*%g3 - n + 1".
  std::string str() const;

  size_t hash() const;

private:
  void addTerm(VarId V, int64_t Coefficient);

  std::vector<std::pair<VarId, int64_t>> Terms;
  int64_t Constant = 0;
  bool Poisoned = false;
};

} // namespace mcsafe

#endif // MCSAFE_CONSTRAINTS_LINEAREXPR_H
