//===- Normalize.cpp ------------------------------------------------------===//

#include "constraints/Normalize.h"

#include <cassert>

using namespace mcsafe;

namespace {

struct DnfBuilder {
  size_t MaxDisjuncts;
  size_t MaxAtoms;
  bool ApproximatedForall = false;
  bool BudgetExceeded = false;

  /// Returns the DNF of \p F as a list of conjunctions.
  std::vector<std::vector<Constraint>> run(const FormulaRef &F) {
    if (BudgetExceeded)
      return {};
    switch (F->kind()) {
    case FormulaKind::True:
      return {{}};
    case FormulaKind::False:
      return {};
    case FormulaKind::Atom:
      return {{F->constraint()}};
    case FormulaKind::Or: {
      std::vector<std::vector<Constraint>> Result;
      for (const FormulaRef &C : F->children()) {
        std::vector<std::vector<Constraint>> Sub = run(C);
        for (auto &Conj : Sub) {
          Result.push_back(std::move(Conj));
          if (Result.size() > MaxDisjuncts) {
            BudgetExceeded = true;
            return {};
          }
        }
      }
      return Result;
    }
    case FormulaKind::And: {
      std::vector<std::vector<Constraint>> Result = {{}};
      for (const FormulaRef &C : F->children()) {
        std::vector<std::vector<Constraint>> Sub = run(C);
        if (BudgetExceeded)
          return {};
        std::vector<std::vector<Constraint>> Next;
        for (const auto &Left : Result) {
          for (const auto &Right : Sub) {
            std::vector<Constraint> Merged = Left;
            Merged.insert(Merged.end(), Right.begin(), Right.end());
            if (Merged.size() > MaxAtoms) {
              BudgetExceeded = true;
              return {};
            }
            Next.push_back(std::move(Merged));
            if (Next.size() > MaxDisjuncts) {
              BudgetExceeded = true;
              return {};
            }
          }
        }
        Result = std::move(Next);
        if (Result.empty())
          return Result; // One child was false.
      }
      return Result;
    }
    case FormulaKind::Exists:
    case FormulaKind::Forall: {
      if (F->kind() == FormulaKind::Forall)
        ApproximatedForall = true;
      VarId Fresh = freshVar(varName(F->boundVar()));
      FormulaRef Body = Formula::substitute(
          F->children().front(), F->boundVar(), LinearExpr::variable(Fresh));
      return run(Body);
    }
    }
    assert(false && "unknown formula kind");
    return {};
  }
};

} // namespace

DnfResult mcsafe::toDNF(const FormulaRef &F, size_t MaxDisjuncts,
                        size_t MaxAtoms) {
  DnfBuilder B;
  B.MaxDisjuncts = MaxDisjuncts;
  B.MaxAtoms = MaxAtoms;
  DnfResult R;
  R.Disjuncts = B.run(F);
  R.ApproximatedForall = B.ApproximatedForall;
  R.BudgetExceeded = B.BudgetExceeded;
  return R;
}
