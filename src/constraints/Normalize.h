//===- Normalize.h - DNF conversion for satisfiability ----------*- C++ -*-===//
//
// Part of mcsafe, a reproduction of "Safety Checking of Machine Code"
// (Xu, Miller, Reps; PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Converts a formula (already in negation normal form by construction)
/// into disjunctive normal form for the Omega test, with a blowup budget.
///
/// Quantifier handling during satisfiability checking: each quantifier is
/// replaced by a fresh *free* variable.
///   - Exists is exact: sat(exists v. F) == sat(F[v := fresh]).
///   - Forall is a sound weakening: forall v. F implies F[v := fresh], so
///     the transformed formula is satisfiable whenever the original is;
///     an Unsat answer therefore remains trustworthy, while a Sat answer
///     is flagged as possibly spurious (ApproximatedForall). The checker
///     only ever acts on Unsat ("proved"), so this keeps the overall
///     analysis sound.
///
//===----------------------------------------------------------------------===//

#ifndef MCSAFE_CONSTRAINTS_NORMALIZE_H
#define MCSAFE_CONSTRAINTS_NORMALIZE_H

#include "constraints/Formula.h"

#include <vector>

namespace mcsafe {

/// Result of DNF conversion. An empty Disjuncts list means "false"; a
/// disjunct with no atoms means "true".
struct DnfResult {
  std::vector<std::vector<Constraint>> Disjuncts;
  /// A Forall quantifier was replaced by a free variable (Sat answers may
  /// be spurious; Unsat answers remain exact).
  bool ApproximatedForall = false;
  /// The blowup budget was exceeded; the result is unusable.
  bool BudgetExceeded = false;
};

/// Converts to DNF. \p MaxDisjuncts bounds the number of disjuncts and
/// \p MaxAtoms the atoms per disjunct.
DnfResult toDNF(const FormulaRef &F, size_t MaxDisjuncts = 1024,
                size_t MaxAtoms = 512);

} // namespace mcsafe

#endif // MCSAFE_CONSTRAINTS_NORMALIZE_H
