//===- OmegaTest.cpp ------------------------------------------------------===//

#include "constraints/OmegaTest.h"

#include "support/CheckedInt.h"
#include "support/Governor.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <optional>

using namespace mcsafe;

namespace {

/// Symmetric residue of a modulo m, in (-m/2, m/2].
int64_t symMod(int64_t A, int64_t M) {
  assert(M >= 1);
  int64_t R = floorMod(A, M);
  if (2 * R > M)
    R -= M;
  return R;
}

constexpr unsigned MaxDepth = 64;

} // namespace

/// Working representation: equalities (expr == 0) and inequalities
/// (expr >= 0). DIV/NDIV atoms are compiled away on entry.
struct OmegaTest::System {
  std::vector<LinearExpr> Eqs;
  std::vector<LinearExpr> Ges;
};

bool OmegaTest::budgetExceeded() {
  if (++StepsUsed > Opts.MaxSteps)
    return true;
  return Opts.Governor && !Opts.Governor->poll("omega/step");
}

SatResult OmegaTest::isSatisfiable(const std::vector<Constraint> &Conjuncts) {
  ++Counters.Calls;
  StepsUsed = 0;

  // Split NDIV atoms into residue case analyses. Each NDIV(d, e) becomes a
  // choice among DIV(d, e - r) for r in 1..d-1; the cross product of all
  // choices is explored recursively.
  std::vector<Constraint> Base;
  std::vector<Constraint> Ndivs;
  for (const Constraint &C : Conjuncts) {
    if (C.isPoisoned())
      return SatResult::Unknown;
    if (std::optional<bool> Truth = C.constantTruth()) {
      if (!*Truth)
        return SatResult::Unsat;
      continue;
    }
    if (C.kind() == ConstraintKind::NDIV) {
      if (C.modulus() > Opts.MaxNdivModulus)
        return SatResult::Unknown;
      Ndivs.push_back(C);
    } else {
      Base.push_back(C);
    }
  }

  // Enumerate residue choices for the NDIV atoms (odometer).
  std::vector<int64_t> Choice(Ndivs.size(), 1);
  bool SawUnknown = false;
  bool Done = false;
  while (!Done) {
    // Build the system for this choice.
    System Sys;
    bool ChoiceFalse = false;
    auto AddConstraint = [&](const Constraint &C) {
      if (std::optional<bool> Truth = C.constantTruth()) {
        if (!*Truth)
          ChoiceFalse = true;
        return;
      }
      switch (C.kind()) {
      case ConstraintKind::GE:
        Sys.Ges.push_back(C.expr());
        break;
      case ConstraintKind::EQ:
        Sys.Eqs.push_back(C.expr());
        break;
      case ConstraintKind::DIV: {
        // d | e  <=>  exists t. e - d*t == 0.
        VarId T = freshVar("omega.q");
        LinearExpr E =
            C.expr() - LinearExpr::variable(T).scaled(C.modulus());
        Sys.Eqs.push_back(std::move(E));
        break;
      }
      case ConstraintKind::NDIV:
        assert(false && "NDIV handled by residue enumeration");
        break;
      }
    };
    for (const Constraint &C : Base)
      AddConstraint(C);
    for (size_t I = 0; I < Ndivs.size() && !ChoiceFalse; ++I) {
      Constraint ResidueCase = Constraint::divides(
          Ndivs[I].modulus(), Ndivs[I].expr().plusConstant(-Choice[I]));
      AddConstraint(ResidueCase);
    }

    if (!ChoiceFalse) {
      SatResult R = solve(std::move(Sys), 0);
      if (R == SatResult::Sat)
        return SatResult::Sat;
      if (R == SatResult::Unknown)
        SawUnknown = true;
    }

    // Advance the residue choice vector (odometer); when every position
    // wraps, all combinations have been explored.
    size_t I = 0;
    for (; I < Ndivs.size(); ++I) {
      if (++Choice[I] < Ndivs[I].modulus())
        break;
      Choice[I] = 1;
    }
    if (I == Ndivs.size())
      Done = true;
    if (budgetExceeded())
      return SatResult::Unknown;
  }
  return SawUnknown ? SatResult::Unknown : SatResult::Unsat;
}

SatResult OmegaTest::solve(System Sys, unsigned Depth) {
  if (Depth > MaxDepth || budgetExceeded())
    return SatResult::Unknown;

  // --- Equality elimination. ---------------------------------------------
  while (!Sys.Eqs.empty()) {
    if (budgetExceeded())
      return SatResult::Unknown;
    LinearExpr E = Sys.Eqs.back();
    Sys.Eqs.pop_back();
    if (E.isPoisoned())
      return SatResult::Unknown;
    // Normalize by the gcd.
    int64_t G = E.coeffGcd();
    if (G == 0) {
      if (E.constantValue() != 0)
        return SatResult::Unsat;
      continue;
    }
    if (E.constantValue() % G != 0)
      return SatResult::Unsat; // gcd test.
    if (G > 1) {
      LinearExpr Reduced = LinearExpr::constant(E.constantValue() / G);
      for (const auto &[V, C] : E.terms())
        Reduced = Reduced + LinearExpr::variable(V).scaled(C / G);
      E = std::move(Reduced);
    }

    // Find a variable with a unit coefficient.
    VarId UnitVar;
    int64_t UnitCoeff = 0;
    VarId MinVar;
    int64_t MinCoeff = 0;
    for (const auto &[V, C] : E.terms()) {
      int64_t Mag = C < 0 ? -C : C;
      if (Mag == 1 && UnitCoeff == 0) {
        UnitVar = V;
        UnitCoeff = C;
      }
      if (MinCoeff == 0 || Mag < (MinCoeff < 0 ? -MinCoeff : MinCoeff)) {
        MinVar = V;
        MinCoeff = C;
      }
    }

    ++Counters.EqEliminations;
    if (UnitCoeff != 0) {
      // a*x + rest == 0 with a == +-1  =>  x == -a*rest.
      LinearExpr Rest = E.substitute(UnitVar, LinearExpr());
      LinearExpr Solution = Rest.scaled(-UnitCoeff);
      if (Solution.isPoisoned())
        return SatResult::Unknown;
      for (LinearExpr &Other : Sys.Eqs)
        Other = Other.substitute(UnitVar, Solution);
      for (LinearExpr &Other : Sys.Ges)
        Other = Other.substitute(UnitVar, Solution);
      continue;
    }

    // Pugh's symmetric-modulus reduction: m = |a_k| + 1 and
    //   x_k = sign(a_k) * (sum_i!=k symMod(a_i, m)*x_i + symMod(c, m)
    //                      - m*sigma)
    // for a fresh sigma; substituting strictly shrinks |a_k| in E.
    int64_t A = MinCoeff;
    int64_t Sign = A < 0 ? -1 : 1;
    std::optional<int64_t> MOpt = checkedAdd(Sign * A, 1);
    if (!MOpt)
      return SatResult::Unknown;
    int64_t M = *MOpt;
    VarId Sigma = freshVar("omega.s");
    LinearExpr Inner = LinearExpr::constant(symMod(E.constantValue(), M));
    for (const auto &[V, C] : E.terms()) {
      if (V == MinVar)
        continue;
      Inner = Inner + LinearExpr::variable(V).scaled(symMod(C, M));
    }
    Inner = Inner - LinearExpr::variable(Sigma).scaled(M);
    LinearExpr Solution = Inner.scaled(Sign);
    if (Solution.isPoisoned())
      return SatResult::Unknown;
    // Substitute into the original equality (it survives with smaller
    // coefficients) and everything else.
    Sys.Eqs.push_back(E.substitute(MinVar, Solution));
    for (size_t I = 0; I + 1 < Sys.Eqs.size(); ++I)
      Sys.Eqs[I] = Sys.Eqs[I].substitute(MinVar, Solution);
    for (LinearExpr &Other : Sys.Ges)
      Other = Other.substitute(MinVar, Solution);
  }

  return solveInequalities(std::move(Sys), Depth);
}

SatResult OmegaTest::solveInequalities(System Sys, unsigned Depth) {
  assert(Sys.Eqs.empty() && "equalities must be eliminated first");

  while (true) {
    if (Depth > MaxDepth || budgetExceeded())
      return SatResult::Unknown;

    // Normalize: gcd-tighten, fold constants, deduplicate by signature.
    std::map<std::vector<std::pair<VarId, int64_t>>, int64_t> Tightest;
    for (LinearExpr &E : Sys.Ges) {
      if (E.isPoisoned())
        return SatResult::Unknown;
      int64_t G = E.coeffGcd();
      if (G == 0) {
        if (E.constantValue() < 0)
          return SatResult::Unsat;
        continue;
      }
      if (G > 1) {
        LinearExpr Reduced =
            LinearExpr::constant(floorDiv(E.constantValue(), G));
        for (const auto &[V, C] : E.terms())
          Reduced = Reduced + LinearExpr::variable(V).scaled(C / G);
        E = std::move(Reduced);
      }
      std::vector<std::pair<VarId, int64_t>> Key(E.terms().begin(),
                                                 E.terms().end());
      auto It = Tightest.find(Key);
      if (It == Tightest.end())
        Tightest.emplace(std::move(Key), E.constantValue());
      else
        It->second = std::min(It->second, E.constantValue());
    }
    Sys.Ges.clear();
    for (const auto &[Terms, C] : Tightest) {
      LinearExpr E = LinearExpr::constant(C);
      for (const auto &[V, Coeff] : Terms)
        E = E + LinearExpr::variable(V).scaled(Coeff);
      // Contradiction with the mirrored constraint: e >= 0 and -e + k >= 0
      // with k < 0.
      Sys.Ges.push_back(std::move(E));
    }
    // Quick contradiction scan over mirrored pairs.
    for (const auto &[Terms, C] : Tightest) {
      std::vector<std::pair<VarId, int64_t>> Mirror;
      Mirror.reserve(Terms.size());
      for (const auto &[V, Coeff] : Terms)
        Mirror.emplace_back(V, -Coeff);
      auto It = Tightest.find(Mirror);
      if (It != Tightest.end()) {
        std::optional<int64_t> Sum = checkedAdd(C, It->second);
        if (!Sum)
          return SatResult::Unknown;
        if (*Sum < 0)
          return SatResult::Unsat;
      }
    }

    // Collect variable occurrence counts.
    std::map<VarId, std::pair<unsigned, unsigned>> Bounds; // lower, upper.
    for (const LinearExpr &E : Sys.Ges)
      for (const auto &[V, C] : E.terms()) {
        if (C > 0)
          ++Bounds[V].first;
        else
          ++Bounds[V].second;
      }
    if (Bounds.empty())
      return SatResult::Sat; // All constraints constant-true.

    // Drop variables bounded on one side only, together with every
    // constraint that mentions them (those can always be satisfied).
    std::vector<VarId> OneSided;
    for (const auto &[V, LU] : Bounds)
      if (LU.first == 0 || LU.second == 0)
        OneSided.push_back(V);
    if (!OneSided.empty()) {
      std::vector<LinearExpr> Kept;
      for (const LinearExpr &E : Sys.Ges) {
        bool Mentions = false;
        for (VarId V : OneSided)
          if (E.references(V))
            Mentions = true;
        if (!Mentions)
          Kept.push_back(E);
      }
      Sys.Ges = std::move(Kept);
      continue;
    }

    // Choose the variable with the fewest lower*upper combinations.
    VarId X;
    uint64_t BestCost = UINT64_MAX;
    for (const auto &[V, LU] : Bounds) {
      uint64_t Cost = static_cast<uint64_t>(LU.first) * LU.second;
      if (Cost < BestCost) {
        BestCost = Cost;
        X = V;
      }
    }

    std::vector<LinearExpr> Lowers, Uppers, Others;
    for (const LinearExpr &E : Sys.Ges) {
      int64_t C = E.coeff(X);
      if (C > 0)
        Lowers.push_back(E);
      else if (C < 0)
        Uppers.push_back(E);
      else
        Others.push_back(E);
    }

    ++Counters.IneqEliminations;

    // Build the shadow combinations. For lower a*x + r1 >= 0 and upper
    // -b*x + r2 >= 0 (a, b > 0): real shadow b*r1 + a*r2 >= 0; dark
    // shadow b*r1 + a*r2 >= (a-1)(b-1); exact when a == 1 or b == 1.
    bool AllExact = true;
    std::vector<LinearExpr> Real, Dark;
    for (const LinearExpr &Lo : Lowers) {
      int64_t A = Lo.coeff(X);
      LinearExpr R1 = Lo.substitute(X, LinearExpr());
      for (const LinearExpr &Up : Uppers) {
        int64_t B = -Up.coeff(X);
        LinearExpr R2 = Up.substitute(X, LinearExpr());
        LinearExpr Combo = R1.scaled(B) + R2.scaled(A);
        if (Combo.isPoisoned())
          return SatResult::Unknown;
        Real.push_back(Combo);
        std::optional<int64_t> Gap = checkedMul(A - 1, B - 1);
        if (!Gap)
          return SatResult::Unknown;
        Dark.push_back(Combo.plusConstant(-*Gap));
        if (A != 1 && B != 1)
          AllExact = false;
      }
    }

    if (AllExact) {
      Sys.Ges = std::move(Others);
      Sys.Ges.insert(Sys.Ges.end(), Real.begin(), Real.end());
      continue; // Exact Fourier-Motzkin step.
    }

    // Inexact: dark shadow / real shadow / splinters.
    System DarkSys;
    DarkSys.Ges = Others;
    DarkSys.Ges.insert(DarkSys.Ges.end(), Dark.begin(), Dark.end());
    SatResult DarkRes = solveInequalities(std::move(DarkSys), Depth + 1);
    if (DarkRes == SatResult::Sat) {
      ++Counters.DarkShadowHits;
      return SatResult::Sat;
    }

    System RealSys;
    RealSys.Ges = Others;
    RealSys.Ges.insert(RealSys.Ges.end(), Real.begin(), Real.end());
    SatResult RealRes = solveInequalities(std::move(RealSys), Depth + 1);
    if (RealRes == SatResult::Unsat)
      return SatResult::Unsat;

    // Splinter: any solution missed by the dark shadow satisfies
    // a*x = -r1 + i for some lower bound with a > 1 and
    // 0 <= i <= (a*bmax - a - bmax) / a, where bmax is the largest upper
    // coefficient.
    int64_t BMax = 0;
    for (const LinearExpr &Up : Uppers)
      BMax = std::max(BMax, -Up.coeff(X));
    bool SawUnknown =
        DarkRes == SatResult::Unknown || RealRes == SatResult::Unknown;
    for (const LinearExpr &Lo : Lowers) {
      int64_t A = Lo.coeff(X);
      if (A <= 1)
        continue;
      std::optional<int64_t> Num = checkedMul(A, BMax);
      if (!Num)
        return SatResult::Unknown;
      int64_t Limit = floorDiv(*Num - A - BMax, A);
      for (int64_t I = 0; I <= Limit; ++I) {
        ++Counters.Splinters;
        if (budgetExceeded())
          return SatResult::Unknown;
        System Splinter;
        Splinter.Ges = Sys.Ges;
        Splinter.Eqs.push_back(Lo.plusConstant(-I));
        SatResult R = solve(std::move(Splinter), Depth + 1);
        if (R == SatResult::Sat)
          return SatResult::Sat;
        if (R == SatResult::Unknown)
          SawUnknown = true;
      }
    }
    return SawUnknown ? SatResult::Unknown : SatResult::Unsat;
  }
}
