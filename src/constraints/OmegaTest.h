//===- OmegaTest.h - Exact integer satisfiability ---------------*- C++ -*-===//
//
// Part of mcsafe, a reproduction of "Safety Checking of Machine Code"
// (Xu, Miller, Reps; PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Omega test (Pugh, 1991): an exact decision procedure for the
/// satisfiability of conjunctions of linear integer constraints, used here
/// as the core of the theorem prover that stands in for the Omega Library
/// the paper builds on.
///
/// The procedure:
///   1. expands NDIV atoms into residue cases and turns DIV atoms into
///      equalities with fresh quotient variables;
///   2. eliminates equalities — directly when a unit coefficient exists,
///      otherwise via Pugh's symmetric-modulus substitution, which
///      strictly shrinks coefficients;
///   3. eliminates inequality variables by Fourier-Motzkin when some pair
///      coefficient is 1 (exact), and otherwise by the real-shadow /
///      dark-shadow / splinter case analysis, which is exact.
///
/// All arithmetic is overflow-checked; overflow or budget exhaustion
/// yields Unknown (never a wrong Sat/Unsat).
///
//===----------------------------------------------------------------------===//

#ifndef MCSAFE_CONSTRAINTS_OMEGATEST_H
#define MCSAFE_CONSTRAINTS_OMEGATEST_H

#include "constraints/Constraint.h"

#include <cstdint>
#include <vector>

namespace mcsafe {

namespace support {
class ResourceGovernor;
} // namespace support

/// Tri-state satisfiability verdict.
enum class SatResult : uint8_t {
  Unsat,   ///< Definitely no integer solution.
  Sat,     ///< Definitely has an integer solution.
  Unknown, ///< Budget exhausted or arithmetic overflow.
};

/// The Omega-test solver. Stateless apart from counters; reusable.
class OmegaTest {
public:
  struct Options {
    /// Upper bound on elimination steps across one isSatisfiable call.
    uint64_t MaxSteps = 200000;
    /// Largest NDIV modulus expanded into residue cases.
    int64_t MaxNdivModulus = 64;
    /// Optional per-check governor: elimination loops poll it so a
    /// deadline can interrupt a blowup mid-query (result: Unknown).
    support::ResourceGovernor *Governor = nullptr;
  };

  struct Stats {
    uint64_t Calls = 0;
    uint64_t EqEliminations = 0;
    uint64_t IneqEliminations = 0;
    uint64_t DarkShadowHits = 0;
    uint64_t Splinters = 0;
  };

  OmegaTest() = default;
  explicit OmegaTest(Options Opts) : Opts(Opts) {}

  /// Decides satisfiability of the conjunction of \p Conjuncts over the
  /// integers (all variables implicitly existentially quantified).
  SatResult isSatisfiable(const std::vector<Constraint> &Conjuncts);

  const Stats &stats() const { return Counters; }
  void resetStats() { Counters = Stats(); }

private:
  struct System;
  SatResult solve(System Sys, unsigned Depth);
  SatResult solveInequalities(System Sys, unsigned Depth);
  bool budgetExceeded();

  Options Opts;
  Stats Counters;
  uint64_t StepsUsed = 0;
};

} // namespace mcsafe

#endif // MCSAFE_CONSTRAINTS_OMEGATEST_H
