//===- PreSolve.cpp -------------------------------------------------------===//

#include "constraints/PreSolve.h"

#include "support/CheckedInt.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <optional>

using namespace mcsafe;

//===----------------------------------------------------------------------===//
// Tier 0: constant folding
//===----------------------------------------------------------------------===//

std::optional<SatResult>
TieredSolver::constantFold(const std::vector<Constraint> &In,
                           std::vector<Constraint> &Live, bool &SawPoisoned) {
  Live.clear();
  Live.reserve(In.size());
  for (const Constraint &C : In) {
    if (C.isPoisoned()) {
      // Poisoned atoms force the Omega path, which answers Unknown.
      SawPoisoned = true;
      Live.push_back(C);
      continue;
    }
    if (std::optional<bool> Truth = C.constantTruth()) {
      if (!*Truth)
        return SatResult::Unsat; // One false conjunct decides everything.
      continue;                  // True conjuncts don't constrain.
    }
    Live.push_back(C);
  }
  if (Live.empty())
    return SatResult::Sat; // Every conjunct folded to true.
  return std::nullopt;
}

//===----------------------------------------------------------------------===//
// Tier 1: congruence systems (EQ/DIV elimination + NDIV coset analysis)
//===----------------------------------------------------------------------===//

namespace {

/// One linear row, sum(Coef[v] * v) + Const, over "columns": non-negative
/// keys are constraint VarIds, negative keys are the fresh multiplier
/// variables minted for DIV atoms (d | e holds iff e + d*t = 0 has an
/// integer solution in t).
struct CongruenceRow {
  std::map<int64_t, int64_t> Coef;
  int64_t Const = 0;
};

/// Dst += Src * Scale, checked; false on overflow.
bool addScaledInto(CongruenceRow &Dst, const CongruenceRow &Src,
                   int64_t Scale) {
  for (const auto &[V, A] : Src.Coef) {
    std::optional<int64_t> SA = checkedMul(A, Scale);
    if (!SA)
      return false;
    std::optional<int64_t> Sum = checkedAdd(Dst.Coef[V], *SA);
    if (!Sum)
      return false;
    if (*Sum == 0)
      Dst.Coef.erase(V);
    else
      Dst.Coef[V] = *Sum;
  }
  std::optional<int64_t> SC = checkedMul(Src.Const, Scale);
  if (!SC)
    return false;
  std::optional<int64_t> NC = checkedAdd(Dst.Const, *SC);
  if (!NC)
    return false;
  Dst.Const = *NC;
  return true;
}

int64_t coefGcd(const CongruenceRow &R) {
  int64_t G = 0;
  for (const auto &[V, A] : R.Coef) {
    (void)V;
    G = gcdInt64(G, A);
  }
  return G;
}

} // namespace

std::optional<SatResult>
TieredSolver::solveCongruences(const std::vector<Constraint> &Conjuncts) {
  // Applicability: the conjunction carries at least one divisibility atom
  // (the shape the known-bits annotations emit). The EQ/DIV/NDIV atoms
  // form the subsystem this tier reasons about exactly; Unsat for the
  // subsystem refutes the whole conjunction, Sat is only claimed when the
  // subsystem IS the whole conjunction (no GE atoms).
  bool HasDivisibility = false, HasGE = false;
  for (const Constraint &C : Conjuncts) {
    if (C.kind() == ConstraintKind::DIV || C.kind() == ConstraintKind::NDIV)
      HasDivisibility = true;
    else if (C.kind() == ConstraintKind::GE)
      HasGE = true;
  }
  if (!HasDivisibility)
    return std::nullopt;

  auto toRow = [](const Constraint &C) {
    CongruenceRow R;
    for (const auto &[V, A] : C.expr().terms())
      R.Coef[static_cast<int64_t>(V.index())] = A;
    R.Const = C.expr().constantValue();
    return R;
  };

  std::vector<CongruenceRow> Rows;
  struct NdivAtom {
    CongruenceRow Row;
    int64_t D;
  };
  std::vector<NdivAtom> Ndivs;
  int64_t FreshKey = -1;
  for (const Constraint &C : Conjuncts) {
    switch (C.kind()) {
    case ConstraintKind::GE:
      break;
    case ConstraintKind::EQ:
      Rows.push_back(toRow(C));
      break;
    case ConstraintKind::DIV: {
      CongruenceRow R = toRow(C);
      R.Coef[FreshKey--] = C.modulus();
      Rows.push_back(R);
      break;
    }
    case ConstraintKind::NDIV:
      Ndivs.push_back({toRow(C), C.modulus()});
      break;
    }
  }

  // Triangularize the EQ/DIV system with unit pivots. Each step either
  // decides a row (gcd infeasibility => Unsat, trivial => drop), finds a
  // +/-1 pivot and substitutes it away, or declines. When the loop
  // drains without Unsat, every assignment of the remaining free columns
  // extends to a solution of the subsystem (back-substitution through
  // the discarded pivot rows).
  size_t Steps = 0;
  while (!Rows.empty()) {
    if (++Steps > 64)
      return std::nullopt; // Pathological system: not this tier's shape.
    CongruenceRow P = std::move(Rows.back());
    Rows.pop_back();
    int64_t G = coefGcd(P);
    if (G == 0) {
      if (P.Const != 0)
        return SatResult::Unsat;
      continue;
    }
    if (P.Const % G != 0)
      return SatResult::Unsat; // gcd test: no integer solution.
    if (G > 1) {
      for (auto &[V, A] : P.Coef)
        A /= G;
      P.Const /= G;
    }
    auto Pivot =
        std::find_if(P.Coef.begin(), P.Coef.end(), [](const auto &Term) {
          return Term.second == 1 || Term.second == -1;
        });
    if (Pivot == P.Coef.end())
      return std::nullopt; // No unit coefficient to eliminate with.
    const int64_t PivotVar = Pivot->first;
    const int64_t PivotSign = Pivot->second;
    // Row R with coefficient b on the pivot column:  R += P * (-b * s)
    // cancels the column exactly (s*s == 1).
    auto substituteInto = [&](CongruenceRow &R) -> bool {
      auto It = R.Coef.find(PivotVar);
      if (It == R.Coef.end())
        return true;
      std::optional<int64_t> Scale = checkedMul(It->second, -PivotSign);
      if (!Scale)
        return false;
      return addScaledInto(R, P, *Scale);
    };
    for (CongruenceRow &R : Rows)
      if (!substituteInto(R))
        return std::nullopt;
    for (NdivAtom &N : Ndivs)
      if (!substituteInto(N.Row))
        return std::nullopt;
  }

  // The NDIV atoms, now over free columns only. For d | (e) with
  // G = gcd(coefficients of e), g = gcd(d, G): e mod d ranges over the
  // coset Const + g*Z, each residue equally often. So the atom is always
  // false when g == d and d | Const (=> Unsat), always true when
  // g does not divide Const (drop), and otherwise "d divides e" holds
  // for exactly a g/d fraction of assignments. A union bound
  // sum(g_i/d_i) < 1 then witnesses an assignment satisfying every
  // remaining NDIV atom.
  int64_t DensityNum = 0, DensityDen = 1;
  for (const NdivAtom &N : Ndivs) {
    const int64_t D = N.D; // Constraint guarantees D >= 1.
    const int64_t G = coefGcd(N.Row);
    const int64_t C = N.Row.Const;
    const int64_t Small = G == 0 ? D : gcdInt64(D, G);
    if (Small == D) {
      // d divides every coefficient: e == Const (mod d) identically.
      if (floorMod(C, D) == 0)
        return SatResult::Unsat; // Atom is identically false.
      continue;                  // Atom is identically true.
    }
    if (floorMod(C, Small) != 0)
      continue; // 0 is not in the coset: atom identically true.
    std::optional<int64_t> NumD = checkedMul(DensityNum, D);
    std::optional<int64_t> SmallDen = checkedMul(Small, DensityDen);
    std::optional<int64_t> NewDen = checkedMul(DensityDen, D);
    if (!NumD || !SmallDen || !NewDen)
      return std::nullopt;
    std::optional<int64_t> NewNum = checkedAdd(*NumD, *SmallDen);
    if (!NewNum)
      return std::nullopt;
    int64_t Reduce = gcdInt64(*NewNum, *NewDen);
    DensityNum = *NewNum / Reduce;
    DensityDen = *NewDen / Reduce;
    if (DensityNum >= DensityDen)
      return std::nullopt; // Union bound inconclusive.
  }

  if (HasGE)
    return std::nullopt; // Subsystem satisfiable, but GE atoms remain.
  return SatResult::Sat;
}

//===----------------------------------------------------------------------===//
// Tier 2: per-variable intervals + bounded congruence windows
//===----------------------------------------------------------------------===//

namespace {

/// Interval and congruence state for one variable.
struct VarInterval {
  VarId Var;
  std::optional<int64_t> Lo, Hi;
  /// Congruence atoms d | (a*x + c) (Positive) or their negations.
  struct Congruence {
    int64_t A, C, D;
    bool Positive;
  };
  std::vector<Congruence> Congruences;
};

/// Intersects the interval with x >= B.
void boundBelow(VarInterval &VI, int64_t B) {
  if (!VI.Lo || *VI.Lo < B)
    VI.Lo = B;
}

/// Intersects the interval with x <= B.
void boundAbove(VarInterval &VI, int64_t B) {
  if (!VI.Hi || *VI.Hi > B)
    VI.Hi = B;
}

/// Does x satisfy every congruence of \p VI? nullopt on overflow.
std::optional<bool> congruencesHold(const VarInterval &VI, int64_t X) {
  for (const VarInterval::Congruence &G : VI.Congruences) {
    std::optional<int64_t> AX = checkedMul(G.A, X);
    if (!AX)
      return std::nullopt;
    std::optional<int64_t> V = checkedAdd(*AX, G.C);
    if (!V)
      return std::nullopt;
    if ((floorMod(*V, G.D) == 0) != G.Positive)
      return false;
  }
  return true;
}

} // namespace

std::optional<SatResult>
TieredSolver::solveIntervals(const std::vector<Constraint> &Conjuncts) {
  // Applicability: every atom mentions exactly one variable (constants
  // were folded away). Distinct variables decompose independently.
  std::vector<VarInterval> Vars;
  auto stateFor = [&Vars](VarId V) -> VarInterval & {
    auto It = std::lower_bound(
        Vars.begin(), Vars.end(), V,
        [](const VarInterval &VI, VarId Key) { return VI.Var < Key; });
    if (It != Vars.end() && It->Var == V)
      return *It;
    It = Vars.insert(It, VarInterval());
    It->Var = V;
    return *It;
  };

  for (const Constraint &C : Conjuncts) {
    LinearExpr::TermSpan Terms = C.expr().terms();
    if (Terms.size() != 1)
      return std::nullopt; // Multi-variable atom: not this tier's shape.
    auto [V, A] = Terms.front();
    int64_t K = C.expr().constantValue();
    VarInterval &VI = stateFor(V);
    switch (C.kind()) {
    case ConstraintKind::GE: {
      // a*x + k >= 0.
      std::optional<int64_t> NegK = checkedNeg(K);
      if (!NegK)
        return std::nullopt;
      if (A > 0) {
        boundBelow(VI, ceilDiv(*NegK, A)); // x >= ceil(-k / a).
      } else {
        std::optional<int64_t> NegA = checkedNeg(A);
        if (!NegA)
          return std::nullopt;
        boundAbove(VI, floorDiv(K, *NegA)); // x <= floor(k / -a).
      }
      break;
    }
    case ConstraintKind::EQ: {
      // a*x + k == 0: either one integer solution or none.
      std::optional<int64_t> NegK = checkedNeg(K);
      if (!NegK)
        return std::nullopt;
      if (*NegK % A != 0)
        return SatResult::Unsat;
      int64_t X = *NegK / A;
      boundBelow(VI, X);
      boundAbove(VI, X);
      break;
    }
    case ConstraintKind::DIV:
    case ConstraintKind::NDIV:
      VI.Congruences.push_back(
          {A, K, C.modulus(), C.kind() == ConstraintKind::DIV});
      break;
    }
  }

  for (const VarInterval &VI : Vars) {
    if (VI.Lo && VI.Hi && *VI.Lo > *VI.Hi)
      return SatResult::Unsat; // Empty integer interval.
    if (VI.Congruences.empty())
      continue; // Nonempty interval with no congruences: satisfiable.

    // Congruence satisfaction is periodic with period lcm(moduli): any
    // window of that many consecutive integers inside the interval is
    // decisive. Scan one, bounded by MaxCongruenceWindow.
    int64_t Lcm = 1;
    for (const VarInterval::Congruence &G : VI.Congruences) {
      std::optional<int64_t> Next = checkedMul(Lcm / gcdInt64(Lcm, G.D), G.D);
      if (!Next || *Next > Opts.MaxCongruenceWindow)
        return std::nullopt;
      Lcm = *Next;
    }

    int64_t Start;
    int64_t Count = Lcm;
    if (VI.Lo) {
      Start = *VI.Lo;
      if (VI.Hi) {
        // Window = min(interval width, one full period); both are exact:
        // a narrower window covers the whole interval, a full period
        // covers every residue class reachable inside it.
        std::optional<int64_t> Width = checkedSub(*VI.Hi, *VI.Lo);
        if (!Width)
          return std::nullopt;
        if (*Width < Lcm - 1)
          Count = *Width + 1;
      }
    } else if (VI.Hi) {
      std::optional<int64_t> S = checkedSub(*VI.Hi, Lcm - 1);
      if (!S)
        return std::nullopt;
      Start = *S;
    } else {
      Start = 0;
    }

    bool Satisfied = false;
    for (int64_t I = 0; I < Count; ++I) {
      std::optional<int64_t> X = checkedAdd(Start, I);
      if (!X)
        return std::nullopt;
      std::optional<bool> Ok = congruencesHold(VI, *X);
      if (!Ok)
        return std::nullopt;
      if (*Ok) {
        Satisfied = true;
        break;
      }
    }
    if (!Satisfied)
      return SatResult::Unsat;
  }
  return SatResult::Sat;
}

//===----------------------------------------------------------------------===//
// Tier 3: unit-coefficient difference systems via Bellman-Ford
//===----------------------------------------------------------------------===//

namespace {

/// One difference edge: D[To] <= D[From] + Weight.
struct DiffEdge {
  uint32_t From, To;
  int64_t Weight;
};

} // namespace

std::optional<SatResult>
TieredSolver::solveDifferenceBounds(const std::vector<Constraint> &Conjuncts) {
  // Applicability: GE/EQ only, each over at most two variables with unit
  // coefficients (a difference x - y, or a single +/-x). Such systems are
  // totally unimodular, so Bellman-Ford feasibility over the rationals is
  // exact over the integers.
  std::vector<VarId> Nodes;
  for (const Constraint &C : Conjuncts) {
    if (C.kind() != ConstraintKind::GE && C.kind() != ConstraintKind::EQ)
      return std::nullopt;
    LinearExpr::TermSpan Terms = C.expr().terms();
    if (Terms.size() > 2)
      return std::nullopt;
    if (Terms.size() == 2) {
      int64_t A0 = Terms[0].second, A1 = Terms[1].second;
      if (!((A0 == 1 && A1 == -1) || (A0 == -1 && A1 == 1)))
        return std::nullopt;
    } else if (Terms.size() == 1) {
      int64_t A = Terms.front().second;
      if (A != 1 && A != -1)
        return std::nullopt;
    }
    for (const auto &[V, A] : Terms) {
      (void)A;
      Nodes.push_back(V);
    }
  }
  std::sort(Nodes.begin(), Nodes.end());
  Nodes.erase(std::unique(Nodes.begin(), Nodes.end()), Nodes.end());
  auto indexOf = [&Nodes](VarId V) -> uint32_t {
    return static_cast<uint32_t>(
        std::lower_bound(Nodes.begin(), Nodes.end(), V) - Nodes.begin());
  };
  const uint32_t Zero = static_cast<uint32_t>(Nodes.size()); // The 0 node.
  const uint32_t NodeCount = Zero + 1;

  // At most two edges per conjunct (EQ contributes both directions).
  Scratch.reset();
  auto *Edges = Scratch.allocateArray<DiffEdge>(2 * Conjuncts.size());
  size_t EdgeCount = 0;
  // Adds the edge encoding  e + k >= 0  for a difference/unit term shape.
  auto addEdge = [&](LinearExpr::TermSpan Terms, int64_t K, bool Negated) {
    // Negated mirrors every coefficient and the constant (for the e <= 0
    // half of an EQ); callers verified the negations cannot overflow.
    auto coeffOf = [&](size_t I) {
      return Negated ? -Terms[I].second : Terms[I].second;
    };
    if (Terms.size() == 2) {
      // x - y + k >= 0  <=>  D[x] >= D[y] - k: edge y <- x ... encoded as
      // D[To] <= D[From] + W with  y - x <= k: From = x, To = y, W = k.
      uint32_t X = indexOf(Terms[0].first), Y = indexOf(Terms[1].first);
      if (coeffOf(0) == -1)
        std::swap(X, Y); // Normalize to +X - Y.
      Edges[EdgeCount++] = {X, Y, K};
    } else {
      uint32_t X = indexOf(Terms.front().first);
      if (coeffOf(0) == 1)
        Edges[EdgeCount++] = {X, Zero, K}; // x + k >= 0: 0 - x <= k.
      else
        Edges[EdgeCount++] = {Zero, X, K}; // -x + k >= 0: x - 0 <= k.
    }
  };
  for (const Constraint &C : Conjuncts) {
    int64_t K = C.expr().constantValue();
    addEdge(C.expr().terms(), K, false);
    if (C.kind() == ConstraintKind::EQ) {
      std::optional<int64_t> NegK = checkedNeg(K);
      if (!NegK)
        return std::nullopt;
      addEdge(C.expr().terms(), *NegK, true);
    }
  }

  // Bellman-Ford feasibility from a virtual source at distance 0 to every
  // node: the system is satisfiable iff there is no negative cycle.
  auto *Dist = Scratch.allocateArray<int64_t>(NodeCount);
  std::fill(Dist, Dist + NodeCount, 0);
  for (uint32_t Round = 0; Round < NodeCount; ++Round) {
    bool Relaxed = false;
    for (size_t I = 0; I < EdgeCount; ++I) {
      const DiffEdge &E = Edges[I];
      std::optional<int64_t> Candidate = checkedAdd(Dist[E.From], E.Weight);
      if (!Candidate)
        return std::nullopt;
      if (*Candidate < Dist[E.To]) {
        Dist[E.To] = *Candidate;
        Relaxed = true;
      }
    }
    if (!Relaxed)
      return SatResult::Sat; // Converged: a feasible assignment exists.
  }
  return SatResult::Unsat; // Relaxation after |V| rounds: negative cycle.
}

//===----------------------------------------------------------------------===//
// The tier pipeline
//===----------------------------------------------------------------------===//

SatResult TieredSolver::isSatisfiable(const std::vector<Constraint> &Conjuncts) {
  if (!Opts.EnableTiers) {
    SatResult R = Omega.isSatisfiable(Conjuncts);
    ++(R == SatResult::Unknown ? Tiers.OmegaMisses : Tiers.OmegaHits);
    return R;
  }

  std::vector<Constraint> Live;
  bool SawPoisoned = false;
  if (std::optional<SatResult> R =
          constantFold(Conjuncts, Live, SawPoisoned)) {
    // Constant folding is bookkept as an interval-tier hit: it is the
    // degenerate zero-variable case of the same analysis.
    ++Tiers.IntervalHits;
    return *R;
  }

  if (!SawPoisoned) {
    if (Opts.EnableCongruence) {
      if (std::optional<SatResult> R = solveCongruences(Live)) {
        ++Tiers.CongruenceHits;
        return *R;
      }
      ++Tiers.CongruenceMisses;
    }
    if (std::optional<SatResult> R = solveIntervals(Live)) {
      ++Tiers.IntervalHits;
      return *R;
    }
    ++Tiers.IntervalMisses;
    if (std::optional<SatResult> R = solveDifferenceBounds(Live)) {
      ++Tiers.DbmHits;
      return *R;
    }
    ++Tiers.DbmMisses;
  } else {
    if (Opts.EnableCongruence)
      ++Tiers.CongruenceMisses;
    ++Tiers.IntervalMisses;
    ++Tiers.DbmMisses;
  }

  // Tier 4: the exact Omega test, over the original conjunction (its own
  // normalization pipeline is the reference behavior).
  SatResult R = Omega.isSatisfiable(Conjuncts);
  ++(R == SatResult::Unknown ? Tiers.OmegaMisses : Tiers.OmegaHits);
  return R;
}
