//===- PreSolve.h - Tiered satisfiability solving ---------------*- C++ -*-===//
//
// Part of mcsafe, a reproduction of "Safety Checking of Machine Code"
// (Xu, Miller, Reps; PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tiered satisfiability solving: cheap, sound pre-solvers in front of the
/// full Omega test. The paper identifies the prover as the dominant cost
/// of safety checking, and the VCs machine code generates are mostly
/// single-variable bound checks and two-variable difference constraints —
/// shapes an exact integer solver is overkill for.
///
///   Tier 0  constant fold:   decide conjunctions of variable-free atoms,
///                            drop constant-true atoms for later tiers.
///   Tier 1  congruence:      alignment / divisibility systems (the atoms
///                            the known-bits domain emits): EQ and DIV
///                            atoms eliminate as an integer linear system
///                            (each d | e adds a multiplier variable),
///                            then NDIV atoms resolve by gcd / coset
///                            analysis with an exact union bound. Answers
///                            Unsat as a refutation of the EQ/DIV/NDIV
///                            subsystem even when GE atoms are present;
///                            answers Sat only when that subsystem is the
///                            whole conjunction.
///   Tier 2  interval:        exact for conjunctions where every atom
///                            mentions at most one variable; per-variable
///                            [lo, hi] intersection plus a bounded
///                            lcm-period window scan for DIV/NDIV atoms.
///   Tier 3  difference (DBM): exact for unit-coefficient difference
///                            systems (x - y + c >= 0, +/-x + c >= 0)
///                            without divisibility atoms, via Bellman-Ford
///                            negative-cycle detection. Integer-exact
///                            because difference systems are totally
///                            unimodular.
///   Tier 4  Omega test:      everything else.
///
/// Soundness: a tier either answers exactly (its applicability test
/// guarantees its answer equals the true satisfiability) or declines, in
/// which case the next tier runs. Unknown is only ever produced by the
/// Omega tier's budgets. Tiers never mint fresh variables and run in
/// bounded time, so they need no governor polling of their own; the
/// prover's uniform per-query step charge (see Prover.cpp) is what keeps
/// governor verdicts byte-deterministic across --jobs.
///
//===----------------------------------------------------------------------===//

#ifndef MCSAFE_CONSTRAINTS_PRESOLVE_H
#define MCSAFE_CONSTRAINTS_PRESOLVE_H

#include "constraints/OmegaTest.h"
#include "support/Arena.h"

#include <cstdint>
#include <optional>
#include <vector>

namespace mcsafe {

/// The prover's satisfiability core: pre-solver tiers in front of an
/// OmegaTest. Stateless apart from counters and scratch; reusable.
class TieredSolver {
public:
  struct Options {
    OmegaTest::Options Omega;
    /// When false, every query goes straight to the Omega test (the
    /// pre-kernel behavior; also the differential-testing reference).
    bool EnableTiers = true;
    /// When false, the congruence tier is skipped (the known-bits
    /// --no-knownbits configuration); divisibility systems fall through
    /// to the interval window scan or Omega.
    bool EnableCongruence = true;
    /// Largest lcm-of-moduli window the interval tier scans to decide
    /// divisibility atoms; beyond it the query falls through to Omega.
    int64_t MaxCongruenceWindow = 4096;
  };

  /// Per-tier outcome counters. A "hit" is a query the tier answered
  /// definitively (for the Omega tier: Sat/Unsat rather than Unknown); a
  /// "miss" is a query the tier saw but had to pass on.
  struct TierStats {
    uint64_t CongruenceHits = 0;
    uint64_t CongruenceMisses = 0;
    uint64_t IntervalHits = 0;
    uint64_t IntervalMisses = 0;
    uint64_t DbmHits = 0;
    uint64_t DbmMisses = 0;
    uint64_t OmegaHits = 0;
    uint64_t OmegaMisses = 0;
  };

  TieredSolver() : TieredSolver(Options()) {}
  explicit TieredSolver(Options Opts)
      : Opts(Opts), Omega(Opts.Omega) {}

  /// Decides satisfiability of the conjunction of \p Conjuncts over the
  /// integers (all variables implicitly existentially quantified).
  SatResult isSatisfiable(const std::vector<Constraint> &Conjuncts);

  const TierStats &tierStats() const { return Tiers; }
  const OmegaTest::Stats &omegaStats() const { return Omega.stats(); }
  void resetStats() {
    Tiers = TierStats();
    Omega.resetStats();
  }

  const Options &options() const { return Opts; }

private:
  /// Folds variable-free atoms. Returns a definite verdict when the whole
  /// conjunction decides; otherwise fills \p Live with the remaining
  /// atoms (nullopt result). Poisoned atoms force the Omega path, which
  /// reports them as Unknown.
  std::optional<SatResult> constantFold(const std::vector<Constraint> &In,
                                        std::vector<Constraint> &Live,
                                        bool &SawPoisoned);
  /// Tier 1 (congruence). Applicable when the conjunction carries at
  /// least one DIV/NDIV atom; sound-or-declines as documented above.
  std::optional<SatResult> solveCongruences(const std::vector<Constraint> &C);
  /// Tier 2 (interval). Exact or declines (nullopt).
  std::optional<SatResult> solveIntervals(const std::vector<Constraint> &C);
  /// Tier 3 (difference bounds). Exact or declines (nullopt).
  std::optional<SatResult>
  solveDifferenceBounds(const std::vector<Constraint> &C);

  Options Opts;
  OmegaTest Omega;
  TierStats Tiers;
  /// Per-query scratch (interval tables, DBM edges); reset each query, so
  /// steady-state queries allocate nothing.
  support::Arena Scratch;
};

} // namespace mcsafe

#endif // MCSAFE_CONSTRAINTS_PRESOLVE_H
