//===- Prover.cpp ---------------------------------------------------------===//

#include "constraints/Prover.h"
#include "support/FaultInjection.h"
#include "support/Governor.h"
#include "support/Trace.h"

using namespace mcsafe;

namespace {
Prover::Options propagateGovernor(Prover::Options O) {
  if (O.Governor && !O.Omega.Governor)
    O.Omega.Governor = O.Governor;
  return O;
}

TieredSolver::Options solverOptions(const Prover::Options &O) {
  TieredSolver::Options S;
  S.Omega = O.Omega;
  S.EnableTiers = O.EnableTiers;
  S.EnableCongruence = O.EnableCongruence;
  return S;
}
} // namespace

Prover::Prover(Options Opts, std::shared_ptr<ProverCache> SharedCache)
    : Opts(propagateGovernor(Opts)), Solver(solverOptions(this->Opts)),
      Slicer(Solver, nullptr) {
  if (SharedCache)
    Cache = std::move(SharedCache);
  else if (Opts.EnableCache) {
    ProverCache::Config C;
    C.MaxEntries = Opts.CacheMaxEntries;
    Cache = std::make_shared<ProverCache>(C);
    OwnsCache = true;
  }
  // The slicer memoizes per-component verdicts in the same cache the
  // whole-query results live in (budget-tagged apart); without a cache it
  // still decomposes, just without the memo.
  Slicer.setCache(Cache.get());
}

QueryBudget Prover::budget() const {
  QueryBudget B;
  B.DnfMaxDisjuncts = Opts.DnfMaxDisjuncts;
  B.DnfMaxAtoms = Opts.DnfMaxAtoms;
  B.OmegaMaxSteps = Opts.Omega.MaxSteps;
  B.OmegaMaxNdivModulus = Opts.Omega.MaxNdivModulus;
  B.SolverTiers = Opts.EnableTiers ? (Opts.EnableCongruence ? 2 : 1) : 0;
  B.SolverSlicing = Opts.EnableSlicing ? QueryBudget::SlicingOn
                                       : QueryBudget::SlicingOff;
  return B;
}

Prover::Stats Prover::stats() const {
  Stats S = Counters;
  S.Tiers = Solver.tierStats();
  S.Slice = Slicer.stats();
  // A shared cache's evictions belong to the cache, not to this prover:
  // reporting them here would let a batch summary over N workers count
  // each eviction N times. The batch driver reads ProverCache::stats()
  // once instead.
  if (Cache && OwnsCache)
    S.CacheEvictions = Cache->stats().Evictions;
  return S;
}

SatOutcome Prover::checkSatInternal(const FormulaRef &F) {
  ++Counters.SatQueries;
  // The step budget is charged per query, before the trivial-formula and
  // cache shortcuts: the charge count is then a pure function of the
  // query sequence, independent of cache warmth, which keeps step-budget
  // exhaustion byte-deterministic across --jobs.
  if (support::ResourceGovernor *Gov = Opts.Governor) {
    bool Ok = Opts.ChargeGovernorSteps ? Gov->chargeProverStep("prover/sat")
                                       : Gov->poll("prover/sat");
    if (!Ok) {
      ++Counters.BudgetExhaustions;
      return {SatResult::Unknown, false};
    }
  }
  // Injected prover fault: the degraded path is an uncached Unknown,
  // which the callers already treat as "not proved" (sound).
  if (support::faultPoint("prover/sat"))
    return {SatResult::Unknown, false};
  if (F->isTrue())
    return {SatResult::Sat, false};
  if (F->isFalse())
    return {SatResult::Unsat, false};

  uint64_t Key = 0;
  QueryBudget B = budget();
  if (Cache) {
    Key = ProverCache::keyFor(F, B);
    // Injected cache fault: degrade to a recompute (lookup "misses").
    if (!support::faultPoint("cache/lookup")) {
      if (std::optional<SatOutcome> Hit = Cache->lookupHashed(Key, F, B)) {
        ++Counters.CacheHits;
        recordQuery(F, B, *Hit);
        return *Hit;
      }
    }
  }

  SatOutcome Outcome{SatResult::Unsat, false};
  {
    // Fresh variables minted while answering a query (DNF quantifier
    // instantiation, Omega quotient/splinter variables) never escape it.
    // Minting them outside any active VarNamespace keeps a check's
    // deterministic name sequence independent of cache hit patterns —
    // and hence of how much speculative parallel work warmed the cache.
    VarScopeSuspend NoScope;
    support::TraceSpan Span("prover/sat");
    DnfResult Dnf = toDNF(F, Opts.DnfMaxDisjuncts, Opts.DnfMaxAtoms);
    // The DNF expansion is where prover memory blows up; charge its
    // footprint against the governor for the lifetime of the query.
    uint64_t DnfBytes = 0;
    for (const std::vector<Constraint> &D : Dnf.Disjuncts)
      DnfBytes += D.size() * sizeof(Constraint);
    support::MemoryCharge Mem(Opts.Governor, "prover/dnf", DnfBytes);
    Outcome.ApproximatedForall = Dnf.ApproximatedForall;
    if (Dnf.BudgetExceeded ||
        (Opts.Governor && Opts.Governor->exhausted())) {
      Outcome.Result = SatResult::Unknown;
    } else {
      bool SawUnknown = false;
      // With slicing on, disjuncts dedup by their interned conjunction id
      // (atoms sorted, so the dedup is order-insensitive — a conjunction
      // is the same query in any atom order under canonical component
      // solving). toDNF distributes the same subtrees into many
      // disjuncts, so repeats are common.
      std::unordered_set<uint32_t> SeenDisjuncts;
      // A single-disjunct DNF (by far the common case) needs neither the
      // dedup set nor a disjunct-level memo entry: the whole-query cache
      // entry written below already memoizes exactly this query, and
      // skipping the canonical-conjunction interning keeps the slicing
      // overhead near zero when there is nothing to dedup.
      const bool SingleDisjunct = Dnf.Disjuncts.size() == 1;
      for (const std::vector<Constraint> &Disjunct : Dnf.Disjuncts) {
        SatResult R;
        if (Opts.EnableSlicing && SingleDisjunct) {
          R = Slicer.solveSingleDisjunct(Disjunct, B, Opts.Governor);
        } else if (Opts.EnableSlicing) {
          std::vector<FormulaRef> Refs;
          Refs.reserve(Disjunct.size());
          for (const Constraint &C : Disjunct)
            Refs.push_back(Formula::atom(C));
          std::sort(Refs.begin(), Refs.end(),
                    [](const FormulaRef &A, const FormulaRef &B) {
                      return A->id() < B->id();
                    });
          FormulaRef DF = Formula::conj(std::move(Refs));
          // The smart constructor already decides constant disjuncts:
          // False means this disjunct is unsatisfiable, True means it is
          // trivially satisfiable (all atoms constant-true).
          if (DF->isFalse())
            continue;
          if (!SeenDisjuncts.insert(DF->id()).second) {
            Slicer.noteDedupedDisjunct();
            continue;
          }
          R = DF->isTrue() ? SatResult::Sat
                           : Slicer.solve(DF, Disjunct, B, Opts.Governor);
        } else {
          R = Solver.isSatisfiable(Disjunct);
        }
        if (R == SatResult::Sat) {
          Outcome.Result = SatResult::Sat;
          SawUnknown = false;
          break;
        }
        if (R == SatResult::Unknown)
          SawUnknown = true;
      }
      if (Outcome.Result != SatResult::Sat && SawUnknown)
        Outcome.Result = SatResult::Unknown;
    }
  }

  // Unknown from the compute path always means some resource budget ran
  // out (DNF explosion cap or an Omega step/modulus limit).
  if (Outcome.Result == SatResult::Unknown)
    ++Counters.BudgetExhaustions;

  // Caching budget-limited Unknowns is sound because the key carries the
  // budget: a query under a different budget can never see this entry.
  // But an Unknown produced because the *governor* interrupted the
  // computation is NOT a pure function of (formula, budget) — it depends
  // on when the deadline fired — so it must never enter the cache.
  if (Cache && !(Opts.Governor && Opts.Governor->exhausted()) &&
      !support::faultPoint("cache/insert"))
    Cache->insertHashed(Key, F, B, Outcome);
  recordQuery(F, B, Outcome);
  return Outcome;
}

void Prover::recordQuery(const FormulaRef &F, const QueryBudget &B,
                         const SatOutcome &Outcome) {
  if (!Transcript)
    return;
  if (TranscriptSeen.insert(F->id()).second)
    Transcript->push_back({F, B, Outcome});
}

SatResult Prover::checkSat(const FormulaRef &F) {
  return checkSatInternal(F).Result;
}

ProverResult Prover::checkValid(const FormulaRef &F) {
  ++Counters.ValidityQueries;
  SatOutcome Outcome = checkSatInternal(Formula::negate(F));
  switch (Outcome.Result) {
  case SatResult::Unsat:
    return ProverResult::Proved;
  case SatResult::Sat:
    // A spurious model is possible when a Forall inside not(F) was
    // replaced by a free variable; report Unknown rather than a definite
    // countermodel. The flag comes back from cache hits too.
    return Outcome.ApproximatedForall ? ProverResult::Unknown
                                      : ProverResult::NotProved;
  case SatResult::Unknown:
    return ProverResult::Unknown;
  }
  return ProverResult::Unknown;
}
