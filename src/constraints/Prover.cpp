//===- Prover.cpp ---------------------------------------------------------===//

#include "constraints/Prover.h"

using namespace mcsafe;

Prover::SatOutcome Prover::checkSatInternal(const FormulaRef &F) {
  ++Counters.SatQueries;
  if (F->isTrue())
    return {SatResult::Sat, false};
  if (F->isFalse())
    return {SatResult::Unsat, false};

  if (Opts.EnableCache) {
    auto It = Cache.find(F->hash());
    if (It != Cache.end()) {
      for (const CacheEntry &E : It->second) {
        if (Formula::equal(E.Key, F)) {
          ++Counters.CacheHits;
          return E.Outcome;
        }
      }
    }
  }

  DnfResult Dnf = toDNF(F, Opts.DnfMaxDisjuncts, Opts.DnfMaxAtoms);
  SatOutcome Outcome{SatResult::Unsat, Dnf.ApproximatedForall};
  if (Dnf.BudgetExceeded) {
    Outcome.Result = SatResult::Unknown;
  } else {
    bool SawUnknown = false;
    for (const std::vector<Constraint> &Disjunct : Dnf.Disjuncts) {
      SatResult R = Omega.isSatisfiable(Disjunct);
      if (R == SatResult::Sat) {
        Outcome.Result = SatResult::Sat;
        SawUnknown = false;
        break;
      }
      if (R == SatResult::Unknown)
        SawUnknown = true;
    }
    if (Outcome.Result != SatResult::Sat && SawUnknown)
      Outcome.Result = SatResult::Unknown;
  }

  if (Opts.EnableCache)
    Cache[F->hash()].push_back({F, Outcome});
  return Outcome;
}

SatResult Prover::checkSat(const FormulaRef &F) {
  return checkSatInternal(F).Result;
}

ProverResult Prover::checkValid(const FormulaRef &F) {
  ++Counters.ValidityQueries;
  SatOutcome Outcome = checkSatInternal(Formula::negate(F));
  switch (Outcome.Result) {
  case SatResult::Unsat:
    return ProverResult::Proved;
  case SatResult::Sat:
    // A spurious model is possible when a Forall inside not(F) was
    // replaced by a free variable; report Unknown rather than a definite
    // countermodel.
    return Outcome.ApproximatedForall ? ProverResult::Unknown
                                      : ProverResult::NotProved;
  case SatResult::Unknown:
    return ProverResult::Unknown;
  }
  return ProverResult::Unknown;
}
