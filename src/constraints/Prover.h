//===- Prover.h - Validity checking over Presburger formulas ----*- C++ -*-===//
//
// Part of mcsafe, a reproduction of "Safety Checking of Machine Code"
// (Xu, Miller, Reps; PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The theorem prover the global-verification phase invokes — our stand-in
/// for the Omega Library. Validity of a formula F (free variables
/// implicitly universally quantified) is decided by testing the
/// satisfiability of not(F) with the Omega test over the DNF of not(F).
///
/// Results are tri-state: Proved / NotProved / Unknown. Unknown arises
/// from budget exhaustion, arithmetic overflow, or a Forall that had to be
/// approximated during satisfiability checking; the safety checker treats
/// Unknown as "not proved", which is sound.
///
/// The prover optionally caches query results keyed by structural formula
/// identity — the caching enhancement sketched in Section 5.2.3 of the
/// paper ("represent formulas in a canonical form and use previous results
/// whenever possible"); the ablation bench measures its effect.
///
//===----------------------------------------------------------------------===//

#ifndef MCSAFE_CONSTRAINTS_PROVER_H
#define MCSAFE_CONSTRAINTS_PROVER_H

#include "constraints/Formula.h"
#include "constraints/Normalize.h"
#include "constraints/OmegaTest.h"

#include <cstdint>
#include <unordered_map>

namespace mcsafe {

/// Verdict of a validity query.
enum class ProverResult : uint8_t {
  Proved,    ///< The formula is valid.
  NotProved, ///< A countermodel exists (the formula is not valid).
  Unknown,   ///< Resources exhausted or approximation interfered.
};

/// Validity / satisfiability oracle over formulas.
class Prover {
public:
  struct Options {
    OmegaTest::Options Omega;
    size_t DnfMaxDisjuncts = 1024;
    size_t DnfMaxAtoms = 512;
    bool EnableCache = true;
  };

  struct Stats {
    uint64_t ValidityQueries = 0;
    uint64_t SatQueries = 0;
    uint64_t CacheHits = 0;
  };

  Prover() : Prover(Options()) {}
  explicit Prover(Options Opts) : Opts(Opts), Omega(Opts.Omega) {}

  /// Is the conjunction-closure of \p F satisfiable (free variables
  /// existential)?
  SatResult checkSat(const FormulaRef &F);

  /// Is \p F valid (free variables universal)?
  ProverResult checkValid(const FormulaRef &F);

  /// Does \p P imply \p Q?
  ProverResult checkImplies(const FormulaRef &P, const FormulaRef &Q) {
    return checkValid(Formula::implies(P, Q));
  }

  const Stats &stats() const { return Counters; }
  const OmegaTest::Stats &omegaStats() const { return Omega.stats(); }
  void resetStats() {
    Counters = Stats();
    Omega.resetStats();
  }
  void clearCache() { Cache.clear(); }

  const Options &options() const { return Opts; }

private:
  struct SatOutcome {
    SatResult Result;
    bool ApproximatedForall;
  };
  SatOutcome checkSatInternal(const FormulaRef &F);

  Options Opts;
  OmegaTest Omega;
  Stats Counters;
  /// Cache keyed by structural hash; collisions verified with
  /// Formula::equal on the stored formula.
  struct CacheEntry {
    FormulaRef Key;
    SatOutcome Outcome;
  };
  std::unordered_map<size_t, std::vector<CacheEntry>> Cache;
};

} // namespace mcsafe

#endif // MCSAFE_CONSTRAINTS_PROVER_H
