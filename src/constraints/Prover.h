//===- Prover.h - Validity checking over Presburger formulas ----*- C++ -*-===//
//
// Part of mcsafe, a reproduction of "Safety Checking of Machine Code"
// (Xu, Miller, Reps; PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The theorem prover the global-verification phase invokes — our stand-in
/// for the Omega Library. Validity of a formula F (free variables
/// implicitly universally quantified) is decided by testing the
/// satisfiability of not(F) with the Omega test over the DNF of not(F).
///
/// Results are tri-state: Proved / NotProved / Unknown. Unknown arises
/// from budget exhaustion, arithmetic overflow, or a Forall that had to be
/// approximated during satisfiability checking; the safety checker treats
/// Unknown as "not proved", which is sound.
///
/// The prover caches query results keyed by structural formula identity
/// plus the exact resource budgets the query ran under — the caching
/// enhancement sketched in Section 5.2.3 of the paper ("represent
/// formulas in a canonical form and use previous results whenever
/// possible"). The cache (see ProverCache.h) is bounded, and can be
/// shared between provers: the parallel verification engine gives every
/// worker its own Prover over one shared cache, which is sound because
/// outcomes are pure functions of formula structure and budget.
///
//===----------------------------------------------------------------------===//

#ifndef MCSAFE_CONSTRAINTS_PROVER_H
#define MCSAFE_CONSTRAINTS_PROVER_H

#include "constraints/Formula.h"
#include "constraints/Normalize.h"
#include "constraints/OmegaTest.h"
#include "constraints/PreSolve.h"
#include "constraints/ProverCache.h"
#include "constraints/Slice.h"

#include <cstdint>
#include <memory>
#include <unordered_set>
#include <vector>

namespace mcsafe {

/// Verdict of a validity query.
enum class ProverResult : uint8_t {
  Proved,    ///< The formula is valid.
  NotProved, ///< A countermodel exists (the formula is not valid).
  Unknown,   ///< Resources exhausted or approximation interfered.
};

/// One satisfiability query as the prover answered it: the formula, the
/// exact budget it ran under, and the outcome. A check records these as
/// its certificate witnesses (checker/CertStore.h); re-verification
/// re-discharges the Unsat ones — the queries a Safe verdict rests on —
/// through a fresh prover instead of re-running invariant synthesis.
struct QueryRecord {
  FormulaRef F;
  QueryBudget Budget;
  SatOutcome Outcome;
};

/// Validity / satisfiability oracle over formulas.
class Prover {
public:
  struct Options {
    OmegaTest::Options Omega;
    size_t DnfMaxDisjuncts = 1024;
    size_t DnfMaxAtoms = 512;
    bool EnableCache = true;
    /// Capacity of a privately-owned cache (ignored when a shared cache
    /// is supplied).
    size_t CacheMaxEntries = size_t(1) << 18;
    /// Optional per-check governor (null = unlimited). Propagated to the
    /// Omega test unless Omega.Governor is already set.
    support::ResourceGovernor *Governor = nullptr;
    /// Whether queries charge the governor's prover-step budget. The
    /// sequential verification path charges (making step exhaustion a
    /// deterministic function of the inputs); speculative prefetch
    /// workers only poll, so their scheduling cannot perturb the charge
    /// sequence.
    bool ChargeGovernorSteps = true;
    /// Whether interval/difference-bound pre-solvers run in front of the
    /// Omega test (see PreSolve.h). Part of the cache key: tiered and
    /// untiered provers sharing one cache never exchange entries.
    bool EnableTiers = true;
    /// Whether the congruence tier runs (disabled together with the
    /// known-bits domain by --no-knownbits). Also part of the cache key,
    /// via the three-valued SolverTiers budget field.
    bool EnableCongruence = true;
    /// Whether satisfiability queries are sliced: DNF disjuncts dedup by
    /// interned id, an equality pre-pass eliminates unit-pivot variables,
    /// and the residue decomposes into variable-disjoint connected
    /// components solved (and memoized) independently — see Slice.h.
    /// Part of the cache key via QueryBudget::SolverSlicing: sliced and
    /// unsliced provers sharing one cache never exchange entries.
    bool EnableSlicing = true;
  };

  struct Stats {
    uint64_t ValidityQueries = 0;
    uint64_t SatQueries = 0;
    uint64_t CacheHits = 0;
    /// Evictions of a privately-owned cache. Always 0 when the cache is
    /// shared: eviction is a property of the cache, not of any one
    /// sharer, so batch drivers read it once from ProverCache::stats()
    /// instead of summing it per worker.
    uint64_t CacheEvictions = 0;
    /// Sat computations that ended Unknown because a resource budget ran
    /// out (DNF disjunct/atom limits, Omega step or modulus limits).
    uint64_t BudgetExhaustions = 0;
    /// Per-tier disjunct outcomes, copied from TieredSolver::TierStats
    /// (see PreSolve.h): how many disjunct queries each solving tier
    /// answered (hits) or declined/failed (misses).
    TieredSolver::TierStats Tiers;
    /// Slicing-layer counters, copied from SliceSolver (see Slice.h):
    /// components formed, per-component memo hits, Omega runs avoided,
    /// variables eliminated by the equality pre-pass.
    SliceStats Slice;
  };

  Prover() : Prover(Options()) {}
  explicit Prover(Options Opts) : Prover(Opts, nullptr) {}
  /// A prover over a shared result cache. All provers sharing one cache
  /// may use different budgets — entries are budget-keyed.
  Prover(Options Opts, std::shared_ptr<ProverCache> SharedCache);

  /// Is the conjunction-closure of \p F satisfiable (free variables
  /// existential)?
  SatResult checkSat(const FormulaRef &F);

  /// Is \p F valid (free variables universal)?
  ProverResult checkValid(const FormulaRef &F);

  /// Does \p P imply \p Q?
  ProverResult checkImplies(const FormulaRef &P, const FormulaRef &Q) {
    return checkValid(Formula::implies(P, Q));
  }

  Stats stats() const;
  const OmegaTest::Stats &omegaStats() const { return Solver.omegaStats(); }
  const TieredSolver::TierStats &tierStats() const {
    return Solver.tierStats();
  }
  void resetStats() {
    Counters = Stats();
    Solver.resetStats();
    Slicer.resetStats();
  }
  /// Clears the attached cache (the shared one, if sharing).
  void clearCache() {
    if (Cache)
      Cache->clear();
  }

  /// Starts (or stops, with null) appending every answered sat query to
  /// \p T, deduplicated by formula identity. Outcomes are recorded for
  /// cache hits and fresh computations alike, so the transcript is the
  /// same whatever the cache was warmed with.
  void setTranscript(std::vector<QueryRecord> *T) {
    Transcript = T;
    TranscriptSeen.clear();
  }

  const Options &options() const { return Opts; }
  /// The attached cache; null when caching is disabled. Hand this to
  /// another Prover to share results.
  std::shared_ptr<ProverCache> cacheHandle() const { return Cache; }
  /// The budgets queries of this prover run under (the cache key part).
  QueryBudget budget() const;

private:
  SatOutcome checkSatInternal(const FormulaRef &F);
  void recordQuery(const FormulaRef &F, const QueryBudget &B,
                   const SatOutcome &Outcome);

  Options Opts;
  TieredSolver Solver;
  SliceSolver Slicer;
  Stats Counters;
  std::shared_ptr<ProverCache> Cache;
  /// True when this prover created Cache itself (nobody else shares it).
  bool OwnsCache = false;
  /// Certificate witness sink; null when not recording.
  std::vector<QueryRecord> *Transcript = nullptr;
  /// Formula ids already recorded (one witness per distinct query).
  std::unordered_set<uint32_t> TranscriptSeen;
};

} // namespace mcsafe

#endif // MCSAFE_CONSTRAINTS_PROVER_H
