//===- ProverCache.cpp ----------------------------------------------------===//

#include "constraints/ProverCache.h"

#include <algorithm>

using namespace mcsafe;

namespace {

/// 64-bit mix (splitmix64 finalizer) for combining hashes.
size_t mix(size_t H) {
  uint64_t X = H;
  X ^= X >> 30;
  X *= 0xbf58476d1ce4e5b9ULL;
  X ^= X >> 27;
  X *= 0x94d049bb133111ebULL;
  X ^= X >> 31;
  return static_cast<size_t>(X);
}

size_t combine(size_t A, size_t B) {
  return mix(A + 0x9e3779b97f4a7c15ULL + (B << 6) + (B >> 2));
}

} // namespace

size_t QueryBudget::hash() const {
  size_t H = mix(DnfMaxDisjuncts);
  H = combine(H, DnfMaxAtoms);
  H = combine(H, OmegaMaxSteps);
  H = combine(H, static_cast<size_t>(OmegaMaxNdivModulus));
  H = combine(H, SolverTiers);
  return H;
}

size_t ProverCache::keyFor(const FormulaRef &F, const QueryBudget &B) {
  // Hash-consing makes the interner id a complete witness of formula
  // structure, so the key derives from it directly; no tree walk.
  return combine(mix(F->id()), B.hash());
}

ProverCache::ProverCache(const Config &C) {
  unsigned ShardCount = std::max(1u, C.Shards);
  // Per-shard hot capacity; hot + cold together stay within MaxEntries.
  PerShardCap = std::max<size_t>(1, C.MaxEntries / (2 * ShardCount));
  Shards.reserve(ShardCount);
  for (unsigned I = 0; I < ShardCount; ++I)
    Shards.push_back(std::make_unique<Shard>());
}

ProverCache::Shard &ProverCache::shardFor(size_t Key) {
  return *Shards[mix(Key) % Shards.size()];
}

ProverCache::Entry *ProverCache::findIn(Table &T, size_t Key,
                                        const FormulaRef &F,
                                        const QueryBudget &B) {
  auto It = T.find(Key);
  if (It == T.end())
    return nullptr;
  for (Entry &E : It->second)
    if (E.Budget == B && Formula::equal(E.Key, F))
      return &E;
  return nullptr;
}

void ProverCache::maybeFlipLocked(Shard &S) {
  if (S.HotEntries < PerShardCap)
    return;
  S.Evictions += S.ColdEntries;
  S.Cold = std::move(S.Hot);
  S.ColdEntries = S.HotEntries;
  S.Hot = Table();
  S.HotEntries = 0;
}

std::optional<SatOutcome> ProverCache::lookup(const FormulaRef &F,
                                              const QueryBudget &B) {
  return lookupHashed(keyFor(F, B), F, B);
}

std::optional<SatOutcome> ProverCache::lookupHashed(size_t Key,
                                                    const FormulaRef &F,
                                                    const QueryBudget &B) {
  Shard &S = shardFor(Key);
  std::lock_guard<std::mutex> L(S.M);
  if (const Entry *E = findIn(S.Hot, Key, F, B)) {
    ++S.Hits;
    return E->Outcome;
  }
  if (Entry *E = findIn(S.Cold, Key, F, B)) {
    ++S.Hits;
    // Promote into the hot generation so it survives the next flip.
    SatOutcome O = E->Outcome;
    S.Hot[Key].push_back(std::move(*E));
    ++S.HotEntries;
    auto It = S.Cold.find(Key);
    It->second.erase(It->second.begin() +
                     (E - It->second.data()));
    if (It->second.empty())
      S.Cold.erase(It);
    --S.ColdEntries;
    maybeFlipLocked(S);
    return O;
  }
  ++S.Misses;
  return std::nullopt;
}

void ProverCache::insert(const FormulaRef &F, const QueryBudget &B,
                         SatOutcome O) {
  insertHashed(keyFor(F, B), F, B, O);
}

void ProverCache::insertHashed(size_t Key, const FormulaRef &F,
                               const QueryBudget &B, SatOutcome O) {
  Shard &S = shardFor(Key);
  std::lock_guard<std::mutex> L(S.M);
  // Concurrent workers may race to compute the same query; keep the
  // first result (outcomes are pure, so they agree).
  if (findIn(S.Hot, Key, F, B) || findIn(S.Cold, Key, F, B))
    return;
  S.Hot[Key].push_back(Entry{F, B, O});
  ++S.HotEntries;
  ++S.Insertions;
  maybeFlipLocked(S);
}

void ProverCache::clear() {
  for (auto &S : Shards) {
    std::lock_guard<std::mutex> L(S->M);
    S->Hot.clear();
    S->Cold.clear();
    S->HotEntries = S->ColdEntries = 0;
  }
}

ProverCache::Stats ProverCache::stats() const {
  Stats Total;
  for (const auto &S : Shards) {
    std::lock_guard<std::mutex> L(S->M);
    Total.Hits += S->Hits;
    Total.Misses += S->Misses;
    Total.Insertions += S->Insertions;
    Total.Evictions += S->Evictions;
    Total.Entries += S->HotEntries + S->ColdEntries;
  }
  return Total;
}
