//===- ProverCache.cpp ----------------------------------------------------===//

#include "constraints/ProverCache.h"

#include "support/Digest.h"

#include <algorithm>

using namespace mcsafe;
using support::combine64;
using support::mix64;

uint64_t QueryBudget::hash() const {
  uint64_t H = mix64(DnfMaxDisjuncts);
  H = combine64(H, DnfMaxAtoms);
  H = combine64(H, OmegaMaxSteps);
  H = combine64(H, support::signedBits(OmegaMaxNdivModulus));
  H = combine64(H, SolverTiers);
  H = combine64(H, SolverSlicing);
  return H;
}

uint64_t ProverCache::keyFor(const FormulaRef &F, const QueryBudget &B) {
  // Hash-consing makes the interner id a complete witness of formula
  // structure, so the key derives from it directly; no tree walk.
  return combine64(mix64(F->id()), B.hash());
}

ProverCache::ProverCache(const Config &C) {
  unsigned ShardCount = std::max(1u, C.Shards);
  // Per-shard hot capacity; hot + cold together stay within MaxEntries.
  PerShardCap = std::max<size_t>(1, C.MaxEntries / (2 * ShardCount));
  Shards.reserve(ShardCount);
  for (unsigned I = 0; I < ShardCount; ++I)
    Shards.push_back(std::make_unique<Shard>());
}

ProverCache::Shard &ProverCache::shardFor(uint64_t Key) {
  return *Shards[mix64(Key) % Shards.size()];
}

ProverCache::Entry *ProverCache::findIn(Table &T, uint64_t Key,
                                        const FormulaRef &F,
                                        const QueryBudget &B) {
  auto It = T.find(Key);
  if (It == T.end())
    return nullptr;
  for (Entry &E : It->second)
    if (E.Budget == B && Formula::equal(E.Key, F))
      return &E;
  return nullptr;
}

void ProverCache::maybeFlipLocked(Shard &S) {
  if (S.HotEntries < PerShardCap)
    return;
  S.Evictions += S.ColdEntries;
  S.Cold = std::move(S.Hot);
  S.ColdEntries = S.HotEntries;
  S.Hot = Table();
  S.HotEntries = 0;
}

std::optional<SatOutcome> ProverCache::lookup(const FormulaRef &F,
                                              const QueryBudget &B) {
  return lookupHashed(keyFor(F, B), F, B);
}

std::optional<SatOutcome> ProverCache::lookupHashed(uint64_t Key,
                                                    const FormulaRef &F,
                                                    const QueryBudget &B) {
  const bool Component = B.SolverSlicing == QueryBudget::SlicingComponent;
  Shard &S = shardFor(Key);
  std::lock_guard<std::mutex> L(S.M);
  if (const Entry *E = findIn(S.Hot, Key, F, B)) {
    ++S.Hits;
    ++(Component ? S.ComponentHits : S.QueryHits);
    return E->Outcome;
  }
  if (Entry *E = findIn(S.Cold, Key, F, B)) {
    ++S.Hits;
    ++(Component ? S.ComponentHits : S.QueryHits);
    // Promote into the hot generation so it survives the next flip.
    SatOutcome O = E->Outcome;
    S.Hot[Key].push_back(std::move(*E));
    ++S.HotEntries;
    auto It = S.Cold.find(Key);
    It->second.erase(It->second.begin() +
                     (E - It->second.data()));
    if (It->second.empty())
      S.Cold.erase(It);
    --S.ColdEntries;
    maybeFlipLocked(S);
    return O;
  }
  ++S.Misses;
  ++(Component ? S.ComponentMisses : S.QueryMisses);
  return std::nullopt;
}

void ProverCache::insert(const FormulaRef &F, const QueryBudget &B,
                         SatOutcome O) {
  insertHashed(keyFor(F, B), F, B, O);
}

void ProverCache::insertHashed(uint64_t Key, const FormulaRef &F,
                               const QueryBudget &B, SatOutcome O) {
  Shard &S = shardFor(Key);
  std::lock_guard<std::mutex> L(S.M);
  // Concurrent workers may race to compute the same query; keep the
  // first result (outcomes are pure, so they agree).
  if (findIn(S.Hot, Key, F, B) || findIn(S.Cold, Key, F, B))
    return;
  S.Hot[Key].push_back(Entry{F, B, O});
  ++S.HotEntries;
  ++S.Insertions;
  maybeFlipLocked(S);
}

void ProverCache::clear() {
  for (auto &S : Shards) {
    std::lock_guard<std::mutex> L(S->M);
    S->Hot.clear();
    S->Cold.clear();
    S->HotEntries = S->ColdEntries = 0;
  }
}

ProverCache::Stats ProverCache::stats() const {
  Stats Total;
  for (const auto &S : Shards) {
    std::lock_guard<std::mutex> L(S->M);
    Total.Hits += S->Hits;
    Total.Misses += S->Misses;
    Total.Insertions += S->Insertions;
    Total.Evictions += S->Evictions;
    Total.Entries += S->HotEntries + S->ColdEntries;
    Total.QueryHits += S->QueryHits;
    Total.QueryMisses += S->QueryMisses;
    Total.ComponentHits += S->ComponentHits;
    Total.ComponentMisses += S->ComponentMisses;
  }
  return Total;
}
