//===- ProverCache.h - Shared formula-result cache --------------*- C++ -*-===//
//
// Part of mcsafe, a reproduction of "Safety Checking of Machine Code"
// (Xu, Miller, Reps; PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The satisfiability-result cache behind the prover — the Section 5.2.3
/// caching enhancement, grown into a shared, bounded, thread-safe memo
/// table so that the parallel verification engine's per-worker provers
/// can pool their results.
///
/// Entries are keyed by the formula's interned node id (hash-consing makes
/// the id a complete witness of structure), verified on key collision with
/// Formula::equal — an O(1) pointer compare — and additionally carry the
/// exact resource budgets the query ran under: an Unknown produced by
/// budget exhaustion under a small budget must never answer a query run
/// under a larger one.
///
/// Concurrency: the table is split into mutex-striped shards selected by
/// key hash. Capacity is bounded with segmented-LRU ("generational")
/// eviction: each shard keeps a hot and a cold generation; lookups
/// promote cold hits, and when the hot generation fills up the cold one
/// is discarded wholesale. Recently-used entries therefore survive at
/// least one generation flip, evictions are O(1), and the total entry
/// count never exceeds the configured maximum.
///
//===----------------------------------------------------------------------===//

#ifndef MCSAFE_CONSTRAINTS_PROVERCACHE_H
#define MCSAFE_CONSTRAINTS_PROVERCACHE_H

#include "constraints/Formula.h"
#include "constraints/OmegaTest.h"

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

namespace mcsafe {

/// Outcome of one satisfiability query, as cached and returned by the
/// prover's internals. The ApproximatedForall flag must survive caching:
/// a Sat outcome recorded under a Forall approximation is a possibly
/// spurious model and can only ever justify "Unknown", never "NotProved".
struct SatOutcome {
  SatResult Result = SatResult::Unknown;
  bool ApproximatedForall = false;
  /// Diagnostic only (never serialized into certificates): the fresh
  /// computation of this outcome consulted the Omega tier. The slicing
  /// layer uses it to count how many Omega runs its component memo saved
  /// (prover/slice/omega_avoided).
  bool UsedOmega = false;
};

/// The resource budgets a query was answered under. Cache hits require an
/// exact match: results under different budgets are incomparable (a
/// larger budget can turn Unknown into a definite answer).
struct QueryBudget {
  uint64_t DnfMaxDisjuncts = 0;
  uint64_t DnfMaxAtoms = 0;
  uint64_t OmegaMaxSteps = 0;
  int64_t OmegaMaxNdivModulus = 0;
  /// Solver configuration (1 = pre-solver tiers enabled, 0 = Omega only).
  /// Tiers can answer queries the Omega budgets would give up on, so a
  /// tiered result is not reproducible by an untiered prover — the
  /// configurations must not exchange cache entries.
  uint64_t SolverTiers = 0;
  /// Slicing configuration (see Slice.h), same cache-key separation
  /// principle: a sliced prover solves each connected component under the
  /// full Omega budget, so it can answer queries an unsliced prover gives
  /// up on — sliced (SlicingOn) and unsliced (SlicingOff) whole-query
  /// entries must never be exchanged, or a warm hit could change a
  /// verdict. SlicingComponent tags the per-component memo entries, which
  /// are keyed by a component sub-formula and must not collide with a
  /// whole-query entry for the structurally identical formula.
  enum : uint64_t { SlicingOff = 0, SlicingOn = 1, SlicingComponent = 2 };
  uint64_t SolverSlicing = SlicingOff;

  friend bool operator==(const QueryBudget &A, const QueryBudget &B) {
    return A.DnfMaxDisjuncts == B.DnfMaxDisjuncts &&
           A.DnfMaxAtoms == B.DnfMaxAtoms &&
           A.OmegaMaxSteps == B.OmegaMaxSteps &&
           A.OmegaMaxNdivModulus == B.OmegaMaxNdivModulus &&
           A.SolverTiers == B.SolverTiers &&
           A.SolverSlicing == B.SolverSlicing;
  }

  /// Stable 64-bit hash of the budget tuple (support/Digest.h mixer).
  uint64_t hash() const;
};

/// A bounded, sharded, thread-safe formula-result cache, shareable
/// between provers (results are pure functions of formula structure and
/// budget, so sharing across workers — and across programs — is sound).
class ProverCache {
public:
  struct Config {
    size_t MaxEntries = size_t(1) << 20;
    unsigned Shards = 64;
  };

  struct Stats {
    uint64_t Hits = 0;
    uint64_t Misses = 0;
    uint64_t Insertions = 0;
    uint64_t Evictions = 0;
    uint64_t Entries = 0; ///< Current resident entries.
    /// The hit/miss split by entry class — whole-query entries versus the
    /// slicing layer's per-component entries (discriminated by the
    /// budget's SolverSlicing tag), so component hit rates are observable
    /// per class instead of only as the blended aggregate above.
    /// Hits == QueryHits + ComponentHits, same for misses.
    uint64_t QueryHits = 0;
    uint64_t QueryMisses = 0;
    uint64_t ComponentHits = 0;
    uint64_t ComponentMisses = 0;
  };

  ProverCache() : ProverCache(Config()) {}
  explicit ProverCache(const Config &C);

  /// Looks up the outcome cached for \p F under budget \p B.
  std::optional<SatOutcome> lookup(const FormulaRef &F,
                                   const QueryBudget &B);
  /// Records the outcome of \p F under budget \p B.
  void insert(const FormulaRef &F, const QueryBudget &B, SatOutcome O);

  /// Same, with a caller-computed key hash. Exposed so the prover can
  /// hash once per query, and so tests can force hash collisions onto
  /// the Formula::equal verification path.
  std::optional<SatOutcome> lookupHashed(uint64_t Key, const FormulaRef &F,
                                         const QueryBudget &B);
  void insertHashed(uint64_t Key, const FormulaRef &F, const QueryBudget &B,
                    SatOutcome O);

  /// Combines a formula hash and a budget into the cache key. Stable
  /// across platforms (the interner id is process-local, so keys are
  /// process-local too — only the mixing algorithm is portable).
  static uint64_t keyFor(const FormulaRef &F, const QueryBudget &B);

  void clear();
  Stats stats() const; ///< Aggregated over all shards.

private:
  struct Entry {
    FormulaRef Key;
    QueryBudget Budget;
    SatOutcome Outcome;
  };
  /// Hash-collision chain; entries are discriminated by Formula::equal
  /// plus exact budget comparison.
  using Bucket = std::vector<Entry>;
  using Table = std::unordered_map<uint64_t, Bucket>;

  struct Shard {
    mutable std::mutex M;
    Table Hot, Cold;        // Segmented-LRU generations.
    size_t HotEntries = 0;  // Entry counts (buckets hold >= 1 entry).
    size_t ColdEntries = 0;
    uint64_t Hits = 0, Misses = 0, Insertions = 0, Evictions = 0;
    // Hit/miss split by entry class (component vs whole-query).
    uint64_t QueryHits = 0, QueryMisses = 0;
    uint64_t ComponentHits = 0, ComponentMisses = 0;
  };

  Shard &shardFor(uint64_t Key);
  /// Finds \p F under \p B in \p T; null when absent.
  static Entry *findIn(Table &T, uint64_t Key, const FormulaRef &F,
                       const QueryBudget &B);
  /// Flips generations when the hot one is full. Caller holds S.M.
  void maybeFlipLocked(Shard &S);

  size_t PerShardCap; // Hot-generation capacity per shard.
  std::vector<std::unique_ptr<Shard>> Shards;
};

} // namespace mcsafe

#endif // MCSAFE_CONSTRAINTS_PROVERCACHE_H
