//===- Serialize.cpp ------------------------------------------------------===//

#include "constraints/Serialize.h"

#include "support/Digest.h"

#include <algorithm>
#include <cassert>

using namespace mcsafe;

//===----------------------------------------------------------------------===//
// FormulaPoolWriter
//===----------------------------------------------------------------------===//

uint32_t FormulaPoolWriter::add(const FormulaRef &F) {
  assert(F && "null formula");
  auto Known = NodeIx.find(F->id());
  if (Known != NodeIx.end())
    return Known->second;

  // Iterative postorder walk so certificate-sized formulas cannot overflow
  // the stack; every node lands in the pool after all of its children,
  // which is exactly the forward order the loader re-interns in.
  struct Item {
    FormulaRef N;
    size_t NextChild;
  };
  std::vector<Item> Stack;
  Stack.push_back({F, 0});
  while (!Stack.empty()) {
    Item &Top = Stack.back();
    if (NodeIx.count(Top.N->id())) {
      Stack.pop_back();
      continue;
    }
    const std::vector<FormulaRef> &Children = Top.N->children();
    if (Top.NextChild < Children.size()) {
      const FormulaRef &C = Children[Top.NextChild++];
      if (!NodeIx.count(C->id()))
        Stack.push_back({C, 0});
      continue;
    }
    NodeIx.emplace(Top.N->id(), static_cast<uint32_t>(Nodes.size()));
    Nodes.push_back(Top.N);
    Stack.pop_back();
  }
  return NodeIx.at(F->id());
}

uint32_t FormulaPoolWriter::varIndex(VarId V) {
  auto [It, Fresh] = VarIx.try_emplace(V.index(),
                                       static_cast<uint32_t>(Vars.size()));
  if (Fresh)
    Vars.push_back(V);
  return It->second;
}

void FormulaPoolWriter::writeTo(ByteWriter &W) {
  // Var indices are assigned while emitting nodes (in name-sorted term
  // order), but the name table must precede the node table in the byte
  // stream — so emit nodes into a scratch buffer first.
  ByteWriter NodeW;
  for (const FormulaRef &F : Nodes) {
    NodeW.u8(static_cast<uint8_t>(F->kind()));
    switch (F->kind()) {
    case FormulaKind::True:
    case FormulaKind::False:
      break;
    case FormulaKind::Atom: {
      const Constraint &C = F->constraint();
      NodeW.u8(static_cast<uint8_t>(C.kind()));
      NodeW.i64(C.modulus());
      const LinearExpr &E = C.expr();
      NodeW.u8(E.isPoisoned() ? 1 : 0);
      NodeW.i64(E.constantValue());
      // Name order, not VarId order: ids are process-local, names are the
      // portable identity (see the header comment on writeTo).
      std::vector<LinearExpr::Term> Terms(E.terms().begin(),
                                          E.terms().end());
      std::sort(Terms.begin(), Terms.end(),
                [](const LinearExpr::Term &A, const LinearExpr::Term &B) {
                  const std::string &NA = varName(A.first);
                  const std::string &NB = varName(B.first);
                  if (NA != NB)
                    return NA < NB;
                  return A.first < B.first;
                });
      NodeW.u32(static_cast<uint32_t>(Terms.size()));
      for (const auto &[V, Coeff] : Terms) {
        NodeW.u32(varIndex(V));
        NodeW.i64(Coeff);
      }
      break;
    }
    case FormulaKind::And:
    case FormulaKind::Or: {
      const std::vector<FormulaRef> &Children = F->children();
      NodeW.u32(static_cast<uint32_t>(Children.size()));
      for (const FormulaRef &C : Children)
        NodeW.u32(NodeIx.at(C->id()));
      break;
    }
    case FormulaKind::Exists:
    case FormulaKind::Forall:
      NodeW.u32(varIndex(F->boundVar()));
      NodeW.u32(NodeIx.at(F->children().front()->id()));
      break;
    }
  }

  W.u32(static_cast<uint32_t>(Vars.size()));
  for (VarId V : Vars)
    W.str(varName(V));
  W.u32(static_cast<uint32_t>(Nodes.size()));
  W.raw(NodeW.bytes());
}

//===----------------------------------------------------------------------===//
// loadFormulaPool
//===----------------------------------------------------------------------===//

std::optional<std::vector<FormulaRef>> mcsafe::loadFormulaPool(ByteReader &R) {
  uint32_t VarCount = R.u32();
  // Every var name costs at least its 4-byte length prefix; a count that
  // could not possibly fit is corrupt, and bounding it here keeps a
  // malicious count from reserving gigabytes before the reads fail.
  if (!R.ok() || VarCount > R.remaining() / 4)
    return std::nullopt;
  std::vector<VarId> VarTab;
  VarTab.reserve(VarCount);
  for (uint32_t I = 0; I < VarCount; ++I) {
    std::string_view Name = R.str();
    if (!R.ok() || Name.empty())
      return std::nullopt;
    VarTab.push_back(varId(Name));
  }

  uint32_t NodeCount = R.u32();
  if (!R.ok() || NodeCount > R.remaining())
    return std::nullopt;
  std::vector<FormulaRef> Pool;
  Pool.reserve(NodeCount);
  for (uint32_t I = 0; I < NodeCount; ++I) {
    uint8_t RawKind = R.u8();
    if (!R.ok() || RawKind > static_cast<uint8_t>(FormulaKind::Forall))
      return std::nullopt;
    switch (static_cast<FormulaKind>(RawKind)) {
    case FormulaKind::True:
      Pool.push_back(Formula::mkTrue());
      break;
    case FormulaKind::False:
      Pool.push_back(Formula::mkFalse());
      break;
    case FormulaKind::Atom: {
      uint8_t RawCKind = R.u8();
      int64_t Modulus = R.i64();
      uint8_t RawPoisoned = R.u8();
      int64_t Constant = R.i64();
      uint32_t TermCount = R.u32();
      if (!R.ok() || RawCKind > static_cast<uint8_t>(ConstraintKind::NDIV) ||
          RawPoisoned > 1 || TermCount > R.remaining() / 12)
        return std::nullopt;
      std::vector<LinearExpr::Term> Terms;
      Terms.reserve(TermCount);
      for (uint32_t T = 0; T < TermCount; ++T) {
        uint32_t VarIx = R.u32();
        int64_t Coeff = R.i64();
        if (!R.ok() || VarIx >= VarTab.size())
          return std::nullopt;
        Terms.emplace_back(VarTab[VarIx], Coeff);
      }
      // Stored in name order; this process's VarIds may order differently,
      // so restore the LinearExpr invariant before reconstructing. A
      // duplicate variable survives the sort and is rejected by
      // fromSorted's strict-ascending check.
      std::sort(Terms.begin(), Terms.end(),
                [](const LinearExpr::Term &A, const LinearExpr::Term &B) {
                  return A.first < B.first;
                });
      std::optional<LinearExpr> E =
          LinearExpr::fromSorted(Terms, Constant, RawPoisoned != 0);
      if (!E)
        return std::nullopt;
      std::optional<Constraint> C = Constraint::fromSerialized(
          static_cast<ConstraintKind>(RawCKind), std::move(*E), Modulus);
      if (!C)
        return std::nullopt;
      Pool.push_back(Formula::atom(std::move(*C)));
      break;
    }
    case FormulaKind::And:
    case FormulaKind::Or: {
      uint32_t ChildCount = R.u32();
      if (!R.ok() || ChildCount > R.remaining() / 4)
        return std::nullopt;
      std::vector<FormulaRef> Children;
      Children.reserve(ChildCount);
      for (uint32_t C = 0; C < ChildCount; ++C) {
        uint32_t ChildIx = R.u32();
        // Child-before-parent order: references only reach backward.
        if (!R.ok() || ChildIx >= I)
          return std::nullopt;
        Children.push_back(Pool[ChildIx]);
      }
      Pool.push_back(static_cast<FormulaKind>(RawKind) == FormulaKind::And
                         ? Formula::conj(std::move(Children))
                         : Formula::disj(std::move(Children)));
      break;
    }
    case FormulaKind::Exists:
    case FormulaKind::Forall: {
      uint32_t VarIx = R.u32();
      uint32_t ChildIx = R.u32();
      if (!R.ok() || VarIx >= VarTab.size() || ChildIx >= I)
        return std::nullopt;
      Pool.push_back(static_cast<FormulaKind>(RawKind) == FormulaKind::Exists
                         ? Formula::exists(VarTab[VarIx], Pool[ChildIx])
                         : Formula::forall(VarTab[VarIx], Pool[ChildIx]));
      break;
    }
    }
  }
  return Pool;
}

//===----------------------------------------------------------------------===//
// stableFormulaDigest
//===----------------------------------------------------------------------===//

uint64_t mcsafe::stableFormulaDigest(const FormulaRef &F) {
  FormulaPoolWriter Pool;
  Pool.add(F);
  ByteWriter W;
  Pool.writeTo(W);
  return support::digestBytes(W.bytes());
}
