//===- Serialize.h - Formula pool serialization -----------------*- C++ -*-===//
//
// Part of mcsafe, a reproduction of "Safety Checking of Machine Code"
// (Xu, Miller, Reps; PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Binary serialization of interned formula DAGs, the foundation of the
/// persistent certificate store (checker/CertStore.h).
///
/// A FormulaPoolWriter collects any number of formulas into one pool:
/// every distinct node gets a dense pool-local index, assigned in
/// topological child-before-parent order, and variables are written by
/// *name* (a string table), never by VarId — ids are process-local, names
/// are the portable identity. Loading re-interns the nodes in one forward
/// pass through the ordinary smart constructors, so loaded formulas are
/// pointer-equal to any structurally equal formula already interned in
/// the process, and idempotent under re-serialization.
///
/// The byte format is little-endian, fixed-width, and versioned by the
/// certificate container around it. Readers never trust the input:
/// truncation, out-of-range indices, or non-canonical atom data fail the
/// load (ByteReader::ok() / loadFormulaPool returning nullopt) rather
/// than crashing or fabricating formulas.
///
//===----------------------------------------------------------------------===//

#ifndef MCSAFE_CONSTRAINTS_SERIALIZE_H
#define MCSAFE_CONSTRAINTS_SERIALIZE_H

#include "constraints/Formula.h"

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace mcsafe {

/// Appends little-endian primitives to a byte buffer.
class ByteWriter {
public:
  void u8(uint8_t V) { Buf.push_back(static_cast<char>(V)); }
  void u32(uint32_t V) {
    for (int I = 0; I < 4; ++I)
      Buf.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
  }
  void u64(uint64_t V) {
    for (int I = 0; I < 8; ++I)
      Buf.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
  }
  void i64(int64_t V) { u64(static_cast<uint64_t>(V)); }
  /// Length-prefixed byte string.
  void str(std::string_view S) {
    u32(static_cast<uint32_t>(S.size()));
    Buf.append(S.data(), S.size());
  }
  /// Raw bytes, no length prefix (splicing a pre-built sub-buffer).
  void raw(std::string_view S) { Buf.append(S.data(), S.size()); }

  const std::string &bytes() const { return Buf; }
  std::string take() { return std::move(Buf); }

private:
  std::string Buf;
};

/// Reads little-endian primitives back out of a byte buffer. Any
/// overrun latches the fail flag and makes every later read return a
/// zero value — callers check ok() once at the end (or wherever a value
/// gates further reads).
class ByteReader {
public:
  explicit ByteReader(std::string_view Data) : Data(Data) {}

  uint8_t u8() {
    if (!need(1))
      return 0;
    return static_cast<uint8_t>(Data[Pos++]);
  }
  uint32_t u32() {
    if (!need(4))
      return 0;
    uint32_t V = 0;
    for (int I = 0; I < 4; ++I)
      V |= static_cast<uint32_t>(static_cast<uint8_t>(Data[Pos++])) << (8 * I);
    return V;
  }
  uint64_t u64() {
    if (!need(8))
      return 0;
    uint64_t V = 0;
    for (int I = 0; I < 8; ++I)
      V |= static_cast<uint64_t>(static_cast<uint8_t>(Data[Pos++])) << (8 * I);
    return V;
  }
  int64_t i64() { return static_cast<int64_t>(u64()); }
  std::string_view str() {
    uint32_t N = u32();
    if (!need(N))
      return {};
    std::string_view S = Data.substr(Pos, N);
    Pos += N;
    return S;
  }

  bool ok() const { return !Failed; }
  /// Marks the stream failed (e.g. a semantic validation error).
  void fail() { Failed = true; }
  bool atEnd() const { return Pos == Data.size(); }
  size_t position() const { return Pos; }
  /// Bytes left; used to sanity-bound untrusted element counts before
  /// reserving memory for them.
  size_t remaining() const { return Failed ? 0 : Data.size() - Pos; }

private:
  bool need(size_t N) {
    if (Failed || Data.size() - Pos < N) {
      Failed = true;
      Pos = Data.size();
      return false;
    }
    return true;
  }

  std::string_view Data;
  size_t Pos = 0;
  bool Failed = false;
};

/// Collects formulas into a pool of dense node indices for serialization.
/// add() returns the pool index of the formula's root node; writeTo()
/// emits the variable-name table plus all nodes in child-before-parent
/// order.
class FormulaPoolWriter {
public:
  /// Registers \p F (and, recursively, every node under it) in the pool.
  /// Returns the root's pool index. Deduplicated: adding the same node
  /// twice returns the same index.
  uint32_t add(const FormulaRef &F);

  /// Emits the pool: a var-name string table, then the node table. Atom
  /// terms are written sorted by variable *name* (the loader re-sorts by
  /// its own VarIds), so the bytes depend only on names and structure —
  /// never on the order this process happened to intern variables. That
  /// is what makes stableFormulaDigest() process-independent.
  void writeTo(ByteWriter &W);

  size_t nodeCount() const { return Nodes.size(); }

private:
  uint32_t varIndex(VarId V);

  std::vector<FormulaRef> Nodes;                 ///< Pool order (topological).
  std::unordered_map<uint32_t, uint32_t> NodeIx; ///< Formula id -> pool index.
  std::vector<VarId> Vars;
  std::unordered_map<uint32_t, uint32_t> VarIx;  ///< VarId index -> table index.
};

/// Re-interns a serialized formula pool in one forward pass. Returns the
/// nodes in pool order (so stored root indices resolve by subscript), or
/// nullopt when the data is truncated or malformed in any way. Variables
/// are re-interned by name through varId() — run this under a
/// VarScopeSuspend when the caller must not perturb a check's namespace.
std::optional<std::vector<FormulaRef>> loadFormulaPool(ByteReader &R);

/// A platform- and process-independent structural digest of a formula:
/// the stable digest of its serialized pool form (variables by name).
/// This is the digest the golden tests pin; two formulas digest equal
/// iff they serialize identically.
uint64_t stableFormulaDigest(const FormulaRef &F);

} // namespace mcsafe

#endif // MCSAFE_CONSTRAINTS_SERIALIZE_H
