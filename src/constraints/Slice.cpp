//===- Slice.cpp ----------------------------------------------------------===//

#include "constraints/Slice.h"

#include "constraints/Formula.h"
#include "support/Governor.h"

#include <algorithm>
#include <cassert>

using namespace mcsafe;

//===----------------------------------------------------------------------===//
// Equality-substitution pre-pass
//===----------------------------------------------------------------------===//

std::optional<SatResult>
slice::eliminateEqualities(std::vector<Constraint> &Atoms,
                           uint64_t &Eliminated) {
  // Each round eliminates one variable and drops one atom, so the loop is
  // bounded by the atom count.
  for (;;) {
    // The pivot choice is deterministic: the first EQ atom (in conjunct
    // order) carrying a unit coefficient, and within it the first such
    // variable (terms are sorted by VarId). Determinism matters because
    // the reduced system feeds the per-component memo, whose entries must
    // be pure functions of the input conjunction.
    size_t PivotIdx = Atoms.size();
    VarId PivotVar;
    int64_t PivotCoeff = 0;
    for (size_t I = 0; I < Atoms.size() && PivotIdx == Atoms.size(); ++I) {
      const Constraint &C = Atoms[I];
      if (C.kind() != ConstraintKind::EQ || C.isPoisoned())
        continue;
      for (const LinearExpr::Term &T : C.expr().terms()) {
        // Only a unit pivot is exact: c*v + r == 0 solves to v = -r/c,
        // which is integer-valued for every model only when c = +-1.
        if (T.second == 1 || T.second == -1) {
          PivotIdx = I;
          PivotVar = T.first;
          PivotCoeff = T.second;
          break;
        }
      }
    }
    if (PivotIdx == Atoms.size())
      return std::nullopt;

    // c*v + r == 0 with c = +-1  =>  v = -c*r (1/c == c for units).
    const LinearExpr &E = Atoms[PivotIdx].expr();
    LinearExpr Rest =
        E - LinearExpr::variable(PivotVar).scaled(PivotCoeff);
    LinearExpr Replacement = Rest.scaled(-PivotCoeff);
    if (Replacement.isPoisoned())
      return std::nullopt;

    std::vector<Constraint> Next;
    Next.reserve(Atoms.size() - 1);
    bool Poisoned = false;
    for (size_t I = 0; I < Atoms.size(); ++I) {
      if (I == PivotIdx)
        continue;
      Constraint S = Atoms[I].substitute(PivotVar, Replacement);
      // A substitution that overflows would have to be solved as Unknown;
      // abandoning the whole pass (Atoms keeps its pre-pivot state) is
      // the conservative move — the unreduced system is equisatisfiable.
      if (S.isPoisoned()) {
        Poisoned = true;
        break;
      }
      if (std::optional<bool> Truth = S.constantTruth()) {
        // A now-constant atom decides: false refutes the conjunction the
        // pivot equation was part of, true drops out.
        if (!*Truth)
          return SatResult::Unsat;
        continue;
      }
      Next.push_back(std::move(S));
    }
    if (Poisoned)
      return std::nullopt;
    Atoms = std::move(Next);
    ++Eliminated;
  }
}

//===----------------------------------------------------------------------===//
// Connected components
//===----------------------------------------------------------------------===//

namespace {

/// Union-find with path halving over dense local indices.
uint32_t ufFind(std::vector<uint32_t> &Parent, uint32_t X) {
  while (Parent[X] != X) {
    Parent[X] = Parent[Parent[X]];
    X = Parent[X];
  }
  return X;
}

void ufUnite(std::vector<uint32_t> &Parent, uint32_t A, uint32_t B) {
  A = ufFind(Parent, A);
  B = ufFind(Parent, B);
  if (A != B)
    Parent[B] = A;
}

} // namespace

unsigned slice::partitionComponents(const std::vector<Constraint> &Atoms,
                                    std::vector<unsigned> &ComponentOf) {
  // Local variable index: sorted unique VarIds -> [0, N).
  std::vector<VarId> Vars;
  for (const Constraint &C : Atoms)
    C.collectVars(Vars);
  std::sort(Vars.begin(), Vars.end());
  Vars.erase(std::unique(Vars.begin(), Vars.end()), Vars.end());
  auto localIndex = [&](VarId V) -> uint32_t {
    return static_cast<uint32_t>(
        std::lower_bound(Vars.begin(), Vars.end(), V) - Vars.begin());
  };

  std::vector<uint32_t> Parent(Vars.size());
  for (uint32_t I = 0; I < Parent.size(); ++I)
    Parent[I] = I;

  std::vector<VarId> Scratch;
  for (const Constraint &C : Atoms) {
    Scratch.clear();
    C.collectVars(Scratch);
    for (size_t I = 1; I < Scratch.size(); ++I)
      ufUnite(Parent, localIndex(Scratch[0]), localIndex(Scratch[I]));
  }

  // Number components in order of their first atom, so the numbering (and
  // hence the solve order) is a pure function of the conjunction.
  ComponentOf.assign(Atoms.size(), 0);
  std::vector<unsigned> RootToComp(Vars.size() + 1, UINT32_MAX);
  unsigned NumComponents = 0;
  for (size_t I = 0; I < Atoms.size(); ++I) {
    Scratch.clear();
    Atoms[I].collectVars(Scratch);
    // Variable-free atoms each get a singleton component (the tier
    // stack's constant fold decides them); they never reach here from
    // the solver path, which filters constants first.
    uint32_t Root = Scratch.empty()
                        ? static_cast<uint32_t>(Vars.size())
                        : ufFind(Parent, localIndex(Scratch[0]));
    unsigned Comp;
    if (Root == Vars.size()) {
      Comp = NumComponents++;
    } else if (RootToComp[Root] != UINT32_MAX) {
      Comp = RootToComp[Root];
    } else {
      Comp = RootToComp[Root] = NumComponents++;
    }
    ComponentOf[I] = Comp;
  }
  return NumComponents;
}

//===----------------------------------------------------------------------===//
// The slicing solver
//===----------------------------------------------------------------------===//

SatResult SliceSolver::solve(const FormulaRef &DF,
                             const std::vector<Constraint> &Conjuncts,
                             const QueryBudget &B,
                             support::ResourceGovernor *Gov) {
  ++Counters.DisjunctQueries;

  // Whole-disjunct memo: a disjunct recurring across queries (negated
  // obligations share their context conjuncts) skips elimination,
  // partitioning, and every per-component lookup. Keyed by the canonical
  // conjunction the prover interned for dedup, under the enclosing
  // query's own SlicingOn budget — sound to share with whole-query
  // entries, because a whole query that *is* a canonical conjunction of
  // atoms (its DNF is itself) has exactly this disjunct's semantics.
  uint64_t DisjunctKey = 0;
  if (Cache) {
    DisjunctKey = ProverCache::keyFor(DF, B);
    if (std::optional<SatOutcome> Hit = Cache->lookupHashed(DisjunctKey, DF, B)) {
      ++Counters.CacheHits;
      if (Hit->UsedOmega)
        ++Counters.OmegaAvoided;
      return Hit->Result;
    }
    ++Counters.CacheMisses;
  }

  SatResult Result = solveUncached(Conjuncts, B, Gov);
  if (Cache && !(Gov && Gov->exhausted())) {
    SatOutcome Outcome;
    Outcome.Result = Result;
    // UsedOmega propagates up from the component level so a future hit
    // on this entry counts the Omega runs it actually saves.
    Outcome.UsedOmega = DisjunctUsedOmega;
    Cache->insertHashed(DisjunctKey, DF, B, Outcome);
  }
  return Result;
}

SatResult SliceSolver::solveUncached(const std::vector<Constraint> &Conjuncts,
                                     const QueryBudget &B,
                                     support::ResourceGovernor *Gov) {
  // Tracks whether any fresh solve below consulted the Omega tier; read
  // by solve() when it stores the whole-disjunct memo entry.
  DisjunctUsedOmega = false;

  // One scan classifies the conjunction. Poisoned atoms escape
  // decomposition entirely: the tiered solver routes such conjunctions to
  // Omega, which reports them as Unknown. They are rare, never worth a
  // special-cased component path. Constant atoms need filtering and EQ
  // atoms may admit elimination — both take the copying slow path below;
  // the common conjunction (all atoms variable-carrying inequalities)
  // partitions in place with no copy at all.
  bool NeedsRewrite = false;
  for (const Constraint &C : Conjuncts) {
    if (C.isPoisoned())
      return satisfiableTracked(Conjuncts);
    if (C.kind() == ConstraintKind::EQ || C.constantTruth())
      NeedsRewrite = true;
  }

  std::vector<Constraint> Work;
  const std::vector<Constraint> *Sys = &Conjuncts;
  if (NeedsRewrite) {
    Work.reserve(Conjuncts.size());
    for (const Constraint &C : Conjuncts) {
      if (std::optional<bool> Truth = C.constantTruth()) {
        if (!*Truth)
          return SatResult::Unsat;
        continue;
      }
      Work.push_back(C);
    }

    if (std::optional<SatResult> R =
            slice::eliminateEqualities(Work, Counters.EqEliminated))
      return *R;
    if (Work.empty())
      return SatResult::Sat;
    Sys = &Work;
  }

  std::vector<unsigned> ComponentOf;
  unsigned NumComponents = slice::partitionComponents(*Sys, ComponentOf);
  Counters.Components += NumComponents;
  if (NumComponents > 1)
    ++Counters.MultiComponent;

  // Single-component fast path: the whole-disjunct memo entry solve() is
  // about to write covers exactly this conjunction, so a component-level
  // entry (usually for the very same formula) would only double the
  // cache traffic. Solve it directly.
  if (NumComponents == 1)
    return satisfiableTracked(*Sys);

  // sat(conjunction) over disjoint variable sets = conjunction of the
  // per-component sats. Unsat anywhere refutes the whole query (no need
  // to solve the rest); Unknown anywhere, with no Unsat found, means a
  // component might still be unsatisfiable — the query degrades to
  // Unknown rather than claiming Sat.
  bool SawUnknown = false;
  std::vector<Constraint> Atoms;
  for (unsigned Comp = 0; Comp < NumComponents; ++Comp) {
    Atoms.clear();
    for (size_t I = 0; I < Sys->size(); ++I)
      if (ComponentOf[I] == Comp)
        Atoms.push_back((*Sys)[I]);
    SatResult R = solveComponent(Atoms, B, Gov);
    if (R == SatResult::Unsat)
      return SatResult::Unsat;
    if (R == SatResult::Unknown)
      SawUnknown = true;
  }
  return SawUnknown ? SatResult::Unknown : SatResult::Sat;
}

SatResult
SliceSolver::satisfiableTracked(const std::vector<Constraint> &Atoms) {
  const TieredSolver::TierStats &T = Solver.tierStats();
  uint64_t OmegaBefore = T.OmegaHits + T.OmegaMisses;
  SatResult R = Solver.isSatisfiable(Atoms);
  if (T.OmegaHits + T.OmegaMisses != OmegaBefore)
    DisjunctUsedOmega = true;
  return R;
}

SatResult SliceSolver::solveComponent(const std::vector<Constraint> &Atoms,
                                      const QueryBudget &B,
                                      support::ResourceGovernor *Gov) {
  if (!Cache)
    return satisfiableTracked(Atoms);

  // Canonical component formula: atoms sorted by interned id, so the memo
  // key — and the atom order the fresh solve below runs under — is a pure
  // function of the component's atom set. Two queries producing the same
  // component in different conjunct orders must compute (and cache) the
  // same outcome, or a warm hit could change a verdict.
  std::vector<FormulaRef> Refs;
  Refs.reserve(Atoms.size());
  for (const Constraint &C : Atoms)
    Refs.push_back(Formula::atom(C));
  std::sort(Refs.begin(), Refs.end(),
            [](const FormulaRef &A, const FormulaRef &B) {
              return A->id() < B->id();
            });
  FormulaRef F = Formula::conj(std::move(Refs));
  if (F->isTrue())
    return SatResult::Sat;
  if (F->isFalse())
    return SatResult::Unsat;

  QueryBudget CompBudget = B;
  CompBudget.SolverSlicing = QueryBudget::SlicingComponent;
  uint64_t Key = ProverCache::keyFor(F, CompBudget);
  if (std::optional<SatOutcome> Hit = Cache->lookupHashed(Key, F, CompBudget)) {
    ++Counters.CacheHits;
    if (Hit->UsedOmega)
      ++Counters.OmegaAvoided;
    return Hit->Result;
  }
  ++Counters.CacheMisses;

  std::vector<Constraint> Canon;
  if (F->kind() == FormulaKind::Atom) {
    Canon.push_back(F->constraint());
  } else {
    Canon.reserve(F->children().size());
    for (const FormulaRef &C : F->children())
      Canon.push_back(C->constraint());
  }
  const TieredSolver::TierStats &T = Solver.tierStats();
  uint64_t OmegaBefore = T.OmegaHits + T.OmegaMisses;
  SatResult R = Solver.isSatisfiable(Canon);

  SatOutcome Outcome;
  Outcome.Result = R;
  Outcome.UsedOmega = (T.OmegaHits + T.OmegaMisses) != OmegaBefore;
  if (Outcome.UsedOmega)
    DisjunctUsedOmega = true;
  // A governor-interrupted Unknown depends on when the deadline fired,
  // not on (formula, budget); mirror the prover's rule and keep it out
  // of the memo.
  if (!(Gov && Gov->exhausted()))
    Cache->insertHashed(Key, F, CompBudget, Outcome);
  return R;
}
