//===- Slice.h - Query slicing and component memoization --------*- C++ -*-===//
//
// Part of mcsafe, a reproduction of "Safety Checking of Machine Code"
// (Xu, Miller, Reps; PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Connected-component decomposition of satisfiability queries — the
/// slicing layer between the prover and the tiered solver.
///
/// The conjunctions machine code generates mix one or two genuinely hard
/// multi-variable atoms with a crowd of easy single-variable bound checks;
/// solved whole, the hard atom drags every easy one along with it into the
/// Omega test. But satisfiability over the integers factors exactly across
/// variable-disjoint sub-conjunctions:
///
///   sat(C1 and C2) == sat(C1) and sat(C2)   when vars(C1) ∩ vars(C2) = ∅
///
/// (any pair of models glues into one — the conjuncts constrain disjoint
/// coordinates). So the slicer partitions a conjunction's atoms into
/// connected components by shared free variables (union-find over interned
/// variable ids), solves each component independently through the existing
/// tier stack, and combines: Unsat if any component is Unsat; Sat iff all
/// are Sat; Unknown in any component (with no Unsat found) degrades the
/// whole query to Unknown — a component the solver gave up on might be
/// unsatisfiable, so neither Sat nor Unsat can be claimed.
///
/// Decomposition compounds with the pre-solver tiers: tier applicability
/// is an all-atoms property (interval needs every atom single-variable,
/// DBM needs every atom a unit difference), so a mixed conjunction that
/// falls through to Omega whole often splits into components that each fit
/// a cheap tier.
///
/// Memoization happens at two levels. Each component's verdict is cached
/// in the shared ProverCache keyed by the component's canonical interned
/// formula (atoms sorted by interned id) plus the query budget, with
/// QueryBudget::SolverSlicing = SlicingComponent keeping component entries
/// apart from whole-query entries. And each whole disjunct's verdict is
/// cached under its canonical conjunction (the same interned formula the
/// prover's DNF-level dedup computes anyway), so a disjunct recurring
/// across queries skips elimination, partitioning, and every component
/// lookup outright. Disjunct entries share the SlicingOn tag with
/// whole-query entries — sound, because a whole query that *is* a
/// canonical conjunction of atoms has exactly the disjunct's semantics
/// (its DNF is itself). The recurring bound-check components machine code
/// generates hit warm across VCs, procedures, corpus runs, and
/// mcsafe-serve's process-lifetime cache. Components are solved in
/// canonical (sorted) atom order so every memoized outcome is a pure
/// function of (formula, budget) — never of which enclosing query
/// happened to compute it first.
///
/// In front of the decomposition runs an equality-substitution pre-pass:
/// Gaussian elimination over EQ atoms with unit pivots (c*v + r == 0,
/// c = +-1  =>  v := -c*r, exact for existential integer satisfiability),
/// which eliminates variables before components are formed — shrinking
/// both the component graph and any residual Omega problem. Pivots are
/// never taken on non-unit coefficients (v = -r/c is not integer-exact),
/// and a substitution that overflows (poisons) aborts the pre-pass
/// conservatively.
///
//===----------------------------------------------------------------------===//

#ifndef MCSAFE_CONSTRAINTS_SLICE_H
#define MCSAFE_CONSTRAINTS_SLICE_H

#include "constraints/PreSolve.h"
#include "constraints/ProverCache.h"

#include <cstdint>
#include <optional>
#include <vector>

namespace mcsafe {

namespace support {
class ResourceGovernor;
}

/// Counters of the slicing layer, reported through Prover::Stats and the
/// prover/slice/* metrics.
struct SliceStats {
  /// Disjunct conjunctions routed through the slicer.
  uint64_t DisjunctQueries = 0;
  /// DNF disjuncts the prover dropped as duplicates (by interned id).
  uint64_t DisjunctsDeduped = 0;
  /// Variables eliminated by the equality-substitution pre-pass.
  uint64_t EqEliminated = 0;
  /// Connected components formed across all sliced queries.
  uint64_t Components = 0;
  /// Queries that split into two or more components.
  uint64_t MultiComponent = 0;
  /// Memo hits / misses in the ProverCache, summed over both levels
  /// (whole-disjunct entries and per-component entries).
  uint64_t CacheHits = 0;
  uint64_t CacheMisses = 0;
  /// Memo hits whose original (fresh) solve had consulted the Omega tier:
  /// each one is an Omega run the cache saved.
  uint64_t OmegaAvoided = 0;
};

namespace slice {

/// Equality-substitution pre-pass over \p Atoms, in place: repeatedly
/// picks the first EQ atom carrying a variable with coefficient +-1 (the
/// first such variable in the atom's sorted term order), substitutes that
/// variable out of every other atom, and drops the pivot atom. Exact for
/// existential integer satisfiability. Atoms that become trivially false
/// surface the contradiction as SatResult::Unsat; trivially-true atoms
/// are dropped. Returns nullopt when no contradiction was found (the
/// caller continues with the reduced system). Never pivots on a non-unit
/// coefficient, and abandons the pass (leaving \p Atoms at the last
/// consistent state) if a substitution poisons. \p Eliminated is bumped
/// once per eliminated variable.
std::optional<SatResult> eliminateEqualities(std::vector<Constraint> &Atoms,
                                             uint64_t &Eliminated);

/// Partitions \p Atoms into connected components by shared variables
/// (union-find over interned variable ids). \p ComponentOf receives one
/// component index per atom; components are numbered deterministically in
/// order of their first atom. Variable-free atoms each form a singleton
/// component. Returns the number of components.
unsigned partitionComponents(const std::vector<Constraint> &Atoms,
                             std::vector<unsigned> &ComponentOf);

} // namespace slice

/// The slicing layer the prover routes disjunct queries through. Holds a
/// reference to the prover's tiered solver and (optionally) its result
/// cache; stateless apart from counters.
class SliceSolver {
public:
  SliceSolver(TieredSolver &Solver, ProverCache *Cache)
      : Solver(Solver), Cache(Cache) {}

  /// Re-points the memo table (the prover finishes cache setup after
  /// construction). Null disables memoization but not decomposition.
  void setCache(ProverCache *C) { Cache = C; }

  /// Decides satisfiability of the conjunction of \p Conjuncts via
  /// component decomposition with memoization. \p DF is the disjunct's
  /// canonical interned conjunction (atoms sorted by id — the formula the
  /// prover already interns for disjunct dedup), which keys the
  /// whole-disjunct memo entry. \p B is the enclosing query's budget
  /// (component entries re-key it with SolverSlicing = SlicingComponent).
  /// Outcomes computed while \p Gov reports exhaustion are not memoized —
  /// they are not pure functions of (formula, budget).
  SatResult solve(const FormulaRef &DF,
                  const std::vector<Constraint> &Conjuncts,
                  const QueryBudget &B, support::ResourceGovernor *Gov);

  /// Entry point for a query whose DNF is a single disjunct: the prover's
  /// own whole-query cache entry (keyed by the original formula) already
  /// memoizes this exact query, so a disjunct-level entry would mostly
  /// duplicate it — and skipping it saves interning and sorting the
  /// disjunct's atoms on the hot path. Decomposes and solves directly;
  /// components still memoize individually.
  SatResult solveSingleDisjunct(const std::vector<Constraint> &Conjuncts,
                                const QueryBudget &B,
                                support::ResourceGovernor *Gov) {
    ++Counters.DisjunctQueries;
    return solveUncached(Conjuncts, B, Gov);
  }

  const SliceStats &stats() const { return Counters; }
  void resetStats() { Counters = SliceStats(); }
  /// The prover's DNF-level disjunct dedup reports drops here so all
  /// slicing counters live in one place.
  void noteDedupedDisjunct() { ++Counters.DisjunctsDeduped; }

private:
  SatResult solveUncached(const std::vector<Constraint> &Conjuncts,
                          const QueryBudget &B,
                          support::ResourceGovernor *Gov);
  SatResult solveComponent(const std::vector<Constraint> &Atoms,
                           const QueryBudget &B,
                           support::ResourceGovernor *Gov);
  /// Solver.isSatisfiable with Omega-consultation tracking (sets
  /// DisjunctUsedOmega on any Omega tier consult).
  SatResult satisfiableTracked(const std::vector<Constraint> &Atoms);

  TieredSolver &Solver;
  ProverCache *Cache;
  SliceStats Counters;
  /// Whether the disjunct currently being solved consulted the Omega
  /// tier live (component cache hits don't count — their Omega run was
  /// already avoided). Valid only during solve().
  bool DisjunctUsedOmega = false;
};

} // namespace mcsafe

#endif // MCSAFE_CONSTRAINTS_SLICE_H
