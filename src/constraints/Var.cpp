//===- Var.cpp ------------------------------------------------------------===//

#include "constraints/Var.h"

#include <cassert>
#include <deque>
#include <unordered_map>

using namespace mcsafe;

namespace {

struct VarPool {
  std::unordered_map<std::string, uint32_t> Ids;
  std::deque<std::string> Names;
  uint64_t FreshCounter = 0;
};

VarPool &pool() {
  static VarPool P;
  return P;
}

} // namespace

VarId mcsafe::varId(std::string_view Name) {
  VarPool &P = pool();
  auto It = P.Ids.find(std::string(Name));
  if (It != P.Ids.end())
    return VarId(It->second);
  uint32_t Index = static_cast<uint32_t>(P.Names.size());
  P.Names.emplace_back(Name);
  P.Ids.emplace(P.Names.back(), Index);
  return VarId(Index);
}

const std::string &mcsafe::varName(VarId Id) {
  assert(Id.isValid() && "invalid VarId");
  VarPool &P = pool();
  assert(Id.index() < P.Names.size() && "unknown VarId");
  return P.Names[Id.index()];
}

VarId mcsafe::freshVar(std::string_view Prefix) {
  VarPool &P = pool();
  while (true) {
    std::string Name =
        std::string(Prefix) + "." + std::to_string(P.FreshCounter++);
    if (!P.Ids.count(Name))
      return varId(Name);
  }
}
