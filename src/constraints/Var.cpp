//===- Var.cpp ------------------------------------------------------------===//

#include "constraints/Var.h"

#include <array>
#include <atomic>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <unordered_map>
#include <vector>

using namespace mcsafe;

namespace {

// Published names live in fixed-capacity chunks so varName() can read
// them without a lock: a chunk pointer is set once (release) and never
// moves, and an id is only handed out after its name is fully
// constructed (the release store of Count publishes it).
constexpr size_t ChunkShift = 10;
constexpr size_t ChunkSize = size_t(1) << ChunkShift;   // Names per chunk.
constexpr size_t MaxChunks = size_t(1) << 14;           // ~16M names.

struct VarPool {
  std::mutex M; // Guards Ids, FreshCounter, chunk creation.
  std::unordered_map<std::string, uint32_t> Ids;
  uint64_t FreshCounter = 0;
  std::atomic<uint32_t> Count{0};
  std::array<std::atomic<std::array<std::string, ChunkSize> *>, MaxChunks>
      Chunks{};
};

VarPool &pool() {
  static VarPool P;
  return P;
}

/// Appends \p Name to the published storage and returns its new id.
/// Caller must hold pool().M.
uint32_t publishLocked(VarPool &P, std::string_view Name) {
  uint32_t Index = P.Count.load(std::memory_order_relaxed);
  size_t Chunk = Index >> ChunkShift;
  if (Chunk >= MaxChunks) {
    std::fprintf(stderr, "mcsafe: variable intern pool exhausted\n");
    std::abort();
  }
  auto *C = P.Chunks[Chunk].load(std::memory_order_relaxed);
  if (!C) {
    C = new std::array<std::string, ChunkSize>();
    P.Chunks[Chunk].store(C, std::memory_order_release);
  }
  (*C)[Index & (ChunkSize - 1)] = std::string(Name);
  P.Count.store(Index + 1, std::memory_order_release);
  return Index;
}

/// A per-check namespace frame: private name->id table and per-prefix
/// fresh counters. Owned by VarNamespace, used from one thread.
struct NamespaceFrame {
  std::unordered_map<std::string, uint32_t> Ids;
  std::unordered_map<std::string, uint64_t> FreshCounters;
};

/// Active namespace stack of the current thread. A null entry marks a
/// suspension (VarScopeSuspend).
thread_local std::vector<NamespaceFrame *> ScopeStack;

NamespaceFrame *activeFrame() {
  return ScopeStack.empty() ? nullptr : ScopeStack.back();
}

} // namespace

VarId mcsafe::varId(std::string_view Name) {
  if (NamespaceFrame *F = activeFrame()) {
    auto It = F->Ids.find(std::string(Name));
    if (It != F->Ids.end())
      return VarId(It->second);
    VarPool &P = pool();
    uint32_t Index;
    {
      std::lock_guard<std::mutex> L(P.M);
      Index = publishLocked(P, Name);
    }
    F->Ids.emplace(std::string(Name), Index);
    return VarId(Index);
  }
  VarPool &P = pool();
  std::lock_guard<std::mutex> L(P.M);
  auto It = P.Ids.find(std::string(Name));
  if (It != P.Ids.end())
    return VarId(It->second);
  uint32_t Index = publishLocked(P, Name);
  P.Ids.emplace(std::string(Name), Index);
  return VarId(Index);
}

const std::string &mcsafe::varName(VarId Id) {
  assert(Id.isValid() && "invalid VarId");
  VarPool &P = pool();
  uint32_t Index = Id.index();
  assert(Index < P.Count.load(std::memory_order_acquire) &&
         "unknown VarId");
  auto *C = P.Chunks[Index >> ChunkShift].load(std::memory_order_acquire);
  return (*C)[Index & (ChunkSize - 1)];
}

VarId mcsafe::freshVar(std::string_view Prefix) {
  if (NamespaceFrame *F = activeFrame()) {
    uint64_t &Counter = F->FreshCounters[std::string(Prefix)];
    while (true) {
      std::string Name =
          std::string(Prefix) + "." + std::to_string(Counter++);
      if (!F->Ids.count(Name))
        return varId(Name);
    }
  }
  VarPool &P = pool();
  std::unique_lock<std::mutex> L(P.M);
  while (true) {
    std::string Name =
        std::string(Prefix) + "." + std::to_string(P.FreshCounter++);
    if (!P.Ids.count(Name)) {
      uint32_t Index = publishLocked(P, Name);
      P.Ids.emplace(std::move(Name), Index);
      return VarId(Index);
    }
  }
}

VarNamespace::VarNamespace() {
  auto *F = new NamespaceFrame();
  ScopeStack.push_back(F);
  Frame = F;
}

VarNamespace::~VarNamespace() {
  assert(!ScopeStack.empty() && ScopeStack.back() == Frame &&
         "VarNamespace destroyed out of order");
  ScopeStack.pop_back();
  delete static_cast<NamespaceFrame *>(Frame);
}

VarScopeSuspend::VarScopeSuspend() { ScopeStack.push_back(nullptr); }

VarScopeSuspend::~VarScopeSuspend() {
  assert(!ScopeStack.empty() && ScopeStack.back() == nullptr &&
         "VarScopeSuspend destroyed out of order");
  ScopeStack.pop_back();
}
