//===- Var.h - Interned symbolic variables ----------------------*- C++ -*-===//
//
// Part of mcsafe, a reproduction of "Safety Checking of Machine Code"
// (Xu, Miller, Reps; PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Symbolic integer variables used by linear expressions and formulas.
/// Variables are interned strings: registers ("%o0"), symbolic constants
/// from annotations ("n"), abstract-location value variables ("val:e"),
/// and fresh variables minted during wlp computation and quantifier
/// elimination. The intern pool is process-wide and not thread-safe; the
/// checker is single-threaded (as was the paper's prototype).
///
//===----------------------------------------------------------------------===//

#ifndef MCSAFE_CONSTRAINTS_VAR_H
#define MCSAFE_CONSTRAINTS_VAR_H

#include <cstdint>
#include <string>
#include <string_view>

namespace mcsafe {

/// An interned variable identifier. Comparable and hashable by value.
class VarId {
public:
  constexpr VarId() : Index(UINT32_MAX) {}
  constexpr explicit VarId(uint32_t Index) : Index(Index) {}

  constexpr bool isValid() const { return Index != UINT32_MAX; }
  constexpr uint32_t index() const { return Index; }

  friend constexpr bool operator==(VarId A, VarId B) {
    return A.Index == B.Index;
  }
  friend constexpr bool operator!=(VarId A, VarId B) {
    return A.Index != B.Index;
  }
  friend constexpr bool operator<(VarId A, VarId B) {
    return A.Index < B.Index;
  }

private:
  uint32_t Index;
};

/// Interns \p Name and returns its id (stable for the process lifetime).
VarId varId(std::string_view Name);

/// The name a VarId was interned under.
const std::string &varName(VarId Id);

/// Mints a fresh variable that has never been returned before, named
/// "<prefix>.<counter>".
VarId freshVar(std::string_view Prefix);

} // namespace mcsafe

template <> struct std::hash<mcsafe::VarId> {
  size_t operator()(mcsafe::VarId Id) const noexcept {
    return std::hash<uint32_t>()(Id.index());
  }
};

#endif // MCSAFE_CONSTRAINTS_VAR_H
