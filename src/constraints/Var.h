//===- Var.h - Interned symbolic variables ----------------------*- C++ -*-===//
//
// Part of mcsafe, a reproduction of "Safety Checking of Machine Code"
// (Xu, Miller, Reps; PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Symbolic integer variables used by linear expressions and formulas.
/// Variables are interned strings: registers ("%o0"), symbolic constants
/// from annotations ("n"), abstract-location value variables ("val:e"),
/// and fresh variables minted during wlp computation and quantifier
/// elimination.
///
/// The intern pool is process-wide and thread-safe: ids are allocated
/// under a writer lock, while varName() reads the published name storage
/// lock-free (names are immutable once published). For the parallel
/// verification engine, a check can additionally run inside a
/// VarNamespace: name->id lookups then resolve in a private per-check
/// table, so the sequence of ids a check observes — and every fresh
/// variable name it mints — depends only on that check's own inputs,
/// never on what other checks running concurrently intern. That is what
/// makes reports byte-identical for any --jobs value. Ids stay globally
/// unique (they are allocated from the shared pool), so formulas from
/// different namespaces can meet in the shared prover cache, where equal
/// id structure means alpha-equivalent formulas with identical
/// satisfiability.
///
//===----------------------------------------------------------------------===//

#ifndef MCSAFE_CONSTRAINTS_VAR_H
#define MCSAFE_CONSTRAINTS_VAR_H

#include "support/Digest.h"

#include <cstdint>
#include <string>
#include <string_view>

namespace mcsafe {

/// An interned variable identifier. Comparable and hashable by value.
class VarId {
public:
  constexpr VarId() : Index(UINT32_MAX) {}
  constexpr explicit VarId(uint32_t Index) : Index(Index) {}

  constexpr bool isValid() const { return Index != UINT32_MAX; }
  constexpr uint32_t index() const { return Index; }

  friend constexpr bool operator==(VarId A, VarId B) {
    return A.Index == B.Index;
  }
  friend constexpr bool operator!=(VarId A, VarId B) {
    return A.Index != B.Index;
  }
  friend constexpr bool operator<(VarId A, VarId B) {
    return A.Index < B.Index;
  }

private:
  uint32_t Index;
};

/// Interns \p Name and returns its id (stable for the process lifetime).
/// Inside a VarNamespace the lookup is namespace-local: the same name
/// resolves to one id per namespace.
VarId varId(std::string_view Name);

/// The name a VarId was interned under. Lock-free; valid for ids from any
/// namespace for the process lifetime.
const std::string &varName(VarId Id);

/// Mints a fresh variable named "<prefix>.<counter>". Globally it has
/// never been returned before; inside a VarNamespace the counter is
/// namespace-local (deterministic per check) and the name is fresh within
/// that namespace.
VarId freshVar(std::string_view Prefix);

/// RAII: routes this thread's varId/freshVar calls into a private
/// namespace until destruction. One check = one namespace = one
/// deterministic id/name sequence. A namespace must be used from a single
/// thread; speculative pool tasks suspend it with VarScopeSuspend.
class VarNamespace {
public:
  VarNamespace();
  ~VarNamespace();
  VarNamespace(const VarNamespace &) = delete;
  VarNamespace &operator=(const VarNamespace &) = delete;

private:
  void *Frame;
};

/// RAII: temporarily deactivates the current thread's VarNamespace (if
/// any). The prover wraps its internal work in this so that speculative /
/// cached query evaluation can never perturb a check's deterministic
/// fresh-name sequence.
class VarScopeSuspend {
public:
  VarScopeSuspend();
  ~VarScopeSuspend();
  VarScopeSuspend(const VarScopeSuspend &) = delete;
  VarScopeSuspend &operator=(const VarScopeSuspend &) = delete;
};

} // namespace mcsafe

template <> struct std::hash<mcsafe::VarId> {
  size_t operator()(mcsafe::VarId Id) const noexcept {
    // The stable mixer rather than std::hash<uint32_t> (which libstdc++
    // implements as the identity — poor bucket spread — and which is
    // implementation-defined everywhere else).
    return static_cast<size_t>(mcsafe::support::mix64(Id.index()));
  }
};

#endif // MCSAFE_CONSTRAINTS_VAR_H
