//===- Btree.cpp - The two Btree-traversal examples -----------------------===//
//
// Part of mcsafe, a reproduction of "Safety Checking of Machine Code"
// (Xu, Miller, Reps; PLDI 2000).
//
// Two versions of a binary-tree lookup driven by an array of query keys:
// Btree does the key comparison inline; Btree2 routes key access and
// comparison through little helper functions ("one version compares keys
// via a function call"), exercising interprocedural inline expansion.
//
//===----------------------------------------------------------------------===//

#include "corpus/CorpusImpl.h"

using namespace mcsafe;
using namespace mcsafe::corpus;

namespace {

const char *BtreePolicy = R"(
struct node { key: int32 @0; val: int32 @4; left: node* @8; right: node* @12 } size 16 align 4
loc nd : node state={nd,null} summary
loc root : node* state={nd,null}
loc qe : int32 state=init summary
loc q : int32[k] state={qe}
region H { nd, root }
region U { q, qe }
allow H : int32 : r,o
allow H : node* : r,f,o
allow U : int32 : r,o
allow U : int32[k] : r,f,o
invoke %o0 = root
invoke %o1 = q
invoke %o2 = k
constraint k >= 1
)";

} // namespace

CorpusProgram detail::makeBtree() {
  CorpusProgram P;
  P.Name = "Btree";
  P.Asm = R"(
  clr %o5            ! hits = 0
  clr %g4            ! qi = 0
qloop:
  cmp %g4,%o2
  bge done
  nop
  sll %g4,2,%g2
  ld [%o1+%g2],%g3   ! key = q[qi]
  cmp %g3,0          ! only positive keys are searched
  ble next
  nop
  mov %o0,%o3        ! p = root
dloop:
  cmp %o3,0
  be next
  nop
  ld [%o3+0],%g1     ! p->key
  cmp %g3,%g1
  be found
  nop
  bl goleft
  nop
  ld [%o3+12],%o3    ! p = p->right
  ba dloop
  nop
goleft:
  ld [%o3+8],%o3     ! p = p->left
  ba dloop
  nop
found:
  ld [%o3+4],%g1     ! p->val; zero marks a deleted entry
  cmp %g1,0
  be next
  nop
  inc %o5
next:
  inc %g4
  ba qloop
  nop
done:
  mov %o5,%o0
  retl
  nop
)";
  P.Policy = BtreePolicy;
  P.ExpectSafe = true;
  P.Paper = {41, 11, 2, 1, 0, 0, 41, 0.08, 0.007, 0.50, 0.59};
  return P;
}

CorpusProgram detail::makeBtree2() {
  CorpusProgram P;
  P.Name = "Btree2";
  P.Asm = R"(
  mov %o0,%o4        ! root
  mov %o1,%g1        ! queries base
  mov %o7,%g6        ! preserve the return address across helper calls
  clr %o5            ! hits
  clr %g4            ! qi
qloop:
  cmp %g4,%o2
  bge done
  nop
  sll %g4,2,%g2
  ld [%g1+%g2],%g5   ! key = q[qi]
  mov %g5,%o0        ! qualify: cmpkeys(key, 0) must be positive
  clr %o1
  call cmpkeys
  nop
  cmp %o0,1
  bne next
  nop
  mov %o4,%o3        ! p = root
dloop:
  cmp %o3,0
  be next
  nop
  mov %o3,%o0
  call getkey        ! nodekey = getkey(p)
  nop
  mov %o0,%o1
  mov %g5,%o0
  call cmpkeys       ! c = cmpkeys(key, nodekey)
  nop
  cmp %o0,0
  be found
  nop
  bl goleft
  nop
  ld [%o3+12],%o3    ! p = p->right
  ba dloop
  nop
goleft:
  ld [%o3+8],%o3     ! p = p->left
  ba dloop
  nop
found:
  mov %o3,%o0
  call getval
  nop
  tst %o0
  be next
  nop
  inc %o5
next:
  inc %g4
  ba qloop
  nop
done:
  mov %o5,%o0
  mov %g6,%o7
  retl
  nop
getkey:
  ld [%o0+0],%o0
  retl
  nop
getval:
  ld [%o0+4],%o0
  retl
  nop
cmpkeys:
  cmp %o0,%o1
  bl cklt
  nop
  bg ckgt
  nop
  clr %o0
  retl
  nop
cklt:
  mov -1,%o0
  retl
  nop
ckgt:
  mov 1,%o0
  retl
  nop
)";
  P.Policy = BtreePolicy;
  P.ExpectSafe = true;
  P.Paper = {51, 11, 2, 1, 4, 0, 42, 0.11, 0.009, 0.41, 0.53};
  return P;
}
