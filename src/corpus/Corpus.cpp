//===- Corpus.cpp ---------------------------------------------------------===//

#include "corpus/CorpusImpl.h"

#include <cassert>
#include <cstdlib>

using namespace mcsafe;
using namespace mcsafe::corpus;

const std::vector<CorpusProgram> &corpus::corpus() {
  static const std::vector<CorpusProgram> Programs = [] {
    std::vector<CorpusProgram> P;
    P.push_back(detail::makeSum());
    P.push_back(detail::makePagingPolicy());
    P.push_back(detail::makeStartTimer());
    P.push_back(detail::makeHash());
    P.push_back(detail::makeBubbleSort());
    P.push_back(detail::makeStopTimer());
    P.push_back(detail::makeBtree());
    P.push_back(detail::makeBtree2());
    P.push_back(detail::makeHeapSort2());
    P.push_back(detail::makeHeapSort());
    P.push_back(detail::makeJpvm());
    P.push_back(detail::makeStackSmashing());
    P.push_back(detail::makeMd5());
    // SFI mask idioms, after the thirteen Figure 9 rows.
    P.push_back(detail::makeSfiMask());
    P.push_back(detail::makeSfiMaskLoop());
    P.push_back(detail::makeSfiAndn());
    P.push_back(detail::makeSfiSethi());
    P.push_back(detail::makeSfiHalfword());
    P.push_back(detail::makeSfiShift());
    P.push_back(detail::makeSfiUnaligned());
    return P;
  }();
  return Programs;
}

const CorpusProgram &corpus::corpusProgram(std::string_view Name) {
  for (const CorpusProgram &P : corpus())
    if (P.Name == Name)
      return P;
  assert(false && "unknown corpus program");
  std::abort();
}
