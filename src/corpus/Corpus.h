//===- Corpus.h - The thirteen Figure 9 evaluation programs -----*- C++ -*-===//
//
// Part of mcsafe, a reproduction of "Safety Checking of Machine Code"
// (Xu, Miller, Reps; PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The evaluation corpus: re-implementations of the paper's thirteen
/// examples (Figure 9) in the supported SPARC V8 subset, each with its
/// host-typestate specification, access policy, and invocation
/// specification, plus the paper's reported characteristics for
/// comparison. The programs match the paper's *structure* — loop
/// nesting, call counts, the safety conditions exercised, and the
/// expected verdicts (PagingPolicy's null dereference, Stack-smashing's
/// out-of-bounds writes, jPVM's summarization false positives) — rather
/// than the exact instruction streams of gcc 2.7.2.3, which are not
/// recoverable from the paper.
///
//===----------------------------------------------------------------------===//

#ifndef MCSAFE_CORPUS_CORPUS_H
#define MCSAFE_CORPUS_CORPUS_H

#include "support/Diagnostics.h"

#include <string>
#include <string_view>
#include <vector>

namespace mcsafe {
namespace corpus {

/// The paper's Figure 9 row for one example.
struct PaperRow {
  int Instructions;
  int Branches;
  int Loops;
  int InnerLoops;
  int Calls;
  int TrustedCalls;
  int GlobalConditions;
  double TimeTypestate;
  double TimeAnnotation;
  double TimeGlobal;
  double TimeTotal;
};

/// One corpus entry.
struct CorpusProgram {
  std::string Name;
  std::string Asm;
  std::string Policy;
  /// Expected verdict of the checker on this program.
  bool ExpectSafe;
  /// Violation kinds the checker must report (with minimum counts) when
  /// ExpectSafe is false.
  std::vector<std::pair<SafetyKind, unsigned>> ExpectedViolations;
  PaperRow Paper;
};

/// The thirteen Figure 9 programs in order, followed by the SFI
/// mask-idiom programs (SfiPrograms.cpp).
const std::vector<CorpusProgram> &corpus();

/// Lookup by name; aborts on unknown names.
const CorpusProgram &corpusProgram(std::string_view Name);

// Builders for the generated programs (exposed for tests).
std::string stackSmashingAsm();
std::string md5Asm();

} // namespace corpus
} // namespace mcsafe

#endif // MCSAFE_CORPUS_CORPUS_H
