//===- CorpusImpl.h - Per-program corpus builders ---------------*- C++ -*-===//
//
// Part of mcsafe, a reproduction of "Safety Checking of Machine Code"
// (Xu, Miller, Reps; PLDI 2000).
//
//===----------------------------------------------------------------------===//

#ifndef MCSAFE_CORPUS_CORPUSIMPL_H
#define MCSAFE_CORPUS_CORPUSIMPL_H

#include "corpus/Corpus.h"

namespace mcsafe {
namespace corpus {
namespace detail {

CorpusProgram makeSum();
CorpusProgram makePagingPolicy();
CorpusProgram makeStartTimer();
CorpusProgram makeHash();
CorpusProgram makeBubbleSort();
CorpusProgram makeStopTimer();
CorpusProgram makeBtree();
CorpusProgram makeBtree2();
CorpusProgram makeHeapSort2();
CorpusProgram makeHeapSort();
CorpusProgram makeJpvm();
CorpusProgram makeStackSmashing();
CorpusProgram makeMd5();

// Software-fault-isolation mask idioms (SfiPrograms.cpp) — not part of
// Figure 9; they pin the known-bits / alignment domain differential.
CorpusProgram makeSfiMask();
CorpusProgram makeSfiMaskLoop();
CorpusProgram makeSfiAndn();
CorpusProgram makeSfiSethi();
CorpusProgram makeSfiHalfword();
CorpusProgram makeSfiShift();
CorpusProgram makeSfiUnaligned();

} // namespace detail
} // namespace corpus
} // namespace mcsafe

#endif // MCSAFE_CORPUS_CORPUSIMPL_H
