//===- Generated.cpp - Stack-smashing and MD5 (built programmatically) ----===//
//
// Part of mcsafe, a reproduction of "Safety Checking of Machine Code"
// (Xu, Miller, Reps; PLDI 2000).
//
// The two largest examples are generated:
//
//  - Stack-smashing (Smith's example 9.b): a request handler with an
//    annotated stack frame, a long dispatch ladder, several safe loops
//    over the local buffer, and an unchecked copy loop driven by an
//    attacker-controlled length. The checker must identify *all* the
//    out-of-bounds frame writes.
//
//  - MD5: MD5Update with an unrolled 64-step MD5Transform (genuine T
//    table and shift schedule), block-copy loops, padding, and length
//    encoding — the paper's largest example (883 instructions there).
//
//===----------------------------------------------------------------------===//

#include "corpus/CorpusImpl.h"

#include <cmath>
#include <cstdint>
#include <sstream>

using namespace mcsafe;
using namespace mcsafe::corpus;

std::string corpus::stackSmashingAsm() {
  std::ostringstream OS;
  OS << R"(  save %sp,-112,%sp
  call get_request
  nop
  mov %o0,%l0        ! request code
  call get_length
  nop
  mov %o0,%l1        ! attacker-controlled length, never validated
  add %sp,0,%l3      ! buf = frame-local int32[16]
)";
  // The dispatch ladder: 70 request codes, all funneling to "hit".
  for (int I = 1; I <= 70; ++I) {
    OS << "  cmp %l0," << I << "\n  be hit\n  nop\n";
  }
  OS << R"(  ba fin
  nop
hit:
  st %l0,[%sp+64]    ! remember the request in the frame
! loop A: clear the buffer (safe; literal bounds)
  clr %l4
clra:
  cmp %l4,16
  bge clradone
  nop
  sll %l4,2,%g2
  st %g0,[%l3+%g2]
  inc %l4
  ba clra
  nop
clradone:
! loop B: copy "len" words in -- the smash (no bound check against 16)
  clr %l4
smash:
  cmp %l4,%l1
  bge smashdone
  nop
  sll %l4,2,%g2
  st %l4,[%l3+%g2]   ! out-of-bounds when len > 16
  inc %l4
  ba smash
  nop
smashdone:
! a direct one-past-the-end style write at index len (also unchecked)
  sll %l1,2,%g2
  st %g0,[%l3+%g2]   ! out-of-bounds for len >= 16
! loop C: checksum the buffer (safe)
  clr %l4
  clr %l5
csum:
  cmp %l4,16
  bge csumdone
  nop
  sll %l4,2,%g2
  ld [%l3+%g2],%g3
  add %l5,%g3,%l5
  inc %l4
  ba csum
  nop
csumdone:
! loops D/E (E nested in D): re-clear a 4x4 tile of the buffer (safe)
  clr %l4
tileo:
  cmp %l4,4
  bge tileodone
  nop
  clr %l6
tilei:
  cmp %l6,4
  bge tileidone
  nop
  sll %l4,2,%g2
  add %g2,%l6,%g2    ! idx = 4*i + j
  sll %g2,2,%g2
  st %g0,[%l3+%g2]
  inc %l6
  ba tilei
  nop
tileidone:
  inc %l4
  ba tileo
  nop
tileodone:
! loop F: saturate the checksum (safe scalar loop)
  clr %l4
sat:
  cmp %l4,8
  bge satdone
  nop
  add %l5,%l5,%l5
  inc %l4
  ba sat
  nop
satdone:
! loop G: copy the low buffer half up (safe; 0..8 -> 8..16)
  clr %l4
fold:
  cmp %l4,8
  bge folddone
  nop
  sll %l4,2,%g2
  ld [%l3+%g2],%g3
  add %g2,32,%g4
  st %g3,[%l3+%g4]
  inc %l4
  ba fold
  nop
folddone:
  st %l5,[%sp+68]
fin:
  ret
  restore
)";
  return OS.str();
}

CorpusProgram detail::makeStackSmashing() {
  CorpusProgram P;
  P.Name = "StackSmashing";
  P.Asm = stackSmashingAsm();
  P.Policy = R"(
struct smframe { buf: int32 @0 x 16; req: int32 @64; sum: int32 @68; pad: int32 @72 x 10 } size 112 align 8
frame 1 : smframe
trusted get_request {
  returns int32 state=init access=o
}
trusted get_length {
  returns int32 state=init access=o
}
)";
  P.ExpectSafe = false;
  P.ExpectedViolations = {{SafetyKind::ArrayBounds, 2}};
  P.Paper = {309, 89, 7, 1, 2, 2, 162, 1.42, 0.031, 10.15, 11.60};
  return P;
}

namespace {

/// The genuine MD5 per-step shift schedule.
const int Md5Shift[64] = {
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22,
    5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20,
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23,
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21};

/// T[i] = floor(|sin(i + 1)| * 2^32), the genuine MD5 constants.
uint32_t md5T(int I) {
  double S = std::fabs(std::sin(static_cast<double>(I + 1)));
  return static_cast<uint32_t>(S * 4294967296.0);
}

/// X-index schedule per round.
int md5X(int Step) {
  if (Step < 16)
    return Step;
  if (Step < 32)
    return (1 + 5 * Step) % 16;
  if (Step < 48)
    return (5 + 3 * Step) % 16;
  return (7 * Step) % 16;
}

/// Emits one MD5 step updating a (with b, c, d in the given registers).
/// Registers: a/b/c/d in %l0..%l3 rotated by naming; scratch %g1..%g5.
void emitMd5Step(std::ostringstream &OS, int Step, const char *A,
                 const char *B, const char *C, const char *D) {
  // The round function into %g1.
  if (Step < 16) { // F = (b & c) | (~b & d)
    OS << "  and " << B << "," << C << ",%g1\n";
    OS << "  andn " << D << "," << B << ",%g2\n";
    OS << "  or %g1,%g2,%g1\n";
  } else if (Step < 32) { // G = (d & b) | (~d & c)
    OS << "  and " << D << "," << B << ",%g1\n";
    OS << "  andn " << C << "," << D << ",%g2\n";
    OS << "  or %g1,%g2,%g1\n";
  } else if (Step < 48) { // H = b ^ c ^ d
    OS << "  xor " << B << "," << C << ",%g1\n";
    OS << "  xor %g1," << D << ",%g1\n";
  } else { // I = c ^ (b | ~d)
    OS << "  orn " << B << "," << D << ",%g1\n";
    OS << "  xor %g1," << C << ",%g1\n";
  }
  OS << "  add " << A << ",%g1," << A << "\n";
  OS << "  ld [%g7+" << 4 * md5X(Step) << "],%g2\n"; // X[k]
  OS << "  add " << A << ",%g2," << A << "\n";
  OS << "  set 0x" << std::hex << md5T(Step) << std::dec << ",%g3\n";
  OS << "  add " << A << ",%g3," << A << "\n";
  int S = Md5Shift[Step];
  OS << "  sll " << A << "," << S << ",%g4\n";
  OS << "  srl " << A << "," << (32 - S) << ",%g5\n";
  OS << "  or %g4,%g5," << A << "\n";
  OS << "  add " << A << "," << B << "," << A << "\n";
}

} // namespace

std::string corpus::md5Asm() {
  std::ostringstream OS;
  // md5_update(ctx in %o0, msg base in %o1, word count in %o2).
  OS << R"(  save %sp,-96,%sp
  clr %l0            ! processed = 0
  add %i0,24,%l2     ! ctx.buffer base
uloop:
  sub %i2,%l0,%g1    ! remaining = n - processed
  cmp %g1,16
  bl utail
  nop
  clr %l1            ! copy one full 16-word block
cploop:
  cmp %l1,16
  bge cpdone
  nop
  add %l0,%l1,%g2
  sll %g2,2,%g2
  ld [%i1+%g2],%g3   ! msg[processed + j]
  sll %l1,2,%g4
  st %g3,[%l2+%g4]   ! ctx.buffer[j]
  inc %l1
  ba cploop
  nop
cpdone:
  clr %l1            ! byte-order fixup pass over the block
swloop:
  cmp %l1,16
  bge swdone
  nop
  sll %l1,2,%g4
  ld [%l2+%g4],%g3
  sll %g3,16,%g2     ! swap the halfwords
  srl %g3,16,%g3
  or %g2,%g3,%g3
  st %g3,[%l2+%g4]
  inc %l1
  ba swloop
  nop
swdone:
  mov %i0,%o0
  call md5_transform
  nop
  add %l0,16,%l0
  ba uloop
  nop
utail:
  clr %l1            ! copy the ragged tail
tloop:
  cmp %l1,%g1
  bge tdone
  nop
  add %l0,%l1,%g2
  sll %g2,2,%g2
  ld [%i1+%g2],%g3
  sll %l1,2,%g4
  st %g3,[%l2+%g4]
  inc %l1
  ba tloop
  nop
tdone:
  mov %i0,%o0
  mov %g1,%o1        ! words already in the buffer
  call md5_pad
  nop
  mov %i0,%o0
  mov %i2,%o1
  call md5_lenenc
  nop
  mov %i0,%o0
  call md5_transform
  nop
  ret
  restore
md5_pad:             ! zero ctx.buffer[words..16)
  save %sp,-96,%sp
  mov %i0,%o0
  mov %i1,%o1
  call md5_clearbuf
  nop
  ret
  restore
md5_clearbuf:        ! (ctx, from)
  add %o0,24,%g6
  mov %o1,%g5
zloop:
  cmp %g5,16
  bge zdone
  nop
  sll %g5,2,%g2
  st %g0,[%g6+%g2]
  inc %g5
  ba zloop
  nop
zdone:
  retl
  nop
md5_lenenc:          ! store the bit count into ctx.count
  save %sp,-96,%sp
  mov %i1,%o0
  call md5_bits
  nop
  st %o0,[%i0+16]
  st %g0,[%i0+20]
  ret
  restore
md5_bits:            ! words -> bits (x32)
  sll %o0,5,%o0
  retl
  nop
md5_transform:       ! one 64-step MD5 block transform
  save %sp,-96,%sp
  add %i0,24,%g7     ! X = ctx.buffer
  ld [%i0+0],%l0     ! a
  ld [%i0+4],%l1     ! b
  ld [%i0+8],%l2     ! c
  ld [%i0+12],%l3    ! d
)";
  static const char *Regs[4] = {"%l0", "%l1", "%l2", "%l3"};
  for (int Step = 0; Step < 64; ++Step) {
    // Rotation of roles: step i updates a, then d, then c, then b.
    const char *A = Regs[(64 - Step) % 4];
    const char *B = Regs[(65 - Step) % 4];
    const char *C = Regs[(66 - Step) % 4];
    const char *D = Regs[(67 - Step) % 4];
    OS << "! step " << Step << "\n";
    emitMd5Step(OS, Step, A, B, C, D);
  }
  OS << R"(  ld [%i0+0],%g1
  add %g1,%l0,%g1
  st %g1,[%i0+0]
  ld [%i0+4],%g1
  add %g1,%l1,%g1
  st %g1,[%i0+4]
  ld [%i0+8],%g1
  add %g1,%l2,%g1
  st %g1,[%i0+8]
  ld [%i0+12],%g1
  add %g1,%l3,%g1
  st %g1,[%i0+12]
  ret
  restore
)";
  return OS.str();
}

CorpusProgram detail::makeMd5() {
  CorpusProgram P;
  P.Name = "MD5";
  P.Asm = md5Asm();
  P.Policy = R"(
struct md5ctx { state: int32 @0 x 4; count: int32 @16 x 2; buffer: int32 @24 x 16 } size 88 align 8
loc ctx : md5ctx state=init
loc me : int32 state=init summary
loc msg : int32[n] state={me}
region H { ctx }
region U { msg, me }
allow H : int32 : r,w,o
allow U : int32 : r,o
allow U : int32[n] : r,f,o
invoke %o0 = &ctx
invoke %o1 = msg
invoke %o2 = n
constraint n >= 1
)";
  P.ExpectSafe = true;
  P.Paper = {883, 11, 5, 2, 6, 0, 135, 6.82, 0.087, 7.04, 13.95};
  return P;
}
