//===- HeapSort.cpp - Interprocedural and manually-inlined heap sort ------===//
//
// Part of mcsafe, a reproduction of "Safety Checking of Machine Code"
// (Xu, Miller, Reps; PLDI 2000).
//
// Two versions of heap sort over a writable host array: HeapSort2 keeps
// heapify/siftdown as functions (three call sites; after inline
// expansion the CFG has four loops, two of them inner), while HeapSort is
// the manually inlined variant with the siftdown body duplicated —
// the pair behind the paper's observation that "verifying an
// interprocedural version of an untrusted program can take less time
// than verifying a manually inlined version".
//
//===----------------------------------------------------------------------===//

#include "corpus/CorpusImpl.h"

using namespace mcsafe;
using namespace mcsafe::corpus;

namespace {

const char *HeapPolicy = R"(
loc e : int32 state=init summary
loc arr : int32[n] state={e}
region V { arr, e }
allow V : int32 : r,w,o
allow V : int32[n] : r,f,o
invoke %o0 = arr
invoke %o1 = n
constraint n >= 1
)";

} // namespace

CorpusProgram detail::makeHeapSort2() {
  CorpusProgram P;
  P.Name = "HeapSort2";
  P.Asm = R"(
  save %sp,-96,%sp
  mov %i0,%o0
  mov %i1,%o1
  call heapify
  nop
  sub %i1,1,%l0      ! last = n-1
sortloop:
  cmp %l0,1
  bl msdone
  nop
  ld [%i0+0],%g1     ! swap a[0] and a[last]
  sll %l0,2,%g2
  ld [%i0+%g2],%g3
  st %g3,[%i0+0]
  st %g1,[%i0+%g2]
  mov %i0,%o0
  mov %l0,%o1        ! heap size shrinks to last
  clr %o2
  call siftdown
  nop
  dec %l0
  ba sortloop
  nop
msdone:
  ret
  restore
heapify:
  save %sp,-96,%sp
  sub %i1,1,%l1      ! i = n-1
hloop:
  cmp %l1,0
  bl hdone
  nop
  mov %i0,%o0
  mov %i1,%o1
  mov %l1,%o2
  call siftdown
  nop
  dec %l1
  ba hloop
  nop
hdone:
  ret
  restore
siftdown:            ! (base, size, i), a leaf function
sloop:
  sll %o2,1,%g1
  add %g1,1,%g1      ! c = 2i+1
  cmp %g1,%o1
  bge sdone
  nop
  sll %g1,2,%g2
  ld [%o0+%g2],%g3   ! a[c]
  add %g1,1,%o3
  cmp %o3,%o1
  bge skipr
  nop
  sll %o3,2,%g4
  ld [%o0+%g4],%o4   ! a[c+1]
  cmp %o4,%g3
  ble skipr
  nop
  mov %o3,%g1        ! the right child is larger
  mov %o4,%g3
skipr:
  sll %o2,2,%o5
  ld [%o0+%o5],%o4   ! a[i]
  cmp %o4,%g3
  bge sdone
  nop
  st %g3,[%o0+%o5]   ! sift the larger child up
  sll %g1,2,%g2
  st %o4,[%o0+%g2]
  mov %g1,%o2        ! descend: i = c
  ba sloop
  nop
sdone:
  retl
  nop
)";
  P.Policy = HeapPolicy;
  P.ExpectSafe = true;
  P.Paper = {71, 9, 4, 2, 3, 0, 56, 0.12, 0.010, 2.05, 2.18};
  return P;
}

CorpusProgram detail::makeHeapSort() {
  CorpusProgram P;
  P.Name = "HeapSort";
  P.Asm = R"(
  mov %o0,%o4        ! base
  mov %o1,%o5        ! n
  sub %o5,1,%g4      ! i = n-1 (heapify)
hloop:
  cmp %g4,0
  bl hdone
  nop
  mov %g4,%g5        ! j = i  -- first inlined siftdown
s1loop:
  sll %g5,1,%g1
  add %g1,1,%g1      ! c = 2j+1
  cmp %g1,%o5
  bge s1done
  nop
  sll %g1,2,%g2
  ld [%o4+%g2],%g3   ! a[c]
  add %g1,1,%o3
  cmp %o3,%o5
  bge s1skipr
  nop
  sll %o3,2,%g2
  ld [%o4+%g2],%o2   ! a[c+1]
  cmp %o2,%g3
  ble s1skipr
  nop
  mov %o3,%g1
  mov %o2,%g3
s1skipr:
  sll %g5,2,%o0
  ld [%o4+%o0],%o2   ! a[j]
  cmp %o2,%g3
  bge s1done
  nop
  st %g3,[%o4+%o0]
  sll %g1,2,%g2
  st %o2,[%o4+%g2]
  mov %g1,%g5
  ba s1loop
  nop
s1done:
  dec %g4
  ba hloop
  nop
hdone:
  sub %o5,1,%g4      ! last = n-1 (sort phase)
sortloop:
  cmp %g4,1
  bl alldone
  nop
  ld [%o4+0],%g1     ! swap a[0] and a[last]
  sll %g4,2,%g2
  ld [%o4+%g2],%g3
  st %g3,[%o4+0]
  st %g1,[%o4+%g2]
  clr %g5            ! j = 0 -- second inlined siftdown (size = last)
s2loop:
  sll %g5,1,%g1
  add %g1,1,%g1
  cmp %g1,%g4
  bge s2done
  nop
  sll %g1,2,%g2
  ld [%o4+%g2],%g3
  add %g1,1,%o3
  cmp %o3,%g4
  bge s2skipr
  nop
  sll %o3,2,%g2
  ld [%o4+%g2],%o2
  cmp %o2,%g3
  ble s2skipr
  nop
  mov %o3,%g1
  mov %o2,%g3
s2skipr:
  sll %g5,2,%o0
  ld [%o4+%o0],%o2
  cmp %o2,%g3
  bge s2done
  nop
  st %g3,[%o4+%o0]
  sll %g1,2,%g2
  st %o2,[%o4+%g2]
  mov %g1,%g5
  ba s2loop
  nop
s2done:
  dec %g4
  ba sortloop
  nop
alldone:
  retl
  nop
)";
  P.Policy = HeapPolicy;
  P.ExpectSafe = true;
  P.Paper = {95, 16, 4, 2, 0, 0, 84, 0.08, 0.010, 3.58, 3.67};
  return P;
}
