//===- Jpvm.cpp - Java_jPVM_addhosts, the JNI interoperation example ------===//
//
// Part of mcsafe, a reproduction of "Safety Checking of Machine Code"
// (Xu, Miller, Reps; PLDI 2000).
//
// A JNI native method that fetches host names from a Java string array,
// hands them to PVM, and reports the task ids back — "we verify that
// calls into JNI methods and PVM library functions are safe, i.e., they
// obey the safety preconditions". All twenty-one call sites go to
// trusted-function summaries.
//
// The example also reproduces the imprecision the paper reports for
// jPVM: UTF pointers are parked in a host scratch array, whose single
// summary location only admits weak updates, so the reload in the release
// loop comes back possibly-uninitialized and the checker flags the
// parameter ("our analysis reported that some actual parameters to the
// host methods and functions are undefined ... when they were in fact
// defined").
//
//===----------------------------------------------------------------------===//

#include "corpus/CorpusImpl.h"

using namespace mcsafe;
using namespace mcsafe::corpus;

CorpusProgram detail::makeJpvm() {
  CorpusProgram P;
  P.Name = "jPVM";
  P.Asm = R"(
  save %sp,-96,%sp
  mov %i0,%o0
  call jni_GetVersion
  nop
  mov %i0,%o0
  mov %i1,%o1
  call jni_GetArrayLength
  nop
  mov %o0,%l0          ! len
  tst %l0
  ble out
  nop
  cmp %l0,16           ! clamp to the scratch capacity
  ble lenok
  nop
  mov 16,%l0
lenok:
  clr %l1              ! loop 1: fetch UTF strings
loop1:
  cmp %l1,%l0
  bge endl1
  nop
  mov %i0,%o0
  mov %i1,%o1
  mov %l1,%o2
  call jni_GetObjectArrayElement
  nop
  mov %o0,%l2          ! jstring, may be null
  cmp %l2,0
  be skip1
  nop
  mov %i0,%o0
  mov %l2,%o1
  call jni_GetStringUTFChars
  nop
  sll %l1,2,%g2
  st %o0,[%i2+%g2]     ! sarr[i] = utf (weak: summary location)
skip1:
  inc %l1
  ba loop1
  nop
endl1:
  clr %l1              ! loop 2: clear the tid results
loop2:
  cmp %l1,%l0
  bge endl2
  nop
  sll %l1,2,%g2
  st %g0,[%i3+%g2]     ! tids[i] = 0
  inc %l1
  ba loop2
  nop
endl2:
  call pvm_mytid
  nop
  tst %o0
  bneg errexit
  nop
  call pvm_config
  nop
  mov %i2,%o0
  mov %l0,%o1
  mov %i3,%o2
  call pvm_addhosts
  nop
  mov %o0,%l4          ! info
  clr %l1              ! loop 3: release the strings
loop3:
  cmp %l1,%l0
  bge endl3
  nop
  mov %i0,%o0
  mov %i1,%o1
  mov %l1,%o2
  call jni_GetObjectArrayElement
  nop
  mov %o0,%l2
  cmp %l2,0
  be skip3
  nop
  sll %l1,2,%g2
  ld [%i2+%g2],%o2     ! utf = sarr[i]: summarization makes this "maybe
  mov %i0,%o0          ! uninitialized" (the paper's false positive)
  mov %l2,%o1
  call jni_ReleaseStringUTFChars
  nop
  mov %i0,%o0
  mov %l2,%o1
  call jni_DeleteLocalRef
  nop
skip3:
  inc %l1
  ba loop3
  nop
endl3:
  mov %i0,%o0
  mov %l0,%o1
  call jni_NewIntArray
  nop
  mov %o0,%l5          ! jintArray result
  mov %i0,%o0
  mov %l5,%o1
  clr %o2
  mov %l0,%o3
  mov %i3,%o4
  call jni_SetIntArrayRegion
  nop
  mov %i0,%o0
  mov %i1,%o1
  call jni_GetIntField
  nop
  mov %i0,%o0
  mov %i1,%o1
  mov %l4,%o2
  call jni_SetIntField
  nop
  mov %i0,%o0
  call jni_ExceptionCheck
  nop
  tst %o0
  be noexc
  nop
  mov %i0,%o0
  call jni_ExceptionClear
  nop
noexc:
  mov %i0,%o0
  call jni_FindClass
  nop
  mov %o0,%l6
  mov %i0,%o0
  mov %l6,%o1
  call jni_GetMethodID
  nop
  mov %i0,%o0
  mov %l6,%o1
  call jni_CallVoidMethod
  nop
  ba out
  nop
errexit:
  call pvm_perror
  nop
  call pvm_exit
  nop
out:
  ret
  restore
)";
  P.Policy = R"(
abstract jnienv size 1024 align 8
abstract jarray size 64 align 8
abstract jstring size 32 align 8
abstract jclass size 32 align 8
loc env : jnienv
loc hosts : jarray
loc str : jstring
loc cls : jclass
loc ia : jarray
loc cbuf : uint8 state=init summary
loc sbuf : uint8* state=uninit summary
loc sarr : uint8*[16] state={sbuf}
loc tid_e : int32 state=uninit summary
loc tids : int32[16] state={tid_e}
region U { sarr, sbuf, tids, tid_e }
allow U : int32 : r,w,o
allow U : uint8* : r,w,o
allow U : uint8*[16] : r,f,o
allow U : int32[16] : r,f,o
invoke %o0 = &env
invoke %o1 = &hosts
invoke %o2 = sarr
invoke %o3 = tids
trusted jni_GetVersion {
  param %o0 : jnienv* state={env} access=o
  returns int32 state=init access=o
}
trusted jni_GetArrayLength {
  param %o0 : jnienv* state={env} access=o
  param %o1 : jarray* state={hosts,ia} access=o
  returns int32 state=init access=o
}
trusted jni_GetObjectArrayElement {
  param %o0 : jnienv* state={env} access=o
  param %o1 : jarray* state={hosts,ia} access=o
  param %o2 : int32
  pre %o2 >= 0
  returns jstring* state={str,null} access=o
}
trusted jni_GetStringUTFChars {
  param %o0 : jnienv* state={env} access=o
  param %o1 : jstring* state={str} access=o
  returns uint8* state={cbuf} access=o
}
trusted jni_ReleaseStringUTFChars {
  param %o0 : jnienv* state={env} access=o
  param %o1 : jstring* state={str} access=o
  param %o2 : uint8* state={cbuf} access=o
}
trusted jni_DeleteLocalRef {
  param %o0 : jnienv* state={env} access=o
  param %o1 : jstring* state={str} access=o
}
trusted jni_NewIntArray {
  param %o0 : jnienv* state={env} access=o
  param %o1 : int32
  pre %o1 >= 0
  returns jarray* state={ia} access=o
}
trusted jni_SetIntArrayRegion {
  param %o0 : jnienv* state={env} access=o
  param %o1 : jarray* state={ia} access=o
  param %o2 : int32
  param %o3 : int32
  pre %o2 >= 0
  pre %o3 >= 0
}
trusted jni_GetIntField {
  param %o0 : jnienv* state={env} access=o
  param %o1 : jarray* state={hosts} access=o
  returns int32 state=init access=o
}
trusted jni_SetIntField {
  param %o0 : jnienv* state={env} access=o
  param %o1 : jarray* state={hosts} access=o
  param %o2 : int32
}
trusted jni_ExceptionCheck {
  param %o0 : jnienv* state={env} access=o
  returns int32 state=init access=o
}
trusted jni_ExceptionClear {
  param %o0 : jnienv* state={env} access=o
}
trusted jni_FindClass {
  param %o0 : jnienv* state={env} access=o
  returns jclass* state={cls} access=o
}
trusted jni_GetMethodID {
  param %o0 : jnienv* state={env} access=o
  param %o1 : jclass* state={cls} access=o
  returns int32 state=init access=o
}
trusted jni_CallVoidMethod {
  param %o0 : jnienv* state={env} access=o
  param %o1 : jclass* state={cls} access=o
}
trusted pvm_mytid {
  returns int32 state=init access=o
}
trusted pvm_config {
  returns int32 state=init access=o
}
trusted pvm_addhosts {
  param %o0 : uint8*[16] state={sbuf} access=fo
  param %o1 : int32
  param %o2 : int32[16] state={tid_e} access=fo
  pre %o1 >= 0
  returns int32 state=init access=o
  writes tids
}
trusted pvm_perror {
}
trusted pvm_exit {
  returns int32 state=init access=o
}
)";
  P.ExpectSafe = false;
  P.ExpectedViolations = {{SafetyKind::TrustedCall, 1}};
  P.Paper = {157, 12, 3, 0, 21, 21, 57, 1.04, 0.032, 4.18, 5.25};
  return P;
}
