//===- SfiPrograms.cpp - Software-fault-isolation mask idioms -------------===//
//
// Part of mcsafe, a reproduction of "Safety Checking of Machine Code"
// (Xu, Miller, Reps; PLDI 2000).
//
// Sandboxing (SFI) guards untrusted memory accesses by and-masking the
// address into the sandbox region (Wahbe et al., SOSP 1993) — the
// motivating client the paper names for reasoning about bitwise
// operations. These programs exercise the known-bits / alignment domain:
// every SAFE entry is provable only because the and-mask both bounds the
// offset (upper bits cleared) and aligns it (lower bits cleared), facts
// the interval domain alone cannot see. With --no-knownbits they all
// (except SfiShift, whose bound survives via the shift's interval
// transfer) degrade to UNSAFE, which is exactly the differential the
// corpus pins.
//
// None of these appear in Figure 9, so PaperRow carries our own measured
// shape with zeroed timing columns.
//
//===----------------------------------------------------------------------===//

#include "corpus/CorpusImpl.h"

using namespace mcsafe;
using namespace mcsafe::corpus;

CorpusProgram detail::makeSfiMask() {
  CorpusProgram P;
  P.Name = "SfiMask";
  // The canonical sandbox idiom: one and-mask makes the byte offset both
  // in-bounds ([0,1020]) and word-aligned (low two bits clear).
  P.Asm = R"(
  and %o1,1020,%o1   ! mask the byte offset into [0,1020], 4-aligned
  ld [%o0+%o1],%o2   ! sandboxed word load
  st %o2,[%o0+%o1]   ! sandboxed word store
  retl
  nop
)";
  P.Policy = R"(
loc e : int32 state=init summary
loc buf : int32[256] state={e}
region V { buf, e }
allow V : int32 : r,w,o
allow V : int32[256] : r,w,f,o
invoke %o0 = buf
invoke %o1 = off
)";
  P.ExpectSafe = true;
  P.Paper = {5, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0};
  return P;
}

CorpusProgram detail::makeSfiMaskLoop() {
  CorpusProgram P;
  P.Name = "SfiMaskLoop";
  // Re-masking inside a loop, the way an SFI rewriter guards an indexed
  // copy. The mask's bound must survive interval widening of the loop
  // counter: the known bits (31..10 and 1..0 clear) are never widened
  // and rederive [0,1020] after the counter goes to +inf.
  P.Asm = R"(
  clr %o1            ! i = 0
loop:
  sll %o1,2,%o2      ! byte offset = 4*i
  and %o2,1020,%o2   ! re-establish the sandbox mask
  ld [%o0+%o2],%g1
  st %g1,[%o0+%o2]
  inc %o1
  cmp %o1,%o3
  bl loop
  nop
  retl
  nop
)";
  P.Policy = R"(
loc e : int32 state=init summary
loc buf : int32[256] state={e}
region V { buf, e }
allow V : int32 : r,w,o
allow V : int32[256] : r,w,f,o
invoke %o0 = buf
invoke %o3 = n
constraint n >= 1
)";
  P.ExpectSafe = true;
  P.Paper = {11, 1, 1, 0, 0, 0, 0, 0, 0, 0, 0};
  return P;
}

CorpusProgram detail::makeSfiAndn() {
  CorpusProgram P;
  P.Name = "SfiAndn";
  // Alignment established by andn (and-not): bound first, then clear the
  // low three bits for a doubleword-aligned region.
  P.Asm = R"(
  and %o1,2047,%o1   ! bound the offset to [0,2047]
  andn %o1,7,%o1     ! clear the low three bits: 8-aligned
  ld [%o0+%o1],%o2
  retl
  nop
)";
  P.Policy = R"(
loc e : int32 state=init summary
loc buf : int32[512] state={e}
region V { buf, e }
allow V : int32 : r,o
allow V : int32[512] : r,f,o
invoke %o0 = buf
invoke %o1 = off
)";
  P.ExpectSafe = true;
  P.Paper = {5, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0};
  return P;
}

CorpusProgram detail::makeSfiSethi() {
  CorpusProgram P;
  P.Name = "SfiSethi";
  // The mask itself is materialized the SPARC way, with sethi %hi / or
  // %lo; the domain must track the constant through both to see the
  // eventual and as a sandbox guard.
  P.Asm = R"(
  sethi %hi(8188),%g1
  or %g1,1020,%g1    ! %g1 = 0x1ffc: the sandbox mask
  and %o1,%g1,%o1
  ld [%o0+%o1],%o2
  retl
  nop
)";
  P.Policy = R"(
loc e : int32 state=init summary
loc buf : int32[2048] state={e}
region V { buf, e }
allow V : int32 : r,o
allow V : int32[2048] : r,f,o
invoke %o0 = buf
invoke %o1 = off
)";
  P.ExpectSafe = true;
  P.Paper = {6, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0};
  return P;
}

CorpusProgram detail::makeSfiHalfword() {
  CorpusProgram P;
  P.Name = "SfiHalfword";
  // Halfword accesses need 2-alignment; the mask keeps bit 0 clear.
  P.Asm = R"(
  and %o1,510,%o1    ! [0,510], 2-aligned
  lduh [%o0+%o1],%o2
  sth %o2,[%o0+%o1]
  retl
  nop
)";
  P.Policy = R"(
loc e : uint16 state=init summary
loc buf : uint16[256] state={e}
region V { buf, e }
allow V : uint16 : r,w,o
allow V : uint16[256] : r,w,f,o
invoke %o0 = buf
invoke %o1 = off
)";
  P.ExpectSafe = true;
  P.Paper = {5, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0};
  return P;
}

CorpusProgram detail::makeSfiShift() {
  CorpusProgram P;
  P.Name = "SfiShift";
  // Mask a word index, then scale: alignment comes from the shift, the
  // bound from the mask. (Provable without known bits, via the shift's
  // interval transfer; the divisibility obligation is what needs the
  // bit domain's congruence facts to discharge in the cheap tier.)
  P.Asm = R"(
  and %o1,255,%o1    ! word index in [0,255]
  sll %o1,2,%o1      ! scale to a 4-aligned byte offset
  ld [%o0+%o1],%o2
  retl
  nop
)";
  P.Policy = R"(
loc e : int32 state=init summary
loc buf : int32[256] state={e}
region V { buf, e }
allow V : int32 : r,w,o
allow V : int32[256] : r,w,f,o
invoke %o0 = buf
invoke %o1 = off
)";
  P.ExpectSafe = true;
  P.Paper = {5, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0};
  return P;
}

CorpusProgram detail::makeSfiUnaligned() {
  CorpusProgram P;
  P.Name = "SfiUnaligned";
  // A broken guard: masking aligns the offset, but the +2 skews it onto
  // the residue class 2 mod 4 on *every* execution, so the phase-0
  // lint's must-alignment rule rejects it outright (and, with the lint
  // off, the alignment obligation fails in phase 5).
  P.Asm = R"(
  and %o1,1020,%o1   ! 4-aligned so far
  add %o1,2,%o1      ! skews the offset: = 2 mod 4
  ld [%o0+%o1],%o2
  retl
  nop
)";
  P.Policy = R"(
loc e : int32 state=init summary
loc buf : int32[256] state={e}
region V { buf, e }
allow V : int32 : r,w,o
allow V : int32[256] : r,w,f,o
invoke %o0 = buf
invoke %o1 = off
)";
  P.ExpectSafe = false;
  P.ExpectedViolations = {{SafetyKind::Alignment, 1}};
  P.Paper = {5, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0};
  return P;
}
