//===- SmallPrograms.cpp - Sum, PagingPolicy, timers, Hash, BubbleSort ----===//
//
// Part of mcsafe, a reproduction of "Safety Checking of Machine Code"
// (Xu, Miller, Reps; PLDI 2000).
//
// The six smaller Figure 9 examples. Comments cite the paper's intent for
// each: Sum is the running example (Figure 1); PagingPolicy is the kernel
// extension with the null-pointer bug the checker found; StartTimer and
// StopTimer come from Paradyn's performance-instrumentation suite; Hash
// is a hash-table lookup; BubbleSort exercises nested-loop invariant
// synthesis.
//
//===----------------------------------------------------------------------===//

#include "corpus/CorpusImpl.h"

using namespace mcsafe;
using namespace mcsafe::corpus;

CorpusProgram detail::makeSum() {
  CorpusProgram P;
  P.Name = "Sum";
  P.Asm = R"(
  mov %o0,%o2    ! move %o0 into %o2
  clr %o0        ! set %o0 to zero
  cmp %o0,%o1    ! compare %o0 and %o1
  bge 12         ! branch to 12 if %o0 >= %o1
  clr %g3        ! set %g3 to zero
  sll %g3,2,%g2  ! %g2 = 4 x %g3
  ld [%o2+%g2],%g2
  inc %g3
  cmp %g3,%o1
  bl 6
  add %o0,%g2,%o0
  retl
  nop
)";
  P.Policy = R"(
# Figure 1: e summarizes all elements of the integer array arr.
loc e : int32 state=init summary
loc arr : int32[n] state={e}
region V { arr, e }
allow V : int32 : r,o
allow V : int32[n] : r,f,o
invoke %o0 = arr
invoke %o1 = n
constraint n >= 1
)";
  P.ExpectSafe = true;
  P.Paper = {13, 2, 1, 0, 0, 0, 4, 0.01, 0.001, 0.05, 0.06};
  return P;
}

CorpusProgram detail::makePagingPolicy() {
  CorpusProgram P;
  P.Name = "PagingPolicy";
  // A kernel extension implementing a second-chance page-replacement
  // scan. The bug the paper reports: the extension dereferences the list
  // head without a null check ("it attempts to dereference a pointer
  // that could be null").
  P.Asm = R"(
  clr %o4          ! victim pfn = 0
  cmp %o1,0        ! no passes requested?
  ble 19
  nop
pass:
  mov %o0,%o2      ! p = head -- head may be null, never checked
scan:
  ld [%o2+4],%g1   ! p->refbit   <- null dereference
  cmp %g1,0
  bne 11
  nop
  ld [%o2+0],%o4   ! victim = p->pfn
  ld [%o2+8],%o2   ! p = p->next
  cmp %o2,0
  bne scan
  nop
  dec %o1
  cmp %o1,0
  bg pass
  nop
  mov %o4,%o0
  retl
  nop
)";
  P.Policy = R"(
struct page { pfn: int32 @0; refbit: int32 @4; next: page* @8 } size 12 align 4
loc pg : page state={pg,null} summary
loc head : page* state={pg,null}
region H { pg, head }
allow H : int32 : r,o
allow H : page* : r,f,o
invoke %o0 = head
invoke %o1 = np
constraint np >= 1
)";
  P.ExpectSafe = false;
  P.ExpectedViolations = {{SafetyKind::NullDereference, 1}};
  P.Paper = {20, 5, 2, 1, 0, 0, 9, 0.06, 0.003, 0.41, 0.47};
  return P;
}

CorpusProgram detail::makeStartTimer() {
  CorpusProgram P;
  P.Name = "StartTimer";
  // Paradyn-style instrumentation: bump a host counter and start a wall
  // timer through the trusted instrumentation entry point when the
  // counter goes 0 -> 1.
  P.Asm = R"(
  save %sp,-96,%sp
  ld [%i0+0],%g1   ! ctr.count
  inc %g1
  st %g1,[%i0+0]
  cmp %g1,1
  bne 15
  nop
  ld [%i0+4],%g2   ! ctr.active
  inc %g2
  st %g2,[%i0+4]
  mov %i1,%o0
  call DYNINSTstartWallTimer
  nop
  st %g0,[%i0+8]   ! ctr.overflow = 0
  ret
  restore
)";
  P.Policy = R"(
abstract timer size 40 align 8
struct counter { count: int32 @0; active: int32 @4; overflow: int32 @8 } size 12 align 4
loc ctr : counter state=init
loc tmr : timer
region H { ctr, tmr }
allow H : int32 : r,w,o
invoke %o0 = &ctr
invoke %o1 = &tmr
trusted DYNINSTstartWallTimer {
  param %o0 : timer* state={tmr} access=o
  pre %o0 > 0
}
)";
  P.ExpectSafe = true;
  P.Paper = {22, 1, 0, 0, 1, 1, 13, 0.02, 0.004, 0.06, 0.08};
  return P;
}

CorpusProgram detail::makeHash() {
  CorpusProgram P;
  P.Name = "Hash";
  // Hash-table lookup: a trusted hash function produces an index that is
  // range-checked before indexing the bucket array, then the chain is
  // walked with proper null tests.
  P.Asm = R"(
  save %sp,-96,%sp
  mov %i0,%o0
  call hash_index
  nop
  tst %o0          ! index must be nonnegative
  bneg 26
  nop
  cmp %o0,%i2      ! ... and below the table size
  bge 26
  nop
  sll %o0,2,%g2
  ld [%i1+%g2],%o2 ! bucket head
loop:
  cmp %o2,0
  be 26
  nop
  ld [%o2+0],%g1   ! e->key
  cmp %g1,%i0
  be 23
  nop
  ld [%o2+8],%o2   ! e = e->next
  ba loop
  nop
  ld [%o2+4],%i0   ! hit: return e->val
  ret
  restore
  clr %i0          ! miss: return 0
  ret
  restore
)";
  P.Policy = R"(
struct entry { key: int32 @0; val: int32 @4; next: entry* @8 } size 12 align 4
loc ent : entry state={ent,null} summary
loc bkt : entry* state={ent,null} summary
loc buckets : entry*[m] state={bkt}
region H { ent, bkt, buckets }
allow H : int32 : r,o
allow H : entry* : r,f,o
allow H : entry*[m] : r,f,o
invoke %o0 = key
invoke %o1 = buckets
invoke %o2 = m
constraint m >= 1
trusted hash_index {
  param %o0 : int32
  returns int32 state=init access=o
}
)";
  P.ExpectSafe = true;
  P.Paper = {25, 4, 1, 0, 1, 1, 14, 0.04, 0.004, 0.35, 0.39};
  return P;
}

CorpusProgram detail::makeBubbleSort() {
  CorpusProgram P;
  P.Name = "BubbleSort";
  // In-place bubble sort over a writable host array; the inner bounds
  // checks need invariants that relate the inner index, the shrinking
  // outer bound, and the array length.
  P.Asm = R"(
  mov %o0,%o4      ! base
  sub %o1,1,%o5    ! i = n-1
outer:
  cmp %o5,0
  ble 23
  nop
  clr %g4          ! j = 0
inner:
  sll %g4,2,%g2
  ld [%o4+%g2],%g1 ! a[j]
  add %g2,4,%g3
  ld [%o4+%g3],%o3 ! a[j+1]
  cmp %g1,%o3
  ble 16
  nop
  st %o3,[%o4+%g2] ! swap
  st %g1,[%o4+%g3]
  inc %g4
  cmp %g4,%o5
  bl inner
  nop
  dec %o5
  ba outer
  nop
  retl
  nop
)";
  P.Policy = R"(
loc e : int32 state=init summary
loc arr : int32[n] state={e}
region V { arr, e }
allow V : int32 : r,w,o
allow V : int32[n] : r,f,o
invoke %o0 = arr
invoke %o1 = n
constraint n >= 1
)";
  P.ExpectSafe = true;
  P.Paper = {25, 5, 2, 1, 0, 0, 19, 0.03, 0.002, 0.45, 0.48};
  return P;
}

CorpusProgram detail::makeStopTimer() {
  CorpusProgram P;
  P.Name = "StopTimer";
  // The converse instrumentation snippet: decrement the counter, stop
  // the wall timer when it reaches zero, and report the sample through a
  // second trusted entry point.
  P.Asm = R"(
  save %sp,-96,%sp
  ld [%i0+0],%g1     ! ctr.count
  cmp %g1,0
  ble 28
  nop
  dec %g1
  st %g1,[%i0+0]
  cmp %g1,0
  bne 26
  nop
  mov %i1,%o0
  call DYNINSTstopWallTimer
  nop
  ld [%i0+4],%g2     ! ctr.active
  dec %g2
  st %g2,[%i0+4]
  ld [%i0+8],%g3     ! ctr.samples
  inc %g3
  st %g3,[%i0+8]
  mov %i1,%o0
  mov %g3,%o1
  call DYNINSTreportTimer
  nop
  ba 26
  nop
  ret                ! common exit
  restore
  clr %g1            ! underflow: clamp the counter at zero
  st %g1,[%i0+0]
  ba 26
  nop
)";
  P.Policy = R"(
abstract timer size 40 align 8
struct counter { count: int32 @0; active: int32 @4; samples: int32 @8 } size 12 align 4
loc ctr : counter state=init
loc tmr : timer
region H { ctr, tmr }
allow H : int32 : r,w,o
invoke %o0 = &ctr
invoke %o1 = &tmr
trusted DYNINSTstopWallTimer {
  param %o0 : timer* state={tmr} access=o
  pre %o0 > 0
}
trusted DYNINSTreportTimer {
  param %o0 : timer* state={tmr} access=o
  param %o1 : int32
  pre %o0 > 0
}
)";
  P.ExpectSafe = true;
  P.Paper = {36, 3, 0, 0, 2, 2, 17, 0.04, 0.005, 0.08, 0.13};
  return P;
}
