//===- Policy.cpp ---------------------------------------------------------===//

#include "policy/Policy.h"

using namespace mcsafe;
using namespace mcsafe::policy;

VarId policy::regValueVar(int32_t Depth, sparc::Reg R) {
  if (R.isGlobal())
    Depth = 0; // Globals are shared across windows.
  return varId("w" + std::to_string(Depth) + "." + R.name());
}

VarId policy::locValueVar(const std::string &LocName) {
  return varId("val:" + LocName);
}

VarId policy::locAddrVar(const std::string &LocName) {
  return varId("addr:" + LocName);
}

VarId policy::iccVar() { return varId("icc"); }
