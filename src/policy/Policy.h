//===- Policy.h - Host typestate spec, invocation spec, access policy -*-C++-*-===//
//
// Part of mcsafe, a reproduction of "Safety Checking of Machine Code"
// (Xu, Miller, Reps; PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The host-side inputs of the safety-checking analysis (paper Section 2):
///
///   - the *host-typestate specification*: named types, the abstract
///     locations of host data with their types and states, and
///     pre/post-conditions for callable host functions (trusted-function
///     summaries);
///   - the *invocation specification*: the initial register bindings and
///     linear constraints that hold when the untrusted code is entered;
///   - the *access policy*: a classification of locations into regions
///     and [Region : Category : Access] triples granting r/w/f/x/o.
///
/// All of these are host-provided data; the untrusted code itself is never
/// annotated.
///
//===----------------------------------------------------------------------===//

#ifndef MCSAFE_POLICY_POLICY_H
#define MCSAFE_POLICY_POLICY_H

#include "constraints/Formula.h"
#include "sparc/Registers.h"
#include "typestate/Typestate.h"

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace mcsafe {
namespace policy {

/// Declarative initial state of a value.
struct StateSpec {
  enum class Kind : uint8_t { Uninit, Init, Null, PointsTo };
  Kind K = Kind::Uninit;
  std::optional<int64_t> Const; ///< For Init with a known constant.
  /// Target location names (+ byte offsets) for PointsTo.
  std::vector<std::pair<std::string, int64_t>> Targets;
  bool MayBeNull = false;
};

/// One declared host abstract location.
struct LocationDecl {
  std::string Name;
  typestate::TypeRef Type;
  StateSpec State; ///< Applied to every scalar leaf.
  /// The location summarizes several physical locations (array element
  /// summaries); writes to it are weak.
  bool Summary = false;
};

/// One [Region : Category : Access] triple.
struct AccessRule {
  std::string Region;
  bool MatchAll = false;                ///< Category "*".
  typestate::TypeRef Type;              ///< Category by type (may be null).
  std::string StructName, FieldName;    ///< Category "struct.field".
  bool R = false, W = false, F = false, X = false, O = false;
};

/// One initial register binding of the invocation specification.
struct InvocationBinding {
  sparc::Reg Reg;
  enum class Kind : uint8_t {
    ValueOfLoc,   ///< Register receives the value stored in a location.
    AddressOfLoc, ///< Register receives the address of a location.
    Symbol,       ///< Register holds an unknown value named by a symbol.
    Literal,      ///< Register holds a compile-time constant.
  };
  Kind K = Kind::Symbol;
  std::string LocName;
  VarId Sym;
  int64_t Literal = 0;
  int64_t Offset = 0; ///< Extra byte offset for AddressOfLoc.
};

/// Required typestate of one parameter of a trusted function.
struct TrustedParam {
  sparc::Reg Reg;
  typestate::TypeRef Type;
  StateSpec State;
  typestate::Access Access;
};

/// Pre/post-condition summary of a callable host function (the control
/// aspect of the host-typestate specification).
struct TrustedSummary {
  std::string Name;
  std::vector<TrustedParam> Params;
  /// Linear precondition over entry-register variables "w0.%oN" and
  /// symbolic constants; instantiated at the caller's window depth.
  FormulaRef Pre;
  /// Return-value typestate (delivered in %o0); null type = void.
  typestate::TypeRef ReturnType;
  StateSpec ReturnState;
  typestate::Access ReturnAccess;
  /// Host locations the function may overwrite (weak update to
  /// initialized).
  std::vector<std::string> Writes;
};

/// A complete safety policy + host typestate + invocation specification.
struct Policy {
  std::map<std::string, typestate::TypeRef> NamedTypes;
  std::vector<LocationDecl> Locations;
  /// Region name -> member location names (children are included via
  /// their parents).
  std::map<std::string, std::vector<std::string>> Regions;
  std::vector<AccessRule> Rules;
  std::vector<InvocationBinding> Invocation;
  /// Initial linear constraints (conjoined); invocation bindings add
  /// equalities automatically.
  std::vector<FormulaRef> Constraints;
  std::map<std::string, TrustedSummary> Trusted;
  /// Function entry (label, or 1-based statement number as a string) ->
  /// named struct type describing its stack frame.
  std::map<std::string, std::string> FrameTypes;

  /// Safety postcondition (Section 2: "a safety policy can also include
  /// a safety postcondition ... for ensuring that certain invariants
  /// defined on the host data are restored by the time control is
  /// returned to the host").
  /// Linear constraints that must hold when the untrusted code returns;
  /// register names denote exit values, "val:" variables location
  /// contents.
  std::vector<FormulaRef> PostConstraints;
  /// Required value states of host locations at exit (location name ->
  /// state).
  std::vector<std::pair<std::string, StateSpec>> PostStates;

  /// A security automaton over trusted-call events (the paper relates
  /// typestates to security automata, Section 1: "the automaton detects
  /// a security-policy violation whenever [it] read[s] a symbol for which
  /// the automaton's current state has no transition defined").
  struct Automaton {
    std::string Name;
    std::vector<std::string> States;
    uint32_t Start = 0;
    /// (from-state, to-state, trusted-function name).
    struct Transition {
      uint32_t From;
      uint32_t To;
      std::string Event;
    };
    std::vector<Transition> Transitions;
    /// States allowed when control returns to the host; empty = all.
    std::vector<uint32_t> Final;

    int32_t stateIndex(const std::string &Name) const {
      for (uint32_t I = 0; I < States.size(); ++I)
        if (States[I] == Name)
          return static_cast<int32_t>(I);
      return -1;
    }
    /// Is \p Event part of this automaton's alphabet?
    bool observes(const std::string &Event) const {
      for (const Transition &T : Transitions)
        if (T.Event == Event)
          return true;
      return false;
    }
  };
  std::vector<Automaton> Automata;

  const TrustedSummary *findTrusted(const std::string &Name) const {
    auto It = Trusted.find(Name);
    return It == Trusted.end() ? nullptr : &It->second;
  }
};

/// The canonical formula variable for the value of a register at a given
/// window depth, e.g. "w0.%o1". Used by the invocation constraints and by
/// all of the checker's wlp machinery.
VarId regValueVar(int32_t Depth, sparc::Reg R);

/// The canonical formula variable for the value stored in an abstract
/// location, e.g. "val:e".
VarId locValueVar(const std::string &LocName);

/// The canonical formula variable for the (symbolic) address of an
/// abstract location, e.g. "addr:arr".
VarId locAddrVar(const std::string &LocName);

/// The formula variable for the integer condition codes.
VarId iccVar();

} // namespace policy
} // namespace mcsafe

#endif // MCSAFE_POLICY_POLICY_H
