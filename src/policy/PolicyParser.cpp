//===- PolicyParser.cpp ---------------------------------------------------===//

#include "policy/PolicyParser.h"

#include "support/StringUtils.h"

#include <cassert>
#include <cctype>
#include <cstdint>
#include <sstream>

using namespace mcsafe;
using namespace mcsafe::policy;
using namespace mcsafe::typestate;

namespace {

/// A token of the policy language.
struct Token {
  enum class Kind : uint8_t {
    Ident,  ///< Identifiers, including %-registers and ground type names.
    Int,
    Punct,  ///< Single punctuation char, or a two-char comparison.
    End,
  };
  Kind K = Kind::End;
  std::string Text;
  int64_t Value = 0;
  /// The literal did not fit in int64 — the parser must reject it rather
  /// than silently compute with a clamped value.
  bool Overflow = false;
};

class Tokenizer {
public:
  explicit Tokenizer(std::string_view S) : S(S) {}

  Token next() {
    skipSpace();
    if (Pos >= S.size())
      return {};
    char C = S[Pos];
    Token T;
    if (std::isdigit(static_cast<unsigned char>(C))) {
      size_t B = Pos;
      if (C == '0' && Pos + 1 < S.size() &&
          (S[Pos + 1] == 'x' || S[Pos + 1] == 'X')) {
        Pos += 2;
        while (Pos < S.size() &&
               std::isxdigit(static_cast<unsigned char>(S[Pos])))
          ++Pos;
      } else {
        while (Pos < S.size() &&
               std::isdigit(static_cast<unsigned char>(S[Pos])))
          ++Pos;
      }
      T.K = Token::Kind::Int;
      T.Text = std::string(S.substr(B, Pos - B));
      if (std::optional<int64_t> V = parseInt(T.Text))
        T.Value = *V;
      else
        T.Overflow = true;
      return T;
    }
    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_' ||
        C == '%' || C == '$') {
      size_t B = Pos;
      ++Pos;
      while (Pos < S.size() &&
             (std::isalnum(static_cast<unsigned char>(S[Pos])) ||
              S[Pos] == '_' || S[Pos] == '.' || S[Pos] == '$'))
        ++Pos;
      T.K = Token::Kind::Ident;
      T.Text = std::string(S.substr(B, Pos - B));
      return T;
    }
    // Two-character comparisons.
    if ((C == '<' || C == '>' || C == '!' || C == '=') && Pos + 1 < S.size() &&
        S[Pos + 1] == '=') {
      T.K = Token::Kind::Punct;
      T.Text = std::string(S.substr(Pos, 2));
      Pos += 2;
      return T;
    }
    T.K = Token::Kind::Punct;
    T.Text = std::string(1, C);
    ++Pos;
    return T;
  }

private:
  void skipSpace() {
    while (Pos < S.size() &&
           std::isspace(static_cast<unsigned char>(S[Pos])))
      ++Pos;
  }
  std::string_view S;
  size_t Pos = 0;
};

/// Token cursor with one-token lookahead.
class Cursor {
public:
  explicit Cursor(std::string_view S) : Tok(S) { Cur = Tok.next(); }

  const Token &peek() const { return Cur; }
  Token take() {
    Token T = Cur;
    Cur = Tok.next();
    return T;
  }
  bool atEnd() const { return Cur.K == Token::Kind::End; }
  bool isPunct(const char *P) const {
    return Cur.K == Token::Kind::Punct && Cur.Text == P;
  }
  bool isIdent(const char *I) const {
    return Cur.K == Token::Kind::Ident && Cur.Text == I;
  }
  bool eatPunct(const char *P) {
    if (!isPunct(P))
      return false;
    take();
    return true;
  }
  bool eatIdent(const char *I) {
    if (!isIdent(I))
      return false;
    take();
    return true;
  }

private:
  Tokenizer Tok;
  Token Cur;
};

class Parser {
public:
  explicit Parser(std::string_view Source) : Source(Source) {}

  std::optional<Policy> run(std::string *Error);

private:
  bool fail(const std::string &Message) {
    ErrorMessage = "line " + std::to_string(CurLine) + ": " + Message;
    return false;
  }

  bool parseStatement(std::string_view Stmt);
  bool parseStruct(Cursor &C, bool IsUnion);
  bool parseAbstract(Cursor &C);
  bool parseLoc(Cursor &C);
  bool parseRegion(Cursor &C);
  bool parseAllow(Cursor &C);
  bool parseInvoke(Cursor &C);
  bool parseConstraintStmt(Cursor &C);
  bool parseTrusted(Cursor &C);
  bool parseFrame(Cursor &C);
  bool parseAutomaton(Cursor &C);

  std::optional<int64_t> takeInt(Cursor &C, const char *What);
  std::optional<uint32_t> takeU32(Cursor &C, const char *What);

  std::optional<TypeRef> parseType(Cursor &C);
  std::optional<StateSpec> parseStateSpec(Cursor &C);
  bool parsePerms(Cursor &C, bool &R, bool &W, bool &F, bool &X, bool &O);
  std::optional<FormulaRef> parseConstraintExpr(Cursor &C);
  std::optional<LinearExpr> parseSum(Cursor &C);
  std::optional<LinearExpr> parseTerm(Cursor &C);

  bool isGroundName(const std::string &Name, GroundKind &K) const;

  std::string_view Source;
  std::string ErrorMessage;
  uint32_t CurLine = 0;
  Policy P;
};

bool Parser::isGroundName(const std::string &Name, GroundKind &K) const {
  if (Name == "int8")
    K = GroundKind::Int8;
  else if (Name == "uint8")
    K = GroundKind::UInt8;
  else if (Name == "int16")
    K = GroundKind::Int16;
  else if (Name == "uint16")
    K = GroundKind::UInt16;
  else if (Name == "int32" || Name == "int")
    K = GroundKind::Int32;
  else if (Name == "uint32" || Name == "uint")
    K = GroundKind::UInt32;
  else
    return false;
  return true;
}

/// Consumes the current token as an integer literal. Fails (with the
/// token position's line) when the token is not an integer or the
/// literal overflows int64 — `parseInt` returns nullopt in that case and
/// the old `.value_or(0)` fallback silently turned 99999999999999999999
/// into 0.
std::optional<int64_t> Parser::takeInt(Cursor &C, const char *What) {
  if (C.peek().K != Token::Kind::Int) {
    fail(std::string("expected ") + What);
    return std::nullopt;
  }
  if (C.peek().Overflow) {
    fail("integer literal '" + C.peek().Text + "' is out of range");
    return std::nullopt;
  }
  return C.take().Value;
}

/// takeInt narrowed to uint32 — offsets, sizes, counts, and alignments
/// are stored in 32 bits, and an unchecked static_cast would quietly
/// wrap 0x100000004 to 4.
std::optional<uint32_t> Parser::takeU32(Cursor &C, const char *What) {
  std::optional<int64_t> V = takeInt(C, What);
  if (!V)
    return std::nullopt;
  if (*V < 0 || *V > static_cast<int64_t>(UINT32_MAX)) {
    fail(std::string(What) + " " + std::to_string(*V) +
         " does not fit in 32 bits");
    return std::nullopt;
  }
  return static_cast<uint32_t>(*V);
}

std::optional<TypeRef> Parser::parseType(Cursor &C) {
  if (C.peek().K != Token::Kind::Ident) {
    fail("expected a type, got '" + C.peek().Text + "'");
    return std::nullopt;
  }
  std::string Base = C.take().Text;
  TypeRef T;
  GroundKind G;
  if (isGroundName(Base, G)) {
    T = TypeFactory::ground(G);
  } else if (Base == "func") {
    if (C.peek().K != Token::Kind::Ident) {
      fail("expected a summary name after 'func'");
      return std::nullopt;
    }
    T = TypeFactory::func(C.take().Text);
  } else {
    auto It = P.NamedTypes.find(Base);
    if (It == P.NamedTypes.end()) {
      fail("unknown type '" + Base + "'");
      return std::nullopt;
    }
    T = It->second;
  }
  // Suffixes: * (pointer), [n] (array base), (n] (array interior).
  while (true) {
    if (C.eatPunct("*")) {
      T = TypeFactory::ptr(T);
      continue;
    }
    if (C.isPunct("[") || C.isPunct("(")) {
      bool Interior = C.isPunct("(");
      C.take();
      ArraySize Size;
      if (C.peek().K == Token::Kind::Int) {
        std::optional<int64_t> N = takeInt(C, "an array size");
        if (!N)
          return std::nullopt;
        if (*N < 0) {
          fail("array size must be non-negative");
          return std::nullopt;
        }
        Size = ArraySize::literal(*N);
      } else if (C.peek().K == Token::Kind::Ident) {
        Size = ArraySize::symbolic(varId(C.take().Text));
      } else {
        fail("expected an array size");
        return std::nullopt;
      }
      if (!C.eatPunct("]")) {
        fail("expected ']' after array size");
        return std::nullopt;
      }
      T = Interior ? TypeFactory::arrayInterior(T, Size)
                   : TypeFactory::arrayBase(T, Size);
      continue;
    }
    break;
  }
  return T;
}

std::optional<StateSpec> Parser::parseStateSpec(Cursor &C) {
  StateSpec S;
  if (C.eatIdent("uninit")) {
    S.K = StateSpec::Kind::Uninit;
    return S;
  }
  if (C.eatIdent("init")) {
    S.K = StateSpec::Kind::Init;
    if (C.eatPunct("(")) {
      bool Neg = C.eatPunct("-");
      std::optional<int64_t> V = takeInt(C, "a constant in init(...)");
      if (!V)
        return std::nullopt;
      S.Const = (Neg ? -1 : 1) * *V;
      if (!C.eatPunct(")")) {
        fail("expected ')' after init constant");
        return std::nullopt;
      }
    }
    return S;
  }
  if (C.eatIdent("null")) {
    S.K = StateSpec::Kind::Null;
    S.MayBeNull = true;
    return S;
  }
  if (C.eatPunct("{")) {
    S.K = StateSpec::Kind::PointsTo;
    while (!C.eatPunct("}")) {
      if (C.eatIdent("null")) {
        S.MayBeNull = true;
      } else if (C.peek().K == Token::Kind::Ident) {
        std::string Name = C.take().Text;
        int64_t Offset = 0;
        if (C.eatPunct("+")) {
          std::optional<int64_t> V = takeInt(C, "a byte offset after '+'");
          if (!V)
            return std::nullopt;
          Offset = *V;
        }
        S.Targets.emplace_back(Name, Offset);
      } else {
        fail("expected a location name in points-to set");
        return std::nullopt;
      }
      if (!C.eatPunct(",") && !C.isPunct("}")) {
        fail("expected ',' or '}' in points-to set");
        return std::nullopt;
      }
    }
    return S;
  }
  fail("expected a state (uninit | init | init(k) | null | {locs})");
  return std::nullopt;
}

bool Parser::parsePerms(Cursor &C, bool &R, bool &W, bool &F, bool &X,
                        bool &O) {
  R = W = F = X = O = false;
  bool Any = false;
  while (C.peek().K == Token::Kind::Ident) {
    for (char P : C.take().Text) {
      switch (P) {
      case 'r':
        R = true;
        break;
      case 'w':
        W = true;
        break;
      case 'f':
        F = true;
        break;
      case 'x':
        X = true;
        break;
      case 'o':
        O = true;
        break;
      default:
        return fail(std::string("unknown permission '") + P + "'");
      }
    }
    Any = true;
    if (!C.eatPunct(","))
      break;
  }
  if (!Any && C.eatPunct("-"))
    Any = true; // "-" = no permissions.
  if (!Any)
    return fail("expected permissions (subset of r,w,f,x,o or '-')");
  return true;
}

std::optional<LinearExpr> Parser::parseTerm(Cursor &C) {
  bool Neg = false;
  while (C.eatPunct("-"))
    Neg = !Neg;
  LinearExpr E;
  if (C.peek().K == Token::Kind::Int) {
    std::optional<int64_t> Lit = takeInt(C, "a constant");
    if (!Lit)
      return std::nullopt;
    int64_t V = *Lit;
    if (C.eatPunct("*")) {
      if (C.peek().K != Token::Kind::Ident) {
        fail("expected an identifier after '*'");
        return std::nullopt;
      }
      std::string Name = C.take().Text;
      std::optional<sparc::Reg> R = sparc::parseReg(Name);
      VarId V2 = R ? regValueVar(0, *R) : varId(Name);
      E = LinearExpr::variable(V2).scaled(V);
    } else {
      E = LinearExpr::constant(V);
    }
  } else if (C.peek().K == Token::Kind::Ident) {
    std::string Name = C.take().Text;
    if ((Name == "val" || Name == "addr") && C.isPunct(":")) {
      // val:loc / addr:loc reference a location's contents or address.
      C.take();
      if (C.peek().K != Token::Kind::Ident) {
        fail("expected a location name after '" + Name + ":'");
        return std::nullopt;
      }
      std::string Loc = C.take().Text;
      E = LinearExpr::variable(Name == "val" ? locValueVar(Loc)
                                             : locAddrVar(Loc));
    } else {
      std::optional<sparc::Reg> R = sparc::parseReg(Name);
      E = LinearExpr::variable(R ? regValueVar(0, *R) : varId(Name));
    }
  } else {
    fail("expected a term in a linear expression");
    return std::nullopt;
  }
  return Neg ? -E : E;
}

std::optional<LinearExpr> Parser::parseSum(Cursor &C) {
  std::optional<LinearExpr> E = parseTerm(C);
  if (!E)
    return std::nullopt;
  while (C.isPunct("+") || C.isPunct("-")) {
    bool Minus = C.take().Text == "-";
    std::optional<LinearExpr> T = parseTerm(C);
    if (!T)
      return std::nullopt;
    E = Minus ? *E - *T : *E + *T;
  }
  return E;
}

std::optional<FormulaRef> Parser::parseConstraintExpr(Cursor &C) {
  std::optional<LinearExpr> Lhs = parseSum(C);
  if (!Lhs)
    return std::nullopt;
  // Divisibility: N | expr.
  if (C.isPunct("|")) {
    C.take();
    if (!Lhs->isConstant() || Lhs->constantValue() < 1) {
      fail("the left side of '|' must be a positive constant modulus");
      return std::nullopt;
    }
    std::optional<LinearExpr> Rhs = parseSum(C);
    if (!Rhs)
      return std::nullopt;
    return Formula::atom(Constraint::divides(Lhs->constantValue(), *Rhs));
  }
  if (C.peek().K != Token::Kind::Punct) {
    fail("expected a comparison operator");
    return std::nullopt;
  }
  std::string Op = C.take().Text;
  std::optional<LinearExpr> Rhs = parseSum(C);
  if (!Rhs)
    return std::nullopt;
  if (Op == "<")
    return Formula::atom(Constraint::lt(*Lhs, *Rhs));
  if (Op == "<=")
    return Formula::atom(Constraint::le(*Lhs, *Rhs));
  if (Op == ">")
    return Formula::atom(Constraint::gt(*Lhs, *Rhs));
  if (Op == ">=")
    return Formula::atom(Constraint::ge(*Lhs, *Rhs));
  if (Op == "=" || Op == "==")
    return Formula::atom(Constraint::eq(*Lhs, *Rhs));
  if (Op == "!=")
    return Formula::negate(Formula::atom(Constraint::eq(*Lhs, *Rhs)));
  fail("unknown comparison operator '" + Op + "'");
  return std::nullopt;
}

bool Parser::parseStruct(Cursor &C, bool IsUnion) {
  if (C.peek().K != Token::Kind::Ident)
    return fail("expected a struct name");
  std::string Name = C.take().Text;
  if (P.NamedTypes.count(Name))
    return fail("duplicate type '" + Name + "'");
  // Pre-register the (incomplete) type so self-referential pointers work;
  // nominal equality makes the placeholder interchangeable.
  // We first parse into members, then register the final node.
  if (!C.eatPunct("{"))
    return fail("expected '{' after struct name");
  // Placeholder for recursion: a named struct with no members.
  P.NamedTypes[Name] = TypeFactory::strct(Name, {}, 0, 0);

  std::vector<Member> Members;
  while (!C.eatPunct("}")) {
    if (C.eatPunct(";"))
      continue;
    if (C.peek().K != Token::Kind::Ident)
      return fail("expected a field name");
    Member M;
    M.Label = C.take().Text;
    if (!C.eatPunct(":"))
      return fail("expected ':' after field name");
    std::optional<TypeRef> T = parseType(C);
    if (!T)
      return false;
    M.Type = *T;
    if (!C.eatPunct("@"))
      return fail("expected '@offset' for field '" + M.Label + "'");
    std::optional<uint32_t> Off = takeU32(C, "a byte offset");
    if (!Off)
      return false;
    M.Offset = *Off;
    if (C.eatIdent("x")) {
      std::optional<uint32_t> Count =
          takeU32(C, "an element count after 'x'");
      if (!Count)
        return false;
      M.Count = *Count;
      if (M.Count == 0)
        return fail("element count must be positive");
    }
    Members.push_back(std::move(M));
  }
  uint32_t Size = 0, Align = 4;
  if (C.eatIdent("size")) {
    std::optional<uint32_t> V = takeU32(C, "a size");
    if (!V)
      return false;
    Size = *V;
  } else {
    // Default: end of the last field, computed in 64 bits — a large
    // offset or count must not wrap the 32-bit size.
    uint64_t End = 0;
    for (const Member &M : Members)
      End = std::max(End, M.Offset + uint64_t(M.Count) *
                              M.Type->sizeInBytes());
    if (End > UINT32_MAX)
      return fail("struct '" + Name + "' is larger than 32 bits can hold");
    Size = static_cast<uint32_t>(End);
  }
  if (C.eatIdent("align")) {
    std::optional<uint32_t> V = takeU32(C, "an alignment");
    if (!V)
      return false;
    Align = *V;
  }
  P.NamedTypes[Name] = IsUnion
                           ? TypeFactory::unon(Name, std::move(Members),
                                               Size, Align)
                           : TypeFactory::strct(Name, std::move(Members),
                                                Size, Align);
  return true;
}

bool Parser::parseAbstract(Cursor &C) {
  if (C.peek().K != Token::Kind::Ident)
    return fail("expected a type name after 'abstract'");
  std::string Name = C.take().Text;
  if (P.NamedTypes.count(Name))
    return fail("duplicate type '" + Name + "'");
  uint32_t Size = 4, Align = 4;
  if (C.eatIdent("size")) {
    std::optional<uint32_t> V = takeU32(C, "a size");
    if (!V)
      return false;
    Size = *V;
  }
  if (C.eatIdent("align")) {
    std::optional<uint32_t> V = takeU32(C, "an alignment");
    if (!V)
      return false;
    Align = *V;
  }
  P.NamedTypes[Name] = TypeFactory::abstract(Name, Size, Align);
  return true;
}

bool Parser::parseLoc(Cursor &C) {
  if (C.peek().K != Token::Kind::Ident)
    return fail("expected a location name after 'loc'");
  LocationDecl D;
  D.Name = C.take().Text;
  for (const LocationDecl &Existing : P.Locations)
    if (Existing.Name == D.Name)
      return fail("duplicate location '" + D.Name + "'");
  if (!C.eatPunct(":"))
    return fail("expected ':' after location name");
  std::optional<TypeRef> T = parseType(C);
  if (!T)
    return false;
  D.Type = *T;
  D.State.K = StateSpec::Kind::Uninit;
  while (!C.atEnd()) {
    if (C.eatIdent("summary")) {
      D.Summary = true;
      continue;
    }
    if (C.eatIdent("state")) {
      if (!C.eatPunct("="))
        return fail("expected '=' after 'state'");
      std::optional<StateSpec> S = parseStateSpec(C);
      if (!S)
        return false;
      D.State = *S;
      continue;
    }
    return fail("unexpected token '" + C.peek().Text +
                "' in location declaration");
  }
  P.Locations.push_back(std::move(D));
  return true;
}

bool Parser::parseRegion(Cursor &C) {
  if (C.peek().K != Token::Kind::Ident)
    return fail("expected a region name");
  std::string Name = C.take().Text;
  if (!C.eatPunct("{"))
    return fail("expected '{' after region name");
  std::vector<std::string> Members;
  while (!C.eatPunct("}")) {
    if (C.peek().K != Token::Kind::Ident)
      return fail("expected a location name in region");
    Members.push_back(C.take().Text);
    if (!C.eatPunct(",") && !C.isPunct("}"))
      return fail("expected ',' or '}' in region");
  }
  P.Regions[Name] = std::move(Members);
  return true;
}

bool Parser::parseAllow(Cursor &C) {
  AccessRule Rule;
  if (C.peek().K != Token::Kind::Ident)
    return fail("expected a region name after 'allow'");
  Rule.Region = C.take().Text;
  if (!C.eatPunct(":"))
    return fail("expected ':' after region name");
  if (C.eatPunct("*")) {
    Rule.MatchAll = true;
  } else {
    // Either "struct.field" or a type. A dotted identifier is a field
    // category when it names a declared struct.
    if (C.peek().K == Token::Kind::Ident) {
      std::string Text = C.peek().Text;
      size_t Dot = Text.find('.');
      if (Dot != std::string::npos && P.NamedTypes.count(Text.substr(0, Dot))) {
        C.take();
        Rule.StructName = Text.substr(0, Dot);
        Rule.FieldName = Text.substr(Dot + 1);
      } else {
        std::optional<TypeRef> T = parseType(C);
        if (!T)
          return false;
        Rule.Type = *T;
      }
    } else {
      return fail("expected a category (type, struct.field, or '*')");
    }
  }
  if (!C.eatPunct(":"))
    return fail("expected ':' before the permissions");
  if (!parsePerms(C, Rule.R, Rule.W, Rule.F, Rule.X, Rule.O))
    return false;
  P.Rules.push_back(std::move(Rule));
  return true;
}

bool Parser::parseInvoke(Cursor &C) {
  if (C.peek().K != Token::Kind::Ident)
    return fail("expected a register after 'invoke'");
  std::optional<sparc::Reg> R = sparc::parseReg(C.take().Text);
  if (!R)
    return fail("invalid register in 'invoke'");
  InvocationBinding B;
  B.Reg = *R;
  // Two bindings for the same register would make the entry context
  // depend on the order the facts are applied — reject the policy.
  for (const InvocationBinding &Existing : P.Invocation)
    if (Existing.Reg == B.Reg)
      return fail("duplicate 'invoke' binding for register '" +
                  B.Reg.name() + "'");
  if (!C.eatPunct("="))
    return fail("expected '=' in 'invoke'");
  if (C.eatPunct("&")) {
    if (C.peek().K != Token::Kind::Ident)
      return fail("expected a location name after '&'");
    B.K = InvocationBinding::Kind::AddressOfLoc;
    B.LocName = C.take().Text;
    if (C.eatPunct("+")) {
      std::optional<int64_t> V = takeInt(C, "a byte offset");
      if (!V)
        return false;
      B.Offset = *V;
    }
  } else if (C.peek().K == Token::Kind::Int ||
             C.isPunct("-")) {
    bool Neg = C.eatPunct("-");
    std::optional<int64_t> V = takeInt(C, "a literal");
    if (!V)
      return false;
    B.K = InvocationBinding::Kind::Literal;
    B.Literal = (Neg ? -1 : 1) * *V;
  } else if (C.peek().K == Token::Kind::Ident) {
    std::string Name = C.take().Text;
    bool IsLoc = false;
    for (const LocationDecl &D : P.Locations)
      if (D.Name == Name)
        IsLoc = true;
    if (IsLoc) {
      B.K = InvocationBinding::Kind::ValueOfLoc;
      B.LocName = Name;
    } else {
      B.K = InvocationBinding::Kind::Symbol;
      B.Sym = varId(Name);
    }
  } else {
    return fail("expected a location, symbol, or literal after '='");
  }
  P.Invocation.push_back(std::move(B));
  return true;
}

bool Parser::parseConstraintStmt(Cursor &C) {
  std::optional<FormulaRef> F = parseConstraintExpr(C);
  if (!F)
    return false;
  P.Constraints.push_back(*F);
  return true;
}

bool Parser::parseTrusted(Cursor &C) {
  if (C.peek().K != Token::Kind::Ident)
    return fail("expected a function name after 'trusted'");
  TrustedSummary Summary;
  Summary.Name = C.take().Text;
  Summary.Pre = Formula::mkTrue();
  Summary.ReturnAccess = Access::o();
  if (P.Trusted.count(Summary.Name))
    return fail("duplicate trusted function '" + Summary.Name + "'");
  if (!C.eatPunct("{"))
    return fail("expected '{' after trusted function name");
  while (!C.eatPunct("}")) {
    if (C.eatPunct(";"))
      continue;
    if (C.eatIdent("param")) {
      TrustedParam Param;
      Param.Access = Access::o();
      if (C.peek().K != Token::Kind::Ident)
        return fail("expected a register after 'param'");
      std::optional<sparc::Reg> R = sparc::parseReg(C.take().Text);
      if (!R)
        return fail("invalid parameter register");
      Param.Reg = *R;
      if (!C.eatPunct(":"))
        return fail("expected ':' after parameter register");
      std::optional<TypeRef> T = parseType(C);
      if (!T)
        return false;
      Param.Type = *T;
      Param.State.K = StateSpec::Kind::Init;
      while (true) {
        if (C.eatIdent("state")) {
          if (!C.eatPunct("="))
            return fail("expected '=' after 'state'");
          std::optional<StateSpec> S = parseStateSpec(C);
          if (!S)
            return false;
          Param.State = *S;
          continue;
        }
        if (C.eatIdent("access")) {
          if (!C.eatPunct("="))
            return fail("expected '=' after 'access'");
          bool R2, W2, F2, X2, O2;
          if (!parsePerms(C, R2, W2, F2, X2, O2))
            return false;
          Param.Access = {F2, X2, O2};
          continue;
        }
        break;
      }
      Summary.Params.push_back(std::move(Param));
      continue;
    }
    if (C.eatIdent("pre")) {
      std::optional<FormulaRef> F = parseConstraintExpr(C);
      if (!F)
        return false;
      Summary.Pre = Formula::conj2(Summary.Pre, *F);
      continue;
    }
    if (C.eatIdent("returns")) {
      if (C.eatIdent("void"))
        continue;
      std::optional<TypeRef> T = parseType(C);
      if (!T)
        return false;
      Summary.ReturnType = *T;
      Summary.ReturnState.K = StateSpec::Kind::Init;
      while (true) {
        if (C.eatIdent("state")) {
          if (!C.eatPunct("="))
            return fail("expected '=' after 'state'");
          std::optional<StateSpec> S = parseStateSpec(C);
          if (!S)
            return false;
          Summary.ReturnState = *S;
          continue;
        }
        if (C.eatIdent("access")) {
          if (!C.eatPunct("="))
            return fail("expected '=' after 'access'");
          bool R2, W2, F2, X2, O2;
          if (!parsePerms(C, R2, W2, F2, X2, O2))
            return false;
          Summary.ReturnAccess = {F2, X2, O2};
          continue;
        }
        break;
      }
      continue;
    }
    if (C.eatIdent("writes")) {
      while (C.peek().K == Token::Kind::Ident) {
        Summary.Writes.push_back(C.take().Text);
        if (!C.eatPunct(","))
          break;
      }
      continue;
    }
    return fail("unexpected token '" + C.peek().Text +
                "' in trusted block");
  }
  P.Trusted[Summary.Name] = std::move(Summary);
  return true;
}

bool Parser::parseFrame(Cursor &C) {
  if (C.peek().K != Token::Kind::Ident && C.peek().K != Token::Kind::Int)
    return fail("expected a function label or statement number");
  std::string Func = C.take().Text;
  if (!C.eatPunct(":"))
    return fail("expected ':' after the function name");
  if (C.peek().K != Token::Kind::Ident)
    return fail("expected a struct type name");
  std::string TypeName = C.take().Text;
  if (!P.NamedTypes.count(TypeName))
    return fail("unknown frame type '" + TypeName + "'");
  P.FrameTypes[Func] = TypeName;
  return true;
}

bool Parser::parseAutomaton(Cursor &C) {
  if (C.peek().K != Token::Kind::Ident)
    return fail("expected an automaton name");
  policy::Policy::Automaton A;
  A.Name = C.take().Text;
  if (!C.eatPunct("{"))
    return fail("expected '{' after automaton name");

  auto StateIndex = [&A](const std::string &Name) {
    int32_t Index = A.stateIndex(Name);
    if (Index >= 0)
      return static_cast<uint32_t>(Index);
    A.States.push_back(Name);
    return static_cast<uint32_t>(A.States.size() - 1);
  };

  bool StartSeen = false;
  while (!C.eatPunct("}")) {
    if (C.eatPunct(";"))
      continue;
    if (C.eatIdent("state")) {
      if (C.peek().K != Token::Kind::Ident)
        return fail("expected a state name");
      StateIndex(C.take().Text);
      continue;
    }
    if (C.eatIdent("start")) {
      if (C.peek().K != Token::Kind::Ident)
        return fail("expected a state name after 'start'");
      A.Start = StateIndex(C.take().Text);
      StartSeen = true;
      continue;
    }
    if (C.eatIdent("final")) {
      while (C.peek().K == Token::Kind::Ident) {
        A.Final.push_back(StateIndex(C.take().Text));
        if (!C.eatPunct(","))
          break;
      }
      continue;
    }
    if (C.eatIdent("transition")) {
      if (C.peek().K != Token::Kind::Ident)
        return fail("expected a source state");
      uint32_t From = StateIndex(C.take().Text);
      if (!C.eatPunct("-") || !C.eatPunct(">"))
        return fail("expected '->' in transition");
      if (C.peek().K != Token::Kind::Ident)
        return fail("expected a target state");
      uint32_t To = StateIndex(C.take().Text);
      if (!C.eatIdent("on"))
        return fail("expected 'on <trusted function>' in transition");
      if (C.peek().K != Token::Kind::Ident)
        return fail("expected a trusted-function name");
      A.Transitions.push_back({From, To, C.take().Text});
      continue;
    }
    return fail("unexpected token '" + C.peek().Text +
                "' in automaton block");
  }
  if (A.States.empty())
    return fail("automaton '" + A.Name + "' has no states");
  if (!StartSeen)
    A.Start = 0;
  P.Automata.push_back(std::move(A));
  return true;
}

bool Parser::parseStatement(std::string_view Stmt) {
  Cursor C(Stmt);
  if (C.atEnd())
    return true;
  if (C.eatIdent("struct"))
    return parseStruct(C, /*IsUnion=*/false) &&
           (C.atEnd() || fail("trailing tokens after struct"));
  if (C.eatIdent("union"))
    return parseStruct(C, /*IsUnion=*/true) &&
           (C.atEnd() || fail("trailing tokens after union"));
  if (C.eatIdent("abstract"))
    return parseAbstract(C) &&
           (C.atEnd() || fail("trailing tokens after abstract"));
  if (C.eatIdent("loc"))
    return parseLoc(C);
  if (C.eatIdent("region"))
    return parseRegion(C) &&
           (C.atEnd() || fail("trailing tokens after region"));
  if (C.eatIdent("allow"))
    return parseAllow(C) &&
           (C.atEnd() || fail("trailing tokens after allow"));
  if (C.eatIdent("invoke"))
    return parseInvoke(C) &&
           (C.atEnd() || fail("trailing tokens after invoke"));
  if (C.eatIdent("constraint"))
    return parseConstraintStmt(C) &&
           (C.atEnd() || fail("trailing tokens after constraint"));
  if (C.eatIdent("postconstraint")) {
    std::optional<FormulaRef> F = parseConstraintExpr(C);
    if (!F)
      return false;
    P.PostConstraints.push_back(*F);
    return C.atEnd() || fail("trailing tokens after postconstraint");
  }
  if (C.eatIdent("postloc")) {
    if (C.peek().K != Token::Kind::Ident)
      return fail("expected a location name after 'postloc'");
    std::string Name = C.take().Text;
    if (!C.eatIdent("state") || !C.eatPunct("="))
      return fail("expected 'state=' in postloc");
    std::optional<StateSpec> S = parseStateSpec(C);
    if (!S)
      return false;
    P.PostStates.emplace_back(std::move(Name), std::move(*S));
    return C.atEnd() || fail("trailing tokens after postloc");
  }
  if (C.eatIdent("trusted"))
    return parseTrusted(C) &&
           (C.atEnd() || fail("trailing tokens after trusted"));
  if (C.eatIdent("frame"))
    return parseFrame(C) &&
           (C.atEnd() || fail("trailing tokens after frame"));
  if (C.eatIdent("automaton"))
    return parseAutomaton(C) &&
           (C.atEnd() || fail("trailing tokens after automaton"));
  return fail("unknown directive '" + C.peek().Text + "'");
}

std::optional<Policy> Parser::run(std::string *Error) {
  // Assemble logical statements: lines, with brace blocks spanning lines.
  std::string Pending;
  int Depth = 0;
  uint32_t StatementLine = 0;
  size_t Pos = 0;
  uint32_t Line = 0;
  bool Ok = true;

  auto Flush = [&]() {
    if (!Ok)
      return;
    std::string_view Stmt = trim(Pending);
    if (!Stmt.empty()) {
      CurLine = StatementLine;
      Ok = parseStatement(Stmt);
    }
    Pending.clear();
  };

  while (Pos <= Source.size() && Ok) {
    size_t End = Source.find('\n', Pos);
    if (End == std::string_view::npos)
      End = Source.size();
    ++Line;
    std::string_view Raw = Source.substr(Pos, End - Pos);
    // Strip comments.
    size_t Hash = Raw.find('#');
    if (Hash != std::string_view::npos)
      Raw = Raw.substr(0, Hash);
    std::string_view Text = trim(Raw);
    if (!Text.empty()) {
      if (Pending.empty())
        StatementLine = Line;
      Pending += ' ';
      Pending += Text;
      for (char Ch : Text) {
        if (Ch == '{')
          ++Depth;
        else if (Ch == '}')
          --Depth;
      }
      if (Depth < 0) {
        CurLine = Line;
        fail("unbalanced '}'");
        Ok = false;
        break;
      }
    }
    if (Depth == 0)
      Flush();
    if (End == Source.size())
      break;
    Pos = End + 1;
  }
  if (Ok && Depth != 0) {
    CurLine = StatementLine;
    fail("unterminated '{' block");
    Ok = false;
  }
  if (Ok)
    Flush();
  if (!Ok) {
    if (Error)
      *Error = ErrorMessage;
    return std::nullopt;
  }

  // Cross-checks: points-to targets, regions, and invocation locations
  // must name declared locations. A dotted path "parent.field.sub" is
  // resolved the same way Preparation materializes the location tree —
  // each segment must label a member of the preceding aggregate — so a
  // policy can no longer smuggle in "buf.no_such_field" just because
  // "buf" exists.
  auto LocExists = [this](const std::string &Name) {
    std::string_view Path = Name;
    size_t Dot = Path.find('.');
    std::string_view Base = Path.substr(0, Dot);
    const LocationDecl *Decl = nullptr;
    for (const LocationDecl &D : P.Locations)
      if (D.Name == Base)
        Decl = &D;
    if (!Decl)
      return false;
    TypeRef T = Decl->Type;
    while (Dot != std::string_view::npos) {
      Path = Path.substr(Dot + 1);
      Dot = Path.find('.');
      std::string_view Label = Path.substr(0, Dot);
      if (!T || !T->isAggregate())
        return false;
      const Member *Found = nullptr;
      for (const Member &M : T->members())
        if (M.Label == Label)
          Found = &M;
      if (!Found)
        return false;
      T = Found->Type;
    }
    return true;
  };
  for (const LocationDecl &D : P.Locations) {
    for (const auto &[Target, Offset] : D.State.Targets) {
      (void)Offset;
      if (!LocExists(Target)) {
        if (Error)
          *Error = "location '" + D.Name + "' points to undeclared '" +
                   Target + "'";
        return std::nullopt;
      }
    }
  }
  for (const auto &[Region, Members] : P.Regions) {
    for (const std::string &Member : Members) {
      if (!LocExists(Member)) {
        if (Error)
          *Error = "region '" + Region + "' lists undeclared location '" +
                   Member + "'";
        return std::nullopt;
      }
    }
  }
  for (const InvocationBinding &B : P.Invocation) {
    if ((B.K == InvocationBinding::Kind::ValueOfLoc ||
         B.K == InvocationBinding::Kind::AddressOfLoc) &&
        !LocExists(B.LocName)) {
      if (Error)
        *Error = "invocation references undeclared location '" + B.LocName +
                 "'";
      return std::nullopt;
    }
  }
  for (const auto &[Name, Spec] : P.PostStates) {
    (void)Spec;
    if (!LocExists(Name)) {
      if (Error)
        *Error = "postloc references undeclared location '" + Name + "'";
      return std::nullopt;
    }
  }
  return std::move(P);
}

} // namespace

std::optional<Policy> policy::parsePolicy(std::string_view Source,
                                          std::string *Error) {
  Parser P(Source);
  return P.run(Error);
}
