//===- PolicyParser.h - Text format for safety policies ---------*- C++ -*-===//
//
// Part of mcsafe, a reproduction of "Safety Checking of Machine Code"
// (Xu, Miller, Reps; PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small declarative language for the host-typestate specification, the
/// invocation specification, and the access policy. One directive per
/// statement ('#' starts a comment; '{...}' blocks may span lines):
///
///   struct NAME { f1: TYPE @OFF [x COUNT]; ... } size N align N
///   union NAME { ... } size N align N
///   abstract NAME size N align N
///   loc NAME : TYPE [state=STATE] [summary]
///   region NAME { loc1, loc2, ... }
///   allow REGION : CATEGORY : PERMS        # CATEGORY: TYPE | s.field | *
///   invoke %reg = RHS                      # RHS: loc | &loc[+off] | sym | int
///   constraint LINEXPR CMP LINEXPR         # or:  constraint N | LINEXPR
///   trusted NAME { param %reg : TYPE [state=STATE] [access=PERMS]
///                  pre CONSTRAINT
///                  returns TYPE [state=STATE] [access=PERMS]
///                  writes loc1, loc2 }
///   frame FUNC : STRUCTNAME
///
/// TYPE     ::= GROUND | NAME | func NAME | TYPE* | TYPE[SIZE] | TYPE(SIZE]
/// GROUND   ::= int8|uint8|int16|uint16|int32|uint32
/// SIZE     ::= integer | symbol
/// STATE    ::= uninit | init | init(INT) | null | {tgt, ..., [null]}
///              where tgt ::= loc[+OFF]
/// PERMS    ::= subset of r,w,f,x,o (commas optional)
///
/// In constraints, "%o0"-style names denote the *initial* (entry) values
/// of registers; other identifiers are symbolic constants.
///
//===----------------------------------------------------------------------===//

#ifndef MCSAFE_POLICY_POLICYPARSER_H
#define MCSAFE_POLICY_POLICYPARSER_H

#include "policy/Policy.h"

#include <optional>
#include <string>
#include <string_view>

namespace mcsafe {
namespace policy {

/// Parses a policy text. On error returns nullopt and fills \p Error with
/// "line N: message".
std::optional<Policy> parsePolicy(std::string_view Source,
                                  std::string *Error = nullptr);

} // namespace policy
} // namespace mcsafe

#endif // MCSAFE_POLICY_POLICYPARSER_H
