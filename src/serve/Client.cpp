//===- Client.cpp - mcsafe-serve client connection ------------------------===//

#include "serve/Client.h"

#include "support/Io.h"

#include <cstring>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

using namespace mcsafe;
using namespace mcsafe::serve;

namespace {

bool isTimeoutErrno() { return errno == EAGAIN || errno == EWOULDBLOCK; }

void setSocketTimeouts(int Fd, unsigned Ms) {
  struct timeval TV;
  TV.tv_sec = static_cast<time_t>(Ms / 1000);
  TV.tv_usec = static_cast<suseconds_t>((Ms % 1000) * 1000);
  (void)::setsockopt(Fd, SOL_SOCKET, SO_RCVTIMEO, &TV, sizeof(TV));
  (void)::setsockopt(Fd, SOL_SOCKET, SO_SNDTIMEO, &TV, sizeof(TV));
}

} // namespace

bool Client::connect(const std::string &SocketPath, std::string &Error) {
  close();
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (SocketPath.empty() || SocketPath.size() >= sizeof(Addr.sun_path)) {
    Error = "socket path '" + SocketPath + "' is empty or too long";
    return false;
  }
  std::memcpy(Addr.sun_path, SocketPath.c_str(), SocketPath.size() + 1);
  Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    Error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  if (TimeoutMs == 0) {
    long R = support::retryEintr([&] {
      return ::connect(Fd, reinterpret_cast<sockaddr *>(&Addr),
                       sizeof(Addr));
    });
    if (R != 0) {
      Error = "cannot connect to '" + SocketPath +
              "': " + std::strerror(errno);
      close();
      return false;
    }
    return true;
  }
  // Bounded connect: non-blocking connect + poll. A wedged daemon whose
  // accept queue is full leaves connect() in progress forever otherwise.
  int Flags = ::fcntl(Fd, F_GETFL, 0);
  (void)::fcntl(Fd, F_SETFL, Flags | O_NONBLOCK);
  long R = support::retryEintr([&] {
    return ::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr));
  });
  if (R != 0 && errno != EINPROGRESS && errno != EAGAIN) {
    Error = "cannot connect to '" + SocketPath +
            "': " + std::strerror(errno);
    close();
    return false;
  }
  if (R != 0) {
    pollfd P{Fd, POLLOUT, 0};
    long N = support::retryEintr(
        [&] { return ::poll(&P, 1, static_cast<int>(TimeoutMs)); });
    if (N <= 0) {
      Error = "connect to '" + SocketPath + "' timed out after " +
              std::to_string(TimeoutMs) + " ms";
      close();
      return false;
    }
    int SockErr = 0;
    socklen_t Len = sizeof(SockErr);
    if (::getsockopt(Fd, SOL_SOCKET, SO_ERROR, &SockErr, &Len) != 0 ||
        SockErr != 0) {
      Error = "cannot connect to '" + SocketPath +
              "': " + std::strerror(SockErr ? SockErr : errno);
      close();
      return false;
    }
  }
  (void)::fcntl(Fd, F_SETFL, Flags);
  setSocketTimeouts(Fd, TimeoutMs);
  return true;
}

void Client::close() {
  if (Fd >= 0) {
    support::closeFd(Fd);
    Fd = -1;
  }
}

bool Client::sendFrame(MsgType Type, std::string_view Payload,
                       std::string &Error) {
  if (Fd < 0) {
    Error = "not connected";
    return false;
  }
  if (!support::sendAll(Fd, encodeFrame(Type, Payload))) {
    if (TimeoutMs != 0 && isTimeoutErrno())
      Error = "send to server timed out after " + std::to_string(TimeoutMs) +
              " ms (daemon wedged?)";
    else
      Error = std::string("send: ") + std::strerror(errno);
    return false;
  }
  return true;
}

bool Client::recvFrame(MsgType &Type, std::string &Payload,
                       std::string &Error) {
  if (Fd < 0) {
    Error = "not connected";
    return false;
  }
  char Header[FrameHeaderSize];
  long N = support::recvFull(Fd, Header, sizeof(Header));
  if (N == 0) {
    Error = "server closed the connection";
    return false;
  }
  if (N != static_cast<long>(sizeof(Header))) {
    if (TimeoutMs != 0 && isTimeoutErrno())
      Error = "no response from server within " + std::to_string(TimeoutMs) +
              " ms (daemon wedged?)";
    else
      Error = std::string("recv: ") + std::strerror(errno);
    return false;
  }
  FrameHeader H;
  if (!decodeFrameHeader(std::string_view(Header, sizeof(Header)), H)) {
    Error = "malformed frame header from server";
    return false;
  }
  Payload.assign(H.PayloadLen, '\0');
  if (H.PayloadLen != 0 &&
      support::recvFull(Fd, Payload.data(), Payload.size()) !=
          static_cast<long>(Payload.size())) {
    if (TimeoutMs != 0 && isTimeoutErrno())
      Error = "no response from server within " + std::to_string(TimeoutMs) +
              " ms (daemon wedged?)";
    else
      Error = "truncated frame from server";
    return false;
  }
  if (!validateFramePayload(H, Payload)) {
    Error = "corrupt frame from server (digest mismatch)";
    return false;
  }
  Type = H.Type;
  return true;
}

bool Client::ping(std::string &Error) {
  if (!sendFrame(MsgType::Ping, {}, Error))
    return false;
  MsgType Type;
  std::string Payload;
  if (!recvFrame(Type, Payload, Error))
    return false;
  if (Type != MsgType::Pong || !Payload.empty()) {
    Error = "unexpected reply to ping";
    return false;
  }
  return true;
}

bool Client::serverStats(std::string &JsonOut, std::string &Error) {
  if (!sendFrame(MsgType::StatsRequest, {}, Error))
    return false;
  MsgType Type;
  if (!recvFrame(Type, JsonOut, Error))
    return false;
  if (Type != MsgType::StatsResponse) {
    Error = "unexpected reply to stats request";
    return false;
  }
  return true;
}

bool Client::shutdownServer(std::string &Error) {
  if (!sendFrame(MsgType::Shutdown, {}, Error))
    return false;
  MsgType Type;
  std::string Payload;
  if (!recvFrame(Type, Payload, Error))
    return false;
  if (Type != MsgType::ShutdownAck) {
    Error = "unexpected reply to shutdown";
    return false;
  }
  return true;
}

bool Client::sendCheck(const CheckRequestMsg &Req, std::string &Error) {
  return sendFrame(MsgType::CheckRequest, encodeCheckRequest(Req), Error);
}

bool Client::recvCheck(CheckResponseMsg &Resp, std::string &Error) {
  MsgType Type;
  std::string Payload;
  if (!recvFrame(Type, Payload, Error))
    return false;
  if (Type != MsgType::CheckResponse) {
    Error = "unexpected frame type from server";
    return false;
  }
  if (!decodeCheckResponse(Payload, Resp)) {
    Error = "malformed check response from server";
    return false;
  }
  return true;
}

bool Client::check(const CheckRequestMsg &Req, CheckResponseMsg &Resp,
                   std::string &Error) {
  if (!sendCheck(Req, Error))
    return false;
  if (!recvCheck(Resp, Error))
    return false;
  if (Resp.ReqId != Req.ReqId) {
    Error = "response id does not match request";
    return false;
  }
  return true;
}
