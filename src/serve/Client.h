//===- Client.h - mcsafe-serve client connection ----------------*- C++ -*-===//
//
// Part of mcsafe, a reproduction of "Safety Checking of Machine Code"
// (Xu, Miller, Reps; PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The client side of the mcsafe-serve protocol: one Unix-domain
/// connection, blocking, EINTR-safe, SIGPIPE-free (all sends use
/// MSG_NOSIGNAL). `mcsafe-check --connect` is built on this; tests use
/// it directly. Requests may be pipelined; responses are matched by
/// ReqId, never by arrival order.
///
//===----------------------------------------------------------------------===//

#ifndef MCSAFE_SERVE_CLIENT_H
#define MCSAFE_SERVE_CLIENT_H

#include "serve/Protocol.h"

#include <string>

namespace mcsafe {
namespace serve {

class Client {
public:
  Client() = default;
  ~Client() { close(); }

  Client(const Client &) = delete;
  Client &operator=(const Client &) = delete;

  /// Bounds connect() and every subsequent send/receive. 0 (default)
  /// blocks forever, the pre-existing behavior. With a bound, a wedged
  /// daemon — accepting but never responding — surfaces as a structured
  /// "timed out" error instead of hanging the client. Takes effect on
  /// the next connect().
  void setTimeoutMs(unsigned Ms) { TimeoutMs = Ms; }

  /// Connects to a server's socket. False (with \p Error) on failure.
  bool connect(const std::string &SocketPath, std::string &Error);
  void close();
  bool connected() const { return Fd >= 0; }

  /// Sends one frame. False on a write error (server gone).
  bool sendFrame(MsgType Type, std::string_view Payload,
                 std::string &Error);
  /// Receives one frame, validating header and digest. False on EOF,
  /// truncation, or a corrupt frame.
  bool recvFrame(MsgType &Type, std::string &Payload, std::string &Error);

  /// Round-trips a Ping.
  bool ping(std::string &Error);
  /// Fetches the server's metrics JSON.
  bool serverStats(std::string &JsonOut, std::string &Error);
  /// Asks the server to shut down; returns once the ack arrives.
  bool shutdownServer(std::string &Error);

  /// One synchronous check round-trip.
  bool check(const CheckRequestMsg &Req, CheckResponseMsg &Resp,
             std::string &Error);
  /// Pipelining: fire a request without waiting.
  bool sendCheck(const CheckRequestMsg &Req, std::string &Error);
  /// Receives the next check response (any ReqId).
  bool recvCheck(CheckResponseMsg &Resp, std::string &Error);

private:
  int Fd = -1;
  unsigned TimeoutMs = 0;
};

} // namespace serve
} // namespace mcsafe

#endif // MCSAFE_SERVE_CLIENT_H
