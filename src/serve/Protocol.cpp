//===- Protocol.cpp - mcsafe-serve wire protocol --------------------------===//

#include "serve/Protocol.h"

#include "checker/ReportCodec.h"
#include "support/Digest.h"

#include <cstring>

using namespace mcsafe;
using namespace mcsafe::serve;

uint64_t serve::framePayloadDigest(MsgType Type, std::string_view Payload) {
  return support::Digest()
      .add(static_cast<uint64_t>(Type))
      .addBytes(Payload)
      .value();
}

std::string serve::encodeFrame(MsgType Type, std::string_view Payload) {
  ByteWriter W;
  W.raw(std::string_view(FrameMagic, sizeof(FrameMagic)));
  W.u8(ProtocolVersion);
  W.u8(static_cast<uint8_t>(Type));
  W.u32(static_cast<uint32_t>(Payload.size()));
  W.u64(framePayloadDigest(Type, Payload));
  W.raw(Payload);
  return W.take();
}

bool serve::decodeFrameHeader(std::string_view HeaderBytes,
                              FrameHeader &Out) {
  if (HeaderBytes.size() != FrameHeaderSize)
    return false;
  if (std::memcmp(HeaderBytes.data(), FrameMagic, sizeof(FrameMagic)) != 0)
    return false;
  ByteReader R(HeaderBytes.substr(sizeof(FrameMagic)));
  uint8_t Version = R.u8();
  uint8_t Type = R.u8();
  Out.PayloadLen = R.u32();
  Out.PayloadDigest = R.u64();
  if (!R.ok() || !R.atEnd())
    return false;
  if (Version != ProtocolVersion)
    return false;
  if (Type < static_cast<uint8_t>(MsgType::CheckRequest) ||
      Type > static_cast<uint8_t>(MsgType::ShutdownAck))
    return false;
  if (Out.PayloadLen > MaxFramePayload)
    return false;
  Out.Type = static_cast<MsgType>(Type);
  return true;
}

bool serve::validateFramePayload(const FrameHeader &H,
                                 std::string_view Payload) {
  return Payload.size() == H.PayloadLen &&
         framePayloadDigest(H.Type, Payload) == H.PayloadDigest;
}

std::optional<std::pair<MsgType, std::string>>
serve::decodeFrame(std::string_view Bytes) {
  if (Bytes.size() < FrameHeaderSize)
    return std::nullopt;
  FrameHeader H;
  if (!decodeFrameHeader(Bytes.substr(0, FrameHeaderSize), H))
    return std::nullopt;
  std::string_view Payload = Bytes.substr(FrameHeaderSize);
  if (!validateFramePayload(H, Payload))
    return std::nullopt;
  return std::make_pair(H.Type, std::string(Payload));
}

std::string serve::encodeCheckRequest(const CheckRequestMsg &Msg) {
  ByteWriter W;
  W.u64(Msg.ReqId);
  W.str(Msg.Name);
  W.str(Msg.Asm);
  W.str(Msg.Policy);
  W.u32(Msg.DeadlineMs);
  W.u64(Msg.ProverSteps);
  W.u32(Msg.Flags);
  return W.take();
}

bool serve::decodeCheckRequest(std::string_view Payload,
                               CheckRequestMsg &Out) {
  ByteReader R(Payload);
  Out.ReqId = R.u64();
  Out.Name = std::string(R.str());
  Out.Asm = std::string(R.str());
  Out.Policy = std::string(R.str());
  Out.DeadlineMs = R.u32();
  Out.ProverSteps = R.u64();
  Out.Flags = R.u32();
  return R.ok() && R.atEnd();
}

std::string serve::encodeCheckResponse(const CheckResponseMsg &Msg) {
  ByteWriter W;
  W.u64(Msg.ReqId);
  W.u8(Msg.Shed ? 1 : 0);
  checker::serializeCheckReport(W, Msg.Report);
  return W.take();
}

bool serve::decodeCheckResponse(std::string_view Payload,
                                CheckResponseMsg &Out) {
  ByteReader R(Payload);
  Out.ReqId = R.u64();
  uint8_t Shed = R.u8();
  if (!R.ok() || Shed > 1)
    return false;
  Out.Shed = Shed == 1;
  if (!checker::deserializeCheckReport(R, Out.Report))
    return false;
  return R.ok() && R.atEnd();
}
