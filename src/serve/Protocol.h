//===- Protocol.h - mcsafe-serve wire protocol ------------------*- C++ -*-===//
//
// Part of mcsafe, a reproduction of "Safety Checking of Machine Code"
// (Xu, Miller, Reps; PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The length-prefixed binary protocol between mcsafe-serve and its
/// clients, over a Unix-domain stream socket. One frame:
///
///   offset  size  field
///        0     4  magic "MSRV"
///        4     1  protocol version (ProtocolVersion)
///        5     1  message type (MsgType)
///        6     4  payload length, u32 little-endian
///       10     8  digest of (type byte || payload), u64 little-endian
///
/// followed by exactly `length` payload bytes. The digest covers the type
/// byte as well as the payload, so a bit flip anywhere past the magic —
/// including one that turns a CheckRequest into a Shutdown — fails
/// validation instead of being obeyed. Payloads are built on
/// constraints/Serialize's ByteWriter and parsed with its latching
/// ByteReader: truncation, overruns, and trailing garbage all fail the
/// decode, never fabricate a message.
///
/// The protocol is deliberately request/response over one socket with no
/// multiplexing: a client may pipeline requests (the corpus path does)
/// and every response carries its request's ReqId. Responses are not
/// guaranteed to arrive in request order — a shed response is sent
/// immediately, overtaking earlier requests still being checked — so
/// clients match on ReqId.
///
//===----------------------------------------------------------------------===//

#ifndef MCSAFE_SERVE_PROTOCOL_H
#define MCSAFE_SERVE_PROTOCOL_H

#include "checker/SafetyChecker.h"
#include "constraints/Serialize.h"

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace mcsafe {
namespace serve {

/// Bump when the frame layout, a message payload, or the CheckReport
/// codec (checker/ReportCodec.h) changes shape. Version 2: the failure
/// taxonomy grew WorkerCrashed/Quarantined, widening the valid Kind
/// range in serialized reports. Version 3: prover stats in serialized
/// reports carry the query-slicing counters.
inline constexpr uint8_t ProtocolVersion = 3;

inline constexpr char FrameMagic[4] = {'M', 'S', 'R', 'V'};
inline constexpr size_t FrameHeaderSize = 18;

/// Upper bound on one frame's payload. Requests carry assembly + policy
/// text and responses one serialized report; 16 MiB is far beyond
/// anything legitimate, so a larger length field means a corrupt or
/// hostile peer and the connection is dropped.
inline constexpr uint32_t MaxFramePayload = 16u << 20;

enum class MsgType : uint8_t {
  CheckRequest = 1,
  CheckResponse = 2,
  Ping = 3,
  Pong = 4,
  StatsRequest = 5,
  StatsResponse = 6,
  Shutdown = 7,
  ShutdownAck = 8,
};

/// Request option bits (CheckRequestMsg::Flags).
enum : uint32_t {
  ReqFlagLint = 1u << 0,      ///< Run the phase-0 lint (+ dead-reg prune).
  ReqFlagKnownBits = 1u << 1, ///< Known-bits domain + congruence tier.
  ReqFlagTiers = 1u << 2,     ///< Interval/DBM pre-solver tiers.
  ReqFlagFailSoft = 1u << 3,  ///< Enumerate obligations after a trip.
  ReqFlagTrace = 1u << 4,     ///< Induction-iteration stderr trace.
  ReqFlagSlicing = 1u << 5,   ///< Sat-query connected-component slicing.
};

/// A parsed frame header.
struct FrameHeader {
  MsgType Type = MsgType::Ping;
  uint32_t PayloadLen = 0;
  uint64_t PayloadDigest = 0;
};

/// One check request. Flags defaults match the CLI defaults, so an
/// unconfigured request checks exactly like a plain `mcsafe-check` run.
struct CheckRequestMsg {
  uint64_t ReqId = 0;
  std::string Name;   ///< Display name ("corpus/Sum", a file path, ...).
  std::string Asm;
  std::string Policy;
  /// Requested governor budgets; the server clamps them to its caps.
  uint32_t DeadlineMs = 0;
  uint64_t ProverSteps = 0;
  uint32_t Flags = ReqFlagLint | ReqFlagKnownBits | ReqFlagTiers |
                   ReqFlagSlicing;
};

/// One check response: the request's id, whether admission control shed
/// it, and the exact report bytes (checker/ReportCodec.h) — a client
/// renders them with the same code paths as a local run, so the printed
/// output is byte-identical to `mcsafe-check` on the same inputs.
struct CheckResponseMsg {
  uint64_t ReqId = 0;
  bool Shed = false;
  checker::CheckReport Report;
};

/// The digest the frame header carries for a (type, payload) pair.
uint64_t framePayloadDigest(MsgType Type, std::string_view Payload);

/// Builds one complete frame (header + payload) for the wire.
std::string encodeFrame(MsgType Type, std::string_view Payload);

/// Parses and validates an 18-byte header: magic, version, known type,
/// and PayloadLen <= MaxFramePayload. Returns false on any mismatch.
bool decodeFrameHeader(std::string_view HeaderBytes, FrameHeader &Out);

/// Verifies a payload against its header's digest.
bool validateFramePayload(const FrameHeader &H, std::string_view Payload);

/// Decodes one whole frame from a byte buffer (header + payload, nothing
/// trailing). The pure-function entry the wire tests sweep: every
/// truncation, oversize, and bit flip of a valid frame must fail.
std::optional<std::pair<MsgType, std::string>>
decodeFrame(std::string_view Bytes);

std::string encodeCheckRequest(const CheckRequestMsg &Msg);
bool decodeCheckRequest(std::string_view Payload, CheckRequestMsg &Out);

std::string encodeCheckResponse(const CheckResponseMsg &Msg);
bool decodeCheckResponse(std::string_view Payload, CheckResponseMsg &Out);

} // namespace serve
} // namespace mcsafe

#endif // MCSAFE_SERVE_PROTOCOL_H
