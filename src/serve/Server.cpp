//===- Server.cpp - The mcsafe-serve resident verifier --------------------===//

#include "serve/Server.h"

#include "checker/CertStore.h"
#include "constraints/ProverCache.h"
#include "constraints/Var.h"
#include "support/FaultInjection.h"
#include "support/Io.h"
#include "support/ThreadPool.h"

#include <cstring>
#include <sstream>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace mcsafe;
using namespace mcsafe::serve;
using checker::CheckFailure;
using checker::CheckPhase;
using checker::CheckReport;
using checker::CheckVerdict;
using checker::FailureKind;

namespace {

/// The effective budget for a request: the server cap bounds whatever
/// the client asked for, and an "unlimited" ask (0) gets the cap itself.
template <typename T> T clampBudget(T Requested, T Cap) {
  if (Cap == 0)
    return Requested;
  if (Requested == 0)
    return Cap;
  return Requested < Cap ? Requested : Cap;
}

} // namespace

Server::Conn::~Conn() {
  if (Fd >= 0)
    support::closeFd(Fd);
}

Server::Server(ServerOptions O) : Opts(std::move(O)) {
  NJobs = Opts.Jobs ? Opts.Jobs : support::ThreadPool::hardwareConcurrency();
  if (NJobs == 0)
    NJobs = 1;
}

Server::~Server() {
  requestStop();
  wait();
}

void Server::bumpCounter(const char *Name, uint64_t Delta) {
  if (Opts.Metrics)
    Opts.Metrics->counter(Name).inc(Delta);
}

bool Server::start(std::string &Error) {
  if (Started) {
    Error = "server already started";
    return false;
  }

  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (Opts.SocketPath.empty() ||
      Opts.SocketPath.size() >= sizeof(Addr.sun_path)) {
    Error = "socket path '" + Opts.SocketPath + "' is empty or too long";
    return false;
  }
  std::memcpy(Addr.sun_path, Opts.SocketPath.c_str(),
              Opts.SocketPath.size() + 1);

  int Pipe[2];
  if (::pipe(Pipe) != 0) {
    Error = std::string("pipe: ") + std::strerror(errno);
    return false;
  }
  WakeRd = Pipe[0];
  WakeWr = Pipe[1];

  ListenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (ListenFd < 0) {
    Error = std::string("socket: ") + std::strerror(errno);
    support::closeFd(WakeRd);
    support::closeFd(WakeWr);
    WakeRd = WakeWr = -1;
    return false;
  }
  // A stale socket file from a previous (dead) server blocks bind();
  // replacing it is the standard Unix-daemon move. A *live* server on
  // the same path loses its socket — callers pick unique paths.
  ::unlink(Opts.SocketPath.c_str());
  if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr),
             sizeof(Addr)) != 0 ||
      ::listen(ListenFd, 64) != 0) {
    Error = "cannot listen on '" + Opts.SocketPath +
            "': " + std::strerror(errno);
    support::closeFd(ListenFd);
    support::closeFd(WakeRd);
    support::closeFd(WakeWr);
    ListenFd = WakeRd = WakeWr = -1;
    return false;
  }

  Pool = std::make_unique<support::ThreadPool>(NJobs);
  ProverCache::Config CacheCfg;
  CacheCfg.MaxEntries = Opts.SharedCacheMaxEntries;
  SharedCache = std::make_shared<ProverCache>(CacheCfg);
  if (!Opts.CertDir.empty())
    Certs = std::make_unique<checker::CertStore>(Opts.CertDir);

  Running.store(true, std::memory_order_release);
  Started = true;
  AcceptThread = std::thread([this] { acceptLoop(); });
  DispatchThread = std::thread([this] { dispatchLoop(); });
  return true;
}

void Server::requestStop() {
  // Only async-signal-safe operations here: this runs straight from the
  // daemon's SIGINT/SIGTERM handler.
  Running.store(false, std::memory_order_release);
  if (WakeWr >= 0) {
    char B = 1;
    (void)support::retryEintr([&] { return ::write(WakeWr, &B, 1); });
  }
}

void Server::wait() {
  if (!Started)
    return;
  if (AcceptThread.joinable())
    AcceptThread.join();
  if (DispatchThread.joinable())
    DispatchThread.join();
  // In-flight checks finish on the pool; their sends fail harmlessly on
  // the already-shut-down sockets.
  Pool.reset();
  // Join the readers without holding Mu (a reader between its recv and
  // its admission check briefly takes Mu itself).
  std::vector<std::shared_ptr<Conn>> Remaining;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Remaining.swap(Conns);
    Ring.clear();
    TotalPending = 0;
  }
  for (const std::shared_ptr<Conn> &C : Remaining)
    if (C->Reader.joinable())
      C->Reader.join();
  Remaining.clear();
  if (Certs && Opts.Metrics)
    Certs->publish(*Opts.Metrics);
  Certs.reset();
  if (WakeRd >= 0) {
    support::closeFd(WakeRd);
    support::closeFd(WakeWr);
    WakeRd = WakeWr = -1;
  }
  Started = false;
}

void Server::reapDoneConns() {
  std::lock_guard<std::mutex> Lock(Mu);
  for (size_t I = 0; I < Conns.size();) {
    std::shared_ptr<Conn> &C = Conns[I];
    // A connection is reapable once its reader exited and the dispatcher
    // holds none of its requests. Pool tasks may still hold the
    // shared_ptr; the struct lives until they drop it.
    if (C->ReaderDone.load(std::memory_order_acquire) && !C->InRing &&
        C->Queue.empty()) {
      if (C->Reader.joinable())
        C->Reader.join();
      Conns.erase(Conns.begin() + static_cast<ptrdiff_t>(I));
    } else {
      ++I;
    }
  }
}

void Server::acceptLoop() {
  while (Running.load(std::memory_order_acquire)) {
    pollfd Fds[2];
    Fds[0] = {ListenFd, POLLIN, 0};
    Fds[1] = {WakeRd, POLLIN, 0};
    int N = static_cast<int>(
        support::retryEintr([&] { return ::poll(Fds, 2, 500); }));
    if (N < 0)
      break;
    if (Fds[1].revents & POLLIN)
      break; // requestStop() wrote the wake byte.
    reapDoneConns();
    if (!(Fds[0].revents & POLLIN))
      continue;
    int Fd = static_cast<int>(support::retryEintr(
        [&] { return ::accept(ListenFd, nullptr, nullptr); }));
    if (Fd < 0)
      continue;
    auto C = std::make_shared<Conn>();
    C->Fd = Fd;
    bumpCounter("serve/connections");
    {
      std::lock_guard<std::mutex> Lock(Mu);
      C->Id = NextConnId++;
      Conns.push_back(C);
    }
    C->Reader = std::thread([this, C] { readerLoop(C); });
  }

  support::closeFd(ListenFd);
  ListenFd = -1;
  ::unlink(Opts.SocketPath.c_str());
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Stopping = true;
    // Unblock every reader stuck in recv().
    for (const std::shared_ptr<Conn> &C : Conns) {
      C->Dead.store(true, std::memory_order_release);
      ::shutdown(C->Fd, SHUT_RDWR);
    }
  }
  CvDispatch.notify_all();
}

bool Server::sendFrame(Conn &C, MsgType Type, std::string_view Payload) {
  std::string Frame = encodeFrame(Type, Payload);
  std::lock_guard<std::mutex> Lock(C.WriteMu);
  if (C.Dead.load(std::memory_order_acquire))
    return false;
  // The chaos suite's mid-write disconnect: the peer vanished right
  // before this response hits the wire.
  bool Failed = support::faultPoint("serve/write") ||
                !support::sendAll(C.Fd, Frame);
  if (Failed) {
    // This client is gone (EPIPE thanks to MSG_NOSIGNAL, never a
    // process-killing SIGPIPE). Latch it dead and wake its reader; every
    // other connection's in-flight work is untouched.
    C.Dead.store(true, std::memory_order_release);
    ::shutdown(C.Fd, SHUT_RDWR);
    bumpCounter("serve/write_errors");
    return false;
  }
  return true;
}

void Server::sendShedResponse(const std::shared_ptr<Conn> &C,
                              uint64_t ReqId) {
  bumpCounter("serve/shed");
  CheckResponseMsg Resp;
  Resp.ReqId = ReqId;
  Resp.Shed = true;
  // Fail-sound: a shed request gets UNKNOWN with a structured failure —
  // the checker never ran, so nothing stronger was earned.
  Resp.Report.InputsOk = false;
  Resp.Report.Safe = false;
  Resp.Report.Verdict = CheckVerdict::Unknown;
  Resp.Report.Failures.push_back(
      {CheckPhase::Driver, FailureKind::ResourceExhausted, std::nullopt,
       "load shed: admission queue full"});
  sendFrame(*C, MsgType::CheckResponse, encodeCheckResponse(Resp));
}

void Server::readerLoop(std::shared_ptr<Conn> C) {
  while (!C->Dead.load(std::memory_order_acquire)) {
    char Header[FrameHeaderSize];
    long N = support::recvFull(C->Fd, Header, sizeof(Header));
    if (N <= 0)
      break; // Clean EOF or error/truncation.
    FrameHeader H;
    if (!decodeFrameHeader(std::string_view(Header, sizeof(Header)), H)) {
      bumpCounter("serve/protocol_errors");
      break;
    }
    std::string Payload(H.PayloadLen, '\0');
    if (H.PayloadLen != 0 &&
        support::recvFull(C->Fd, Payload.data(), Payload.size()) !=
            static_cast<long>(Payload.size()))
      break;
    if (!validateFramePayload(H, Payload)) {
      bumpCounter("serve/protocol_errors");
      break;
    }

    if (H.Type == MsgType::Ping) {
      if (!sendFrame(*C, MsgType::Pong, {}))
        break;
      continue;
    }
    if (H.Type == MsgType::StatsRequest) {
      std::ostringstream OS;
      if (Opts.Metrics)
        Opts.Metrics->writeJson(OS);
      else
        OS << "{}";
      if (!sendFrame(*C, MsgType::StatsResponse, OS.str()))
        break;
      continue;
    }
    if (H.Type == MsgType::Shutdown) {
      sendFrame(*C, MsgType::ShutdownAck, {});
      requestStop();
      break;
    }
    if (H.Type != MsgType::CheckRequest) {
      // Server-to-client message types arriving at the server are a
      // protocol violation.
      bumpCounter("serve/protocol_errors");
      break;
    }

    CheckRequestMsg Req;
    if (!decodeCheckRequest(Payload, Req)) {
      bumpCounter("serve/protocol_errors");
      break;
    }
    bumpCounter("serve/requests");

    bool Shed;
    {
      std::lock_guard<std::mutex> Lock(Mu);
      Shed = Stopping || TotalPending >= Opts.MaxQueue;
      if (!Shed) {
        ++TotalPending;
        C->Queue.push_back(std::move(Req));
        if (!C->InRing) {
          C->InRing = true;
          Ring.push_back(C);
        }
      }
    }
    if (Shed) {
      sendShedResponse(C, Req.ReqId);
      continue;
    }
    CvDispatch.notify_one();
  }

  C->Dead.store(true, std::memory_order_release);
  ::shutdown(C->Fd, SHUT_RDWR);
  C->ReaderDone.store(true, std::memory_order_release);
}

void Server::dispatchLoop() {
  std::unique_lock<std::mutex> Lock(Mu);
  while (true) {
    CvDispatch.wait(Lock, [&] {
      return Stopping || (!Ring.empty() && Active < NJobs);
    });
    if (Stopping)
      break;
    // Fair round-robin: one request per connection per turn. A
    // connection with more queued work goes to the back of the ring.
    std::shared_ptr<Conn> C = Ring.front();
    Ring.pop_front();
    CheckRequestMsg Req = std::move(C->Queue.front());
    C->Queue.pop_front();
    --TotalPending;
    if (!C->Queue.empty())
      Ring.push_back(C);
    else
      C->InRing = false;
    if (C->Dead.load(std::memory_order_acquire))
      continue; // The client is gone; its queued work is dropped.
    ++Active;
    Lock.unlock();
    Pool->submit([this, C, Req = std::move(Req)] {
      runCheckRequest(C, Req);
      {
        std::lock_guard<std::mutex> G(Mu);
        --Active;
      }
      CvDispatch.notify_all();
    });
    Lock.lock();
  }
  // Drain: queued requests at shutdown are simply dropped (their
  // connections are already shut down).
  Ring.clear();
  for (const std::shared_ptr<Conn> &C : Conns) {
    C->Queue.clear();
    C->InRing = false;
  }
  TotalPending = 0;
}

void Server::runCheckRequest(const std::shared_ptr<Conn> &C,
                             const CheckRequestMsg &Req) {
  CheckResponseMsg Resp;
  Resp.ReqId = Req.ReqId;
  CheckReport &Rep = Resp.Report;
  try {
    checker::SafetyChecker::Options O;
    O.Lint = (Req.Flags & ReqFlagLint) != 0;
    O.PruneDeadRegs = O.Lint;
    O.KnownBits = (Req.Flags & ReqFlagKnownBits) != 0;
    O.ProverOpts.EnableTiers = (Req.Flags & ReqFlagTiers) != 0;
    O.FailSoft = (Req.Flags & ReqFlagFailSoft) != 0;
    O.Global.DebugTrace = (Req.Flags & ReqFlagTrace) != 0;
    O.Limits.DeadlineMs =
        clampBudget(Req.DeadlineMs, Opts.DeadlineCapMs);
    O.Limits.ProverSteps =
        clampBudget(Req.ProverSteps, Opts.ProverStepsCap);
    O.SharedProverCache = SharedCache;
    O.Global.Pool = NJobs > 1 ? Pool.get() : nullptr;
    O.Certs = Certs.get();
    // A private namespace per request: the report is a pure function of
    // the request's inputs, byte-identical to a cold CLI run no matter
    // how warm the shared caches are or what ran before.
    VarNamespace NS;
    checker::SafetyChecker Checker(O);
    Rep = Checker.checkSource(Req.Asm, Req.Policy);
  } catch (const std::exception &E) {
    Rep.Safe = false;
    Rep.Verdict = CheckVerdict::InternalError;
    Rep.Failures.push_back(
        {CheckPhase::Driver, FailureKind::InternalError, std::nullopt,
         std::string("unhandled exception: ") + E.what()});
  } catch (...) {
    Rep.Safe = false;
    Rep.Verdict = CheckVerdict::InternalError;
    Rep.Failures.push_back({CheckPhase::Driver, FailureKind::InternalError,
                            std::nullopt,
                            "unhandled non-standard exception"});
  }
  if (sendFrame(*C, MsgType::CheckResponse, encodeCheckResponse(Resp)))
    bumpCounter("serve/responses");
}
