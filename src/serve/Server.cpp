//===- Server.cpp - The mcsafe-serve resident verifier --------------------===//

#include "serve/Server.h"

#include "checker/CertStore.h"
#include "constraints/ProverCache.h"
#include "constraints/Var.h"
#include "support/FaultInjection.h"
#include "support/Io.h"
#include "support/ThreadPool.h"

#include <chrono>
#include <cstring>
#include <sstream>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace mcsafe;
using namespace mcsafe::serve;
using checker::CheckFailure;
using checker::CheckPhase;
using checker::CheckReport;
using checker::CheckVerdict;
using checker::FailureKind;

Server::Conn::~Conn() {
  if (Fd >= 0)
    support::closeFd(Fd);
}

Server::Server(ServerOptions O) : Opts(std::move(O)) {
  NJobs = Opts.Jobs ? Opts.Jobs : support::ThreadPool::hardwareConcurrency();
  if (NJobs == 0)
    NJobs = 1;
}

Server::~Server() {
  requestStop();
  wait();
}

void Server::bumpCounter(const char *Name, uint64_t Delta) {
  if (Opts.Metrics)
    Opts.Metrics->counter(Name).inc(Delta);
}

bool Server::start(std::string &Error) {
  if (Started) {
    Error = "server already started";
    return false;
  }

  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (Opts.SocketPath.empty() ||
      Opts.SocketPath.size() >= sizeof(Addr.sun_path)) {
    Error = "socket path '" + Opts.SocketPath + "' is empty or too long";
    return false;
  }
  std::memcpy(Addr.sun_path, Opts.SocketPath.c_str(),
              Opts.SocketPath.size() + 1);

  int Pipe[2];
  if (::pipe(Pipe) != 0) {
    Error = std::string("pipe: ") + std::strerror(errno);
    return false;
  }
  WakeRd = Pipe[0];
  WakeWr = Pipe[1];

  ListenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (ListenFd < 0) {
    Error = std::string("socket: ") + std::strerror(errno);
    support::closeFd(WakeRd);
    support::closeFd(WakeWr);
    WakeRd = WakeWr = -1;
    return false;
  }
  // A stale socket file from a previous (dead) server blocks bind();
  // replacing it is the standard Unix-daemon move. A *live* server on
  // the same path loses its socket — callers pick unique paths.
  ::unlink(Opts.SocketPath.c_str());
  if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr),
             sizeof(Addr)) != 0 ||
      ::listen(ListenFd, 64) != 0) {
    Error = "cannot listen on '" + Opts.SocketPath +
            "': " + std::strerror(errno);
    support::closeFd(ListenFd);
    support::closeFd(WakeRd);
    support::closeFd(WakeWr);
    ListenFd = WakeRd = WakeWr = -1;
    return false;
  }

  if (Opts.IsolateWorkers) {
    // Checks run in forked workers; the parent deliberately opens no
    // cert store and no shared cache, so no daemon thread ever touches
    // the interner/prover locks a forked child would inherit.
    WorkerPoolOptions W = Opts.Worker;
    W.NumWorkers = NJobs;
    W.CertDir = Opts.CertDir;
    W.DeadlineCapMs = Opts.DeadlineCapMs;
    W.ProverStepsCap = Opts.ProverStepsCap;
    W.MemoryCapBytes = Opts.MemoryCapBytes;
    W.SharedCacheMaxEntries = Opts.SharedCacheMaxEntries;
    W.Metrics = Opts.Metrics;
    W.CollectParentFds = [this] { return parentFdsSnapshot(); };
    Workers = std::make_unique<WorkerPool>(std::move(W));
    // Fork the initial workers before any other daemon thread exists.
    if (!Workers->start(Error)) {
      Error = "worker pool: " + Error;
      Workers.reset();
      support::closeFd(ListenFd);
      support::closeFd(WakeRd);
      support::closeFd(WakeWr);
      ListenFd = WakeRd = WakeWr = -1;
      ::unlink(Opts.SocketPath.c_str());
      return false;
    }
  } else {
    ProverCache::Config CacheCfg;
    CacheCfg.MaxEntries = Opts.SharedCacheMaxEntries;
    SharedCache = std::make_shared<ProverCache>(CacheCfg);
    if (!Opts.CertDir.empty())
      Certs = std::make_unique<checker::CertStore>(Opts.CertDir);
  }
  Pool = std::make_unique<support::ThreadPool>(NJobs);

  // Pre-register the slicing counters so a metrics dump always carries
  // the full set, even from a daemon that served no checks (or served
  // only --no-slicing requests).
  for (const char *Name :
       {"prover/slice/queries", "prover/slice/disjuncts_deduped",
        "prover/slice/eq_eliminated", "prover/slice/components",
        "prover/slice/multi_component", "prover/slice/cache_hits",
        "prover/slice/cache_misses", "prover/slice/omega_avoided"})
    bumpCounter(Name, 0);

  Running.store(true, std::memory_order_release);
  Started = true;
  AcceptThread = std::thread([this] { acceptLoop(); });
  DispatchThread = std::thread([this] { dispatchLoop(); });
  return true;
}

void Server::requestStop() {
  // Only async-signal-safe operations here: this runs straight from the
  // daemon's SIGINT/SIGTERM handler.
  Running.store(false, std::memory_order_release);
  if (WakeWr >= 0) {
    char B = 1;
    (void)support::retryEintr([&] { return ::write(WakeWr, &B, 1); });
  }
}

void Server::wait() {
  if (!Started)
    return;
  // Graceful drain ordering: the accept epilogue shuts down only the
  // *read* side of every connection, the dispatcher answers everything
  // still queued with a shed UNKNOWN, and the pool drain lets in-flight
  // checks finish and send their real responses — every admitted
  // request is answered before any write side closes.
  if (AcceptThread.joinable())
    AcceptThread.join();
  if (DispatchThread.joinable())
    DispatchThread.join();
  Pool.reset();
  if (Workers) {
    Workers->stop();
    Workers.reset();
  }
  // The dispatcher and pool have answered everything they admitted, but
  // a reader may still be draining its receive buffer: requests that
  // were on the wire at shutdown get their shed responses from the
  // reader itself, and closing the write side now would race those
  // sends. Wait for every reader to finish — bounded, so one client
  // that pipelines requests and never reads its responses cannot wedge
  // shutdown (its connection is severed below; a visible reset, not a
  // silent drop).
  {
    std::unique_lock<std::mutex> Lock(Mu);
    CvReaders.wait_for(Lock, std::chrono::seconds(5), [&] {
      for (const std::shared_ptr<Conn> &C : Conns)
        if (!C->ReaderDone.load(std::memory_order_acquire))
          return false;
      return true;
    });
  }
  // All responses are on the wire; now close the write sides so clients
  // see EOF, and join the readers without holding Mu (a reader between
  // its recv and its admission check briefly takes Mu itself).
  std::vector<std::shared_ptr<Conn>> Remaining;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Remaining.swap(Conns);
    Ring.clear();
    TotalPending = 0;
  }
  for (const std::shared_ptr<Conn> &C : Remaining) {
    C->Dead.store(true, std::memory_order_release);
    ::shutdown(C->Fd, SHUT_RDWR);
  }
  for (const std::shared_ptr<Conn> &C : Remaining)
    if (C->Reader.joinable())
      C->Reader.join();
  Remaining.clear();
  if (Certs && Opts.Metrics)
    Certs->publish(*Opts.Metrics);
  Certs.reset();
  if (WakeRd >= 0) {
    support::closeFd(WakeRd);
    support::closeFd(WakeWr);
    WakeRd = WakeWr = -1;
  }
  Started = false;
}

void Server::reapDoneConns() {
  std::lock_guard<std::mutex> Lock(Mu);
  for (size_t I = 0; I < Conns.size();) {
    std::shared_ptr<Conn> &C = Conns[I];
    // A connection is reapable once its reader exited and the dispatcher
    // holds none of its requests. Pool tasks may still hold the
    // shared_ptr; the struct lives until they drop it.
    if (C->ReaderDone.load(std::memory_order_acquire) && !C->InRing &&
        C->Queue.empty()) {
      if (C->Reader.joinable())
        C->Reader.join();
      Conns.erase(Conns.begin() + static_cast<ptrdiff_t>(I));
    } else {
      ++I;
    }
  }
}

void Server::acceptLoop() {
  while (Running.load(std::memory_order_acquire)) {
    pollfd Fds[2];
    Fds[0] = {ListenFd, POLLIN, 0};
    Fds[1] = {WakeRd, POLLIN, 0};
    int N = static_cast<int>(
        support::retryEintr([&] { return ::poll(Fds, 2, 500); }));
    if (N < 0)
      break;
    if (Fds[1].revents & POLLIN)
      break; // requestStop() wrote the wake byte.
    reapDoneConns();
    if (!(Fds[0].revents & POLLIN))
      continue;
    int Fd = static_cast<int>(support::retryEintr(
        [&] { return ::accept(ListenFd, nullptr, nullptr); }));
    if (Fd < 0)
      continue;
    auto C = std::make_shared<Conn>();
    C->Fd = Fd;
    bumpCounter("serve/connections");
    {
      std::lock_guard<std::mutex> Lock(Mu);
      C->Id = NextConnId++;
      Conns.push_back(C);
    }
    C->Reader = std::thread([this, C] { readerLoop(C); });
  }

  support::closeFd(ListenFd);
  ListenFd = -1;
  ::unlink(Opts.SocketPath.c_str());
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Stopping = true;
    // Unblock every reader stuck in recv() — read side only. The write
    // side stays open for the drain: queued requests still get their
    // shed responses and in-flight checks their real ones.
    for (const std::shared_ptr<Conn> &C : Conns)
      ::shutdown(C->Fd, SHUT_RD);
  }
  CvDispatch.notify_all();
}

bool Server::sendFrame(Conn &C, MsgType Type, std::string_view Payload) {
  std::string Frame = encodeFrame(Type, Payload);
  std::lock_guard<std::mutex> Lock(C.WriteMu);
  if (C.Dead.load(std::memory_order_acquire))
    return false;
  // The chaos suite's mid-write disconnect: the peer vanished right
  // before this response hits the wire.
  bool Failed = support::faultPoint("serve/write") ||
                !support::sendAll(C.Fd, Frame);
  if (Failed) {
    // This client is gone (EPIPE thanks to MSG_NOSIGNAL, never a
    // process-killing SIGPIPE). Latch it dead and wake its reader; every
    // other connection's in-flight work is untouched.
    C.Dead.store(true, std::memory_order_release);
    ::shutdown(C.Fd, SHUT_RDWR);
    bumpCounter("serve/write_errors");
    return false;
  }
  return true;
}

void Server::sendShedResponse(const std::shared_ptr<Conn> &C, uint64_t ReqId,
                              const char *Why) {
  bumpCounter("serve/shed");
  CheckResponseMsg Resp;
  Resp.ReqId = ReqId;
  Resp.Shed = true;
  // Fail-sound: a shed request gets UNKNOWN with a structured failure —
  // the checker never ran, so nothing stronger was earned.
  Resp.Report.InputsOk = false;
  Resp.Report.Safe = false;
  Resp.Report.Verdict = CheckVerdict::Unknown;
  Resp.Report.Failures.push_back({CheckPhase::Driver,
                                  FailureKind::ResourceExhausted, std::nullopt,
                                  Why});
  sendFrame(*C, MsgType::CheckResponse, encodeCheckResponse(Resp));
}

void Server::readerLoop(std::shared_ptr<Conn> C) {
  while (!C->Dead.load(std::memory_order_acquire)) {
    char Header[FrameHeaderSize];
    long N = support::recvFull(C->Fd, Header, sizeof(Header));
    if (N <= 0)
      break; // Clean EOF or error/truncation.
    FrameHeader H;
    if (!decodeFrameHeader(std::string_view(Header, sizeof(Header)), H)) {
      bumpCounter("serve/protocol_errors");
      break;
    }
    std::string Payload(H.PayloadLen, '\0');
    if (H.PayloadLen != 0 &&
        support::recvFull(C->Fd, Payload.data(), Payload.size()) !=
            static_cast<long>(Payload.size()))
      break;
    if (!validateFramePayload(H, Payload)) {
      bumpCounter("serve/protocol_errors");
      break;
    }

    if (H.Type == MsgType::Ping) {
      if (!sendFrame(*C, MsgType::Pong, {}))
        break;
      continue;
    }
    if (H.Type == MsgType::StatsRequest) {
      std::ostringstream OS;
      if (Opts.Metrics)
        Opts.Metrics->writeJson(OS);
      else
        OS << "{}";
      if (!sendFrame(*C, MsgType::StatsResponse, OS.str()))
        break;
      continue;
    }
    if (H.Type == MsgType::Shutdown) {
      sendFrame(*C, MsgType::ShutdownAck, {});
      requestStop();
      break;
    }
    if (H.Type != MsgType::CheckRequest) {
      // Server-to-client message types arriving at the server are a
      // protocol violation.
      bumpCounter("serve/protocol_errors");
      break;
    }

    CheckRequestMsg Req;
    if (!decodeCheckRequest(Payload, Req)) {
      bumpCounter("serve/protocol_errors");
      break;
    }
    bumpCounter("serve/requests");

    bool Shed;
    bool Draining;
    {
      std::lock_guard<std::mutex> Lock(Mu);
      Draining = Stopping;
      Shed = Stopping || TotalPending >= Opts.MaxQueue;
      if (!Shed) {
        ++TotalPending;
        C->Queue.push_back(std::move(Req));
        if (!C->InRing) {
          C->InRing = true;
          Ring.push_back(C);
        }
      }
    }
    if (Shed) {
      sendShedResponse(C, Req.ReqId,
                       Draining ? "load shed: server shutting down"
                                : "load shed: admission queue full");
      continue;
    }
    CvDispatch.notify_one();
  }

  // A reader exiting because the server is draining must leave the
  // write side up — responses are still owed to this client. A client
  // that disconnected on its own is latched dead as before.
  if (Running.load(std::memory_order_acquire)) {
    C->Dead.store(true, std::memory_order_release);
    ::shutdown(C->Fd, SHUT_RDWR);
  }
  C->ReaderDone.store(true, std::memory_order_release);
  // Pair with the drain wait in wait(): the empty critical section
  // orders this store against the waiter's predicate check.
  { std::lock_guard<std::mutex> Lock(Mu); }
  CvReaders.notify_all();
}

void Server::dispatchLoop() {
  std::unique_lock<std::mutex> Lock(Mu);
  while (true) {
    CvDispatch.wait(Lock, [&] {
      return Stopping || (!Ring.empty() && Active < NJobs);
    });
    if (Stopping)
      break;
    // Fair round-robin: one request per connection per turn. A
    // connection with more queued work goes to the back of the ring.
    std::shared_ptr<Conn> C = Ring.front();
    Ring.pop_front();
    CheckRequestMsg Req = std::move(C->Queue.front());
    C->Queue.pop_front();
    --TotalPending;
    if (!C->Queue.empty())
      Ring.push_back(C);
    else
      C->InRing = false;
    if (C->Dead.load(std::memory_order_acquire))
      continue; // The client is gone; its queued work is dropped.
    ++Active;
    Lock.unlock();
    Pool->submit([this, C, Req = std::move(Req)] {
      runCheckRequest(C, Req);
      {
        std::lock_guard<std::mutex> G(Mu);
        --Active;
      }
      CvDispatch.notify_all();
    });
    Lock.lock();
  }
  // Drain: every request still queued at shutdown is answered with a
  // shed UNKNOWN — never silently dropped. New arrivals past this point
  // are shed by the readers themselves (Stopping is set).
  std::vector<std::pair<std::shared_ptr<Conn>, uint64_t>> ToShed;
  Ring.clear();
  for (const std::shared_ptr<Conn> &C : Conns) {
    for (const CheckRequestMsg &R : C->Queue)
      ToShed.emplace_back(C, R.ReqId);
    C->Queue.clear();
    C->InRing = false;
  }
  TotalPending = 0;
  Lock.unlock();
  for (const auto &[C, ReqId] : ToShed)
    sendShedResponse(C, ReqId, "load shed: server shutting down");
}

void Server::runCheckRequest(const std::shared_ptr<Conn> &C,
                             const CheckRequestMsg &Req) {
  CheckResponseMsg Resp;
  if (Workers) {
    // Isolation: the check runs in a supervised worker subprocess. Any
    // worker death/hang comes back as a structured UNKNOWN — this
    // thread, the daemon, and every other connection are unaffected.
    Resp = Workers->runRequest(Req);
    Resp.ReqId = Req.ReqId;
  } else {
    Resp.ReqId = Req.ReqId;
    // Same option construction as the worker child (WorkerPool.cpp) —
    // the single helper is what keeps reports byte-identical with
    // isolation on or off.
    checker::SafetyChecker::Options O = requestCheckerOptions(
        Req, Opts.DeadlineCapMs, Opts.ProverStepsCap, Opts.MemoryCapBytes);
    O.SharedProverCache = SharedCache;
    O.Global.Pool = NJobs > 1 ? Pool.get() : nullptr;
    O.Certs = Certs.get();
    Resp.Report = runRequestCheck(Req, O);
  }
  // Slicing counters ride in the report's prover stats, so this works
  // identically with isolation on (decoded from the worker's response
  // bytes) or off (computed in-process).
  const Prover::Stats &PS = Resp.Report.ProverStats;
  bumpCounter("prover/slice/queries", PS.Slice.DisjunctQueries);
  bumpCounter("prover/slice/disjuncts_deduped", PS.Slice.DisjunctsDeduped);
  bumpCounter("prover/slice/eq_eliminated", PS.Slice.EqEliminated);
  bumpCounter("prover/slice/components", PS.Slice.Components);
  bumpCounter("prover/slice/multi_component", PS.Slice.MultiComponent);
  bumpCounter("prover/slice/cache_hits", PS.Slice.CacheHits);
  bumpCounter("prover/slice/cache_misses", PS.Slice.CacheMisses);
  bumpCounter("prover/slice/omega_avoided", PS.Slice.OmegaAvoided);
  if (sendFrame(*C, MsgType::CheckResponse, encodeCheckResponse(Resp)))
    bumpCounter("serve/responses");
}

std::vector<int> Server::parentFdsSnapshot() {
  std::vector<int> Fds;
  if (ListenFd >= 0)
    Fds.push_back(ListenFd);
  if (WakeRd >= 0) {
    Fds.push_back(WakeRd);
    Fds.push_back(WakeWr);
  }
  std::lock_guard<std::mutex> Lock(Mu);
  for (const std::shared_ptr<Conn> &C : Conns)
    if (C->Fd >= 0)
      Fds.push_back(C->Fd);
  return Fds;
}
