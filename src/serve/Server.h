//===- Server.h - The mcsafe-serve resident verifier ------------*- C++ -*-===//
//
// Part of mcsafe, a reproduction of "Safety Checking of Machine Code"
// (Xu, Miller, Reps; PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A long-running verification daemon. Starting a fresh process per check
/// pays the whole warm-up every time — formula interning, type-factory
/// population, an empty prover cache, a cold certificate store. The
/// server keeps all of that resident: one process-wide shared prover
/// cache, one open CertStore, one work-stealing thread pool, reused
/// across every request.
///
/// Concurrency model: one accept thread (poll on the listen socket plus a
/// self-pipe so requestStop() is async-signal-safe), one reader thread
/// per connection, one dispatcher thread, and the checker thread pool.
/// Readers parse frames and enqueue check requests; the dispatcher
/// round-robins across connections (one request per turn, so a client
/// that pipelines 100 requests cannot starve one that sends a single
/// check) and keeps at most `Jobs` checks running on the pool.
///
/// Admission control is fail-sound: when the queued-request total reaches
/// MaxQueue, new requests are shed immediately with an UNKNOWN verdict
/// and a ResourceExhausted failure — the server never blocks a reader on
/// a full queue and never fabricates a SAFE it did not earn. Per-request
/// governor budgets come from the request header, clamped to the server's
/// caps.
///
/// Determinism: each request runs inside its own VarNamespace (exactly
/// like checker/ParallelCheck), so its report is a pure function of its
/// inputs — byte-identical to a cold `mcsafe-check` run of the same
/// program, however warm the caches are.
///
//===----------------------------------------------------------------------===//

#ifndef MCSAFE_SERVE_SERVER_H
#define MCSAFE_SERVE_SERVER_H

#include "serve/Protocol.h"
#include "serve/WorkerPool.h"
#include "support/Metrics.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace mcsafe {
namespace support {
class ThreadPool;
} // namespace support
namespace checker {
class CertStore;
} // namespace checker

namespace serve {

struct ServerOptions {
  /// Unix-domain socket path to listen on. Must fit sockaddr_un (~107
  /// bytes); a stale socket file from a dead server is replaced.
  std::string SocketPath;
  /// Checker worker threads; 0 = hardware concurrency.
  unsigned Jobs = 0;
  /// Admitted-but-unstarted request bound. At or above it, new requests
  /// are shed with verdict UNKNOWN. 0 sheds everything (tests).
  size_t MaxQueue = 256;
  /// Persistent certificate store directory; empty = none.
  std::string CertDir;
  /// Caps on client-requested budgets. 0 = no cap; otherwise the
  /// effective budget is min(requested, cap), and an "unlimited" request
  /// (0) gets the cap itself.
  uint32_t DeadlineCapMs = 0;
  uint64_t ProverStepsCap = 0;
  /// Bound on the shared prover-cache entry count.
  size_t SharedCacheMaxEntries = size_t(1) << 20;
  /// Observability sink ("serve/*" counters; cert/store/* on stop).
  /// Non-owning; may be null.
  support::MetricsRegistry *Metrics = nullptr;
  /// Crash containment: run every check in one of `Jobs` supervised
  /// worker subprocesses (see WorkerPool.h) instead of in-process. A
  /// worker death or hang becomes a structured UNKNOWN for its request;
  /// the daemon itself never dies with a check. With no faults firing,
  /// reports are byte-identical to in-process mode.
  bool IsolateWorkers = false;
  /// Per-check memory budget (governor MemoryBytes) for both modes, and
  /// the basis for the isolated workers' RLIMIT_AS backstop. 0 = none.
  uint64_t MemoryCapBytes = 0;
  /// Isolation tuning (restart/backoff/quarantine/grace). NumWorkers,
  /// CertDir, the budget caps, Metrics, and the fork fd snapshot are
  /// overwritten from the fields above at start().
  WorkerPoolOptions Worker;
};

class Server {
public:
  explicit Server(ServerOptions Opts);
  ~Server();

  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// Binds and listens, then spawns the accept and dispatcher threads.
  /// False (with \p Error set) when the socket cannot be created.
  bool start(std::string &Error);

  /// Initiates shutdown. Async-signal-safe: one atomic store plus one
  /// self-pipe write — callable straight from a SIGINT/SIGTERM handler.
  void requestStop();

  /// Blocks until the server has fully stopped: all threads joined,
  /// in-flight checks drained, connections closed, socket unlinked.
  void wait();

  unsigned jobs() const { return NJobs; }

private:
  /// One client connection. Reader thread, write lock, and the per-
  /// connection FIFO the dispatcher drains fairly.
  struct Conn {
    int Fd = -1;
    uint64_t Id = 0;
    std::thread Reader;
    std::atomic<bool> ReaderDone{false};
    /// Latched on any write error or protocol violation; no further
    /// frames are sent and the socket is shut down.
    std::atomic<bool> Dead{false};
    /// Serializes whole frames onto the socket (checker pool tasks and
    /// the reader thread both send).
    std::mutex WriteMu;
    /// Queued requests, guarded by Server::Mu.
    std::deque<CheckRequestMsg> Queue;
    bool InRing = false; ///< Guarded by Server::Mu.
    ~Conn();
  };

  void acceptLoop();
  void readerLoop(std::shared_ptr<Conn> C);
  void dispatchLoop();
  void runCheckRequest(const std::shared_ptr<Conn> &C,
                       const CheckRequestMsg &Req);
  void sendShedResponse(const std::shared_ptr<Conn> &C, uint64_t ReqId,
                        const char *Why);
  /// Every parent-only fd a forked worker must close: listen socket,
  /// wake pipe, client connections.
  std::vector<int> parentFdsSnapshot();
  /// Encodes and sends one frame under the connection's write lock. On
  /// failure the connection is marked dead and shut down; other
  /// connections (and in-flight checks) are unaffected.
  bool sendFrame(Conn &C, MsgType Type, std::string_view Payload);
  void bumpCounter(const char *Name, uint64_t Delta = 1);
  void reapDoneConns();

  ServerOptions Opts;
  unsigned NJobs = 1;

  int ListenFd = -1;
  int WakeRd = -1, WakeWr = -1; ///< Self-pipe for requestStop().
  std::atomic<bool> Running{false};
  bool Started = false;

  std::unique_ptr<support::ThreadPool> Pool;
  std::shared_ptr<ProverCache> SharedCache;
  std::unique_ptr<checker::CertStore> Certs;
  std::unique_ptr<WorkerPool> Workers; ///< Set iff IsolateWorkers.

  std::thread AcceptThread, DispatchThread;

  /// Guards Conns, Ring, per-conn queues, TotalPending, Active,
  /// Stopping.
  std::mutex Mu;
  std::condition_variable CvDispatch;
  /// Signaled by each reader as it exits; wait() blocks on it so the
  /// write sides stay open until every reader has finished shedding
  /// the tail of its receive buffer.
  std::condition_variable CvReaders;
  std::vector<std::shared_ptr<Conn>> Conns;
  std::deque<std::shared_ptr<Conn>> Ring; ///< Conns with queued work.
  size_t TotalPending = 0;
  unsigned Active = 0;
  bool Stopping = false;
  uint64_t NextConnId = 1;
};

} // namespace serve
} // namespace mcsafe

#endif // MCSAFE_SERVE_SERVER_H
