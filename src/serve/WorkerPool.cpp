//===- WorkerPool.cpp - Supervised verification worker pool ---------------===//

#include "serve/WorkerPool.h"

#include "checker/CertStore.h"
#include "constraints/ProverCache.h"
#include "constraints/Var.h"
#include "support/Digest.h"
#include "support/FaultInjection.h"
#include "support/Io.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <fcntl.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

using namespace mcsafe;
using namespace mcsafe::serve;
using checker::CheckFailure;
using checker::CheckPhase;
using checker::CheckReport;
using checker::CheckVerdict;
using checker::FailureKind;

namespace {

uint64_t nowMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void setRecvTimeoutMs(int Fd, uint64_t Ms) {
  // A zero timeval means "block forever", which is exactly the Ms == 0
  // contract.
  struct timeval TV;
  TV.tv_sec = static_cast<time_t>(Ms / 1000);
  TV.tv_usec = static_cast<suseconds_t>((Ms % 1000) * 1000);
  (void)::setsockopt(Fd, SOL_SOCKET, SO_RCVTIMEO, &TV, sizeof(TV));
}

/// The worker child: a single-threaded loop serving CheckRequest frames
/// on its socketpair until the parent closes it (clean retirement) or
/// something goes wrong. Runs after fork — it must not touch any lock a
/// parent thread might have held at fork time, which is why it builds
/// its own prover cache and cert store and never publishes metrics.
int workerChildMain(int Fd, const WorkerPoolOptions &Opts) {
  std::unique_ptr<checker::CertStore> Certs;
  if (!Opts.CertDir.empty())
    Certs = std::make_unique<checker::CertStore>(Opts.CertDir);
  ProverCache::Config CacheCfg;
  CacheCfg.MaxEntries = Opts.SharedCacheMaxEntries;
  auto Cache = std::make_shared<ProverCache>(CacheCfg);

  for (;;) {
    char Header[FrameHeaderSize];
    long N = support::recvFull(Fd, Header, sizeof(Header));
    if (N == 0)
      return 0; // Parent closed the socket: retire cleanly.
    if (N != static_cast<long>(sizeof(Header)))
      return 3;
    FrameHeader H;
    if (!decodeFrameHeader(std::string_view(Header, sizeof(Header)), H))
      return 3;
    std::string Payload(H.PayloadLen, '\0');
    if (H.PayloadLen != 0 &&
        support::recvFull(Fd, Payload.data(), Payload.size()) !=
            static_cast<long>(Payload.size()))
      return 3;
    if (!validateFramePayload(H, Payload) || H.Type != MsgType::CheckRequest)
      return 3;
    CheckRequestMsg Req;
    if (!decodeCheckRequest(Payload, Req))
      return 3;

    // Chaos sites: the three ways a worker dies in the wild. abort() is
    // the allocator/assert path, SIGKILL is the kernel OOM killer's
    // signature (no handler can run), and the pause() loop is a livelock
    // that only the supervisor's escalation can end.
    if (support::faultPoint("serve/worker-crash"))
      std::abort();
    if (support::faultPoint("serve/worker-oom"))
      (void)::raise(SIGKILL);
    if (support::faultPoint("serve/worker-hang"))
      for (;;)
        ::pause();
    if (Opts.TestHook)
      Opts.TestHook(Req);

    checker::SafetyChecker::Options O = requestCheckerOptions(
        Req, Opts.DeadlineCapMs, Opts.ProverStepsCap, Opts.MemoryCapBytes);
    O.SharedProverCache = Cache;
    O.Certs = Certs.get();

    CheckResponseMsg Resp;
    Resp.ReqId = Req.ReqId;
    Resp.Report = runRequestCheck(Req, O);
    if (!support::sendAll(
            Fd, encodeFrame(MsgType::CheckResponse, encodeCheckResponse(Resp))))
      return 4;
  }
}

} // namespace

checker::SafetyChecker::Options
serve::requestCheckerOptions(const CheckRequestMsg &Req, uint32_t DeadlineCapMs,
                             uint64_t ProverStepsCap, uint64_t MemoryCapBytes) {
  checker::SafetyChecker::Options O;
  O.Lint = (Req.Flags & ReqFlagLint) != 0;
  O.PruneDeadRegs = O.Lint;
  O.KnownBits = (Req.Flags & ReqFlagKnownBits) != 0;
  O.ProverOpts.EnableTiers = (Req.Flags & ReqFlagTiers) != 0;
  O.ProverOpts.EnableSlicing = (Req.Flags & ReqFlagSlicing) != 0;
  O.FailSoft = (Req.Flags & ReqFlagFailSoft) != 0;
  O.Global.DebugTrace = (Req.Flags & ReqFlagTrace) != 0;
  O.Limits.DeadlineMs = clampBudget(Req.DeadlineMs, DeadlineCapMs);
  O.Limits.ProverSteps = clampBudget(Req.ProverSteps, ProverStepsCap);
  O.Limits.MemoryBytes = MemoryCapBytes;
  return O;
}

CheckReport serve::runRequestCheck(const CheckRequestMsg &Req,
                                   const checker::SafetyChecker::Options &O) {
  CheckReport Rep;
  try {
    // A private namespace per request: the report is a pure function of
    // the request's inputs, byte-identical to a cold CLI run no matter
    // how warm the caches are or what ran before.
    VarNamespace NS;
    checker::SafetyChecker Checker(O);
    Rep = Checker.checkSource(Req.Asm, Req.Policy);
  } catch (const std::exception &E) {
    Rep.Safe = false;
    Rep.Verdict = CheckVerdict::InternalError;
    Rep.Failures.push_back({CheckPhase::Driver, FailureKind::InternalError,
                            std::nullopt,
                            std::string("unhandled exception: ") + E.what()});
  } catch (...) {
    Rep.Safe = false;
    Rep.Verdict = CheckVerdict::InternalError;
    Rep.Failures.push_back({CheckPhase::Driver, FailureKind::InternalError,
                            std::nullopt, "unhandled non-standard exception"});
  }
  return Rep;
}

uint64_t serve::requestContentDigest(const CheckRequestMsg &Req) {
  return support::Digest().addBytes(Req.Asm).addBytes(Req.Policy).value();
}

//===----------------------------------------------------------------------===//
// PoisonList
//===----------------------------------------------------------------------===//

void PoisonList::open(std::string P) {
  std::lock_guard<std::mutex> Lock(Mu);
  Path = std::move(P);
  Counts.clear();
  if (Path.empty())
    return;
  std::string Err;
  std::optional<std::string> Data = support::readWholeFile(Path, Err);
  if (!Data)
    return; // Missing or unreadable: start empty.

  // Strict full-file parse; any anomaly degrades to an empty list. Fail
  // open: a lost quarantine costs a few retried crashes, a fabricated
  // entry would wrongly refuse service forever.
  std::string_view Rest = *Data;
  auto TakeLine = [&Rest]() -> std::optional<std::string_view> {
    if (Rest.empty())
      return std::nullopt;
    size_t NL = Rest.find('\n');
    if (NL == std::string_view::npos)
      return std::nullopt; // Every line must be newline-terminated.
    std::string_view Line = Rest.substr(0, NL);
    Rest.remove_prefix(NL + 1);
    return Line;
  };

  std::optional<std::string_view> Magic = TakeLine();
  if (!Magic || *Magic != "MCPOISON 1")
    return;
  std::map<uint64_t, unsigned> Parsed;
  while (!Rest.empty()) {
    std::optional<std::string_view> Line = TakeLine();
    if (!Line || Line->size() < 18 || (*Line)[16] != ' ') {
      Counts.clear();
      return;
    }
    uint64_t Dig = 0;
    for (size_t I = 0; I < 16; ++I) {
      char C = (*Line)[I];
      unsigned V;
      if (C >= '0' && C <= '9')
        V = static_cast<unsigned>(C - '0');
      else if (C >= 'a' && C <= 'f')
        V = static_cast<unsigned>(C - 'a') + 10;
      else {
        Counts.clear();
        return;
      }
      Dig = (Dig << 4) | V;
    }
    uint64_t Count = 0;
    std::string_view Digits = Line->substr(17);
    if (Digits.empty() || Digits.size() > 9) {
      Counts.clear();
      return;
    }
    for (char C : Digits) {
      if (C < '0' || C > '9') {
        Counts.clear();
        return;
      }
      Count = Count * 10 + static_cast<uint64_t>(C - '0');
    }
    if (Count == 0 || !Parsed.emplace(Dig, static_cast<unsigned>(Count)).second) {
      Counts.clear();
      return;
    }
  }
  Counts = std::move(Parsed);
}

bool PoisonList::isPoisoned(uint64_t Digest, unsigned Threshold) const {
  if (Threshold == 0)
    return false;
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Counts.find(Digest);
  return It != Counts.end() && It->second >= Threshold;
}

unsigned PoisonList::recordCrash(uint64_t Digest) {
  std::lock_guard<std::mutex> Lock(Mu);
  unsigned C = ++Counts[Digest];
  save();
  return C;
}

size_t PoisonList::size() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Counts.size();
}

void PoisonList::save() const {
  if (Path.empty())
    return;
  std::string Body = "MCPOISON 1\n";
  char Line[40];
  for (const auto &[Dig, Count] : Counts) {
    std::snprintf(Line, sizeof(Line), "%016llx %u\n",
                  static_cast<unsigned long long>(Dig), Count);
    Body += Line;
  }
  // The CertStore publish discipline: a unique temp name (pid + serial,
  // so concurrent writers and post-fork writers never interleave on one
  // file) then an atomic rename. Readers see the old list or the new
  // one, never a torn write.
  static std::atomic<uint64_t> TmpSerial{0};
  std::string Tmp = Path + ".tmp." + std::to_string(::getpid()) + "." +
                    std::to_string(TmpSerial.fetch_add(1));
  int Fd = ::open(Tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (Fd < 0)
    return; // Unwritable quarantine dir degrades to memory-only.
  bool Ok = support::writeAllFd(Fd, Body);
  support::closeFd(Fd);
  if (!Ok || ::rename(Tmp.c_str(), Path.c_str()) != 0)
    ::unlink(Tmp.c_str());
}

//===----------------------------------------------------------------------===//
// WorkerPool
//===----------------------------------------------------------------------===//

WorkerPool::WorkerPool(WorkerPoolOptions O) : Opts(std::move(O)) {
  if (Opts.NumWorkers == 0)
    Opts.NumWorkers = 1;
}

WorkerPool::~WorkerPool() { stop(); }

void WorkerPool::bumpCounter(const char *Name, uint64_t Delta) {
  if (Opts.Metrics)
    Opts.Metrics->counter(Name).inc(Delta);
}

bool WorkerPool::spawnSlot(size_t Idx, std::string &Error) {
  std::vector<int> ParentFds;
  if (Opts.CollectParentFds)
    ParentFds = Opts.CollectParentFds();
  // Sibling workers' parent-end sockets too: a child holding a copy of a
  // sibling's socketpair would keep that sibling from ever seeing EOF
  // when the parent closes its end.
  for (const Slot &S : Slots)
    if (S.Child.Fd >= 0)
      ParentFds.push_back(S.Child.Fd);

  support::ChildLimits Limits;
  if (Opts.MemoryCapBytes && Opts.MemoryCapBytes < (uint64_t(1) << 50)) {
    // RLIMIT_AS covers every mapping the child inherited, not just check
    // allocations; 4x the governor budget plus configured slack keeps
    // the kernel backstop behind (not in front of) the soft governor.
    Limits.AddressSpaceBytes =
        Opts.MemoryCapBytes * 4 + Opts.RlimitSlackBytes;
  }
  if (Opts.DeadlineCapMs && Opts.RotateAfterRequests) {
    // RLIMIT_CPU is cumulative over the worker's life; rotation bounds
    // the request count, so a generous per-request allowance still gives
    // a finite ceiling for a worker that ignores its soft deadline.
    uint64_t PerRequestS = uint64_t(Opts.DeadlineCapMs + 999) / 1000 + 1;
    Limits.CpuSeconds = PerRequestS * Opts.RotateAfterRequests * 2 + 30;
  }

  const WorkerPoolOptions *O = &Opts;
  support::ChildProcess Child = support::spawnChildWithSocket(
      Limits, ParentFds, [O](int Fd) { return workerChildMain(Fd, *O); },
      Error);
  if (!Child.valid())
    return false;
  Slot &S = Slots[Idx];
  S.Child = Child;
  S.Busy = false;
  S.RequestsServed = 0;
  bumpCounter("serve/worker/spawned");
  return true;
}

bool WorkerPool::start(std::string &Error) {
  std::lock_guard<std::mutex> Lock(Mu);
  if (Started) {
    Error = "worker pool already started";
    return false;
  }
  Poison.open(Opts.QuarantineFile);
  // Pre-register every worker counter so a metrics dump always carries
  // the full set, crashes or not.
  for (const char *Name :
       {"serve/worker/spawned", "serve/worker/crashes", "serve/worker/hangs",
        "serve/worker/restarts", "serve/worker/recycled",
        "serve/worker/parked", "serve/worker/quarantined",
        "serve/worker/quarantine_rejects"})
    bumpCounter(Name, 0);

  Slots.clear();
  Slots.resize(Opts.NumWorkers);
  for (size_t I = 0; I < Slots.size(); ++I) {
    if (!spawnSlot(I, Error)) {
      for (Slot &S : Slots) {
        if (S.Child.valid()) {
          support::closeFd(S.Child.Fd);
          (void)support::terminateChild(S.Child.Pid, 0);
        }
        S.Child = {};
      }
      Slots.clear();
      return false;
    }
  }
  Stopping = false;
  Started = true;
  Supervisor = std::thread([this] { supervisorLoop(); });
  return true;
}

void WorkerPool::stop() {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    if (!Started)
      return;
    Stopping = true;
  }
  CvSupervisor.notify_all();
  CvIdle.notify_all();
  if (Supervisor.joinable())
    Supervisor.join();
  // By contract no runRequest() caller remains (the server drains its
  // pool first), so every slot is parent-owned here. Close all sockets
  // first — idle workers exit on EOF — then escalate stragglers.
  for (Slot &S : Slots)
    if (S.Child.Fd >= 0) {
      support::closeFd(S.Child.Fd);
      S.Child.Fd = -1;
    }
  for (Slot &S : Slots) {
    if (S.Child.valid())
      (void)support::terminateChild(S.Child.Pid, 200);
    S.Child = {};
  }
  Slots.clear();
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Started = false;
  }
}

void WorkerPool::recordAbnormalDeath(Slot &S) {
  ++S.CrashStreak;
  if (Opts.MaxRestarts && S.CrashStreak > Opts.MaxRestarts) {
    S.Parked = true;
    bumpCounter("serve/worker/parked");
    return;
  }
  unsigned Shift = S.CrashStreak > 16 ? 16u : S.CrashStreak - 1;
  uint64_t Backoff = uint64_t(Opts.RestartBackoffBaseMs) << Shift;
  if (Backoff > Opts.RestartBackoffCapMs)
    Backoff = Opts.RestartBackoffCapMs;
  S.RespawnAtMs = nowMs() + Backoff;
}

CheckResponseMsg WorkerPool::containedFailure(uint64_t ReqId, FailureKind Kind,
                                              std::string Detail) {
  CheckResponseMsg Resp;
  Resp.ReqId = ReqId;
  // Fail-sound: the check did not run to completion, so nothing stronger
  // than UNKNOWN was earned.
  Resp.Report.InputsOk = false;
  Resp.Report.Safe = false;
  Resp.Report.Verdict = CheckVerdict::Unknown;
  Resp.Report.Failures.push_back(
      {CheckPhase::Driver, Kind, std::nullopt, std::move(Detail)});
  return Resp;
}

void WorkerPool::noteCrashForQuarantine(uint64_t Dig) {
  if (Opts.QuarantineAfter == 0)
    return;
  unsigned Count = Poison.recordCrash(Dig);
  if (Count == Opts.QuarantineAfter)
    bumpCounter("serve/worker/quarantined");
}

CheckResponseMsg WorkerPool::runRequest(const CheckRequestMsg &Req) {
  uint64_t Dig = requestContentDigest(Req);
  if (Poison.isPoisoned(Dig, Opts.QuarantineAfter)) {
    bumpCounter("serve/worker/quarantine_rejects");
    return containedFailure(
        Req.ReqId, FailureKind::Quarantined,
        "input quarantined: its content digest crashed " +
            std::to_string(Opts.QuarantineAfter) +
            " workers; refusing to re-run it");
  }

  // Acquire an idle worker. Dead-but-restartable slots are worth waiting
  // for (the supervisor will respawn them); a pool where every slot is
  // parked is terminal and answers immediately.
  size_t Idx = SIZE_MAX;
  int Fd = -1;
  pid_t Pid = -1;
  {
    std::unique_lock<std::mutex> Lock(Mu);
    for (;;) {
      if (Stopping || !Started)
        return containedFailure(Req.ReqId, FailureKind::ResourceExhausted,
                                "worker pool is stopping");
      bool AnyUsable = false;
      for (size_t I = 0; I < Slots.size(); ++I) {
        if (Slots[I].Parked)
          continue;
        AnyUsable = true;
        if (Slots[I].Child.valid() && Slots[I].Child.Fd >= 0 &&
            !Slots[I].Busy) {
          Idx = I;
          break;
        }
      }
      if (Idx != SIZE_MAX)
        break;
      if (!AnyUsable)
        return containedFailure(
            Req.ReqId, FailureKind::ResourceExhausted,
            "worker pool exhausted: every worker parked after repeated "
            "crashes");
      CvIdle.wait(Lock);
    }
    Slots[Idx].Busy = true;
    Fd = Slots[Idx].Child.Fd;
    Pid = Slots[Idx].Child.Pid;
  }
  // From here this thread owns the slot: the supervisor never touches
  // busy slots, so Fd/Pid are stable without the lock.

  uint32_t EffDeadlineMs = clampBudget(Req.DeadlineMs, Opts.DeadlineCapMs);
  uint64_t WaitMs = EffDeadlineMs
                        ? uint64_t(EffDeadlineMs) + Opts.GraceMs
                        : Opts.HangTimeoutMs;
  setRecvTimeoutMs(Fd, WaitMs);

  bool TimedOut = false;
  bool Failed = false;
  CheckResponseMsg Resp;
  do {
    if (!support::sendAll(
            Fd, encodeFrame(MsgType::CheckRequest, encodeCheckRequest(Req)))) {
      Failed = true;
      break;
    }
    char Header[FrameHeaderSize];
    long N = support::recvFull(Fd, Header, sizeof(Header));
    if (N != static_cast<long>(sizeof(Header))) {
      TimedOut = N < 0 && (errno == EAGAIN || errno == EWOULDBLOCK);
      Failed = true;
      break;
    }
    FrameHeader H;
    if (!decodeFrameHeader(std::string_view(Header, sizeof(Header)), H)) {
      Failed = true;
      break;
    }
    std::string Payload(H.PayloadLen, '\0');
    if (H.PayloadLen != 0 &&
        support::recvFull(Fd, Payload.data(), Payload.size()) !=
            static_cast<long>(Payload.size())) {
      TimedOut = errno == EAGAIN || errno == EWOULDBLOCK;
      Failed = true;
      break;
    }
    if (!validateFramePayload(H, Payload) ||
        H.Type != MsgType::CheckResponse ||
        !decodeCheckResponse(Payload, Resp) || Resp.ReqId != Req.ReqId) {
      Failed = true; // Garbage from a worker is treated as a death.
      break;
    }
  } while (false);

  if (Failed) {
    // Reap (or kill, for a hang/protocol violation — harmless when the
    // worker is already a zombie) and convert the death into a verdict.
    int Status = support::terminateChild(Pid, Opts.GraceMs);
    std::string Detail;
    if (TimedOut)
      Detail = "worker hung: no response within " + std::to_string(WaitMs) +
               " ms (deadline + grace); worker " +
               support::describeWaitStatus(Status);
    else
      Detail = "worker died mid-check: " + support::describeWaitStatus(Status);
    support::closeFd(Fd);
    {
      std::lock_guard<std::mutex> Lock(Mu);
      Slot &S = Slots[Idx];
      S.Child = {};
      S.Busy = false;
      recordAbnormalDeath(S);
    }
    CvSupervisor.notify_one();
    CvIdle.notify_all();
    bumpCounter("serve/worker/crashes");
    if (TimedOut)
      bumpCounter("serve/worker/hangs");
    noteCrashForQuarantine(Dig);
    return containedFailure(Req.ReqId, FailureKind::WorkerCrashed,
                            std::move(Detail));
  }

  // Success: release the slot, rotating the worker out if it has served
  // its quota (closing our end makes it exit 0; the supervisor reaps it
  // as a recycle and forks a replacement).
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Slot &S = Slots[Idx];
    S.Busy = false;
    S.CrashStreak = 0;
    ++S.RequestsServed;
    if (Opts.RotateAfterRequests &&
        S.RequestsServed >= Opts.RotateAfterRequests) {
      support::closeFd(S.Child.Fd);
      S.Child.Fd = -1;
      S.RespawnAtMs = 0;
    }
  }
  CvIdle.notify_one();
  CvSupervisor.notify_one();
  return Resp;
}

void WorkerPool::supervisorLoop() {
  std::unique_lock<std::mutex> Lock(Mu);
  while (!Stopping) {
    // Sleep until the nearest due respawn, bounded by an idle-reap poll.
    uint64_t Now = nowMs();
    uint64_t SleepMs = 50;
    for (const Slot &S : Slots)
      if (!S.Child.valid() && !S.Parked && !S.Busy) {
        uint64_t Due = S.RespawnAtMs > Now ? S.RespawnAtMs - Now : 0;
        if (Due < SleepMs)
          SleepMs = Due;
      }
    if (SleepMs > 0)
      CvSupervisor.wait_for(Lock, std::chrono::milliseconds(SleepMs));
    if (Stopping)
      break;
    Now = nowMs();
    for (size_t I = 0; I < Slots.size(); ++I) {
      Slot &S = Slots[I];
      if (S.Busy || S.Parked)
        continue;
      if (S.Child.valid()) {
        // Idle slots are supervisor-owned: reap deaths that happened
        // outside any request (rotation exits, idle crashes). Busy
        // slots are reaped by their requesting thread, never here.
        int Status = 0;
        support::ReapStatus R = support::reapChild(S.Child.Pid, Status);
        if (R == support::ReapStatus::Running)
          continue;
        if (S.Child.Fd >= 0)
          support::closeFd(S.Child.Fd);
        S.Child = {};
        if (R == support::ReapStatus::Exited &&
            support::exitedCleanly(Status)) {
          bumpCounter("serve/worker/recycled");
          S.RespawnAtMs = 0;
        } else {
          bumpCounter("serve/worker/crashes");
          recordAbnormalDeath(S);
        }
      }
      if (!S.Child.valid() && !S.Parked && Now >= S.RespawnAtMs) {
        std::string Err;
        if (spawnSlot(I, Err)) {
          bumpCounter("serve/worker/restarts");
          CvIdle.notify_all();
        } else {
          // Transient fork failure (EAGAIN under pressure): retry later.
          S.RespawnAtMs = Now + 1000;
        }
      }
    }
  }
}
