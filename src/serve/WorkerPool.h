//===- WorkerPool.h - Supervised verification worker pool -------*- C++ -*-===//
//
// Part of mcsafe, a reproduction of "Safety Checking of Machine Code"
// (Xu, Miller, Reps; PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Crash containment for mcsafe-serve: N pre-forked worker subprocesses,
/// each connected to the daemon by a socketpair speaking the MSRV frame
/// protocol, run the actual verification. The daemon keeps only a small
/// supervisor: send a CheckRequest frame, wait (bounded by the request
/// deadline plus a grace window) for the CheckResponse, and translate
/// every other outcome — EOF, a wait status, a timeout — into a
/// structured UNKNOWN verdict. A worker may segfault, abort, be
/// OOM-killed, or spin forever; the affected request gets
/// `driver/worker-crashed`, every other client is untouched, and the
/// daemon never dies and never reports a SAFE it did not earn.
///
/// Worker lifecycle (per slot):
///
///   IDLE --acquire--> BUSY --response--> IDLE        (crash streak := 0)
///    |                  \--EOF/status--> DEAD        (streak+1, backoff)
///    |                  \--timeout: TERM->KILL-> DEAD
///    |--idle EOF, exit 0------> DEAD (recycle: no streak, no backoff)
///    |--idle EOF, other-------> DEAD (streak+1, backoff)
///   DEAD --supervisor respawn after backoff--> IDLE
///   DEAD --streak > MaxRestarts--> PARKED            (terminal)
///
/// Workers are recycled (told to exit cleanly by closing their socket)
/// after RotateAfterRequests checks, which bounds the lifetime behind the
/// cumulative RLIMIT_CPU backstop and sheds any slow leak.
///
/// Quarantine: a request's content digest (assembly + policy bytes) that
/// crashes workers QuarantineAfter times is poisoned — subsequent
/// identical inputs get `driver/quarantined` UNKNOWN immediately instead
/// of grinding the pool. The poison list persists across daemon restarts
/// with the CertStore write discipline (unique temp + rename); a corrupt
/// file degrades to an empty list, never a crash.
///
/// Determinism: workers build their checker options through
/// requestCheckerOptions(), the same helper the in-process path uses, and
/// run one request per VarNamespace — so with no faults firing, reports
/// are byte-identical with isolation on or off, at any --jobs.
///
//===----------------------------------------------------------------------===//

#ifndef MCSAFE_SERVE_WORKERPOOL_H
#define MCSAFE_SERVE_WORKERPOOL_H

#include "serve/Protocol.h"
#include "support/Metrics.h"
#include "support/Subprocess.h"

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace mcsafe {
namespace serve {

/// The effective budget for a request: the server cap bounds whatever
/// the client asked for, and an "unlimited" ask (0) gets the cap itself.
template <typename T> T clampBudget(T Requested, T Cap) {
  if (Cap == 0)
    return Requested;
  if (Requested == 0)
    return Cap;
  return Requested < Cap ? Requested : Cap;
}

/// The checker options a request maps to. The single source of truth for
/// both the in-process path (Server::runCheckRequest) and the worker
/// child: byte-identity between isolation on and off holds because both
/// build options here and only add process-local plumbing (caches, pool,
/// cert store) on top.
checker::SafetyChecker::Options
requestCheckerOptions(const CheckRequestMsg &Req, uint32_t DeadlineCapMs,
                      uint64_t ProverStepsCap, uint64_t MemoryCapBytes);

/// Runs one check with fully-built options, converting any escaped
/// exception into an InternalError report. Shared by the in-process path
/// and the worker child main.
checker::CheckReport runRequestCheck(const CheckRequestMsg &Req,
                                     const checker::SafetyChecker::Options &O);

/// The quarantine key: a stable content digest of the request's assembly
/// and policy bytes (not its display name or budgets).
uint64_t requestContentDigest(const CheckRequestMsg &Req);

/// The persisted crash-count ledger behind quarantine. Thread-safe.
/// File format (text, one record per line):
///
///   MCPOISON 1
///   <16 lowercase hex digest> <decimal crash count>
///
/// Loading is strict: any malformed byte degrades the whole file to an
/// empty list (fail open — a lost quarantine costs retries, a fabricated
/// one would wrongly refuse service). Every recorded crash rewrites the
/// file atomically (unique temp + rename), so a poison list is never
/// observed half-written.
class PoisonList {
public:
  /// Sets the backing file (empty = memory only) and loads it.
  void open(std::string Path);

  /// True once \p Digest has at least \p Threshold recorded crashes.
  bool isPoisoned(uint64_t Digest, unsigned Threshold) const;

  /// Records one crash for \p Digest, persists, and returns the new
  /// count for the digest.
  unsigned recordCrash(uint64_t Digest);

  size_t size() const;

private:
  void save() const;

  mutable std::mutex Mu;
  std::map<uint64_t, unsigned> Counts;
  std::string Path;
};

struct WorkerPoolOptions {
  /// Worker subprocess count; 0 treated as 1.
  unsigned NumWorkers = 1;
  /// Certificate store directory each worker opens (empty = none). The
  /// store's own concurrent-writer discipline (unique temp names) makes
  /// multi-process sharing safe.
  std::string CertDir;
  /// Budget caps, exactly as in ServerOptions; also the source for the
  /// workers' hard kernel limits.
  uint32_t DeadlineCapMs = 0;
  uint64_t ProverStepsCap = 0;
  /// Per-check memory budget for the cooperative governor, and the basis
  /// for the RLIMIT_AS backstop. 0 = no memory budget and no RLIMIT_AS.
  uint64_t MemoryCapBytes = 0;
  /// Address-space headroom added on top of MemoryCapBytes for the
  /// RLIMIT_AS ceiling: the child's fork-inherited mappings (code, test
  /// rig, thread stacks) all count against RLIMIT_AS. Tests shrink this
  /// to make the limit actually reachable.
  uint64_t RlimitSlackBytes = 768ull << 20;
  /// SIGTERM -> SIGKILL escalation window, and the extra time past a
  /// request's deadline before the supervisor declares the worker hung.
  unsigned GraceMs = 1000;
  /// Response-wait bound for requests with no effective deadline.
  /// 0 = wait forever (matches in-process behavior: an unbounded
  /// request may legitimately run unboundedly).
  unsigned HangTimeoutMs = 0;
  /// Consecutive abnormal deaths a slot survives before it is parked
  /// permanently. 0 = never park (restart forever).
  unsigned MaxRestarts = 0;
  /// Exponential restart backoff: base * 2^(streak-1), capped.
  unsigned RestartBackoffBaseMs = 50;
  unsigned RestartBackoffCapMs = 5000;
  /// Recycle a worker (clean exit + fresh fork) after this many
  /// requests; bounds cumulative-CPU accumulation under RLIMIT_CPU.
  /// 0 = never recycle.
  unsigned RotateAfterRequests = 256;
  /// Crashes of one content digest before it is quarantined. 0 disables
  /// quarantine entirely.
  unsigned QuarantineAfter = 3;
  /// Poison-list persistence path; empty = memory only.
  std::string QuarantineFile;
  /// Bound on each worker's private prover-cache entry count (workers
  /// cannot share the in-process cache across a process boundary).
  size_t SharedCacheMaxEntries = size_t(1) << 20;
  /// Observability sink (serve/worker/* counters). Non-owning.
  support::MetricsRegistry *Metrics = nullptr;
  /// Called at each fork to snapshot parent-only fds (listen socket,
  /// wake pipe, client connections) the child must close.
  std::function<std::vector<int>()> CollectParentFds;
  /// Test-only: runs in the worker child before each check. Lets tests
  /// crash/hang/bloat a worker deterministically in any build, not just
  /// MCSAFE_FAULT_INJECTION ones.
  std::function<void(const CheckRequestMsg &)> TestHook;
};

class WorkerPool {
public:
  explicit WorkerPool(WorkerPoolOptions Opts);
  ~WorkerPool();

  WorkerPool(const WorkerPool &) = delete;
  WorkerPool &operator=(const WorkerPool &) = delete;

  /// Forks the initial workers and starts the supervisor thread. Must be
  /// called before any daemon thread exists beyond the caller (fork
  /// discipline; see Subprocess.h). False with \p Error on failure.
  bool start(std::string &Error);

  /// Kills and reaps every worker, stops the supervisor. Idempotent.
  void stop();

  /// Runs one request on an idle worker, blocking until a response or a
  /// contained failure. Thread-safe; called from the server's pool
  /// tasks. Always returns a response for Req.ReqId — a real report, or
  /// a structured UNKNOWN when the worker crashed/hung, the input is
  /// quarantined, the pool is stopping, or every slot is parked.
  CheckResponseMsg runRequest(const CheckRequestMsg &Req);

private:
  struct Slot {
    support::ChildProcess Child; ///< Invalid when DEAD/PARKED.
    bool Busy = false;
    bool Parked = false;
    unsigned CrashStreak = 0;
    unsigned RequestsServed = 0;
    /// Steady-clock ms when a dead slot becomes eligible for respawn.
    uint64_t RespawnAtMs = 0;
  };

  void supervisorLoop();
  bool spawnSlot(size_t Idx, std::string &Error); ///< Caller holds Mu.
  /// Marks a busy slot dead after an abnormal death and schedules its
  /// respawn (or parks it). Caller holds Mu.
  void recordAbnormalDeath(Slot &S);
  CheckResponseMsg containedFailure(uint64_t ReqId, checker::FailureKind Kind,
                                    std::string Detail);
  /// Quarantine bookkeeping for a crash of \p Dig; returns true when
  /// this crash tripped the threshold.
  void noteCrashForQuarantine(uint64_t Dig);
  void bumpCounter(const char *Name, uint64_t Delta = 1);

  WorkerPoolOptions Opts;
  PoisonList Poison;

  std::mutex Mu;
  std::condition_variable CvIdle;       ///< An idle worker may exist.
  std::condition_variable CvSupervisor; ///< Respawn work may exist.
  std::vector<Slot> Slots;
  bool Stopping = false;
  bool Started = false;
  std::thread Supervisor;
};

} // namespace serve
} // namespace mcsafe

#endif // MCSAFE_SERVE_WORKERPOOL_H
