//===- AsmParser.cpp ------------------------------------------------------===//

#include "sparc/AsmParser.h"

#include "support/StringUtils.h"

#include <cassert>
#include <cctype>
#include <map>
#include <sstream>

using namespace mcsafe;
using namespace mcsafe::sparc;

namespace {

/// A branch/call target awaiting resolution.
struct PendingTarget {
  uint32_t InstIndex;     ///< Which emitted instruction to patch.
  std::string Symbol;     ///< Label name; empty when numeric.
  int64_t StatementNo;    ///< 1-based statement number; -1 when symbolic.
  bool IsCall;
  uint32_t Line;
};

class Assembler {
public:
  explicit Assembler(std::string_view Source) : Source(Source) {}

  std::optional<Module> run(std::string *Error);

private:
  bool parseLine(std::string_view Line);
  bool parseStatement(std::string_view Stmt);
  bool emitOp(std::string_view Mnemonic, bool Annul,
              const std::vector<std::string_view> &Ops);

  /// Emits \p Inst tagged with the current source line.
  void emit(Instruction Inst) {
    Inst.SourceLine = CurLine;
    M.Insts.push_back(Inst);
  }

  bool fail(const std::string &Message) {
    std::ostringstream OS;
    OS << "line " << CurLine << ": " << Message;
    ErrorMessage = OS.str();
    return false;
  }

  /// Splits an operand list on top-level commas (commas inside [...] or
  /// (...) do not split).
  static std::vector<std::string_view> splitOperands(std::string_view S);

  bool parseRegOp(std::string_view Text, Reg &R);
  /// Parses "reg" or "imm" into (UsesImm, Imm, Rs2).
  bool parseRegOrImm(std::string_view Text, bool &UsesImm, int32_t &Imm,
                     Reg &Rs2);
  /// Parses "[%r]", "[%r+imm]", "[%r-imm]", "[%r+%r]", "[imm]".
  bool parseMemAddr(std::string_view Text, Reg &Rs1, bool &UsesImm,
                    int32_t &Imm, Reg &Rs2);
  /// Parses an immediate, honoring %hi(x) and %lo(x).
  bool parseImm(std::string_view Text, int64_t &Value);

  /// Records a branch/call target (label or statement number) for the
  /// instruction that is about to be emitted.
  void addPendingTarget(std::string_view Target, bool IsCall);

  std::string_view Source;
  Module M;
  std::string ErrorMessage;
  uint32_t CurLine = 0;
  /// 1-based count of instruction statements seen so far.
  uint32_t StatementCount = 0;
  /// Statement number -> index of its first emitted instruction.
  std::map<uint32_t, uint32_t> StatementStart;
  std::vector<PendingTarget> Pending;
  std::vector<std::string> PendingLabels;
};

std::vector<std::string_view> Assembler::splitOperands(std::string_view S) {
  std::vector<std::string_view> Ops;
  int Depth = 0;
  size_t Begin = 0;
  for (size_t I = 0; I <= S.size(); ++I) {
    if (I == S.size() || (S[I] == ',' && Depth == 0)) {
      std::string_view Piece = trim(S.substr(Begin, I - Begin));
      if (!Piece.empty())
        Ops.push_back(Piece);
      Begin = I + 1;
      continue;
    }
    if (S[I] == '[' || S[I] == '(')
      ++Depth;
    else if (S[I] == ']' || S[I] == ')')
      --Depth;
  }
  return Ops;
}

bool Assembler::parseRegOp(std::string_view Text, Reg &R) {
  std::optional<Reg> Parsed = parseReg(Text);
  if (!Parsed)
    return fail("expected register, got '" + std::string(Text) + "'");
  R = *Parsed;
  return true;
}

bool Assembler::parseImm(std::string_view Text, int64_t &Value) {
  Text = trim(Text);
  bool Hi = startsWith(Text, "%hi(");
  bool Lo = startsWith(Text, "%lo(");
  if (Hi || Lo) {
    if (Text.back() != ')')
      return fail("unterminated %hi/%lo");
    std::optional<int64_t> Inner = parseInt(Text.substr(4, Text.size() - 5));
    if (!Inner)
      return fail("bad %hi/%lo operand");
    Value = Hi ? ((*Inner >> 10) & 0x3FFFFF) : (*Inner & 0x3FF);
    return true;
  }
  std::optional<int64_t> Parsed = parseInt(Text);
  if (!Parsed)
    return fail("expected immediate, got '" + std::string(Text) + "'");
  Value = *Parsed;
  return true;
}

bool Assembler::parseRegOrImm(std::string_view Text, bool &UsesImm,
                              int32_t &Imm, Reg &Rs2) {
  Text = trim(Text);
  if (std::optional<Reg> R = parseReg(Text)) {
    UsesImm = false;
    Rs2 = *R;
    return true;
  }
  int64_t Value;
  if (!parseImm(Text, Value))
    return false;
  if (Value < -4096 || Value > 4095)
    return fail("immediate out of simm13 range: " + std::to_string(Value));
  UsesImm = true;
  Imm = static_cast<int32_t>(Value);
  return true;
}

bool Assembler::parseMemAddr(std::string_view Text, Reg &Rs1, bool &UsesImm,
                             int32_t &Imm, Reg &Rs2) {
  Text = trim(Text);
  if (Text.size() < 2 || Text.front() != '[' || Text.back() != ']')
    return fail("expected memory operand [..], got '" + std::string(Text) +
                "'");
  std::string_view Body = trim(Text.substr(1, Text.size() - 2));
  // Find a top-level '+' or '-' separating base and offset (skip the
  // leading register's '%').
  size_t SplitPos = std::string_view::npos;
  char SplitChar = 0;
  for (size_t I = 1; I < Body.size(); ++I) {
    if (Body[I] == '+' || Body[I] == '-') {
      SplitPos = I;
      SplitChar = Body[I];
      break;
    }
  }
  if (SplitPos == std::string_view::npos) {
    if (std::optional<Reg> R = parseReg(Body)) {
      Rs1 = *R;
      UsesImm = true;
      Imm = 0;
      return true;
    }
    int64_t Value;
    if (!parseImm(Body, Value))
      return false;
    if (Value < -4096 || Value > 4095)
      return fail("absolute address out of simm13 range");
    Rs1 = G0;
    UsesImm = true;
    Imm = static_cast<int32_t>(Value);
    return true;
  }
  if (!parseRegOp(trim(Body.substr(0, SplitPos)), Rs1))
    return false;
  std::string_view Rest = trim(Body.substr(SplitPos + 1));
  if (SplitChar == '+') {
    if (std::optional<Reg> R = parseReg(Rest)) {
      UsesImm = false;
      Rs2 = *R;
      return true;
    }
  }
  int64_t Value;
  if (!parseImm(Rest, Value))
    return false;
  if (SplitChar == '-')
    Value = -Value;
  if (Value < -4096 || Value > 4095)
    return fail("memory offset out of simm13 range");
  UsesImm = true;
  Imm = static_cast<int32_t>(Value);
  return true;
}

void Assembler::addPendingTarget(std::string_view Target, bool IsCall) {
  PendingTarget P;
  P.InstIndex = static_cast<uint32_t>(M.Insts.size());
  P.IsCall = IsCall;
  P.Line = CurLine;
  if (std::optional<int64_t> N = parseInt(Target)) {
    P.StatementNo = *N;
  } else {
    P.StatementNo = -1;
    P.Symbol = std::string(Target);
  }
  Pending.push_back(std::move(P));
}

bool Assembler::parseLine(std::string_view Line) {
  // Strip comments.
  for (size_t I = 0; I < Line.size(); ++I) {
    if (Line[I] == '!' || Line[I] == '#') {
      Line = Line.substr(0, I);
      break;
    }
  }
  Line = trim(Line);
  if (Line.empty())
    return true;
  // Peel leading "label:" prefixes.
  while (true) {
    size_t Colon = Line.find(':');
    if (Colon == std::string_view::npos)
      break;
    std::string_view Candidate = trim(Line.substr(0, Colon));
    bool IsIdent = !Candidate.empty();
    for (char C : Candidate)
      if (!std::isalnum(static_cast<unsigned char>(C)) && C != '_' &&
          C != '.' && C != '$')
        IsIdent = false;
    if (!IsIdent)
      break;
    PendingLabels.push_back(std::string(Candidate));
    Line = trim(Line.substr(Colon + 1));
    if (Line.empty())
      return true;
  }
  return parseStatement(Line);
}

bool Assembler::parseStatement(std::string_view Stmt) {
  // Bind pending labels to the next instruction.
  uint32_t Here = static_cast<uint32_t>(M.Insts.size());
  for (const std::string &L : PendingLabels) {
    if (M.Labels.count(L))
      return fail("duplicate label '" + L + "'");
    M.Labels[L] = Here;
  }
  PendingLabels.clear();

  ++StatementCount;
  StatementStart[StatementCount] = Here;

  // Split mnemonic (with optional ",a" suffix) from operands.
  size_t Space = Stmt.find_first_of(" \t");
  std::string_view Head =
      Space == std::string_view::npos ? Stmt : Stmt.substr(0, Space);
  std::string_view Rest =
      Space == std::string_view::npos ? std::string_view()
                                      : trim(Stmt.substr(Space + 1));
  bool Annul = false;
  size_t Comma = Head.find(',');
  std::string Mnemonic(Head.substr(0, Comma));
  for (char &C : Mnemonic)
    C = static_cast<char>(std::tolower(static_cast<unsigned char>(C)));
  if (Comma != std::string_view::npos) {
    std::string_view Suffix = Head.substr(Comma + 1);
    if (Suffix != "a")
      return fail("unknown mnemonic suffix '" + std::string(Suffix) + "'");
    Annul = true;
  }
  return emitOp(Mnemonic, Annul, splitOperands(Rest));
}

bool Assembler::emitOp(std::string_view Mnemonic, bool Annul,
                       const std::vector<std::string_view> &Ops) {
  auto RequireOps = [&](size_t N) {
    if (Ops.size() == N)
      return true;
    return fail("'" + std::string(Mnemonic) + "' expects " +
                std::to_string(N) + " operand(s), got " +
                std::to_string(Ops.size()));
  };

  // --- Branches. -------------------------------------------------------
  static const std::map<std::string_view, Opcode> BranchTable = {
      {"ba", Opcode::BA},     {"b", Opcode::BA},      {"bn", Opcode::BN},
      {"bne", Opcode::BNE},   {"bnz", Opcode::BNE},   {"be", Opcode::BE},
      {"bz", Opcode::BE},     {"bg", Opcode::BG},     {"ble", Opcode::BLE},
      {"bge", Opcode::BGE},   {"bl", Opcode::BL},     {"bgu", Opcode::BGU},
      {"bleu", Opcode::BLEU}, {"bcc", Opcode::BCC},   {"bgeu", Opcode::BCC},
      {"bcs", Opcode::BCS},   {"blu", Opcode::BCS},   {"bpos", Opcode::BPOS},
      {"bneg", Opcode::BNEG}, {"bvc", Opcode::BVC},   {"bvs", Opcode::BVS}};
  if (auto It = BranchTable.find(Mnemonic); It != BranchTable.end()) {
    if (!RequireOps(1))
      return false;
    Instruction Inst;
    Inst.Op = It->second;
    Inst.Annul = Annul;
    addPendingTarget(Ops[0], /*IsCall=*/false);
    emit(Inst);
    return true;
  }
  if (Annul)
    return fail("',a' suffix only applies to branches");

  // --- Loads / stores. --------------------------------------------------
  static const std::map<std::string_view, Opcode> LoadTable = {
      {"ldsb", Opcode::LDSB}, {"ldsh", Opcode::LDSH}, {"ldub", Opcode::LDUB},
      {"lduh", Opcode::LDUH}, {"ld", Opcode::LD}};
  static const std::map<std::string_view, Opcode> StoreTable = {
      {"stb", Opcode::STB}, {"sth", Opcode::STH}, {"st", Opcode::ST}};
  if (auto It = LoadTable.find(Mnemonic); It != LoadTable.end()) {
    if (!RequireOps(2))
      return false;
    Instruction Inst;
    Inst.Op = It->second;
    if (!parseMemAddr(Ops[0], Inst.Rs1, Inst.UsesImm, Inst.Imm, Inst.Rs2) ||
        !parseRegOp(Ops[1], Inst.Rd))
      return false;
    emit(Inst);
    return true;
  }
  if (auto It = StoreTable.find(Mnemonic); It != StoreTable.end()) {
    if (!RequireOps(2))
      return false;
    Instruction Inst;
    Inst.Op = It->second;
    if (!parseRegOp(Ops[0], Inst.Rd) ||
        !parseMemAddr(Ops[1], Inst.Rs1, Inst.UsesImm, Inst.Imm, Inst.Rs2))
      return false;
    emit(Inst);
    return true;
  }

  // --- Three-operand arithmetic. -----------------------------------------
  static const std::map<std::string_view, Opcode> ArithTable = {
      {"add", Opcode::ADD},       {"addcc", Opcode::ADDCC},
      {"sub", Opcode::SUB},       {"subcc", Opcode::SUBCC},
      {"and", Opcode::AND},       {"andcc", Opcode::ANDCC},
      {"andn", Opcode::ANDN},     {"or", Opcode::OR},
      {"orcc", Opcode::ORCC},     {"orn", Opcode::ORN},
      {"xor", Opcode::XOR},       {"xorcc", Opcode::XORCC},
      {"xnor", Opcode::XNOR},     {"sll", Opcode::SLL},
      {"srl", Opcode::SRL},       {"sra", Opcode::SRA},
      {"umul", Opcode::UMUL},     {"smul", Opcode::SMUL},
      {"udiv", Opcode::UDIV},     {"sdiv", Opcode::SDIV},
      {"save", Opcode::SAVE},     {"restore", Opcode::RESTORE}};
  if (auto It = ArithTable.find(Mnemonic); It != ArithTable.end()) {
    Instruction Inst;
    Inst.Op = It->second;
    if (Ops.empty() &&
        (Inst.Op == Opcode::SAVE || Inst.Op == Opcode::RESTORE)) {
      Inst.Rs1 = G0;
      Inst.Rs2 = G0;
      Inst.Rd = G0;
      emit(Inst);
      return true;
    }
    if (!RequireOps(3))
      return false;
    if (!parseRegOp(Ops[0], Inst.Rs1) ||
        !parseRegOrImm(Ops[1], Inst.UsesImm, Inst.Imm, Inst.Rs2) ||
        !parseRegOp(Ops[2], Inst.Rd))
      return false;
    emit(Inst);
    return true;
  }

  // --- sethi. -------------------------------------------------------------
  if (Mnemonic == "sethi") {
    if (!RequireOps(2))
      return false;
    Instruction Inst;
    Inst.Op = Opcode::SETHI;
    int64_t Value;
    if (!parseImm(Ops[0], Value) || !parseRegOp(Ops[1], Inst.Rd))
      return false;
    if (Value < 0 || Value > 0x3FFFFF)
      return fail("sethi immediate out of imm22 range");
    Inst.UsesImm = true;
    Inst.Imm = static_cast<int32_t>(Value);
    emit(Inst);
    return true;
  }

  // --- Control transfer. ---------------------------------------------------
  if (Mnemonic == "call") {
    if (!RequireOps(1))
      return false;
    Instruction Inst;
    Inst.Op = Opcode::CALL;
    addPendingTarget(Ops[0], /*IsCall=*/true);
    emit(Inst);
    return true;
  }
  if (Mnemonic == "jmpl") {
    if (!RequireOps(2))
      return false;
    Instruction Inst;
    Inst.Op = Opcode::JMPL;
    // Accept "%r+imm" or "[%r+imm]"-less address syntax.
    std::string Addr = "[" + std::string(Ops[0]) + "]";
    if (!parseMemAddr(Addr, Inst.Rs1, Inst.UsesImm, Inst.Imm, Inst.Rs2) ||
        !parseRegOp(Ops[1], Inst.Rd))
      return false;
    emit(Inst);
    return true;
  }
  if (Mnemonic == "ret" || Mnemonic == "retl") {
    if (!RequireOps(0))
      return false;
    Instruction Inst;
    Inst.Op = Opcode::JMPL;
    Inst.Rs1 = Mnemonic == "ret" ? I7 : O7;
    Inst.UsesImm = true;
    Inst.Imm = 8;
    Inst.Rd = G0;
    emit(Inst);
    return true;
  }

  // --- Synthetics. ---------------------------------------------------------
  if (Mnemonic == "nop") {
    if (!RequireOps(0))
      return false;
    Instruction Inst;
    Inst.Op = Opcode::SETHI;
    Inst.Rd = G0;
    Inst.UsesImm = true;
    Inst.Imm = 0;
    emit(Inst);
    return true;
  }
  if (Mnemonic == "mov") {
    if (!RequireOps(2))
      return false;
    Instruction Inst;
    Inst.Op = Opcode::OR;
    Inst.Rs1 = G0;
    if (!parseRegOrImm(Ops[0], Inst.UsesImm, Inst.Imm, Inst.Rs2) ||
        !parseRegOp(Ops[1], Inst.Rd))
      return false;
    emit(Inst);
    return true;
  }
  if (Mnemonic == "clr") {
    if (!RequireOps(1))
      return false;
    Instruction Inst;
    if (!Ops[0].empty() && Ops[0][0] == '[') {
      Inst.Op = Opcode::ST;
      Inst.Rd = G0;
      if (!parseMemAddr(Ops[0], Inst.Rs1, Inst.UsesImm, Inst.Imm, Inst.Rs2))
        return false;
    } else {
      Inst.Op = Opcode::OR;
      Inst.Rs1 = G0;
      Inst.Rs2 = G0;
      if (!parseRegOp(Ops[0], Inst.Rd))
        return false;
    }
    emit(Inst);
    return true;
  }
  if (Mnemonic == "cmp") {
    if (!RequireOps(2))
      return false;
    Instruction Inst;
    Inst.Op = Opcode::SUBCC;
    Inst.Rd = G0;
    if (!parseRegOp(Ops[0], Inst.Rs1) ||
        !parseRegOrImm(Ops[1], Inst.UsesImm, Inst.Imm, Inst.Rs2))
      return false;
    emit(Inst);
    return true;
  }
  if (Mnemonic == "tst") {
    if (!RequireOps(1))
      return false;
    Instruction Inst;
    Inst.Op = Opcode::ORCC;
    Inst.Rd = G0;
    Inst.Rs2 = G0;
    if (!parseRegOp(Ops[0], Inst.Rs1))
      return false;
    emit(Inst);
    return true;
  }
  if (Mnemonic == "inc" || Mnemonic == "dec") {
    if (Ops.size() != 1 && Ops.size() != 2)
      return fail("'" + std::string(Mnemonic) + "' expects 1 or 2 operands");
    Instruction Inst;
    Inst.Op = Mnemonic == "inc" ? Opcode::ADD : Opcode::SUB;
    Inst.UsesImm = true;
    Inst.Imm = 1;
    std::string_view RegOp = Ops.back();
    if (Ops.size() == 2) {
      int64_t Value;
      if (!parseImm(Ops[0], Value))
        return false;
      if (Value < -4096 || Value > 4095)
        return fail("inc/dec immediate out of range");
      Inst.Imm = static_cast<int32_t>(Value);
    }
    if (!parseRegOp(RegOp, Inst.Rd))
      return false;
    Inst.Rs1 = Inst.Rd;
    emit(Inst);
    return true;
  }
  if (Mnemonic == "neg" || Mnemonic == "not") {
    if (Ops.size() != 1 && Ops.size() != 2)
      return fail("'" + std::string(Mnemonic) + "' expects 1 or 2 operands");
    Instruction Inst;
    Reg Rs, Rd;
    if (!parseRegOp(Ops[0], Rs))
      return false;
    Rd = Rs;
    if (Ops.size() == 2 && !parseRegOp(Ops[1], Rd))
      return false;
    if (Mnemonic == "neg") {
      Inst.Op = Opcode::SUB;
      Inst.Rs1 = G0;
      Inst.Rs2 = Rs;
    } else {
      Inst.Op = Opcode::XNOR;
      Inst.Rs1 = Rs;
      Inst.Rs2 = G0;
    }
    Inst.Rd = Rd;
    emit(Inst);
    return true;
  }
  if (Mnemonic == "set") {
    if (!RequireOps(2))
      return false;
    int64_t Value;
    Reg Rd;
    if (!parseImm(Ops[0], Value) || !parseRegOp(Ops[1], Rd))
      return false;
    if (Value < INT32_MIN || Value > static_cast<int64_t>(UINT32_MAX))
      return fail("set immediate out of 32-bit range");
    int32_t V = static_cast<int32_t>(Value);
    if (V >= -4096 && V <= 4095) {
      Instruction Inst;
      Inst.Op = Opcode::OR;
      Inst.Rs1 = G0;
      Inst.UsesImm = true;
      Inst.Imm = V;
      Inst.Rd = Rd;
      emit(Inst);
      return true;
    }
    Instruction Hi;
    Hi.Op = Opcode::SETHI;
    Hi.Rd = Rd;
    Hi.UsesImm = true;
    Hi.Imm = static_cast<int32_t>((static_cast<uint32_t>(V) >> 10) &
                                  0x3FFFFF);
    emit(Hi);
    if ((static_cast<uint32_t>(V) & 0x3FF) != 0) {
      Instruction Lo;
      Lo.Op = Opcode::OR;
      Lo.Rs1 = Rd;
      Lo.UsesImm = true;
      Lo.Imm = static_cast<int32_t>(static_cast<uint32_t>(V) & 0x3FF);
      Lo.Rd = Rd;
      emit(Lo);
    }
    return true;
  }

  return fail("unknown mnemonic '" + std::string(Mnemonic) + "'");
}

std::optional<Module> Assembler::run(std::string *Error) {
  size_t Pos = 0;
  while (Pos <= Source.size()) {
    size_t End = Source.find('\n', Pos);
    if (End == std::string_view::npos)
      End = Source.size();
    ++CurLine;
    if (!parseLine(Source.substr(Pos, End - Pos))) {
      if (Error)
        *Error = ErrorMessage;
      return std::nullopt;
    }
    Pos = End + 1;
    if (End == Source.size())
      break;
  }

  // Labels that trail all instructions bind to one-past-the-end; that is
  // only meaningful for data, which we do not model, so reject.
  if (!PendingLabels.empty()) {
    if (Error)
      *Error = "label '" + PendingLabels.front() +
               "' is not attached to an instruction";
    return std::nullopt;
  }

  // Resolve pending branch/call targets.
  M.FunctionEntries.push_back(0);
  for (const PendingTarget &P : Pending) {
    Instruction &Inst = M.Insts[P.InstIndex];
    int32_t Target = -1;
    if (P.StatementNo >= 0) {
      auto It = StatementStart.find(static_cast<uint32_t>(P.StatementNo));
      if (It == StatementStart.end() || It->second >= M.size()) {
        if (Error)
          *Error = "line " + std::to_string(P.Line) +
                   ": branch target statement " +
                   std::to_string(P.StatementNo) + " does not exist";
        return std::nullopt;
      }
      Target = static_cast<int32_t>(It->second);
    } else {
      Target = M.lookupLabel(P.Symbol);
      if (Target < 0) {
        if (!P.IsCall) {
          if (Error)
            *Error = "line " + std::to_string(P.Line) +
                     ": undefined label '" + P.Symbol + "'";
          return std::nullopt;
        }
        // A call to an unknown symbol is an external (trusted) callee.
        Inst.CalleeName = P.Symbol;
        bool Known = false;
        for (const std::string &Name : M.ExternalCallees)
          if (Name == P.Symbol)
            Known = true;
        if (!Known)
          M.ExternalCallees.push_back(P.Symbol);
        continue;
      }
    }
    Inst.Target = Target;
    if (P.IsCall && !M.isFunctionEntry(static_cast<uint32_t>(Target)))
      M.FunctionEntries.push_back(static_cast<uint32_t>(Target));
  }
  return std::move(M);
}

} // namespace

std::optional<Module> sparc::assemble(std::string_view Source,
                                      std::string *Error) {
  Assembler A(Source);
  return A.run(Error);
}
