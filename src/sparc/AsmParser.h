//===- AsmParser.h - Two-pass SPARC assembler -------------------*- C++ -*-===//
//
// Part of mcsafe, a reproduction of "Safety Checking of Machine Code"
// (Xu, Miller, Reps; PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A two-pass assembler for the SPARC V8 subset, used to author the
/// corpus programs and as a convenient front door for tests and examples
/// (the checker itself consumes decoded Instructions, so a binary loader
/// and this assembler are interchangeable front ends).
///
/// Supported syntax, per line:
///   label:                      (may share a line with an instruction)
///   opcode operands             ! comment  (# also starts a comment)
///
/// Synthetic instructions are expanded exactly as the SPARC assembler
/// expands them:
///   mov a,rd        -> or  %g0,a,rd
///   clr rd          -> or  %g0,%g0,rd
///   clr [addr]      -> st  %g0,[addr]
///   cmp a,b         -> subcc a,b,%g0
///   tst a           -> orcc a,%g0,%g0
///   inc[ imm,] rd   -> add rd,imm,rd      (imm defaults to 1)
///   dec[ imm,] rd   -> sub rd,imm,rd
///   neg rs[,rd]     -> sub %g0,rs,rd
///   not rs[,rd]     -> xnor rs,%g0,rd
///   set imm,rd      -> sethi %hi(imm),rd [+ or rd,%lo(imm),rd]
///   nop             -> sethi 0,%g0
///   b target        -> ba target
///   ret             -> jmpl %i7+8,%g0
///   retl            -> jmpl %o7+8,%g0
///   restore         -> restore %g0,%g0,%g0
///   save            -> save %g0,%g0,%g0
///
/// Branch targets may be labels or 1-based instruction-statement numbers
/// (the paper writes "bge 12" against its Figure 1 listing; the same
/// convention works here).
///
//===----------------------------------------------------------------------===//

#ifndef MCSAFE_SPARC_ASMPARSER_H
#define MCSAFE_SPARC_ASMPARSER_H

#include "sparc/Module.h"

#include <optional>
#include <string>
#include <string_view>

namespace mcsafe {
namespace sparc {

/// Assembles \p Source. On failure returns nullopt and, if \p Error is
/// non-null, stores a message of the form "line N: ...".
std::optional<Module> assemble(std::string_view Source,
                               std::string *Error = nullptr);

} // namespace sparc
} // namespace mcsafe

#endif // MCSAFE_SPARC_ASMPARSER_H
