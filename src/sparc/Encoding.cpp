//===- Encoding.cpp -------------------------------------------------------===//

#include "sparc/Encoding.h"

#include <cassert>

using namespace mcsafe;
using namespace mcsafe::sparc;

namespace {

/// op3 field values for format-3 arithmetic (op=10).
std::optional<uint32_t> arithOp3(Opcode Op) {
  switch (Op) {
  case Opcode::ADD:
    return 0x00;
  case Opcode::AND:
    return 0x01;
  case Opcode::OR:
    return 0x02;
  case Opcode::XOR:
    return 0x03;
  case Opcode::SUB:
    return 0x04;
  case Opcode::ANDN:
    return 0x05;
  case Opcode::ORN:
    return 0x06;
  case Opcode::XNOR:
    return 0x07;
  case Opcode::UMUL:
    return 0x0A;
  case Opcode::SMUL:
    return 0x0B;
  case Opcode::UDIV:
    return 0x0E;
  case Opcode::SDIV:
    return 0x0F;
  case Opcode::ADDCC:
    return 0x10;
  case Opcode::ANDCC:
    return 0x11;
  case Opcode::ORCC:
    return 0x12;
  case Opcode::XORCC:
    return 0x13;
  case Opcode::SUBCC:
    return 0x14;
  case Opcode::SLL:
    return 0x25;
  case Opcode::SRL:
    return 0x26;
  case Opcode::SRA:
    return 0x27;
  case Opcode::JMPL:
    return 0x38;
  case Opcode::SAVE:
    return 0x3C;
  case Opcode::RESTORE:
    return 0x3D;
  default:
    return std::nullopt;
  }
}

std::optional<Opcode> arithFromOp3(uint32_t Op3) {
  switch (Op3) {
  case 0x00:
    return Opcode::ADD;
  case 0x01:
    return Opcode::AND;
  case 0x02:
    return Opcode::OR;
  case 0x03:
    return Opcode::XOR;
  case 0x04:
    return Opcode::SUB;
  case 0x05:
    return Opcode::ANDN;
  case 0x06:
    return Opcode::ORN;
  case 0x07:
    return Opcode::XNOR;
  case 0x0A:
    return Opcode::UMUL;
  case 0x0B:
    return Opcode::SMUL;
  case 0x0E:
    return Opcode::UDIV;
  case 0x0F:
    return Opcode::SDIV;
  case 0x10:
    return Opcode::ADDCC;
  case 0x11:
    return Opcode::ANDCC;
  case 0x12:
    return Opcode::ORCC;
  case 0x13:
    return Opcode::XORCC;
  case 0x14:
    return Opcode::SUBCC;
  case 0x25:
    return Opcode::SLL;
  case 0x26:
    return Opcode::SRL;
  case 0x27:
    return Opcode::SRA;
  case 0x38:
    return Opcode::JMPL;
  case 0x3C:
    return Opcode::SAVE;
  case 0x3D:
    return Opcode::RESTORE;
  default:
    return std::nullopt;
  }
}

/// op3 field values for format-3 memory (op=11).
std::optional<uint32_t> memOp3(Opcode Op) {
  switch (Op) {
  case Opcode::LD:
    return 0x00;
  case Opcode::LDUB:
    return 0x01;
  case Opcode::LDUH:
    return 0x02;
  case Opcode::ST:
    return 0x04;
  case Opcode::STB:
    return 0x05;
  case Opcode::STH:
    return 0x06;
  case Opcode::LDSB:
    return 0x09;
  case Opcode::LDSH:
    return 0x0A;
  default:
    return std::nullopt;
  }
}

std::optional<Opcode> memFromOp3(uint32_t Op3) {
  switch (Op3) {
  case 0x00:
    return Opcode::LD;
  case 0x01:
    return Opcode::LDUB;
  case 0x02:
    return Opcode::LDUH;
  case 0x04:
    return Opcode::ST;
  case 0x05:
    return Opcode::STB;
  case 0x06:
    return Opcode::STH;
  case 0x09:
    return Opcode::LDSB;
  case 0x0A:
    return Opcode::LDSH;
  default:
    return std::nullopt;
  }
}

/// cond field values for Bicc.
std::optional<uint32_t> branchCond(Opcode Op) {
  switch (Op) {
  case Opcode::BN:
    return 0x0;
  case Opcode::BE:
    return 0x1;
  case Opcode::BLE:
    return 0x2;
  case Opcode::BL:
    return 0x3;
  case Opcode::BLEU:
    return 0x4;
  case Opcode::BCS:
    return 0x5;
  case Opcode::BNEG:
    return 0x6;
  case Opcode::BVS:
    return 0x7;
  case Opcode::BA:
    return 0x8;
  case Opcode::BNE:
    return 0x9;
  case Opcode::BG:
    return 0xA;
  case Opcode::BGE:
    return 0xB;
  case Opcode::BGU:
    return 0xC;
  case Opcode::BCC:
    return 0xD;
  case Opcode::BPOS:
    return 0xE;
  case Opcode::BVC:
    return 0xF;
  default:
    return std::nullopt;
  }
}

Opcode branchFromCond(uint32_t Cond) {
  static const Opcode Table[16] = {
      Opcode::BN,   Opcode::BE,  Opcode::BLE,  Opcode::BL,
      Opcode::BLEU, Opcode::BCS, Opcode::BNEG, Opcode::BVS,
      Opcode::BA,   Opcode::BNE, Opcode::BG,   Opcode::BGE,
      Opcode::BGU,  Opcode::BCC, Opcode::BPOS, Opcode::BVC};
  return Table[Cond & 0xF];
}

bool fitsSimm13(int32_t V) { return V >= -4096 && V <= 4095; }

uint32_t format3(uint32_t OpField, uint32_t Rd, uint32_t Op3, uint32_t Rs1,
                 bool UsesImm, int32_t Imm, uint32_t Rs2) {
  uint32_t Word = (OpField << 30) | (Rd << 25) | (Op3 << 19) | (Rs1 << 14);
  if (UsesImm)
    Word |= (1u << 13) | (static_cast<uint32_t>(Imm) & 0x1FFF);
  else
    Word |= Rs2 & 0x1F;
  return Word;
}

} // namespace

std::optional<uint32_t> sparc::encode(const Instruction &Inst,
                                      uint32_t Index) {
  if (Inst.Op == Opcode::CALL) {
    if (Inst.Target < 0)
      return std::nullopt; // External symbol: needs a relocation.
    int64_t Disp = static_cast<int64_t>(Inst.Target) - Index;
    return (0x1u << 30) | (static_cast<uint32_t>(Disp) & 0x3FFFFFFF);
  }

  if (Inst.Op == Opcode::SETHI) {
    if (Inst.Imm < 0 || Inst.Imm > 0x3FFFFF)
      return std::nullopt;
    return (0x4u << 22) | (static_cast<uint32_t>(Inst.Rd.number()) << 25) |
           static_cast<uint32_t>(Inst.Imm);
  }

  if (std::optional<uint32_t> Cond = branchCond(Inst.Op)) {
    if (Inst.Target < 0)
      return std::nullopt;
    int64_t Disp = static_cast<int64_t>(Inst.Target) - Index;
    if (Disp < -(1 << 21) || Disp >= (1 << 21))
      return std::nullopt;
    uint32_t Word = (*Cond << 25) | (0x2u << 22) |
                    (static_cast<uint32_t>(Disp) & 0x3FFFFF);
    if (Inst.Annul)
      Word |= 1u << 29;
    return Word;
  }

  if (std::optional<uint32_t> Op3 = memOp3(Inst.Op)) {
    if (Inst.UsesImm && !fitsSimm13(Inst.Imm))
      return std::nullopt;
    return format3(0x3, Inst.Rd.number(), *Op3, Inst.Rs1.number(),
                   Inst.UsesImm, Inst.Imm, Inst.Rs2.number());
  }

  if (std::optional<uint32_t> Op3 = arithOp3(Inst.Op)) {
    if (Inst.UsesImm && !fitsSimm13(Inst.Imm))
      return std::nullopt;
    return format3(0x2, Inst.Rd.number(), *Op3, Inst.Rs1.number(),
                   Inst.UsesImm, Inst.Imm, Inst.Rs2.number());
  }

  return std::nullopt;
}

std::optional<std::vector<uint32_t>> sparc::encodeModule(const Module &M) {
  std::vector<uint32_t> Words;
  Words.reserve(M.Insts.size());
  for (uint32_t I = 0; I < M.size(); ++I) {
    std::optional<uint32_t> W = encode(M.Insts[I], I);
    if (!W)
      return std::nullopt;
    Words.push_back(*W);
  }
  return Words;
}

std::optional<Instruction> sparc::decode(uint32_t Word, uint32_t Index) {
  Instruction Inst;
  uint32_t OpField = Word >> 30;

  if (OpField == 0x1) { // Format 1: call.
    int32_t Disp = static_cast<int32_t>(Word << 2) >> 2; // Sign-extend 30.
    Inst.Op = Opcode::CALL;
    Inst.Target = static_cast<int32_t>(Index) + Disp;
    return Inst;
  }

  if (OpField == 0x0) { // Format 2: sethi or Bicc.
    uint32_t Op2 = (Word >> 22) & 0x7;
    if (Op2 == 0x4) {
      Inst.Op = Opcode::SETHI;
      Inst.Rd = Reg((Word >> 25) & 0x1F);
      Inst.UsesImm = true;
      Inst.Imm = static_cast<int32_t>(Word & 0x3FFFFF);
      return Inst;
    }
    if (Op2 == 0x2) {
      uint32_t Cond = (Word >> 25) & 0xF;
      Inst.Op = branchFromCond(Cond);
      Inst.Annul = (Word >> 29) & 1;
      int32_t Disp = static_cast<int32_t>(Word << 10) >> 10; // Sign-ext 22.
      Inst.Target = static_cast<int32_t>(Index) + Disp;
      return Inst;
    }
    return std::nullopt;
  }

  // Format 3.
  uint32_t Op3 = (Word >> 19) & 0x3F;
  std::optional<Opcode> Op =
      OpField == 0x3 ? memFromOp3(Op3) : arithFromOp3(Op3);
  if (!Op)
    return std::nullopt;
  Inst.Op = *Op;
  Inst.Rd = Reg((Word >> 25) & 0x1F);
  Inst.Rs1 = Reg((Word >> 14) & 0x1F);
  if ((Word >> 13) & 1) {
    Inst.UsesImm = true;
    Inst.Imm = static_cast<int32_t>(Word << 19) >> 19; // Sign-extend 13.
  } else {
    Inst.Rs2 = Reg(Word & 0x1F);
  }
  return Inst;
}

std::optional<Module> sparc::decodeModule(const std::vector<uint32_t> &Words) {
  Module M;
  for (uint32_t I = 0; I < Words.size(); ++I) {
    std::optional<Instruction> Inst = decode(Words[I], I);
    if (!Inst)
      return std::nullopt;
    Inst->SourceLine = I + 1;
    M.Insts.push_back(*Inst);
  }
  // Validate control-transfer targets and synthesize entries.
  M.FunctionEntries.push_back(0);
  for (const Instruction &Inst : M.Insts) {
    if (Inst.Target < 0) {
      // Only a CALL may carry a negative target (an external callee,
      // resolved by name). A branch whose displacement lands before the
      // module start is malformed — letting it through would hand the
      // CFG builder an unresolvable target.
      if (isBranch(Inst.Op))
        return std::nullopt;
      continue;
    }
    if (Inst.Target >= static_cast<int32_t>(M.size()))
      return std::nullopt;
    if (Inst.Op == Opcode::CALL &&
        !M.isFunctionEntry(static_cast<uint32_t>(Inst.Target)))
      M.FunctionEntries.push_back(static_cast<uint32_t>(Inst.Target));
  }
  return M;
}
