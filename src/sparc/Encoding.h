//===- Encoding.h - SPARC V8 binary instruction encoding --------*- C++ -*-===//
//
// Part of mcsafe, a reproduction of "Safety Checking of Machine Code"
// (Xu, Miller, Reps; PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Binary encoder and decoder for the supported SPARC V8 subset, using the
/// architectural formats:
///   format 1 (op=01): call, 30-bit word displacement;
///   format 2 (op=00): sethi and Bicc (a-bit, 4-bit cond, 22-bit disp);
///   format 3 (op=10/11): arithmetic and memory (rd, op3, rs1, i, simm13).
/// The checker can therefore consume genuine machine words — the decoder is
/// the "loader" half of the paper's pipeline.
///
//===----------------------------------------------------------------------===//

#ifndef MCSAFE_SPARC_ENCODING_H
#define MCSAFE_SPARC_ENCODING_H

#include "sparc/Instruction.h"
#include "sparc/Module.h"

#include <cstdint>
#include <optional>
#include <vector>

namespace mcsafe {
namespace sparc {

/// Encodes one instruction located at word index \p Index (branch and call
/// displacements are PC-relative in words). Returns nullopt when the
/// instruction cannot be encoded (e.g. an immediate outside simm13, or a
/// call to an external symbol, which needs a relocation we do not model).
std::optional<uint32_t> encode(const Instruction &Inst, uint32_t Index);

/// Encodes a whole module. External calls are rejected.
std::optional<std::vector<uint32_t>> encodeModule(const Module &M);

/// Decodes one machine word at word index \p Index. Returns nullopt for
/// words outside the supported subset.
std::optional<Instruction> decode(uint32_t Word, uint32_t Index);

/// Decodes a word sequence into a module (labels are synthesized from
/// branch targets; function entries from call targets).
std::optional<Module> decodeModule(const std::vector<uint32_t> &Words);

} // namespace sparc
} // namespace mcsafe

#endif // MCSAFE_SPARC_ENCODING_H
