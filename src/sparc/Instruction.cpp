//===- Instruction.cpp ----------------------------------------------------===//

#include "sparc/Instruction.h"

#include <cassert>
#include <sstream>

using namespace mcsafe;
using namespace mcsafe::sparc;

const char *sparc::opcodeName(Opcode Op) {
  switch (Op) {
  case Opcode::LDSB:
    return "ldsb";
  case Opcode::LDSH:
    return "ldsh";
  case Opcode::LDUB:
    return "ldub";
  case Opcode::LDUH:
    return "lduh";
  case Opcode::LD:
    return "ld";
  case Opcode::STB:
    return "stb";
  case Opcode::STH:
    return "sth";
  case Opcode::ST:
    return "st";
  case Opcode::ADD:
    return "add";
  case Opcode::ADDCC:
    return "addcc";
  case Opcode::SUB:
    return "sub";
  case Opcode::SUBCC:
    return "subcc";
  case Opcode::AND:
    return "and";
  case Opcode::ANDCC:
    return "andcc";
  case Opcode::ANDN:
    return "andn";
  case Opcode::OR:
    return "or";
  case Opcode::ORCC:
    return "orcc";
  case Opcode::ORN:
    return "orn";
  case Opcode::XOR:
    return "xor";
  case Opcode::XORCC:
    return "xorcc";
  case Opcode::XNOR:
    return "xnor";
  case Opcode::SLL:
    return "sll";
  case Opcode::SRL:
    return "srl";
  case Opcode::SRA:
    return "sra";
  case Opcode::UMUL:
    return "umul";
  case Opcode::SMUL:
    return "smul";
  case Opcode::UDIV:
    return "udiv";
  case Opcode::SDIV:
    return "sdiv";
  case Opcode::SETHI:
    return "sethi";
  case Opcode::BA:
    return "ba";
  case Opcode::BN:
    return "bn";
  case Opcode::BNE:
    return "bne";
  case Opcode::BE:
    return "be";
  case Opcode::BG:
    return "bg";
  case Opcode::BLE:
    return "ble";
  case Opcode::BGE:
    return "bge";
  case Opcode::BL:
    return "bl";
  case Opcode::BGU:
    return "bgu";
  case Opcode::BLEU:
    return "bleu";
  case Opcode::BCC:
    return "bcc";
  case Opcode::BCS:
    return "bcs";
  case Opcode::BPOS:
    return "bpos";
  case Opcode::BNEG:
    return "bneg";
  case Opcode::BVC:
    return "bvc";
  case Opcode::BVS:
    return "bvs";
  case Opcode::CALL:
    return "call";
  case Opcode::JMPL:
    return "jmpl";
  case Opcode::SAVE:
    return "save";
  case Opcode::RESTORE:
    return "restore";
  }
  return "???";
}

bool sparc::isLoad(Opcode Op) {
  switch (Op) {
  case Opcode::LDSB:
  case Opcode::LDSH:
  case Opcode::LDUB:
  case Opcode::LDUH:
  case Opcode::LD:
    return true;
  default:
    return false;
  }
}

bool sparc::isStore(Opcode Op) {
  switch (Op) {
  case Opcode::STB:
  case Opcode::STH:
  case Opcode::ST:
    return true;
  default:
    return false;
  }
}

unsigned sparc::memAccessSize(Opcode Op) {
  switch (Op) {
  case Opcode::LDSB:
  case Opcode::LDUB:
  case Opcode::STB:
    return 1;
  case Opcode::LDSH:
  case Opcode::LDUH:
  case Opcode::STH:
    return 2;
  case Opcode::LD:
  case Opcode::ST:
    return 4;
  default:
    assert(false && "not a memory opcode");
    return 0;
  }
}

bool sparc::isSignedLoad(Opcode Op) {
  return Op == Opcode::LDSB || Op == Opcode::LDSH;
}

bool sparc::isConditionalBranch(Opcode Op) {
  return isBranch(Op) && Op != Opcode::BA && Op != Opcode::BN;
}

bool sparc::isBranch(Opcode Op) {
  switch (Op) {
  case Opcode::BA:
  case Opcode::BN:
  case Opcode::BNE:
  case Opcode::BE:
  case Opcode::BG:
  case Opcode::BLE:
  case Opcode::BGE:
  case Opcode::BL:
  case Opcode::BGU:
  case Opcode::BLEU:
  case Opcode::BCC:
  case Opcode::BCS:
  case Opcode::BPOS:
  case Opcode::BNEG:
  case Opcode::BVC:
  case Opcode::BVS:
    return true;
  default:
    return false;
  }
}

bool sparc::setsIcc(Opcode Op) {
  switch (Op) {
  case Opcode::ADDCC:
  case Opcode::SUBCC:
  case Opcode::ANDCC:
  case Opcode::ORCC:
  case Opcode::XORCC:
    return true;
  default:
    return false;
  }
}

std::string Instruction::str() const {
  std::ostringstream OS;
  OS << opcodeName(Op);
  if (isBranch(Op)) {
    if (Annul)
      OS << ",a";
    OS << ' ' << (Target >= 0 ? std::to_string(Target + 1) : "?");
    return OS.str();
  }
  OS << ' ';
  switch (Op) {
  case Opcode::SETHI:
    OS << "%hi(0x" << std::hex << (static_cast<uint32_t>(Imm) << 10)
       << std::dec << ")," << Rd.name();
    break;
  case Opcode::CALL:
    if (!CalleeName.empty())
      OS << CalleeName;
    else
      OS << (Target >= 0 ? std::to_string(Target + 1) : "?");
    break;
  case Opcode::JMPL:
    OS << Rs1.name();
    if (UsesImm)
      OS << (Imm >= 0 ? "+" : "") << Imm;
    else if (!Rs2.isZero())
      OS << '+' << Rs2.name();
    OS << ',' << Rd.name();
    break;
  default:
    if (isLoad(Op) || isStore(Op)) {
      std::string Addr = "[" + Rs1.name();
      if (UsesImm) {
        if (Imm != 0)
          Addr += (Imm >= 0 ? "+" : "") + std::to_string(Imm);
      } else if (!Rs2.isZero()) {
        Addr += "+" + Rs2.name();
      }
      Addr += "]";
      if (isLoad(Op))
        OS << Addr << ',' << Rd.name();
      else
        OS << Rd.name() << ',' << Addr;
    } else {
      OS << Rs1.name() << ',';
      if (UsesImm)
        OS << Imm;
      else
        OS << Rs2.name();
      OS << ',' << Rd.name();
    }
    break;
  }
  return OS.str();
}
