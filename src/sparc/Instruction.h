//===- Instruction.h - SPARC V8 instruction representation ------*- C++ -*-===//
//
// Part of mcsafe, a reproduction of "Safety Checking of Machine Code"
// (Xu, Miller, Reps; PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// In-memory representation of the SPARC V8 subset the checker analyzes.
/// Synthetic instructions (mov, clr, cmp, inc, retl, nop, ...) are expanded
/// by the assembler into these real opcodes, exactly as an off-the-shelf
/// assembler would, so the checker only ever sees architectural
/// instructions — the paper's point is that the analysis consumes what a
/// compiler actually emits.
///
//===----------------------------------------------------------------------===//

#ifndef MCSAFE_SPARC_INSTRUCTION_H
#define MCSAFE_SPARC_INSTRUCTION_H

#include "sparc/Registers.h"

#include <cstdint>
#include <string>

namespace mcsafe {
namespace sparc {

/// Architectural opcodes of the supported SPARC V8 subset.
enum class Opcode : uint8_t {
  // Format 3, op=11: loads and stores.
  LDSB, ///< Load signed byte.
  LDSH, ///< Load signed halfword.
  LDUB, ///< Load unsigned byte.
  LDUH, ///< Load unsigned halfword.
  LD,   ///< Load word.
  STB,  ///< Store byte.
  STH,  ///< Store halfword.
  ST,   ///< Store word.

  // Format 3, op=10: integer arithmetic and logic.
  ADD,
  ADDCC,
  SUB,
  SUBCC,
  AND,
  ANDCC,
  ANDN,
  OR,
  ORCC,
  ORN,
  XOR,
  XORCC,
  XNOR,
  SLL,
  SRL,
  SRA,
  UMUL,
  SMUL,
  UDIV,
  SDIV,

  // Format 2.
  SETHI,

  // Format 2: conditional branches on integer condition codes.
  BA,
  BN,
  BNE,
  BE,
  BG,
  BLE,
  BGE,
  BL,
  BGU,
  BLEU,
  BCC, ///< Branch on carry clear (unsigned >=).
  BCS, ///< Branch on carry set (unsigned <).
  BPOS,
  BNEG,
  BVC,
  BVS,

  // Control transfer and register windows.
  CALL,
  JMPL,
  SAVE,
  RESTORE,
};

/// Returns the canonical mnemonic for an opcode ("add", "bge", ...).
const char *opcodeName(Opcode Op);

bool isLoad(Opcode Op);
bool isStore(Opcode Op);
/// Bytes accessed by a load/store opcode (1, 2, or 4).
unsigned memAccessSize(Opcode Op);
/// True for LDSB / LDSH (the sign-extending narrow loads).
bool isSignedLoad(Opcode Op);

bool isConditionalBranch(Opcode Op); ///< Bicc other than BA/BN.
bool isBranch(Opcode Op);            ///< Any Bicc, including BA and BN.
/// True if the opcode writes the integer condition codes.
bool setsIcc(Opcode Op);

/// The effective shift distance of SLL/SRL/SRA: SPARC V8 uses only the
/// low five bits of the second operand (shift by 33 shifts by 1). Every
/// consumer of a shift count — the interpreter, constant folding, the
/// known-bits transfer functions, Wlp scaling — must go through this
/// helper so their semantics cannot diverge.
inline uint32_t shiftCount(int64_t Operand2) {
  return static_cast<uint32_t>(Operand2) & 31u;
}

/// A decoded instruction.
///
/// Operand conventions:
///  - Arithmetic:      rd = rs1 op operand2 (Rs2 or Imm per UsesImm).
///  - Loads:           rd = mem[rs1 + operand2].
///  - Stores:          mem[rs1 + operand2] = rd.  (Rd holds the source.)
///  - SETHI:           rd = Imm << 10.
///  - Bicc:            Target is the index of the destination instruction
///                     within the module; Annul is the a-bit.
///  - CALL:            Target indexes a local function entry, or
///                     CalleeName names an external (trusted) function.
///  - JMPL:            rd = PC; jump to rs1 + operand2. "retl" is
///                     jmpl %o7+8, %g0 and "ret" is jmpl %i7+8, %g0.
struct Instruction {
  Opcode Op = Opcode::ADD;
  Reg Rd;
  Reg Rs1;
  Reg Rs2;
  bool UsesImm = false;
  int32_t Imm = 0;
  bool Annul = false;
  /// Branch / local-call destination: instruction index in the module.
  /// -1 when not a control transfer or when the callee is external.
  int32_t Target = -1;
  /// For CALL to an external (host/trusted) function.
  std::string CalleeName;
  /// 1-based line number of the instruction in the assembly listing.
  uint32_t SourceLine = 0;

  bool isControlTransfer() const {
    return isBranch(Op) || Op == Opcode::CALL || Op == Opcode::JMPL;
  }

  /// True when the JMPL is the conventional subroutine return
  /// (jmpl %o7+8,%g0 or jmpl %i7+8,%g0).
  bool isReturn() const {
    return Op == Opcode::JMPL && Rd.isZero() &&
           (Rs1 == O7 || Rs1 == I7) && UsesImm && Imm == 8;
  }

  /// Renders the instruction in assembly syntax.
  std::string str() const;
};

} // namespace sparc
} // namespace mcsafe

#endif // MCSAFE_SPARC_INSTRUCTION_H
