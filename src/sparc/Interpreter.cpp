//===- Interpreter.cpp ----------------------------------------------------===//

#include "sparc/Interpreter.h"

#include <cassert>

using namespace mcsafe;
using namespace mcsafe::sparc;

namespace {

/// The fake return address handed to the top-level function: returning
/// through it means "back to the host".
constexpr uint32_t MagicReturn = 0xFFFF0000u;
/// Pseudo-PC at which a pending host-function call runs.
constexpr uint32_t HostTrampoline = 0xFFFFFFFEu;
/// Pseudo-PC meaning "the top-level function has returned" — reached
/// only after the return's delay slot (typically the restore) executed.
constexpr uint32_t ReturnedPC = 0xFFFFFFFDu;

bool bit31(uint32_t V) { return (V >> 31) & 1; }

} // namespace

const char *sparc::stopReasonName(StopReason Reason) {
  switch (Reason) {
  case StopReason::Returned:
    return "returned";
  case StopReason::UnmappedAccess:
    return "unmapped-access";
  case StopReason::MisalignedAccess:
    return "misaligned-access";
  case StopReason::WindowUnderflow:
    return "window-underflow";
  case StopReason::BadJump:
    return "bad-jump";
  case StopReason::DivisionByZero:
    return "division-by-zero";
  case StopReason::StepLimit:
    return "step-limit";
  case StopReason::UnknownCallee:
    return "unknown-callee";
  }
  return "?";
}

Interpreter::Interpreter(const Module &M) : M(M) {
  Windows.emplace_back();
  Windows.back().fill(0);
  // The host's return address; returning through it ends the run.
  setReg(O7, MagicReturn - 8);
  // A default stack so unannotated saves do not immediately fault: 64 KiB
  // below 0xF0000000.
  mapRegion(0xEFFF0000u, 0x10000);
  setReg(SP, 0xEFFFF000u);
  setReg(FP, 0xEFFFF800u);
}

void Interpreter::mapRegion(uint32_t Base, uint32_t Size) {
  for (uint32_t I = 0; I < Size; ++I)
    Memory[Base + I] = 0;
}

void Interpreter::write8(uint32_t Addr, uint8_t Value) {
  auto It = Memory.find(Addr);
  if (It == Memory.end()) {
    if (!Faulted) // Keep the first faulting address.
      fault(StopReason::UnmappedAccess, Addr);
    return;
  }
  It->second = Value;
}

uint8_t Interpreter::read8(uint32_t Addr) const {
  auto It = Memory.find(Addr);
  if (It == Memory.end()) {
    if (!Faulted)
      const_cast<Interpreter *>(this)->fault(StopReason::UnmappedAccess,
                                             Addr);
    return 0;
  }
  return It->second;
}

void Interpreter::write32(uint32_t Addr, uint32_t Value) {
  for (int I = 0; I < 4; ++I)
    write8(Addr + I, static_cast<uint8_t>(Value >> (24 - 8 * I)));
}

uint32_t Interpreter::read32(uint32_t Addr) const {
  uint32_t V = 0;
  for (int I = 0; I < 4; ++I)
    V = (V << 8) | read8(Addr + I);
  return V;
}

uint32_t Interpreter::reg(Reg R) const {
  uint8_t N = R.number();
  if (N == 0)
    return 0;
  if (N < 8)
    return Globals[N];
  return Windows.back()[N - 8];
}

void Interpreter::setReg(Reg R, uint32_t Value) {
  uint8_t N = R.number();
  if (N == 0)
    return;
  if (N < 8) {
    Globals[N] = Value;
    return;
  }
  Windows.back()[N - 8] = Value;
}

uint32_t Interpreter::operand2(const Instruction &Inst) const {
  if (Inst.UsesImm)
    return static_cast<uint32_t>(Inst.Imm);
  return reg(Inst.Rs2);
}

void Interpreter::setIccAdd(uint32_t A, uint32_t B, uint32_t R) {
  Icc.N = bit31(R);
  Icc.Z = R == 0;
  Icc.V = bit31(~(A ^ B) & (A ^ R));
  Icc.C = R < A;
}

void Interpreter::setIccSub(uint32_t A, uint32_t B, uint32_t R) {
  Icc.N = bit31(R);
  Icc.Z = R == 0;
  Icc.V = bit31((A ^ B) & (A ^ R));
  Icc.C = B > A;
}

void Interpreter::setIccLogic(uint32_t R) {
  Icc.N = bit31(R);
  Icc.Z = R == 0;
  Icc.V = false;
  Icc.C = false;
}

bool Interpreter::branchTaken(Opcode Op) const {
  switch (Op) {
  case Opcode::BA:
    return true;
  case Opcode::BN:
    return false;
  case Opcode::BE:
    return Icc.Z;
  case Opcode::BNE:
    return !Icc.Z;
  case Opcode::BL:
    return Icc.N != Icc.V;
  case Opcode::BGE:
    return Icc.N == Icc.V;
  case Opcode::BG:
    return !(Icc.Z || (Icc.N != Icc.V));
  case Opcode::BLE:
    return Icc.Z || (Icc.N != Icc.V);
  case Opcode::BGU:
    return !(Icc.C || Icc.Z);
  case Opcode::BLEU:
    return Icc.C || Icc.Z;
  case Opcode::BCC:
    return !Icc.C;
  case Opcode::BCS:
    return Icc.C;
  case Opcode::BPOS:
    return !Icc.N;
  case Opcode::BNEG:
    return Icc.N;
  case Opcode::BVC:
    return !Icc.V;
  case Opcode::BVS:
    return Icc.V;
  default:
    return false;
  }
}

std::optional<StopReason> Interpreter::step() {
  if (PC == ReturnedPC)
    return StopReason::Returned;
  // A pending host call runs once its caller's delay slot has executed.
  if (PC == HostTrampoline) {
    auto It = HostFns.find(PendingCallee);
    if (It == HostFns.end())
      return StopReason::UnknownCallee;
    It->second(*this);
    if (Faulted)
      return Pending;
    PC = HostReturn;
    NPC = PC + 1;
    return std::nullopt;
  }

  if (PC >= M.size())
    return StopReason::BadJump;
  const Instruction &Inst = M.Insts[PC];
  uint32_t NextPC = NPC;
  uint32_t NextNPC = NPC + 1;

  switch (Inst.Op) {
  case Opcode::ADD:
  case Opcode::ADDCC: {
    uint32_t A = reg(Inst.Rs1), B = operand2(Inst), R = A + B;
    setReg(Inst.Rd, R);
    if (Inst.Op == Opcode::ADDCC)
      setIccAdd(A, B, R);
    break;
  }
  case Opcode::SUB:
  case Opcode::SUBCC: {
    uint32_t A = reg(Inst.Rs1), B = operand2(Inst), R = A - B;
    setReg(Inst.Rd, R);
    if (Inst.Op == Opcode::SUBCC)
      setIccSub(A, B, R);
    break;
  }
  case Opcode::AND:
  case Opcode::ANDCC: {
    uint32_t R = reg(Inst.Rs1) & operand2(Inst);
    setReg(Inst.Rd, R);
    if (Inst.Op == Opcode::ANDCC)
      setIccLogic(R);
    break;
  }
  case Opcode::ANDN:
    setReg(Inst.Rd, reg(Inst.Rs1) & ~operand2(Inst));
    break;
  case Opcode::OR:
  case Opcode::ORCC: {
    uint32_t R = reg(Inst.Rs1) | operand2(Inst);
    setReg(Inst.Rd, R);
    if (Inst.Op == Opcode::ORCC)
      setIccLogic(R);
    break;
  }
  case Opcode::ORN:
    setReg(Inst.Rd, reg(Inst.Rs1) | ~operand2(Inst));
    break;
  case Opcode::XOR:
  case Opcode::XORCC: {
    uint32_t R = reg(Inst.Rs1) ^ operand2(Inst);
    setReg(Inst.Rd, R);
    if (Inst.Op == Opcode::XORCC)
      setIccLogic(R);
    break;
  }
  case Opcode::XNOR:
    setReg(Inst.Rd, ~(reg(Inst.Rs1) ^ operand2(Inst)));
    break;
  case Opcode::SLL:
    setReg(Inst.Rd, reg(Inst.Rs1) << shiftCount(operand2(Inst)));
    break;
  case Opcode::SRL:
    setReg(Inst.Rd, reg(Inst.Rs1) >> shiftCount(operand2(Inst)));
    break;
  case Opcode::SRA:
    setReg(Inst.Rd,
           static_cast<uint32_t>(static_cast<int32_t>(reg(Inst.Rs1)) >>
                                 shiftCount(operand2(Inst))));
    break;
  case Opcode::UMUL:
    setReg(Inst.Rd, reg(Inst.Rs1) * operand2(Inst));
    break;
  case Opcode::SMUL:
    setReg(Inst.Rd,
           static_cast<uint32_t>(static_cast<int32_t>(reg(Inst.Rs1)) *
                                 static_cast<int32_t>(operand2(Inst))));
    break;
  case Opcode::UDIV: {
    uint32_t B = operand2(Inst);
    if (B == 0)
      return StopReason::DivisionByZero;
    setReg(Inst.Rd, reg(Inst.Rs1) / B);
    break;
  }
  case Opcode::SDIV: {
    int32_t B = static_cast<int32_t>(operand2(Inst));
    if (B == 0)
      return StopReason::DivisionByZero;
    setReg(Inst.Rd,
           static_cast<uint32_t>(static_cast<int32_t>(reg(Inst.Rs1)) / B));
    break;
  }
  case Opcode::SETHI:
    setReg(Inst.Rd, static_cast<uint32_t>(Inst.Imm) << 10);
    break;

  case Opcode::LD:
  case Opcode::LDUB:
  case Opcode::LDUH:
  case Opcode::LDSB:
  case Opcode::LDSH: {
    uint32_t Addr = reg(Inst.Rs1) + operand2(Inst);
    unsigned Size = memAccessSize(Inst.Op);
    if (Addr % Size != 0)
      return fault(StopReason::MisalignedAccess, Addr), Pending;
    uint32_t V = 0;
    if (Size == 4)
      V = read32(Addr);
    else if (Size == 2)
      V = (read8(Addr) << 8) | read8(Addr + 1);
    else
      V = read8(Addr);
    if (Faulted)
      return Pending;
    if (Inst.Op == Opcode::LDSB)
      V = static_cast<uint32_t>(static_cast<int32_t>(V << 24) >> 24);
    if (Inst.Op == Opcode::LDSH)
      V = static_cast<uint32_t>(static_cast<int32_t>(V << 16) >> 16);
    setReg(Inst.Rd, V);
    break;
  }
  case Opcode::ST:
  case Opcode::STB:
  case Opcode::STH: {
    uint32_t Addr = reg(Inst.Rs1) + operand2(Inst);
    unsigned Size = memAccessSize(Inst.Op);
    if (Addr % Size != 0)
      return fault(StopReason::MisalignedAccess, Addr), Pending;
    uint32_t V = reg(Inst.Rd);
    if (Size == 4)
      write32(Addr, V);
    else if (Size == 2) {
      write8(Addr, static_cast<uint8_t>(V >> 8));
      write8(Addr + 1, static_cast<uint8_t>(V));
    } else {
      write8(Addr, static_cast<uint8_t>(V));
    }
    if (Faulted)
      return Pending;
    break;
  }

  case Opcode::SAVE: {
    uint32_t Value = reg(Inst.Rs1) + operand2(Inst);
    std::array<uint32_t, 24> NewWin;
    NewWin.fill(0);
    for (int K = 0; K < 8; ++K)
      NewWin[16 + K] = Windows.back()[K]; // New %i = old %o.
    Windows.push_back(NewWin);
    setReg(Inst.Rd, Value);
    break;
  }
  case Opcode::RESTORE: {
    if (Windows.size() == 1)
      return StopReason::WindowUnderflow;
    uint32_t Value = reg(Inst.Rs1) + operand2(Inst);
    std::array<uint32_t, 24> Old = Windows.back();
    Windows.pop_back();
    for (int K = 0; K < 8; ++K)
      Windows.back()[K] = Old[16 + K]; // Caller's %o = callee's %i.
    setReg(Inst.Rd, Value);
    break;
  }

  case Opcode::CALL:
    setReg(O7, PC * 4);
    if (Inst.Target >= 0) {
      NextNPC = static_cast<uint32_t>(Inst.Target);
    } else {
      PendingCallee = Inst.CalleeName;
      HostReturn = PC + 2;
      NextNPC = HostTrampoline;
    }
    break;
  case Opcode::JMPL: {
    uint32_t Addr = reg(Inst.Rs1) + operand2(Inst);
    setReg(Inst.Rd, PC * 4);
    if (Addr == MagicReturn) {
      // The delay slot (usually the restore) still executes.
      NextNPC = ReturnedPC;
      break;
    }
    if (Addr % 4 != 0 || Addr / 4 >= M.size())
      return StopReason::BadJump;
    NextNPC = Addr / 4;
    break;
  }

  default:
    if (isBranch(Inst.Op)) {
      bool Taken = branchTaken(Inst.Op);
      if (Taken) {
        NextNPC = static_cast<uint32_t>(Inst.Target);
        if (Inst.Op == Opcode::BA && Inst.Annul) {
          // ba,a skips the delay slot entirely.
          NextPC = static_cast<uint32_t>(Inst.Target);
          NextNPC = NextPC + 1;
        }
      } else if (Inst.Annul) {
        // Untaken annulled branch skips the delay slot.
        NextPC = NPC + 1;
        NextNPC = NPC + 2;
      }
    }
    break;
  }

  PC = NextPC;
  NPC = NextNPC;
  return std::nullopt;
}

Interpreter::Result Interpreter::run(uint64_t MaxSteps) {
  Result R;
  while (R.Steps < MaxSteps) {
    uint32_t Line =
        PC < M.size() ? M.Insts[PC].SourceLine : 0;
    std::optional<StopReason> Stop = step();
    ++R.Steps;
    if (Stop) {
      R.Reason = *Stop;
      R.FaultAddr = FaultAddr;
      R.FaultLine = Line;
      return R;
    }
  }
  R.Reason = StopReason::StepLimit;
  return R;
}
