//===- Interpreter.h - Concrete SPARC V8 subset interpreter -----*- C++ -*-===//
//
// Part of mcsafe, a reproduction of "Safety Checking of Machine Code"
// (Xu, Miller, Reps; PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A concrete executor for the supported SPARC V8 subset, with faithful
/// delayed-branch semantics (PC/nPC pair), condition codes, register
/// windows, and a byte-addressed sparse memory.
///
/// Its role in this repository is *dynamic cross-validation* of the
/// static checker: corpus programs are executed on concrete inputs to
/// confirm both their functional behaviour (Sum really sums, HeapSort
/// really sorts) and the predicted violations (PagingPolicy really traps
/// on the null head; StackSmashing really clobbers memory beyond the
/// buffer). Misaligned, unmapped, and null accesses trap, making the
/// interpreter a runtime safety oracle.
///
/// Calls to external (host) functions are routed to a user-supplied
/// handler, mirroring the trusted-function summaries of the checker.
///
//===----------------------------------------------------------------------===//

#ifndef MCSAFE_SPARC_INTERPRETER_H
#define MCSAFE_SPARC_INTERPRETER_H

#include "sparc/Module.h"

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace mcsafe {
namespace sparc {

/// Why execution stopped.
enum class StopReason : uint8_t {
  Returned,        ///< The top-level function returned to the host.
  UnmappedAccess,  ///< Load/store touched unmapped memory (incl. null).
  MisalignedAccess,///< Address not aligned for the access width.
  WindowUnderflow, ///< restore without a matching save.
  BadJump,         ///< Jump target outside the code.
  DivisionByZero,
  StepLimit,       ///< The fuel ran out.
  UnknownCallee,   ///< External call with no registered handler.
};

const char *stopReasonName(StopReason Reason);

/// The concrete machine.
class Interpreter {
public:
  explicit Interpreter(const Module &M);

  // --- Memory. -------------------------------------------------------------

  /// Maps [Base, Base + Size) as readable/writable zeroed memory.
  void mapRegion(uint32_t Base, uint32_t Size);
  bool isMapped(uint32_t Addr) const { return Memory.count(Addr) != 0; }

  void write32(uint32_t Addr, uint32_t Value);
  uint32_t read32(uint32_t Addr) const;
  void write8(uint32_t Addr, uint8_t Value);
  uint8_t read8(uint32_t Addr) const;

  // --- Registers. ------------------------------------------------------------

  uint32_t reg(Reg R) const;
  void setReg(Reg R, uint32_t Value);

  // --- Host functions. -------------------------------------------------------

  /// Registers a handler for calls to external function \p Name. The
  /// handler may read/write registers and memory; its return value (if
  /// any) goes to %o0 by SPARC convention (the handler does that itself).
  using HostFn = std::function<void(Interpreter &)>;
  void registerHost(const std::string &Name, HostFn Fn) {
    HostFns[Name] = std::move(Fn);
  }

  // --- Execution. --------------------------------------------------------------

  struct Result {
    StopReason Reason = StopReason::StepLimit;
    uint64_t Steps = 0;
    /// Faulting address for memory stops.
    uint32_t FaultAddr = 0;
    /// 1-based source line of the faulting/last instruction.
    uint32_t FaultLine = 0;
  };

  /// Runs from instruction 0 until the top-level return or a stop.
  Result run(uint64_t MaxSteps = 1000000);

  /// The index of the next instruction to execute. Values at or beyond
  /// the module size are pseudo-PCs (host trampoline, returned-to-host).
  /// Combined with run(1) this supports single-step tracing.
  uint32_t pc() const { return PC; }

private:
  struct Flags {
    bool N = false, Z = false, V = false, C = false;
  };

  std::optional<StopReason> step();
  uint32_t operand2(const Instruction &Inst) const;
  void setIccAdd(uint32_t A, uint32_t B, uint32_t R);
  void setIccSub(uint32_t A, uint32_t B, uint32_t R);
  void setIccLogic(uint32_t R);
  bool branchTaken(Opcode Op) const;

  const Module &M;
  std::map<uint32_t, uint8_t> Memory;
  std::vector<std::array<uint32_t, 24>> Windows; ///< %o, %l, %i per frame.
  std::array<uint32_t, 8> Globals = {};
  Flags Icc;
  uint32_t PC = 0, NPC = 1; ///< Instruction indices.
  std::map<std::string, HostFn> HostFns;
  std::string PendingCallee; ///< Host call awaiting its delay slot.
  uint32_t HostReturn = 0;
  StopReason Pending = StopReason::StepLimit;
  uint32_t FaultAddr = 0;
  bool Faulted = false;

  void fault(StopReason Reason, uint32_t Addr) {
    Pending = Reason;
    FaultAddr = Addr;
    Faulted = true;
  }
};

} // namespace sparc
} // namespace mcsafe

#endif // MCSAFE_SPARC_INTERPRETER_H
