//===- Module.cpp ---------------------------------------------------------===//

#include "sparc/Module.h"

#include <sstream>

using namespace mcsafe;
using namespace mcsafe::sparc;

std::string Module::str() const {
  // Invert the label map for printing.
  std::ostringstream OS;
  for (uint32_t I = 0; I < size(); ++I) {
    for (const auto &[Name, Index] : Labels)
      if (Index == I)
        OS << Name << ":\n";
    OS << (I + 1) << ":\t" << Insts[I].str() << '\n';
  }
  return OS.str();
}
