//===- Module.h - An assembled unit of untrusted code -----------*- C++ -*-===//
//
// Part of mcsafe, a reproduction of "Safety Checking of Machine Code"
// (Xu, Miller, Reps; PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Module is the unit the safety checker analyzes: a flat instruction
/// sequence plus the symbol information the assembler (or a binary loader)
/// recovered — labels, local function entry points, and the names of
/// external (host / trusted) functions the code calls.
///
//===----------------------------------------------------------------------===//

#ifndef MCSAFE_SPARC_MODULE_H
#define MCSAFE_SPARC_MODULE_H

#include "sparc/Instruction.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace mcsafe {
namespace sparc {

/// An assembled (or decoded) piece of untrusted machine code.
struct Module {
  std::vector<Instruction> Insts;

  /// Label name -> instruction index.
  std::map<std::string, uint32_t> Labels;

  /// Entry points of local functions (targets of local calls). The module
  /// entry (index 0) is always present.
  std::vector<uint32_t> FunctionEntries;

  /// Names of external functions referenced by call instructions. These
  /// must be covered by trusted-function summaries in the safety policy.
  std::vector<std::string> ExternalCallees;

  uint32_t size() const { return static_cast<uint32_t>(Insts.size()); }

  bool isFunctionEntry(uint32_t Index) const {
    for (uint32_t E : FunctionEntries)
      if (E == Index)
        return true;
    return false;
  }

  /// Returns the entry index for a label, or -1.
  int32_t lookupLabel(const std::string &Name) const {
    auto It = Labels.find(Name);
    return It == Labels.end() ? -1 : static_cast<int32_t>(It->second);
  }

  /// Renders the whole module as an assembly listing with 1-based line
  /// numbers, mirroring the paper's Figure 1 presentation.
  std::string str() const;
};

} // namespace sparc
} // namespace mcsafe

#endif // MCSAFE_SPARC_MODULE_H
