//===- Registers.cpp ------------------------------------------------------===//

#include "sparc/Registers.h"

#include "support/StringUtils.h"

#include <cassert>

using namespace mcsafe;
using namespace mcsafe::sparc;

std::string Reg::name() const {
  if (Number == 14)
    return "%sp";
  if (Number == 30)
    return "%fp";
  static const char Groups[4] = {'g', 'o', 'l', 'i'};
  std::string Name = "%";
  Name += Groups[Number / 8];
  Name += static_cast<char>('0' + Number % 8);
  return Name;
}

std::optional<Reg> sparc::parseReg(std::string_view Text) {
  Text = trim(Text);
  if (Text.size() < 3 || Text[0] != '%')
    return std::nullopt;
  std::string_view Body = Text.substr(1);
  if (Body == "sp")
    return SP;
  if (Body == "fp")
    return FP;
  if (Body[0] == 'r') {
    std::optional<int64_t> N = parseInt(Body.substr(1));
    if (!N || *N < 0 || *N > 31)
      return std::nullopt;
    return Reg(static_cast<uint8_t>(*N));
  }
  int Group;
  switch (Body[0]) {
  case 'g':
    Group = 0;
    break;
  case 'o':
    Group = 1;
    break;
  case 'l':
    Group = 2;
    break;
  case 'i':
    Group = 3;
    break;
  default:
    return std::nullopt;
  }
  if (Body.size() != 2 || Body[1] < '0' || Body[1] > '7')
    return std::nullopt;
  return Reg(static_cast<uint8_t>(Group * 8 + (Body[1] - '0')));
}
