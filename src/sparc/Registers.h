//===- Registers.h - SPARC V8 integer register model ------------*- C++ -*-===//
//
// Part of mcsafe, a reproduction of "Safety Checking of Machine Code"
// (Xu, Miller, Reps; PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The SPARC V8 integer register file: %g0-%g7, %o0-%o7, %l0-%l7,
/// %i0-%i7, with the standard aliases %sp (= %o6) and %fp (= %i6).
/// Register numbers follow the architectural encoding (g=0-7, o=8-15,
/// l=16-23, i=24-31). %g0 reads as zero and ignores writes.
///
//===----------------------------------------------------------------------===//

#ifndef MCSAFE_SPARC_REGISTERS_H
#define MCSAFE_SPARC_REGISTERS_H

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace mcsafe {
namespace sparc {

/// An integer register, identified by its architectural number 0-31.
class Reg {
public:
  constexpr Reg() : Number(0) {}
  constexpr explicit Reg(uint8_t Number) : Number(Number) {}

  constexpr uint8_t number() const { return Number; }
  constexpr bool isZero() const { return Number == 0; }

  constexpr bool isGlobal() const { return Number < 8; }
  constexpr bool isOut() const { return Number >= 8 && Number < 16; }
  constexpr bool isLocal() const { return Number >= 16 && Number < 24; }
  constexpr bool isIn() const { return Number >= 24; }

  friend constexpr bool operator==(Reg A, Reg B) {
    return A.Number == B.Number;
  }
  friend constexpr bool operator!=(Reg A, Reg B) {
    return A.Number != B.Number;
  }
  friend constexpr bool operator<(Reg A, Reg B) {
    return A.Number < B.Number;
  }

  /// Canonical name, e.g. "%o0". %o6 renders as "%sp" and %i6 as "%fp".
  std::string name() const;

private:
  uint8_t Number;
};

inline constexpr Reg G0 = Reg(0);
inline constexpr Reg O0 = Reg(8);
inline constexpr Reg O1 = Reg(9);
inline constexpr Reg O2 = Reg(10);
inline constexpr Reg O3 = Reg(11);
inline constexpr Reg O4 = Reg(12);
inline constexpr Reg O5 = Reg(13);
inline constexpr Reg SP = Reg(14); ///< %o6
inline constexpr Reg O7 = Reg(15); ///< Holds the return address after call.
inline constexpr Reg L0 = Reg(16);
inline constexpr Reg I0 = Reg(24);
inline constexpr Reg I1 = Reg(25);
inline constexpr Reg FP = Reg(30); ///< %i6
inline constexpr Reg I7 = Reg(31); ///< Caller's return address.

/// Parses "%g3", "%o0", "%sp", "%fp", "%r17" forms.
/// Returns nullopt on anything else.
std::optional<Reg> parseReg(std::string_view Text);

} // namespace sparc
} // namespace mcsafe

#endif // MCSAFE_SPARC_REGISTERS_H
