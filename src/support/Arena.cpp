//===- Arena.cpp ----------------------------------------------------------===//

#include "support/Arena.h"

#include <cassert>

using namespace mcsafe;
using namespace mcsafe::support;

Arena::Arena(size_t ChunkBytes)
    : ChunkBytes(ChunkBytes < 256 ? 256 : ChunkBytes) {}

Arena::~Arena() {
  Chunk *C = Head;
  while (C) {
    Chunk *Next = C->Next;
    ::operator delete(static_cast<void *>(C));
    C = Next;
  }
}

void Arena::activate(Chunk *&Slot, size_t PayloadBytes) {
  // Ensure *Slot exists and can serve PayloadBytes, inserting a fresh
  // chunk in front of a retained-but-too-small one (which stays on the
  // list for reuse after the next reset(); chunks are never freed
  // mid-list, pointers into them may be live).
  if (!Slot || Slot->Size < PayloadBytes) {
    auto *Raw =
        static_cast<char *>(::operator new(sizeof(Chunk) + PayloadBytes));
    Chunk *Fresh = ::new (Raw) Chunk();
    Fresh->Size = PayloadBytes;
    Fresh->Next = Slot;
    Slot = Fresh;
    Reserved += PayloadBytes;
  }
  Current = Slot;
  Ptr = reinterpret_cast<char *>(Current) + sizeof(Chunk);
  End = Ptr + Current->Size;
}

void *Arena::allocate(size_t Bytes, size_t Align) {
  assert(Align && (Align & (Align - 1)) == 0 && "alignment not a power of 2");
  if (Bytes == 0)
    Bytes = 1;
  for (;;) {
    if (Current) {
      uintptr_t P = reinterpret_cast<uintptr_t>(Ptr);
      uintptr_t Aligned = (P + Align - 1) & ~uintptr_t(Align - 1);
      if (Aligned + Bytes <= reinterpret_cast<uintptr_t>(End)) {
        Ptr = reinterpret_cast<char *>(Aligned + Bytes);
        Allocated += Bytes;
        return reinterpret_cast<void *>(Aligned);
      }
    }
    // Move to the next chunk (retained from before a reset(), or fresh).
    // Oversized requests get a dedicated chunk so one huge scratch table
    // does not inflate the steady-state chunk size.
    size_t Need = Bytes + Align;
    activate(Current ? Current->Next : Head,
             Need > ChunkBytes ? Need : ChunkBytes);
  }
}

void Arena::reset() {
  Current = nullptr;
  Ptr = End = nullptr;
  Allocated = 0;
}
