//===- Arena.h - Bump-pointer allocation ------------------------*- C++ -*-===//
//
// Part of mcsafe, a reproduction of "Safety Checking of Machine Code"
// (Xu, Miller, Reps; PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A bump-pointer arena for the constraint kernel's two allocation
/// patterns that malloc serves poorly:
///
///  - the formula interner's node slabs: nodes are immortal (interned
///    formulas live for the process), so per-node malloc headers and
///    free-list bookkeeping are pure overhead;
///  - prover scratch (pre-solver bound tables, DBM distance matrices):
///    allocated per satisfiability query and discarded wholesale, so a
///    reset() that recycles the chunks beats thousands of small frees.
///
/// The arena is NOT thread-safe; callers that share one (the interner's
/// shards) serialize externally. Objects placement-constructed in arena
/// memory are never destroyed by the arena — it only recycles raw bytes —
/// so only trivially-destructible scratch or externally-destroyed nodes
/// belong here.
///
//===----------------------------------------------------------------------===//

#ifndef MCSAFE_SUPPORT_ARENA_H
#define MCSAFE_SUPPORT_ARENA_H

#include <cstddef>
#include <cstdint>
#include <new>
#include <utility>

namespace mcsafe {
namespace support {

/// A growable bump allocator. Chunks are retained across reset() so a
/// per-query scratch arena reaches a steady state with zero mallocs.
class Arena {
public:
  explicit Arena(size_t ChunkBytes = DefaultChunkBytes);
  ~Arena();

  Arena(const Arena &) = delete;
  Arena &operator=(const Arena &) = delete;

  /// Returns \p Bytes of storage aligned to \p Align (a power of two).
  void *allocate(size_t Bytes, size_t Align = alignof(std::max_align_t));

  /// Allocates and placement-constructs a T. The arena never runs the
  /// destructor; the caller owns that responsibility (or T is trivial).
  template <typename T, typename... Args> T *create(Args &&...A) {
    return ::new (allocate(sizeof(T), alignof(T)))
        T(std::forward<Args>(A)...);
  }

  /// Allocates an uninitialized array of \p N T's (T trivial).
  template <typename T> T *allocateArray(size_t N) {
    return static_cast<T *>(allocate(N * sizeof(T), alignof(T)));
  }

  /// Rewinds every chunk for reuse. Previously returned pointers become
  /// dangling; no destructors run.
  void reset();

  /// Total bytes handed out since construction or the last reset().
  size_t bytesAllocated() const { return Allocated; }
  /// Total chunk bytes reserved from the system (survives reset()).
  size_t bytesReserved() const { return Reserved; }

private:
  static constexpr size_t DefaultChunkBytes = 64 * 1024;

  struct Chunk {
    Chunk *Next = nullptr;
    size_t Size = 0; ///< Usable payload bytes following this header.
  };

  /// Makes \p Slot the current chunk, first inserting a fresh chunk of
  /// \p PayloadBytes in front of it when it is null or too small.
  void activate(Chunk *&Slot, size_t PayloadBytes);

  Chunk *Head = nullptr;    ///< First chunk in the reuse list.
  Chunk *Current = nullptr; ///< Chunk being bumped.
  char *Ptr = nullptr;      ///< Next free byte in Current.
  char *End = nullptr;      ///< One past Current's payload.
  size_t ChunkBytes;
  size_t Allocated = 0;
  size_t Reserved = 0;
};

} // namespace support
} // namespace mcsafe

#endif // MCSAFE_SUPPORT_ARENA_H
