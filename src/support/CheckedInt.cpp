//===- CheckedInt.cpp -----------------------------------------------------===//

#include "support/CheckedInt.h"

using namespace mcsafe;

int64_t mcsafe::gcdInt64(int64_t A, int64_t B) {
  // Avoid UB on INT64_MIN by working with unsigned magnitudes.
  uint64_t UA = A < 0 ? 0ull - static_cast<uint64_t>(A) : static_cast<uint64_t>(A);
  uint64_t UB = B < 0 ? 0ull - static_cast<uint64_t>(B) : static_cast<uint64_t>(B);
  while (UB != 0) {
    uint64_t T = UA % UB;
    UA = UB;
    UB = T;
  }
  // The result of gcd fits in int64_t for all inputs except
  // gcd(INT64_MIN, 0); callers never feed INT64_MIN (checked arithmetic
  // rejects it upstream), but clamp defensively.
  if (UA > static_cast<uint64_t>(INT64_MAX))
    return INT64_MAX;
  return static_cast<int64_t>(UA);
}

int64_t mcsafe::floorDiv(int64_t A, int64_t B) {
  assert(B != 0 && "floorDiv by zero");
  int64_t Q = A / B;
  int64_t R = A % B;
  if (R != 0 && ((R < 0) != (B < 0)))
    --Q;
  return Q;
}

int64_t mcsafe::ceilDiv(int64_t A, int64_t B) {
  assert(B != 0 && "ceilDiv by zero");
  int64_t Q = A / B;
  int64_t R = A % B;
  if (R != 0 && ((R < 0) == (B < 0)))
    ++Q;
  return Q;
}

int64_t mcsafe::floorMod(int64_t A, int64_t B) {
  assert(B != 0 && "floorMod by zero");
  int64_t R = A % B;
  if (R != 0 && ((R < 0) != (B < 0)))
    R += B;
  return R;
}
