//===- CheckedInt.h - Overflow-checked 64-bit integer helpers --*- C++ -*-===//
//
// Part of mcsafe, a reproduction of "Safety Checking of Machine Code"
// (Xu, Miller, Reps; PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Overflow-checked arithmetic over int64_t.
///
/// The constraint solver (Fourier-Motzkin, Omega test) can blow up
/// coefficient magnitudes. Every arithmetic step in the solver goes through
/// these helpers; on overflow the solver answers "unknown", which the
/// checker treats as a failed proof. That keeps the overall analysis sound
/// without arbitrary-precision integers.
///
//===----------------------------------------------------------------------===//

#ifndef MCSAFE_SUPPORT_CHECKEDINT_H
#define MCSAFE_SUPPORT_CHECKEDINT_H

#include <cassert>
#include <cstdint>
#include <optional>

namespace mcsafe {

/// Returns a + b, or std::nullopt on signed overflow.
inline std::optional<int64_t> checkedAdd(int64_t A, int64_t B) {
  int64_t R;
  if (__builtin_add_overflow(A, B, &R))
    return std::nullopt;
  return R;
}

/// Returns a - b, or std::nullopt on signed overflow.
inline std::optional<int64_t> checkedSub(int64_t A, int64_t B) {
  int64_t R;
  if (__builtin_sub_overflow(A, B, &R))
    return std::nullopt;
  return R;
}

/// Returns a * b, or std::nullopt on signed overflow.
inline std::optional<int64_t> checkedMul(int64_t A, int64_t B) {
  int64_t R;
  if (__builtin_mul_overflow(A, B, &R))
    return std::nullopt;
  return R;
}

/// Returns -a, or std::nullopt when a == INT64_MIN.
inline std::optional<int64_t> checkedNeg(int64_t A) {
  return checkedSub(0, A);
}

/// Greatest common divisor of |a| and |b|; gcd(0, 0) == 0.
int64_t gcdInt64(int64_t A, int64_t B);

/// Floor division: largest q with q * b <= a. Requires b != 0.
int64_t floorDiv(int64_t A, int64_t B);

/// Ceiling division: smallest q with q * b >= a. Requires b != 0.
int64_t ceilDiv(int64_t A, int64_t B);

/// Mathematical modulus: a - floorDiv(a, b) * b, always in [0, |b|).
/// Requires b != 0.
int64_t floorMod(int64_t A, int64_t B);

} // namespace mcsafe

#endif // MCSAFE_SUPPORT_CHECKEDINT_H
