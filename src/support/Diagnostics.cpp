//===- Diagnostics.cpp ----------------------------------------------------===//

#include "support/Diagnostics.h"

#include <sstream>

using namespace mcsafe;

void DiagnosticEngine::report(DiagSeverity Severity, SafetyKind Kind,
                              std::string Message,
                              std::optional<uint32_t> InstIndex,
                              std::optional<uint32_t> SourceLine) {
  Diagnostic D;
  D.Severity = Severity;
  D.Kind = Kind;
  D.InstIndex = InstIndex;
  D.SourceLine = SourceLine;
  D.Message = std::move(Message);
  Diags.push_back(std::move(D));
}

bool DiagnosticEngine::hasViolations() const {
  for (const Diagnostic &D : Diags)
    if (D.Severity == DiagSeverity::Violation)
      return true;
  return false;
}

bool DiagnosticEngine::hasFatal() const {
  for (const Diagnostic &D : Diags)
    if (D.Severity == DiagSeverity::Fatal)
      return true;
  return false;
}

unsigned DiagnosticEngine::countOfKind(SafetyKind Kind) const {
  unsigned N = 0;
  for (const Diagnostic &D : Diags)
    if (D.Kind == Kind && D.Severity == DiagSeverity::Violation)
      ++N;
  return N;
}

std::string DiagnosticEngine::str() const {
  std::ostringstream OS;
  for (const Diagnostic &D : Diags) {
    OS << severityName(D.Severity);
    if (D.Kind != SafetyKind::None)
      OS << '[' << safetyKindName(D.Kind) << ']';
    if (D.SourceLine)
      OS << " line " << *D.SourceLine;
    else if (D.InstIndex)
      OS << " inst " << *D.InstIndex;
    OS << ": " << D.Message << '\n';
  }
  return OS.str();
}

const char *mcsafe::severityName(DiagSeverity Severity) {
  switch (Severity) {
  case DiagSeverity::Note:
    return "note";
  case DiagSeverity::Warning:
    return "warning";
  case DiagSeverity::Violation:
    return "violation";
  case DiagSeverity::Fatal:
    return "fatal";
  }
  return "unknown";
}

const char *mcsafe::safetyKindName(SafetyKind Kind) {
  switch (Kind) {
  case SafetyKind::None:
    return "none";
  case SafetyKind::ArrayBounds:
    return "array-bounds";
  case SafetyKind::Alignment:
    return "alignment";
  case SafetyKind::UninitializedUse:
    return "uninitialized-use";
  case SafetyKind::NullDereference:
    return "null-dereference";
  case SafetyKind::StackDiscipline:
    return "stack-discipline";
  case SafetyKind::AccessPolicy:
    return "access-policy";
  case SafetyKind::TrustedCall:
    return "trusted-call";
  case SafetyKind::TypeError:
    return "type-error";
  case SafetyKind::Unsupported:
    return "unsupported";
  case SafetyKind::Postcondition:
    return "postcondition";
  case SafetyKind::Protocol:
    return "protocol";
  }
  return "unknown";
}
