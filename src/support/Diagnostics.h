//===- Diagnostics.h - Diagnostic collection for the checker ----*- C++ -*-===//
//
// Part of mcsafe, a reproduction of "Safety Checking of Machine Code"
// (Xu, Miller, Reps; PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A diagnostic engine that accumulates safety violations, warnings, and
/// notes emitted by the safety-checking phases. Each diagnostic can be
/// anchored to an instruction index in the untrusted program so reports can
/// say *where* a safety condition was violated, which is half the point of
/// the paper ("identify the places where the safety conditions were
/// violated").
///
//===----------------------------------------------------------------------===//

#ifndef MCSAFE_SUPPORT_DIAGNOSTICS_H
#define MCSAFE_SUPPORT_DIAGNOSTICS_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace mcsafe {

/// Severity of a diagnostic.
enum class DiagSeverity {
  Note,      ///< Informational (e.g. synthesized loop invariant).
  Warning,   ///< Imprecision that did not block verification.
  Violation, ///< A safety condition that is violated or unprovable.
  Fatal,     ///< The input is malformed (bad assembly, bad policy, ...).
};

/// The kind of safety condition a violation diagnostic refers to.
/// Mirrors the paper's default safety conditions (Section 2) plus the
/// host-specified access policy.
enum class SafetyKind {
  None,            ///< Not tied to a specific safety condition.
  ArrayBounds,     ///< Array out-of-bounds access.
  Alignment,       ///< Address-alignment violation.
  UninitializedUse,///< Use of an uninitialized value.
  NullDereference, ///< Possible null-pointer dereference.
  StackDiscipline, ///< Stack-manipulation violation (save/restore, %sp).
  AccessPolicy,    ///< Host access-policy violation (r/w/f/x/o).
  TrustedCall,     ///< Precondition of a trusted function not met.
  TypeError,       ///< Overload resolution failed / type meet hit bottom.
  Unsupported,     ///< Construct the analysis rejects (e.g. recursion).
  Postcondition,   ///< The policy's safety postcondition is not restored.
  Protocol,        ///< A security-automaton transition is missing.
};

/// One diagnostic record.
struct Diagnostic {
  DiagSeverity Severity = DiagSeverity::Note;
  SafetyKind Kind = SafetyKind::None;
  /// Index of the instruction in the normalized program, if any.
  std::optional<uint32_t> InstIndex;
  /// Source line of the instruction in the assembly input, if known.
  std::optional<uint32_t> SourceLine;
  std::string Message;
};

/// Accumulates diagnostics during checking.
class DiagnosticEngine {
public:
  void report(DiagSeverity Severity, SafetyKind Kind, std::string Message,
              std::optional<uint32_t> InstIndex = std::nullopt,
              std::optional<uint32_t> SourceLine = std::nullopt);

  /// Convenience wrappers.
  void note(std::string Message) {
    report(DiagSeverity::Note, SafetyKind::None, std::move(Message));
  }
  void fatal(std::string Message) {
    report(DiagSeverity::Fatal, SafetyKind::None, std::move(Message));
  }

  const std::vector<Diagnostic> &diagnostics() const { return Diags; }

  bool hasViolations() const;
  bool hasFatal() const;
  unsigned countOfKind(SafetyKind Kind) const;

  /// Renders all diagnostics, one per line, for reports and tests.
  std::string str() const;

  void clear() { Diags.clear(); }

private:
  std::vector<Diagnostic> Diags;
};

/// Human-readable name for a severity / safety kind.
const char *severityName(DiagSeverity Severity);
const char *safetyKindName(SafetyKind Kind);

} // namespace mcsafe

#endif // MCSAFE_SUPPORT_DIAGNOSTICS_H
