//===- Digest.cpp ---------------------------------------------------------===//

#include "support/Digest.h"

using namespace mcsafe;

uint64_t support::digestBytes(std::string_view Bytes) {
  // FNV-1a over the bytes, then the length and a finalizing mix. FNV's
  // weak avalanche is fine here because every use immediately refeeds the
  // value through combine64/mix64.
  uint64_t H = 0xcbf29ce484222325ULL;
  for (unsigned char C : Bytes) {
    H ^= C;
    H *= 0x100000001b3ULL;
  }
  return mix64(combine64(H, Bytes.size()));
}
