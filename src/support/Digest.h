//===- Digest.h - Stable 64-bit content digests -----------------*- C++ -*-===//
//
// Part of mcsafe, a reproduction of "Safety Checking of Machine Code"
// (Xu, Miller, Reps; PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An explicit 64-bit mixer (splitmix64 finalizer) and a streaming digest
/// built on it. Every content hash that identifies formulas, constraints,
/// or expressions — and every key that outlives the process, like the
/// certificate store's procedure keys — goes through these functions.
///
/// std::hash is deliberately banned from such places: its values are
/// implementation-defined, differing across standard libraries and across
/// 32/64-bit size_t, which makes it unsound for any persisted key and
/// untestable against golden values. Everything here is specified purely
/// in terms of fixed-width uint64_t arithmetic, so a digest computed on
/// any conforming platform is bit-identical (DigestTest pins golden
/// values to keep it that way).
///
//===----------------------------------------------------------------------===//

#ifndef MCSAFE_SUPPORT_DIGEST_H
#define MCSAFE_SUPPORT_DIGEST_H

#include <cstdint>
#include <string_view>

namespace mcsafe {
namespace support {

/// The splitmix64 finalizer: a cheap, well-distributed, platform-stable
/// bijection on 64-bit values.
constexpr uint64_t mix64(uint64_t X) {
  X ^= X >> 30;
  X *= 0xbf58476d1ce4e5b9ULL;
  X ^= X >> 27;
  X *= 0x94d049bb133111ebULL;
  X ^= X >> 31;
  return X;
}

/// Folds \p B into the running digest \p A (boost-style golden-ratio
/// spread followed by the splitmix64 finalizer). Not commutative: order
/// of combination is part of the digest.
constexpr uint64_t combine64(uint64_t A, uint64_t B) {
  return mix64(A + 0x9e3779b97f4a7c15ULL + (B << 6) + (B >> 2));
}

/// Two's-complement reinterpretation, so signed quantities digest
/// identically regardless of the platform's sign-conversion behavior
/// (well-defined since C++20, but explicit is better than implicit).
constexpr uint64_t signedBits(int64_t V) { return static_cast<uint64_t>(V); }

/// Digests a byte string: length-prefixed FNV-1a folded through the
/// mixer. The length prefix keeps concatenation attacks out of
/// multi-field digests ("ab","c" vs "a","bc").
uint64_t digestBytes(std::string_view Bytes);

/// A streaming digest accumulator for multi-field content keys. Field
/// order is significant; all inputs reduce to uint64_t before mixing.
class Digest {
public:
  Digest() = default;
  explicit Digest(uint64_t Seed) : H(mix64(Seed)) {}

  Digest &add(uint64_t V) {
    H = combine64(H, V);
    return *this;
  }
  Digest &addSigned(int64_t V) { return add(signedBits(V)); }
  Digest &addBytes(std::string_view Bytes) {
    return add(digestBytes(Bytes));
  }

  uint64_t value() const { return H; }

private:
  uint64_t H = 0x6d63736166655f64ULL; // "mcsafe_d", an arbitrary fixed seed.
};

} // namespace support
} // namespace mcsafe

#endif // MCSAFE_SUPPORT_DIGEST_H
