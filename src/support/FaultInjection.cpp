//===- FaultInjection.cpp - Deterministic fault plan ----------------------===//

#include "support/FaultInjection.h"

#include <atomic>

namespace mcsafe {
namespace support {

namespace {

std::atomic<FaultPlan *> GlobalPlan{nullptr};

// FNV-1a over the site name: stable across runs and platforms.
uint64_t hashSite(const char *Site) {
  uint64_t H = 1469598103934665603ull;
  for (const char *P = Site; *P; ++P) {
    H ^= static_cast<unsigned char>(*P);
    H *= 1099511628211ull;
  }
  return H;
}

// splitmix64: cheap, well-distributed mixer for (seed ^ site hash).
uint64_t mix(uint64_t X) {
  X += 0x9e3779b97f4a7c15ull;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ull;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebull;
  return X ^ (X >> 31);
}

} // namespace

void FaultPlan::install(FaultPlan *Plan) {
  GlobalPlan.store(Plan, std::memory_order_release);
}

FaultPlan *FaultPlan::current() {
  return GlobalPlan.load(std::memory_order_acquire);
}

bool FaultPlan::shouldFail(const char *Site) {
  std::lock_guard<std::mutex> Lock(Mu);
  SiteState &S = Sites[Site];
  if (S.Period == 0) {
    uint64_t R = mix(Seed ^ hashSite(Site));
    // Fire roughly every 5..37 calls, phase-shifted per site, so faults
    // land in warmups, steady state, and shutdown paths alike.
    S.Period = 5 + (R % 33);
    S.Offset = (R >> 32) % S.Period;
  }
  uint64_t Call = S.Calls++;
  if (Call % S.Period == S.Offset) {
    ++S.Fired;
    return true;
  }
  return false;
}

uint64_t FaultPlan::firedCount() const {
  std::lock_guard<std::mutex> Lock(Mu);
  uint64_t Total = 0;
  for (const auto &[Name, S] : Sites)
    Total += S.Fired;
  return Total;
}

#if defined(MCSAFE_FAULT_INJECTION)
bool faultPoint(const char *Site) {
  FaultPlan *Plan = FaultPlan::current();
  return Plan && Plan->shouldFail(Site);
}
#endif

} // namespace support
} // namespace mcsafe
