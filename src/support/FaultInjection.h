//===- FaultInjection.h - Deterministic fault plan --------------*- C++ -*-===//
//
// Part of mcsafe, a reproduction of "Safety Checking of Machine Code"
// (Xu, Miller, Reps; PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Seed-driven fault injection for chaos testing the checking pipeline.
/// A FaultPlan decides, per named site, which calls "fail"; the sites
/// (allocator wrappers, prover steps, cache operations, pool task spawn)
/// then exercise their degraded path: recompute instead of using the
/// cache, run inline instead of spawning, report Unknown instead of a
/// proof. The chaos driver replays the corpus under several seeds and
/// asserts the fail-sound invariant: no crash, no hang, and never a Safe
/// verdict the fault-free run did not also produce.
///
/// The schedule is a pure function of (seed, site name, call index):
/// runs are reproducible from the seed alone. Fault points compile to
/// `false` unless MCSAFE_FAULT_INJECTION is defined, so release builds
/// carry zero overhead.
///
//===----------------------------------------------------------------------===//

#ifndef MCSAFE_SUPPORT_FAULTINJECTION_H
#define MCSAFE_SUPPORT_FAULTINJECTION_H

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace mcsafe {
namespace support {

/// A deterministic schedule of injected faults, keyed by site name.
/// Thread-safe; one plan is installed globally for the process.
class FaultPlan {
public:
  explicit FaultPlan(uint64_t Seed) : Seed(Seed) {}

  /// Installs \p Plan as the process-wide plan (nullptr to disarm). The
  /// plan is borrowed, not owned; it must outlive its installation.
  static void install(FaultPlan *Plan);
  static FaultPlan *current();

  /// Should the current call at \p Site fail? Increments the site's call
  /// counter; fires on a per-site period/offset derived from the seed.
  bool shouldFail(const char *Site);

  /// Total faults fired so far across all sites.
  uint64_t firedCount() const;
  uint64_t seed() const { return Seed; }

private:
  struct SiteState {
    uint64_t Calls = 0;
    uint64_t Fired = 0;
    uint64_t Period = 0;
    uint64_t Offset = 0;
  };

  uint64_t Seed;
  mutable std::mutex Mu;
  std::map<std::string, SiteState> Sites;
};

#if defined(MCSAFE_FAULT_INJECTION)
/// True when the installed fault plan says this call should fail.
bool faultPoint(const char *Site);
#else
/// Fault injection compiled out: always false, folds away entirely.
constexpr bool faultPoint(const char *) { return false; }
#endif

} // namespace support
} // namespace mcsafe

#endif // MCSAFE_SUPPORT_FAULTINJECTION_H
