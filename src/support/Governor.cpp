//===- Governor.cpp - Per-check resource governor -------------------------===//

#include "support/Governor.h"

namespace mcsafe {
namespace support {

namespace {
// Stride between deadline checks inside poll(). Reading a steady clock
// costs tens of nanoseconds; amortizing it keeps an untripped poll at a
// load and a non-atomic increment. Power of two so the modulo is a mask.
constexpr uint64_t DeadlineStride = 64;
} // namespace

const char *budgetKindName(BudgetKind Kind) {
  switch (Kind) {
  case BudgetKind::None:
    return "none";
  case BudgetKind::Deadline:
    return "deadline";
  case BudgetKind::ProverSteps:
    return "prover-steps";
  case BudgetKind::Memory:
    return "memory";
  case BudgetKind::Cancelled:
    return "cancelled";
  }
  return "unknown";
}

ResourceGovernor::ResourceGovernor(const GovernorLimits &Limits)
    : Limits(Limits) {
  if (Limits.DeadlineMs) {
    HasDeadline = true;
    Deadline = Clock::now() + std::chrono::milliseconds(Limits.DeadlineMs);
  }
}

void ResourceGovernor::trip(BudgetKind Kind, const char *Where) {
  BudgetKind Expected = BudgetKind::None;
  if (Tripped.compare_exchange_strong(Expected, Kind,
                                      std::memory_order_acq_rel)) {
    const char *NoSite = nullptr;
    Site.compare_exchange_strong(NoSite, Where, std::memory_order_acq_rel);
  }
}

bool ResourceGovernor::deadlinePassed(const char *Where) {
  if (!HasDeadline)
    return false;
  if (Clock::now() < Deadline)
    return false;
  trip(BudgetKind::Deadline, Where);
  return true;
}

bool ResourceGovernor::poll(const char *Where) {
  if (exhausted())
    return false;
  if (HasDeadline) {
    // The stride counter is deliberately thread-local rather than a
    // member: a shared atomic counter would put a locked RMW on every
    // poll, which is the whole cost of polling (see bench_governor).
    // Sharing one counter across governors only perturbs *when* within
    // a stride the clock is read, never whether it is read.
    thread_local uint64_t PollCount = 0;
    if ((++PollCount & (DeadlineStride - 1)) == 0 && deadlinePassed(Where))
      return false;
  }
  return true;
}

bool ResourceGovernor::chargeProverStep(const char *Where) {
  if (exhausted())
    return false;
  uint64_t Used = Steps.fetch_add(1, std::memory_order_relaxed) + 1;
  if (Limits.ProverSteps && Used > Limits.ProverSteps) {
    trip(BudgetKind::ProverSteps, Where);
    return false;
  }
  // Prover queries are the expensive unit of work: check the deadline on
  // every charge, not on the poll stride.
  if (deadlinePassed(Where))
    return false;
  return true;
}

bool ResourceGovernor::noteMemory(const char *Where, uint64_t Bytes) {
  uint64_t Live = MemLive.fetch_add(Bytes, std::memory_order_relaxed) + Bytes;
  uint64_t High = MemHigh.load(std::memory_order_relaxed);
  while (Live > High &&
         !MemHigh.compare_exchange_weak(High, Live, std::memory_order_relaxed))
    ;
  if (Limits.MemoryBytes && Live > Limits.MemoryBytes) {
    trip(BudgetKind::Memory, Where);
    return false;
  }
  return !exhausted();
}

void ResourceGovernor::releaseMemory(uint64_t Bytes) {
  MemLive.fetch_sub(Bytes, std::memory_order_relaxed);
}

void ResourceGovernor::cancel(const char *Where) {
  trip(BudgetKind::Cancelled, Where);
}

std::string ResourceGovernor::reason() const {
  BudgetKind Kind = exhaustedKind();
  std::string At = exhaustedSite();
  if (At.empty())
    At = "unknown";
  switch (Kind) {
  case BudgetKind::None:
    return "";
  case BudgetKind::Deadline:
    return "deadline of " + std::to_string(Limits.DeadlineMs) +
           "ms exhausted at " + At;
  case BudgetKind::ProverSteps:
    return "prover-step budget of " + std::to_string(Limits.ProverSteps) +
           " exhausted at " + At;
  case BudgetKind::Memory:
    return "memory budget of " + std::to_string(Limits.MemoryBytes) +
           " bytes exhausted at " + At;
  case BudgetKind::Cancelled:
    return "check cancelled at " + At;
  }
  return "budget exhausted at " + At;
}

} // namespace support
} // namespace mcsafe
