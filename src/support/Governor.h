//===- Governor.h - Per-check resource governor -----------------*- C++ -*-===//
//
// Part of mcsafe, a reproduction of "Safety Checking of Machine Code"
// (Xu, Miller, Reps; PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A cooperative resource governor for one safety check. The checker is
/// part of the trusted computing base: a hostile input that crashes or
/// stalls it denies service to the trusted host, so every long-running
/// loop in the pipeline polls a ResourceGovernor and degrades to an
/// Unknown verdict ("fail sound") when a budget runs out.
///
/// Budgets:
///   - a wall-clock deadline (steady clock, checked at poll points — no
///     signals, no extra threads);
///   - a prover-step budget, charged once per sequential-path prover
///     query. The count is a pure function of the check's inputs —
///     independent of cache warmth and worker scheduling — so reports
///     produced under a step budget stay byte-identical for any --jobs;
///   - a memory high-water estimate, charged at sites that know the size
///     of what they build (DNF expansions, back-substitution formulas);
///   - a cancellation token (cancel() from any thread).
///
/// The first budget to trip wins; its kind and the poll site where it
/// died are recorded once and are immutable afterwards. All methods are
/// thread-safe; poll() on an untripped governor is one relaxed load plus,
/// every few calls, one steady-clock read.
///
//===----------------------------------------------------------------------===//

#ifndef MCSAFE_SUPPORT_GOVERNOR_H
#define MCSAFE_SUPPORT_GOVERNOR_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

namespace mcsafe {
namespace support {

/// Per-check resource limits. Zero means "unlimited" for every field.
struct GovernorLimits {
  /// Wall-clock deadline for the whole check, in milliseconds.
  uint32_t DeadlineMs = 0;
  /// Upper bound on sequential prover queries (see chargeProverStep).
  uint64_t ProverSteps = 0;
  /// Upper bound on the memory high-water estimate, in bytes.
  uint64_t MemoryBytes = 0;

  bool any() const { return DeadlineMs || ProverSteps || MemoryBytes; }
};

/// Which budget tripped a governor.
enum class BudgetKind : uint8_t {
  None,        ///< Nothing tripped; the check may proceed.
  Deadline,    ///< The wall-clock deadline passed.
  ProverSteps, ///< The prover-step budget ran out.
  Memory,      ///< The memory high-water estimate exceeded its bound.
  Cancelled,   ///< cancel() was called (cooperative cancellation).
};

const char *budgetKindName(BudgetKind Kind);

/// The governor one check (and all provers / workers serving it) polls.
class ResourceGovernor {
public:
  /// An unlimited governor: poll() always succeeds, nothing ever trips
  /// except an explicit cancel().
  ResourceGovernor() = default;
  explicit ResourceGovernor(const GovernorLimits &Limits);

  ResourceGovernor(const ResourceGovernor &) = delete;
  ResourceGovernor &operator=(const ResourceGovernor &) = delete;

  /// Has any budget tripped? One relaxed load; safe to call anywhere.
  bool exhausted() const {
    return Tripped.load(std::memory_order_acquire) != BudgetKind::None;
  }
  BudgetKind exhaustedKind() const {
    return Tripped.load(std::memory_order_acquire);
  }
  /// The poll site that observed the trip first ("" before any trip).
  const char *exhaustedSite() const {
    const char *S = Site.load(std::memory_order_acquire);
    return S ? S : "";
  }
  /// Human-readable reason, e.g. "prover-step budget of 100 exhausted at
  /// prover/sat". Deterministic for step/memory budgets.
  std::string reason() const;

  /// The cheap cooperative checkpoint: false once any budget tripped.
  /// Checks the deadline every few calls (amortized) and records \p Where
  /// as the site of death when it trips here.
  bool poll(const char *Where);

  /// Charges one prover step and checks both the step budget and the
  /// deadline. Only the sequential verification path charges steps;
  /// speculative pool workers use poll() instead, which keeps the charge
  /// sequence — and hence step-budget exhaustion — deterministic.
  bool chargeProverStep(const char *Where);

  /// Adds \p Bytes to the live-memory estimate and updates the high
  /// water. Returns false when the memory budget trips.
  bool noteMemory(const char *Where, uint64_t Bytes);
  /// Releases \p Bytes of the live-memory estimate.
  void releaseMemory(uint64_t Bytes);

  /// Trips the Cancelled budget. Thread-safe; idempotent.
  void cancel(const char *Where = "cancel");

  uint64_t stepsUsed() const {
    return Steps.load(std::memory_order_relaxed);
  }
  uint64_t memoryHighWater() const {
    return MemHigh.load(std::memory_order_relaxed);
  }
  const GovernorLimits &limits() const { return Limits; }

private:
  using Clock = std::chrono::steady_clock;

  /// Records the first trip (kind + site); later trips are ignored.
  void trip(BudgetKind Kind, const char *Where);
  /// Deadline check, unconditionally reading the clock.
  bool deadlinePassed(const char *Where);

  GovernorLimits Limits;
  bool HasDeadline = false;
  Clock::time_point Deadline{};

  std::atomic<BudgetKind> Tripped{BudgetKind::None};
  std::atomic<const char *> Site{nullptr};
  std::atomic<uint64_t> Steps{0};
  std::atomic<uint64_t> MemLive{0};
  std::atomic<uint64_t> MemHigh{0};
};

/// RAII memory charge against a governor (null governor = no-op). The
/// destructor releases exactly what the constructor managed to charge.
class MemoryCharge {
public:
  MemoryCharge(ResourceGovernor *Gov, const char *Where, uint64_t Bytes)
      : Gov(Gov), Bytes(Bytes) {
    if (Gov)
      Gov->noteMemory(Where, Bytes);
  }
  ~MemoryCharge() {
    if (Gov)
      Gov->releaseMemory(Bytes);
  }
  MemoryCharge(const MemoryCharge &) = delete;
  MemoryCharge &operator=(const MemoryCharge &) = delete;

private:
  ResourceGovernor *Gov;
  uint64_t Bytes;
};

} // namespace support
} // namespace mcsafe

#endif // MCSAFE_SUPPORT_GOVERNOR_H
