//===- Io.cpp -------------------------------------------------------------===//

#include "support/Io.h"

#include <cstring>
#include <fcntl.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

using namespace mcsafe;
using namespace mcsafe::support;

std::optional<std::string>
support::readWholeFile(const std::string &Path, std::string &Error,
                       ReadFileError *Kind) {
  auto Fail = [&](ReadFileError K, std::string Msg) {
    if (Kind)
      *Kind = K;
    Error = std::move(Msg);
    return std::nullopt;
  };

  errno = 0;
  int Fd = static_cast<int>(
      retryEintr([&] { return ::open(Path.c_str(), O_RDONLY); }));
  if (Fd < 0) {
    int E = errno;
    return Fail(ReadFileError::CannotOpen,
                "cannot open '" + Path +
                    "': " + (E ? std::strerror(E) : "unknown error"));
  }

  std::string Bytes;
  struct stat St;
  if (retryEintr([&] { return ::fstat(Fd, &St); }) == 0 && St.st_size > 0)
    Bytes.reserve(static_cast<size_t>(St.st_size));

  char Buf[1 << 16];
  for (;;) {
    ssize_t N = retryEintr(
        [&]() -> ssize_t { return ::read(Fd, Buf, sizeof(Buf)); });
    if (N < 0) {
      int E = errno;
      closeFd(Fd);
      return Fail(ReadFileError::ReadFailed,
                  "read error on '" + Path +
                      "': " + (E ? std::strerror(E) : "unknown error"));
    }
    if (N == 0)
      break;
    Bytes.append(Buf, static_cast<size_t>(N));
  }
  closeFd(Fd);

  if (Bytes.empty())
    return Fail(ReadFileError::Empty, "'" + Path + "' is empty");
  if (Kind)
    *Kind = ReadFileError::None;
  return Bytes;
}

bool support::writeAllFd(int Fd, std::string_view Bytes) {
  while (!Bytes.empty()) {
    ssize_t N = retryEintr([&]() -> ssize_t {
      return ::write(Fd, Bytes.data(), Bytes.size());
    });
    if (N <= 0)
      return false;
    Bytes.remove_prefix(static_cast<size_t>(N));
  }
  return true;
}

long support::recvFull(int Fd, void *Buf, size_t Len) {
  char *P = static_cast<char *>(Buf);
  size_t Got = 0;
  while (Got < Len) {
    ssize_t N = retryEintr([&]() -> ssize_t {
      return ::recv(Fd, P + Got, Len - Got, 0);
    });
    if (N < 0)
      return -1;
    if (N == 0)
      return Got == 0 ? 0 : -1; // EOF mid-object is an error.
    Got += static_cast<size_t>(N);
  }
  return static_cast<long>(Got);
}

bool support::sendAll(int Fd, std::string_view Bytes) {
  while (!Bytes.empty()) {
    ssize_t N = retryEintr([&]() -> ssize_t {
      return ::send(Fd, Bytes.data(), Bytes.size(), MSG_NOSIGNAL);
    });
    if (N <= 0)
      return false;
    Bytes.remove_prefix(static_cast<size_t>(N));
  }
  return true;
}

void support::closeFd(int Fd) {
  if (Fd >= 0)
    ::close(Fd);
}
