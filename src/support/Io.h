//===- Io.h - EINTR-safe file and socket I/O --------------------*- C++ -*-===//
//
// Part of mcsafe, a reproduction of "Safety Checking of Machine Code"
// (Xu, Miller, Reps; PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// POSIX I/O helpers that retry on EINTR. A long-running daemon receives
/// signals (SIGCHLD from spawned tools, SIGTERM probes, profiling timers)
/// at arbitrary points; without the retry loops a transient interrupt in
/// the middle of a read() turns into a spurious "corrupt certificate" or
/// "malformed input" failure. Every file/socket read and write in the
/// process goes through these helpers, so EINTR is handled in exactly one
/// place.
///
/// Socket sends additionally pass MSG_NOSIGNAL: a peer that disconnects
/// mid-response must surface as an EPIPE error on the call, never as a
/// process-killing SIGPIPE.
///
//===----------------------------------------------------------------------===//

#ifndef MCSAFE_SUPPORT_IO_H
#define MCSAFE_SUPPORT_IO_H

#include <cerrno>
#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace mcsafe {
namespace support {

/// Calls \p F until it returns something other than -1/EINTR. \p F must
/// return a signed integer type where -1 signals an error in errno.
template <typename Fn> auto retryEintr(Fn &&F) -> decltype(F()) {
  decltype(F()) R;
  do {
    R = F();
  } while (R == static_cast<decltype(F())>(-1) && errno == EINTR);
  return R;
}

/// Why readWholeFile failed (so callers can distinguish a missing file
/// from an unreadable or empty one without re-parsing strerror text).
enum class ReadFileError : uint8_t {
  None,       ///< Success.
  CannotOpen, ///< open() failed (missing, permissions, ...).
  ReadFailed, ///< read() failed after open succeeded.
  Empty,      ///< The file exists but holds zero bytes.
};

/// Reads \p Path fully, in binary, retrying interrupted syscalls. On
/// failure returns nullopt with \p Error set to a human-readable cause
/// and, when \p Kind is non-null, the failure class. Zero-byte files are
/// reported as Empty (an empty program or policy is never meaningful
/// input here).
std::optional<std::string> readWholeFile(const std::string &Path,
                                         std::string &Error,
                                         ReadFileError *Kind = nullptr);

/// Writes all of \p Bytes to \p Fd with write(), retrying EINTR and
/// short writes. Returns false on any other error (errno is left set).
bool writeAllFd(int Fd, std::string_view Bytes);

/// Reads exactly \p Len bytes from a socket into \p Buf with recv(),
/// retrying EINTR and short reads. Returns Len on success, 0 on clean
/// EOF before any byte, and -1 on error or EOF mid-object.
long recvFull(int Fd, void *Buf, size_t Len);

/// Sends all of \p Bytes on a socket with send(MSG_NOSIGNAL), retrying
/// EINTR and short sends. Returns false on error (a disconnected peer is
/// EPIPE here, never SIGPIPE).
bool sendAll(int Fd, std::string_view Bytes);

/// close() with EINTR handled (POSIX leaves the fd state unspecified on
/// EINTR; retrying a close can double-close an fd another thread just
/// received, so this does NOT retry — it only swallows the errno).
void closeFd(int Fd);

} // namespace support
} // namespace mcsafe

#endif // MCSAFE_SUPPORT_IO_H
