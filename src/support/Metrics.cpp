//===- Metrics.cpp - Typed counter/gauge/histogram registry ---------------===//

#include "support/Metrics.h"

#include <algorithm>
#include <bit>
#include <vector>

namespace mcsafe {
namespace support {

void Histogram::observe(uint64_t Value) {
  Count.fetch_add(1, std::memory_order_relaxed);
  Sum.fetch_add(Value, std::memory_order_relaxed);
  // bit_width(0) == 0, so zero lands in bucket 0 and value V in bucket
  // bit_width(V), i.e. [2^(B-1), 2^B).
  unsigned B = std::bit_width(Value);
  Buckets[B].fetch_add(1, std::memory_order_relaxed);
  // Lock-free monotonic min/max: CAS until our value no longer improves.
  uint64_t Cur = Min.load(std::memory_order_relaxed);
  while (Value < Cur &&
         !Min.compare_exchange_weak(Cur, Value, std::memory_order_relaxed)) {
  }
  Cur = Max.load(std::memory_order_relaxed);
  while (Value > Cur &&
         !Max.compare_exchange_weak(Cur, Value, std::memory_order_relaxed)) {
  }
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot S;
  S.Count = Count.load(std::memory_order_relaxed);
  S.Sum = Sum.load(std::memory_order_relaxed);
  S.Min = S.Count ? Min.load(std::memory_order_relaxed) : 0;
  S.Max = Max.load(std::memory_order_relaxed);
  for (unsigned I = 0; I < NumBuckets; ++I)
    S.Buckets[I] = Buckets[I].load(std::memory_order_relaxed);
  return S;
}

Counter &MetricsRegistry::counter(std::string_view Name) {
  std::lock_guard<std::mutex> Lock(M);
  auto It = Metrics.find(Name);
  if (It == Metrics.end()) {
    Metric &E = Metrics[std::string(Name)];
    E.C = std::make_unique<Counter>();
    return *E.C;
  }
  if (It->second.C)
    return *It->second.C;
  auto Shadow = std::make_unique<Metric>();
  Shadow->C = std::make_unique<Counter>();
  Counter &Ref = *Shadow->C;
  Shadows.push_back(std::move(Shadow));
  return Ref;
}

Gauge &MetricsRegistry::gauge(std::string_view Name) {
  std::lock_guard<std::mutex> Lock(M);
  auto It = Metrics.find(Name);
  if (It == Metrics.end()) {
    Metric &E = Metrics[std::string(Name)];
    E.G = std::make_unique<Gauge>();
    return *E.G;
  }
  if (It->second.G)
    return *It->second.G;
  auto Shadow = std::make_unique<Metric>();
  Shadow->G = std::make_unique<Gauge>();
  Gauge &Ref = *Shadow->G;
  Shadows.push_back(std::move(Shadow));
  return Ref;
}

Histogram &MetricsRegistry::histogram(std::string_view Name) {
  std::lock_guard<std::mutex> Lock(M);
  auto It = Metrics.find(Name);
  if (It == Metrics.end()) {
    Metric &E = Metrics[std::string(Name)];
    E.H = std::make_unique<Histogram>();
    return *E.H;
  }
  if (It->second.H)
    return *It->second.H;
  auto Shadow = std::make_unique<Metric>();
  Shadow->H = std::make_unique<Histogram>();
  Histogram &Ref = *Shadow->H;
  Shadows.push_back(std::move(Shadow));
  return Ref;
}

std::optional<int64_t> MetricsRegistry::value(std::string_view Name) const {
  std::lock_guard<std::mutex> Lock(M);
  auto It = Metrics.find(Name);
  if (It == Metrics.end())
    return std::nullopt;
  if (It->second.C)
    return static_cast<int64_t>(It->second.C->value());
  if (It->second.G)
    return It->second.G->value();
  return std::nullopt;
}

namespace {

void jsonEscape(std::ostream &OS, std::string_view S) {
  OS << '"';
  for (char Ch : S) {
    switch (Ch) {
    case '"':
      OS << "\\\"";
      break;
    case '\\':
      OS << "\\\\";
      break;
    case '\n':
      OS << "\\n";
      break;
    case '\t':
      OS << "\\t";
      break;
    default:
      if (static_cast<unsigned char>(Ch) < 0x20) {
        static const char Hex[] = "0123456789abcdef";
        OS << "\\u00" << Hex[(Ch >> 4) & 0xF] << Hex[Ch & 0xF];
      } else {
        OS << Ch;
      }
    }
  }
  OS << '"';
}

void indent(std::ostream &OS, unsigned Depth) {
  for (unsigned I = 0; I < Depth; ++I)
    OS << "  ";
}

} // namespace

void MetricsRegistry::writeJson(std::ostream &OS) const {
  std::lock_guard<std::mutex> Lock(M);
  // Emit the sorted flat map as a nested object. std::map iteration is
  // already in path order, and '/' sorts before any path character we
  // use, so a simple open/close-to-common-prefix walk is enough.
  OS << "{";
  std::vector<std::string_view> Open; // Currently open object path.
  bool FirstAtDepth = true;
  for (auto It = Metrics.begin(); It != Metrics.end(); ++It) {
    std::string_view Name = It->first;
    // Split the name into components.
    std::vector<std::string_view> Parts;
    size_t Pos = 0;
    while (Pos <= Name.size()) {
      size_t Slash = Name.find('/', Pos);
      if (Slash == std::string_view::npos)
        Slash = Name.size();
      Parts.push_back(Name.substr(Pos, Slash - Pos));
      Pos = Slash + 1;
    }
    // Close objects until Open is a prefix of Parts' directory part.
    size_t Common = 0;
    while (Common < Open.size() && Common + 1 < Parts.size() &&
           Open[Common] == Parts[Common])
      ++Common;
    while (Open.size() > Common) {
      Open.pop_back();
      OS << "\n";
      indent(OS, Open.size() + 1);
      OS << "}";
      FirstAtDepth = false;
    }
    // Open new objects for the remaining directory components.
    for (size_t I = Common; I + 1 < Parts.size(); ++I) {
      OS << (FirstAtDepth ? "\n" : ",\n");
      indent(OS, Open.size() + 1);
      jsonEscape(OS, Parts[I]);
      OS << ": {";
      Open.push_back(Parts[I]);
      FirstAtDepth = true;
    }
    // Emit the leaf.
    OS << (FirstAtDepth ? "\n" : ",\n");
    indent(OS, Open.size() + 1);
    jsonEscape(OS, Parts.back());
    OS << ": ";
    const Metric &E = It->second;
    if (E.C) {
      OS << E.C->value();
    } else if (E.G) {
      OS << E.G->value();
    } else {
      Histogram::Snapshot S = E.H->snapshot();
      OS << "{\"count\": " << S.Count << ", \"sum\": " << S.Sum
         << ", \"min\": " << S.Min << ", \"max\": " << S.Max << "}";
    }
    FirstAtDepth = false;
  }
  while (!Open.empty()) {
    Open.pop_back();
    OS << "\n";
    indent(OS, Open.size() + 1);
    OS << "}";
  }
  OS << "\n}\n";
}

} // namespace support
} // namespace mcsafe
