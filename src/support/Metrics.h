//===- Metrics.h - Typed counter/gauge/histogram registry -------*- C++ -*-===//
//
// Part of mcsafe, a reproduction of "Safety Checking of Machine Code"
// (Xu, Miller, Reps; PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A thread-safe registry of named metrics — the unified export surface
/// for everything the checker used to keep in scattered private structs:
/// per-phase wall-clock times (the paper's Figure 9 rows), prover and
/// cache counters, and thread-pool activity.
///
/// Three metric kinds:
///
///   - Counter: monotonically increasing uint64 (queries, evictions,
///     accumulated microseconds);
///   - Gauge: a settable int64 snapshot (resident cache entries, jobs);
///   - Histogram: log2-bucketed distribution of uint64 observations with
///     count/sum/min/max (phase latencies across a corpus).
///
/// Metric names are '/'-separated paths ("program/Sum/phase/global_us");
/// the JSON emitter nests them into objects along the separators, so one
/// flat registry serializes as a structured per-program document.
///
/// Concurrency and overhead: metric handles are stable pointers whose
/// update operations are single relaxed atomics, safe from any thread.
/// Registration (name lookup) takes a mutex — callers on hot paths
/// should look a handle up once and keep it. Components accept a
/// `MetricsRegistry *` and treat null as "observability off"; with no
/// registry attached the cost is one pointer test.
///
//===----------------------------------------------------------------------===//

#ifndef MCSAFE_SUPPORT_METRICS_H
#define MCSAFE_SUPPORT_METRICS_H

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace mcsafe {
namespace support {

/// A monotonically increasing counter.
class Counter {
public:
  void inc(uint64_t N = 1) { V.fetch_add(N, std::memory_order_relaxed); }
  uint64_t value() const { return V.load(std::memory_order_relaxed); }

private:
  std::atomic<uint64_t> V{0};
};

/// A settable instantaneous value.
class Gauge {
public:
  void set(int64_t N) { V.store(N, std::memory_order_relaxed); }
  void add(int64_t N) { V.fetch_add(N, std::memory_order_relaxed); }
  int64_t value() const { return V.load(std::memory_order_relaxed); }

private:
  std::atomic<int64_t> V{0};
};

/// A log2-bucketed distribution of non-negative observations.
class Histogram {
public:
  /// Bucket B counts observations in [2^(B-1), 2^B); bucket 0 counts 0.
  static constexpr unsigned NumBuckets = 64;

  void observe(uint64_t Value);

  struct Snapshot {
    uint64_t Count = 0;
    uint64_t Sum = 0;
    uint64_t Min = 0; ///< Meaningful only when Count > 0.
    uint64_t Max = 0;
    std::array<uint64_t, NumBuckets> Buckets{};
  };
  Snapshot snapshot() const;

private:
  std::atomic<uint64_t> Count{0};
  std::atomic<uint64_t> Sum{0};
  std::atomic<uint64_t> Min{UINT64_MAX};
  std::atomic<uint64_t> Max{0};
  std::array<std::atomic<uint64_t>, NumBuckets> Buckets{};
};

/// A named collection of metrics with deterministic (sorted) emission.
class MetricsRegistry {
public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry &) = delete;
  MetricsRegistry &operator=(const MetricsRegistry &) = delete;

  /// Finds or creates the metric. The returned reference is stable for
  /// the registry's lifetime. Registering one name with two different
  /// kinds keeps the first kind and returns a distinct shadow metric of
  /// the requested kind that is never emitted (misuse stays safe).
  Counter &counter(std::string_view Name);
  Gauge &gauge(std::string_view Name);
  Histogram &histogram(std::string_view Name);

  /// The current value of a counter (or gauge) by name; nullopt when the
  /// name is not registered. For reading results back out of a run.
  std::optional<int64_t> value(std::string_view Name) const;

  /// Emits every metric as nested JSON, splitting names on '/'. Counters
  /// and gauges become numbers; histograms become
  /// {"count","sum","min","max"} objects. Keys are sorted, so the output
  /// is byte-deterministic for a given set of values.
  void writeJson(std::ostream &OS) const;

private:
  struct Metric {
    // Exactly one is non-null.
    std::unique_ptr<Counter> C;
    std::unique_ptr<Gauge> G;
    std::unique_ptr<Histogram> H;
  };

  mutable std::mutex M;
  std::map<std::string, Metric, std::less<>> Metrics;
  /// Kind-mismatched registrations land here, off the emission path.
  std::vector<std::unique_ptr<Metric>> Shadows;
};

/// Formats a seconds value from a microsecond metric. Convenience for
/// table renderers reading "*_us" counters.
inline double usToSeconds(int64_t Us) {
  return static_cast<double>(Us) / 1e6;
}

} // namespace support
} // namespace mcsafe

#endif // MCSAFE_SUPPORT_METRICS_H
