//===- StringUtils.cpp ----------------------------------------------------===//

#include "support/StringUtils.h"

#include <cctype>

using namespace mcsafe;

std::string_view mcsafe::trim(std::string_view S) {
  size_t B = 0, E = S.size();
  while (B < E && std::isspace(static_cast<unsigned char>(S[B])))
    ++B;
  while (E > B && std::isspace(static_cast<unsigned char>(S[E - 1])))
    --E;
  return S.substr(B, E - B);
}

std::vector<std::string_view> mcsafe::split(std::string_view S, char Sep) {
  std::vector<std::string_view> Parts;
  size_t Pos = 0;
  while (true) {
    size_t Next = S.find(Sep, Pos);
    if (Next == std::string_view::npos) {
      Parts.push_back(S.substr(Pos));
      return Parts;
    }
    Parts.push_back(S.substr(Pos, Next - Pos));
    Pos = Next + 1;
  }
}

std::vector<std::string_view> mcsafe::splitWhitespace(std::string_view S) {
  std::vector<std::string_view> Parts;
  size_t I = 0;
  while (I < S.size()) {
    while (I < S.size() && std::isspace(static_cast<unsigned char>(S[I])))
      ++I;
    size_t B = I;
    while (I < S.size() && !std::isspace(static_cast<unsigned char>(S[I])))
      ++I;
    if (I > B)
      Parts.push_back(S.substr(B, I - B));
  }
  return Parts;
}

bool mcsafe::startsWith(std::string_view S, std::string_view Prefix) {
  return S.size() >= Prefix.size() && S.substr(0, Prefix.size()) == Prefix;
}

std::optional<int64_t> mcsafe::parseInt(std::string_view S) {
  S = trim(S);
  if (S.empty())
    return std::nullopt;
  bool Negative = false;
  if (S[0] == '-' || S[0] == '+') {
    Negative = S[0] == '-';
    S.remove_prefix(1);
    if (S.empty())
      return std::nullopt;
  }
  uint64_t Base = 10;
  if (S.size() >= 2 && S[0] == '0' && (S[1] == 'x' || S[1] == 'X')) {
    Base = 16;
    S.remove_prefix(2);
    if (S.empty()) // "0x", "-0x", "+0x": prefix with no digits.
      return std::nullopt;
  }
  // Accumulate the magnitude unsigned. The admissible magnitude is
  // INT64_MAX for positive inputs but INT64_MAX + 1 for negative ones,
  // so "-9223372036854775808" (INT64_MIN) parses without ever forming
  // +9223372036854775808 in a signed variable.
  const uint64_t Limit =
      static_cast<uint64_t>(INT64_MAX) + (Negative ? 1u : 0u);
  uint64_t Mag = 0;
  for (char C : S) {
    uint64_t Digit;
    if (C >= '0' && C <= '9')
      Digit = static_cast<uint64_t>(C - '0');
    else if (Base == 16 && C >= 'a' && C <= 'f')
      Digit = static_cast<uint64_t>(C - 'a' + 10);
    else if (Base == 16 && C >= 'A' && C <= 'F')
      Digit = static_cast<uint64_t>(C - 'A' + 10);
    else
      return std::nullopt;
    if (Mag > (Limit - Digit) / Base)
      return std::nullopt;
    Mag = Mag * Base + Digit;
  }
  if (Negative) // Two's-complement negate; well-defined on uint64_t.
    return static_cast<int64_t>(0u - Mag);
  return static_cast<int64_t>(Mag);
}
