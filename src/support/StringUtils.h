//===- StringUtils.h - Small string parsing helpers -------------*- C++ -*-===//
//
// Part of mcsafe, a reproduction of "Safety Checking of Machine Code"
// (Xu, Miller, Reps; PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parsing helpers shared by the assembler and the policy parser.
///
//===----------------------------------------------------------------------===//

#ifndef MCSAFE_SUPPORT_STRINGUTILS_H
#define MCSAFE_SUPPORT_STRINGUTILS_H

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace mcsafe {

/// Removes leading and trailing whitespace.
std::string_view trim(std::string_view S);

/// Splits on a separator character; does not trim the pieces.
std::vector<std::string_view> split(std::string_view S, char Sep);

/// Splits into non-empty whitespace-separated tokens.
std::vector<std::string_view> splitWhitespace(std::string_view S);

bool startsWith(std::string_view S, std::string_view Prefix);

/// Parses a decimal or 0x-prefixed hexadecimal integer, with optional
/// leading '-'. Returns nullopt on malformed input or overflow.
std::optional<int64_t> parseInt(std::string_view S);

} // namespace mcsafe

#endif // MCSAFE_SUPPORT_STRINGUTILS_H
